// Command polyufc is the PolyUFC compiler driver: it builds a kernel from
// the workload registry (or all of them), runs the full compilation flow —
// lowering, Pluto tiling, PolyUFC-CM cache analysis, roofline
// characterization, PolyUFC-SEARCH — and reports the selected uncore
// frequency caps together with the model's predictions.
//
// Usage:
//
//	polyufc -kernel gemm -arch rpl -objective edp
//	polyufc -kernel sdpa-bert -arch bdw -cap-level torch -print-ir
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"polyufc/internal/core"
	"polyufc/internal/faults"
	"polyufc/internal/frontend"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/journal"
	"polyufc/internal/plantable"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/tiling"
	"polyufc/internal/workloads"
)

func main() {
	var (
		kernel    = flag.String("kernel", "", "kernel name from the registry (see -list)")
		file      = flag.String("file", "", "compile an affine kernel source file instead of a registry kernel")
		platName  = flag.String("platform", "", "platform backend name or alias from the registry (see -list-platforms)")
		arch      = flag.String("arch", "rpl", "legacy spelling of -platform")
		platFiles = flag.String("platform-file", "", "comma-separated backend description files (platforms/*.json) to register before lookup")
		calPath   = flag.String("calibration", "", "load a persisted calibration artifact instead of re-running the roofline fit")
		saveCal   = flag.String("save-calibration", "", "write the calibration artifact (constants + fit provenance) to this file")
		listPlats = flag.Bool("list-platforms", false, "list registered platform backends and exit")
		topo      = flag.Bool("topology", false, "print the resolved platform's topology (sockets, interconnect, nodes) and exit")
		objective = flag.String("objective", "edp", "objective: edp, energy, performance")
		size      = flag.String("size", "bench", "problem size class: test, bench, full")
		capLevel  = flag.String("cap-level", "linalg", "cap granularity: torch, linalg, affine")
		tilingStr = flag.String("tiling", "", "tiling strategy: pluto (default), pluto:size=N, cacheoblivious[:base=N], latency[:probe=N], auto")
		epsilon   = flag.Float64("epsilon", 1e-3, "search threshold epsilon (Sec. VI-C)")
		printIR   = flag.Bool("print-ir", false, "print the transformed module")
		measure   = flag.Bool("measure", false, "execute baseline and capped program on the simulated machine")
		degrade   = flag.String("degrade", "strict", "failure policy: strict (fail fast) or best-effort (degrade per nest)")
		fault     = flag.String("fault", "", `inject failures, e.g. "ufs.write.ebusy=0.3; core.pluto=@2"`)
		faultSeed = flag.Int64("fault-seed", 1, "seed for probabilistic fault triggers")
		jpath     = flag.String("journal", "", "checkpoint the compile report (or plan-table sweep cells) to this JSONL file")
		resume    = flag.Bool("resume", false, "replay a completed report (or resume an interrupted plan-table sweep) from an existing -journal")
		buildPlan = flag.String("build-plan-table", "", "sweep the resolved platform's capping-plan table and write it to this file (atomic rename), then exit")
		planFiles = flag.String("plan-table", "", "comma-separated plan-table files; caps are answered from matching tables, falling back to live search")
		list      = flag.Bool("list", false, "list available kernels and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-18s %-10s %-12s %s\n", "kernel", "suite", "category", "paper size")
		for _, k := range workloads.All() {
			fmt.Printf("%-18s %-10s %-12s %s\n", k.Name, k.Suite, k.Category, k.PaperSize)
		}
		return
	}
	if err := loadPlatformFiles(*platFiles); err != nil {
		fmt.Fprintln(os.Stderr, "polyufc:", err)
		os.Exit(1)
	}
	if *listPlats {
		fmt.Printf("%-10s %-34s %-7s %s\n", "platform", "cpu", "paper", "aliases")
		for _, b := range platform.All() {
			fmt.Printf("%-10s %-34s %-7v %s\n", b.Name, b.CPU, b.Paper, strings.Join(b.Aliases, ", "))
		}
		return
	}
	name := *platName
	if name == "" {
		name = *arch
	}
	if *topo {
		b, err := platform.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polyufc:", err)
			os.Exit(1)
		}
		fmt.Print(b.TopologySummary())
		return
	}
	tspec, err := tiling.ParseSpec(*tilingStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyufc:", err)
		os.Exit(1)
	}
	if *buildPlan != "" {
		if err := buildPlanTable(*buildPlan, name, *objective, *calPath, *jpath, *epsilon, *resume, tspec); err != nil {
			fmt.Fprintln(os.Stderr, "polyufc:", err)
			os.Exit(1)
		}
		return
	}
	if *kernel == "" && *file == "" {
		fmt.Fprintln(os.Stderr, "polyufc: -kernel or -file is required (use -list to see registry kernels)")
		os.Exit(2)
	}
	if err := run(*kernel, *file, name, *objective, *size, *capLevel, *degrade, *fault, *jpath, *calPath, *saveCal, *planFiles, *faultSeed, *epsilon, *printIR, *measure, *resume, tspec); err != nil {
		fmt.Fprintln(os.Stderr, "polyufc:", err)
		os.Exit(1)
	}
}

// buildPlanTable sweeps one backend's capping-plan table offline: every
// (class, OI, memory-ratio) cell is answered by live PolyUFC-SEARCH over
// the platform's uncore grid and the table is written atomically (temp
// file + rename — a kill mid-build leaves no table, never a torn one).
// With -journal, each solved cell checkpoints so -resume completes an
// interrupted sweep instead of restarting it.
func buildPlanTable(out, platName, objective, calPath, jpath string, epsilon float64, resume bool, tspec tiling.Spec) error {
	b, err := platform.Lookup(platName)
	if err != nil {
		return err
	}
	obj, ok := search.ParseObjective(objective)
	if !ok {
		return fmt.Errorf("unknown objective %q", objective)
	}
	var target *roofline.Target
	if calPath != "" {
		cal, err := platform.LoadCalibration(calPath)
		if err != nil {
			return err
		}
		if target, err = roofline.FromCalibration(b, cal); err != nil {
			return err
		}
	} else {
		fmt.Printf("calibrating rooflines for %s (one-time microbenchmarks)...\n", b.Name)
		if target, err = roofline.Resolve(b); err != nil {
			return err
		}
	}
	opts := plantable.BuildOptions{Search: search.Options{Objective: obj, Epsilon: epsilon}, Tiling: tspec}
	if jpath != "" {
		if !resume {
			if err := os.Remove(jpath); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		j, err := journal.Open(jpath)
		if err != nil {
			return err
		}
		defer j.Close()
		opts.Journal = j
		if st := j.Stats(); st.Entries > 0 {
			fmt.Printf("resuming sweep: %d solved cells replayed from %s\n", st.Entries, jpath)
		}
	}
	start := time.Now()
	tb, err := plantable.Build(context.Background(), target, opts)
	if err != nil {
		return err
	}
	if err := tb.Save(out); err != nil {
		return err
	}
	fmt.Printf("plan table for %s: %d cells (%dx%d per class) over %d cap steps, swept in %v\n",
		tb.Backend, tb.Cells(), len(tb.OIAxis), len(tb.MemAxis), tb.GridSize(),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("  pinned to description %s, calibration %s (%s objective, eps %g, %s tiling)\n",
		tb.BackendHash, tb.CalHash, tb.Objective, tb.Epsilon, tb.TilingName())
	fmt.Printf("  written atomically to %s\n", out)
	return nil
}

// loadPlatformFiles registers extra backend descriptions given as a
// comma-separated file list.
func loadPlatformFiles(list string) error {
	for _, f := range strings.Split(list, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		if _, err := platform.LoadFile(f); err != nil {
			return err
		}
	}
	return nil
}

// reportRow is the journaled, printable form of one nest report.
type reportRow struct {
	Label    string  `json:"label"`
	OI       float64 `json:"oi"`
	Class    string  `json:"class"`
	Tiled    bool    `json:"tiled"`
	Tiling   string  `json:"tiling,omitempty"`
	TileSize int64   `json:"tile_size,omitempty"`
	CapGHz   float64 `json:"cap_ghz"`
	DT       float64 `json:"dt"`
	DE       float64 `json:"de"`
	DEDP     float64 `json:"dedp"`
	Degraded bool    `json:"degraded,omitempty"`
	Err      string  `json:"err,omitempty"`
	NoCM     bool    `json:"no_cm,omitempty"`
	// Plan marks a cap answered from a precomputed plan table.
	Plan bool `json:"plan,omitempty"`
}

// stageRow is one journaled pipeline stage event: which stage ran, for
// how long, and whether a memoized snapshot satisfied it.
type stageRow struct {
	Name     string  `json:"name"`
	MS       float64 `json:"ms"`
	CacheHit bool    `json:"cache_hit,omitempty"`
}

// reportRecord is one journaled compile outcome.
type reportRecord struct {
	Rows         []reportRow `json:"rows"`
	CapsInserted int         `json:"caps_inserted"`
	CapsRemoved  int         `json:"caps_removed"`
	FinalCaps    int         `json:"final_caps"`
	Stages       []stageRow  `json:"stages,omitempty"`
}

// printRows renders the per-nest report table from journaled rows.
func printRows(rec reportRecord) {
	fmt.Printf("%-28s %8s %4s %6s %7s | predicted vs default-f\n",
		"nest", "OI(FpB)", "cls", "tiled", "cap")
	for _, r := range rec.Rows {
		if r.NoCM {
			fmt.Printf("%-28s %8s %4s %6v %5.1fG | degraded: %s\n",
				r.Label, "-", "-", r.Tiled, r.CapGHz, r.Err)
			continue
		}
		suffix := ""
		if r.Plan {
			suffix = "  [plan table]"
		}
		if r.Degraded {
			suffix = fmt.Sprintf("  [degraded: %s]", r.Err)
		}
		fmt.Printf("%-28s %8.2f %4s %6v %5.1fG | time %+5.1f%% energy %+5.1f%% EDP %+5.1f%%%s\n",
			r.Label, r.OI, r.Class, r.Tiled, r.CapGHz, r.DT, r.DE, r.DEDP, suffix)
	}
	fmt.Printf("caps in module: %d (inserted %d, removed/merged %d)\n",
		rec.FinalCaps, rec.CapsInserted, rec.CapsRemoved)
	if len(rec.Stages) > 0 {
		memoized := false
		fmt.Printf("stages:")
		for _, st := range rec.Stages {
			mark := ""
			if st.CacheHit {
				mark = "*"
				memoized = true
			}
			fmt.Printf(" %s%s %.2fms", st.Name, mark, st.MS)
		}
		if memoized {
			fmt.Printf(" (* = memoized)")
		}
		fmt.Println()
	}
}

func run(kernel, file, platName, objective, size, capLevel, degrade, fault, jpath, calPath, saveCal, planFiles string, faultSeed int64, epsilon float64, printIR, measure, resume bool, tspec tiling.Spec) error {
	b, err := platform.Lookup(platName)
	if err != nil {
		return err
	}
	var plans *plantable.Set
	for _, f := range strings.Split(planFiles, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		tb, err := plantable.Load(f)
		if err != nil {
			return err
		}
		if plans == nil {
			plans = plantable.NewSet()
		}
		if err := plans.Add(tb); err != nil {
			return err
		}
	}
	policy, ok := core.ParseDegradePolicy(degrade)
	if !ok {
		return fmt.Errorf("unknown degrade policy %q (want strict or best-effort)", degrade)
	}
	reg, err := faults.Parse(fault, faultSeed)
	if err != nil {
		return err
	}
	obj, ok := search.ParseObjective(objective)
	if !ok {
		return fmt.Errorf("unknown objective %q", objective)
	}
	var sz workloads.SizeClass
	switch size {
	case "test":
		sz = workloads.Test
	case "bench", "":
		sz = workloads.Bench
	case "full":
		sz = workloads.Full
	default:
		return fmt.Errorf("unknown size class %q", size)
	}
	var lvl ir.Dialect
	switch capLevel {
	case "torch":
		lvl = ir.DialectTorch
	case "linalg", "":
		lvl = ir.DialectLinalg
	case "affine":
		lvl = ir.DialectAffine
	default:
		return fmt.Errorf("unknown cap level %q", capLevel)
	}

	// The journal replays a completed compile report without recompiling —
	// or even calibrating. It only covers the deterministic registry path:
	// -file kernels, -print-ir, -measure and fault injection all need the
	// live compilation, so they bypass it.
	var jrnl *journal.Journal
	var jkey string
	if jpath != "" && file == "" && !printIR && !measure && reg == nil {
		if !resume {
			if err := os.Remove(jpath); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		j, err := journal.Open(jpath)
		if err != nil {
			return err
		}
		defer j.Close()
		jrnl = j
		jkey = fmt.Sprintf("polyufc/%s/%s/sz%d/%s/lvl%d/eps%g/%s/tiling=%s",
			kernel, b.Name, int(sz), obj, int(lvl), epsilon, policy, tspec.Fingerprint())
		if plans != nil {
			// Table-served caps may differ from live bisection within the
			// interpolation tolerance: different tables, different record.
			jkey += "/plans:" + plans.Fingerprint()
		}
		var rec reportRecord
		if ok, err := j.Get(jkey, &rec); err != nil {
			return err
		} else if ok {
			fmt.Printf("%s on %s (%s objective, %s-level caps, %s size) [replayed from journal]\n",
				kernel, b.Name, obj, lvl, sz)
			printRows(rec)
			return nil
		}
	}

	var mod *ir.Module
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		mod, err = frontend.Parse(strings.TrimSuffix(filepath.Base(file), filepath.Ext(file)), string(src))
		if err != nil {
			return err
		}
		kernel = file
	} else {
		k, err := workloads.ByName(kernel)
		if err != nil {
			return err
		}
		mod, err = k.Build(sz)
		if err != nil {
			return err
		}
	}

	var target *roofline.Target
	if calPath != "" {
		cal, err := platform.LoadCalibration(calPath)
		if err != nil {
			return err
		}
		if target, err = roofline.FromCalibration(b, cal); err != nil {
			return err
		}
		fmt.Printf("loaded calibration for %s (fitted %s by %s)\n",
			b.Name, cal.Provenance.FitDate, cal.Provenance.Tool)
	} else {
		fmt.Printf("calibrating rooflines for %s (one-time microbenchmarks)...\n", b.Name)
		if target, err = roofline.Resolve(b); err != nil {
			return err
		}
	}
	consts, p := target.Constants, target.Platform
	fmt.Printf("  compute roof %.1f GF/s, memory roof %.1f GB/s, balance %.1f FpB\n",
		consts.PeakGFlops, consts.PeakGBs, consts.BtDRAM)
	if saveCal != "" {
		if target.Calibration == nil {
			return fmt.Errorf("nothing to save: target carries no calibration artifact")
		}
		if err := target.Calibration.Save(saveCal); err != nil {
			return err
		}
		fmt.Printf("calibration artifact saved to %s\n", saveCal)
	}

	if plans != nil {
		// A loaded table must match this exact description and calibration;
		// staleness is a hard error (rebuild the table), never silent reuse.
		for _, tb := range plans.Tables() {
			if tb.Backend != b.Name {
				continue
			}
			if err := tb.Matches(target); err != nil {
				return err
			}
		}
	}

	cfg := core.DefaultConfig(target)
	cfg.Search.Objective = obj
	cfg.Search.Epsilon = epsilon
	cfg.CapLevel = lvl
	cfg.Tiling = tspec
	cfg.Degrade = policy
	cfg.Faults = reg
	cfg.Plans = plans

	res, err := core.Compile(mod, cfg)
	if err != nil {
		return err
	}

	finalCaps := 0
	for _, op := range res.Module.Funcs[0].Ops {
		if _, ok := op.(*ir.SetUncoreCap); ok {
			finalCaps++
		}
	}
	rec := reportRecord{CapsInserted: res.CapsInserted, CapsRemoved: res.CapsRemoved, FinalCaps: finalCaps}
	for _, st := range res.Timings.Stages {
		rec.Stages = append(rec.Stages, stageRow{
			Name:     st.Stage,
			MS:       float64(st.Duration) / float64(time.Millisecond),
			CacheHit: st.CacheHit,
		})
	}
	for _, r := range res.Reports {
		row := reportRow{
			Label: r.Label, OI: r.OI, Class: r.Class.String(),
			Tiled: r.Tiled, Tiling: r.Tiling, TileSize: r.TileSize,
			CapGHz: r.CapGHz, Degraded: r.Degraded,
			Plan: r.PlanHit,
		}
		if r.Err != nil {
			row.Err = r.Err.Error()
		}
		if r.Degraded && r.CM == nil {
			row.NoCM = true
		} else {
			row.DT = 100 * (1 - r.Est.Seconds/r.EstDefault.Seconds)
			row.DE = 100 * (1 - r.Est.Joules/r.EstDefault.Joules)
			row.DEDP = 100 * (1 - r.Est.EDP/r.EstDefault.EDP)
		}
		rec.Rows = append(rec.Rows, row)
	}

	fmt.Printf("\n%s on %s (%s objective, %s-level caps, %s size)\n",
		kernel, p.Name, obj, lvl, sz)
	printRows(rec)
	if plans != nil {
		st := plans.Stats()
		fmt.Printf("plan tables: %d loaded, %d hits, %d fallbacks to live search, %d stale\n",
			st.Loaded, st.Hits, st.Fallbacks, st.Stale)
	}
	fmt.Printf("\ncompile time: preprocess %v, pluto %v, polyufc-cm %v, steps4-6 %v\n",
		res.Timings.Preprocess, res.Timings.Pluto, res.Timings.CM, res.Timings.Steps46)
	if jrnl != nil {
		if err := jrnl.Record(jkey, &rec); err != nil {
			return err
		}
	}

	if printIR {
		fmt.Println("\n--- transformed module ---")
		fmt.Print(res.Module.Print())
	}

	if measure {
		m := hw.NewMachine(p)
		m.SetFaults(reg)
		m.SetUncoreCap(p.UncoreMax)
		var base hw.RunResult
		for _, op := range res.Module.Funcs[0].Ops {
			if nest, ok := op.(*ir.Nest); ok {
				r, err := m.RunNest(nest)
				if err != nil {
					return err
				}
				base.Seconds += r.Seconds
				base.PkgJoules += r.PkgJoules
			}
		}
		base.EDP = base.PkgJoules * base.Seconds
		var capped hw.RunResult
		if reg != nil {
			// Faults armed: run through the hardened controller so cap
			// writes retry with backoff and the default cap is restored
			// even when the run dies.
			opts := hw.DefaultCapControllerOptions(p)
			opts.JitterSeed = faultSeed
			opts.BestEffort = policy == core.BestEffort
			ctl := hw.NewCapController(m, opts)
			capped, err = ctl.RunFunc(res.Module.Funcs[0])
			if err != nil {
				return err
			}
			st := ctl.Stats()
			fmt.Printf("\ncap controller: %d applies, %d writes, %d retries, %d failures, %d overrides corrected, %d restores\n",
				st.Applies, st.Writes, st.Retries, st.Failures, st.Overrides, st.Restores)
			if n := m.ThermalOverrides(); n > 0 {
				fmt.Printf("thermal overrides injected: %d\n", n)
			}
		} else {
			capped, err = m.RunFunc(res.Module.Funcs[0])
			if err != nil {
				return err
			}
		}
		fmt.Printf("\nmeasured on the simulated %s:\n", p.Name)
		fmt.Printf("  baseline (uncore %.1f GHz): %.4f ms, %.4f J, EDP %.4g\n",
			p.UncoreMax, base.Seconds*1e3, base.PkgJoules, base.EDP)
		fmt.Printf("  polyufc capped:            %.4f ms, %.4f J, EDP %.4g (%+.1f%%)\n",
			capped.Seconds*1e3, capped.PkgJoules, capped.EDP,
			100*(1-capped.EDP/base.EDP))
	}
	return nil
}
