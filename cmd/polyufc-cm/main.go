// Command polyufc-cm inspects the PolyUFC-CM cache model for one kernel:
// per-level hit/miss breakdown, DRAM traffic, operational intensity and
// CB/BB characterization, optionally validated against the exact
// trace-driven cache simulator.
//
// Usage:
//
//	polyufc-cm -kernel gemm -arch bdw -validate
//	polyufc-cm -kernel mvt -arch rpl -fully-assoc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"polyufc/internal/cachemodel"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/platform"
	"polyufc/internal/pluto"
	"polyufc/internal/roofline"
	"polyufc/internal/scop"
	"polyufc/internal/workloads"
)

func main() {
	var (
		kernel     = flag.String("kernel", "", "kernel name (see polyufc -list)")
		platName   = flag.String("platform", "", "platform backend name or alias from the registry")
		arch       = flag.String("arch", "bdw", "legacy spelling of -platform")
		platFiles  = flag.String("platform-file", "", "comma-separated backend description files (platforms/*.json) to register before lookup")
		size       = flag.String("size", "test", "size class: test, bench, full")
		fullyAssoc = flag.Bool("fully-assoc", false, "use the fully-associative model (Fig. 8 ablation)")
		noTile     = flag.Bool("no-tile", false, "skip Pluto tiling")
		validate   = flag.Bool("validate", false, "run the exact cache simulator for comparison")
		dumpScop   = flag.Bool("scop", false, "dump each nest's OpenSCoP-style JSON instead of analyzing")
		topo       = flag.Bool("topology", false, "print the resolved platform's topology (sockets, interconnect, nodes) and exit")
	)
	flag.Parse()
	name := *platName
	if name == "" {
		name = *arch
	}
	if *topo {
		if err := printTopology(name, *platFiles); err != nil {
			fmt.Fprintln(os.Stderr, "polyufc-cm:", err)
			os.Exit(1)
		}
		return
	}
	if *kernel == "" {
		fmt.Fprintln(os.Stderr, "polyufc-cm: -kernel is required")
		os.Exit(2)
	}
	if err := run(*kernel, name, *platFiles, *size, *fullyAssoc, *noTile, *validate, *dumpScop); err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-cm:", err)
		os.Exit(1)
	}
}

// printTopology renders the backend's socket/interconnect/node layout.
func printTopology(platName, platFiles string) error {
	for _, f := range strings.Split(platFiles, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		if _, err := platform.LoadFile(f); err != nil {
			return err
		}
	}
	b, err := platform.Lookup(platName)
	if err != nil {
		return err
	}
	fmt.Print(b.TopologySummary())
	return nil
}

func run(kernel, platName, platFiles, size string, fullyAssoc, noTile, validate, dumpScop bool) error {
	for _, f := range strings.Split(platFiles, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		if _, err := platform.LoadFile(f); err != nil {
			return err
		}
	}
	p, err := hw.PlatformByName(platName)
	if err != nil {
		return err
	}
	var sz workloads.SizeClass
	switch size {
	case "test", "":
		sz = workloads.Test
	case "bench":
		sz = workloads.Bench
	case "full":
		sz = workloads.Full
	default:
		return fmt.Errorf("unknown size %q", size)
	}
	k, err := workloads.ByName(kernel)
	if err != nil {
		return err
	}
	mod, err := k.BuildAffine(sz)
	if err != nil {
		return err
	}
	consts, err := roofline.Calibrate(hw.NewMachine(p))
	if err != nil {
		return err
	}

	opts := cachemodel.DefaultOptions()
	opts.FullyAssoc = fullyAssoc

	for _, f := range mod.Funcs {
		for _, op := range f.Ops {
			nest, ok := op.(*ir.Nest)
			if !ok {
				continue
			}
			if !noTile {
				res, err := pluto.Optimize(nest, pluto.DefaultOptions())
				if err != nil {
					return err
				}
				nest = res.Nest
			}
			if dumpScop {
				sc, err := scop.Export(nest)
				if err != nil {
					return err
				}
				data, err := sc.Marshal()
				if err != nil {
					return err
				}
				fmt.Println(string(data))
				continue
			}
			cmOpts := opts
			if nest.Root != nil && nest.Root.Parallel {
				cmOpts.Threads = p.Threads
			}
			cm, err := cachemodel.Analyze(nest, p.Cache, cmOpts)
			if err != nil {
				return err
			}
			fmt.Printf("== %s (%s, %s model) ==\n", nest.Label, p.Name,
				assocName(fullyAssoc))
			fmt.Printf("   flops %d, loads %d, stores %d, instances %d\n",
				cm.Flops, cm.Loads, cm.Stores, cm.Instances)
			for _, lv := range cm.Levels {
				fmt.Printf("   %-4s accesses %12d  cold %10d  cap/conf %10d  miss-ratio %.4f  fit-window %d\n",
					lv.Name, lv.Accesses, lv.ColdMisses, lv.CapConfMisses, lv.MissRatio, lv.FitWindow)
			}
			fmt.Printf("   Q_DRAM %d B (x%d threads), OI %.3f FpB -> %s (balance %.1f)\n",
				cm.QDRAM, cm.ThreadsDiv, cm.OI, consts.Classify(cm.OI), consts.BtDRAM)
			if validate {
				prof, err := hw.ProfileNest(nest, p.Cache)
				if err != nil {
					return err
				}
				fmt.Printf("   simulator (serial): LLC misses %d vs model %d x%d, DRAM reads %d B\n",
					prof.LLCMisses, cm.LLC().Misses, cm.ThreadsDiv, prof.DRAMReadB)
			}
		}
	}
	return nil
}

func assocName(fa bool) string {
	if fa {
		return "fully-associative"
	}
	return "set-associative"
}
