// Command polyufc-serve runs the PolyUFC compilation service: an HTTP
// daemon exposing the compiler pipeline as /v1/compile, /v1/characterize
// and /v1/search, hardened for long-running operation — bounded admission
// queue (429 + Retry-After under load), per-request deadlines, a circuit
// breaker quarantining a sick UFS driver (measured requests degrade to
// model-only answers), LRU-bounded caches, a crash-safe response journal,
// and graceful drain on SIGTERM/SIGINT: the listener stops accepting,
// in-flight requests finish, running jobs checkpoint, and the
// driver-default uncore cap is restored before exit.
//
// With -jobs-dir the daemon also runs the async job tier (POST /v1/jobs):
// journal-backed sweep/characterize/plan-table/refit jobs that survive
// kill -9 and resume byte-identically, plus the calibration-drift
// watchdog that auto-enqueues a re-fit when measured runs disagree with
// the calibrated model.
//
// With -cas-dir the daemon persists deterministic responses, calibration
// artifacts and plan tables in a content-addressed store and warm-starts
// from it after a restart; with -peer it also exchanges those entries
// with fleet peers over GET/PUT /v1/cas/{key} — deadline-bounded, hedged,
// checksum-verified, behind per-peer circuit breakers, degrading to local
// compute on any peer failure.
//
// Usage:
//
//	polyufc-serve -addr :8321
//	polyufc-serve -addr :8321 -journal serve.jsonl -resume
//	polyufc-serve -addr :8321 -jobs-dir /var/lib/polyufc/jobs
//	polyufc-serve -addr :8321 -cas-dir /var/lib/polyufc/cas -peer http://10.0.0.2:8321
//	polyufc-serve -fault "ufs.write.ebusy=0.5" -breaker-threshold 2
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"polyufc/internal/core"
	"polyufc/internal/faults"
	"polyufc/internal/platform"
	"polyufc/internal/server"
	"polyufc/internal/tiling"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8321", "listen address")
		concurrency = flag.Int("concurrency", 0, "requests served at once (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "admission queue depth before shedding load with 429")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		brkThresh   = flag.Int("breaker-threshold", 3, "consecutive driver failures that trip the cap breaker")
		brkCooldown = flag.Duration("breaker-cooldown", time.Second, "how long a tripped breaker stays open before probing")
		cacheLimit  = flag.Int("cache-limit", 1024, "LRU bound on the compile and profile caches")
		degrade     = flag.String("degrade", "strict", "compilation failure policy: strict or best-effort")
		tilingSpec  = flag.String("tiling", "", `default tiling strategy for requests that omit one: pluto, pluto:size=64, cacheoblivious[:base=N], latency[:probe=N], auto`)
		fault       = flag.String("fault", "", `inject failures, e.g. "ufs.write.ebusy=0.5; core.pluto=@2"`)
		faultSeed   = flag.Int64("fault-seed", 1, "seed for probabilistic fault triggers")
		faultSocket = flag.Int("fault-socket", -1, "scope -fault on multi-socket backends: -1 arms every socket's machine, k >= 0 only socket k's")
		topo        = flag.Bool("topology", false, "print the served backends' topologies (sockets, interconnect, nodes) and exit")
		journalPath = flag.String("journal", "", "checkpoint deterministic responses to this JSONL journal")
		resume      = flag.Bool("resume", false, "replay an existing journal instead of truncating it")
		platFiles   = flag.String("platform-file", "", "comma-separated backend description files (platforms/*.json); the daemon serves every registered backend")
		planTables  = flag.String("plan-table", "", "comma-separated precomputed capping-plan tables (polyufc -build-plan-table); a table whose backend or calibration hash is stale fails boot")
		jobsDir     = flag.String("jobs-dir", "", "enable the async job tier, journaling jobs (and built plan tables) under this directory")
		jobWorkers  = flag.Int("job-workers", 2, "concurrent job executors (with -jobs-dir)")
		jobCompact  = flag.Int("job-compact-threshold", 0, "prunable terminal-job records that trigger jobs-journal compaction (0 = default 512, negative disables)")
		driftThresh = flag.Float64("drift-threshold", 0, "model-vs-measured EWMA residual that marks a backend's calibration degraded (0 = default 0.25)")
		driftMin    = flag.Int64("drift-min-samples", 0, "measured samples before the drift threshold applies (0 = default 3)")
		casDir      = flag.String("cas-dir", "", "enable the persistent content-addressed cache under this directory (responses, calibrations and plan tables survive restarts)")
		casMaxBytes = flag.Int64("cas-max-bytes", 0, "LRU bound on the persistent cache's payload volume in bytes (0 = unbounded)")
		peerTimeout = flag.Duration("peer-timeout", 0, "per-attempt deadline for fleet peer lookups (0 = default 500ms)")
		peerRetries = flag.Int("peer-retries", 0, "extra backoff rounds over the peer set after an all-error round (0 = default 1)")
	)
	var peers []string
	flag.Func("peer", "fleet peer base URL, e.g. http://10.0.0.2:8321 (repeatable, or comma-separated)", func(v string) error {
		for _, p := range strings.Split(v, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, strings.TrimSuffix(p, "/"))
			}
		}
		return nil
	})
	flag.Parse()

	policy, ok := core.ParseDegradePolicy(*degrade)
	if !ok {
		fmt.Fprintf(os.Stderr, "polyufc-serve: unknown degrade policy %q (want strict or best-effort)\n", *degrade)
		os.Exit(1)
	}
	reg, err := faults.Parse(*fault, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-serve:", err)
		os.Exit(1)
	}
	tspec, err := tiling.ParseSpec(*tilingSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-serve:", err)
		os.Exit(1)
	}
	cfg := server.DefaultConfig()
	if *concurrency <= 0 {
		*concurrency = runtime.GOMAXPROCS(0)
	}
	cfg.Concurrency = *concurrency
	cfg.Queue = *queue
	cfg.RequestTimeout = *reqTimeout
	cfg.DrainTimeout = *drain
	cfg.Breaker.Threshold = *brkThresh
	cfg.Breaker.Cooldown = *brkCooldown
	cfg.CacheLimit = *cacheLimit
	cfg.Degrade = policy
	cfg.Tiling = tspec
	cfg.Faults = reg
	cfg.FaultSeed = *faultSeed
	cfg.FaultSocket = *faultSocket
	cfg.JournalPath = *journalPath
	cfg.Resume = *resume
	cfg.JobsDir = *jobsDir
	cfg.JobWorkers = *jobWorkers
	cfg.JobCompactThreshold = *jobCompact
	cfg.Drift.Threshold = *driftThresh
	cfg.Drift.MinSamples = *driftMin
	cfg.CASDir = *casDir
	cfg.CASMaxBytes = *casMaxBytes
	cfg.Peers = peers
	cfg.PeerTimeout = *peerTimeout
	cfg.PeerRetries = *peerRetries
	for _, f := range strings.Split(*platFiles, ",") {
		if f = strings.TrimSpace(f); f != "" {
			cfg.PlatformFiles = append(cfg.PlatformFiles, f)
		}
	}
	for _, f := range strings.Split(*planTables, ",") {
		if f = strings.TrimSpace(f); f != "" {
			cfg.PlanTables = append(cfg.PlanTables, f)
		}
	}
	if *topo {
		for _, f := range cfg.PlatformFiles {
			if _, err := platform.LoadFile(f); err != nil {
				fmt.Fprintln(os.Stderr, "polyufc-serve:", err)
				os.Exit(1)
			}
		}
		for _, b := range platform.All() {
			fmt.Print(b.TopologySummary())
		}
		return
	}
	if err := run(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if len(cfg.PlanTables) > 0 {
		fmt.Fprintf(os.Stderr, "polyufc-serve: %d capping-plan table(s) loaded and pinned to the live calibration\n",
			len(cfg.PlanTables))
	}
	if cfg.JournalPath != "" {
		st := srv.JournalStats()
		fmt.Fprintf(os.Stderr, "polyufc-serve: journal %s: %d entries loaded (%d torn dropped)\n",
			cfg.JournalPath, st.Entries, st.Dropped)
	}
	if cfg.JobsDir != "" {
		st := srv.JobStats()
		fmt.Fprintf(os.Stderr, "polyufc-serve: job tier on %s: %d job(s) journaled, %d resumed\n",
			cfg.JobsDir, st.Jobs, st.ByState["queued"])
	}
	if cfg.CASDir != "" {
		st := srv.CASStats()
		fmt.Fprintf(os.Stderr, "polyufc-serve: cas %s: %d entries warm-started (%d quarantined)\n",
			cfg.CASDir, st.WarmEntries, st.Quarantined)
	}
	if len(cfg.Peers) > 0 {
		fmt.Fprintf(os.Stderr, "polyufc-serve: fleet mode: %d peer(s): %s\n",
			len(cfg.Peers), strings.Join(cfg.Peers, ", "))
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "polyufc-serve: listening on %s (concurrency %d, queue %d)\n",
		ln.Addr(), cfg.Concurrency, cfg.Queue)
	err = srv.Run(ctx, ln)
	fmt.Fprintln(os.Stderr, "polyufc-serve: drained, jobs checkpointed, caps restored, bye")
	return err
}
