// Command polyufc-bench regenerates the paper's tables and figures on the
// simulated platforms: fig1, fig5, fig6, fig7, fig8, tab1-tab4, overhead,
// dedup, or all.
//
// Usage:
//
//	polyufc-bench -exp fig7 -size bench
//	polyufc-bench -exp all -size test -j 8
//
// Sweeps fan out over a worker pool (-j workers, default GOMAXPROCS) with
// memoized compilations; output is byte-identical to -j 1. Ctrl-C cancels
// in-flight sweeps cleanly.
//
// With -journal the sweep checkpoints each completed unit of work (one
// kernel at one frequency for fig1, one comparison row for fig7) to a
// crash-safe JSONL file; a killed run restarted with -resume replays the
// completed entries instead of re-evaluating them, and the rendered
// figures are byte-identical to an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"polyufc/internal/core"
	"polyufc/internal/experiments"
	"polyufc/internal/faults"
	"polyufc/internal/journal"
	"polyufc/internal/platform"
	"polyufc/internal/tiling"
	"polyufc/internal/workloads"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id: "+fmt.Sprint(experiments.ExperimentIDs()))
		size      = flag.String("size", "bench", "problem size class: test, bench, full")
		jobs      = flag.Int("j", 0, "worker-pool size for sweeps (0 = GOMAXPROCS, 1 = serial)")
		degrade   = flag.String("degrade", "strict", "failure policy: strict (fail fast) or best-effort (drop failing kernels with a summary)")
		tilingStr = flag.String("tiling", "", "tiling strategy for every sweep: pluto (default), cacheoblivious[:base=N], latency[:probe=N], auto")
		fault     = flag.String("fault", "", `inject failures, e.g. "ufs.write.ebusy=0.3; core.cachemodel=@2"`)
		faultSeed = flag.Int64("fault-seed", 1, "seed for probabilistic fault triggers")
		jpath     = flag.String("journal", "", "checkpoint sweep progress to this JSONL file")
		resume    = flag.Bool("resume", false, "replay completed entries from an existing -journal instead of truncating it")
		stageInfo = flag.Bool("stage-stats", false, "print per-stage pipeline aggregates and stage-cache reuse to stderr after the run")
		platSet   = flag.String("platforms", "paper", `backend set to sweep: "paper" (the two Table-III machines) or "all" registered backends`)
		platFiles = flag.String("platform-file", "", "comma-separated backend description files (platforms/*.json) to register before the sweep")
		topo      = flag.Bool("topology", false, "print the swept backends' topologies (sockets, interconnect, nodes) and exit")
	)
	flag.Parse()

	policy, ok := core.ParseDegradePolicy(*degrade)
	if !ok {
		fmt.Fprintf(os.Stderr, "polyufc-bench: unknown degrade policy %q\n", *degrade)
		os.Exit(2)
	}
	reg, err := faults.Parse(*fault, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
		os.Exit(2)
	}
	tspec, err := tiling.ParseSpec(*tilingStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
		os.Exit(2)
	}

	var sz workloads.SizeClass
	switch *size {
	case "test":
		sz = workloads.Test
	case "bench", "":
		sz = workloads.Bench
	case "full":
		sz = workloads.Full
	default:
		fmt.Fprintf(os.Stderr, "polyufc-bench: unknown size %q\n", *size)
		os.Exit(2)
	}

	for _, f := range strings.Split(*platFiles, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		if _, err := platform.LoadFile(f); err != nil {
			fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
			os.Exit(1)
		}
	}
	var backends []*platform.Backend
	switch *platSet {
	case "paper", "":
		backends = platform.Paper()
	case "all":
		backends = platform.All()
	default:
		fmt.Fprintf(os.Stderr, "polyufc-bench: unknown platform set %q (want paper or all)\n", *platSet)
		os.Exit(2)
	}
	if *topo {
		for _, b := range backends {
			fmt.Print(b.TopologySummary())
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := experiments.NewBackends(sz, os.Stdout, backends)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
		os.Exit(1)
	}
	s.Concurrency = *jobs
	s.Ctx = ctx
	s.Degrade = policy
	s.Faults = reg
	s.Tiling = tspec
	if *jpath != "" {
		if !*resume {
			if err := os.Remove(*jpath); err != nil && !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
				os.Exit(1)
			}
		}
		j, err := journal.Open(*jpath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
			os.Exit(1)
		}
		defer j.Close()
		if *resume {
			st := j.Stats()
			fmt.Fprintf(os.Stderr, "polyufc-bench: resuming from %s: %d completed entries (%d torn dropped)\n",
				*jpath, st.Entries, st.Dropped)
		}
		s.Journal = j
	}
	if err := s.Run(*exp); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "polyufc-bench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
		os.Exit(1)
	}
	if *stageInfo {
		printStageStats(s)
	}
}

// printStageStats renders the sweep's per-stage pipeline aggregates on
// stderr (stdout stays byte-identical for figure diffing).
func printStageStats(s *experiments.Suite) {
	sh, sm := s.StageCacheStats()
	fmt.Fprintf(os.Stderr, "polyufc-bench: stage cache: %d hits, %d misses\n", sh, sm)
	stats := s.StageStats()
	for _, name := range s.StageNames() {
		st := stats[name]
		fmt.Fprintf(os.Stderr, "  %-16s %4d runs %4d memoized %3d errors %10.2fms\n",
			name, st.Runs, st.CacheHits, st.Errors,
			float64(st.Total)/float64(time.Millisecond))
	}
}
