// Command polyufc-bench regenerates the paper's tables and figures on the
// simulated platforms: fig1, fig5, fig6, fig7, fig8, tab1-tab4, overhead,
// dedup, or all.
//
// Usage:
//
//	polyufc-bench -exp fig7 -size bench
//	polyufc-bench -exp all -size test
package main

import (
	"flag"
	"fmt"
	"os"

	"polyufc/internal/experiments"
	"polyufc/internal/workloads"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id: "+fmt.Sprint(experiments.ExperimentIDs()))
		size = flag.String("size", "bench", "problem size class: test, bench, full")
	)
	flag.Parse()

	var sz workloads.SizeClass
	switch *size {
	case "test":
		sz = workloads.Test
	case "bench", "":
		sz = workloads.Bench
	case "full":
		sz = workloads.Full
	default:
		fmt.Fprintf(os.Stderr, "polyufc-bench: unknown size %q\n", *size)
		os.Exit(2)
	}

	s, err := experiments.New(sz, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
		os.Exit(1)
	}
	if err := s.Run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "polyufc-bench:", err)
		os.Exit(1)
	}
}
