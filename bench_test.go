// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per artifact (see DESIGN.md's per-experiment
// index), plus the ablation benches DESIGN.md calls out. Problem sizes
// default to the Test class so `go test -bench=.` stays fast; set
// POLYUFC_BENCH_SIZE=bench (or full) to run evaluation shapes.
package polyufc_test

import (
	"context"
	"os"
	"sync"
	"testing"

	"polyufc/internal/cachemodel"
	"polyufc/internal/core"
	"polyufc/internal/experiments"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/model"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/workloads"
)

func benchSize() workloads.SizeClass {
	switch os.Getenv("POLYUFC_BENCH_SIZE") {
	case "bench":
		return workloads.Bench
	case "full":
		return workloads.Full
	}
	return workloads.Test
}

var (
	suiteOnce sync.Once
	suiteVal  *experiments.Suite
	suiteErr  error
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = experiments.New(benchSize(), nil)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// benchSuiteSweep renders the three kernel-sweep figures (Fig. 1, 6, 7) —
// the evaluation's hot path — on a dedicated suite.
func benchSuiteSweep(b *testing.B, concurrency int, keepCache bool) {
	b.Helper()
	s, err := experiments.New(benchSize(), nil)
	if err != nil {
		b.Fatal(err)
	}
	s.Concurrency = concurrency
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !keepCache {
			s.ResetCache()
		}
		for _, id := range []string{"fig1", "fig6", "fig7"} {
			if err := s.Run(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSuiteSerial is the cold baseline: one worker, and the compile
// and profile caches are dropped before every sweep, so each pass
// recompiles and re-simulates every kernel from scratch.
func BenchmarkSuiteSerial(b *testing.B) { benchSuiteSweep(b, 1, false) }

// BenchmarkSuiteParallel is the evaluation engine at steady state:
// GOMAXPROCS workers with the memoizing compile and profile caches kept
// warm across sweeps, as in repeated evaluation runs.
func BenchmarkSuiteParallel(b *testing.B) { benchSuiteSweep(b, 0, true) }

// BenchmarkSuiteParallelColdCache isolates the worker pool's contribution:
// GOMAXPROCS workers, but both caches are dropped every iteration as in
// the serial baseline.
func BenchmarkSuiteParallelColdCache(b *testing.B) { benchSuiteSweep(b, 0, false) }

// BenchmarkFig1UncoreSweep regenerates the Fig. 1 motivation sweeps:
// time/energy/EDP of conv2d, 2mm, gemver, mvt across the uncore range.
func BenchmarkFig1UncoreSweep(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		for _, p := range s.Platforms() {
			series, err := s.Fig1(p)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 && p.Name == "BDW" {
				for _, sr := range series {
					b.ReportMetric(sr.BestEDP, sr.Kernel+"_bestEDP_GHz")
				}
			}
		}
	}
}

// BenchmarkFig5PhaseChanges regenerates the sdpa dialect phase study.
func BenchmarkFig5PhaseChanges(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		pat, err := s.Fig5Pattern()
		if err != nil {
			b.Fatal(err)
		}
		if pat == "" {
			b.Fatal("empty pattern")
		}
	}
}

// BenchmarkFig6Characterization regenerates the roofline characterization
// of the ML kernels on both platforms and reports agreement.
func BenchmarkFig6Characterization(b *testing.B) {
	s := suite(b)
	names := []string{"conv2d-convnext", "sdpa-bert", "lm-head-gpt2"}
	for i := 0; i < b.N; i++ {
		agree, total := 0, 0
		for _, p := range s.Platforms() {
			rows, err := s.Fig6(p, names)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				total++
				if r.Correct {
					agree++
				}
			}
		}
		if i == 0 {
			b.ReportMetric(float64(agree)/float64(total), "class_agreement")
		}
	}
}

// BenchmarkFig7EDPComparison regenerates the headline comparison against
// the UFS-driver baseline over a representative kernel set and reports the
// geomean EDP improvement.
func BenchmarkFig7EDPComparison(b *testing.B) {
	s := suite(b)
	names := []string{"gemm", "2mm", "mvt", "gemver", "atax", "jacobi-1d",
		"sdpa-bert", "lm-head-gpt2"}
	for i := 0; i < b.N; i++ {
		for _, p := range s.Platforms() {
			rows, err := s.Fig7(p, names)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(100*experiments.GeomeanEDPGain(rows), p.Name+"_geomean_EDP_%")
			}
		}
	}
}

// BenchmarkFig8Associativity regenerates the set- vs fully-associative
// cache-model ablation (gemm on BDW, 2mm on RPL).
func BenchmarkFig8Associativity(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r1, err := s.Fig8("gemm-pow2", s.Platforms()[0])
		if err != nil {
			b.Fatal(err)
		}
		r2, err := s.Fig8("2mm-pow2", s.Platforms()[1])
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r1.BestSetAssoc, "gemm_BDW_setassoc_GHz")
			b.ReportMetric(r1.BestHW, "gemm_BDW_hw_GHz")
			b.ReportMetric(r2.BestSetAssoc, "2mm_RPL_setassoc_GHz")
			b.ReportMetric(r2.BestHW, "2mm_RPL_hw_GHz")
		}
	}
}

// BenchmarkTab1RooflineConstants regenerates the one-time roofline
// calibration of Table I.
func BenchmarkTab1RooflineConstants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range hw.Platforms() {
			c, err := roofline.Calibrate(hw.NewMachine(p))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(c.BtDRAM, p.Name+"_balance_FpB")
			}
		}
	}
}

// BenchmarkTab4CompileTime regenerates the Table-IV compile-time
// breakdown over a kernel subset.
func BenchmarkTab4CompileTime(b *testing.B) {
	s := suite(b)
	names := []string{"gemm", "2mm", "mvt", "conv2d-alexnet", "sdpa-bert"}
	for i := 0; i < b.N; i++ {
		rows, err := s.Tab4(names)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var cm float64
			for _, r := range rows {
				cm += float64(r.Timings.CM.Milliseconds())
			}
			b.ReportMetric(cm, "total_cm_ms")
		}
	}
}

// BenchmarkCapSwitchOverhead regenerates the Sec. VII-F cap-switch
// overhead study on the multi-kernel sdpa (GEMMA2).
func BenchmarkCapSwitchOverhead(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		for _, p := range s.Platforms() {
			r, err := s.Overhead(p)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(r.Cumulative.Microseconds()), p.Name+"_overhead_us")
			}
		}
	}
}

// BenchmarkReuseDedup regenerates the footnote-17 duplicate-elimination
// study.
func BenchmarkReuseDedup(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Dedup("gemm")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Speedup, "dedup_speedup_x")
		}
	}
}

// BenchmarkCapGranularity is the Sec. VI-B ablation: caps applied at
// torch vs linalg vs affine granularity on sdpa.
func BenchmarkCapGranularity(b *testing.B) {
	s := suite(b)
	p := s.Platforms()[1]
	for i := 0; i < b.N; i++ {
		for _, lvl := range []ir.Dialect{ir.DialectTorch, ir.DialectLinalg, ir.DialectAffine} {
			k, err := workloads.ByName("sdpa-bert")
			if err != nil {
				b.Fatal(err)
			}
			mod, err := k.Build(benchSize())
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultConfig(s.Target(p.Name))
			cfg.CapLevel = lvl
			cfg.AmortizeFactor = 0
			res, err := core.Compile(mod, cfg)
			if err != nil {
				b.Fatal(err)
			}
			caps := 0
			for _, op := range res.Module.Funcs[0].Ops {
				if _, ok := op.(*ir.SetUncoreCap); ok {
					caps++
				}
			}
			if i == 0 {
				b.ReportMetric(float64(caps), lvl.String()+"_caps")
			}
		}
	}
}

// BenchmarkEpsilonSweep is the Sec. VI-C ablation: sensitivity of the
// chosen cap to the search threshold epsilon.
func BenchmarkEpsilonSweep(b *testing.B) {
	s := suite(b)
	p := s.Platforms()[0]
	k, err := workloads.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, eps := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
			mod, err := k.Build(benchSize())
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultConfig(s.Target(p.Name))
			cfg.Search = search.Options{Objective: search.ObjectiveEDP, Epsilon: eps}
			if _, err := core.Compile(mod, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkModelVsSim is the analytic-vs-exact ablation: PolyUFC-CM miss
// counts against the trace-driven simulator on tiled matmul.
func BenchmarkModelVsSim(b *testing.B) {
	k, err := workloads.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	p := hw.BDW()
	for i := 0; i < b.N; i++ {
		mod, err := k.BuildAffine(benchSize())
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, op := range mod.Funcs[0].Ops {
			nest := op.(*ir.Nest)
			cm, err := cachemodel.Analyze(nest, p.Cache, cachemodel.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			prof, err := hw.ProfileNest(nest, p.Cache)
			if err != nil {
				b.Fatal(err)
			}
			if prof.LLCMisses > 0 {
				ratio = float64(cm.LLC().Misses) / float64(prof.LLCMisses)
			}
		}
		if i == 0 {
			b.ReportMetric(ratio, "model_vs_sim_LLC_miss_ratio")
		}
	}
}

// BenchmarkJointCoreUncore is the coordinated core+uncore extension study
// (Sec. VII-F discussion): extra EDP gain of joint selection over
// uncore-only capping.
func BenchmarkJointCoreUncore(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		for _, p := range s.Platforms() {
			rows, err := s.Joint(p, []string{"gemm", "mvt"})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				for _, r := range rows {
					b.ReportMetric(100*r.JointExtraGain, p.Name+"_"+r.Kernel+"_extra_EDP_%")
				}
			}
		}
	}
}

// BenchmarkDUFSComparison is the static-vs-runtime uncore scaling study.
func BenchmarkDUFSComparison(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		for _, p := range s.Platforms() {
			rows, err := s.DUFSComparison(p, []string{"gemm", "mvt"})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				for _, r := range rows {
					b.ReportMetric(100*r.PolyUFCvsDUFS, p.Name+"_"+r.Kernel+"_vs_dufs_%")
				}
			}
		}
	}
}

// BenchmarkSearch measures PolyUFC-SEARCH itself (microseconds per kernel
// decision).
func BenchmarkSearch(b *testing.B) {
	p := hw.RPL()
	c, err := roofline.Calibrate(hw.NewMachine(p))
	if err != nil {
		b.Fatal(err)
	}
	ks := model.KernelStats{
		Flops: 2e9, QBytes: 8e9, QDRAM: 64e6, QDRAMTime: 64e6, OI: 31,
		HitRatio:  []float64{0.95, 0.6, 0.5},
		MissRatio: []float64{0.05, 0.4, 0.5},
		Threads:   p.Threads,
	}
	m := model.New(c, ks)
	freqs := p.UncoreSteps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := search.Run(context.Background(), m, freqs, search.DefaultOptions())
		if err != nil || res.BestGHz == 0 {
			b.Fatal("search failed")
		}
	}
}
