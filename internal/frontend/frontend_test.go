package frontend

import (
	"strings"
	"testing"

	"polyufc/internal/interp"
	"polyufc/internal/ir"
	"polyufc/internal/pluto"
)

const gemmSrc = `
# gemm: C = C*beta + A*B
param N = 24
array A[N][N] : f64
array B[N][N] : f64
array C[N][N] : f64

for i = 0 to N-1 {
  for j = 0 to N-1 {
    C[i][j] = C[i][j] * 2;
  }
}
for i = 0 to N-1 {
  for j = 0 to N-1 {
    for k = 0 to N-1 {
      C[i][j] += A[i][k] * B[k][j];
    }
  }
}
`

func TestParseGemm(t *testing.T) {
	mod, err := Parse("gemm", gemmSrc)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Funcs[0]
	if len(f.Ops) != 2 {
		t.Fatalf("nests = %d", len(f.Ops))
	}
	update := f.Ops[1].(*ir.Nest)
	fl, err := update.Flops()
	if err != nil {
		t.Fatal(err)
	}
	// += of a product: 2 flops per instance.
	if fl != 2*24*24*24 {
		t.Fatalf("flops = %d", fl)
	}
	sts := update.Statements()
	if len(sts) != 1 {
		t.Fatalf("statements = %d", len(sts))
	}
	// Accesses: A read, B read, C read (compound), C write.
	if len(sts[0].Stmt.Accesses) != 4 {
		t.Fatalf("accesses = %d: %+v", len(sts[0].Stmt.Accesses), sts[0].Stmt.Accesses)
	}
	writes := 0
	for _, a := range sts[0].Stmt.Accesses {
		if a.Write {
			writes++
			if a.Array.Name != "C" {
				t.Fatalf("write to %s", a.Array.Name)
			}
		}
	}
	if writes != 1 {
		t.Fatalf("writes = %d", writes)
	}
}

func TestParsedKernelMatchesHandBuilt(t *testing.T) {
	// The parsed gemm update nest must execute identically to the
	// hand-built one: same instance count, same address trace length.
	mod := mustParse(t, "gemm", gemmSrc)
	nest := mod.Funcs[0].Ops[1].(*ir.Nest)
	st, err := interp.RunNest(nest, interp.NullTracer{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances != 24*24*24 || st.Loads != 3*st.Instances || st.Stores != st.Instances {
		t.Fatalf("stats = %+v", st)
	}
}

func TestParsedKernelTiles(t *testing.T) {
	mod := mustParse(t, "gemm", gemmSrc)
	nest := mod.Funcs[0].Ops[1].(*ir.Nest)
	res, err := pluto.Optimize(nest, pluto.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tiled {
		t.Fatal("parsed gemm should tile")
	}
	orig, _ := nest.TripCount()
	got, _ := res.Nest.TripCount()
	if orig != got {
		t.Fatalf("tiling changed trips %d -> %d", orig, got)
	}
}

func TestTriangularAndMinMaxBounds(t *testing.T) {
	src := `
param N = 16
array A[N][N]
for i = 0 to N-1 {
  for j = max(0, i-2) to min(N-1, i+2) {
    A[i][j] = A[i][j] + 1;
  }
}
`
	mod, err := Parse("band", src)
	if err != nil {
		t.Fatal(err)
	}
	nest := mod.Funcs[0].Ops[0].(*ir.Nest)
	tc, err := nest.TripCount()
	if err != nil {
		t.Fatal(err)
	}
	// Band of width 5 clipped at the edges: rows 0,1 have 3,4; rows 13..15
	// have 5,5... count directly: sum over i of (min(15,i+2)-max(0,i-2)+1).
	want := int64(0)
	for i := int64(0); i < 16; i++ {
		lo, hi := i-2, i+2
		if lo < 0 {
			lo = 0
		}
		if hi > 15 {
			hi = 15
		}
		want += hi - lo + 1
	}
	if tc != want {
		t.Fatalf("trip count = %d, want %d", tc, want)
	}
}

func TestFloordivBounds(t *testing.T) {
	src := `
param N = 100
array A[N]
for t = 0 to N-1 / 10 {
  A[t] = 0;
}
`
	mod, err := Parse("fd", src)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := mod.Funcs[0].Ops[0].(*ir.Nest).TripCount()
	if err != nil || tc != 10 { // t in [0, floor(99/10)] = [0,9]
		t.Fatalf("trips = %d (%v)", tc, err)
	}
}

func TestScalarsAndFunctions(t *testing.T) {
	src := `
param N = 8
array x[N] : f32
array nrm
for i = 0 to N-1 {
  nrm += x[i] * x[i];
}
for i = 0 to N-1 {
  x[i] = x[i] / sqrt(nrm);
}
`
	mod, err := Parse("norm", src)
	if err != nil {
		t.Fatal(err)
	}
	first := mod.Funcs[0].Ops[0].(*ir.Nest).Statements()[0].Stmt
	// x[i]*x[i] (1 op) + compound add (1 op).
	if first.Flops != 2 {
		t.Fatalf("flops = %d", first.Flops)
	}
	second := mod.Funcs[0].Ops[1].(*ir.Nest).Statements()[0].Stmt
	// divide (1) + sqrt (1).
	if second.Flops != 2 {
		t.Fatalf("flops = %d", second.Flops)
	}
	// The scalar nrm reads with constant index.
	found := false
	for _, a := range second.Accesses {
		if a.Array.Name == "nrm" && len(a.Index) == 1 && a.Index[0].Const == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("scalar access missing")
	}
}

func TestElementTypes(t *testing.T) {
	src := `
array a[4] : f32
array b[4] : f64
array c[4] : i16
for i = 0 to 3 { a[i] = b[i] + c[i]; }
`
	mod, err := Parse("ty", src)
	if err != nil {
		t.Fatal(err)
	}
	arrays := mod.Funcs[0].Arrays()
	sizes := map[string]int64{}
	for _, a := range arrays {
		sizes[a.Name] = a.ElemSize
	}
	if sizes["a"] != 4 || sizes["b"] != 8 || sizes["c"] != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown array", "for i = 0 to 3 { Z[i] = 0; }", "unknown array"},
		{"non-affine", "param N = 4\narray A[N]\nfor i = 0 to 3 { A[i*i] = 0; }", "non-affine"},
		{"bad dims", "array A[4][4]\nfor i = 0 to 3 { A[i] = 0; }", "dims"},
		{"shadow", "array A[4]\nfor i = 0 to 3 { for i = 0 to 3 { A[i] = 0; } }", "shadows"},
		{"unterminated", "array A[4]\nfor i = 0 to 3 { A[i] = 0;", "end of input"},
		{"no nests", "param N = 4\narray A[N]", "no loop nests"},
		{"bad type", "array A[4] : f128\nfor i = 0 to 3 { A[i] = 0; }", "unknown element type"},
		{"bad char", "array A[4]\nfor i = 0 to 3 { A[i] = 0; } @", "unexpected character"},
		{"nonconst param", "param N = 4\nparam M = N\nfor i = 0 to 3 { }", ""},
	}
	for _, c := range cases {
		_, err := Parse(c.name, c.src)
		if c.wantErr == "" {
			continue // just must not panic
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("%s: err = %v, want contains %q", c.name, err, c.wantErr)
		}
	}
}

func TestParamArithmetic(t *testing.T) {
	src := `
param N = 10
param M = 2*N + 4
array A[M]
for i = 0 to M-1 { A[i] = 0; }
`
	mod, err := Parse("pa", src)
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := mod.Funcs[0].Ops[0].(*ir.Nest).TripCount()
	if tc != 24 {
		t.Fatalf("trips = %d", tc)
	}
}

func TestImperfectNestParses(t *testing.T) {
	src := `
param N = 6
array A[N][N]
array s
for i = 0 to N-1 {
  s = 0;
  for j = 0 to N-1 {
    s += A[i][j];
  }
  A[i][0] = s;
}
`
	mod, err := Parse("imp", src)
	if err != nil {
		t.Fatal(err)
	}
	nest := mod.Funcs[0].Ops[0].(*ir.Nest)
	sts := nest.Statements()
	if len(sts) != 3 {
		t.Fatalf("statements = %d", len(sts))
	}
	tc, err := nest.TripCount()
	if err != nil {
		t.Fatal(err)
	}
	if tc != 6+36+6 {
		t.Fatalf("instances = %d", tc)
	}
}

func TestParallelKeyword(t *testing.T) {
	src := `
param N = 8
array A[N]
parallel for i = 0 to N-1 {
  A[i] = A[i] + 1;
}
`
	mod, err := Parse("par", src)
	if err != nil {
		t.Fatal(err)
	}
	nest := mod.Funcs[0].Ops[0].(*ir.Nest)
	if !nest.Root.Parallel {
		t.Fatal("parallel keyword not honored")
	}
	// Misplaced keyword errors out.
	if _, err := Parse("bad", "array A[4]\nparallel A[0] = 1;"); err == nil {
		t.Fatal("expected error for 'parallel' without 'for'")
	}
}

// mustParse parses a known-good kernel source.
func mustParse(t *testing.T, name, src string) *ir.Module {
	t.Helper()
	mod, err := Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}
