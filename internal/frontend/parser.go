package frontend

import (
	"fmt"
	"strconv"
	"strings"

	"polyufc/internal/ir"
)

// Parse compiles source text into an affine-level module named name. Every
// top-level loop becomes one affine nest.
func Parse(name, src string) (*ir.Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: map[string]int64{}, arrays: map[string]*ir.Array{}}
	mod, f := ir.NewModule(name)
	for !p.atEOF() {
		switch {
		case p.peekIdent("param"):
			if err := p.parseParam(); err != nil {
				return nil, err
			}
		case p.peekIdent("array"):
			if err := p.parseArray(); err != nil {
				return nil, err
			}
		case p.peekIdent("for") || p.peekIdent("parallel"):
			loop, err := p.parseLoop(nil)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s_nest%d", name, len(f.Ops))
			f.Ops = append(f.Ops, &ir.Nest{Label: label, Root: loop})
		default:
			t := p.peek()
			return nil, fmt.Errorf("frontend: line %d: expected param, array or for, got %q", t.line, t.text)
		}
	}
	if len(f.Ops) == 0 {
		return nil, fmt.Errorf("frontend: no loop nests in %s", name)
	}
	return mod, nil
}

type parser struct {
	toks   []token
	pos    int
	params map[string]int64
	arrays map[string]*ir.Array
	stmtID int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekIdent(s string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == s
}

func (p *parser) peekSymbol(s string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("frontend: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, fmt.Errorf("frontend: line %d: expected identifier, got %q", t.line, t.text)
	}
	return t, nil
}

// parseParam handles: param N = <const affine expr>.
func (p *parser) parseParam() error {
	p.next() // param
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	e, err := p.parseAffExpr(nil)
	if err != nil {
		return err
	}
	if len(e.Coef) != 0 {
		return fmt.Errorf("frontend: line %d: parameter %s must be constant", name.line, name.text)
	}
	p.params[name.text] = e.Const
	return nil
}

// parseArray handles: array A[e]...[e] [: type].
func (p *parser) parseArray() error {
	p.next() // array
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := p.arrays[name.text]; dup {
		return fmt.Errorf("frontend: line %d: array %s redeclared", name.line, name.text)
	}
	var dims []int64
	for p.peekSymbol("[") {
		p.next()
		e, err := p.parseAffExpr(nil)
		if err != nil {
			return err
		}
		if len(e.Coef) != 0 {
			return fmt.Errorf("frontend: line %d: array extent must be constant", name.line)
		}
		if e.Const <= 0 {
			return fmt.Errorf("frontend: line %d: non-positive extent %d", name.line, e.Const)
		}
		dims = append(dims, e.Const)
		if err := p.expectSymbol("]"); err != nil {
			return err
		}
	}
	if len(dims) == 0 {
		dims = []int64{1} // scalar
	}
	elem := int64(8)
	if p.peekSymbol(":") {
		p.next()
		ty, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch ty.text {
		case "f64", "i64":
			elem = 8
		case "f32", "i32":
			elem = 4
		case "f16", "i16":
			elem = 2
		case "i8":
			elem = 1
		default:
			return fmt.Errorf("frontend: line %d: unknown element type %q", ty.line, ty.text)
		}
	}
	p.arrays[name.text] = ir.NewArray(name.text, elem, dims...)
	return nil
}

// parseLoop handles: [parallel] for iv = <bounds> to <bounds> { body }.
// The parallel keyword is the user's OpenMP-pragma analog; Pluto's own
// analysis may additionally mark loops it proves parallel.
func (p *parser) parseLoop(outer []string) (*ir.Loop, error) {
	parallel := false
	if p.peekIdent("parallel") {
		p.next()
		parallel = true
		if !p.peekIdent("for") {
			t := p.peek()
			return nil, fmt.Errorf("frontend: line %d: expected 'for' after 'parallel'", t.line)
		}
	}
	p.next() // for
	iv, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	for _, o := range outer {
		if o == iv.text {
			return nil, fmt.Errorf("frontend: line %d: loop variable %s shadows an outer loop", iv.line, iv.text)
		}
	}
	if _, isParam := p.params[iv.text]; isParam {
		return nil, fmt.Errorf("frontend: line %d: loop variable %s shadows a parameter", iv.line, iv.text)
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	ivs := append(append([]string(nil), outer...), iv.text)
	lo, err := p.parseBounds(outer, true)
	if err != nil {
		return nil, err
	}
	if t := p.next(); !(t.kind == tokIdent && t.text == "to") {
		return nil, fmt.Errorf("frontend: line %d: expected 'to', got %q", t.line, t.text)
	}
	hi, err := p.parseBounds(outer, false)
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	loop := &ir.Loop{IV: iv.text, Lo: lo, Hi: hi, Parallel: parallel}
	for !p.peekSymbol("}") {
		if p.atEOF() {
			return nil, fmt.Errorf("frontend: unexpected end of input in loop %s", iv.text)
		}
		if p.peekIdent("for") || p.peekIdent("parallel") {
			sub, err := p.parseLoop(ivs)
			if err != nil {
				return nil, err
			}
			loop.Body = append(loop.Body, sub)
			continue
		}
		st, err := p.parseStatement(ivs)
		if err != nil {
			return nil, err
		}
		loop.Body = append(loop.Body, st)
	}
	p.next() // }
	return loop, nil
}

// parseBounds handles a single affine bound, or max(...)/min(...) lists
// (max for lower bounds, min for upper), each optionally followed by
// "/ c" for floor/ceil division.
func (p *parser) parseBounds(ivs []string, lower bool) ([]ir.Bound, error) {
	kw := "min"
	if lower {
		kw = "max"
	}
	var exprs []ir.AffExpr
	if p.peekIdent(kw) {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseAffExpr(ivs)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			if p.peekSymbol(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	} else {
		e, err := p.parseAffExpr(ivs)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}
	div := int64(1)
	if p.peekSymbol("/") {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("frontend: line %d: bound divisor must be a constant", t.line)
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("frontend: line %d: bad divisor %q", t.line, t.text)
		}
		div = v
	}
	out := make([]ir.Bound, len(exprs))
	for i, e := range exprs {
		out[i] = ir.BDiv(e, div)
	}
	return out, nil
}

// parseStatement handles: access (=|+=|-=|*=|/=) expr ;
func (p *parser) parseStatement(ivs []string) (*ir.Statement, error) {
	lhs, err := p.parseAccess(ivs)
	if err != nil {
		return nil, err
	}
	op := p.next()
	if op.kind != tokSymbol {
		return nil, fmt.Errorf("frontend: line %d: expected assignment, got %q", op.line, op.text)
	}
	var compound bool
	switch op.text {
	case "=":
	case "+=", "-=", "*=", "/=":
		compound = true
	default:
		return nil, fmt.Errorf("frontend: line %d: unexpected operator %q", op.line, op.text)
	}
	rhs, err := p.parseExpr(ivs)
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	p.stmtID++
	st := &ir.Statement{Name: fmt.Sprintf("S%d", p.stmtID-1)}
	// Reads: every access in the RHS, plus the LHS for compound updates.
	st.Accesses = append(st.Accesses, rhs.accesses...)
	flops := rhs.flops
	if compound {
		st.Accesses = append(st.Accesses, ir.Access{Array: lhs.Array, Index: lhs.Index})
		flops++
	}
	st.Flops = flops
	write := lhs
	write.Write = true
	st.Accesses = append(st.Accesses, write)
	return st, nil
}

// parseAccess handles: ident [ e ] [ e ] ...; scalars take index [0].
func (p *parser) parseAccess(ivs []string) (ir.Access, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ir.Access{}, err
	}
	arr, ok := p.arrays[name.text]
	if !ok {
		return ir.Access{}, fmt.Errorf("frontend: line %d: unknown array %q", name.line, name.text)
	}
	var idx []ir.AffExpr
	for p.peekSymbol("[") {
		p.next()
		e, err := p.parseAffExpr(ivs)
		if err != nil {
			return ir.Access{}, err
		}
		idx = append(idx, e)
		if err := p.expectSymbol("]"); err != nil {
			return ir.Access{}, err
		}
	}
	if len(idx) == 0 {
		idx = []ir.AffExpr{ir.AffConst(0)} // scalar
	}
	if len(idx) != len(arr.Dims) {
		return ir.Access{}, fmt.Errorf("frontend: line %d: %s has %d dims, indexed with %d",
			name.line, name.text, len(arr.Dims), len(idx))
	}
	return ir.Access{Array: arr, Index: idx}, nil
}

// rhsExpr is the result of parsing a right-hand-side expression: the
// accesses it reads and its operator count (unitary flop model).
type rhsExpr struct {
	accesses []ir.Access
	flops    int64
}

func (p *parser) parseExpr(ivs []string) (rhsExpr, error) {
	e, err := p.parseTerm(ivs)
	if err != nil {
		return e, err
	}
	for p.peekSymbol("+") || p.peekSymbol("-") {
		p.next()
		r, err := p.parseTerm(ivs)
		if err != nil {
			return e, err
		}
		e.accesses = append(e.accesses, r.accesses...)
		e.flops += r.flops + 1
	}
	return e, nil
}

func (p *parser) parseTerm(ivs []string) (rhsExpr, error) {
	e, err := p.parseFactor(ivs)
	if err != nil {
		return e, err
	}
	for p.peekSymbol("*") || p.peekSymbol("/") {
		p.next()
		r, err := p.parseFactor(ivs)
		if err != nil {
			return e, err
		}
		e.accesses = append(e.accesses, r.accesses...)
		e.flops += r.flops + 1
	}
	return e, nil
}

func (p *parser) parseFactor(ivs []string) (rhsExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		return rhsExpr{}, nil
	case t.kind == tokSymbol && t.text == "-":
		p.next()
		e, err := p.parseFactor(ivs)
		e.flops++ // negation
		return e, err
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr(ivs)
		if err != nil {
			return e, err
		}
		return e, p.expectSymbol(")")
	case t.kind == tokIdent:
		// Function call (sqrt, exp, ...) counts one op; otherwise an
		// array access or an induction variable used as a value.
		if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.next()
			p.next()
			e, err := p.parseExpr(ivs)
			if err != nil {
				return e, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return e, err
			}
			e.flops++
			return e, nil
		}
		if _, isArr := p.arrays[t.text]; isArr {
			acc, err := p.parseAccess(ivs)
			if err != nil {
				return rhsExpr{}, err
			}
			return rhsExpr{accesses: []ir.Access{acc}}, nil
		}
		// IVs and parameters used as values cost nothing and touch no
		// memory.
		if contains(ivs, t.text) {
			p.next()
			return rhsExpr{}, nil
		}
		if _, isParam := p.params[t.text]; isParam {
			p.next()
			return rhsExpr{}, nil
		}
		return rhsExpr{}, fmt.Errorf("frontend: line %d: unknown identifier %q", t.line, t.text)
	}
	return rhsExpr{}, fmt.Errorf("frontend: line %d: unexpected token %q in expression", t.line, t.text)
}

// parseAffExpr parses an affine expression over the given IVs and the
// declared parameters: sums and differences of terms c, iv, c*iv, param.
func (p *parser) parseAffExpr(ivs []string) (ir.AffExpr, error) {
	e, err := p.parseAffTerm(ivs)
	if err != nil {
		return e, err
	}
	for p.peekSymbol("+") || p.peekSymbol("-") {
		neg := p.next().text == "-"
		r, err := p.parseAffTerm(ivs)
		if err != nil {
			return e, err
		}
		if neg {
			r = r.Scale(-1)
		}
		e = e.Add(r)
	}
	return e, nil
}

func (p *parser) parseAffTerm(ivs []string) (ir.AffExpr, error) {
	e, err := p.parseAffAtom(ivs)
	if err != nil {
		return e, err
	}
	for p.peekSymbol("*") {
		p.next()
		r, err := p.parseAffAtom(ivs)
		if err != nil {
			return e, err
		}
		// Affine: one side must be constant.
		switch {
		case len(e.Coef) == 0:
			e = r.Scale(e.Const)
		case len(r.Coef) == 0:
			e = e.Scale(r.Const)
		default:
			return e, fmt.Errorf("frontend: non-affine product near line %d", p.peek().line)
		}
	}
	return e, nil
}

func (p *parser) parseAffAtom(ivs []string) (ir.AffExpr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return ir.AffExpr{}, fmt.Errorf("frontend: line %d: integer expected, got %q", t.line, t.text)
		}
		return ir.AffConst(v), nil
	case t.kind == tokSymbol && t.text == "-":
		e, err := p.parseAffAtom(ivs)
		return e.Scale(-1), err
	case t.kind == tokSymbol && t.text == "(":
		e, err := p.parseAffExpr(ivs)
		if err != nil {
			return e, err
		}
		return e, p.expectSymbol(")")
	case t.kind == tokIdent:
		if v, ok := p.params[t.text]; ok {
			return ir.AffConst(v), nil
		}
		if contains(ivs, t.text) {
			return ir.AffVar(t.text), nil
		}
		return ir.AffExpr{}, fmt.Errorf("frontend: line %d: unknown symbol %q in affine expression", t.line, t.text)
	}
	return ir.AffExpr{}, fmt.Errorf("frontend: line %d: unexpected %q in affine expression", t.line, t.text)
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// FormatErrors pretty-prints the first line of a source for diagnostics.
func FormatErrors(src string) string {
	lines := strings.Split(src, "\n")
	if len(lines) == 0 {
		return ""
	}
	return lines[0]
}
