package frontend

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"polyufc/internal/interp"
	"polyufc/internal/ir"
	"polyufc/internal/pluto"
)

// genKernel emits a random affine kernel source: a loop nest of depth 2-3
// with rectangular or triangular bounds and one statement with 1-3 array
// accesses using affine indices.
func genKernel(r *rand.Rand) string {
	var sb strings.Builder
	n := 4 + r.Intn(10)
	fmt.Fprintf(&sb, "param N = %d\n", n)
	fmt.Fprintf(&sb, "array A[N][N] : f64\narray B[N][N] : f64\narray v[N]\n")
	depth := 2 + r.Intn(2)
	ivs := []string{"i", "j", "k"}[:depth]
	for d, iv := range ivs {
		lo := "0"
		hi := "N-1"
		if d > 0 && r.Intn(2) == 0 {
			// Triangular against the previous IV.
			if r.Intn(2) == 0 {
				hi = ivs[d-1]
			} else {
				lo = ivs[d-1]
			}
		}
		fmt.Fprintf(&sb, "%sfor %s = %s to %s {\n", strings.Repeat("  ", d), iv, lo, hi)
	}
	pad := strings.Repeat("  ", depth)
	i0, i1 := ivs[0], ivs[r.Intn(depth)]
	switch r.Intn(3) {
	case 0:
		fmt.Fprintf(&sb, "%sA[%s][%s] += B[%s][%s] * 2;\n", pad, i0, i1, i1, i0)
	case 1:
		fmt.Fprintf(&sb, "%sv[%s] += A[%s][%s];\n", pad, i1, i0, i1)
	default:
		fmt.Fprintf(&sb, "%sA[%s][%s] = A[%s][%s] + B[%s][%s] + 1;\n", pad, i0, i1, i0, i1, i0, i1)
	}
	for d := depth - 1; d >= 0; d-- {
		fmt.Fprintf(&sb, "%s}\n", strings.Repeat("  ", d))
	}
	return sb.String()
}

// TestPropertyParserInterpIslAgree cross-validates three independent
// machineries on random kernels: the parser's IR, the interpreter's
// dynamic instance count, and the polyhedral (symbolic or enumerated)
// domain cardinality must all agree — before and after tiling.
func TestPropertyParserInterpIslAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genKernel(r)
		mod, err := Parse("fuzz", src)
		if err != nil {
			t.Logf("source:\n%s\nerror: %v", src, err)
			return false
		}
		nest := mod.Funcs[0].Ops[0].(*ir.Nest)
		static, err := nest.TripCount()
		if err != nil {
			t.Logf("source:\n%s\ncount error: %v", src, err)
			return false
		}
		dyn, err := interp.RunNest(nest, interp.NullTracer{})
		if err != nil {
			t.Logf("source:\n%s\ninterp error: %v", src, err)
			return false
		}
		if dyn.Instances != static {
			t.Logf("source:\n%s\ninterp %d vs polyhedral %d", src, dyn.Instances, static)
			return false
		}
		// Tiling must preserve both counts when legal.
		res, err := pluto.Optimize(nest, pluto.DefaultOptions())
		if err != nil {
			t.Logf("source:\n%s\npluto error: %v", src, err)
			return false
		}
		if res.Tiled {
			tiledStatic, err := res.Nest.TripCount()
			if err != nil || tiledStatic != static {
				t.Logf("source:\n%s\ntiled count %d (%v) vs %d", src, tiledStatic, err, static)
				return false
			}
			tiledDyn, err := interp.RunNest(res.Nest, interp.NullTracer{})
			if err != nil || tiledDyn.Instances != static {
				t.Logf("source:\n%s\ntiled interp %d (%v)", src, tiledDyn.Instances, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTraceMatchesAccessCounts checks that the dynamic load/store
// counts equal instances times the statement's static access counts.
func TestPropertyTraceMatchesAccessCounts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mod, err := Parse("fuzz", genKernel(r))
		if err != nil {
			return false
		}
		nest := mod.Funcs[0].Ops[0].(*ir.Nest)
		st := nest.Statements()[0].Stmt
		var reads, writes int64
		for _, a := range st.Accesses {
			if a.Write {
				writes++
			} else {
				reads++
			}
		}
		dyn, err := interp.RunNest(nest, interp.NullTracer{})
		if err != nil {
			return false
		}
		return dyn.Loads == reads*dyn.Instances && dyn.Stores == writes*dyn.Instances
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
