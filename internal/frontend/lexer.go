// Package frontend parses a small C-like affine kernel language into the
// affine IR — the role Polygeist's cgeist front end plays in the paper's
// flow. The language covers the affine program class of Sec. II-A:
// parameterized array declarations, perfectly or imperfectly nested loops
// with affine (max/min/floordiv) bounds, and assignment statements over
// affine array accesses. Example:
//
//	param N = 512
//	array A[N][N] : f64
//	array B[N][N] : f64
//	array C[N][N] : f64
//
//	for i = 0 to N-1 {
//	  for j = 0 to N-1 {
//	    for k = 0 to N-1 {
//	      C[i][j] += A[i][k] * B[k][j];
//	    }
//	  }
//	}
//
// Arithmetic on the right-hand side is used for access extraction and
// operator counting (the unitary flop model); values are not computed.
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// lexer tokenizes source text.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// lex splits the source into tokens, dropping comments (# ... or // ...).
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.advance(1)
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line, col: l.col})
	return l.toks, nil
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.advance(1)
	}
}

func (l *lexer) emit(kind tokKind, text string, line, col int) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: line, col: col})
}

func (l *lexer) lexIdent() {
	line, col, start := l.line, l.col, l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.advance(1)
	}
	l.emit(tokIdent, l.src[start:l.pos], line, col)
}

func (l *lexer) lexNumber() {
	line, col, start := l.line, l.col, l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsDigit(c) && c != '.' {
			break
		}
		l.advance(1)
	}
	l.emit(tokNumber, l.src[start:l.pos], line, col)
}

// twoCharSymbols lists the multi-character operators.
var twoCharSymbols = []string{"+=", "-=", "*=", "/=", ".."}

func (l *lexer) lexSymbol() error {
	line, col := l.line, l.col
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.advance(2)
			l.emit(tokSymbol, s, line, col)
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '=', '(', ')', '[', ']', '{', '}', ',', ';', ':':
		l.advance(1)
		l.emit(tokSymbol, string(c), line, col)
		return nil
	}
	return fmt.Errorf("frontend: line %d:%d: unexpected character %q", line, col, c)
}
