package frontend

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"polyufc/internal/ir"
)

// FuzzParse drives the affine-kernel parser with arbitrary sources: any
// input must either parse into a module whose nests survive the basic IR
// walks, or return an error — never panic, hang, or index out of range.
func FuzzParse(f *testing.F) {
	f.Add(gemmSrc)
	f.Add("")
	f.Add("kernel k() {\n}\n")
	f.Add("param N = 8\narray A[N]\nkernel k() {\n  for i = 0 .. N-1 {\n    A[i] = 0;\n  }\n}\n")
	f.Add("param N = -1\narray A[N] : f64")
	f.Add("kernel k( {")
	f.Add("for for for")
	f.Add("param N = 999999999999999999999\n")
	// The shipped example kernels are known-good seeds.
	paths, err := filepath.Glob("../../examples/kernels/*.puc")
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// A few generator outputs widen the valid-grammar surface.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		f.Add(genKernel(r))
	}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		mod, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		if mod == nil {
			t.Fatal("Parse returned nil module and nil error")
		}
		// A successfully parsed module must withstand the downstream IR
		// walks the compiler runs unconditionally.
		for _, fn := range mod.Funcs {
			for _, op := range fn.Ops {
				n, ok := op.(*ir.Nest)
				if !ok {
					continue
				}
				for _, si := range n.Statements() {
					_ = si
				}
				_, _ = n.TripCount()
			}
		}
		_ = mod.Print()
	})
}
