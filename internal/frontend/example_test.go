package frontend_test

import (
	"fmt"

	"polyufc/internal/frontend"
	"polyufc/internal/ir"
)

// ExampleParse compiles a small kernel and inspects its polyhedral
// structure.
func ExampleParse() {
	src := `
param N = 8
array A[N][N] : f64
array x[N]
array y[N]

for i = 0 to N-1 {
  for j = 0 to N-1 {
    y[i] += A[i][j] * x[j];
  }
}
`
	mod, err := frontend.Parse("matvec", src)
	if err != nil {
		panic(err)
	}
	nest := mod.Funcs[0].Ops[0].(*ir.Nest)
	trips, _ := nest.TripCount()
	flops, _ := nest.Flops()
	fmt.Printf("nests: %d\n", len(mod.Funcs[0].Ops))
	fmt.Printf("instances: %d\n", trips)
	fmt.Printf("flops: %d\n", flops)
	// Output:
	// nests: 1
	// instances: 64
	// flops: 128
}
