// Package leakcheck fails a test binary that exits with project
// goroutines still running. The long-running packages (the serving
// daemon, the worker pool, the job tier) spawn goroutines whose leaks
// would surface only in production as slow memory growth; wiring
// leakcheck.Main into a package's TestMain turns every `go test` run
// into a leak assertion.
//
// It is a small, dependency-free take on the goleak idea: after the
// tests finish, snapshot all goroutine stacks and flag any goroutine
// executing (or created by) code in this module. Goroutines still
// winding down get a grace period of re-checks before the run fails.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies this project's frames in a goroutine stack.
const modulePrefix = "polyufc/internal/"

// Main wraps testing.M: run the package's tests, then fail the binary
// if project goroutines outlive them. Use from TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(5 * time.Second); leaked != "" {
			fmt.Fprintf(os.Stderr, "leakcheck: goroutines leaked past the test run:\n\n%s\n", leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls the goroutine set until no project goroutines remain or
// the grace period elapses, returning the offending stacks ("" when
// clean). The grace period absorbs legitimate teardown: a drained
// server's workers exit asynchronously a moment after Close returns.
func Check(grace time.Duration) string {
	deadline := time.Now().Add(grace)
	delay := time.Millisecond
	for {
		leaked := snapshot()
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			return strings.Join(leaked, "\n")
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// snapshot returns the stacks of running project goroutines.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if isProjectGoroutine(g) {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// isProjectGoroutine reports whether the stack block belongs to a
// lingering goroutine of this module. The current goroutine (running
// the check itself), the testing harness, and runtime/stdlib helpers
// are exempt.
func isProjectGoroutine(stack string) bool {
	if !strings.Contains(stack, modulePrefix) {
		return false
	}
	if strings.Contains(stack, "leakcheck.Check") {
		return false // the goroutine running the check itself
	}
	// The main goroutine survives the test run by design: it is the one
	// calling Main.
	if strings.Contains(stack, "testing.(*M).Run") {
		return false
	}
	return true
}
