package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// leakyWorker parks until released — the shape of a real leak: a worker
// goroutine whose owner forgot to close its channel.
func leakyWorker(stop chan struct{}) { <-stop }

func TestCheckDetectsAndClearsLeak(t *testing.T) {
	stop := make(chan struct{})
	go leakyWorker(stop)

	leaked := Check(50 * time.Millisecond)
	if leaked == "" {
		t.Fatal("parked project goroutine not detected")
	}
	if want := "leakcheck.leakyWorker"; !strings.Contains(leaked, want) {
		t.Fatalf("report does not name the leaker %q:\n%s", want, leaked)
	}

	close(stop)
	if leaked := Check(2 * time.Second); leaked != "" {
		t.Fatalf("released goroutine still reported:\n%s", leaked)
	}
}

func TestCheckCleanByDefault(t *testing.T) {
	if leaked := Check(time.Second); leaked != "" {
		t.Fatalf("clean package reported leaks:\n%s", leaked)
	}
}
