package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"polyufc/internal/plantable"

	"polyufc/internal/hw"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/workloads"
)

// twoSocketTarget resolves a 2-socket topology built from the embedded
// BDW description (same sockets, a QPI-shaped link), calibrated once
// per test binary.
func twoSocketTarget(t *testing.T, nodes int) *roofline.Target {
	t.Helper()
	name := "2S-CORE-TEST"
	if nodes > 1 {
		name = "2S-CORE-CLUSTER"
	}
	if tg, ok := testTargets[name]; ok {
		return tg
	}
	bdw, err := platform.Lookup("BDW")
	if err != nil {
		t.Fatal(err)
	}
	sock := bdw.Topology()[0]
	b := &platform.Backend{
		Schema: platform.SchemaVersion, Name: name,
		CPU: "test 2S", Released: 2026,
		Sockets:      []platform.Socket{sock, sock},
		Interconnect: &platform.Interconnect{BWGBs: 19.2, LatencyNs: 120, EnergyPJPerByte: 15},
		Nodes:        nodes,
	}
	b.Normalize()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	tg, err := roofline.Resolve(b)
	if err != nil {
		t.Fatal(err)
	}
	testTargets[name] = tg
	return tg
}

// TestSingleSocketPathUnchanged pins the v1 surface: a single-socket
// compile has no topology rollup and zero-valued placement fields.
func TestSingleSocketPathUnchanged(t *testing.T) {
	res := compileKernel(t, "gemm", workloads.Test, hw.BDW())
	if res.Topology != nil {
		t.Fatalf("single-socket compile grew a topology rollup: %+v", res.Topology)
	}
	for _, rep := range res.Reports {
		if rep.Socket != 0 || rep.RemoteRatio != 0 || rep.SocketCaps != nil {
			t.Fatalf("%s: topology fields set on a single-socket target: %+v", rep.Label, rep)
		}
	}
}

func TestTwoSocketPlacementAndCapVectors(t *testing.T) {
	tg := twoSocketTarget(t, 0)
	cfg := DefaultConfig(tg)
	cfg.AmortizeFactor = 0
	res := compileKernelCfg(t, "gemm", workloads.Test, cfg)

	if res.Topology == nil {
		t.Fatal("2-socket compile produced no topology rollup")
	}
	tr := res.Topology
	if tr.Sockets != 2 || tr.Nodes != 1 {
		t.Fatalf("rollup shape: %d sockets, %d nodes", tr.Sockets, tr.Nodes)
	}
	if tr.ClusterEDP <= 0 || tr.ClusterEDP != tr.NodeJoules*tr.NodeSeconds {
		t.Fatalf("cluster EDP %g inconsistent with node figures %g x %g",
			tr.ClusterEDP, tr.NodeJoules, tr.NodeSeconds)
	}
	topo := tg.Backend.Topology()
	capped := 0
	for _, rep := range res.Reports {
		if rep.Degraded || rep.Est.Seconds <= 0 {
			continue
		}
		capped++
		switch {
		case rep.Socket == -1: // spans both sockets
			if rep.RemoteRatio != 0.5 {
				t.Fatalf("%s: spanning nest remote ratio %g, want 0.5", rep.Label, rep.RemoteRatio)
			}
			if rep.Threads != tg.Backend.TotalThreads() {
				t.Fatalf("%s: spanning nest threads %d, want %d", rep.Label, rep.Threads, tg.Backend.TotalThreads())
			}
			if len(rep.SocketCaps) != 2 || rep.SocketCaps[0] != rep.CapGHz || rep.SocketCaps[1] != rep.CapGHz {
				t.Fatalf("%s: spanning nest cap vector %v, want both at %g", rep.Label, rep.SocketCaps, rep.CapGHz)
			}
		case rep.Socket >= 0 && rep.Socket < 2: // pinned serial nest
			if rep.RemoteRatio != 0 {
				t.Fatalf("%s: pinned nest has remote traffic %g", rep.Label, rep.RemoteRatio)
			}
			if len(rep.SocketCaps) != 2 {
				t.Fatalf("%s: cap vector %v", rep.Label, rep.SocketCaps)
			}
			for k, c := range rep.SocketCaps {
				want := topo[k].UncoreMinGHz
				if k == rep.Socket {
					want = rep.CapGHz
				}
				if c != want {
					t.Fatalf("%s: socket %d cap %g, want %g", rep.Label, k, c, want)
				}
			}
		default:
			t.Fatalf("%s: placement socket %d out of range", rep.Label, rep.Socket)
		}
	}
	if capped == 0 {
		t.Fatal("no capped reports to check placement on")
	}
	// Both sockets see the spanning nests' time; energy attribution sums
	// back to the node total.
	var joules float64
	for k := range tr.SocketJoules {
		if tr.SocketSeconds[k] <= 0 {
			t.Fatalf("socket %d attributed no time", k)
		}
		joules += tr.SocketJoules[k]
	}
	if diff := joules - tr.NodeJoules; diff > 1e-9*tr.NodeJoules || diff < -1e-9*tr.NodeJoules {
		t.Fatalf("per-socket joules %g do not sum to the node total %g", joules, tr.NodeJoules)
	}
}

// TestSerialNestsRoundRobin compiles every registered kernel on the
// 2-socket target and checks the placement invariants hold across the
// whole suite; serial nests (threads 1) must alternate home sockets.
func TestSerialNestsRoundRobin(t *testing.T) {
	tg := twoSocketTarget(t, 0)
	cfg := DefaultConfig(tg)
	cfg.AmortizeFactor = 0
	nextSerial := -1
	sawSerial := false
	for _, k := range workloads.All() {
		res := compileKernelCfg(t, k.Name, workloads.Test, cfg)
		nextSerial = 0 // placement counter restarts per compilation
		for _, rep := range res.Reports {
			if rep.Threads == 1 && rep.Socket >= 0 {
				sawSerial = true
				if rep.Socket != nextSerial%2 {
					t.Fatalf("%s/%s: serial nest on socket %d, want round-robin %d",
						k.Name, rep.Label, rep.Socket, nextSerial%2)
				}
				nextSerial++
			}
		}
	}
	if !sawSerial {
		t.Skip("no serial nests in the registered kernels at test size")
	}
}

func TestClusterScaling(t *testing.T) {
	tg := twoSocketTarget(t, 4)
	cfg := DefaultConfig(tg)
	cfg.AmortizeFactor = 0
	res := compileKernelCfg(t, "gemm", workloads.Test, cfg)
	tr := res.Topology
	if tr == nil || tr.Nodes != 4 {
		t.Fatalf("cluster rollup: %+v", tr)
	}
	if tr.ClusterJoules != 4*tr.NodeJoules {
		t.Fatalf("cluster energy %g, want 4x node %g", tr.ClusterJoules, tr.NodeJoules)
	}
	if tr.ClusterSeconds != tr.NodeSeconds {
		t.Fatal("data-parallel replicas changed the BSP step time")
	}
	if tr.ClusterEDPDefault <= 0 {
		t.Fatal("no default-driver cluster EDP to compare against")
	}
}

// TestV2SpellingCompileEquivalence is the compile-level v1→v2
// equivalence suite: re-spelling an embedded v1 description as an
// explicit one-socket schema-v2 topology changes nothing observable.
// The calibration constants, every compile Result and the capping-plan
// table are byte-identical to the v1 build (only the description's own
// content hash differs — the spelling is part of the hashed document).
func TestV2SpellingCompileEquivalence(t *testing.T) {
	for _, name := range []string{"BDW", "RPL"} {
		v1b, err := platform.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		v2b := &platform.Backend{
			Schema:   platform.SchemaVersion,
			Name:     v1b.Name,
			CPU:      v1b.CPU,
			Released: v1b.Released,
			Sockets:  []platform.Socket{v1b.Topology()[0]},
		}
		v2b.Normalize()
		if err := v2b.Validate(); err != nil {
			t.Fatalf("%s v2 spelling: %v", name, err)
		}
		tg1, err := roofline.Resolve(v1b)
		if err != nil {
			t.Fatal(err)
		}
		tg2, err := roofline.Resolve(v2b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tg1.Constants, tg2.Constants) {
			t.Fatalf("%s: v2 spelling calibrated differently:\nv1 %+v\nv2 %+v", name, tg1.Constants, tg2.Constants)
		}

		for _, kernel := range []string{"gemm", "mvt"} {
			cfg1 := DefaultConfig(tg1)
			cfg1.AmortizeFactor = 0
			r1, err := CompileCtx(context.Background(), buildModule(t, kernel, workloads.Test), cfg1)
			if err != nil {
				t.Fatalf("%s/%s v1: %v", name, kernel, err)
			}
			cfg2 := DefaultConfig(tg2)
			cfg2.AmortizeFactor = 0
			r2, err := CompileCtx(context.Background(), buildModule(t, kernel, workloads.Test), cfg2)
			if err != nil {
				t.Fatalf("%s/%s v2: %v", name, kernel, err)
			}
			if !reflect.DeepEqual(zeroTimings(r1), zeroTimings(r2)) {
				t.Fatalf("%s/%s: v2 spelling compiled differently", name, kernel)
			}
		}

		bo := plantable.BuildOptions{OIPoints: 5, MemPoints: 4}
		tab1, err := plantable.Build(context.Background(), tg1, bo)
		if err != nil {
			t.Fatal(err)
		}
		tab2, err := plantable.Build(context.Background(), tg2, bo)
		if err != nil {
			t.Fatal(err)
		}
		// The backend hash legitimately differs (it hashes the document,
		// spelling included); everything the table serves from must not.
		tab2.BackendHash = tab1.BackendHash
		j1, err := json.Marshal(tab1)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(tab2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("%s: v2 spelling built a different plan table:\nv1 %s\nv2 %s", name, j1, j2)
		}
	}
}
