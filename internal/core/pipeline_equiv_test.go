package core

import (
	"context"
	"reflect"
	"testing"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/pipeline"
	"polyufc/internal/workloads"
)

func buildModule(t *testing.T, name string, size workloads.SizeClass) *ir.Module {
	t.Helper()
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Build(size)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// The memo-equivalence property: per-stage memoization on vs. off yields
// deep-equal Results (modulo wall-clock Timings), both on a cold cache
// and when every memoizable stage is served from a snapshot.
func TestStageMemoOnVsOffIdenticalResults(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0
	for _, name := range []string{"gemm", "2mm", "sdpa-bert"} {
		mod := buildModule(t, name, workloads.Test)
		plain, err := CompileCtx(context.Background(), mod, cfg)
		if err != nil {
			t.Fatalf("%s plain: %v", name, err)
		}
		cache := &pipeline.Cache{}
		cold, err := CompilePipeline(context.Background(), mod, cfg, PipelineOptions{Stages: cache})
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		warm, err := CompilePipeline(context.Background(), mod, cfg, PipelineOptions{Stages: cache})
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		hits := 0
		for _, s := range warm.Timings.Stages {
			if s.CacheHit {
				hits++
			}
		}
		if hits == 0 {
			t.Fatalf("%s: warm run recorded no stage-cache hits", name)
		}
		if !reflect.DeepEqual(zeroTimings(plain), zeroTimings(cold)) {
			t.Fatalf("%s: memo-off vs cold-cache Results diverge", name)
		}
		if !reflect.DeepEqual(zeroTimings(plain), zeroTimings(warm)) {
			t.Fatalf("%s: memo-off vs warm-cache Results diverge", name)
		}
	}
}

// A characterize prefix followed by a full compile on the same cache must
// not redo preprocess, tile or cachemodel.
func TestPrefixRunSeedsFullCompile(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0
	mod := buildModule(t, "gemm", workloads.Test)
	cache := &pipeline.Cache{}

	pre, err := CompilePipeline(context.Background(), mod, cfg, PipelineOptions{
		Stages: cache, Until: StageCharacterize,
	})
	if err != nil {
		t.Fatalf("prefix: %v", err)
	}
	if pre.CapsInserted != 0 || len(pre.Reports) == 0 {
		t.Fatalf("prefix result: caps=%d reports=%d", pre.CapsInserted, len(pre.Reports))
	}
	for _, r := range pre.Reports {
		if r.OI <= 0 || r.CapGHz != 0 {
			t.Fatalf("prefix report not analysis-only: %+v", r)
		}
	}
	want := []string{StagePreprocess, StageTile, StageCacheModel, StageCharacterize}
	if got := len(pre.Timings.Stages); got != len(want) {
		t.Fatalf("prefix ran %d stages, want %d", got, len(want))
	}
	for i, name := range want {
		if pre.Timings.Stages[i].Stage != name {
			t.Fatalf("prefix stage %d = %s, want %s", i, pre.Timings.Stages[i].Stage, name)
		}
	}

	full, err := CompilePipeline(context.Background(), mod, cfg, PipelineOptions{Stages: cache})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	hit := map[string]bool{}
	for _, s := range full.Timings.Stages {
		if s.CacheHit {
			hit[s.Stage] = true
		}
	}
	for _, name := range want {
		if !hit[name] {
			t.Fatalf("full compile re-ran %s instead of hitting the prefix snapshot (hits: %v)", name, hit)
		}
	}
	// And the seeded full compile equals a from-scratch one.
	plain, err := CompileCtx(context.Background(), mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroTimings(plain), zeroTimings(full)) {
		t.Fatal("prefix-seeded full compile diverged from the direct one")
	}
}

// Configs differing only in what downstream stages read share the
// upstream snapshots: a search-objective change must still hit
// preprocess/tile/cachemodel.
func TestSearchConfigChangeKeepsPrefixSnapshots(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0
	mod := buildModule(t, "gemm", workloads.Test)
	cache := &pipeline.Cache{}
	if _, err := CompilePipeline(context.Background(), mod, cfg, PipelineOptions{Stages: cache}); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Search.Epsilon = cfg.Search.Epsilon * 10
	res, err := CompilePipeline(context.Background(), mod, cfg2, PipelineOptions{Stages: cache})
	if err != nil {
		t.Fatal(err)
	}
	hit := map[string]bool{}
	for _, s := range res.Timings.Stages {
		hit[s.Stage] = s.CacheHit
	}
	for _, name := range []string{StagePreprocess, StageTile, StageCacheModel, StageCharacterize, StageModelFit} {
		if !hit[name] {
			t.Fatalf("stage %s missed after a search-only config change (hits: %v)", name, hit)
		}
	}
	if hit[StageSearch] {
		t.Fatal("search stage hit despite a changed epsilon")
	}
}

// Armed fault injection disables stage memoization: injection points are
// call-ordered state a replayed snapshot would skip.
func TestFaultsDisableStageMemo(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0
	cfg.Degrade = BestEffort
	cfg.Faults = faults.New(1)
	cfg.Faults.Enable(FaultPluto, faults.Spec{On: []int64{1}})
	mod := buildModule(t, "gemm", workloads.Test)
	cache := &pipeline.Cache{}
	res, err := CompilePipeline(context.Background(), mod, cfg, PipelineOptions{Stages: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reports[0].Degraded {
		t.Fatal("fault did not fire")
	}
	if cache.Len() != 0 {
		t.Fatalf("stage cache holds %d snapshots from a fault-armed run, want 0", cache.Len())
	}
}

// Timings.Total must derive from the recorded stage events, covering
// every declared stage, so adding a stage can never silently
// under-report the Table-IV breakdown.
func TestTimingsTotalDerivesFromStageEvents(t *testing.T) {
	res := compileKernel(t, "gemm", workloads.Test, hw.BDW())
	names := StageNames(DefaultConfig(targetFor(t, hw.BDW())))
	if len(res.Timings.Stages) != len(names) {
		t.Fatalf("recorded %d stage events, want %d", len(res.Timings.Stages), len(names))
	}
	var sum int64
	for i, s := range res.Timings.Stages {
		if s.Stage != names[i] {
			t.Fatalf("stage %d = %s, want %s", i, s.Stage, names[i])
		}
		sum += int64(s.Duration)
	}
	if got := int64(res.Timings.Total()); got != sum {
		t.Fatalf("Total() = %d, want event sum %d", got, sum)
	}
	// The legacy four-bucket fields still partition the same total.
	tm := res.Timings
	if bucket := tm.Preprocess + tm.Pluto + tm.CM + tm.Steps46; int64(bucket) != sum {
		t.Fatalf("bucket sum %d != event sum %d", bucket, sum)
	}
}
