package core

import (
	"errors"
	"strings"
	"testing"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/workloads"
)

func buildKernel(t *testing.T, name string) (*Config, func() *Result) {
	t.Helper()
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return &cfg, func() *Result {
		mod, err := k.Build(workloads.Test)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Compile(mod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
}

// The acceptance scenario: with one nest's cache model poisoned,
// BestEffort still reports every healthy nest and marks exactly one
// report degraded, while Strict reproduces the fail-fast error.
func TestBestEffortIsolatesPoisonedCacheModel(t *testing.T) {
	cfg, compile := buildKernel(t, "2mm")
	healthy := compile()
	if len(healthy.Reports) < 2 {
		t.Fatalf("2mm has %d nests; need >= 2", len(healthy.Reports))
	}

	// Poison the second nest's cache-model stage under BestEffort.
	cfg.Degrade = BestEffort
	cfg.Faults = faults.New(1)
	cfg.Faults.Enable(FaultCacheModel, faults.Spec{On: []int64{2}})
	res := compile()
	if len(res.Reports) != len(healthy.Reports) {
		t.Fatalf("reports %d, want %d", len(res.Reports), len(healthy.Reports))
	}
	nDegraded := 0
	for i, r := range res.Reports {
		if r.Degraded {
			nDegraded++
			if i != 1 {
				t.Fatalf("report %d degraded, want report 1", i)
			}
			if !errors.Is(r.Err, faults.ErrInjected) {
				t.Fatalf("degraded report err = %v", r.Err)
			}
			if r.CM != nil || r.SearchEvals != 0 {
				t.Fatalf("degraded report still analyzed: %+v", r)
			}
			continue
		}
		// Healthy nests match the clean compilation exactly.
		h := healthy.Reports[i]
		if r.Label != h.Label || r.CapGHz != h.CapGHz || r.OI != h.OI || r.Class != h.Class {
			t.Fatalf("healthy report %d diverged: %+v vs %+v", i, r, h)
		}
	}
	if nDegraded != 1 {
		t.Fatalf("degraded reports = %d, want exactly 1", nDegraded)
	}
	if nestsIn(res) != nestsIn(healthy) {
		t.Fatalf("module lost nests: %d vs %d", nestsIn(res), nestsIn(healthy))
	}

	// Strict mode on the same poison reproduces today's fail-fast error,
	// named after the stable pipeline stage ("cachemodel").
	cfg.Degrade = Strict
	cfg.Faults = faults.New(1)
	cfg.Faults.Enable(FaultCacheModel, faults.Spec{On: []int64{2}})
	k, _ := workloads.ByName("2mm")
	mod, err := k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(mod, *cfg)
	if err == nil || !strings.Contains(err.Error(), StageCacheModel+" on") {
		t.Fatalf("strict err = %v", err)
	}
}

func TestBestEffortPlutoFailureFallsBackUntiled(t *testing.T) {
	cfg, compile := buildKernel(t, "gemm")
	cfg.Degrade = BestEffort
	cfg.Faults = faults.New(1)
	cfg.Faults.Enable(FaultPluto, faults.Spec{On: []int64{2}})
	res := compile()
	if len(res.Reports) < 2 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	r := res.Reports[1]
	if !r.Degraded || r.Tiled {
		t.Fatalf("pluto-poisoned nest: degraded=%v tiled=%v", r.Degraded, r.Tiled)
	}
	// The untiled fallback is still analyzed, characterized and capped.
	if r.CM == nil || r.CapGHz <= 0 || r.SearchEvals == 0 {
		t.Fatalf("untiled fallback not analyzed: %+v", r)
	}
	if r.Err == nil || !strings.Contains(r.Err.Error(), StageTile+" on") {
		t.Fatalf("recorded err = %v", r.Err)
	}
}

func TestStagePanicBecomesWrappedError(t *testing.T) {
	cfg, _ := buildKernel(t, "gemm")
	cfg.Faults = faults.New(1)
	cfg.Faults.Enable(FaultPluto, faults.Spec{On: []int64{1}, Panic: true})
	k, _ := workloads.ByName("gemm")
	mod, err := k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(mod, *cfg) // must not panic
	if err == nil || !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), StageTile) {
		t.Fatalf("panic not converted to a stage error: %v", err)
	}

	// Under BestEffort the panicking stage degrades the nest instead.
	cfg.Degrade = BestEffort
	cfg.Faults = faults.New(1)
	cfg.Faults.Enable(FaultCacheModel, faults.Spec{On: []int64{1}, Panic: true})
	mod, err = k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(mod, *cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reports[0].Degraded {
		t.Fatal("panicking stage did not degrade the nest")
	}
}

func nestsIn(res *Result) int {
	n := 0
	for _, f := range res.Module.Funcs {
		for _, op := range f.Ops {
			if _, ok := op.(*ir.Nest); ok {
				n++
			}
		}
	}
	return n
}
