package core

import (
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/roofline"
	"polyufc/internal/workloads"
)

var testTargets = map[string]*roofline.Target{}

// targetFor calibrates each platform once per test binary and hands out
// the resolved backend handle configs are built from.
func targetFor(t *testing.T, p *hw.Platform) *roofline.Target {
	t.Helper()
	if tg, ok := testTargets[p.Name]; ok {
		return tg
	}
	c, err := roofline.Calibrate(hw.NewMachine(p))
	if err != nil {
		t.Fatal(err)
	}
	tg := roofline.NewTarget(p, c)
	testTargets[p.Name] = tg
	return tg
}

func compileKernel(t *testing.T, name string, size workloads.SizeClass, p *hw.Platform) *Result {
	t.Helper()
	cfg := DefaultConfig(targetFor(t, p))
	if size == workloads.Test {
		// Test-size kernels run for microseconds; disable the cap
		// profitability gate so insertion behaviour stays observable.
		cfg.AmortizeFactor = 0
	}
	return compileKernelCfg(t, name, size, cfg)
}

func compileKernelCfg(t *testing.T, name string, size workloads.SizeClass, cfg Config) *Result {
	t.Helper()
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Build(size)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCompileGemmInsertsCaps(t *testing.T) {
	p := hw.BDW()
	res := compileKernel(t, "gemm", workloads.Test, p)
	if res.CapsInserted == 0 {
		t.Fatal("no caps inserted")
	}
	if len(res.Reports) < 2 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	// The module must interleave caps and nests only.
	for _, op := range res.Module.Funcs[0].Ops {
		switch op.(type) {
		case *ir.SetUncoreCap, *ir.Nest:
		default:
			t.Fatalf("unexpected op %s", op.OpName())
		}
	}
	// Every report must carry a valid cap.
	for _, r := range res.Reports {
		if r.CapGHz < p.UncoreMin-1e-9 || r.CapGHz > p.UncoreMax+1e-9 {
			t.Fatalf("%s: cap %.2f out of range", r.Label, r.CapGHz)
		}
		if r.Est.EDP <= 0 {
			t.Fatalf("%s: bad estimate", r.Label)
		}
	}
	if res.Timings.Total() <= 0 {
		t.Fatal("no timings recorded")
	}
}

func TestGemmUpdateIsCBAndCappedLow(t *testing.T) {
	p := hw.BDW()
	res := compileKernel(t, "gemm", workloads.Bench, p)
	var upd *KernelReport
	for i := range res.Reports {
		if res.Reports[i].OI > 20 {
			upd = &res.Reports[i]
		}
	}
	if upd == nil {
		t.Fatal("no high-OI report for gemm update")
	}
	if upd.Class != roofline.ComputeBound {
		t.Fatalf("gemm update class = %v", upd.Class)
	}
	if !upd.Tiled {
		t.Fatal("gemm update not tiled")
	}
	if upd.CapGHz > (p.UncoreMin+p.UncoreMax)/2 {
		t.Fatalf("CB gemm capped at %.1f GHz (high)", upd.CapGHz)
	}
	// Model-predicted EDP at the cap must beat the driver default.
	if upd.Est.EDP >= upd.EstDefault.EDP {
		t.Fatal("no predicted EDP improvement")
	}
}

func TestMvtIsBBAndCappedHigh(t *testing.T) {
	p := hw.RPL()
	res := compileKernel(t, "mvt", workloads.Bench, p)
	for _, r := range res.Reports {
		if r.Class != roofline.BandwidthBound {
			t.Fatalf("%s: class = %v (OI %.2f), want BB", r.Label, r.Class, r.OI)
		}
		if r.CapGHz <= (p.UncoreMin+p.UncoreMax)/2 {
			t.Fatalf("%s: BB capped at %.1f GHz (low)", r.Label, r.CapGHz)
		}
	}
}

func TestCompiledModuleRunsAndImprovesEDP(t *testing.T) {
	// End to end at bench size (test-size kernels finish in microseconds,
	// where the 35us cap-switch latency legitimately dominates — the
	// amortization effect of Sec. VII-F): compile mvt, run on one machine
	// (shared cache profiles), compare against the Pluto baseline at the
	// driver default.
	p := hw.RPL()
	res := compileKernel(t, "mvt", workloads.Bench, p)

	m := hw.NewMachine(p)
	var baseline hw.RunResult
	m.SetUncoreCap(p.UncoreMax)
	for _, op := range res.Module.Funcs[0].Ops {
		if nest, ok := op.(*ir.Nest); ok {
			r, err := m.RunNest(nest)
			if err != nil {
				t.Fatal(err)
			}
			baseline.Seconds += r.Seconds
			baseline.PkgJoules += r.PkgJoules
		}
	}
	baseline.EDP = baseline.PkgJoules * baseline.Seconds

	// PolyUFC: the compiled module including caps, on the same machine.
	capped, err := m.RunFunc(res.Module.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if capped.EDP >= baseline.EDP {
		t.Fatalf("no measured EDP improvement: capped %.6g vs baseline %.6g",
			capped.EDP, baseline.EDP)
	}
}

func TestSDPAPhasesCBBBCB(t *testing.T) {
	// Fig. 5: at linalg granularity sdpa is CB, then a BB* middle region,
	// then CB; at torch granularity the phases are hidden in one op.
	p := hw.RPL()
	k, _ := workloads.ByName("sdpa-bert")
	mod, err := k.Build(workloads.Bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(targetFor(t, p))
	phases, err := PhaseStudy(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lin := phases[ir.DialectLinalg]
	if len(lin) != 9 {
		t.Fatalf("linalg phases = %d, want 9", len(lin))
	}
	if lin[0].Class != roofline.ComputeBound || lin[8].Class != roofline.ComputeBound {
		t.Fatalf("matmul phases not CB: %v / %v (OI %.1f / %.1f)",
			lin[0].Class, lin[8].Class, lin[0].OI, lin[8].OI)
	}
	bbCount := 0
	for _, ph := range lin[1:8] {
		if ph.Class == roofline.BandwidthBound {
			bbCount++
		}
	}
	if bbCount < 5 {
		t.Fatalf("middle region has only %d BB phases of 7", bbCount)
	}
	if len(phases[ir.DialectTorch]) != 1 {
		t.Fatalf("torch phases = %d, want 1", len(phases[ir.DialectTorch]))
	}
}

func TestTorchGranularityMergesCaps(t *testing.T) {
	p := hw.RPL()
	k, _ := workloads.ByName("sdpa-bert")
	mod, err := k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(targetFor(t, p))
	cfg.CapLevel = ir.DialectTorch
	cfg.AmortizeFactor = 0
	res, err := Compile(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := 0
	for _, op := range res.Module.Funcs[0].Ops {
		if _, ok := op.(*ir.SetUncoreCap); ok {
			caps++
		}
	}
	if caps != 1 {
		t.Fatalf("torch-level caps = %d, want 1 (one sdpa group)", caps)
	}
	if res.CapsRemoved == 0 {
		t.Fatal("no caps merged")
	}
}

func TestLinalgGranularityRemovesEqualCaps(t *testing.T) {
	// 3mm has three identical matmuls plus a fill: redundant equal caps
	// must be suppressed (insertion-time dedup plus rewrite patterns), so
	// the cap count stays below the nest count.
	p := hw.BDW()
	res := compileKernel(t, "3mm", workloads.Test, p)
	caps, nests := 0, 0
	for _, op := range res.Module.Funcs[0].Ops {
		switch op.(type) {
		case *ir.SetUncoreCap:
			caps++
		case *ir.Nest:
			nests++
		}
	}
	if caps == 0 {
		t.Fatal("no caps inserted")
	}
	if caps >= nests {
		t.Fatalf("equal caps not deduplicated: %d caps for %d nests", caps, nests)
	}
}

func TestProfitabilityGate(t *testing.T) {
	// With the default gate, microsecond-scale test-size kernels get no
	// caps (a switch would dominate); with the gate disabled they do.
	p := hw.BDW()
	cfgGated := DefaultConfig(targetFor(t, p))
	gated := compileKernelCfg(t, "gemm", workloads.Test, cfgGated)
	if gated.CapsInserted != 0 {
		t.Fatalf("gate off? %d caps inserted for a microsecond kernel", gated.CapsInserted)
	}
	cfgOpen := DefaultConfig(targetFor(t, p))
	cfgOpen.AmortizeFactor = 0
	open := compileKernelCfg(t, "gemm", workloads.Test, cfgOpen)
	if open.CapsInserted == 0 {
		t.Fatal("no caps inserted with the gate disabled")
	}
	// Bench-size kernels run long enough to pass the default gate.
	bench := compileKernel(t, "mvt", workloads.Bench, p)
	if bench.CapsInserted == 0 {
		t.Fatal("bench-size kernel gated out")
	}
}

func TestCompileAllKernelsTestSize(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	for _, k := range workloads.All() {
		mod, err := k.Build(workloads.Test)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		res, err := Compile(mod, cfg)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if len(res.Reports) == 0 {
			t.Fatalf("%s: no reports", k.Name)
		}
	}
}
