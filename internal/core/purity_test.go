package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/workloads"
)

// purityKernels span the dialect stack: a plain PolyBench nest, a
// multi-nest torch program, and a conv pipeline.
var purityKernels = []string{"gemm", "mvt", "sdpa-bert", "conv2d-alexnet"}

// zeroTimings normalizes the only legitimately non-deterministic Result
// field (wall-clock stage durations) before deep comparison.
func zeroTimings(r *Result) *Result {
	r.Timings = Timings{}
	return r
}

// TestCompileDoesNotMutateInput is the memo-cache precondition: the input
// module must be byte-identical before and after Compile.
func TestCompileDoesNotMutateInput(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	for _, name := range purityKernels {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := k.Build(workloads.Test)
		if err != nil {
			t.Fatal(err)
		}
		before := mod.Clone()
		res, err := Compile(mod, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(mod, before) {
			t.Fatalf("%s: Compile mutated its input module", name)
		}
		if res.Module == mod {
			t.Fatalf("%s: Result.Module aliases the input module", name)
		}
	}
}

// TestCompilePureForFixedInput asserts the property the cache relies on:
// two Compile calls over the same module yield deep-equal Results.
func TestCompilePureForFixedInput(t *testing.T) {
	for _, p := range hw.Platforms() {
		cfg := DefaultConfig(targetFor(t, p))
		for _, name := range purityKernels {
			k, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := k.Build(workloads.Test)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := Compile(mod, cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, p.Name, err)
			}
			r2, err := Compile(mod, cfg)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, p.Name, err)
			}
			if !reflect.DeepEqual(zeroTimings(r1), zeroTimings(r2)) {
				t.Fatalf("%s on %s: repeated Compile on the same module diverged", name, p.Name)
			}
		}
	}
}

// TestCompilePureAcrossClones: compiling two independent clones of one
// module matches compiling the module twice.
func TestCompilePureAcrossClones(t *testing.T) {
	p := hw.RPL()
	cfg := DefaultConfig(targetFor(t, p))
	k, err := workloads.ByName("2mm")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := mod.Clone(), mod.Clone()
	r1, err := Compile(c1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile(c2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroTimings(r1), zeroTimings(r2)) {
		t.Fatal("Compile over independent clones diverged")
	}
}

// TestPhaseStudyDoesNotMutateInput covers the other pipeline entry point.
func TestPhaseStudyDoesNotMutateInput(t *testing.T) {
	p := hw.RPL()
	cfg := DefaultConfig(targetFor(t, p))
	k, err := workloads.ByName("sdpa-bert")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	before := mod.Clone()
	if _, err := PhaseStudy(mod, cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mod, before) {
		t.Fatal("PhaseStudy mutated its input module")
	}
}

// TestCacheResultsMatchFreshCompiles is the cache-correctness property:
// memoized Results are deep-equal to fresh compilations.
func TestCacheResultsMatchFreshCompiles(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	var cache Cache
	ctx := context.Background()
	for _, name := range purityKernels {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		build := func() (*ir.Module, error) { return k.Build(workloads.Test) }
		key := CacheKey{Kernel: name, Platform: p.Name, Size: int(workloads.Test), CapLevel: cfg.CapLevel}
		cached1, err := cache.Compile(ctx, key, cfg, build)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cached2, err := cache.Compile(ctx, key, cfg, build)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cached1 != cached2 {
			t.Fatalf("%s: second lookup did not hit the cache", name)
		}
		mod, err := build()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Compile(mod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Compare against a private copy: the cached Result is shared.
		cachedCopy := *cached1
		if !reflect.DeepEqual(zeroTimings(&cachedCopy), zeroTimings(fresh)) {
			t.Fatalf("%s: cached Result differs from a fresh compile", name)
		}
	}
	hits, misses := cache.Stats()
	if misses != int64(len(purityKernels)) || hits != int64(len(purityKernels)) {
		t.Fatalf("stats = %d hits / %d misses", hits, misses)
	}
}

// TestCacheKeyDistinguishesConfigs: associativity and platform changes
// must not collide.
func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	var cache Cache
	ctx := context.Background()
	k, err := workloads.ByName("gemm-pow2")
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*ir.Module, error) { return k.Build(workloads.Test) }
	p := hw.BDW()
	cfgSA := DefaultConfig(targetFor(t, p))
	cfgFA := cfgSA
	cfgFA.CM.FullyAssoc = true
	keySA := CacheKey{Kernel: "gemm-pow2", Platform: p.Name, Size: int(workloads.Test), CapLevel: cfgSA.CapLevel}
	keyFA := keySA
	keyFA.FullyAssoc = true
	rSA, err := cache.Compile(ctx, keySA, cfgSA, build)
	if err != nil {
		t.Fatal(err)
	}
	rFA, err := cache.Compile(ctx, keyFA, cfgFA, build)
	if err != nil {
		t.Fatal(err)
	}
	if rSA == rFA {
		t.Fatal("distinct keys returned the same Result")
	}
	if cache.Len() != 2 {
		t.Fatalf("len = %d", cache.Len())
	}
	cache.Reset()
	if cache.Len() != 0 {
		t.Fatal("reset did not clear the cache")
	}
}

// TestCacheConcurrentSameKey: many goroutines requesting one key get the
// identical shared Result, built once.
func TestCacheConcurrentSameKey(t *testing.T) {
	p := hw.RPL()
	cfg := DefaultConfig(targetFor(t, p))
	k, err := workloads.ByName("mvt")
	if err != nil {
		t.Fatal(err)
	}
	var cache Cache
	key := CacheKey{Kernel: "mvt", Platform: p.Name, Size: int(workloads.Test), CapLevel: cfg.CapLevel}
	var builds sync.Map
	results := make([]*Result, 16)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := cache.Compile(context.Background(), key, cfg, func() (*ir.Module, error) {
				builds.Store(g, true)
				return k.Build(workloads.Test)
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = r
		}(g)
	}
	wg.Wait()
	buildCount := 0
	builds.Range(func(_, _ any) bool { buildCount++; return true })
	if buildCount != 1 {
		t.Fatalf("build ran %d times, want 1", buildCount)
	}
	for g := 1; g < len(results); g++ {
		if results[g] != results[0] {
			t.Fatal("concurrent callers received different Results")
		}
	}
}

// TestCacheBuildErrorNotCached: a failing build propagates and is retried.
func TestCacheBuildErrorNotCached(t *testing.T) {
	var cache Cache
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	key := CacheKey{Kernel: "broken", Platform: p.Name}
	boom := errors.New("build failed")
	if _, err := cache.Compile(context.Background(), key, cfg, func() (*ir.Module, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	k, err := workloads.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Compile(context.Background(), key, cfg, func() (*ir.Module, error) {
		return k.Build(workloads.Test)
	}); err != nil {
		t.Fatalf("retry after build error: %v", err)
	}
}
