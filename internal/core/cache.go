package core

import (
	"context"

	"polyufc/internal/ir"
	"polyufc/internal/parallel"
	"polyufc/internal/search"
)

// CacheKey identifies one memoizable compilation: the kernel, the target
// platform, the problem size class, and the configuration bits that change
// the compiled artifact (cap granularity, cache-model associativity, the
// profitability gate). Two compilations with equal keys produce deep-equal
// Results, because Compile is pure and deterministic for a fixed input.
type CacheKey struct {
	Kernel   string
	Platform string
	// CalHash pins the calibrated constants (platform.Constants.Hash) the
	// compilation ran against. A daemon that re-fits a drifted backend
	// swaps its target; compilations against the new fit must not share
	// entries with the stale one.
	CalHash string
	// Size is the workloads.SizeClass ordinal (kept as int to avoid a
	// core -> workloads dependency).
	Size       int
	CapLevel   ir.Dialect
	FullyAssoc bool
	// Tiling is the tiling-strategy fingerprint (tiling.Spec.Fingerprint;
	// "" and "pluto" are the same artifact, so callers may pass either).
	// Distinct strategies transform nests differently and must never
	// share entries.
	Tiling string
	// NoAmortize marks configurations with the profitability gate
	// disabled (AmortizeFactor 0), as in the Sec. VII-F overhead study.
	NoAmortize bool
	// Objective and Epsilon pin the PolyUFC-SEARCH configuration: the
	// selected cap depends on both, so compilations that vary them (the
	// serving daemon does, per request) must not share entries.
	Objective search.Objective
	Epsilon   float64
	// Degrade is the failure policy: Strict and BestEffort results differ
	// only in the presence of stage failures, but they must not share
	// cache entries — a degraded Result is a different artifact.
	Degrade DegradePolicy
}

// Cache memoizes PolyUFC compilations across evaluation sweeps. It is safe
// for concurrent use: concurrent requests for the same key build once and
// share the Result (singleflight). Shared Results must be treated as
// immutable by callers — the experiment renderers only read them.
//
// The zero value is ready to use.
type Cache struct {
	memo parallel.Memo[CacheKey, *Result]
}

// Compile returns the memoized Result for key, building the module and
// compiling it on the first request. The build callback runs only on a
// cache miss, so repeated sweeps skip both module construction and the
// whole polyhedral pipeline.
func (c *Cache) Compile(ctx context.Context, key CacheKey, cfg Config, build func() (*ir.Module, error)) (*Result, error) {
	return c.CompileStaged(ctx, key, cfg, PipelineOptions{}, build)
}

// CompileStaged is Compile with staged-execution controls threaded to
// the pipeline: a whole-result miss still reuses memoized per-stage
// snapshots (opts.Stages) and reports stage events (opts.Observe), so
// e.g. a search request after a characterize request on the same kernel
// skips preprocess, tile and the cache model.
func (c *Cache) CompileStaged(ctx context.Context, key CacheKey, cfg Config, opts PipelineOptions, build func() (*ir.Module, error)) (*Result, error) {
	return c.memo.Do(ctx, key, func() (*Result, error) {
		mod, err := build()
		if err != nil {
			return nil, err
		}
		return CompilePipeline(ctx, mod, cfg, opts)
	})
}

// SetLimit bounds the cache to n compilations with LRU eviction (n <= 0
// restores the unbounded default). Long-running processes must set a
// limit — an unbounded memo is a memory leak under open-ended traffic.
func (c *Cache) SetLimit(n int) { c.memo.SetLimit(n) }

// Stats returns cache hits and misses so far.
func (c *Cache) Stats() (hits, misses int64) { return c.memo.Stats() }

// Evictions returns how many compilations the LRU bound has dropped.
func (c *Cache) Evictions() int64 { return c.memo.Evictions() }

// Len returns the number of cached compilations.
func (c *Cache) Len() int { return c.memo.Len() }

// Reset drops all cached compilations.
func (c *Cache) Reset() { c.memo.Reset() }
