package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"polyufc/internal/cachemodel"
	"polyufc/internal/ir"
	"polyufc/internal/lower"
	"polyufc/internal/model"
	"polyufc/internal/pipeline"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/tiling"
)

// Stable stage names of the compile pipeline. These strings are the
// shared vocabulary across Timings.Stages, statsz counters, degrade
// reports and the journal — changing one is a wire-format change.
const (
	// StagePreprocess lowers torch -> linalg -> affine (Fig. 3 prep).
	StagePreprocess = "preprocess"
	// StageTile is tiling + parallelization (stage 2) under the
	// configured tiling strategy (internal/tiling; Pluto by default).
	StageTile = "tile"
	// StageCacheModel is PolyUFC-CM + OI (stages 3a-3b).
	StageCacheModel = "cachemodel"
	// StageCharacterize is the roofline CB/BB classification (stage 4).
	StageCharacterize = "characterize"
	// StageModelFit builds the Sec. V analytic model per nest (stage 5a).
	StageModelFit = "model-fit"
	// StagePlanLookup answers the cap question from a precomputed plan
	// table (internal/plantable) where possible; it runs only when
	// Config.Plans is set, and nests it cannot answer fall through to
	// the live search stage.
	StagePlanLookup = "plan-lookup"
	// StageSearch is PolyUFC-SEARCH frequency-cap selection (stage 5b).
	StageSearch = "search"
	// StageCapInsert emits reports and inserts profitable caps (stage 6).
	StageCapInsert = "cap-insert"
	// StageCapMerge re-places caps at torch granularity (Sec. VI-B); it
	// runs only when Config.CapLevel is DialectTorch.
	StageCapMerge = "cap-merge"
	// StageRewriteCleanup drops shadowed and equal caps.
	StageRewriteCleanup = "rewrite-cleanup"
	// StagePhases is the PhaseStudy-specific per-dialect classification
	// (Fig. 5); it replaces the capping suffix in the phase pipeline.
	StagePhases = "phases"
)

// compileState is the shared state the compile pipeline's stages operate
// on: the module under transformation plus per-nest artifacts, indexed by
// nest position in module order (stable across tiling, which replaces
// nests in place).
type compileState struct {
	cfg Config
	res *Result

	// nests lists the module's loop nests in walk order; tile updates
	// entries in place as it swaps optimized nests into the module.
	nests []*ir.Nest
	// tinfo is the per-nest tiling metadata the strategy reported
	// (strategy name, tiled flag, tile size); zero-valued for nests whose
	// tile stage degraded.
	tinfo []tiling.NestInfo
	// nerr records the first BestEffort stage error per nest (tile or
	// cachemodel); such nests are compiled degraded.
	nerr []error
	// cms holds the PolyUFC-CM result per nest (nil when degraded).
	cms []*cachemodel.Result
	// class is the roofline CB/BB classification per nest.
	class []roofline.Class
	// threads is the per-nest thread count reported and modeled.
	threads []int
	// socket and remote are the topology placement (multi-socket targets
	// only; zero-valued otherwise): the home socket per nest (-1 for
	// parallel nests spanning every socket) and the modeled remote share
	// of its DRAM traffic.
	socket []int
	remote []float64
	// models and defEst hold the fitted Sec. V model and its estimate at
	// the driver-default (maximum) uncore frequency.
	models []*model.Model
	defEst []model.Estimate
	// sres and serr hold the PolyUFC-SEARCH outcome or its BestEffort
	// failure per nest.
	sres []search.Result
	serr []error
	// plan marks nests whose sres was answered from a plan table; the
	// search stage skips them and the report records the hit.
	plan []bool

	// phases is the PhaseStudy output (phase pipeline only).
	phases map[ir.Dialect][]Phase
}

func newCompileState(mod *ir.Module, cfg Config) *compileState {
	return &compileState{cfg: cfg, res: &Result{Module: mod}}
}

// refreshNests rebuilds the nest index from the module in walk order.
func (st *compileState) refreshNests() {
	st.nests = st.nests[:0]
	for _, f := range st.res.Module.Funcs {
		for _, op := range f.Ops {
			if n, ok := op.(*ir.Nest); ok {
				st.nests = append(st.nests, n)
			}
		}
	}
}

// alloc sizes every per-nest artifact slice to the nest count.
func (st *compileState) alloc() {
	n := len(st.nests)
	st.tinfo = make([]tiling.NestInfo, n)
	st.nerr = make([]error, n)
	st.cms = make([]*cachemodel.Result, n)
	st.class = make([]roofline.Class, n)
	st.threads = make([]int, n)
	st.socket = make([]int, n)
	st.remote = make([]float64, n)
	st.models = make([]*model.Model, n)
	st.defEst = make([]model.Estimate, n)
	st.sres = make([]search.Result, n)
	st.serr = make([]error, n)
	st.plan = make([]bool, n)
}

// stageSnap is the memoized snapshot of a stage's outputs: the module as
// of the stage plus every per-nest artifact slice. One snapshot type
// serves all memoizable stages — slices a stage has not reached yet are
// zero-valued. Pointered artifacts (cache-model results, models, errors)
// are immutable once produced, so snapshots share them.
type stageSnap struct {
	mod     *ir.Module
	tinfo   []tiling.NestInfo
	nerr    []error
	cms     []*cachemodel.Result
	class   []roofline.Class
	threads []int
	socket  []int
	remote  []float64
	models  []*model.Model
	defEst  []model.Estimate
	sres    []search.Result
	serr    []error
	plan    []bool
}

func snapSave(st *compileState) any {
	return &stageSnap{
		mod:     st.res.Module.Clone(),
		tinfo:   append([]tiling.NestInfo(nil), st.tinfo...),
		nerr:    append([]error(nil), st.nerr...),
		cms:     append([]*cachemodel.Result(nil), st.cms...),
		class:   append([]roofline.Class(nil), st.class...),
		threads: append([]int(nil), st.threads...),
		socket:  append([]int(nil), st.socket...),
		remote:  append([]float64(nil), st.remote...),
		models:  append([]*model.Model(nil), st.models...),
		defEst:  append([]model.Estimate(nil), st.defEst...),
		sres:    append([]search.Result(nil), st.sres...),
		serr:    append([]error(nil), st.serr...),
		plan:    append([]bool(nil), st.plan...),
	}
}

func snapLoad(st *compileState, v any) {
	snap := v.(*stageSnap)
	st.res.Module = snap.mod.Clone()
	st.refreshNests()
	st.tinfo = append([]tiling.NestInfo(nil), snap.tinfo...)
	st.nerr = append([]error(nil), snap.nerr...)
	st.cms = append([]*cachemodel.Result(nil), snap.cms...)
	st.class = append([]roofline.Class(nil), snap.class...)
	st.threads = append([]int(nil), snap.threads...)
	st.socket = append([]int(nil), snap.socket...)
	st.remote = append([]float64(nil), snap.remote...)
	st.models = append([]*model.Model(nil), snap.models...)
	st.defEst = append([]model.Estimate(nil), snap.defEst...)
	st.sres = append([]search.Result(nil), snap.sres...)
	st.serr = append([]error(nil), snap.serr...)
	st.plan = append([]bool(nil), snap.plan...)
}

// stageBaseKey is the content hash anchoring the stage memo key chain:
// the module text plus everything every stage reads from the config.
// Fault-injection runs return "" — injection points are call-ordered
// state, so replaying a snapshot would silently skip them.
func stageBaseKey(mod *ir.Module, cfg Config) string {
	if cfg.Faults != nil {
		return ""
	}
	h := sha256.New()
	io.WriteString(h, mod.Print())
	fmt.Fprintf(h, "|platform=%s", cfg.Platform().Name)
	if b := cfg.Platform().Backend; b != nil {
		// Platform fields outside the constants (CapLatency, the cap
		// grid) feed stages too: key on the exact description.
		fmt.Fprintf(h, "|backend=%s", b.Hash())
	}
	fmt.Fprintf(h, "|consts=%+v", *cfg.Constants())
	fmt.Fprintf(h, "|degrade=%d", cfg.Degrade)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// machineThreads is the whole-machine thread count a parallel nest
// spans: every socket's threads on a topology target, the platform's on
// a single-socket one (identical there, so the v1 path is unchanged).
func machineThreads(cfg Config) int {
	if cfg.Target.NumSockets() > 1 {
		return cfg.Target.Backend.TotalThreads()
	}
	return cfg.Platform().Threads
}

// cmOptions applies the OpenMP sharing heuristic: a parallel nest's
// sequential miss counts are divided across the machine's threads.
func cmOptions(cfg Config, nest *ir.Nest) cachemodel.Options {
	o := cfg.CM
	if nest.Root != nil && nest.Root.Parallel && o.Threads <= 1 {
		o.Threads = machineThreads(cfg)
	}
	return o
}

// nestThreads is the thread count a nest runs (and is modeled) with.
func nestThreads(cfg Config, nest *ir.Nest) int {
	if nest.Root != nil && nest.Root.Parallel {
		return machineThreads(cfg)
	}
	return 1
}

func stagePreprocess() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StagePreprocess,
		Save: snapSave, Load: snapLoad,
		Run: func(_ context.Context, st *compileState) error {
			if err := lower.TorchToLinalg(st.res.Module); err != nil {
				return err
			}
			if err := lower.LinalgToAffine(st.res.Module); err != nil {
				return err
			}
			st.refreshNests()
			st.alloc()
			return nil
		},
	}
}

func stageTile() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StageTile,
		Salt: func(st *compileState) string {
			salt := fmt.Sprintf("%+v|tiling=%s", st.cfg.Pluto, st.cfg.Tiling.Fingerprint())
			if st.cfg.Tiling.Normalize().Name == tiling.NameAuto {
				// Auto's candidate ranking consults the cap search, so
				// distinct search configurations must not share tiles
				// (the calibration is already in the base key).
				salt += "|search=" + st.cfg.Search.Fingerprint()
			}
			return salt
		},
		Save: snapSave, Load: snapLoad,
		Run: func(ctx context.Context, st *compileState) error {
			strat, err := tiling.New(st.cfg.Tiling)
			if err != nil {
				return err
			}
			tctx := tiling.Context{
				Cache:   st.cfg.Platform().Cache,
				Threads: st.cfg.CM.Threads,
				Pluto:   st.cfg.Pluto,
				Faults:  st.cfg.Faults,
				CapEDP:  capEDPScorer(ctx, st.cfg),
			}
			idx := 0
			for _, f := range st.res.Module.Funcs {
				for i, op := range f.Ops {
					nest, ok := op.(*ir.Nest)
					if !ok {
						continue
					}
					if err := ctx.Err(); err != nil {
						return err
					}
					var out *ir.Nest
					var info tiling.NestInfo
					err := pipeline.Unit(StageTile, nest.Label, func() error {
						if err := st.cfg.Faults.Hit(FaultPluto); err != nil {
							return err
						}
						var err error
						out, info, err = strat.Apply(nest, tctx)
						return err
					})
					if err != nil {
						// BestEffort: the nest falls back to its untiled form
						// and is still analyzed and capped downstream.
						if st.cfg.Degrade != BestEffort {
							return err
						}
						st.nerr[idx] = err
						idx++
						continue
					}
					f.Ops[i] = out
					st.nests[idx] = out
					st.tinfo[idx] = info
					idx++
				}
			}
			return nil
		},
	}
}

// capEDPScorer builds the auto-tiling scoring callback: the EDP of the
// uncore cap PolyUFC-SEARCH would select for a candidate's transformed
// nest under this configuration's calibration. Concrete strategies
// ignore it; auto prefers it over the legacy DRAM-volume score. The
// score intentionally uses the plain single-socket model — candidate
// ranking happens before placement, and on homogeneous topologies the
// remote term shifts every candidate's EDP by the same traffic-
// proportional factor.
func capEDPScorer(ctx context.Context, cfg Config) func(nest *ir.Nest, cm *cachemodel.Result) (float64, bool) {
	return func(nest *ir.Nest, cm *cachemodel.Result) (float64, bool) {
		ks := model.FromCacheModel(cm, nestThreads(cfg, nest))
		m := model.New(cfg.Constants(), ks)
		res, err := search.Run(ctx, m, cfg.Platform().UncoreSteps(), cfg.Search)
		if err != nil {
			return 0, false
		}
		return res.Best.EDP, true
	}
}

func stageCacheModel() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StageCacheModel,
		Salt: func(st *compileState) string { return fmt.Sprintf("%+v", st.cfg.CM) },
		Save: snapSave, Load: snapLoad,
		Run: func(ctx context.Context, st *compileState) error {
			// Pluto-degraded nests are analyzed too: they fell back to the
			// untiled form but can still be characterized and capped.
			for idx, nest := range st.nests {
				if err := ctx.Err(); err != nil {
					return err
				}
				var cm *cachemodel.Result
				err := pipeline.Unit(StageCacheModel, nest.Label, func() error {
					if err := st.cfg.Faults.Hit(FaultCacheModel); err != nil {
						return err
					}
					var err error
					cm, err = cachemodel.Analyze(nest, st.cfg.Platform().Cache, cmOptions(st.cfg, nest))
					return err
				})
				if err != nil {
					if st.cfg.Degrade != BestEffort {
						return err
					}
					if st.nerr[idx] == nil {
						st.nerr[idx] = err
					}
					continue
				}
				st.cms[idx] = cm
			}
			return nil
		},
	}
}

func stageCharacterize() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StageCharacterize,
		Save: snapSave, Load: snapLoad,
		Run: func(_ context.Context, st *compileState) error {
			// Topology placement: a parallel nest spans every socket with
			// memory interleaved across them — (S-1)/S of its DRAM traffic
			// crosses the link; a serial nest is pinned round-robin with
			// its data home-socket local. Single-socket targets skip this
			// entirely (socket 0, remote 0: the pre-topology state).
			S := st.cfg.Target.NumSockets()
			serial := 0
			for idx, nest := range st.nests {
				st.threads[idx] = nestThreads(st.cfg, nest)
				if S > 1 {
					if nest.Root != nil && nest.Root.Parallel {
						st.socket[idx] = -1
						st.remote[idx] = float64(S-1) / float64(S)
					} else {
						st.socket[idx] = serial % S
						serial++
					}
				}
				if cm := st.cms[idx]; cm != nil {
					st.class[idx] = st.cfg.Constants().Classify(cm.OI)
				}
			}
			return nil
		},
	}
}

func stageModelFit() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StageModelFit,
		Save: snapSave, Load: snapLoad,
		Run: func(ctx context.Context, st *compileState) error {
			for idx, nest := range st.nests {
				cm := st.cms[idx]
				if cm == nil {
					continue
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				err := pipeline.Unit(StageModelFit, nest.Label, func() error {
					ks := model.FromCacheModel(cm, st.threads[idx])
					c := st.cfg.Constants()
					var m *model.Model
					if rho := st.remote[idx]; rho > 0 {
						// Multi-socket placement: arm the inter-socket
						// traffic term with the backend's declared link.
						ks.RemoteRatio = rho
						sec, jpb := st.cfg.Target.RemotePenalty()
						m = model.NewNUMA(c, ks, &model.RemoteCost{SecPerByte: sec, JoulesPerByte: jpb})
					} else {
						if s := st.socket[idx]; s > 0 {
							// Serial nest pinned off socket 0: model it with
							// that socket's calibration (same pointer on
							// homogeneous topologies).
							c = st.cfg.Target.SocketConstants(s)
						}
						m = model.New(c, ks)
					}
					st.models[idx] = m
					st.defEst[idx] = m.At(st.cfg.Platform().UncoreMax)
					return nil
				})
				if err != nil {
					if st.cfg.Degrade != BestEffort {
						return err
					}
					st.models[idx] = nil
					st.serr[idx] = err
				}
			}
			return nil
		},
	}
}

// stagePlanLookup answers nests from the configured plan-table set. A
// table hit synthesizes the search.Result live bisection would have
// produced — the cap from the precomputed surface, the model evaluated
// there, zero search evaluations — and flags the nest so the search
// stage skips it. Misses (no table for the target or options, stale
// table, off-axis kernel, steep cell) leave the nest to live search.
func stagePlanLookup() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StagePlanLookup,
		Salt: func(st *compileState) string {
			return st.cfg.Plans.Fingerprint() + "|" + st.cfg.Search.Fingerprint()
		},
		Save: snapSave, Load: snapLoad,
		Run: func(ctx context.Context, st *compileState) error {
			for idx, nest := range st.nests {
				m := st.models[idx]
				if m == nil {
					continue
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				err := pipeline.Unit(StagePlanLookup, nest.Label, func() error {
					// The nest's socket domain picks the table; spanning
					// nests (socket -1) answer from socket 0's, whose
					// rho-extended surface carries their remote share.
					socket := st.socket[idx]
					if socket < 0 {
						socket = 0
					}
					f, ok := st.cfg.Plans.Lookup(st.cfg.Target, st.cfg.Search, st.cfg.Tiling.Fingerprint(), socket, m)
					if !ok {
						return nil
					}
					st.sres[idx] = search.Result{
						BestGHz: f, Best: m.At(f), Class: m.Class(),
					}
					st.plan[idx] = true
					return nil
				})
				if err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func stageSearch() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StageSearch,
		Salt: func(st *compileState) string { return st.cfg.Search.Fingerprint() },
		Save: snapSave, Load: snapLoad,
		Run: func(ctx context.Context, st *compileState) error {
			freqs := st.cfg.Platform().UncoreSteps()
			for idx, nest := range st.nests {
				m := st.models[idx]
				if m == nil || st.plan[idx] {
					continue
				}
				err := pipeline.Unit(StageSearch, nest.Label, func() error {
					var serr error
					st.sres[idx], serr = search.Run(ctx, m, freqs, st.cfg.Search)
					return serr
				})
				if err != nil {
					// Deadline expiry or cancellation aborts the compilation
					// outright: the partial search result is not a stage
					// fault BestEffort should paper over.
					if ctx.Err() != nil {
						return err
					}
					if st.cfg.Degrade != BestEffort {
						return err
					}
					st.serr[idx] = err
				}
			}
			return nil
		},
	}
}

func stageCapInsert() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StageCapInsert,
		Run: func(_ context.Context, st *compileState) error {
			cfg := st.cfg
			S := cfg.Target.NumSockets()
			// socketCaps builds the per-socket cap vector of a capped nest:
			// the searched cap on every socket the nest runs on, idle
			// sockets parked at their grid minimum (nil on single-socket
			// targets, keeping v1 reports unchanged).
			socketCaps := func(i int, capGHz float64) []float64 {
				if S <= 1 {
					return nil
				}
				topo := cfg.Target.Backend.Topology()
				caps := make([]float64, S)
				for k := range caps {
					if st.socket[i] < 0 || st.socket[i] == k {
						caps[k] = capGHz
					} else {
						caps[k] = topo[k].UncoreMinGHz
					}
				}
				return caps
			}
			idx := 0
			for _, f := range st.res.Module.Funcs {
				var out []ir.Op
				activeCap := cfg.Platform().UncoreMax // the driver default
				for _, op := range f.Ops {
					nest, ok := op.(*ir.Nest)
					if !ok {
						out = append(out, op)
						continue
					}
					i := idx
					idx++
					cm := st.cms[i]
					if cm == nil {
						// Cache model degraded (BestEffort): the nest stays
						// uncapped — it runs at whatever frequency is active.
						st.res.Reports = append(st.res.Reports, KernelReport{
							Label: nest.Label, Origin: nest.Origin(),
							CapGHz: activeCap, Tiled: st.tinfo[i].Tiled,
							Tiling: st.tinfo[i].Strategy, TileSize: st.tinfo[i].TileSize,
							Threads: st.threads[i],
							Socket:  st.socket[i], RemoteRatio: st.remote[i],
							Degraded: true, Err: st.nerr[i],
						})
						out = append(out, nest)
						continue
					}
					if st.serr[i] != nil || st.models[i] == nil {
						// Model fit or search degraded: characterized but
						// uncapped.
						st.res.Reports = append(st.res.Reports, KernelReport{
							Label: nest.Label, Origin: nest.Origin(),
							OI: cm.OI, CapGHz: activeCap, Tiled: st.tinfo[i].Tiled,
							Tiling: st.tinfo[i].Strategy, TileSize: st.tinfo[i].TileSize,
							Threads: st.threads[i], CM: cm,
							Socket: st.socket[i], RemoteRatio: st.remote[i],
							Degraded: true, Err: st.serr[i],
						})
						out = append(out, nest)
						continue
					}
					sres := st.sres[i]
					st.res.Reports = append(st.res.Reports, KernelReport{
						Label: nest.Label, Origin: nest.Origin(),
						OI: cm.OI, Class: sres.Class, CapGHz: sres.BestGHz,
						Tiled:  st.tinfo[i].Tiled,
						Tiling: st.tinfo[i].Strategy, TileSize: st.tinfo[i].TileSize,
						Threads: st.threads[i],
						Est:     sres.Best, EstDefault: st.defEst[i],
						CM: cm, SearchEvals: sres.Evaluated, PlanHit: st.plan[i],
						Socket: st.socket[i], RemoteRatio: st.remote[i],
						SocketCaps: socketCaps(i, sres.BestGHz),
						Degraded:   st.nerr[i] != nil, Err: st.nerr[i],
					})
					// Profitability gate (Sec. VII-F): switching the cap costs
					// CapLatency; only worthwhile when the kernel runs long
					// enough. A non-positive BestGHz (degenerate frequency
					// grid) never inserts a cap.
					profitable := cfg.AmortizeFactor <= 0 ||
						sres.Best.Seconds >= cfg.AmortizeFactor*cfg.Platform().CapLatency
					if profitable && sres.BestGHz > 0 && sres.BestGHz != activeCap {
						out = append(out,
							&ir.SetUncoreCap{GHz: sres.BestGHz, Level: cfg.CapLevel, From: nest.Label})
						st.res.CapsInserted++
						activeCap = sres.BestGHz
					}
					out = append(out, nest)
				}
				f.Ops = out
			}
			st.res.Topology = st.topologyResult()
			return nil
		},
	}
}

// topologyResult rolls the per-kernel model estimates up the topology:
// time and energy attributed per socket, node makespan, and the cluster
// EDP of Nodes identical replicas running the module data-parallel.
// Nil for single-socket, single-node targets.
func (st *compileState) topologyResult() *TopologyResult {
	t := st.cfg.Target
	S := t.NumSockets()
	nodes := 1
	if t != nil && t.Backend != nil {
		nodes = t.Backend.NumNodes()
	}
	if S <= 1 && nodes <= 1 {
		return nil
	}
	tr := &TopologyResult{
		Sockets: S, Nodes: nodes,
		SocketSeconds: make([]float64, S),
		SocketJoules:  make([]float64, S),
	}
	var defSeconds, defJoules float64
	for _, rep := range st.res.Reports {
		est := rep.Est
		if est.Seconds <= 0 {
			continue // degraded nest: no model estimate to attribute
		}
		tr.NodeSeconds += est.Seconds
		tr.NodeJoules += est.Joules
		defSeconds += rep.EstDefault.Seconds
		defJoules += rep.EstDefault.Joules
		if rep.Socket < 0 {
			// A spanning nest bills its wall time to every socket (they
			// run concurrently) and splits its energy evenly.
			for k := 0; k < S; k++ {
				tr.SocketSeconds[k] += est.Seconds
				tr.SocketJoules[k] += est.Joules / float64(S)
			}
		} else if rep.Socket < S {
			tr.SocketSeconds[rep.Socket] += est.Seconds
			tr.SocketJoules[rep.Socket] += est.Joules
		}
	}
	// The module runs its nests in order, so the node makespan is the
	// nest-time sum; the cluster's BSP step takes the same wall time on
	// every replica while energy scales with the node count.
	tr.ClusterSeconds = tr.NodeSeconds
	tr.ClusterJoules = float64(nodes) * tr.NodeJoules
	tr.ClusterEDP = tr.ClusterJoules * tr.ClusterSeconds
	tr.ClusterEDPDefault = float64(nodes) * defJoules * defSeconds
	return tr
}

func stageCapMerge() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StageCapMerge,
		Run: func(_ context.Context, st *compileState) error {
			minSec := st.cfg.AmortizeFactor * st.cfg.Platform().CapLatency
			st.res.CapsRemoved += mergeTorchCaps(st.res.Module, st.res.Reports, minSec)
			return nil
		},
	}
}

func stageRewriteCleanup() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StageRewriteCleanup,
		Run: func(_ context.Context, st *compileState) error {
			st.res.CapsRemoved += ir.ApplyPatterns(st.res.Module,
				ir.RedundantCapPattern{}, ir.EqualCapPattern{})
			return nil
		},
	}
}

// stagePhases is the PhaseStudy tail: per-dialect phase sequences from
// the shared preprocess/tile/cachemodel artifacts (Fig. 5).
func stagePhases() pipeline.Stage[*compileState] {
	return pipeline.Stage[*compileState]{
		Name: StagePhases,
		Run: func(ctx context.Context, st *compileState) error {
			cfg := st.cfg
			out := map[ir.Dialect][]Phase{}
			type agg struct {
				name  string
				flops int64
				qdram int64
			}
			var torchAggs []agg
			for i, nest := range st.nests {
				cm := st.cms[i]
				if cm == nil {
					continue // degraded under BestEffort: no phase entry
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				// Linalg view: one phase per nest (our linalg ops lower 1:1
				// to nests).
				out[ir.DialectLinalg] = append(out[ir.DialectLinalg], Phase{
					Level: ir.DialectLinalg, Op: nest.Origin(),
					Class: cfg.Constants().Classify(cm.OI), OI: cm.OI,
				})
				// Affine view: one phase per polyhedral statement — the
				// finest granularity (Sec. VI-B notes its control overhead).
				stRes, err := cachemodel.AnalyzeStatements(nest, cfg.Platform().Cache, cmOptions(cfg, nest))
				if err != nil {
					return err
				}
				for _, sr := range stRes {
					out[ir.DialectAffine] = append(out[ir.DialectAffine], Phase{
						Level: ir.DialectAffine,
						Op:    nest.Label + "/" + sr.Name,
						Class: cfg.Constants().Classify(sr.OI), OI: sr.OI,
					})
				}
				// Torch aggregation by origin.
				root := torchOrigin(nest.Origin())
				if len(torchAggs) == 0 || torchAggs[len(torchAggs)-1].name != root {
					torchAggs = append(torchAggs, agg{name: root})
				}
				torchAggs[len(torchAggs)-1].flops += cm.Flops
				torchAggs[len(torchAggs)-1].qdram += cm.QDRAM
			}
			for _, a := range torchAggs {
				oi := 0.0
				if a.qdram > 0 {
					oi = float64(a.flops) / float64(a.qdram)
				}
				out[ir.DialectTorch] = append(out[ir.DialectTorch], Phase{
					Level: ir.DialectTorch, Op: a.name,
					Class: cfg.Constants().Classify(oi), OI: oi,
				})
			}
			st.phases = out
			return nil
		},
	}
}

// compileStages declares the compile pipeline for a configuration. The
// torch cap-merge stage is present only at torch cap granularity.
func compileStages(cfg Config) []pipeline.Stage[*compileState] {
	stages := []pipeline.Stage[*compileState]{
		stagePreprocess(),
		stageTile(),
		stageCacheModel(),
		stageCharacterize(),
		stageModelFit(),
	}
	if cfg.Plans != nil {
		// The plan-lookup stage exists only when tables are configured,
		// so table-less pipelines keep their exact stage list (and memo
		// key chain) from before plan tables existed.
		stages = append(stages, stagePlanLookup())
	}
	stages = append(stages,
		stageSearch(),
		stageCapInsert(),
	)
	if cfg.CapLevel == ir.DialectTorch {
		stages = append(stages, stageCapMerge())
	}
	return append(stages, stageRewriteCleanup())
}

// phaseStages declares the PhaseStudy pipeline: the shared analysis
// prefix followed by the per-dialect phase classification.
func phaseStages() []pipeline.Stage[*compileState] {
	return []pipeline.Stage[*compileState]{
		stagePreprocess(),
		stageTile(),
		stageCacheModel(),
		stagePhases(),
	}
}

// StageNames returns the compile pipeline's stage names in declared
// order for a configuration — the vocabulary shared by Timings.Stages,
// statsz and degrade reports.
func StageNames(cfg Config) []string {
	stages := compileStages(cfg)
	out := make([]string, len(stages))
	for i, st := range stages {
		out[i] = st.Name
	}
	return out
}

// stagePos returns the position of a stage name in the declared order,
// or -1.
func stagePos(stages []pipeline.Stage[*compileState], name string) int {
	for i, st := range stages {
		if st.Name == name {
			return i
		}
	}
	return -1
}

// partialReports synthesizes per-nest reports for a prefix run that
// stopped before cap insertion: label, tiling, threads, OI and class as
// far as the executed stages computed them, with zero cap fields.
func (st *compileState) partialReports() {
	for i, nest := range st.nests {
		rep := KernelReport{
			Label: nest.Label, Origin: nest.Origin(),
			Tiled:  st.tinfo[i].Tiled,
			Tiling: st.tinfo[i].Strategy, TileSize: st.tinfo[i].TileSize,
			Threads: st.threads[i],
			Socket:  st.socket[i], RemoteRatio: st.remote[i],
		}
		if cm := st.cms[i]; cm != nil {
			rep.OI = cm.OI
			rep.Class = st.class[i]
			rep.CM = cm
		}
		if st.nerr[i] != nil {
			rep.Degraded = true
			rep.Err = st.nerr[i]
		}
		st.res.Reports = append(st.res.Reports, rep)
	}
}

// StageTiming is one recorded stage event of a compilation.
type StageTiming struct {
	Stage    string
	Duration time.Duration
	// CacheHit marks a stage satisfied from the per-stage memo.
	CacheHit bool
}

// timingsFromEvents maps the pipeline event stream onto the Table-IV
// breakdown: the legacy fields aggregate their stages, Stages keeps the
// full record.
func timingsFromEvents(evs []pipeline.Event) Timings {
	t := Timings{Stages: make([]StageTiming, 0, len(evs))}
	for _, e := range evs {
		t.Stages = append(t.Stages, StageTiming{Stage: e.Stage, Duration: e.Duration, CacheHit: e.CacheHit})
		switch e.Stage {
		case StagePreprocess:
			t.Preprocess += e.Duration
		case StageTile:
			t.Pluto += e.Duration
		case StageCacheModel:
			t.CM += e.Duration
		default:
			t.Steps46 += e.Duration
		}
	}
	return t
}

// PipelineOptions parameterizes CompilePipeline beyond the Config.
type PipelineOptions struct {
	// Stages enables per-stage memoization across compilations sharing
	// the cache. Snapshots are keyed by a content hash chained over the
	// module text and every upstream stage's configuration, so e.g. two
	// configs differing only in search objective share preprocess, tile
	// and cachemodel snapshots. nil disables stage memoization.
	Stages *pipeline.Cache
	// Until stops the pipeline after the named stage (a Stage* constant)
	// — the daemon's characterize endpoint stops at StageCharacterize.
	// Empty runs the full pipeline.
	Until string
	// Observe receives every stage event (timing, cache hit, error).
	Observe func(pipeline.Event)
}

// CompilePipeline is CompileCtx with staged-execution controls: an
// optional shared stage cache, a prefix bound, and an event observer.
// A prefix run (Until set before cap insertion) returns a Result whose
// Reports carry the analysis computed so far and whose module is the
// (lowered, tiled) input without caps.
func CompilePipeline(ctx context.Context, mod *ir.Module, cfg Config, opts PipelineOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Platform() == nil || cfg.Constants() == nil {
		return nil, fmt.Errorf("core: config needs platform and calibrated constants")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stages := compileStages(cfg)
	st := newCompileState(mod.Clone(), cfg)
	ro := pipeline.RunOptions{Until: opts.Until, Observe: opts.Observe}
	if opts.Stages != nil {
		ro.Cache = opts.Stages
		ro.BaseKey = stageBaseKey(mod, cfg)
	}
	events, err := pipeline.New("core", stages...).Run(ctx, st, ro)
	if err != nil {
		return nil, err
	}
	st.res.Timings = timingsFromEvents(events)
	if opts.Until != "" {
		if p := stagePos(stages, opts.Until); p >= 0 && p < stagePos(stages, StageCapInsert) {
			st.partialReports()
		}
	}
	return st.res, nil
}
