// Package core assembles the PolyUFC compilation flow of Fig. 3: lowering
// through the dialect stack, Pluto tiling/parallelization, PolyUFC-CM
// cache analysis, roofline characterization, Sec. V model construction,
// PolyUFC-SEARCH frequency-cap selection, and cap insertion with
// redundant-cap cleanup. The ML-PolyUFC multi-level machinery (Sec. VI)
// lives here too: caps can be applied at torch, linalg or affine
// granularity, and the per-dialect phase-change study of Fig. 5 is
// exposed as PhaseStudy.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"polyufc/internal/cachemodel"
	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/model"
	"polyufc/internal/pipeline"
	"polyufc/internal/plantable"
	"polyufc/internal/pluto"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/tiling"
)

// Config parameterizes one compilation.
type Config struct {
	// Target is the resolved backend handle: the registry description,
	// the platform built from it and the calibrated roofline constants,
	// as one value (roofline.Resolve / ResolveName produce it).
	Target *roofline.Target
	Pluto  pluto.Options
	// Tiling selects the tile-stage strategy (internal/tiling): the zero
	// value is the pluto strategy with the Pluto options above, which is
	// byte-identical to the pre-strategy pipeline. The spec's fingerprint
	// is folded into CacheKey and the tile stage's memo salt, so distinct
	// strategies never share memoized artifacts.
	Tiling tiling.Spec
	CM     cachemodel.Options
	Search search.Options
	// CapLevel selects the granularity caps are applied at (Sec. VI-B);
	// linalg is the paper's choice.
	CapLevel ir.Dialect
	// Plans, when non-nil, enables the plan-lookup stage: nests whose
	// fitted model lands on a loaded plan table get their cap from the
	// precomputed surface instead of a live PolyUFC-SEARCH bisection.
	// Off-table kernels (and stale tables) fall back to live search.
	Plans *plantable.Set
	// AmortizeFactor gates cap insertion on profitability: a cap that
	// changes the active frequency is only inserted when the kernel's
	// predicted runtime is at least AmortizeFactor x the platform's
	// cap-switch latency (Sec. VII-F overhead discussion). 0 disables the
	// gate.
	AmortizeFactor float64
	// Degrade selects the failure policy: Strict (fail-fast, the default)
	// aborts the whole module on the first stage error; BestEffort
	// isolates failures per nest — a failed Pluto stage falls back to the
	// untiled nest, a failed cache-model stage leaves the nest uncapped,
	// and the KernelReport is marked Degraded with the error recorded.
	Degrade DegradePolicy
	// Faults, when non-nil, arms the compiler's injection points
	// (FaultPluto, FaultCacheModel, and the per-strategy tiling.<name>
	// points) for robustness testing.
	Faults *faults.Registry
}

// DegradePolicy selects how Compile reacts to a per-nest stage failure.
type DegradePolicy int

// Degradation policies.
const (
	// Strict aborts the compilation on the first stage error (fail-fast).
	Strict DegradePolicy = iota
	// BestEffort isolates the failure to the nest and degrades it:
	// untiled on a Pluto failure, uncapped on a cache-model failure.
	BestEffort
)

func (d DegradePolicy) String() string {
	switch d {
	case Strict:
		return "strict"
	case BestEffort:
		return "best-effort"
	}
	return "degrade?"
}

// ParseDegradePolicy maps a CLI string to a policy.
func ParseDegradePolicy(s string) (DegradePolicy, bool) {
	switch s {
	case "strict", "":
		return Strict, true
	case "best-effort", "besteffort":
		return BestEffort, true
	}
	return Strict, false
}

// Named fault points of the compilation pipeline (see internal/faults).
const (
	// FaultPluto poisons the Pluto tiling stage of the next nest.
	FaultPluto = "core.pluto"
	// FaultCacheModel poisons the PolyUFC-CM stage of the next nest.
	FaultCacheModel = "core.cachemodel"
)

// Platform returns the target's platform (nil without a target).
func (c Config) Platform() *hw.Platform {
	if c.Target == nil {
		return nil
	}
	return c.Target.Platform
}

// Constants returns the target's calibrated roofline constants (nil
// without a target).
func (c Config) Constants() *roofline.Constants {
	if c.Target == nil {
		return nil
	}
	return c.Target.Constants
}

// DefaultConfig returns the paper's evaluation configuration for a
// resolved backend target.
func DefaultConfig(t *roofline.Target) Config {
	return Config{
		Target:         t,
		Pluto:          pluto.DefaultOptions(),
		CM:             cachemodel.DefaultOptions(),
		Search:         search.DefaultOptions(),
		CapLevel:       ir.DialectLinalg,
		AmortizeFactor: 5,
	}
}

// Timings is the Table-IV compile-time breakdown. The legacy fields
// aggregate the recorded stage events into the paper's four buckets;
// Stages keeps the full per-stage record.
type Timings struct {
	Preprocess time.Duration // "preprocess": lowering (stage 2 prep)
	Pluto      time.Duration // "tile": stage 2 optimizer
	CM         time.Duration // "cachemodel": stages 3a-3b (PolyUFC-CM + OI)
	Steps46    time.Duration // remaining stages 4-6 (characterize through cleanup)
	// Stages records every executed pipeline stage in order, including
	// stages added after the four buckets above were named.
	Stages []StageTiming
}

// Total returns the end-to-end compile time. It derives from the
// recorded stage events when present, so a stage added to the pipeline
// can never silently under-report the Table-IV breakdown; the field sum
// is the fallback for hand-built values.
func (t Timings) Total() time.Duration {
	if len(t.Stages) > 0 {
		var sum time.Duration
		for _, s := range t.Stages {
			sum += s.Duration
		}
		return sum
	}
	return t.Preprocess + t.Pluto + t.CM + t.Steps46
}

// KernelReport is the per-nest analysis outcome.
type KernelReport struct {
	Label  string
	Origin string
	OI     float64
	Class  roofline.Class
	CapGHz float64
	Tiled  bool
	// Tiling names the strategy that transformed the nest ("pluto",
	// "auto:latency", ...; empty when the tile stage degraded before
	// reporting), and TileSize the tile size it applied (0 when untiled).
	Tiling   string
	TileSize int64
	Threads  int
	// Est is the model estimate at the selected cap; EstDefault at the
	// driver's default (maximum uncore frequency).
	Est, EstDefault model.Estimate
	CM              *cachemodel.Result
	SearchEvals     int
	// PlanHit marks a cap answered from a precomputed plan table rather
	// than a live PolyUFC-SEARCH bisection (SearchEvals is 0 then).
	PlanHit bool
	// Socket is the home socket the nest was placed on (topology
	// targets): -1 marks a parallel nest spanning every socket, 0 is the
	// only value single-socket targets produce.
	Socket int
	// RemoteRatio is the modeled fraction of the nest's DRAM traffic
	// served across the inter-socket link (0 on single-socket targets
	// and on serial nests, whose data is home-socket local).
	RemoteRatio float64
	// SocketCaps is the per-socket cap vector the placement selects:
	// the searched cap on every socket a parallel nest spans, or the
	// searched cap on the home socket with idle sockets parked at their
	// grid minimum. Nil on single-socket targets, so v1 reports are
	// unchanged.
	SocketCaps []float64
	// Degraded marks a best-effort fallback: a stage failed and this nest
	// fell back to untiled (Pluto failure) or uncapped (cache-model or
	// search failure). Err records the stage error behind it.
	Degraded bool
	Err      error
}

// TopologyResult aggregates a compilation's model estimates across the
// target's sockets and cluster nodes: the chip-to-cluster energy rollup
// the LULESH-style analysis reports. All figures are model predictions
// at the selected caps (Est) and at the driver default (EstDefault) —
// the same quantities the per-kernel reports carry, summed per socket
// and scaled to the node count.
type TopologyResult struct {
	// Sockets and Nodes mirror the backend topology.
	Sockets int
	Nodes   int
	// SocketSeconds[k] and SocketJoules[k] attribute predicted busy time
	// and energy to socket k: serial nests bill their home socket,
	// parallel nests bill their wall time to every socket they span and
	// split their energy evenly.
	SocketSeconds []float64
	SocketJoules  []float64
	// NodeSeconds is the node makespan (the module runs its nests in
	// order); NodeJoules the node's total predicted energy.
	NodeSeconds float64
	NodeJoules  float64
	// Cluster figures scale to Nodes identical replicas running the
	// module data-parallel: energy sums, the BSP step time is the node
	// makespan. ClusterEDP = (Nodes x NodeJoules) x NodeSeconds;
	// ClusterEDPDefault is the same rollup at the driver default.
	ClusterSeconds    float64
	ClusterJoules     float64
	ClusterEDP        float64
	ClusterEDPDefault float64
}

// Result is the outcome of one PolyUFC compilation.
type Result struct {
	Module       *ir.Module
	Reports      []KernelReport
	Timings      Timings
	CapsInserted int
	CapsRemoved  int
	// Topology is the per-socket/cluster energy rollup; nil for
	// single-socket, single-node targets (v1 results are unchanged).
	Topology *TopologyResult
}

// Compile runs the full PolyUFC flow on a module (torch, linalg or affine
// level) and returns the transformed module with uncore caps inserted.
//
// Compile is pure: the input module is deep-cloned before lowering, so two
// calls on the same module yield independent, deep-equal Results (modulo
// wall-clock Timings). The parallel engine's memo cache (Cache) relies on
// this property to share Results across sweeps.
func Compile(mod *ir.Module, cfg Config) (*Result, error) {
	return CompileCtx(context.Background(), mod, cfg)
}

// CompileCtx is Compile with a deadline: the context is checked between
// pipeline stages and between nests, and propagated into PolyUFC-SEARCH,
// so a serving daemon's per-request timeout bounds the whole compilation.
// Cancellation always aborts — it is a caller decision, not a stage fault,
// so BestEffort does not degrade around it.
//
// The body is the declared stage list of stages.go run by
// internal/pipeline (see CompilePipeline for the staged-execution
// controls: stage memoization, prefix runs, event observers).
func CompileCtx(ctx context.Context, mod *ir.Module, cfg Config) (*Result, error) {
	return CompilePipeline(ctx, mod, cfg, PipelineOptions{})
}

// torchOrigin extracts the torch-level ancestor from an origin chain like
// "torch.sdpa/linalg.batch_matmul".
func torchOrigin(origin string) string {
	if i := strings.Index(origin, "/"); i >= 0 {
		return origin[:i]
	}
	return origin
}

// mergeTorchCaps rebuilds each function's cap placement at torch
// granularity: all existing caps are dropped, consecutive nests sharing a
// torch-level origin form one group, and each group gets a single cap —
// the min of member caps when every member is CB, the max otherwise (the
// paper's min/max combination rule, Sec. VII-A). Groups whose summed
// predicted runtime is below minSec stay uncapped (the profitability gate
// at group granularity).
func mergeTorchCaps(mod *ir.Module, reports []KernelReport, minSec float64) int {
	classOf := map[string]roofline.Class{}
	capOf := map[string]float64{}
	secOf := map[string]float64{}
	for _, r := range reports {
		classOf[r.Label] = r.Class
		capOf[r.Label] = r.CapGHz
		secOf[r.Label] = r.Est.Seconds
	}
	removed := 0
	for _, f := range mod.Funcs {
		// Strip caps, keep nests and foreign ops in order.
		var seq []ir.Op
		for _, op := range f.Ops {
			if _, ok := op.(*ir.SetUncoreCap); ok {
				removed++
				continue
			}
			seq = append(seq, op)
		}
		var out []ir.Op
		i := 0
		for i < len(seq) {
			nest, ok := seq[i].(*ir.Nest)
			if !ok {
				out = append(out, seq[i])
				i++
				continue
			}
			group := torchOrigin(nest.Origin())
			var nests []*ir.Nest
			j := i
			for j < len(seq) {
				n, ok := seq[j].(*ir.Nest)
				if !ok || torchOrigin(n.Origin()) != group {
					break
				}
				nests = append(nests, n)
				j++
				if group == "" {
					break // unlabelled nests stay solo
				}
			}
			allCB := true
			groupSec := 0.0
			for _, n := range nests {
				if classOf[n.Label] != roofline.ComputeBound {
					allCB = false
				}
				groupSec += secOf[n.Label]
			}
			gcap := capOf[nests[0].Label]
			for _, n := range nests[1:] {
				c := capOf[n.Label]
				if allCB && c < gcap {
					gcap = c
				}
				if !allCB && c > gcap {
					gcap = c
				}
			}
			if groupSec >= minSec {
				out = append(out, &ir.SetUncoreCap{GHz: gcap, Level: ir.DialectTorch, From: group})
				removed--
			}
			for _, n := range nests {
				out = append(out, n)
			}
			i = j
		}
		f.Ops = out
	}
	if removed < 0 {
		removed = 0
	}
	return removed
}

// Phase is one entry of the Fig. 5 phase-change study.
type Phase struct {
	Level ir.Dialect
	Op    string
	Class roofline.Class
	OI    float64
}

// PhaseStudy characterizes a module at every dialect level: the torch view
// aggregates all lowered pieces of each torch op, the linalg view
// characterizes each structured op, and the affine view each nest (after
// Pluto). It returns the per-level phase sequences.
//
// The study is a declared pipeline sharing the compile flow's
// preprocess/tile/cachemodel stages (stages.go), followed by the
// study-specific phase classification. Like Compile, it is pure: it
// lowers a private clone.
func PhaseStudy(mod *ir.Module, cfg Config) (map[ir.Dialect][]Phase, error) {
	if cfg.Platform() == nil || cfg.Constants() == nil {
		return nil, fmt.Errorf("core: config needs a resolved backend target (platform and calibrated constants)")
	}
	st := newCompileState(mod.Clone(), cfg)
	if _, err := pipeline.New("core", phaseStages()...).Run(context.Background(), st, pipeline.RunOptions{}); err != nil {
		return nil, err
	}
	return st.phases, nil
}
