// Package core assembles the PolyUFC compilation flow of Fig. 3: lowering
// through the dialect stack, Pluto tiling/parallelization, PolyUFC-CM
// cache analysis, roofline characterization, Sec. V model construction,
// PolyUFC-SEARCH frequency-cap selection, and cap insertion with
// redundant-cap cleanup. The ML-PolyUFC multi-level machinery (Sec. VI)
// lives here too: caps can be applied at torch, linalg or affine
// granularity, and the per-dialect phase-change study of Fig. 5 is
// exposed as PhaseStudy.
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"polyufc/internal/cachemodel"
	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/lower"
	"polyufc/internal/model"
	"polyufc/internal/pluto"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
)

// Config parameterizes one compilation.
type Config struct {
	Platform  *hw.Platform
	Constants *roofline.Constants
	Pluto     pluto.Options
	CM        cachemodel.Options
	Search    search.Options
	// CapLevel selects the granularity caps are applied at (Sec. VI-B);
	// linalg is the paper's choice.
	CapLevel ir.Dialect
	// AmortizeFactor gates cap insertion on profitability: a cap that
	// changes the active frequency is only inserted when the kernel's
	// predicted runtime is at least AmortizeFactor x the platform's
	// cap-switch latency (Sec. VII-F overhead discussion). 0 disables the
	// gate.
	AmortizeFactor float64
	// Degrade selects the failure policy: Strict (fail-fast, the default)
	// aborts the whole module on the first stage error; BestEffort
	// isolates failures per nest — a failed Pluto stage falls back to the
	// untiled nest, a failed cache-model stage leaves the nest uncapped,
	// and the KernelReport is marked Degraded with the error recorded.
	Degrade DegradePolicy
	// Faults, when non-nil, arms the compiler's injection points
	// (FaultPluto, FaultCacheModel) for robustness testing.
	Faults *faults.Registry
}

// DegradePolicy selects how Compile reacts to a per-nest stage failure.
type DegradePolicy int

// Degradation policies.
const (
	// Strict aborts the compilation on the first stage error (fail-fast).
	Strict DegradePolicy = iota
	// BestEffort isolates the failure to the nest and degrades it:
	// untiled on a Pluto failure, uncapped on a cache-model failure.
	BestEffort
)

func (d DegradePolicy) String() string {
	switch d {
	case Strict:
		return "strict"
	case BestEffort:
		return "best-effort"
	}
	return "degrade?"
}

// ParseDegradePolicy maps a CLI string to a policy.
func ParseDegradePolicy(s string) (DegradePolicy, bool) {
	switch s {
	case "strict", "":
		return Strict, true
	case "best-effort", "besteffort":
		return BestEffort, true
	}
	return Strict, false
}

// Named fault points of the compilation pipeline (see internal/faults).
const (
	// FaultPluto poisons the Pluto tiling stage of the next nest.
	FaultPluto = "core.pluto"
	// FaultCacheModel poisons the PolyUFC-CM stage of the next nest.
	FaultCacheModel = "core.cachemodel"
)

// runStage invokes one per-nest compiler stage with panic isolation: a
// panicking stage surfaces as a wrapped error carrying the stage name and
// nest label instead of unwinding the whole sweep.
func runStage(stage, label string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: %s on %s: panic: %v", stage, label, r)
		}
	}()
	if err := f(); err != nil {
		return fmt.Errorf("core: %s on %s: %w", stage, label, err)
	}
	return nil
}

// DefaultConfig returns the paper's evaluation configuration for a
// calibrated platform.
func DefaultConfig(p *hw.Platform, c *roofline.Constants) Config {
	return Config{
		Platform:       p,
		Constants:      c,
		Pluto:          pluto.DefaultOptions(),
		CM:             cachemodel.DefaultOptions(),
		Search:         search.DefaultOptions(),
		CapLevel:       ir.DialectLinalg,
		AmortizeFactor: 5,
	}
}

// Timings is the Table-IV compile-time breakdown.
type Timings struct {
	Preprocess time.Duration // statement extraction / lowering (stage 2 prep)
	Pluto      time.Duration // stage 2 optimizer
	CM         time.Duration // stages 3a-3b (PolyUFC-CM + OI)
	Steps46    time.Duration // stages 4-6 (characterize, estimate, search, insert)
}

// Total returns the end-to-end compile time.
func (t Timings) Total() time.Duration {
	return t.Preprocess + t.Pluto + t.CM + t.Steps46
}

// KernelReport is the per-nest analysis outcome.
type KernelReport struct {
	Label   string
	Origin  string
	OI      float64
	Class   roofline.Class
	CapGHz  float64
	Tiled   bool
	Threads int
	// Est is the model estimate at the selected cap; EstDefault at the
	// driver's default (maximum uncore frequency).
	Est, EstDefault model.Estimate
	CM              *cachemodel.Result
	SearchEvals     int
	// Degraded marks a best-effort fallback: a stage failed and this nest
	// fell back to untiled (Pluto failure) or uncapped (cache-model or
	// search failure). Err records the stage error behind it.
	Degraded bool
	Err      error
}

// Result is the outcome of one PolyUFC compilation.
type Result struct {
	Module       *ir.Module
	Reports      []KernelReport
	Timings      Timings
	CapsInserted int
	CapsRemoved  int
}

// Compile runs the full PolyUFC flow on a module (torch, linalg or affine
// level) and returns the transformed module with uncore caps inserted.
//
// Compile is pure: the input module is deep-cloned before lowering, so two
// calls on the same module yield independent, deep-equal Results (modulo
// wall-clock Timings). The parallel engine's memo cache (Cache) relies on
// this property to share Results across sweeps.
func Compile(mod *ir.Module, cfg Config) (*Result, error) {
	return CompileCtx(context.Background(), mod, cfg)
}

// CompileCtx is Compile with a deadline: the context is checked between
// pipeline stages and between nests, and propagated into PolyUFC-SEARCH,
// so a serving daemon's per-request timeout bounds the whole compilation.
// Cancellation always aborts — it is a caller decision, not a stage fault,
// so BestEffort does not degrade around it.
func CompileCtx(ctx context.Context, mod *ir.Module, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Platform == nil || cfg.Constants == nil {
		return nil, fmt.Errorf("core: config needs platform and calibrated constants")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mod = mod.Clone()
	res := &Result{Module: mod}

	// Stage 1-2 prep: lower to affine.
	start := time.Now()
	if err := lower.TorchToLinalg(mod); err != nil {
		return nil, err
	}
	if err := lower.LinalgToAffine(mod); err != nil {
		return nil, err
	}
	res.Timings.Preprocess = time.Since(start)

	// Stage 2: Pluto tiling + parallelization per nest. Stage failures are
	// panic-isolated; under BestEffort a failed nest falls back to its
	// untiled form and is marked degraded instead of killing the module.
	start = time.Now()
	tiled := map[*ir.Nest]bool{}
	degraded := map[*ir.Nest]error{}
	for _, f := range mod.Funcs {
		for i, op := range f.Ops {
			nest, ok := op.(*ir.Nest)
			if !ok {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var pres pluto.Result
			err := runStage("pluto", nest.Label, func() error {
				if err := cfg.Faults.Hit(FaultPluto); err != nil {
					return err
				}
				var err error
				pres, err = pluto.Optimize(nest, cfg.Pluto)
				return err
			})
			if err != nil {
				if cfg.Degrade != BestEffort {
					return nil, err
				}
				degraded[nest] = err
				continue
			}
			f.Ops[i] = pres.Nest
			tiled[pres.Nest] = pres.Tiled
		}
	}
	res.Timings.Pluto = time.Since(start)

	// Stage 3: PolyUFC-CM + OI per nest. Under BestEffort a failed nest
	// stays uncapped: it keeps running at whatever frequency is active.
	start = time.Now()
	cms := map[*ir.Nest]*cachemodel.Result{}
	for _, f := range mod.Funcs {
		for _, op := range f.Ops {
			nest, ok := op.(*ir.Nest)
			if !ok {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var cm *cachemodel.Result
			err := runStage("cache model", nest.Label, func() error {
				if err := cfg.Faults.Hit(FaultCacheModel); err != nil {
					return err
				}
				cmOpts := cfg.CM
				if nest.Root != nil && nest.Root.Parallel && cmOpts.Threads <= 1 {
					cmOpts.Threads = cfg.Platform.Threads
				}
				var err error
				cm, err = cachemodel.Analyze(nest, cfg.Platform.Cache, cmOpts)
				return err
			})
			if err != nil {
				if cfg.Degrade != BestEffort {
					return nil, err
				}
				if degraded[nest] == nil {
					degraded[nest] = err
				}
				continue
			}
			cms[nest] = cm
		}
	}
	res.Timings.CM = time.Since(start)

	// Stages 4-6: characterize, estimate, search, insert caps.
	start = time.Now()
	freqs := cfg.Platform.UncoreSteps()
	for _, f := range mod.Funcs {
		var out []ir.Op
		activeCap := cfg.Platform.UncoreMax // the driver default
		for _, op := range f.Ops {
			nest, ok := op.(*ir.Nest)
			if !ok {
				out = append(out, op)
				continue
			}
			cm := cms[nest]
			threads := 1
			if nest.Root != nil && nest.Root.Parallel {
				threads = cfg.Platform.Threads
			}
			if cm == nil {
				// Cache model degraded (BestEffort): the nest stays
				// uncapped — it runs at whatever frequency is active.
				res.Reports = append(res.Reports, KernelReport{
					Label: nest.Label, Origin: nest.Origin(),
					CapGHz: activeCap, Tiled: tiled[nest], Threads: threads,
					Degraded: true, Err: degraded[nest],
				})
				out = append(out, nest)
				continue
			}
			var m *model.Model
			var sres search.Result
			err := runStage("search", nest.Label, func() error {
				m = model.New(cfg.Constants, model.FromCacheModel(cm, threads))
				var serr error
				sres, serr = search.Run(ctx, m, freqs, cfg.Search)
				return serr
			})
			if err != nil {
				// Deadline expiry or cancellation aborts the compilation
				// outright: the partial search result is not a stage fault
				// BestEffort should paper over.
				if ctx.Err() != nil {
					return nil, err
				}
				if cfg.Degrade != BestEffort {
					return nil, err
				}
				res.Reports = append(res.Reports, KernelReport{
					Label: nest.Label, Origin: nest.Origin(),
					OI: cm.OI, CapGHz: activeCap, Tiled: tiled[nest],
					Threads: threads, CM: cm, Degraded: true, Err: err,
				})
				out = append(out, nest)
				continue
			}
			rep := KernelReport{
				Label: nest.Label, Origin: nest.Origin(),
				OI: cm.OI, Class: sres.Class, CapGHz: sres.BestGHz,
				Tiled: tiled[nest], Threads: threads,
				Est: sres.Best, EstDefault: m.At(cfg.Platform.UncoreMax),
				CM: cm, SearchEvals: sres.Evaluated,
				Degraded: degraded[nest] != nil, Err: degraded[nest],
			}
			res.Reports = append(res.Reports, rep)
			// Profitability gate (Sec. VII-F): switching the cap costs
			// CapLatency; only worthwhile when the kernel runs long enough.
			// A non-positive BestGHz (degenerate frequency grid) never
			// inserts a cap.
			profitable := cfg.AmortizeFactor <= 0 ||
				sres.Best.Seconds >= cfg.AmortizeFactor*cfg.Platform.CapLatency
			if profitable && sres.BestGHz > 0 && sres.BestGHz != activeCap {
				out = append(out,
					&ir.SetUncoreCap{GHz: sres.BestGHz, Level: cfg.CapLevel, From: nest.Label})
				res.CapsInserted++
				activeCap = sres.BestGHz
			}
			out = append(out, nest)
		}
		f.Ops = out
	}

	// Granularity merging (Sec. VI-B): at torch granularity, consecutive
	// nests sharing a torch-level origin get one cap — min of member caps
	// when all members are CB, max otherwise (the safe direction for BB).
	if cfg.CapLevel == ir.DialectTorch {
		minSec := cfg.AmortizeFactor * cfg.Platform.CapLatency
		res.CapsRemoved += mergeTorchCaps(mod, res.Reports, minSec)
	}

	// Rewrite patterns: drop shadowed and equal caps.
	res.CapsRemoved += ir.ApplyPatterns(mod,
		ir.RedundantCapPattern{}, ir.EqualCapPattern{})
	res.Timings.Steps46 = time.Since(start)
	return res, nil
}

// torchOrigin extracts the torch-level ancestor from an origin chain like
// "torch.sdpa/linalg.batch_matmul".
func torchOrigin(origin string) string {
	if i := strings.Index(origin, "/"); i >= 0 {
		return origin[:i]
	}
	return origin
}

// mergeTorchCaps rebuilds each function's cap placement at torch
// granularity: all existing caps are dropped, consecutive nests sharing a
// torch-level origin form one group, and each group gets a single cap —
// the min of member caps when every member is CB, the max otherwise (the
// paper's min/max combination rule, Sec. VII-A). Groups whose summed
// predicted runtime is below minSec stay uncapped (the profitability gate
// at group granularity).
func mergeTorchCaps(mod *ir.Module, reports []KernelReport, minSec float64) int {
	classOf := map[string]roofline.Class{}
	capOf := map[string]float64{}
	secOf := map[string]float64{}
	for _, r := range reports {
		classOf[r.Label] = r.Class
		capOf[r.Label] = r.CapGHz
		secOf[r.Label] = r.Est.Seconds
	}
	removed := 0
	for _, f := range mod.Funcs {
		// Strip caps, keep nests and foreign ops in order.
		var seq []ir.Op
		for _, op := range f.Ops {
			if _, ok := op.(*ir.SetUncoreCap); ok {
				removed++
				continue
			}
			seq = append(seq, op)
		}
		var out []ir.Op
		i := 0
		for i < len(seq) {
			nest, ok := seq[i].(*ir.Nest)
			if !ok {
				out = append(out, seq[i])
				i++
				continue
			}
			group := torchOrigin(nest.Origin())
			var nests []*ir.Nest
			j := i
			for j < len(seq) {
				n, ok := seq[j].(*ir.Nest)
				if !ok || torchOrigin(n.Origin()) != group {
					break
				}
				nests = append(nests, n)
				j++
				if group == "" {
					break // unlabelled nests stay solo
				}
			}
			allCB := true
			groupSec := 0.0
			for _, n := range nests {
				if classOf[n.Label] != roofline.ComputeBound {
					allCB = false
				}
				groupSec += secOf[n.Label]
			}
			gcap := capOf[nests[0].Label]
			for _, n := range nests[1:] {
				c := capOf[n.Label]
				if allCB && c < gcap {
					gcap = c
				}
				if !allCB && c > gcap {
					gcap = c
				}
			}
			if groupSec >= minSec {
				out = append(out, &ir.SetUncoreCap{GHz: gcap, Level: ir.DialectTorch, From: group})
				removed--
			}
			for _, n := range nests {
				out = append(out, n)
			}
			i = j
		}
		f.Ops = out
	}
	if removed < 0 {
		removed = 0
	}
	return removed
}

// Phase is one entry of the Fig. 5 phase-change study.
type Phase struct {
	Level ir.Dialect
	Op    string
	Class roofline.Class
	OI    float64
}

// PhaseStudy characterizes a module at every dialect level: the torch view
// aggregates all lowered pieces of each torch op, the linalg view
// characterizes each structured op, and the affine view each nest (after
// Pluto). It returns the per-level phase sequences.
func PhaseStudy(mod *ir.Module, cfg Config) (map[ir.Dialect][]Phase, error) {
	// Like Compile, the study is pure: it lowers a private clone.
	mod = mod.Clone()
	if err := lower.TorchToLinalg(mod); err != nil {
		return nil, err
	}
	if err := lower.LinalgToAffine(mod); err != nil {
		return nil, err
	}
	out := map[ir.Dialect][]Phase{}
	type agg struct {
		name  string
		flops int64
		qdram int64
	}
	var torchAggs []agg
	for _, f := range mod.Funcs {
		for _, op := range f.Ops {
			nest, ok := op.(*ir.Nest)
			if !ok {
				continue
			}
			pres, err := pluto.Optimize(nest, cfg.Pluto)
			if err != nil {
				return nil, err
			}
			cmOpts := cfg.CM
			if pres.Nest.Root != nil && pres.Nest.Root.Parallel && cmOpts.Threads <= 1 {
				cmOpts.Threads = cfg.Platform.Threads
			}
			cm, err := cachemodel.Analyze(pres.Nest, cfg.Platform.Cache, cmOpts)
			if err != nil {
				return nil, err
			}
			// Linalg view: one phase per nest (our linalg ops lower 1:1 to
			// nests).
			ph := Phase{Op: nest.Origin(), Class: cfg.Constants.Classify(cm.OI), OI: cm.OI}
			out[ir.DialectLinalg] = append(out[ir.DialectLinalg],
				Phase{Level: ir.DialectLinalg, Op: ph.Op, Class: ph.Class, OI: ph.OI})
			// Affine view: one phase per polyhedral statement — the finest
			// granularity (Sec. VI-B notes its control overhead).
			stRes, err := cachemodel.AnalyzeStatements(pres.Nest, cfg.Platform.Cache, cmOpts)
			if err != nil {
				return nil, err
			}
			for _, sr := range stRes {
				out[ir.DialectAffine] = append(out[ir.DialectAffine], Phase{
					Level: ir.DialectAffine,
					Op:    nest.Label + "/" + sr.Name,
					Class: cfg.Constants.Classify(sr.OI), OI: sr.OI,
				})
			}
			// Torch aggregation by origin.
			root := torchOrigin(nest.Origin())
			if len(torchAggs) == 0 || torchAggs[len(torchAggs)-1].name != root {
				torchAggs = append(torchAggs, agg{name: root})
			}
			torchAggs[len(torchAggs)-1].flops += cm.Flops
			torchAggs[len(torchAggs)-1].qdram += cm.QDRAM
		}
	}
	for _, a := range torchAggs {
		oi := 0.0
		if a.qdram > 0 {
			oi = float64(a.flops) / float64(a.qdram)
		}
		out[ir.DialectTorch] = append(out[ir.DialectTorch], Phase{
			Level: ir.DialectTorch, Op: a.name,
			Class: cfg.Constants.Classify(oi), OI: oi,
		})
	}
	return out, nil
}
