package core

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/pipeline"
	"polyufc/internal/tiling"
	"polyufc/internal/workloads"
)

// The golden-equivalence guarantee of the strategy refactor: a zero-value
// Tiling spec and an explicit pluto spec are the same compilation,
// byte-identical Results included.
func TestDefaultTilingEqualsExplicitPluto(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0
	for _, name := range []string{"gemm", "2mm", "sdpa-bert"} {
		def, err := CompileCtx(context.Background(), buildModule(t, name, workloads.Test), cfg)
		if err != nil {
			t.Fatalf("%s default: %v", name, err)
		}
		cfgP := cfg
		cfgP.Tiling = tiling.Spec{Name: tiling.NamePluto}
		exp, err := CompileCtx(context.Background(), buildModule(t, name, workloads.Test), cfgP)
		if err != nil {
			t.Fatalf("%s explicit pluto: %v", name, err)
		}
		if !reflect.DeepEqual(zeroTimings(def), zeroTimings(exp)) {
			t.Fatalf("%s: zero-value Tiling diverged from explicit pluto", name)
		}
	}
}

// "" and "pluto" are the same artifact: a compile with the zero spec
// seeds the stage cache for an explicit-pluto compile (and vice versa).
func TestDefaultAndExplicitPlutoShareMemoEntries(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0
	cache := &pipeline.Cache{}
	mod := buildModule(t, "gemm", workloads.Test)
	if _, err := CompilePipeline(context.Background(), mod, cfg, PipelineOptions{Stages: cache}); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Tiling = tiling.Spec{Name: tiling.NamePluto}
	res, err := CompilePipeline(context.Background(), buildModule(t, "gemm", workloads.Test), cfg2,
		PipelineOptions{Stages: cache})
	if err != nil {
		t.Fatal(err)
	}
	hit := map[string]bool{}
	for _, s := range res.Timings.Stages {
		hit[s.Stage] = s.CacheHit
	}
	for _, name := range []string{StagePreprocess, StageTile, StageCacheModel, StageCharacterize, StageModelFit, StageSearch} {
		if !hit[name] {
			t.Fatalf("stage %s re-ran under explicit pluto; want a snapshot hit (hits: %v)", name, hit)
		}
	}
}

// Distinct strategies must never share memo entries: the tile-stage salt
// carries the strategy fingerprint, so every tile-or-later stage misses
// when only the strategy changes (preprocess, upstream of tiling, may
// still hit — that sharing is correct).
func TestDistinctStrategiesNeverShareMemoEntries(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0
	cache := &pipeline.Cache{}
	if _, err := CompilePipeline(context.Background(), buildModule(t, "gemm", workloads.Test), cfg,
		PipelineOptions{Stages: cache}); err != nil {
		t.Fatal(err)
	}
	specs := []tiling.Spec{
		{Name: tiling.NamePluto, Size: 64},
		{Name: tiling.NameCacheOblivious},
		{Name: tiling.NameLatency},
		{Name: tiling.NameAuto},
	}
	for _, spec := range specs {
		cfg2 := cfg
		cfg2.Tiling = spec
		res, err := CompilePipeline(context.Background(), buildModule(t, "gemm", workloads.Test), cfg2,
			PipelineOptions{Stages: cache})
		if err != nil {
			t.Fatalf("%s: %v", spec.Fingerprint(), err)
		}
		for _, s := range res.Timings.Stages {
			if s.Stage != StagePreprocess && s.CacheHit {
				t.Fatalf("%s: stage %s served from another strategy's snapshot", spec.Fingerprint(), s.Stage)
			}
		}
	}
}

// Every concrete strategy honors BestEffort the same way the legacy
// pluto path does: a poisoned nest falls back untiled but is still
// analyzed, characterized and capped, and only that nest degrades.
func TestBestEffortPerStrategyUntiledFallback(t *testing.T) {
	cases := []struct {
		spec  tiling.Spec
		point string
	}{
		{tiling.Spec{Name: tiling.NamePluto}, tiling.FaultPluto},
		{tiling.Spec{Name: tiling.NameCacheOblivious}, tiling.FaultCacheOblivious},
		{tiling.Spec{Name: tiling.NameLatency}, tiling.FaultLatency},
	}
	for _, tc := range cases {
		cfg, compile := buildKernel(t, "gemm")
		cfg.Tiling = tc.spec
		cfg.Degrade = BestEffort
		cfg.Faults = faults.New(1)
		cfg.Faults.Enable(tc.point, faults.Spec{On: []int64{2}})
		res := compile()
		if len(res.Reports) < 2 {
			t.Fatalf("%s: reports = %d", tc.spec.Name, len(res.Reports))
		}
		for i, r := range res.Reports {
			if i == 1 {
				if !r.Degraded || r.Tiled {
					t.Fatalf("%s: poisoned nest degraded=%v tiled=%v", tc.spec.Name, r.Degraded, r.Tiled)
				}
				if r.CM == nil || r.CapGHz <= 0 || r.SearchEvals == 0 {
					t.Fatalf("%s: untiled fallback not analyzed: %+v", tc.spec.Name, r)
				}
				if r.Err == nil || !strings.Contains(r.Err.Error(), StageTile+" on") {
					t.Fatalf("%s: recorded err = %v", tc.spec.Name, r.Err)
				}
				continue
			}
			if r.Degraded {
				t.Fatalf("%s: healthy nest %d degraded", tc.spec.Name, i)
			}
		}
	}
}

// auto must never select a candidate that errored. On mvt the healthy
// winner is cacheoblivious; with that candidate poisoned every call,
// auto still succeeds and picks someone else.
func TestAutoNeverSelectsErroredStrategy(t *testing.T) {
	cfg, compile := buildKernel(t, "mvt")
	cfg.Tiling = tiling.Spec{Name: tiling.NameAuto}
	healthy := compile()
	won := false
	for _, r := range healthy.Reports {
		if r.Tiling == "auto:"+tiling.NameCacheOblivious {
			won = true
		}
	}
	if !won {
		t.Fatalf("precondition: cacheoblivious never wins mvt on BDW; reports %+v", healthy.Reports)
	}

	cfg.Faults = faults.New(1)
	cfg.Faults.Enable(tiling.FaultCacheOblivious, faults.Spec{P: 1})
	res := compile() // Strict: auto absorbs the candidate failure
	for i, r := range res.Reports {
		if r.Degraded {
			t.Fatalf("report %d degraded; auto must absorb a single candidate failure", i)
		}
		if strings.HasPrefix(r.Tiling, "auto:") && r.Tiling == "auto:"+tiling.NameCacheOblivious {
			t.Fatalf("report %d selected the errored candidate: %s", i, r.Tiling)
		}
	}
}

// When every candidate fails, auto fails: Strict surfaces the combined
// error, BestEffort degrades each nest to its untiled form yet still
// caps it.
func TestAutoAllCandidatesFailed(t *testing.T) {
	cfg, compile := buildKernel(t, "gemm")
	cfg.Tiling = tiling.Spec{Name: tiling.NameAuto}
	cfg.Faults = faults.New(1)
	for _, pt := range []string{tiling.FaultPluto, tiling.FaultCacheOblivious, tiling.FaultLatency} {
		cfg.Faults.Enable(pt, faults.Spec{P: 1})
	}
	mod := buildModule(t, "gemm", workloads.Test)
	_, err := Compile(mod, *cfg)
	if err == nil || !strings.Contains(err.Error(), "all candidates failed") {
		t.Fatalf("strict err = %v", err)
	}

	cfg.Degrade = BestEffort
	cfg.Faults = faults.New(1)
	for _, pt := range []string{tiling.FaultPluto, tiling.FaultCacheOblivious, tiling.FaultLatency} {
		cfg.Faults.Enable(pt, faults.Spec{P: 1})
	}
	res := compile()
	for i, r := range res.Reports {
		if !r.Degraded || r.Tiled {
			t.Fatalf("report %d: degraded=%v tiled=%v; want untiled fallback", i, r.Degraded, r.Tiled)
		}
		if r.CM == nil || r.CapGHz <= 0 {
			t.Fatalf("report %d: fallback not capped: %+v", i, r)
		}
	}
}

// The divergence witness for auto's objective: candidates are ranked by
// the EDP of the cap PolyUFC-SEARCH selects, not by predicted DRAM
// volume. On bicg at Bench size on BDW the two objectives disagree —
// the volume rule prefers one strategy, the cap-EDP rule another — and
// the compile pipeline must follow the EDP argmin: auto's report names
// the EDP winner and matches the best searched EDP over the concrete
// strategies.
func TestAutoSelectsByCapEDPNotDRAMVolume(t *testing.T) {
	const kernel = "bicg"
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0

	// Unit level: replicate stageTile's context with and without the
	// scorer; the winners must differ (otherwise the fix is untestable
	// on this input and the witness kernel must change).
	mod := buildModule(t, kernel, workloads.Bench)
	var nest *ir.Nest
	for _, f := range mod.Funcs {
		for _, op := range f.Ops {
			if n, ok := op.(*ir.Nest); ok && nest == nil {
				nest = n
			}
		}
	}
	if nest == nil {
		t.Fatalf("%s has no nest", kernel)
	}
	auto := tiling.MustNew(tiling.Spec{Name: tiling.NameAuto})
	tctx := tiling.Context{Cache: cfg.Platform().Cache, Threads: cfg.CM.Threads, Pluto: cfg.Pluto}
	_, volInfo, err := auto.Apply(nest, tctx)
	if err != nil {
		t.Fatal(err)
	}
	tctx.CapEDP = capEDPScorer(context.Background(), cfg)
	_, edpInfo, err := auto.Apply(nest, tctx)
	if err != nil {
		t.Fatal(err)
	}
	if volInfo.Strategy == edpInfo.Strategy {
		t.Fatalf("no divergence on %s: volume and cap-EDP rules both pick %s", kernel, volInfo.Strategy)
	}

	// Pipeline level: a full auto compile follows the EDP winner, and
	// its searched EDP is the minimum over the concrete strategies.
	cfgAuto := cfg
	cfgAuto.Tiling = tiling.Spec{Name: tiling.NameAuto}
	resAuto, err := CompileCtx(context.Background(), buildModule(t, kernel, workloads.Bench), cfgAuto)
	if err != nil {
		t.Fatal(err)
	}
	rep := resAuto.Reports[0]
	if rep.Tiling != edpInfo.Strategy {
		t.Fatalf("pipeline picked %s, want the cap-EDP winner %s", rep.Tiling, edpInfo.Strategy)
	}
	best := math.Inf(1)
	for _, name := range []string{tiling.NamePluto, tiling.NameCacheOblivious, tiling.NameLatency} {
		cfgC := cfg
		cfgC.Tiling = tiling.Spec{Name: name}
		resC, err := CompileCtx(context.Background(), buildModule(t, kernel, workloads.Bench), cfgC)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if edp := resC.Reports[0].Est.EDP; edp < best {
			best = edp
		}
	}
	if rep.Est.EDP > best*(1+1e-9) {
		t.Fatalf("auto's searched EDP %g exceeds the best concrete strategy's %g", rep.Est.EDP, best)
	}
}
