package core

import (
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/plantable"
	"polyufc/internal/workloads"
)

// planSetFor sweeps a plan table for the test target and wraps it in a
// serve-ready Set.
func planSetFor(t *testing.T, cfg Config) *plantable.Set {
	t.Helper()
	tb, err := plantable.Build(nil, cfg.Target, plantable.BuildOptions{Search: cfg.Search})
	if err != nil {
		t.Fatal(err)
	}
	set := plantable.NewSet()
	if err := set.Add(tb); err != nil {
		t.Fatal(err)
	}
	return set
}

// TestPlanLookupStagePresence: the plan-lookup stage exists exactly when
// a plan set is configured, so table-less pipelines keep their stage
// list (and memo key chain) bit-identical to previous releases.
func TestPlanLookupStagePresence(t *testing.T) {
	cfg := DefaultConfig(targetFor(t, hw.BDW()))
	for _, name := range StageNames(cfg) {
		if name == StagePlanLookup {
			t.Fatal("plan-lookup stage present without a plan set")
		}
	}
	cfg.Plans = plantable.NewSet()
	found := false
	for _, name := range StageNames(cfg) {
		if name == StagePlanLookup {
			found = true
		}
	}
	if !found {
		t.Fatal("plan-lookup stage missing with a plan set configured")
	}
}

// TestPlanLookupCompile is the end-to-end pipeline property: compiling
// with a plan table answers caps from the table (PlanHit, zero search
// evaluations) and lands within one cap-grid step of the live-search
// compile of the same module.
func TestPlanLookupCompile(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.AmortizeFactor = 0 // test-size kernels: keep cap insertion observable

	for _, kernel := range []string{"gemm", "mvt", "atax"} {
		t.Run(kernel, func(t *testing.T) {
			live := compileKernelCfg(t, kernel, workloads.Test, cfg)

			planned := cfg
			planned.Plans = planSetFor(t, cfg)
			got := compileKernelCfg(t, kernel, workloads.Test, planned)

			if len(got.Reports) != len(live.Reports) {
				t.Fatalf("report count changed: %d with table, %d live", len(got.Reports), len(live.Reports))
			}
			hits := 0
			for i, r := range got.Reports {
				base := live.Reports[i]
				if r.Label != base.Label {
					t.Fatalf("report %d label %q != live %q", i, r.Label, base.Label)
				}
				if !r.PlanHit {
					continue // honest fallback to live search
				}
				hits++
				if r.SearchEvals != 0 {
					t.Errorf("%s: plan hit ran %d live search evaluations", r.Label, r.SearchEvals)
				}
				di := hw.GridIndex(p.UncoreMin, p.UncoreMax, p.CapStep, r.CapGHz) -
					hw.GridIndex(p.UncoreMin, p.UncoreMax, p.CapStep, base.CapGHz)
				if di < -1 || di > 1 {
					t.Errorf("%s: table cap %.2f vs live %.2f — %d grid steps apart", r.Label, r.CapGHz, base.CapGHz, di)
				}
				if r.Class != base.Class {
					t.Errorf("%s: class %v with table, %v live", r.Label, r.Class, base.Class)
				}
			}
			if hits == 0 {
				t.Fatal("no report was answered from the plan table")
			}
		})
	}
}

// TestPlanLookupStaleSetFallsBack: a set whose only table is for another
// backend serves nothing — every nest falls back to live search and the
// compile result is unchanged.
func TestPlanLookupStaleSetFallsBack(t *testing.T) {
	cfg := DefaultConfig(targetFor(t, hw.BDW()))
	cfg.AmortizeFactor = 0
	live := compileKernelCfg(t, "gemm", workloads.Test, cfg)

	rplCfg := DefaultConfig(targetFor(t, hw.RPL()))
	planned := cfg
	planned.Plans = planSetFor(t, rplCfg)
	got := compileKernelCfg(t, "gemm", workloads.Test, planned)

	for i, r := range got.Reports {
		if r.PlanHit {
			t.Fatalf("%s: answered from a foreign backend's table", r.Label)
		}
		if r.CapGHz != live.Reports[i].CapGHz {
			t.Fatalf("%s: fallback cap %.2f differs from live %.2f", r.Label, r.CapGHz, live.Reports[i].CapGHz)
		}
	}
}
