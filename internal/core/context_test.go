package core

import (
	"context"
	"errors"
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/workloads"
)

// An already-cancelled context aborts CompileCtx before any stage runs.
func TestCompileCtxCancelledBeforeStart(t *testing.T) {
	p := hw.RPL()
	cfg := DefaultConfig(targetFor(t, p))
	k, err := workloads.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileCtx(ctx, mod, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Cancellation aborts even under BestEffort: it is a caller decision, not
// a stage fault to degrade around.
func TestCompileCtxCancellationBeatsBestEffort(t *testing.T) {
	p := hw.BDW()
	cfg := DefaultConfig(targetFor(t, p))
	cfg.Degrade = BestEffort
	k, err := workloads.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CompileCtx(ctx, mod, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled compile returned a degraded Result")
	}
}

// The Compile wrapper stays uncancellable and identical to CompileCtx with
// Background.
func TestCompileMatchesCompileCtxBackground(t *testing.T) {
	p := hw.RPL()
	cfg := DefaultConfig(targetFor(t, p))
	k, err := workloads.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := k.Build(workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileCtx(context.Background(), mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(a.Reports), len(b.Reports))
	}
	for i := range a.Reports {
		if a.Reports[i].CapGHz != b.Reports[i].CapGHz || a.Reports[i].OI != b.Reports[i].OI {
			t.Fatalf("report %d differs: %+v vs %+v", i, a.Reports[i], b.Reports[i])
		}
	}
}
