package workloads

import (
	"testing"

	"polyufc/internal/ir"
	"polyufc/internal/pluto"
)

func TestRegistryComplete(t *testing.T) {
	pb := PolyBench()
	if len(pb) < 22 {
		t.Fatalf("polybench kernels = %d, want >= 22 (paper Sec. VII-D)", len(pb))
	}
	ml := ML()
	if len(ml) != 7 {
		t.Fatalf("ml kernels = %d, want 7 (Tab. II)", len(ml))
	}
	for _, k := range All() {
		if k.PaperSize == "" {
			t.Fatalf("%s missing paper size", k.Name)
		}
		if k.Category == "" {
			t.Fatalf("%s missing category", k.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("gemm"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("expected error")
	}
}

func TestAllKernelsBuildAndLowerAtTestSize(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			mod, err := k.BuildAffine(Test)
			if err != nil {
				t.Fatal(err)
			}
			nests := 0
			for _, f := range mod.Funcs {
				for _, op := range f.Ops {
					nest, ok := op.(*ir.Nest)
					if !ok {
						t.Fatalf("non-affine op %s after lowering", op.OpName())
					}
					nests++
					fl, err := nest.Flops()
					if err != nil {
						t.Fatalf("flops: %v", err)
					}
					if fl < 0 {
						t.Fatalf("negative flops")
					}
					tc, err := nest.TripCount()
					if err != nil || tc <= 0 {
						t.Fatalf("trip count %d (%v)", tc, err)
					}
				}
			}
			if nests == 0 {
				t.Fatal("no nests")
			}
		})
	}
}

func TestAllKernelsSurvivePluto(t *testing.T) {
	tiledCount := 0
	for _, k := range All() {
		mod, err := k.BuildAffine(Test)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, f := range mod.Funcs {
			for _, op := range f.Ops {
				nest := op.(*ir.Nest)
				res, err := pluto.Optimize(nest, pluto.DefaultOptions())
				if err != nil {
					t.Fatalf("%s/%s: %v", k.Name, nest.Label, err)
				}
				if res.Tiled {
					tiledCount++
					// Trip counts must be preserved by tiling.
					orig, err1 := nest.TripCount()
					got, err2 := res.Nest.TripCount()
					if err1 != nil || err2 != nil || orig != got {
						t.Fatalf("%s/%s: tiling changed trip count %d -> %d (%v %v)",
							k.Name, nest.Label, orig, got, err1, err2)
					}
				}
			}
		}
	}
	if tiledCount < 10 {
		t.Fatalf("only %d nests tiled across the suite", tiledCount)
	}
}

func TestGemmDimensionsScale(t *testing.T) {
	modT, err := ByNameMust("gemm").Build(Test)
	if err != nil {
		t.Fatal(err)
	}
	modB, err := ByNameMust("gemm").Build(Bench)
	if err != nil {
		t.Fatal(err)
	}
	ft, _ := modT.Funcs[0].Ops[1].(*ir.Nest).Flops()
	fb, _ := modB.Funcs[0].Ops[1].(*ir.Nest).Flops()
	if fb <= ft {
		t.Fatal("bench size must exceed test size")
	}
}

// ByNameMust is a test helper.
func ByNameMust(name string) Kernel {
	k, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return k
}

func TestStencilNotTiledMatmulTiled(t *testing.T) {
	// jacobi-1d has (+,-) dependences: not rectangular-tilable.
	jac, err := ByNameMust("jacobi-1d").BuildAffine(Test)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pluto.Optimize(jac.Funcs[0].Ops[0].(*ir.Nest), pluto.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiled {
		t.Fatal("jacobi-1d time loop must not be rectangularly tiled")
	}
	// gemm update is tiled.
	g, err := ByNameMust("gemm").BuildAffine(Test)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pluto.Optimize(g.Funcs[0].Ops[1].(*ir.Nest), pluto.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Tiled {
		t.Fatal("gemm must be tiled")
	}
}

func TestSDPAStructure(t *testing.T) {
	mod, err := ByNameMust("sdpa-bert").Build(Bench)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Funcs[0].Ops) != 1 {
		t.Fatal("sdpa at torch level must be one op")
	}
	low, err := ByNameMust("sdpa-bert").BuildAffine(Bench)
	if err != nil {
		t.Fatal(err)
	}
	if len(low.Funcs[0].Ops) != 9 {
		t.Fatalf("sdpa lowered to %d nests, want 9", len(low.Funcs[0].Ops))
	}
}
