package workloads

import (
	"fmt"

	"polyufc/internal/ir"
)

// ML kernels of Table II, built at the torch dialect so the full
// torch -> linalg -> affine lowering is exercised. Bench sizes scale the
// heaviest shapes down so the exact cache simulation stays tractable;
// Full uses the paper's shapes.

const f32 = 4

func init() {
	registerConv2D()
	registerSDPA()
	registerLMHead()
}

// conv2dModule builds input/filter/output arrays and the torch op.
func conv2dModule(name string, n, c, h, w, f, kh, kw, stride int64) (*ir.Module, error) {
	if (h-kh)%stride != 0 || (w-kw)%stride != 0 {
		return nil, fmt.Errorf("workloads: conv shape %s not stride-aligned", name)
	}
	oh := (h-kh)/stride + 1
	ow := (w-kw)/stride + 1
	in := ir.NewArray("input", f32, n, c, h, w)
	flt := ir.NewArray("filter", f32, f, c, kh, kw)
	out := ir.NewArray("output", f32, n, f, oh, ow)
	return mkModule(name, ir.NewTorchConv2D(in, flt, out, stride, stride)), nil
}

func registerConv2D() {
	register(Kernel{
		Name: "conv2d-alexnet", Suite: "ml", Category: "vision",
		PaperSize: "1x3x224x224; 64x3x11x11 stride 4",
		Build: func(s SizeClass) (*ir.Module, error) {
			switch s {
			case Test:
				return conv2dModule("conv2d-alexnet", 1, 3, 59, 59, 16, 11, 11, 4)
			case Bench:
				return conv2dModule("conv2d-alexnet", 1, 3, 223, 223, 32, 11, 11, 4)
			default:
				return conv2dModule("conv2d-alexnet", 1, 3, 223, 223, 64, 11, 11, 4)
			}
		},
	})
	register(Kernel{
		Name: "conv2d-convnext", Suite: "ml", Category: "vision",
		PaperSize: "1x384x28x28; 768x384x2x2 stride 2",
		Build: func(s SizeClass) (*ir.Module, error) {
			switch s {
			case Test:
				return conv2dModule("conv2d-convnext", 1, 48, 14, 14, 96, 2, 2, 2)
			case Bench:
				return conv2dModule("conv2d-convnext", 1, 192, 28, 28, 384, 2, 2, 2)
			default:
				return conv2dModule("conv2d-convnext", 1, 384, 28, 28, 768, 2, 2, 2)
			}
		},
	})
	register(Kernel{
		Name: "conv2d-wideresnet", Suite: "ml", Category: "vision",
		PaperSize: "64x1024x7x7; 2048x1024x1x1",
		Build: func(s SizeClass) (*ir.Module, error) {
			switch s {
			case Test:
				return conv2dModule("conv2d-wideresnet", 2, 64, 7, 7, 128, 1, 1, 1)
			case Bench:
				return conv2dModule("conv2d-wideresnet", 8, 256, 7, 7, 512, 1, 1, 1)
			default:
				return conv2dModule("conv2d-wideresnet", 64, 1024, 7, 7, 2048, 1, 1, 1)
			}
		},
	})
}

func sdpaModule(name string, b, h, s, d int64) (*ir.Module, error) {
	q := ir.NewArray("Q", f32, b, h, s, d)
	k := ir.NewArray("K", f32, b, h, s, d)
	vv := ir.NewArray("V", f32, b, h, s, d)
	o := ir.NewArray("O", f32, b, h, s, d)
	return mkModule(name, ir.NewTorchSDPA(q, k, vv, o)), nil
}

func registerSDPA() {
	register(Kernel{
		Name: "sdpa-bert", Suite: "ml", Category: "nlp",
		PaperSize: "2x12x128x64",
		Build: func(s SizeClass) (*ir.Module, error) {
			if s == Test {
				return sdpaModule("sdpa-bert", 1, 4, 32, 16)
			}
			return sdpaModule("sdpa-bert", 2, 12, 128, 64)
		},
	})
	register(Kernel{
		Name: "sdpa-gemma2", Suite: "ml", Category: "nlp",
		PaperSize: "1x16x7x256",
		Build: func(s SizeClass) (*ir.Module, error) {
			if s == Test {
				return sdpaModule("sdpa-gemma2", 1, 4, 7, 32)
			}
			return sdpaModule("sdpa-gemma2", 1, 16, 7, 256)
		},
	})
}

func lmHeadModule(name string, m, k, n int64) (*ir.Module, error) {
	a := ir.NewArray("hidden", f32, m, k)
	b := ir.NewArray("wte", f32, k, n)
	c := ir.NewArray("logits", f32, m, n)
	return mkModule(name, ir.NewTorchMatMul(a, b, c)), nil
}

func registerLMHead() {
	register(Kernel{
		Name: "lm-head-gpt2", Suite: "ml", Category: "nlp",
		PaperSize: "4x768x50257",
		Build: func(s SizeClass) (*ir.Module, error) {
			switch s {
			case Test:
				return lmHeadModule("lm-head-gpt2", 4, 96, 1024)
			case Bench:
				return lmHeadModule("lm-head-gpt2", 4, 768, 12568)
			default:
				return lmHeadModule("lm-head-gpt2", 4, 768, 50257)
			}
		},
	})
	register(Kernel{
		Name: "lm-head-llama2", Suite: "ml", Category: "nlp",
		PaperSize: "13x4096x32000",
		Build: func(s SizeClass) (*ir.Module, error) {
			switch s {
			case Test:
				return lmHeadModule("lm-head-llama2", 13, 128, 1000)
			case Bench:
				return lmHeadModule("lm-head-llama2", 13, 1024, 8000)
			default:
				return lmHeadModule("lm-head-llama2", 13, 4096, 32000)
			}
		},
	})
}
