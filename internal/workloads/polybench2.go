package workloads

import (
	"polyufc/internal/ir"
)

// The remaining PolyBench 4.2 kernels: symm, fdtd-2d, heat-3d, seidel-2d,
// floyd-warshall, ludcmp and nussinov, completing the 30-kernel suite.

func init() {
	registerSymm()
	registerFdtd2D()
	registerHeat3D()
	registerSeidel2D()
	registerFloydWarshall()
	registerLudcmp()
	registerNussinov()
}

func registerSymm() {
	register(Kernel{
		Name: "symm", Suite: "polybench", Category: "blas",
		PaperSize: "M=1000 N=1200 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			B := ir.NewArray("B", f64, n, n)
			C := ir.NewArray("C", f64, n, n)
			tmp := ir.NewArray("temp2", f64, n, n)
			// Lower-triangular accumulation: C[k][j] += alpha*B[i][j]*A[i][k]
			// and temp2[i][j] += B[k][j]*A[i][k], for k < i.
			st := stmt("S_symm_tri", 4,
				rd(B, v("i"), v("j")), rd(A, v("i"), v("k")),
				rd(C, v("k"), v("j")), wr(C, v("k"), v("j")),
				rd(B, v("k"), v("j")),
				rd(tmp, v("i"), v("j")), wr(tmp, v("i"), v("j")))
			kl := ir.SimpleLoop("k", ir.AffConst(0), v("i").AddConst(-1), st)
			jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(n-1), kl)
			il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
			fin := rectNest("symm_final", []string{"i", "j"}, []int64{n, n},
				stmt("S_symm_fin", 4,
					rd(C, v("i"), v("j")), rd(B, v("i"), v("j")),
					rd(A, v("i"), v("i")), rd(tmp, v("i"), v("j")),
					wr(C, v("i"), v("j"))))
			return mkModule("symm", &ir.Nest{Label: "symm_tri", Root: il}, fin), nil
		},
	})
}

func registerFdtd2D() {
	register(Kernel{
		Name: "fdtd-2d", Suite: "polybench", Category: "stencils",
		PaperSize: "NX=1000 NY=1200 T=500 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			nx := pick(s, 48, 1000, 2000)
			ny := pick(s, 56, 1200, 2600)
			tsteps := pick(s, 3, 16, 100)
			ex := ir.NewArray("ex", f64, nx, ny)
			ey := ir.NewArray("ey", f64, nx, ny)
			hz := ir.NewArray("hz", f64, nx, ny)
			sEy := stmt("S_ey", 2,
				rd(ey, v("i"), v("j")),
				rd(hz, v("i"), v("j")), rd(hz, v("i").AddConst(-1), v("j")),
				wr(ey, v("i"), v("j")))
			jlE := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(ny-1), sEy)
			ilE := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(nx-1), jlE)
			sEx := stmt("S_ex", 2,
				rd(ex, v("i"), v("j")),
				rd(hz, v("i"), v("j")), rd(hz, v("i"), v("j").AddConst(-1)),
				wr(ex, v("i"), v("j")))
			jlX := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(ny-1), sEx)
			ilX := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(nx-1), jlX)
			sHz := stmt("S_hz", 4,
				rd(hz, v("i"), v("j")),
				rd(ex, v("i"), v("j").AddConst(1)), rd(ex, v("i"), v("j")),
				rd(ey, v("i").AddConst(1), v("j")), rd(ey, v("i"), v("j")),
				wr(hz, v("i"), v("j")))
			jlH := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(ny-2), sHz)
			ilH := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(nx-2), jlH)
			tl := &ir.Loop{IV: "t",
				Lo:   []ir.Bound{ir.BExpr(ir.AffConst(0))},
				Hi:   []ir.Bound{ir.BExpr(ir.AffConst(tsteps - 1))},
				Body: []ir.Node{ilE, ilX, ilH}}
			return mkModule("fdtd-2d", &ir.Nest{Label: "fdtd2d", Root: tl}), nil
		},
	})
}

func registerHeat3D() {
	register(Kernel{
		Name: "heat-3d", Suite: "polybench", Category: "stencils",
		PaperSize: "N=120 T=500 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := pick(s, 16, 90, 120)
			tsteps := pick(s, 2, 10, 100)
			A := ir.NewArray("A", f64, n, n, n)
			B := ir.NewArray("B", f64, n, n, n)
			sweep := func(name string, src, dst *ir.Array) *ir.Loop {
				st := stmt(name, 10,
					rd(src, v("i"), v("j"), v("k")),
					rd(src, v("i").AddConst(-1), v("j"), v("k")),
					rd(src, v("i").AddConst(1), v("j"), v("k")),
					rd(src, v("i"), v("j").AddConst(-1), v("k")),
					rd(src, v("i"), v("j").AddConst(1), v("k")),
					rd(src, v("i"), v("j"), v("k").AddConst(-1)),
					rd(src, v("i"), v("j"), v("k").AddConst(1)),
					wr(dst, v("i"), v("j"), v("k")))
				kl := ir.SimpleLoop("k", ir.AffConst(1), ir.AffConst(n-2), st)
				jl := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(n-2), kl)
				return ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-2), jl)
			}
			tl := &ir.Loop{IV: "t",
				Lo:   []ir.Bound{ir.BExpr(ir.AffConst(0))},
				Hi:   []ir.Bound{ir.BExpr(ir.AffConst(tsteps - 1))},
				Body: []ir.Node{sweep("S_ab", A, B), sweep("S_ba", B, A)}}
			return mkModule("heat-3d", &ir.Nest{Label: "heat3d", Root: tl}), nil
		},
	})
}

func registerSeidel2D() {
	register(Kernel{
		Name: "seidel-2d", Suite: "polybench", Category: "stencils",
		PaperSize: "N=2000 T=500 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := pick(s, 64, 1500, 4000)
			tsteps := pick(s, 3, 10, 100)
			A := ir.NewArray("A", f64, n, n)
			st := stmt("S_seidel", 9,
				rd(A, v("i").AddConst(-1), v("j").AddConst(-1)),
				rd(A, v("i").AddConst(-1), v("j")),
				rd(A, v("i").AddConst(-1), v("j").AddConst(1)),
				rd(A, v("i"), v("j").AddConst(-1)),
				rd(A, v("i"), v("j")),
				rd(A, v("i"), v("j").AddConst(1)),
				rd(A, v("i").AddConst(1), v("j").AddConst(-1)),
				rd(A, v("i").AddConst(1), v("j")),
				rd(A, v("i").AddConst(1), v("j").AddConst(1)),
				wr(A, v("i"), v("j")))
			jl := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(n-2), st)
			il := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-2), jl)
			tl := ir.SimpleLoop("t", ir.AffConst(0), ir.AffConst(tsteps-1), il)
			return mkModule("seidel-2d", &ir.Nest{Label: "seidel2d", Root: tl}), nil
		},
	})
}

func registerFloydWarshall() {
	register(Kernel{
		Name: "floyd-warshall", Suite: "polybench", Category: "medley",
		PaperSize: "N=2800 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := pick(s, 40, 300, 1000)
			path := ir.NewArray("path", f64, n, n)
			st := stmt("S_fw", 2,
				rd(path, v("i"), v("j")),
				rd(path, v("i"), v("k")), rd(path, v("k"), v("j")),
				wr(path, v("i"), v("j")))
			jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(n-1), st)
			il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
			kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(n-1), il)
			return mkModule("floyd-warshall", &ir.Nest{Label: "floyd", Root: kl}), nil
		},
	})
}

func registerLudcmp() {
	register(Kernel{
		Name: "ludcmp", Suite: "polybench", Category: "solvers",
		PaperSize: "N=2000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			b := ir.NewArray("b", f64, n)
			x := ir.NewArray("x", f64, n)
			y := ir.NewArray("y", f64, n)
			// LU factorization (as in the lu kernel).
			stL := stmt("S_lud_low", 2,
				rd(A, v("i"), v("k")), rd(A, v("k"), v("j")),
				rd(A, v("i"), v("j")), wr(A, v("i"), v("j")))
			klL := ir.SimpleLoop("k", ir.AffConst(0), v("j").AddConst(-1), stL)
			jlL := ir.SimpleLoop("j", ir.AffConst(0), v("i").AddConst(-1), klL)
			ilL := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jlL)
			stU := stmt("S_lud_up", 2,
				rd(A, v("i"), v("k")), rd(A, v("k"), v("j")),
				rd(A, v("i"), v("j")), wr(A, v("i"), v("j")))
			klU := ir.SimpleLoop("k", ir.AffConst(0), v("i").AddConst(-1), stU)
			jlU := ir.SimpleLoop("j", v("i"), ir.AffConst(n-1), klU)
			ilU := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jlU)
			// Forward substitution: y[i] = b[i] - sum_{j<i} A[i][j]*y[j].
			fwd := triNestLE("ludcmp_fwd", "i", n, "j",
				stmt("S_fwd", 2, rd(A, v("i"), v("j")), rd(y, v("j")),
					rd(b, v("i")), rd(y, v("i")), wr(y, v("i"))))
			// Backward substitution encoded with reversed affine indices:
			// x[n-1-i] uses rows below it.
			bwd := triNestLE("ludcmp_bwd", "i", n, "j",
				stmt("S_bwd", 2,
					rd(A, ir.AffConst(n-1).Add(v("i").Scale(-1)), ir.AffConst(n-1).Add(v("j").Scale(-1))),
					rd(x, ir.AffConst(n-1).Add(v("j").Scale(-1))),
					rd(y, ir.AffConst(n-1).Add(v("i").Scale(-1))),
					wr(x, ir.AffConst(n-1).Add(v("i").Scale(-1)))))
			return mkModule("ludcmp",
				&ir.Nest{Label: "ludcmp_lower", Root: ilL},
				&ir.Nest{Label: "ludcmp_upper", Root: ilU},
				fwd, bwd), nil
		},
	})
}

func registerNussinov() {
	register(Kernel{
		Name: "nussinov", Suite: "polybench", Category: "medley",
		PaperSize: "N=2500 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := pick(s, 32, 280, 800)
			table := ir.NewArray("table", f64, n, n)
			seq := ir.NewArray("seq", f64, n)
			// RNA folding DP over the upper triangle, with the outer loop
			// running in reverse encoded as i' -> N-1-i':
			// table[i][j] = max over k in (i, j) of table[i][k]+table[k+1][j].
			ri := ir.AffConst(n - 1).Add(v("ip").Scale(-1)) // i = N-1-ip
			st := stmt("S_nuss", 2,
				rd(table, ri, v("k")),
				rd(table, v("k").AddConst(1), v("j")),
				rd(table, ri, v("j")), wr(table, ri, v("j")))
			// k in [i+1, j-1] -> k >= N-ip, k <= j-1.
			kl := &ir.Loop{IV: "k",
				Lo:   []ir.Bound{ir.BExpr(ir.AffConst(n).Add(v("ip").Scale(-1)))},
				Hi:   []ir.Bound{ir.BExpr(v("j").AddConst(-1))},
				Body: []ir.Node{st}}
			// j in [i+1, N-1] -> j >= N-ip.
			base := stmt("S_nuss_base", 2,
				rd(table, ri, v("j").AddConst(-1)),
				rd(seq, ri), rd(seq, v("j")),
				rd(table, ri, v("j")), wr(table, ri, v("j")))
			jl := &ir.Loop{IV: "j",
				Lo:   []ir.Bound{ir.BExpr(ir.AffConst(n).Add(v("ip").Scale(-1)))},
				Hi:   []ir.Bound{ir.BExpr(ir.AffConst(n - 1))},
				Body: []ir.Node{base, kl}}
			il := ir.SimpleLoop("ip", ir.AffConst(0), ir.AffConst(n-1), jl)
			return mkModule("nussinov", &ir.Nest{Label: "nussinov", Root: il}), nil
		},
	})
}
