// Package workloads defines the evaluation kernels of the paper's Table
// II: the PolyBench suite (encoded directly as affine nests — the loop and
// access structure is what the polyhedral analyses and the cache simulator
// consume) and the ML kernels (conv2d, sdpa, lm-head matmul) built at the
// torch dialect and lowered through the full flow.
package workloads

import (
	"fmt"
	"sort"

	"polyufc/internal/ir"
	"polyufc/internal/lower"
)

// SizeClass selects problem sizes: Test for unit tests, Bench for the
// default benchmark harness (simulation-scale), Full for paper-faithful
// shapes (slow; opt-in).
type SizeClass int

// Size classes.
const (
	Test SizeClass = iota
	Bench
	Full
)

func (s SizeClass) String() string {
	switch s {
	case Test:
		return "test"
	case Bench:
		return "bench"
	case Full:
		return "full"
	}
	return "size?"
}

// Kernel is one registered workload.
type Kernel struct {
	Name     string
	Suite    string // "polybench" or "ml"
	Category string // blas, kernels, solvers, stencils, datamining, medley, vision, nlp
	// PaperSize documents the problem size the paper evaluates (Tab. II /
	// PolyBench LARGE).
	PaperSize string
	// Hidden kernels are variants for specific studies (e.g. power-of-two
	// sizes for the Fig. 8 conflict analysis); they are reachable by name
	// but excluded from All().
	Hidden bool
	// Build constructs the kernel module at the given size class. ML
	// kernels are built at the torch dialect; PolyBench at affine.
	Build func(SizeClass) (*ir.Module, error)
}

var registry = map[string]Kernel{}

func register(k Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("workloads: duplicate kernel " + k.Name)
	}
	registry[k.Name] = k
}

// All returns every registered non-hidden kernel, sorted by suite then
// name.
func All() []Kernel {
	out := make([]Kernel, 0, len(registry))
	for _, k := range registry {
		if k.Hidden {
			continue
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PolyBench returns the PolyBench kernels only.
func PolyBench() []Kernel {
	var out []Kernel
	for _, k := range All() {
		if k.Suite == "polybench" {
			out = append(out, k)
		}
	}
	return out
}

// ML returns the vision/NLP kernels of Table II.
func ML() []Kernel {
	var out []Kernel
	for _, k := range All() {
		if k.Suite == "ml" {
			out = append(out, k)
		}
	}
	return out
}

// ByName returns the named kernel.
func ByName(name string) (Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return Kernel{}, fmt.Errorf("workloads: unknown kernel %q", name)
	}
	return k, nil
}

// BuildAffine builds the kernel and lowers it all the way to affine nests.
func (k Kernel) BuildAffine(size SizeClass) (*ir.Module, error) {
	mod, err := k.Build(size)
	if err != nil {
		return nil, err
	}
	if err := lower.TorchToLinalg(mod); err != nil {
		return nil, err
	}
	if err := lower.LinalgToAffine(mod); err != nil {
		return nil, err
	}
	return mod, nil
}

// --- construction helpers -------------------------------------------------

const f64 = 8

// stmt builds a statement.
func stmt(name string, flops int64, accs ...ir.Access) *ir.Statement {
	return &ir.Statement{Name: name, Flops: flops, Accesses: accs}
}

// rd and wr build accesses.
func rd(a *ir.Array, idx ...ir.AffExpr) ir.Access {
	return ir.Access{Array: a, Index: idx}
}

func wr(a *ir.Array, idx ...ir.AffExpr) ir.Access {
	return ir.Access{Array: a, Write: true, Index: idx}
}

// rectNest builds a rectangular perfect nest over [0, n_i) per IV.
func rectNest(label string, ivs []string, extents []int64, s *ir.Statement) *ir.Nest {
	var root, cur *ir.Loop
	for i, iv := range ivs {
		l := ir.SimpleLoop(iv, ir.AffConst(0), ir.AffConst(extents[i]-1))
		if cur == nil {
			root = l
		} else {
			cur.Body = append(cur.Body, l)
		}
		cur = l
	}
	cur.Body = append(cur.Body, s)
	return &ir.Nest{Label: label, Root: root}
}

// triNestLE builds a nest where the last IV ranges over [0, prev] (lower
// triangle, j <= i).
func triNestLE(label string, outerIV string, n int64, innerIV string, s *ir.Statement) *ir.Nest {
	inner := ir.SimpleLoop(innerIV, ir.AffConst(0), ir.AffVar(outerIV), s)
	outer := ir.SimpleLoop(outerIV, ir.AffConst(0), ir.AffConst(n-1), inner)
	return &ir.Nest{Label: label, Root: outer}
}

// v is shorthand for an IV expression.
func v(iv string) ir.AffExpr { return ir.AffVar(iv) }

// mkModule wraps nests into a module/function.
func mkModule(name string, ops ...ir.Op) *ir.Module {
	mod, f := ir.NewModule(name)
	f.Ops = ops
	return mod
}
