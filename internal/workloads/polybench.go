package workloads

import (
	"fmt"

	"polyufc/internal/ir"
)

// The PolyBench kernels are encoded as affine loop nests with faithful
// iteration-domain and access structure (the inputs every analysis in this
// repository consumes); arithmetic is abstracted to per-statement flop
// counts, as in the paper's unitary cost model (footnote 13). Problem
// sizes: Test for unit tests, Bench for simulation-scale evaluation, Full
// approaching PolyBench LARGE.

func pick(s SizeClass, test, bench, full int64) int64 {
	switch s {
	case Test:
		return test
	case Full:
		return full
	default:
		return bench
	}
}

// cubicN is the size for O(n^3) kernels; chosen so Bench-size kernels stay
// compute-bound on both platforms (OI ~ n/12 FpB must exceed the RPL time
// balance).
func cubicN(s SizeClass) int64 { return pick(s, 40, 360, 1200) }

// quadN is the size for O(n^2) kernels; Bench-size arrays exceed both LLCs
// so streaming kernels stay bandwidth-bound.
func quadN(s SizeClass) int64 { return pick(s, 128, 2000, 4000) }

func init() {
	registerBlas()
	registerKernels()
	registerSolvers()
	registerStencils()
	registerDatamining()
	registerMedley()
	registerPow2Variants()
}

// registerPow2Variants adds hidden power-of-two-size variants of gemm and
// 2mm for the Fig. 8 set-associativity study: 2^k strides alias cache
// sets, so the set-associative and fully-associative models diverge.
func registerPow2Variants() {
	pow2N := func(s SizeClass) int64 { return pick(s, 64, 512, 2048) }
	mk := func(base string) func(SizeClass) (*ir.Module, error) {
		return func(s SizeClass) (*ir.Module, error) {
			n := pow2N(s)
			switch base {
			case "gemm":
				A := ir.NewArray("A", f64, n, n)
				B := ir.NewArray("B", f64, n, n)
				C := ir.NewArray("C", f64, n, n)
				scale := rectNest("gemm_scale", []string{"i", "j"}, []int64{n, n},
					stmt("S_scale", 1, rd(C, v("i"), v("j")), wr(C, v("i"), v("j"))))
				upd := rectNest("gemm_update", []string{"i", "j", "k"}, []int64{n, n, n},
					stmt("S_upd", 3,
						rd(A, v("i"), v("k")), rd(B, v("k"), v("j")),
						rd(C, v("i"), v("j")), wr(C, v("i"), v("j"))))
				return mkModule("gemm-pow2", scale, upd), nil
			case "2mm":
				A := ir.NewArray("A", f64, n, n)
				B := ir.NewArray("B", f64, n, n)
				C := ir.NewArray("C", f64, n, n)
				D := ir.NewArray("D", f64, n, n)
				tmp := ir.NewArray("tmp", f64, n, n)
				mm1 := rectNest("2mm_mm1", []string{"i", "j", "k"}, []int64{n, n, n},
					stmt("S_mm1", 3,
						rd(A, v("i"), v("k")), rd(B, v("k"), v("j")),
						rd(tmp, v("i"), v("j")), wr(tmp, v("i"), v("j"))))
				mm2 := rectNest("2mm_mm2", []string{"i", "j", "k"}, []int64{n, n, n},
					stmt("S_mm2", 2,
						rd(tmp, v("i"), v("k")), rd(C, v("k"), v("j")),
						rd(D, v("i"), v("j")), wr(D, v("i"), v("j"))))
				return mkModule("2mm-pow2", mm1, mm2), nil
			}
			return nil, fmt.Errorf("workloads: no pow2 variant for %s", base)
		}
	}
	register(Kernel{
		Name: "gemm-pow2", Suite: "polybench", Category: "blas", Hidden: true,
		PaperSize: "N=2^k (Fig. 8 conflict study)", Build: mk("gemm"),
	})
	register(Kernel{
		Name: "2mm-pow2", Suite: "polybench", Category: "blas", Hidden: true,
		PaperSize: "N=2^k (Fig. 8 conflict study)", Build: mk("2mm"),
	})
}

// --- linear-algebra/blas ---------------------------------------------------

func registerBlas() {
	register(Kernel{
		Name: "gemm", Suite: "polybench", Category: "blas",
		PaperSize: "NI=NJ=NK=2000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			B := ir.NewArray("B", f64, n, n)
			C := ir.NewArray("C", f64, n, n)
			scale := rectNest("gemm_scale", []string{"i", "j"}, []int64{n, n},
				stmt("S_scale", 1, rd(C, v("i"), v("j")), wr(C, v("i"), v("j"))))
			upd := rectNest("gemm_update", []string{"i", "j", "k"}, []int64{n, n, n},
				stmt("S_upd", 3,
					rd(A, v("i"), v("k")), rd(B, v("k"), v("j")),
					rd(C, v("i"), v("j")), wr(C, v("i"), v("j"))))
			return mkModule("gemm", scale, upd), nil
		},
	})

	register(Kernel{
		Name: "2mm", Suite: "polybench", Category: "blas",
		PaperSize: "NI=NJ=NK=NL=2000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			B := ir.NewArray("B", f64, n, n)
			C := ir.NewArray("C", f64, n, n)
			D := ir.NewArray("D", f64, n, n)
			tmp := ir.NewArray("tmp", f64, n, n)
			fill := rectNest("2mm_fill", []string{"i", "j"}, []int64{n, n},
				stmt("S_fill", 0, wr(tmp, v("i"), v("j"))))
			mm1 := rectNest("2mm_mm1", []string{"i", "j", "k"}, []int64{n, n, n},
				stmt("S_mm1", 3,
					rd(A, v("i"), v("k")), rd(B, v("k"), v("j")),
					rd(tmp, v("i"), v("j")), wr(tmp, v("i"), v("j"))))
			scale := rectNest("2mm_scale", []string{"i", "j"}, []int64{n, n},
				stmt("S_scale", 1, rd(D, v("i"), v("j")), wr(D, v("i"), v("j"))))
			mm2 := rectNest("2mm_mm2", []string{"i", "j", "k"}, []int64{n, n, n},
				stmt("S_mm2", 2,
					rd(tmp, v("i"), v("k")), rd(C, v("k"), v("j")),
					rd(D, v("i"), v("j")), wr(D, v("i"), v("j"))))
			return mkModule("2mm", fill, mm1, scale, mm2), nil
		},
	})

	register(Kernel{
		Name: "3mm", Suite: "polybench", Category: "blas",
		PaperSize: "NI..NM=2000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			B := ir.NewArray("B", f64, n, n)
			C := ir.NewArray("C", f64, n, n)
			D := ir.NewArray("D", f64, n, n)
			E := ir.NewArray("E", f64, n, n)
			F := ir.NewArray("F", f64, n, n)
			G := ir.NewArray("G", f64, n, n)
			mm := func(label string, x, y, out *ir.Array) *ir.Nest {
				return rectNest(label, []string{"i", "j", "k"}, []int64{n, n, n},
					stmt("S_"+label, 2,
						rd(x, v("i"), v("k")), rd(y, v("k"), v("j")),
						rd(out, v("i"), v("j")), wr(out, v("i"), v("j"))))
			}
			return mkModule("3mm",
				mm("3mm_EAB", A, B, E), mm("3mm_FCD", C, D, F), mm("3mm_GEF", E, F, G)), nil
		},
	})

	register(Kernel{
		Name: "syrk", Suite: "polybench", Category: "blas",
		PaperSize: "N=1200 M=1000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			C := ir.NewArray("C", f64, n, n)
			// C[i][j] += alpha*A[i][k]*A[j][k], j <= i.
			st := stmt("S_syrk", 3,
				rd(A, v("i"), v("k")), rd(A, v("j"), v("k")),
				rd(C, v("i"), v("j")), wr(C, v("i"), v("j")))
			kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(n-1), st)
			jl := ir.SimpleLoop("j", ir.AffConst(0), v("i"), kl)
			il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
			return mkModule("syrk", &ir.Nest{Label: "syrk", Root: il}), nil
		},
	})

	register(Kernel{
		Name: "syr2k", Suite: "polybench", Category: "blas",
		PaperSize: "N=1200 M=1000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			B := ir.NewArray("B", f64, n, n)
			C := ir.NewArray("C", f64, n, n)
			st := stmt("S_syr2k", 5,
				rd(A, v("i"), v("k")), rd(B, v("j"), v("k")),
				rd(A, v("j"), v("k")), rd(B, v("i"), v("k")),
				rd(C, v("i"), v("j")), wr(C, v("i"), v("j")))
			kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(n-1), st)
			jl := ir.SimpleLoop("j", ir.AffConst(0), v("i"), kl)
			il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
			return mkModule("syr2k", &ir.Nest{Label: "syr2k", Root: il}), nil
		},
	})

	register(Kernel{
		Name: "trmm", Suite: "polybench", Category: "blas",
		PaperSize: "M=1000 N=1200 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			B := ir.NewArray("B", f64, n, n)
			// B[i][j] += A[k][i]*B[k][j], k > i: a triangular matmul whose
			// anti-dependence on B blocks rectangular tiling.
			st := stmt("S_trmm", 2,
				rd(A, v("k"), v("i")), rd(B, v("k"), v("j")),
				rd(B, v("i"), v("j")), wr(B, v("i"), v("j")))
			kl := ir.SimpleLoop("k", v("i").AddConst(1), ir.AffConst(n-1), st)
			jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(n-1), kl)
			il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
			return mkModule("trmm", &ir.Nest{Label: "trmm", Root: il}), nil
		},
	})

	register(Kernel{
		Name: "gemver", Suite: "polybench", Category: "blas",
		PaperSize: "N=4000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := quadN(s)
			A := ir.NewArray("A", f64, n, n)
			u1 := ir.NewArray("u1", f64, n)
			v1 := ir.NewArray("v1", f64, n)
			u2 := ir.NewArray("u2", f64, n)
			v2 := ir.NewArray("v2", f64, n)
			x := ir.NewArray("x", f64, n)
			y := ir.NewArray("y", f64, n)
			z := ir.NewArray("z", f64, n)
			w := ir.NewArray("w", f64, n)
			up := rectNest("gemver_A", []string{"i", "j"}, []int64{n, n},
				stmt("S_A", 4,
					rd(A, v("i"), v("j")), rd(u1, v("i")), rd(v1, v("j")),
					rd(u2, v("i")), rd(v2, v("j")), wr(A, v("i"), v("j"))))
			xt := rectNest("gemver_x", []string{"i", "j"}, []int64{n, n},
				stmt("S_x", 3,
					rd(A, v("j"), v("i")), rd(y, v("j")),
					rd(x, v("i")), wr(x, v("i"))))
			xz := rectNest("gemver_xz", []string{"i"}, []int64{n},
				stmt("S_xz", 1, rd(x, v("i")), rd(z, v("i")), wr(x, v("i"))))
			wv := rectNest("gemver_w", []string{"i", "j"}, []int64{n, n},
				stmt("S_w", 3,
					rd(A, v("i"), v("j")), rd(x, v("j")),
					rd(w, v("i")), wr(w, v("i"))))
			return mkModule("gemver", up, xt, xz, wv), nil
		},
	})

	register(Kernel{
		Name: "gesummv", Suite: "polybench", Category: "blas",
		PaperSize: "N=2800 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := quadN(s)
			A := ir.NewArray("A", f64, n, n)
			B := ir.NewArray("B", f64, n, n)
			x := ir.NewArray("x", f64, n)
			y := ir.NewArray("y", f64, n)
			tmp := ir.NewArray("tmp", f64, n)
			mv := rectNest("gesummv_mv", []string{"i", "j"}, []int64{n, n},
				stmt("S_mv", 5,
					rd(A, v("i"), v("j")), rd(B, v("i"), v("j")), rd(x, v("j")),
					rd(tmp, v("i")), wr(tmp, v("i")),
					rd(y, v("i")), wr(y, v("i"))))
			return mkModule("gesummv", mv), nil
		},
	})
}

// --- kernels ---------------------------------------------------------------

func registerKernels() {
	register(Kernel{
		Name: "atax", Suite: "polybench", Category: "kernels",
		PaperSize: "M=1900 N=2100 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := quadN(s)
			A := ir.NewArray("A", f64, n, n)
			x := ir.NewArray("x", f64, n)
			y := ir.NewArray("y", f64, n)
			tmp := ir.NewArray("tmp", f64, n)
			t1 := rectNest("atax_tmp", []string{"i", "j"}, []int64{n, n},
				stmt("S_tmp", 2, rd(A, v("i"), v("j")), rd(x, v("j")),
					rd(tmp, v("i")), wr(tmp, v("i"))))
			t2 := rectNest("atax_y", []string{"i", "j"}, []int64{n, n},
				stmt("S_y", 2, rd(A, v("i"), v("j")), rd(tmp, v("i")),
					rd(y, v("j")), wr(y, v("j"))))
			return mkModule("atax", t1, t2), nil
		},
	})

	register(Kernel{
		Name: "bicg", Suite: "polybench", Category: "kernels",
		PaperSize: "M=1900 N=2100 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := quadN(s)
			A := ir.NewArray("A", f64, n, n)
			p := ir.NewArray("p", f64, n)
			q := ir.NewArray("q", f64, n)
			r := ir.NewArray("r", f64, n)
			sArr := ir.NewArray("s", f64, n)
			nest := rectNest("bicg", []string{"i", "j"}, []int64{n, n},
				stmt("S_bicg", 4,
					rd(A, v("i"), v("j")), rd(r, v("i")), rd(p, v("j")),
					rd(sArr, v("j")), wr(sArr, v("j")),
					rd(q, v("i")), wr(q, v("i"))))
			return mkModule("bicg", nest), nil
		},
	})

	register(Kernel{
		Name: "mvt", Suite: "polybench", Category: "kernels",
		PaperSize: "N=4000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := quadN(s)
			A := ir.NewArray("A", f64, n, n)
			x1 := ir.NewArray("x1", f64, n)
			x2 := ir.NewArray("x2", f64, n)
			y1 := ir.NewArray("y1", f64, n)
			y2 := ir.NewArray("y2", f64, n)
			m1 := rectNest("mvt_x1", []string{"i", "j"}, []int64{n, n},
				stmt("S_x1", 2, rd(A, v("i"), v("j")), rd(y1, v("j")),
					rd(x1, v("i")), wr(x1, v("i"))))
			m2 := rectNest("mvt_x2", []string{"i", "j"}, []int64{n, n},
				stmt("S_x2", 2, rd(A, v("j"), v("i")), rd(y2, v("j")),
					rd(x2, v("i")), wr(x2, v("i"))))
			return mkModule("mvt", m1, m2), nil
		},
	})

	register(Kernel{
		Name: "doitgen", Suite: "polybench", Category: "kernels",
		PaperSize: "NR=NQ=150 NP=250 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			nr := pick(s, 8, 60, 150)
			np := pick(s, 24, 140, 250)
			A := ir.NewArray("A", f64, nr, nr, np)
			C4 := ir.NewArray("C4", f64, np, np)
			sum := ir.NewArray("sum", f64, nr, nr, np)
			// sum[r][q][p] += A[r][q][s] * C4[s][p]; then A = sum. (The
			// 3-D sum keeps the nest perfect; PolyBench uses a per-(r,q)
			// vector, an immaterial difference for access structure.)
			acc := rectNest("doitgen_sum", []string{"r", "q", "p", "sx"},
				[]int64{nr, nr, np, np},
				stmt("S_sum", 2,
					rd(A, v("r"), v("q"), v("sx")), rd(C4, v("sx"), v("p")),
					rd(sum, v("r"), v("q"), v("p")), wr(sum, v("r"), v("q"), v("p"))))
			cp := rectNest("doitgen_copy", []string{"r", "q", "p"}, []int64{nr, nr, np},
				stmt("S_copy", 0, rd(sum, v("r"), v("q"), v("p")), wr(A, v("r"), v("q"), v("p"))))
			return mkModule("doitgen", acc, cp), nil
		},
	})
}

// --- solvers ---------------------------------------------------------------

func registerSolvers() {
	register(Kernel{
		Name: "trisolv", Suite: "polybench", Category: "solvers",
		PaperSize: "N=4000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := quadN(s)
			L := ir.NewArray("L", f64, n, n)
			x := ir.NewArray("x", f64, n)
			b := ir.NewArray("b", f64, n)
			initN := rectNest("trisolv_init", []string{"i"}, []int64{n},
				stmt("S_init", 0, rd(b, v("i")), wr(x, v("i"))))
			sub := triNestLE("trisolv_sub", "i", n, "j",
				stmt("S_sub", 2, rd(L, v("i"), v("j")), rd(x, v("j")),
					rd(x, v("i")), wr(x, v("i"))))
			div := rectNest("trisolv_div", []string{"i"}, []int64{n},
				stmt("S_div", 1, rd(L, v("i"), v("i")), rd(x, v("i")), wr(x, v("i"))))
			return mkModule("trisolv", initN, sub, div), nil
		},
	})

	register(Kernel{
		Name: "durbin", Suite: "polybench", Category: "solvers",
		PaperSize: "N=4000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := quadN(s)
			r := ir.NewArray("r", f64, n)
			y := ir.NewArray("y", f64, n)
			z := ir.NewArray("z", f64, n)
			// The Levinson-Durbin recursion: per step k, z[i] combines
			// y[i] and the reversed y[k-i-1]; then y = z. Sequential in k.
			zk := triNestLE("durbin_z", "k", n, "i",
				stmt("S_z", 3,
					rd(y, v("i")),
					rd(y, v("k").Add(v("i").Scale(-1)).AddConst(-1)),
					rd(r, v("k")), wr(z, v("i"))))
			cp := triNestLE("durbin_copy", "k", n, "i",
				stmt("S_copy", 0, rd(z, v("i")), wr(y, v("i"))))
			return mkModule("durbin", zk, cp), nil
		},
	})

	register(Kernel{
		Name: "cholesky", Suite: "polybench", Category: "solvers",
		PaperSize: "N=2000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			// A[i][j] -= A[i][k]*A[j][k] for k < j <= i, then scaling
			// statements; the in-place updates are sequential in i.
			st := stmt("S_chol", 2,
				rd(A, v("i"), v("k")), rd(A, v("j"), v("k")),
				rd(A, v("i"), v("j")), wr(A, v("i"), v("j")))
			kl := ir.SimpleLoop("k", ir.AffConst(0), v("j").AddConst(-1), st)
			jl := ir.SimpleLoop("j", ir.AffConst(0), v("i"), kl)
			il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
			div := triNestLE("cholesky_div", "i", n, "j",
				stmt("S_div", 1, rd(A, v("j"), v("j")),
					rd(A, v("i"), v("j")), wr(A, v("i"), v("j"))))
			return mkModule("cholesky",
				&ir.Nest{Label: "cholesky_update", Root: il}, div), nil
		},
	})

	register(Kernel{
		Name: "lu", Suite: "polybench", Category: "solvers",
		PaperSize: "N=2000 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			// Lower part: A[i][j] -= A[i][k]*A[k][j], k < j < i.
			stL := stmt("S_lu_low", 2,
				rd(A, v("i"), v("k")), rd(A, v("k"), v("j")),
				rd(A, v("i"), v("j")), wr(A, v("i"), v("j")))
			klL := ir.SimpleLoop("k", ir.AffConst(0), v("j").AddConst(-1), stL)
			jlL := ir.SimpleLoop("j", ir.AffConst(0), v("i").AddConst(-1), klL)
			ilL := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jlL)
			// Upper part: A[i][j] -= A[i][k]*A[k][j], k < i <= j.
			stU := stmt("S_lu_up", 2,
				rd(A, v("i"), v("k")), rd(A, v("k"), v("j")),
				rd(A, v("i"), v("j")), wr(A, v("i"), v("j")))
			klU := ir.SimpleLoop("k", ir.AffConst(0), v("i").AddConst(-1), stU)
			jlU := ir.SimpleLoop("j", v("i"), ir.AffConst(n-1), klU)
			ilU := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jlU)
			return mkModule("lu",
				&ir.Nest{Label: "lu_lower", Root: ilL},
				&ir.Nest{Label: "lu_upper", Root: ilU}), nil
		},
	})

	register(Kernel{
		Name: "gramschmidt", Suite: "polybench", Category: "solvers",
		PaperSize: "M=1400 N=1200 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			A := ir.NewArray("A", f64, n, n)
			Q := ir.NewArray("Q", f64, n, n)
			R := ir.NewArray("R", f64, n, n)
			nrm := ir.NewArray("nrm", f64, 1)
			norm := rectNest("gs_norm", []string{"k", "i"}, []int64{n, n},
				stmt("S_norm", 2, rd(A, v("i"), v("k")),
					rd(nrm, ir.AffConst(0)), wr(nrm, ir.AffConst(0))))
			qk := rectNest("gs_q", []string{"k", "i"}, []int64{n, n},
				stmt("S_q", 1, rd(A, v("i"), v("k")), rd(R, v("k"), v("k")),
					wr(Q, v("i"), v("k"))))
			// R[k][j] += Q[i][k]*A[i][j]; A[i][j] -= Q[i][k]*R[k][j], j>k.
			stR := stmt("S_r", 4,
				rd(Q, v("i"), v("k")), rd(A, v("i"), v("j")),
				rd(R, v("k"), v("j")), wr(R, v("k"), v("j")),
				wr(A, v("i"), v("j")))
			ilR := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), stR)
			jlR := ir.SimpleLoop("j", v("k").AddConst(1), ir.AffConst(n-1), ilR)
			klR := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(n-1), jlR)
			return mkModule("gramschmidt", norm, qk,
				&ir.Nest{Label: "gs_update", Root: klR}), nil
		},
	})
}

// --- stencils ----------------------------------------------------------------

func registerStencils() {
	register(Kernel{
		Name: "jacobi-1d", Suite: "polybench", Category: "stencils",
		PaperSize: "N=2000000 T=500 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := pick(s, 2000, 400000, 2000000)
			tsteps := pick(s, 10, 100, 500)
			A := ir.NewArray("A", f64, n)
			B := ir.NewArray("B", f64, n)
			s1 := stmt("S_ab", 2,
				rd(A, v("i").AddConst(-1)), rd(A, v("i")), rd(A, v("i").AddConst(1)),
				wr(B, v("i")))
			s2 := stmt("S_ba", 2,
				rd(B, v("i").AddConst(-1)), rd(B, v("i")), rd(B, v("i").AddConst(1)),
				wr(A, v("i")))
			il := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-2), s1, s2)
			tl := ir.SimpleLoop("t", ir.AffConst(0), ir.AffConst(tsteps-1), il)
			return mkModule("jacobi-1d", &ir.Nest{Label: "jacobi1d", Root: tl}), nil
		},
	})

	register(Kernel{
		Name: "jacobi-2d", Suite: "polybench", Category: "stencils",
		PaperSize: "N=1300 T=500 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := pick(s, 64, 1300, 2800)
			tsteps := pick(s, 4, 20, 100)
			A := ir.NewArray("A", f64, n, n)
			B := ir.NewArray("B", f64, n, n)
			s1 := stmt("S_ab", 4,
				rd(A, v("i"), v("j")),
				rd(A, v("i"), v("j").AddConst(-1)), rd(A, v("i"), v("j").AddConst(1)),
				rd(A, v("i").AddConst(-1), v("j")), rd(A, v("i").AddConst(1), v("j")),
				wr(B, v("i"), v("j")))
			s2 := stmt("S_ba", 4,
				rd(B, v("i"), v("j")),
				rd(B, v("i"), v("j").AddConst(-1)), rd(B, v("i"), v("j").AddConst(1)),
				rd(B, v("i").AddConst(-1), v("j")), rd(B, v("i").AddConst(1), v("j")),
				wr(A, v("i"), v("j")))
			jl := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(n-2), s1, s2)
			il := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-2), jl)
			tl := ir.SimpleLoop("t", ir.AffConst(0), ir.AffConst(tsteps-1), il)
			return mkModule("jacobi-2d", &ir.Nest{Label: "jacobi2d", Root: tl}), nil
		},
	})

	register(Kernel{
		Name: "adi", Suite: "polybench", Category: "stencils",
		PaperSize: "N=1000 T=500 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			n := pick(s, 64, 1000, 2000)
			tsteps := pick(s, 2, 12, 50)
			u := ir.NewArray("u", f64, n, n)
			vv := ir.NewArray("v", f64, n, n)
			p := ir.NewArray("p", f64, n, n)
			q := ir.NewArray("q", f64, n, n)
			// Column sweep: recurrences along j for each i.
			sCol := stmt("S_col", 6,
				rd(p, v("i"), v("j").AddConst(-1)), rd(q, v("i"), v("j").AddConst(-1)),
				rd(u, v("j"), v("i").AddConst(-1)), rd(u, v("j"), v("i")),
				rd(u, v("j"), v("i").AddConst(1)),
				wr(p, v("i"), v("j")), wr(q, v("i"), v("j")))
			jlC := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(n-2), sCol)
			ilC := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-2), jlC)
			// Back substitution for v.
			sBack := stmt("S_back", 2,
				rd(p, v("i"), v("j")), rd(q, v("i"), v("j")),
				rd(vv, v("j").AddConst(1), v("i")), wr(vv, v("j"), v("i")))
			jlB := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(n-2), sBack)
			ilB := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-2), jlB)
			// Row sweep.
			sRow := stmt("S_row", 6,
				rd(p, v("i"), v("j").AddConst(-1)), rd(q, v("i"), v("j").AddConst(-1)),
				rd(vv, v("i").AddConst(-1), v("j")), rd(vv, v("i"), v("j")),
				rd(vv, v("i").AddConst(1), v("j")),
				wr(p, v("i"), v("j")), wr(q, v("i"), v("j")))
			jlR := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(n-2), sRow)
			ilR := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-2), jlR)
			sU := stmt("S_u", 2,
				rd(p, v("i"), v("j")), rd(q, v("i"), v("j")),
				rd(u, v("i"), v("j").AddConst(1)), wr(u, v("i"), v("j")))
			jlU := ir.SimpleLoop("j", ir.AffConst(1), ir.AffConst(n-2), sU)
			ilU := ir.SimpleLoop("i", ir.AffConst(1), ir.AffConst(n-2), jlU)
			body := []ir.Node{ilC, ilB, ilR, ilU}
			tl := &ir.Loop{IV: "t",
				Lo:   []ir.Bound{ir.BExpr(ir.AffConst(0))},
				Hi:   []ir.Bound{ir.BExpr(ir.AffConst(tsteps - 1))},
				Body: body}
			return mkModule("adi", &ir.Nest{Label: "adi", Root: tl}), nil
		},
	})
}

// --- datamining --------------------------------------------------------------

func registerDatamining() {
	covLike := func(name string, withNorm bool) func(SizeClass) (*ir.Module, error) {
		return func(s SizeClass) (*ir.Module, error) {
			n := cubicN(s)
			data := ir.NewArray("data", f64, n, n)
			mean := ir.NewArray("mean", f64, n)
			out := ir.NewArray(name, f64, n, n)
			m1 := rectNest(name+"_mean", []string{"j", "i"}, []int64{n, n},
				stmt("S_mean", 1, rd(data, v("i"), v("j")),
					rd(mean, v("j")), wr(mean, v("j"))))
			ops := []ir.Op{m1}
			if withNorm {
				sd := ir.NewArray("stddev", f64, n)
				m2 := rectNest(name+"_std", []string{"j", "i"}, []int64{n, n},
					stmt("S_std", 3, rd(data, v("i"), v("j")), rd(mean, v("j")),
						rd(sd, v("j")), wr(sd, v("j"))))
				m3 := rectNest(name+"_norm", []string{"i", "j"}, []int64{n, n},
					stmt("S_norm", 2, rd(data, v("i"), v("j")), rd(mean, v("j")),
						rd(sd, v("j")), wr(data, v("i"), v("j"))))
				ops = append(ops, m2, m3)
			} else {
				m3 := rectNest(name+"_center", []string{"i", "j"}, []int64{n, n},
					stmt("S_center", 1, rd(data, v("i"), v("j")), rd(mean, v("j")),
						wr(data, v("i"), v("j"))))
				ops = append(ops, m3)
			}
			// out[i][j] += data[k][i]*data[k][j], j >= i.
			st := stmt("S_"+name, 2,
				rd(data, v("k"), v("i")), rd(data, v("k"), v("j")),
				rd(out, v("i"), v("j")), wr(out, v("i"), v("j")))
			kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(n-1), st)
			jl := ir.SimpleLoop("j", v("i"), ir.AffConst(n-1), kl)
			il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), jl)
			ops = append(ops, &ir.Nest{Label: name + "_main", Root: il})
			return mkModule(name, ops...), nil
		}
	}
	register(Kernel{
		Name: "correlation", Suite: "polybench", Category: "datamining",
		PaperSize: "M=N=1200 (LARGE)", Build: covLike("correlation", true),
	})
	register(Kernel{
		Name: "covariance", Suite: "polybench", Category: "datamining",
		PaperSize: "M=N=1200 (LARGE)", Build: covLike("covariance", false),
	})
}

// --- medley ------------------------------------------------------------------

func registerMedley() {
	register(Kernel{
		Name: "deriche", Suite: "polybench", Category: "medley",
		PaperSize: "W=4096 H=2160 (LARGE)",
		Build: func(s SizeClass) (*ir.Module, error) {
			w := pick(s, 128, 2048, 4096)
			h := pick(s, 64, 1080, 2160)
			img := ir.NewArray("img", f64, h, w)
			y1 := ir.NewArray("y1", f64, h, w)
			y2 := ir.NewArray("y2", f64, h, w)
			out := ir.NewArray("out", f64, h, w)
			// Horizontal causal recurrence.
			hpass := rectNest("deriche_h", []string{"i", "j"}, []int64{h, w - 2},
				stmt("S_h", 4,
					rd(img, v("i"), v("j").AddConst(2)),
					rd(y1, v("i"), v("j").AddConst(1)), rd(y1, v("i"), v("j")),
					wr(y1, v("i"), v("j").AddConst(2))))
			// Vertical causal recurrence.
			vpass := rectNest("deriche_v", []string{"j", "i"}, []int64{w, h - 2},
				stmt("S_v", 4,
					rd(y1, v("i").AddConst(2), v("j")),
					rd(y2, v("i").AddConst(1), v("j")), rd(y2, v("i"), v("j")),
					wr(y2, v("i").AddConst(2), v("j"))))
			comb := rectNest("deriche_sum", []string{"i", "j"}, []int64{h, w},
				stmt("S_sum", 1, rd(y1, v("i"), v("j")), rd(y2, v("i"), v("j")),
					wr(out, v("i"), v("j"))))
			return mkModule("deriche", hpass, vpass, comb), nil
		},
	})
}
