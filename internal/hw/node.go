package hw

import (
	"fmt"

	"polyufc/internal/faults"
	"polyufc/internal/platform"
)

// remoteLineBytes amortizes the interconnect's per-access latency over a
// cache line: remote DRAM traffic crosses the link line by line.
const remoteLineBytes = 64

// RemotePenalty converts an interconnect description into the per-byte
// service time and energy a remote DRAM access pays on top of a local
// one: the line-amortized link latency plus the link's bandwidth share,
// and the transfer energy. A nil interconnect (single-socket topology)
// costs nothing.
func RemotePenalty(ic *platform.Interconnect) (secPerByte, joulesPerByte float64) {
	if ic == nil || ic.BWGBs <= 0 {
		return 0, 0
	}
	secPerByte = 1/(ic.BWGBs*1e9) + ic.LatencyNs*1e-9/remoteLineBytes
	return secPerByte, ic.EnergyPJPerByte * 1e-12
}

// addRemote charges the hidden truth model's interconnect cost to a
// measurement: the remote fraction of DRAM read traffic pays the link's
// per-byte service time serially (the link is a shared, unoverlapped
// resource) at idle clock-tree power, plus transfer energy. remoteRatio
// <= 0 or a nil interconnect leaves the result untouched, so the
// single-socket path is bit-identical to the pre-topology model.
func (m *Machine) addRemote(p *CacheProfile, r *RunResult, remoteRatio float64, ic *platform.Interconnect) {
	if remoteRatio <= 0 || ic == nil {
		return
	}
	if remoteRatio > 1 {
		remoteRatio = 1
	}
	secB, jB := RemotePenalty(ic)
	bytes := remoteRatio * float64(p.DRAMReadB)
	t := m.P.truth
	extra := bytes * secB
	link := bytes * jB
	idleW := t.PConstW + t.CoreIdleWPerGHz*r.CoreGHz + t.UncoreIdleWPerGHz*r.UncoreGHz
	r.Seconds += extra
	r.PkgJoules += link + extra*idleW
	r.UncoreJoules += link + extra*t.UncoreIdleWPerGHz*r.UncoreGHz
	r.AvgWatts = r.PkgJoules / r.Seconds
	r.EDP = r.PkgJoules * r.Seconds
	r.GFlops = float64(p.Flops) / r.Seconds / 1e9
	r.DRAMGBs = float64(p.DRAMReadB) / r.Seconds / 1e9
}

// MeasureNUMA is Measure with a fraction of the profile's DRAM traffic
// served by a remote socket across the interconnect. The RAPL counters
// accumulate as usual; remoteRatio 0 (or a nil interconnect) is exactly
// Measure.
func (m *Machine) MeasureNUMA(p *CacheProfile, remoteRatio float64, ic *platform.Interconnect) RunResult {
	threads := 1
	if p.HasParallel {
		threads = m.P.Threads
	}
	r := m.measureAtJoint(p, m.coreFreq, m.uncoreCap, threads)
	m.addRemote(p, &r, remoteRatio, ic)
	m.jitter(&r)
	m.pkgEnergy += r.PkgJoules
	m.uncoreEnergy += r.UncoreJoules
	m.busyTime += r.Seconds
	// Thermal-override fault: see Measure.
	if m.uncoreCap < m.P.UncoreMax && m.faults.Hit(FaultThermalOverride) != nil {
		m.prevCap = m.uncoreCap
		m.uncoreCap = m.P.UncoreMax
		m.thermalOverrides++
	}
	return r
}

// MeasureAtNUMA is the stateless NUMA-aware variant of MeasureAt: explicit
// frequencies, no driver or counter mutation.
func (m *Machine) MeasureAtNUMA(p *CacheProfile, fCore, fUncore, remoteRatio float64, ic *platform.Interconnect) RunResult {
	threads := 1
	if p.HasParallel {
		threads = m.P.Threads
	}
	r := m.measureAtJoint(p, fCore, fUncore, threads)
	m.addRemote(p, &r, remoteRatio, ic)
	return r
}

// Node is a booted multi-socket machine: one Machine per socket of a
// topology description, each with its own uncore domain, driver state,
// RAPL counters and fault registry, joined by the description's
// interconnect. Single-socket backends boot as a 1-socket Node, so Node
// is the uniform handle for topology-aware callers.
type Node struct {
	B       *platform.Backend
	sockets []*Machine
}

// NewNode boots every socket of a backend's topology.
func NewNode(b *platform.Backend) (*Node, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := &Node{B: b}
	for i := 0; i < b.NumSockets(); i++ {
		p, err := SocketPlatform(b, i)
		if err != nil {
			return nil, err
		}
		n.sockets = append(n.sockets, NewMachine(p))
	}
	return n, nil
}

// NumSockets returns the socket count.
func (n *Node) NumSockets() int { return len(n.sockets) }

// Socket returns socket i's machine.
func (n *Node) Socket(i int) (*Machine, error) {
	if i < 0 || i >= len(n.sockets) {
		return nil, fmt.Errorf("hw: node %q has %d socket(s), no socket %d", n.B.Name, len(n.sockets), i)
	}
	return n.sockets[i], nil
}

// Machines returns the per-socket machines in socket order.
func (n *Node) Machines() []*Machine { return n.sockets }

// Interconnect returns the topology's inter-socket link (nil for
// single-socket backends).
func (n *Node) Interconnect() *platform.Interconnect { return n.B.Interconnect }

// SetSocketFaults arms a fault registry on exactly one socket's machine —
// the isolation the per-socket cap controllers are tested against: a UFS
// fault on socket k degrades socket k's controller and no other.
func (n *Node) SetSocketFaults(i int, r *faults.Registry) error {
	m, err := n.Socket(i)
	if err != nil {
		return err
	}
	m.SetFaults(r)
	return nil
}

// Controllers builds one independent CapController per socket, each with
// its own verify/retry/backoff state over its socket's driver. Jitter
// seeds are decorrelated per socket so concurrent retries do not stampede
// in lockstep.
func (n *Node) Controllers(opts CapControllerOptions) []*CapController {
	out := make([]*CapController, len(n.sockets))
	for i, m := range n.sockets {
		o := opts
		o.JitterSeed = opts.JitterSeed + int64(i)
		out[i] = NewCapController(m, o)
	}
	return out
}

// ApplyCaps applies one cap per socket through freshly built controllers
// (convenience for tests and one-shot CLI paths; long-lived callers keep
// their own Controllers). Returns the first error; remaining sockets are
// still attempted so one faulty domain cannot wedge the others.
func (n *Node) ApplyCaps(caps []float64, opts CapControllerOptions) ([]float64, error) {
	if len(caps) != len(n.sockets) {
		return nil, fmt.Errorf("hw: node %q: got %d caps for %d sockets", n.B.Name, len(caps), len(n.sockets))
	}
	ctls := n.Controllers(opts)
	applied := make([]float64, len(caps))
	var firstErr error
	for i, c := range ctls {
		got, err := c.Apply(caps[i])
		applied[i] = got
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("hw: node %q socket %d: %w", n.B.Name, i, err)
		}
	}
	return applied, firstErr
}

// TotalThreads sums hardware threads across sockets.
func (n *Node) TotalThreads() int {
	total := 0
	for _, m := range n.sockets {
		total += m.P.Threads
	}
	return total
}
