package hw

import (
	"errors"
	"sync"
	"testing"
	"time"

	"polyufc/internal/faults"
)

// fakeClock is a manually-advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBreaker(m *Machine, threshold int, clk *fakeClock) *CapBreaker {
	return NewCapBreaker(testController(m), BreakerOptions{
		Threshold: threshold,
		Cooldown:  time.Second,
		Clock:     clk.Now,
	})
}

// The tentpole scenario: a permanently sick driver trips the breaker
// within the configured failure budget, subsequent operations fast-fail
// without touching the driver, and a recovered driver closes the breaker
// through a single half-open probe.
func TestCapBreakerTripsDegradesAndRecovers(t *testing.T) {
	p := RPL()
	m := NewMachine(p)
	reg := faults.New(4)
	reg.Enable(FaultCapWriteBusy, faults.Spec{P: 1})
	m.SetFaults(reg)
	clk := &fakeClock{}
	b := testBreaker(m, 2, clk)

	for i := 0; i < 2; i++ {
		if _, err := b.SetCap(1.5); !errors.Is(err, ErrCapBusy) {
			t.Fatalf("SetCap %d: err = %v, want ErrCapBusy", i, err)
		}
	}
	if st := b.Stats(); st.State != BreakerOpen || st.Trips != 1 {
		t.Fatalf("after threshold failures: %+v, want open with 1 trip", st)
	}

	// Open: fast-fail, the driver must not be touched.
	applies := b.ControllerStats().Applies
	if _, err := b.SetCap(1.5); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker err = %v, want ErrBreakerOpen", err)
	}
	if _, err := b.Reassert(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Reassert err = %v, want ErrBreakerOpen", err)
	}
	if got := b.ControllerStats().Applies; got != applies {
		t.Fatalf("open breaker reached the driver: applies %d -> %d", applies, got)
	}
	if b.Stats().Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", b.Stats().Rejected)
	}

	// Cooldown elapses with the driver still sick: the probe fails and
	// re-opens the breaker.
	clk.Advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if _, err := b.SetCap(1.5); !errors.Is(err, ErrCapBusy) {
		t.Fatalf("probe err = %v, want ErrCapBusy", err)
	}
	if st := b.Stats(); st.State != BreakerOpen || st.Trips != 2 || st.Probes != 1 {
		t.Fatalf("after failed probe: %+v", st)
	}
	if st := b.Stats(); st.HalfOpens != 1 || st.ProbeFailures != 1 || st.ProbeSuccesses != 0 {
		t.Fatalf("probe counters after failed probe: %+v", st)
	}

	// Driver recovers; the next probe closes the breaker.
	reg.Disable(FaultCapWriteBusy)
	clk.Advance(time.Second)
	got, err := b.SetCap(1.5)
	if err != nil || got != 1.5 {
		t.Fatalf("recovery probe: %.1f, %v", got, err)
	}
	if st := b.Stats(); st.State != BreakerClosed || st.Recovered != 1 || st.Probes != 2 {
		t.Fatalf("after recovery: %+v", st)
	}
	if st := b.Stats(); st.HalfOpens != 2 || st.ProbeSuccesses != 1 || st.ProbeFailures != 1 {
		t.Fatalf("probe counters after recovery: %+v", st)
	}
}

// Restore bypasses an open breaker: shutdown must never leave the machine
// capped just because the driver was quarantined.
func TestCapBreakerRestoreBypassesOpenBreaker(t *testing.T) {
	p := BDW()
	m := NewMachine(p)
	b := testBreaker(m, 1, &fakeClock{})
	if _, err := b.SetCap(1.5); err != nil {
		t.Fatal(err)
	}
	reg := faults.New(6)
	reg.Enable(FaultCapWriteBusy, faults.Spec{P: 1})
	m.SetFaults(reg)
	if _, err := b.SetCap(2.0); !errors.Is(err, ErrCapBusy) {
		t.Fatalf("err = %v", err)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Every driver write still fails, but Restore's fallback reset path
	// guarantees the default cap — through the open breaker.
	if err := b.Restore(); err != nil {
		t.Fatalf("Restore through open breaker: %v", err)
	}
	if m.UncoreCap() != p.UncoreMax {
		t.Fatalf("cap left at %.1f", m.UncoreCap())
	}
	// A fallback reset is not recovery evidence: the driver is still sick,
	// so the breaker stays open.
	if b.Stats().State != BreakerOpen {
		t.Fatalf("fallback restore closed the breaker: %v", b.Stats().State)
	}
}

// Intermittent failures below the threshold never trip the breaker: a
// success resets the consecutive-failure streak.
func TestCapBreakerSuccessResetsStreak(t *testing.T) {
	p := RPL()
	m := NewMachine(p)
	reg := faults.New(8)
	m.SetFaults(reg)
	clk := &fakeClock{}
	b := testBreaker(m, 3, clk)
	for i := 0; i < 10; i++ {
		// Alternate: two failures, then a success, forever.
		if i%3 == 2 {
			reg.Disable(FaultCapWriteBusy)
		} else {
			reg.Enable(FaultCapWriteBusy, faults.Spec{P: 1})
		}
		b.SetCap(1.5)
	}
	if st := b.Stats(); st.State != BreakerClosed || st.Trips != 0 {
		t.Fatalf("breaker tripped on a sub-threshold streak: %+v", st)
	}
}

// The satellite race test: concurrent SetCap calls racing the watchdog's
// Reassert loop under injected ufs.write.ebusy, with the run finishing in
// a Restore. Run under -race this pins the breaker as the concurrency-safe
// front door to the (deliberately unsynchronized) CapController.
func TestCapBreakerReassertRacesSetCapUnderFaults(t *testing.T) {
	p := RPL()
	m := NewMachine(p)
	reg := faults.New(13)
	reg.Enable(FaultCapWriteBusy, faults.Spec{P: 0.5})
	m.SetFaults(reg)
	// A generous threshold keeps the breaker mostly closed so the race
	// exercises the driver path, not the fast-fail path.
	b := testBreaker(m, 1<<30, &fakeClock{})

	steps := p.UncoreSteps()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.SetCap(steps[(w+i)%len(steps)]) // transient ErrCapBusy is expected
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.Reassert()
		}
	}()
	wg.Wait()

	if err := b.Restore(); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if m.UncoreCap() != p.UncoreMax {
		t.Fatalf("race left cap at %.1f", m.UncoreCap())
	}
	if b.ControllerStats().Retries == 0 {
		t.Fatal("no retries at 50% fault rate (faults not exercised)")
	}
}
