package hw

import (
	"math"
	"reflect"
	"testing"

	"polyufc/internal/faults"
	"polyufc/internal/platform"
)

// twoSocketBackend builds a 2-socket topology out of the embedded BDW
// description (same sockets, a QPI-shaped link).
func twoSocketBackend(t *testing.T) *platform.Backend {
	t.Helper()
	bdw, err := platform.Lookup("BDW")
	if err != nil {
		t.Fatal(err)
	}
	sock := bdw.Topology()[0]
	b := &platform.Backend{
		Schema: platform.SchemaVersion, Name: "2S-TEST",
		CPU: "test 2S", Released: 2026,
		Sockets:      []platform.Socket{sock, sock},
		Interconnect: &platform.Interconnect{BWGBs: 19.2, LatencyNs: 120, EnergyPJPerByte: 15},
	}
	b.Normalize()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNodeBootAndSocketViews(t *testing.T) {
	b := twoSocketBackend(t)
	n, err := NewNode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumSockets() != 2 {
		t.Fatalf("NumSockets = %d", n.NumSockets())
	}
	if n.TotalThreads() != 2*b.Threads {
		t.Fatalf("TotalThreads = %d, want %d", n.TotalThreads(), 2*b.Threads)
	}
	s0, _ := n.Socket(0)
	s1, _ := n.Socket(1)
	if s0.P.Socket != 0 || s1.P.Socket != 1 {
		t.Fatalf("socket indices %d/%d", s0.P.Socket, s1.P.Socket)
	}
	// Socket 0's platform view is FromBackend's, field for field — the
	// invariant that keeps every single-socket consumer on the same data.
	direct, err := FromBackend(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s0.P, direct) {
		t.Fatal("socket 0 platform differs from FromBackend")
	}
	if _, err := n.Socket(2); err == nil {
		t.Fatal("out-of-range socket resolved")
	}
	// Single-socket backends boot as 1-socket nodes.
	bdw, _ := platform.Lookup("BDW")
	nb, err := NewNode(bdw)
	if err != nil {
		t.Fatal(err)
	}
	if nb.NumSockets() != 1 || nb.Interconnect() != nil {
		t.Fatalf("BDW node: %d sockets, ic=%v", nb.NumSockets(), nb.Interconnect())
	}
}

func TestMeasureNUMARemotePenalty(t *testing.T) {
	b := twoSocketBackend(t)
	n, err := NewNode(b)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := n.Socket(0)
	p := &CacheProfile{
		Flops: 1 << 24, LLCMisses: 1 << 18,
		DRAMReadB: 64 << 18, DRAMWriteB: 32 << 18,
		LevelHits: []int64{1 << 20, 1 << 18, 1 << 16}, HasParallel: true,
	}
	local := m.MeasureAtNUMA(p, m.P.CoreBase, m.P.UncoreMax, 0, n.Interconnect())
	base := m.MeasureAt(p, m.P.CoreBase, m.P.UncoreMax)
	if local != base {
		t.Fatal("zero remote ratio is not bit-identical to MeasureAt")
	}
	prev := local
	for _, rho := range []float64{0.25, 0.5, 1.0} {
		r := m.MeasureAtNUMA(p, m.P.CoreBase, m.P.UncoreMax, rho, n.Interconnect())
		if !(r.Seconds > prev.Seconds) || !(r.PkgJoules > prev.PkgJoules) {
			t.Fatalf("rho=%g: remote traffic did not cost time/energy (%.3g s vs %.3g s)", rho, r.Seconds, prev.Seconds)
		}
		prev = r
	}
	// The ratio clamps at 1: over-unity input costs the same as all-remote.
	over := m.MeasureAtNUMA(p, m.P.CoreBase, m.P.UncoreMax, 2.0, n.Interconnect())
	if math.Abs(over.Seconds-prev.Seconds) > 1e-15 {
		t.Fatal("remote ratio did not clamp at 1")
	}
	// Stateful MeasureNUMA accumulates RAPL.
	m.ResetCounters()
	r := m.MeasureNUMA(p, 0.5, n.Interconnect())
	pkg, _, busy := m.RAPL()
	if pkg != r.PkgJoules || busy != r.Seconds {
		t.Fatal("MeasureNUMA did not accumulate RAPL counters")
	}
}

func TestNodePerSocketFaultIsolation(t *testing.T) {
	b := twoSocketBackend(t)
	n, err := NewNode(b)
	if err != nil {
		t.Fatal(err)
	}
	// Arm a hard EBUSY fault on socket 1 only.
	reg := faults.New(1)
	reg.Enable(FaultCapWriteBusy, faults.Spec{P: 1})
	if err := n.SetSocketFaults(1, reg); err != nil {
		t.Fatal(err)
	}
	ctls := n.Controllers(CapControllerOptions{MaxRetries: 2, BestEffort: true})
	target := 1.6
	got0, err0 := ctls[0].Apply(target)
	_, err1 := ctls[1].Apply(target)
	if err0 != nil || got0 != target {
		t.Fatalf("healthy socket 0 degraded: cap=%g err=%v", got0, err0)
	}
	if err1 == nil {
		t.Fatal("faulty socket 1 applied the cap despite a hard EBUSY fault")
	}
	s0, _ := n.Socket(0)
	s1, _ := n.Socket(1)
	if s0.UncoreCap() != target {
		t.Fatalf("socket 0 cap = %g, want %g", s0.UncoreCap(), target)
	}
	if s1.UncoreCap() != s1.P.UncoreMax {
		t.Fatalf("socket 1 cap moved to %g despite write failures", s1.UncoreCap())
	}
	// ApplyCaps surfaces the failure but still drives every socket.
	applied, err := n.ApplyCaps([]float64{1.4, 1.4}, CapControllerOptions{MaxRetries: 1, BestEffort: true})
	if err == nil {
		t.Fatal("ApplyCaps swallowed the socket-1 failure")
	}
	if applied[0] != 1.4 {
		t.Fatalf("socket 0 cap after ApplyCaps = %g", applied[0])
	}
	if _, err := n.ApplyCaps([]float64{1.2}, CapControllerOptions{}); err == nil {
		t.Fatal("cap-count mismatch accepted")
	}
}
