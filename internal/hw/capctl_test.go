package hw

import (
	"errors"
	"math"
	"testing"

	"polyufc/internal/faults"
	"polyufc/internal/ir"
)

func testController(m *Machine) *CapController {
	opts := DefaultCapControllerOptions(m.P)
	opts.JitterSeed = 1
	return NewCapController(m, opts)
}

// The acceptance scenario: at a seeded 30% transient write-failure rate,
// every cap of a full grid sweep is eventually applied with bounded
// retries, and the driver default is restored on exit.
func TestCapControllerConvergesUnderTransientFaults(t *testing.T) {
	for _, p := range Platforms() {
		m := NewMachine(p)
		reg := faults.New(42)
		reg.Enable(FaultCapWriteBusy, faults.Spec{P: 0.3})
		m.SetFaults(reg)
		ctl := testController(m)
		for _, f := range p.UncoreSteps() {
			got, err := ctl.Apply(f)
			if err != nil {
				t.Fatalf("%s: Apply(%.1f): %v", p.Name, f, err)
			}
			if got != f || m.UncoreCap() != f {
				t.Fatalf("%s: Apply(%.1f) -> %.1f, cap %.1f", p.Name, f, got, m.UncoreCap())
			}
		}
		st := ctl.Stats()
		if st.Retries == 0 {
			t.Fatalf("%s: no retries at 30%% fault rate (faults not exercised)", p.Name)
		}
		// Bounded: the write count can never exceed the per-Apply budget.
		if st.Writes > st.Applies*int64(DefaultCapControllerOptions(p).MaxRetries+1) {
			t.Fatalf("%s: %d writes for %d applies exceeds the retry budget", p.Name, st.Writes, st.Applies)
		}
		if err := ctl.Restore(); err != nil {
			t.Fatalf("%s: Restore: %v", p.Name, err)
		}
		if m.UncoreCap() != p.UncoreMax {
			t.Fatalf("%s: default cap not restored: %.1f", p.Name, m.UncoreCap())
		}
	}
}

func TestCapControllerVerifyCatchesClampAndStaleReads(t *testing.T) {
	p := BDW()
	m := NewMachine(p)
	reg := faults.New(7)
	// First write is firmware-clamped one step low; the read after the
	// second (correct) write is stale.
	reg.Enable(FaultCapWriteClamp, faults.Spec{On: []int64{1}})
	reg.Enable(FaultCapReadStale, faults.Spec{On: []int64{2}})
	m.SetFaults(reg)
	ctl := testController(m)
	got, err := ctl.Apply(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.0 || m.UncoreCap() != 2.0 {
		t.Fatalf("applied %.1f, cap %.1f", got, m.UncoreCap())
	}
	st := ctl.Stats()
	if st.Retries != 1 || st.Writes != 2 {
		t.Fatalf("stats %+v: want exactly one clamp-triggered retry", st)
	}
}

func TestCapControllerBoundedFailureAndForcedRestore(t *testing.T) {
	p := RPL()
	m := NewMachine(p)
	reg := faults.New(3)
	reg.Enable(FaultCapWriteBusy, faults.Spec{P: 1}) // the driver never recovers
	m.SetFaults(reg)
	ctl := testController(m)
	ctl.Apply(p.UncoreMin) // leaves the machine at the default, Apply failed
	_, err := ctl.Apply(1.5)
	if !errors.Is(err, ErrCapBusy) {
		t.Fatalf("err = %v, want ErrCapBusy", err)
	}
	st := ctl.Stats()
	if st.Failures != 2 {
		t.Fatalf("failures = %d", st.Failures)
	}
	if st.Writes != 2*int64(DefaultCapControllerOptions(p).MaxRetries+1) {
		t.Fatalf("writes = %d: retry budget not honoured", st.Writes)
	}
	// Restore must succeed even though every driver write fails: the
	// fallback reset path guarantees the machine is left unclamped.
	m.SetUncoreCap(1.5) // simulate a clamp that did land earlier
	ctl.Restore()
	if m.UncoreCap() != p.UncoreMax {
		t.Fatalf("forced restore left cap at %.1f", m.UncoreCap())
	}
}

func TestCapControllerWatchdogCorrectsThermalOverride(t *testing.T) {
	p := RPL()
	m := NewMachine(p)
	reg := faults.New(5)
	reg.Enable(FaultThermalOverride, faults.Spec{On: []int64{1}})
	m.SetFaults(reg)
	ctl := testController(m)
	if _, err := ctl.Apply(1.5); err != nil {
		t.Fatal(err)
	}
	m.Measure(cbProfile()) // the firmware silently raises the cap mid-run
	if m.UncoreCap() != p.UncoreMax || m.ThermalOverrides() != 1 {
		t.Fatalf("override not modelled: cap %.1f, overrides %d", m.UncoreCap(), m.ThermalOverrides())
	}
	corrected, err := ctl.Reassert()
	if err != nil || !corrected {
		t.Fatalf("Reassert = %v, %v", corrected, err)
	}
	if m.UncoreCap() != 1.5 || ctl.Stats().Overrides != 1 {
		t.Fatalf("watchdog left cap at %.1f (overrides %d)", m.UncoreCap(), ctl.Stats().Overrides)
	}
	// A second check with no drift is a no-op.
	if corrected, _ := ctl.Reassert(); corrected {
		t.Fatal("Reassert corrected without drift")
	}
}

func TestCapControllerGuardRestoresOnPanic(t *testing.T) {
	p := BDW()
	m := NewMachine(p)
	ctl := testController(m)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		ctl.Guard(func() error {
			if _, err := ctl.Apply(1.5); err != nil {
				t.Fatal(err)
			}
			panic("kernel crashed mid-run")
		})
	}()
	if m.UncoreCap() != p.UncoreMax {
		t.Fatalf("panic path left cap at %.1f", m.UncoreCap())
	}
	if ctl.Stats().Restores != 1 {
		t.Fatalf("restores = %d", ctl.Stats().Restores)
	}
}

func TestCapControllerRunFuncMatchesMachineWithoutFaults(t *testing.T) {
	A := ir.NewArray("A", 8, 64)
	B := ir.NewArray("B", 8, 64)
	stmt := &ir.Statement{Name: "S", Flops: 1}
	i := ir.AffVar("i")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i}},
		{Array: B, Write: true, Index: []ir.AffExpr{i}},
	}
	nest := &ir.Nest{Label: "copy", Root: ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(63), stmt)}
	f := &ir.Func{Name: "k", Ops: []ir.Op{
		&ir.SetUncoreCap{GHz: 1.5}, nest,
		&ir.SetUncoreCap{GHz: 2.5}, nest,
	}}
	plain, err := NewMachine(BDW()).RunFunc(f)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(BDW())
	hardened, err := testController(m).RunFunc(f)
	if err != nil {
		t.Fatal(err)
	}
	// With no faults armed the hardened path measures identically; the
	// final restore switch happens after the aggregate is settled.
	if math.Abs(hardened.Seconds-plain.Seconds) > 1e-15 || math.Abs(hardened.PkgJoules-plain.PkgJoules) > 1e-12 {
		t.Fatalf("hardened %+v vs plain %+v", hardened, plain)
	}
	if m.UncoreCap() != BDW().UncoreMax {
		t.Fatalf("RunFunc left cap at %.1f", m.UncoreCap())
	}
}

func TestCapControllerRunFuncBestEffortDegrades(t *testing.T) {
	p := RPL()
	m := NewMachine(p)
	reg := faults.New(9)
	reg.Enable(FaultCapWriteBusy, faults.Spec{P: 1})
	m.SetFaults(reg)
	opts := DefaultCapControllerOptions(p)
	opts.JitterSeed = 2
	opts.BestEffort = true
	ctl := NewCapController(m, opts)
	f := &ir.Func{Name: "k", Ops: []ir.Op{&ir.SetUncoreCap{GHz: 1.0}}}
	if _, err := ctl.RunFunc(f); err != nil {
		t.Fatalf("best-effort run aborted: %v", err)
	}
	if ctl.Stats().Failures == 0 {
		t.Fatal("no failure recorded")
	}
	// Strict mode aborts on the same fault pattern.
	opts.BestEffort = false
	m2 := NewMachine(p)
	m2.SetFaults(faults.New(9))
	m2.Faults().Enable(FaultCapWriteBusy, faults.Spec{P: 1})
	if _, err := NewCapController(m2, opts).RunFunc(f); !errors.Is(err, ErrCapBusy) {
		t.Fatalf("strict run err = %v", err)
	}
}
