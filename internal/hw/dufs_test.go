package hw

import (
	"math"
	"testing"
)

// longCBProfile is a compute-bound kernel long enough for the governor to
// converge (seconds of work).
func longCBProfile() *CacheProfile {
	p := cbProfile()
	p.Flops *= 100
	p.Instances *= 100
	p.LevelHits = []int64{3e11, 5e9, 4e9}
	p.LLCMisses *= 100
	p.DRAMReadB *= 100
	return p
}

func longBBProfile() *CacheProfile {
	p := bbProfile()
	p.Flops *= 100
	p.LLCMisses *= 100
	p.DRAMReadB *= 100
	return p
}

func TestDUFSStepsDownForCB(t *testing.T) {
	m := NewMachine(BDW())
	g := DefaultDUFS()
	r := g.RunProfile(m, longCBProfile())
	if r.UncoreGHz >= m.P.UncoreMax {
		t.Fatalf("governor stayed at max (%.1f) for a compute-bound kernel", r.UncoreGHz)
	}
	// Energy must beat running pinned at max.
	pinned := m.measureAt(longCBProfile(), m.P.UncoreMax, m.P.Threads)
	if r.PkgJoules >= pinned.PkgJoules {
		t.Fatalf("DUFS energy %.3f J >= pinned-max %.3f J", r.PkgJoules, pinned.PkgJoules)
	}
}

func TestDUFSStaysHighForBB(t *testing.T) {
	m := NewMachine(RPL())
	g := DefaultDUFS()
	r := g.RunProfile(m, longBBProfile())
	mid := (m.P.UncoreMin + m.P.UncoreMax) / 2
	if r.UncoreGHz <= mid {
		t.Fatalf("governor dropped to %.1f GHz on a bandwidth-bound kernel", r.UncoreGHz)
	}
}

func TestDUFSConvergencePaysLag(t *testing.T) {
	// For a CB kernel the governor must descend one step per interval:
	// its energy sits between the pinned-max and the oracle-min values.
	m := NewMachine(BDW())
	g := DefaultDUFS()
	prof := longCBProfile()
	r := g.RunProfile(m, prof)
	oracle := m.measureAt(prof, m.P.UncoreMin, m.P.Threads)
	pinned := m.measureAt(prof, m.P.UncoreMax, m.P.Threads)
	if !(r.PkgJoules > oracle.PkgJoules && r.PkgJoules < pinned.PkgJoules) {
		t.Fatalf("DUFS energy %.3f not in (oracle %.3f, pinned %.3f)",
			r.PkgJoules, oracle.PkgJoules, pinned.PkgJoules)
	}
}

func TestDUFSShortKernelBarelyAdapts(t *testing.T) {
	// A sub-interval kernel finishes before the first decision: the
	// control-loop latency the paper contrasts with compile-time capping.
	m := NewMachine(BDW())
	g := DefaultDUFS()
	short := &CacheProfile{ // microseconds of work
		Flops: 2e6, Instances: 1e6, Loads: 3e6,
		LevelHits:   []int64{3e6, 5e4, 4e4},
		LevelMisses: []int64{1e5, 5e4, 1e3},
		LLCMisses:   1e3, DRAMReadB: 64e3, HasParallel: true,
	}
	r := g.RunProfile(m, short)
	if r.UncoreGHz != m.P.UncoreMax {
		t.Fatalf("short kernel should finish at the start frequency, got %.1f", r.UncoreGHz)
	}
}

func TestDUFSSessionCarriesState(t *testing.T) {
	m := NewMachine(BDW())
	g := DefaultDUFS()
	profs := []*CacheProfile{longCBProfile(), longCBProfile()}
	r := g.RunNests(m, profs)
	if r.Seconds <= 0 || r.PkgJoules <= 0 {
		t.Fatalf("bad aggregate %+v", r)
	}
	// After two long CB kernels the carried frequency must be low.
	if r.UncoreGHz > (m.P.UncoreMin+m.P.UncoreMax)/2 {
		t.Fatalf("carried frequency %.1f still high after CB session", r.UncoreGHz)
	}
}

func TestDUFSEnergyConservation(t *testing.T) {
	// Piecewise integration sanity: energy = avg power x time.
	m := NewMachine(RPL())
	g := DefaultDUFS()
	r := g.RunProfile(m, longBBProfile())
	if math.Abs(r.AvgWatts*r.Seconds-r.PkgJoules) > 1e-9*r.PkgJoules+1e-12 {
		t.Fatal("energy integration inconsistent")
	}
}
