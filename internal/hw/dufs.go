package hw

import "math"

// DUFSGovernor emulates a reactive dynamic uncore frequency scaling
// runtime (the DUFS family the paper compares against in Sec. VII-F: duf,
// Uncore Power Scavenger, and the kernel driver's own scaling): it samples
// memory-bandwidth utilization on a fixed control interval and steps the
// uncore frequency up or down between watermarks. Unlike PolyUFC's static
// caps it needs no compile-time analysis, but it pays convergence lag,
// oscillation around phase changes, and a transition cost per step.
type DUFSGovernor struct {
	// Interval is the control-loop period (OS governors run at
	// millisecond scale; Sec. VIII: "high control-loop latency").
	Interval float64 // seconds
	// StepGHz is the frequency adjustment per decision.
	StepGHz float64
	// HighWater/LowWater are utilization thresholds: above HighWater the
	// governor steps up, below LowWater it steps down.
	HighWater, LowWater float64
	// StartGHz is the initial frequency (0 = platform maximum, the
	// driver's reset state).
	StartGHz float64
}

// DefaultDUFS returns a governor configured like the runtime DUFS systems
// the paper cites: 10 ms control interval, 0.1 GHz steps, 0.9/0.7
// watermarks.
func DefaultDUFS() DUFSGovernor {
	return DUFSGovernor{Interval: 10e-3, StepGHz: 0.1, HighWater: 0.90, LowWater: 0.70}
}

// RunProfile executes one kernel profile under governor control,
// integrating time and energy piecewise across control intervals. The
// kernel is treated as divisible work: in an interval at frequency f, the
// completed fraction is dt / T(f).
func (g DUFSGovernor) RunProfile(m *Machine, p *CacheProfile) RunResult {
	threads := 1
	if p.HasParallel {
		threads = m.P.Threads
	}
	f := g.StartGHz
	if f == 0 {
		f = m.P.UncoreMax
	}
	f = m.P.ClampCap(f)

	var elapsed, energy, progress float64
	steps := 0
	const maxIters = 1 << 20
	for iter := 0; progress < 1 && iter < maxIters; iter++ {
		r := m.measureAt(p, f, threads)
		dt := g.Interval
		remain := (1 - progress) * r.Seconds
		if remain < dt {
			dt = remain
		}
		elapsed += dt
		energy += r.AvgWatts * dt
		progress += dt / r.Seconds

		if progress >= 1 {
			break
		}
		// Utilization-driven decision.
		bwAvail := m.P.truth.BWPeakGBs * f / (f + m.P.truth.BWKneeGHz) * 1e9
		util := 0.0
		if r.Seconds > 0 {
			util = (float64(p.DRAMReadB) / r.Seconds) / bwAvail
		}
		next := f
		if util > g.HighWater {
			next = m.P.ClampCap(f + g.StepGHz)
		} else if util < g.LowWater {
			next = m.P.ClampCap(f - g.StepGHz)
		}
		if next != f {
			f = next
			steps++
			elapsed += m.P.CapLatency
			energy += m.P.truth.PConstW * m.P.CapLatency
		}
	}
	res := RunResult{
		Seconds:   elapsed,
		PkgJoules: energy,
		UncoreGHz: f,
		Threads:   threads,
	}
	if elapsed > 0 {
		res.AvgWatts = energy / elapsed
	}
	res.EDP = energy * elapsed
	res.GFlops = float64(p.Flops) / math.Max(elapsed, 1e-12) / 1e9
	return res
}

// RunNests executes a sequence of profiles under one continuous governor
// session (frequency state carries across kernels, as a runtime daemon
// would behave).
func (g DUFSGovernor) RunNests(m *Machine, profs []*CacheProfile) RunResult {
	var agg RunResult
	cur := g
	for _, p := range profs {
		r := cur.RunProfile(m, p)
		agg.Seconds += r.Seconds
		agg.PkgJoules += r.PkgJoules
		// Carry the converged frequency into the next kernel.
		cur.StartGHz = r.UncoreGHz
		agg.UncoreGHz = r.UncoreGHz
	}
	if agg.Seconds > 0 {
		agg.AvgWatts = agg.PkgJoules / agg.Seconds
	}
	agg.EDP = agg.PkgJoules * agg.Seconds
	return agg
}
