package hw

import (
	"math"
	"strings"
	"testing"

	"polyufc/internal/ir"
)

// synthetic profiles for model-shape tests.
func cbProfile() *CacheProfile {
	return &CacheProfile{
		Flops: 2e9, Instances: 1e9, Loads: 3e9, Stores: 1e8,
		LevelHits: []int64{3e9, 5e7, 4e7}, LevelMisses: []int64{1e8, 5e7, 1e6},
		LLCMisses: 1e6, DRAMReadB: 64e6, HasParallel: true,
	}
}

func bbProfile() *CacheProfile {
	return &CacheProfile{
		Flops: 4e7, Instances: 2e7, Loads: 4e7, Stores: 1e7,
		LevelHits: []int64{3e7, 5e6, 2e6}, LevelMisses: []int64{2e7, 1.5e7, 1e7},
		LLCMisses: 1e7, DRAMReadB: 640e6, HasParallel: true,
	}
}

func argminEDP(rs []RunResult) (float64, float64) {
	best := rs[0]
	for _, r := range rs {
		if r.EDP < best.EDP {
			best = r
		}
	}
	return best.UncoreGHz, best.EDP
}

func TestCBKernelPrefersLowUncore(t *testing.T) {
	for _, p := range Platforms() {
		m := NewMachine(p)
		rs := m.SweepUncore(cbProfile())
		fBest, _ := argminEDP(rs)
		mid := (p.UncoreMin + p.UncoreMax) / 2
		if fBest > mid {
			t.Fatalf("%s: CB EDP optimum at %.1f GHz, expected below midpoint %.1f", p.Name, fBest, mid)
		}
		// Time must be nearly flat: within 5% between min and max freq.
		t0, t1 := rs[0].Seconds, rs[len(rs)-1].Seconds
		if math.Abs(t0-t1)/t1 > 0.05 {
			t.Fatalf("%s: CB time varies %.1f%% across uncore range", p.Name, 100*math.Abs(t0-t1)/t1)
		}
		// Energy must increase with frequency.
		if rs[0].PkgJoules >= rs[len(rs)-1].PkgJoules {
			t.Fatalf("%s: CB energy did not grow with uncore frequency", p.Name)
		}
	}
}

func TestBBKernelPrefersHighUncore(t *testing.T) {
	for _, p := range Platforms() {
		m := NewMachine(p)
		rs := m.SweepUncore(bbProfile())
		fBest, _ := argminEDP(rs)
		mid := (p.UncoreMin + p.UncoreMax) / 2
		if fBest <= mid {
			t.Fatalf("%s: BB EDP optimum at %.1f GHz, expected above midpoint %.1f", p.Name, fBest, mid)
		}
		// And strictly below max: saturation makes the top frequencies
		// pure power waste (the paper's gemver/mvt observation).
		if fBest >= p.UncoreMax {
			t.Fatalf("%s: BB EDP optimum at max frequency; saturation missing", p.Name)
		}
		// Time must improve measurably from min to max frequency (the
		// saturating curve leaves ~20-40% on BDW's narrow range).
		t0, t1 := rs[0].Seconds, rs[len(rs)-1].Seconds
		if t0 < 1.15*t1 {
			t.Fatalf("%s: BB time barely improves with uncore frequency (%.3f vs %.3f)", p.Name, t0, t1)
		}
	}
}

func TestUncoreStepsAndClamp(t *testing.T) {
	p := BDW()
	steps := p.UncoreSteps()
	if len(steps) != 17 { // 1.2..2.8 in 0.1 steps
		t.Fatalf("BDW steps = %d, want 17", len(steps))
	}
	r := RPL()
	if n := len(r.UncoreSteps()); n != 39 { // 0.8..4.6: the paper's ~39 steps
		t.Fatalf("RPL steps = %d, want 39", n)
	}
	if got := p.ClampCap(0.5); got != 1.2 {
		t.Fatalf("clamp low = %v", got)
	}
	if got := p.ClampCap(9.9); got != 2.8 {
		t.Fatalf("clamp high = %v", got)
	}
	if got := p.ClampCap(2.04); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("round = %v", got)
	}
}

func TestCapSwitchOverhead(t *testing.T) {
	m := NewMachine(BDW())
	m.ResetCounters()
	m.SetUncoreCap(2.0)
	m.SetUncoreCap(2.0) // no change: free
	m.SetUncoreCap(1.5)
	if m.CapSwitches() != 2 {
		t.Fatalf("switches = %d", m.CapSwitches())
	}
	_, _, sec := m.RAPL()
	want := 2 * BDW().CapLatency
	if math.Abs(sec-want) > 1e-12 {
		t.Fatalf("overhead = %g, want %g", sec, want)
	}
}

func TestRAPLUncoreZoneAvailability(t *testing.T) {
	b := NewMachine(BDW())
	b.Measure(bbProfile())
	_, u, _ := b.RAPL()
	if !math.IsNaN(u) {
		t.Fatal("BDW must not expose an uncore RAPL zone (fn. 15)")
	}
	r := NewMachine(RPL())
	r.Measure(bbProfile())
	_, u2, _ := r.RAPL()
	if math.IsNaN(u2) || u2 <= 0 {
		t.Fatalf("RPL uncore zone = %v", u2)
	}
}

func TestMeasureAccumulatesRAPL(t *testing.T) {
	m := NewMachine(RPL())
	m.ResetCounters()
	r1 := m.Measure(cbProfile())
	r2 := m.Measure(cbProfile())
	pkg, _, sec := m.RAPL()
	if math.Abs(pkg-(r1.PkgJoules+r2.PkgJoules)) > 1e-9 {
		t.Fatal("package energy does not accumulate")
	}
	if math.Abs(sec-(r1.Seconds+r2.Seconds)) > 1e-12 {
		t.Fatal("busy time does not accumulate")
	}
}

func TestRunFuncWithCaps(t *testing.T) {
	// A function with a cap, a kernel, a different cap, and a kernel.
	A := ir.NewArray("A", 8, 64)
	B := ir.NewArray("B", 8, 64)
	stmt := &ir.Statement{Name: "S", Flops: 1}
	i := ir.AffVar("i")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i}},
		{Array: B, Write: true, Index: []ir.AffExpr{i}},
	}
	nest := &ir.Nest{Label: "copy", Root: ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(63), stmt)}
	f := &ir.Func{Name: "k", Ops: []ir.Op{
		&ir.SetUncoreCap{GHz: 1.5},
		nest,
		&ir.SetUncoreCap{GHz: 2.5},
		nest,
	}}
	m := NewMachine(BDW())
	res, err := m.RunFunc(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 2*BDW().CapLatency {
		t.Fatalf("run time %g too small", res.Seconds)
	}
	if m.CapSwitches() != 2 {
		t.Fatalf("switches = %d", m.CapSwitches())
	}
	if res.EDP <= 0 || res.PkgJoules <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestProfileMemoized(t *testing.T) {
	A := ir.NewArray("A", 8, 128)
	stmt := &ir.Statement{Name: "S", Flops: 1}
	stmt.Accesses = []ir.Access{{Array: A, Write: true, Index: []ir.AffExpr{ir.AffVar("i")}}}
	nest := &ir.Nest{Label: "w", Root: ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(127), stmt)}
	m := NewMachine(RPL())
	p1, err := m.Profile(nest)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Profile(nest)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("profile not memoized")
	}
	if p1.Stores != 128 {
		t.Fatalf("stores = %d", p1.Stores)
	}
}

func TestParallelSpeedsUp(t *testing.T) {
	p := cbProfile()
	serial := *p
	serial.HasParallel = false
	m := NewMachine(RPL())
	rp := m.measureAt(p, 3.0, m.P.Threads)
	rs := m.measureAt(&serial, 3.0, 1)
	if rp.Seconds >= rs.Seconds/4 {
		t.Fatalf("parallel %.4fs vs serial %.4fs: insufficient speedup", rp.Seconds, rs.Seconds)
	}
}

func TestPlatformLookup(t *testing.T) {
	for _, name := range []string{"BDW", "bdw", "broadwell", "RPL", "rpl", "Rpl"} {
		if _, err := PlatformByName(name); err != nil {
			t.Fatalf("lookup %q: %v", name, err)
		}
	}
	p, err := PlatformByName("xyz")
	if err == nil {
		t.Fatal("unknown platform should return an error")
	}
	if p != nil {
		t.Fatal("unknown platform should not return a platform")
	}
	if !strings.Contains(err.Error(), "BDW") || !strings.Contains(err.Error(), "RPL") {
		t.Fatalf("lookup error should list registered backends, got %v", err)
	}
}

func TestMeasurementNoise(t *testing.T) {
	m := NewMachine(RPL())
	p := cbProfile()
	clean1 := m.Measure(p)
	clean2 := m.Measure(p)
	if clean1.Seconds != clean2.Seconds {
		t.Fatal("noiseless measurements must be deterministic")
	}
	m.SetNoise(42, 0.02)
	var sum, sumSq float64
	const n = 200
	for i := 0; i < n; i++ {
		r := m.Measure(p)
		ratio := r.Seconds / clean1.Seconds
		sum += ratio
		sumSq += ratio * ratio
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("noise mean ratio %.4f, want ~1", mean)
	}
	variance := sumSq/n - mean*mean
	if variance <= 0 || math.Sqrt(variance) > 0.05 {
		t.Fatalf("noise stddev %.4f out of range", math.Sqrt(variance))
	}
	// Same seed reproduces exactly.
	m1, m2 := NewMachine(RPL()), NewMachine(RPL())
	m1.SetNoise(7, 0.05)
	m2.SetNoise(7, 0.05)
	if m1.Measure(p).Seconds != m2.Measure(p).Seconds {
		t.Fatal("seeded noise must be reproducible")
	}
	// Disabling restores determinism.
	m.SetNoise(0, 0)
	if m.Measure(p).Seconds != clean1.Seconds {
		t.Fatal("disabling noise failed")
	}
}

func TestSetCoreFreq(t *testing.T) {
	m := NewMachine(BDW())
	if m.CoreFreq() != BDW().CoreBase {
		t.Fatalf("initial core freq = %f", m.CoreFreq())
	}
	f := m.SetCoreFreq(2.55)
	if f != 2.6 && f != 2.5 {
		t.Fatalf("rounded core freq = %f", f)
	}
	if got := m.SetCoreFreq(99); got != BDW().CoreMax {
		t.Fatalf("clamp high = %f", got)
	}
	if got := m.SetCoreFreq(0.1); got != BDW().CoreMin {
		t.Fatalf("clamp low = %f", got)
	}
	// Throttled compute-bound runs take proportionally longer.
	p := cbProfile()
	fast := m.MeasureAt(p, BDW().CoreMax, 2.0)
	slow := m.MeasureAt(p, BDW().CoreMin, 2.0)
	if slow.Seconds < 2*fast.Seconds {
		t.Fatalf("core throttle barely slowed CB kernel: %g vs %g", slow.Seconds, fast.Seconds)
	}
	if fast.CoreGHz != BDW().CoreMax || slow.CoreGHz != BDW().CoreMin {
		t.Fatal("CoreGHz not recorded")
	}
}
