// Package hw simulates the paper's hardware substrate: the evaluation
// machines of Table III (Broadwell Xeon E5-1650v4 and Raptor Lake
// i5-13600) plus any backend registered as a description file, their
// uncore (UFS) and core (P-state) frequency drivers, and RAPL-style
// energy counters. A Machine executes affine kernels through the exact
// cache simulator and converts the resulting event counts into time and
// power with a hidden "ground truth" model — distinct in structure and
// constants from the analytic Sec. V model PolyUFC derives, so the
// compiler's predictions are genuinely tested against measurement, as on
// real silicon.
//
// Platforms are constructed from internal/platform backend descriptions:
// the registry (not code) decides which machines exist.
package hw

import (
	"fmt"
	"math"

	"polyufc/internal/cachesim"
	"polyufc/internal/platform"
)

// Truth holds the hidden machine constants the hardware model uses. They
// live in the backend description (the simulator's silicon) and are not
// exported to the analytic model; PolyUFC must recover equivalent
// information through roofline micro-benchmarking.
type Truth = platform.Truth

// Platform describes one evaluation machine, constructed from a registry
// backend description.
type Platform struct {
	Name      string
	CPU       string
	Released  int
	Cores     int
	Threads   int
	CoreMin   float64 // GHz
	CoreMax   float64
	CoreBase  float64 // non-turbo base used by the performance governor
	UncoreMin float64
	UncoreMax float64
	// CapStep is the uncore cap granularity (0.1 GHz per the drivers).
	CapStep float64
	// CapLatency is the cost of one cap change (Sec. VII-F: 35us on BDW,
	// 21us on RPL).
	CapLatency float64 // seconds
	// HasUncoreRAPL reports whether the uncore energy zone is readable
	// (false on BDW, footnote 15).
	HasUncoreRAPL bool
	Cache         cachesim.Config
	// Socket is the topology index this platform views (0 for v1
	// single-socket descriptions and for FromBackend, which always views
	// socket 0 — the flattened top-level fields).
	Socket int
	// Backend is the description this platform was constructed from.
	Backend *platform.Backend
	truth   Truth
}

// FromBackend constructs a Platform from a validated backend description.
func FromBackend(b *platform.Backend) (*Platform, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	levels := make([]cachesim.LevelConfig, len(b.Cache))
	for i, lv := range b.Cache {
		levels[i] = cachesim.LevelConfig{
			Name: lv.Name, SizeBytes: lv.SizeBytes, LineSize: lv.LineSize, Assoc: lv.Assoc,
		}
	}
	return &Platform{
		Name: b.Name, CPU: b.CPU, Released: b.Released,
		Cores: b.Cores, Threads: b.Threads,
		CoreMin: b.CoreMinGHz, CoreMax: b.CoreMaxGHz, CoreBase: b.CoreBaseGHz,
		UncoreMin: b.UncoreMinGHz, UncoreMax: b.UncoreMaxGHz,
		CapStep: b.CapStepGHz, CapLatency: b.CapLatencySec,
		HasUncoreRAPL: b.HasUncoreRAPL,
		Cache:         cachesim.Config{Levels: levels},
		Backend:       b,
		truth:         b.Truth,
	}, nil
}

// SocketPlatform constructs the Platform view of one socket of a
// topology description: the socket's own uncore domain, cap grid, cache
// hierarchy and truth constants under the backend's name. Socket 0 is
// identical to FromBackend (v1 descriptions are their own socket 0), so
// single-socket consumers never see a difference.
func SocketPlatform(b *platform.Backend, socket int) (*Platform, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	topo := b.Topology()
	if socket < 0 || socket >= len(topo) {
		return nil, fmt.Errorf("hw: backend %q has %d socket(s), no socket %d", b.Name, len(topo), socket)
	}
	if socket == 0 {
		return FromBackend(b)
	}
	s := topo[socket]
	levels := make([]cachesim.LevelConfig, len(s.Cache))
	for i, lv := range s.Cache {
		levels[i] = cachesim.LevelConfig{
			Name: lv.Name, SizeBytes: lv.SizeBytes, LineSize: lv.LineSize, Assoc: lv.Assoc,
		}
	}
	return &Platform{
		Name: b.Name, CPU: b.CPU, Released: b.Released,
		Cores: s.Cores, Threads: s.Threads,
		CoreMin: s.CoreMinGHz, CoreMax: s.CoreMaxGHz, CoreBase: s.CoreBaseGHz,
		UncoreMin: s.UncoreMinGHz, UncoreMax: s.UncoreMaxGHz,
		CapStep: s.CapStepGHz, CapLatency: s.CapLatencySec,
		HasUncoreRAPL: s.HasUncoreRAPL,
		Cache:         cachesim.Config{Levels: levels},
		Socket:        socket,
		Backend:       b,
		truth:         s.Truth,
	}, nil
}

// mustByName resolves a registry backend that is known to be embedded.
func mustByName(name string) *Platform {
	p, err := PlatformByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// BDW returns the Broadwell platform (Xeon E5-1650 v4, 6C/12T,
// core 1.2-4.0 GHz, uncore 1.2-2.8 GHz) from its embedded description.
func BDW() *Platform { return mustByName("BDW") }

// RPL returns the Raptor Lake platform (i5-13600, 14C/20T,
// core 0.8-5.0 GHz, uncore 0.8-4.6 GHz) from its embedded description.
func RPL() *Platform { return mustByName("RPL") }

// Platforms returns the paper's evaluation machines of Table III — the
// registered backends marked paper, which the golden experiments sweep.
func Platforms() []*Platform {
	var out []*Platform
	for _, b := range platform.Paper() {
		p, err := FromBackend(b)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// PlatformByName resolves a platform through the backend registry by
// canonical name or alias (case-insensitive). Unknown names return an
// error listing the registered backends, never a nil platform.
func PlatformByName(name string) (*Platform, error) {
	b, err := platform.Lookup(name)
	if err != nil {
		return nil, err
	}
	return FromBackend(b)
}

// UncoreSteps returns the allowed uncore cap frequencies: the grid
// anchored at UncoreMin, CapStep apart, up to the largest point that
// still fits in the range. Steps that do not divide the range evenly
// leave UncoreMax off the grid rather than emitting an out-of-range
// point.
func (p *Platform) UncoreSteps() []float64 {
	n := GridSize(p.UncoreMin, p.UncoreMax, p.CapStep)
	out := make([]float64, n)
	for i := range out {
		out[i] = GridPoint(p.UncoreMin, p.CapStep, i)
	}
	return out
}

// GridSize counts the grid points min, min+step, ... that fit in
// [min, max]; degenerate ranges or steps yield the single point min.
// It is exported because serialized artifacts (plan tables) regenerate
// cap grids from (min, max, step) and must agree with UncoreSteps.
func GridSize(min, max, step float64) int {
	if step <= 0 || max < min {
		return 1
	}
	return int((max-min)/step+1e-9) + 1
}

// GridPoint returns min + i*step snapped to 3 decimals, so 0.1 and
// 0.05 GHz grids render exactly. The index-based anchoring (rather than
// accumulating additions) is what keeps fractional steps float-drift
// free; every cap-grid consumer must derive points through it.
func GridPoint(min, step float64, i int) float64 {
	return math.Round((min+float64(i)*step)*1000) / 1000
}

// GridIndex returns the index of the grid point nearest f, clamped into
// the grid anchored at min: GridPoint(min, step, GridIndex(...)) is
// always an element of the grid.
func GridIndex(min, max, step, f float64) int {
	n := GridSize(min, max, step)
	if step <= 0 {
		return 0
	}
	i := int(math.Round((f - min) / step))
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	return i
}

// clampToGrid rounds f to the nearest grid point anchored at min and
// clamps to the grid's range — the returned value is always an element
// of the grid, even when step does not divide max-min evenly.
func clampToGrid(min, max, step, f float64) float64 {
	return GridPoint(min, step, GridIndex(min, max, step, f))
}

// ClampCap rounds a requested cap to the platform's step grid and range;
// the result is always one of UncoreSteps.
func (p *Platform) ClampCap(f float64) float64 {
	if p.CapStep <= 0 {
		return math.Min(math.Max(f, p.UncoreMin), p.UncoreMax)
	}
	return clampToGrid(p.UncoreMin, p.UncoreMax, p.CapStep, f)
}
