// Package hw simulates the paper's hardware substrate: the two Intel
// microarchitectures of Table III (Broadwell Xeon E5-1650v4 and Raptor
// Lake i5-13600), their uncore (UFS) and core (P-state) frequency drivers,
// and RAPL-style energy counters. A Machine executes affine kernels
// through the exact cache simulator and converts the resulting event
// counts into time and power with a hidden "ground truth" model — distinct
// in structure and constants from the analytic Sec. V model PolyUFC
// derives, so the compiler's predictions are genuinely tested against
// measurement, as on real silicon.
package hw

import (
	"math"

	"polyufc/internal/cachesim"
)

// Truth holds the hidden machine constants the hardware model uses. They
// are not exported to the analytic model; PolyUFC must recover equivalent
// information through roofline micro-benchmarking.
type Truth struct {
	// FlopsPerCycle is the per-core FPU throughput (AVX FMA lanes).
	FlopsPerCycle float64
	// HitLatencyNs is the load-to-use latency per cache level.
	HitLatencyNs []float64
	// DRAMLatCoefNsGHz and DRAMLatBaseNs give the per-miss DRAM service
	// latency a/f + b (ns, f in GHz): the uncore clock gates the path.
	DRAMLatCoefNsGHz float64
	DRAMLatBaseNs    float64
	// Sustained DRAM bandwidth follows the saturating interconnect curve
	// bw(f) = BWPeakGBs * f / (f + BWKneeGHz): per-byte service time is
	// then exactly hyperbolic in f (a/f + b), the shape the paper observes
	// and fits on real uncore hardware; beyond the knee, extra uncore
	// frequency is over-provisioning (Sec. II-F).
	BWPeakGBs float64
	BWKneeGHz float64
	// MLP is the per-core memory-level parallelism (outstanding misses);
	// MLPSystem caps the whole-chip total.
	MLP       float64
	MLPSystem float64
	// ILP overlaps cache-hit latencies with computation.
	ILP float64
	// Overlap is the fraction of the smaller of compute/memory time not
	// hidden under the larger.
	Overlap float64
	// PConstW is constant (static + board) power.
	PConstW float64
	// CoreIdleWPerGHz is core clock-tree power per GHz (paid whenever the
	// cores are clocked, even when stalled on memory).
	CoreIdleWPerGHz float64
	// CoreJPerFlop is dynamic core energy per arithmetic operation.
	CoreJPerFlop float64
	// UncoreIdleWPerGHz is uncore clock-tree power per GHz, always paid.
	UncoreIdleWPerGHz float64
	// UncoreActWPerGHz and UncoreActBaseW scale with memory utilization:
	// P_uncore_dyn = (act*f + base) * utilization.
	UncoreActWPerGHz float64
	UncoreActBaseW   float64
}

// Platform describes one evaluation machine (Table III).
type Platform struct {
	Name      string
	CPU       string
	Released  int
	Cores     int
	Threads   int
	CoreMin   float64 // GHz
	CoreMax   float64
	CoreBase  float64 // non-turbo base used by the performance governor
	UncoreMin float64
	UncoreMax float64
	// CapStep is the uncore cap granularity (0.1 GHz per the drivers).
	CapStep float64
	// CapLatency is the cost of one cap change (Sec. VII-F: 35us on BDW,
	// 21us on RPL).
	CapLatency float64 // seconds
	// HasUncoreRAPL reports whether the uncore energy zone is readable
	// (false on BDW, footnote 15).
	HasUncoreRAPL bool
	Cache         cachesim.Config
	truth         Truth
}

// BDW returns the Broadwell platform (Xeon E5-1650 v4, 6C/12T,
// core 1.2-4.0 GHz, uncore 1.2-2.8 GHz).
func BDW() *Platform {
	return &Platform{
		Name: "BDW", CPU: "Xeon E5-1650 v4 (6C/12T)", Released: 2015,
		Cores: 6, Threads: 12,
		CoreMin: 1.2, CoreMax: 4.0, CoreBase: 3.6,
		UncoreMin: 1.2, UncoreMax: 2.8,
		CapStep: 0.1, CapLatency: 35e-6,
		HasUncoreRAPL: false,
		Cache: cachesim.Config{Levels: []cachesim.LevelConfig{
			{Name: "L1", SizeBytes: 32 << 10, LineSize: 64, Assoc: 8},
			{Name: "L2", SizeBytes: 256 << 10, LineSize: 64, Assoc: 8},
			{Name: "LLC", SizeBytes: 15 << 20, LineSize: 64, Assoc: 20},
		}},
		truth: Truth{
			FlopsPerCycle:    16,
			HitLatencyNs:     []float64{1.1, 3.3, 13.0},
			DRAMLatCoefNsGHz: 42, DRAMLatBaseNs: 52,
			BWPeakGBs: 55, BWKneeGHz: 0.55,
			MLP: 10, MLPSystem: 48, ILP: 4, Overlap: 0.2,
			PConstW: 30, CoreIdleWPerGHz: 2.2, CoreJPerFlop: 1.6e-10,
			UncoreIdleWPerGHz: 4.2, UncoreActWPerGHz: 8.5, UncoreActBaseW: 2.0,
		},
	}
}

// RPL returns the Raptor Lake platform (i5-13600, 14C/20T,
// core 0.8-5.0 GHz, uncore 0.8-4.6 GHz).
func RPL() *Platform {
	return &Platform{
		Name: "RPL", CPU: "Intel i5-13600 (14C/20T)", Released: 2023,
		Cores: 14, Threads: 20,
		CoreMin: 0.8, CoreMax: 5.0, CoreBase: 3.9,
		UncoreMin: 0.8, UncoreMax: 4.6,
		CapStep: 0.1, CapLatency: 21e-6,
		HasUncoreRAPL: true,
		Cache: cachesim.Config{Levels: []cachesim.LevelConfig{
			{Name: "L1", SizeBytes: 48 << 10, LineSize: 64, Assoc: 12},
			{Name: "L2", SizeBytes: 2 << 20, LineSize: 64, Assoc: 16},
			{Name: "LLC", SizeBytes: 24 << 20, LineSize: 64, Assoc: 12},
		}},
		truth: Truth{
			FlopsPerCycle:    16,
			HitLatencyNs:     []float64{0.9, 2.8, 15.0},
			DRAMLatCoefNsGHz: 30, DRAMLatBaseNs: 46,
			BWPeakGBs: 75, BWKneeGHz: 1.3,
			MLP: 14, MLPSystem: 64, ILP: 4, Overlap: 0.2,
			PConstW: 18, CoreIdleWPerGHz: 2.6, CoreJPerFlop: 1.1e-10,
			UncoreIdleWPerGHz: 2.6, UncoreActWPerGHz: 5.5, UncoreActBaseW: 1.8,
		},
	}
}

// Platforms returns the two evaluation machines of Table III.
func Platforms() []*Platform { return []*Platform{BDW(), RPL()} }

// PlatformByName returns the named platform or nil.
func PlatformByName(name string) *Platform {
	switch name {
	case "BDW", "bdw":
		return BDW()
	case "RPL", "rpl":
		return RPL()
	}
	return nil
}

// UncoreSteps returns the allowed uncore cap frequencies, CapStep apart.
func (p *Platform) UncoreSteps() []float64 {
	var out []float64
	for f := p.UncoreMin; f <= p.UncoreMax+1e-9; f += p.CapStep {
		out = append(out, roundStep(f, p.CapStep))
	}
	return out
}

func roundStep(f, step float64) float64 {
	n := int(f/step + 0.5)
	// Snap to 3 decimals so 0.1 GHz grids render exactly.
	return math.Round(float64(n)*step*1000) / 1000
}

// ClampCap rounds a requested cap to the platform's step and range.
func (p *Platform) ClampCap(f float64) float64 {
	f = roundStep(f, p.CapStep)
	if f < p.UncoreMin {
		f = p.UncoreMin
	}
	if f > p.UncoreMax {
		f = p.UncoreMax
	}
	return f
}
