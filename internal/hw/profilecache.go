package hw

import (
	"context"

	"polyufc/internal/ir"
	"polyufc/internal/parallel"
)

// profileKey identifies one memoized profile. Cache behaviour depends only
// on the nest and the platform's cache hierarchy, so nest identity plus
// platform name is an exact key as long as nests are not mutated after
// compilation — which core.Compile guarantees (Results are shared
// read-only).
type profileKey struct {
	nest *ir.Nest
	plat string
}

// ProfileCache is a concurrency-safe, singleflight memo of nest profiles
// shared across Machines. The exact cache simulation behind ProfileNest
// dominates sweep cost, and evaluation sweeps profile the same compiled
// nests over and over (one fresh Machine per worker), so sharing profiles
// across machines is the difference between cold and steady-state sweeps.
//
// The cache keys by nest pointer and therefore keeps nests alive; reset it
// together with whatever compile cache owns the nests. The zero value is
// ready to use.
type ProfileCache struct {
	memo parallel.Memo[profileKey, *CacheProfile]
}

// profile returns the memoized profile of nest on platform p, simulating
// it on the first request. Concurrent requests for the same nest run the
// simulation once.
func (c *ProfileCache) profile(nest *ir.Nest, p *Platform) (*CacheProfile, error) {
	return c.memo.Do(context.Background(), profileKey{nest, p.Name},
		func() (*CacheProfile, error) {
			return ProfileNest(nest, p.Cache)
		})
}

// SetLimit bounds the cache to n profiles with LRU eviction (n <= 0
// restores the unbounded default). Long-running processes must set a
// limit — an unbounded memo is a memory leak under open-ended traffic.
func (c *ProfileCache) SetLimit(n int) { c.memo.SetLimit(n) }

// Stats returns the hit and miss counts so far.
func (c *ProfileCache) Stats() (hits, misses int64) { return c.memo.Stats() }

// Evictions returns how many profiles the LRU bound has dropped.
func (c *ProfileCache) Evictions() int64 { return c.memo.Evictions() }

// Len returns the number of cached profiles.
func (c *ProfileCache) Len() int { return c.memo.Len() }

// Reset drops every cached profile and zeroes the statistics.
func (c *ProfileCache) Reset() { c.memo.Reset() }
