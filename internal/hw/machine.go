package hw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"polyufc/internal/cachesim"
	"polyufc/internal/faults"
	"polyufc/internal/interp"
	"polyufc/internal/ir"
)

// CacheProfile is the frequency-independent execution profile of one
// kernel on one platform: event counts from the exact simulator. Profiles
// are reused across uncore frequency sweeps, since cache behaviour does
// not depend on the uncore clock.
type CacheProfile struct {
	Flops     int64
	Instances int64
	Loads     int64
	Stores    int64
	// LevelHits[i] are hits at cache level i.
	LevelHits []int64
	// LevelMisses[i] are misses at cache level i.
	LevelMisses []int64
	LLCMisses   int64
	DRAMReadB   int64
	DRAMWriteB  int64
	HasParallel bool
	Label       string
}

// Machine is a platform with driver state and RAPL-style energy counters.
type Machine struct {
	P *Platform
	// uncoreCap is the active cap set through the UFS driver.
	uncoreCap float64
	// coreFreq is the active core frequency set through the P-state
	// driver (the performance governor pins it at CoreBase by default).
	coreFreq float64
	// capSwitches counts cap changes (each costs CapLatency).
	capSwitches int64
	// RAPL accumulators (joules) and total busy time (seconds).
	pkgEnergy    float64
	uncoreEnergy float64
	busyTime     float64
	profiles     map[*ir.Nest]*CacheProfile
	// shared, when set, backs Profile with a cross-machine profile memo.
	shared *ProfileCache
	// noise, when non-nil, applies seeded multiplicative jitter to each
	// measurement — the run-to-run variation real RAPL/timing exhibits.
	noise      *rand.Rand
	noiseSigma float64
	// faults, when non-nil, arms the injectable UFS failure modes of the
	// Fault* points below; prevCap backs the stale read-back model and
	// thermalOverrides counts silent firmware cap raises.
	faults           *faults.Registry
	prevCap          float64
	thermalOverrides int64
}

// SetNoise enables deterministic measurement jitter: each Measure result's
// time and energy are scaled by independent factors drawn from
// N(1, sigma). sigma = 0 disables it again.
func (m *Machine) SetNoise(seed int64, sigma float64) {
	if sigma <= 0 {
		m.noise = nil
		m.noiseSigma = 0
		return
	}
	m.noise = rand.New(rand.NewSource(seed))
	m.noiseSigma = sigma
}

// jitter perturbs a result in place when noise is enabled.
func (m *Machine) jitter(r *RunResult) {
	if m.noise == nil {
		return
	}
	ft := 1 + m.noise.NormFloat64()*m.noiseSigma
	fe := 1 + m.noise.NormFloat64()*m.noiseSigma
	if ft < 0.5 {
		ft = 0.5
	}
	if fe < 0.5 {
		fe = 0.5
	}
	r.Seconds *= ft
	r.PkgJoules *= fe
	r.UncoreJoules *= fe
	r.AvgWatts = r.PkgJoules / r.Seconds
	r.EDP = r.PkgJoules * r.Seconds
	r.GFlops /= ft
	r.DRAMGBs /= ft
}

// NewMachine boots a platform with the uncore at its maximum frequency
// (the default UFS driver behaviour under load: no capping, the
// over-provisioning the paper targets).
func NewMachine(p *Platform) *Machine {
	return &Machine{P: p, uncoreCap: p.UncoreMax, coreFreq: p.CoreBase,
		prevCap: p.UncoreMax, profiles: map[*ir.Nest]*CacheProfile{}}
}

// UncoreCap returns the active uncore frequency cap in GHz.
func (m *Machine) UncoreCap() float64 { return m.uncoreCap }

// CoreFreq returns the active core frequency in GHz.
func (m *Machine) CoreFreq() float64 { return m.coreFreq }

// SetCoreFreq emulates the intel_pstate driver: the requested frequency
// is rounded to the core grid (anchored at CoreMin, CapStep apart) and
// clamped to the platform's core range; a change costs the same
// transition latency as an uncore cap.
func (m *Machine) SetCoreFreq(ghz float64) float64 {
	f := clampToGrid(m.P.CoreMin, m.P.CoreMax, m.P.CapStep, ghz)
	if f != m.coreFreq {
		m.coreFreq = f
		m.capSwitches++
		m.busyTime += m.P.CapLatency
		m.pkgEnergy += m.P.CapLatency * m.P.truth.PConstW
	}
	return f
}

// CapSwitches returns how many cap changes the UFS driver performed.
func (m *Machine) CapSwitches() int64 { return m.capSwitches }

// SetUncoreCap emulates the intel_uncore_frequency driver on a healthy
// path: the requested cap is clamped to the platform range and 0.1 GHz
// granularity; changing the cap costs CapLatency of wall-clock time
// (accounted to busyTime and constant power). It never fails, even with
// faults armed — the fallible driver interface is WriteUncoreCap.
func (m *Machine) SetUncoreCap(ghz float64) float64 {
	f := m.P.ClampCap(ghz)
	if f != m.uncoreCap {
		m.prevCap = m.uncoreCap
		m.uncoreCap = f
		m.capSwitches++
		m.busyTime += m.P.CapLatency
		m.pkgEnergy += m.P.CapLatency * m.P.truth.PConstW
	}
	return f
}

// Named fault points of the simulated UFS driver (see internal/faults).
const (
	// FaultCapWriteBusy makes WriteUncoreCap fail with ErrCapBusy, the
	// transient EBUSY a firmware-mediated MSR write returns under
	// contention (Sec. VII-F).
	FaultCapWriteBusy = "ufs.write.ebusy"
	// FaultCapWriteClamp makes the firmware silently apply one CapStep
	// below the requested value (detected only by read-back).
	FaultCapWriteClamp = "ufs.write.clamp"
	// FaultCapReadStale makes ReadUncoreCap return the previous cap value
	// once, modelling a read racing the in-flight firmware update.
	FaultCapReadStale = "ufs.read.stale"
	// FaultThermalOverride makes a measurement end with the firmware
	// silently raising the cap to the platform maximum (a thermal/turbo
	// event); only a watchdog re-read can detect it.
	FaultThermalOverride = "ufs.thermal.override"
	// FaultMeasureDrift makes the hidden hardware model run slower than
	// the calibrated constants predict (DIMM training gone stale, a BIOS
	// update, silent memory-controller throttling): every measurement the
	// fault fires on takes DriftTimeFactor longer at the same power. The
	// model itself is untouched, so model-vs-measured residuals degrade —
	// the signal a calibration-drift watchdog keys on — and a re-fit
	// against the drifted machine recovers them.
	FaultMeasureDrift = "hw.measure.drift"
)

// DriftTimeFactor is the time dilation FaultMeasureDrift applies. It is
// sized well past the model's worst healthy per-kernel residual (~18% on
// memory-bound nests), so drifted and healthy residual populations do
// not overlap and the watchdog threshold can sit between them.
const DriftTimeFactor = 1.5

// ErrCapBusy is the transient UFS driver write failure.
var ErrCapBusy = errors.New("hw: uncore cap write: device busy")

// SetFaults arms (or, with nil, disarms) the machine's injectable UFS
// failure modes.
func (m *Machine) SetFaults(r *faults.Registry) { m.faults = r }

// Faults returns the armed registry, nil when disabled.
func (m *Machine) Faults() *faults.Registry { return m.faults }

// ThermalOverrides counts silent firmware cap raises so far.
func (m *Machine) ThermalOverrides() int64 { return m.thermalOverrides }

// WriteUncoreCap is the fallible driver write the hardened cap path uses:
// with faults armed it can fail transiently (ErrCapBusy — the attempted
// ioctl still pays the transition latency) or silently apply a
// firmware-clamped value below the request. It returns the value the
// driver claims to have applied; callers that need certainty must verify
// through ReadUncoreCap (see CapController).
func (m *Machine) WriteUncoreCap(ghz float64) (float64, error) {
	if err := m.faults.Hit(FaultCapWriteBusy); err != nil {
		m.busyTime += m.P.CapLatency
		m.pkgEnergy += m.P.CapLatency * m.P.truth.PConstW
		return m.uncoreCap, fmt.Errorf("%w (requested %.1f GHz): %v", ErrCapBusy, ghz, err)
	}
	f := m.P.ClampCap(ghz)
	if m.faults.Hit(FaultCapWriteClamp) != nil {
		f = m.P.ClampCap(f - m.P.CapStep)
	}
	return m.SetUncoreCap(f), nil
}

// ReadUncoreCap reads the active cap back through the driver interface;
// with the stale-read fault armed it can return the previous value.
func (m *Machine) ReadUncoreCap() float64 {
	if m.faults.Hit(FaultCapReadStale) != nil {
		return m.prevCap
	}
	return m.uncoreCap
}

// sleep models a busy backoff wait: wall-clock time at constant power.
func (m *Machine) sleep(sec float64) {
	if sec <= 0 {
		return
	}
	m.busyTime += sec
	m.pkgEnergy += sec * m.P.truth.PConstW
}

// ResetCounters clears the RAPL accumulators and driver statistics.
func (m *Machine) ResetCounters() {
	m.pkgEnergy, m.uncoreEnergy, m.busyTime = 0, 0, 0
	m.capSwitches = 0
}

// RAPL returns the accumulated package energy, uncore-zone energy (NaN on
// platforms without the uncore zone, per footnote 15) and busy time.
func (m *Machine) RAPL() (pkgJ, uncoreJ, seconds float64) {
	u := m.uncoreEnergy
	if !m.P.HasUncoreRAPL {
		u = math.NaN()
	}
	return m.pkgEnergy, u, m.busyTime
}

// SetProfileCache attaches a shared profile memo: Profile consults it
// before simulating, so machines created per sweep worker reuse each
// other's simulations. Pass nil to detach.
func (m *Machine) SetProfileCache(c *ProfileCache) { m.shared = c }

// Profile executes the kernel once through the exact cache simulator and
// returns its frequency-independent profile. Profiles are memoized per
// nest on the machine and, when a shared cache is attached, across
// machines.
func (m *Machine) Profile(nest *ir.Nest) (*CacheProfile, error) {
	if p, ok := m.profiles[nest]; ok {
		return p, nil
	}
	var p *CacheProfile
	var err error
	if m.shared != nil {
		p, err = m.shared.profile(nest, m.P)
	} else {
		p, err = ProfileNest(nest, m.P.Cache)
	}
	if err != nil {
		return nil, err
	}
	m.profiles[nest] = p
	return p, nil
}

// ProfileNest runs a nest through a cache hierarchy and collects counts.
func ProfileNest(nest *ir.Nest, cache cachesim.Config) (*CacheProfile, error) {
	sim, err := cachesim.New(cache)
	if err != nil {
		return nil, err
	}
	st, err := interp.RunNest(nest, interp.TracerFunc(func(a, sz int64, w bool) {
		sim.Access(a, sz, w)
	}))
	if err != nil {
		return nil, err
	}
	p := &CacheProfile{
		Flops: st.Flops, Instances: st.Instances,
		Loads: st.Loads, Stores: st.Stores,
		LLCMisses: sim.LLCStats().Misses,
		DRAMReadB: sim.DRAMReadBytes, DRAMWriteB: sim.DRAMWriteBytes,
		Label: nest.Label,
	}
	for i := 0; i < sim.NumLevels(); i++ {
		p.LevelHits = append(p.LevelHits, sim.LevelStats(i).Hits)
		p.LevelMisses = append(p.LevelMisses, sim.LevelStats(i).Misses)
	}
	if nest.Root != nil && nest.Root.Parallel {
		p.HasParallel = true
	}
	return p, nil
}

// RunResult is one hardware measurement.
type RunResult struct {
	Seconds      float64
	PkgJoules    float64
	UncoreJoules float64
	AvgWatts     float64
	EDP          float64 // joule-seconds
	GFlops       float64
	DRAMGBs      float64 // achieved DRAM bandwidth
	UncoreGHz    float64
	CoreGHz      float64
	Threads      int
}

// Measure converts a profile into time and energy at the machine's current
// uncore cap, using the hidden ground-truth model. The RAPL counters
// accumulate.
func (m *Machine) Measure(p *CacheProfile) RunResult {
	threads := 1
	if p.HasParallel {
		threads = m.P.Threads
	}
	r := m.measureAtJoint(p, m.coreFreq, m.uncoreCap, threads)
	m.jitter(&r)
	m.pkgEnergy += r.PkgJoules
	m.uncoreEnergy += r.UncoreJoules
	m.busyTime += r.Seconds
	// Thermal-override fault: the firmware silently raises the cap back to
	// the maximum during the run. No switch is counted — the driver never
	// saw it; only a watchdog re-read (CapController.Reassert) catches it.
	if m.uncoreCap < m.P.UncoreMax && m.faults.Hit(FaultThermalOverride) != nil {
		m.prevCap = m.uncoreCap
		m.uncoreCap = m.P.UncoreMax
		m.thermalOverrides++
	}
	return r
}

// measureAt measures at the base core clock (the performance governor's
// pin) and the given uncore frequency.
func (m *Machine) measureAt(p *CacheProfile, fU float64, threads int) RunResult {
	return m.measureAtJoint(p, m.P.CoreBase, fU, threads)
}

// measureAtJoint is the hidden hardware model, parametric in both
// frequency domains. Core-clocked resources (FPU throughput, L1/L2/LLC hit
// latencies) scale with f_core; core dynamic energy per flop follows the
// classic f²-with-voltage-floor DVFS law.
func (m *Machine) measureAtJoint(p *CacheProfile, fC, fU float64, threads int) RunResult {
	t := m.P.truth
	th := float64(threads)

	// Compute time: FPU throughput at the core clock.
	flopsPerSec := th * t.FlopsPerCycle * fC * 1e9
	tc := float64(p.Flops) / flopsPerSec

	// Cache hit service time (core-clocked), overlapped by ILP and spread
	// over threads.
	clockScale := m.P.CoreBase / fC
	var tHits float64
	for i, hits := range p.LevelHits {
		lat := t.HitLatencyNs[minInt(i, len(t.HitLatencyNs)-1)] * 1e-9 * clockScale
		tHits += float64(hits) * lat
	}
	tHits /= t.ILP * th

	// DRAM: per-miss latency a/f + b overlapped by MLP, against the
	// saturating bandwidth of the uncore interconnect.
	missLat := (t.DRAMLatCoefNsGHz/fU + t.DRAMLatBaseNs) * 1e-9
	mlp := minF(t.MLP*th, t.MLPSystem)
	tLat := float64(p.LLCMisses) * missLat / mlp
	bw := t.BWPeakGBs * fU / (fU + t.BWKneeGHz) * 1e9
	tBW := float64(p.DRAMReadB) / bw
	tDRAM := math.Max(tLat, tBW)

	tm := tHits + tDRAM
	sec := math.Max(tc, tm) + t.Overlap*math.Min(tc, tm)
	if sec <= 0 {
		sec = 1e-12
	}
	// Calibration drift: the machine got uniformly slower than the truth
	// the constants were fitted against. Applied here — not in Measure —
	// so every measurement path (serving, sweeps, and crucially a
	// re-calibration's micro-benchmarks) sees the same drifted hardware.
	if m.faults.Hit(FaultMeasureDrift) != nil {
		sec *= DriftTimeFactor
	}

	// Power. Core dynamic energy per flop scales as 0.35 + 0.65*(f/base)^2
	// (frequency-proportional with the voltage-squared term above a
	// leakage/voltage floor).
	rel := fC / m.P.CoreBase
	eFlop := t.CoreJPerFlop * (0.35 + 0.65*rel*rel)
	pCore := t.CoreIdleWPerGHz*fC + eFlop*float64(p.Flops)/sec
	util := math.Min(1, (float64(p.DRAMReadB)/sec)/bw)
	pUncore := t.UncoreIdleWPerGHz*fU + (t.UncoreActWPerGHz*fU+t.UncoreActBaseW)*util
	pTotal := t.PConstW + pCore + pUncore

	energy := pTotal * sec
	return RunResult{
		Seconds:      sec,
		PkgJoules:    energy,
		UncoreJoules: pUncore * sec,
		AvgWatts:     pTotal,
		EDP:          energy * sec,
		GFlops:       float64(p.Flops) / sec / 1e9,
		DRAMGBs:      float64(p.DRAMReadB) / sec / 1e9,
		UncoreGHz:    fU,
		CoreGHz:      fC,
		Threads:      threads,
	}
}

// RunNest profiles (memoized) and measures a nest at the current cap.
func (m *Machine) RunNest(nest *ir.Nest) (RunResult, error) {
	p, err := m.Profile(nest)
	if err != nil {
		return RunResult{}, err
	}
	return m.Measure(p), nil
}

// RunFunc executes a function's op sequence: cap ops drive the UFS driver,
// affine nests execute on the machine. It returns the aggregate result.
func (m *Machine) RunFunc(f *ir.Func) (RunResult, error) {
	var agg RunResult
	agg.UncoreGHz = m.uncoreCap
	for _, op := range f.Ops {
		switch x := op.(type) {
		case *ir.SetUncoreCap:
			before := m.busyTime
			beforeE := m.pkgEnergy
			m.SetUncoreCap(x.GHz)
			agg.Seconds += m.busyTime - before
			agg.PkgJoules += m.pkgEnergy - beforeE
		case *ir.Nest:
			r, err := m.RunNest(x)
			if err != nil {
				return agg, err
			}
			agg.Seconds += r.Seconds
			agg.PkgJoules += r.PkgJoules
			agg.UncoreJoules += r.UncoreJoules
		default:
			return agg, fmt.Errorf("hw: cannot execute %s", op.OpName())
		}
	}
	if agg.Seconds > 0 {
		agg.AvgWatts = agg.PkgJoules / agg.Seconds
	}
	agg.EDP = agg.PkgJoules * agg.Seconds
	return agg, nil
}

// MeasureAt measures a profile at explicit core and uncore frequencies
// without touching driver state or the RAPL counters — the hook the
// roofline micro-benchmarks and frequency-domain studies use.
func (m *Machine) MeasureAt(p *CacheProfile, fCore, fUncore float64) RunResult {
	threads := 1
	if p.HasParallel {
		threads = m.P.Threads
	}
	return m.measureAtJoint(p, fCore, fUncore, threads)
}

// SweepUncore measures a profile at every allowed uncore frequency without
// touching driver state — the instrument behind the Fig. 1 curves.
func (m *Machine) SweepUncore(p *CacheProfile) []RunResult {
	threads := 1
	if p.HasParallel {
		threads = m.P.Threads
	}
	var out []RunResult
	for _, f := range m.P.UncoreSteps() {
		out = append(out, m.measureAt(p, f, threads))
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
