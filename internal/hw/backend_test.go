package hw

import (
	"math"
	"reflect"
	"testing"

	"polyufc/internal/cachesim"
	"polyufc/internal/platform"
)

// legacyBDW and legacyRPL are the pre-registry hardcoded constructors,
// kept verbatim as the equivalence oracle: the embedded descriptions
// must reconstruct them field for field.
func legacyBDW() *Platform {
	return &Platform{
		Name: "BDW", CPU: "Xeon E5-1650 v4 (6C/12T)", Released: 2015,
		Cores: 6, Threads: 12,
		CoreMin: 1.2, CoreMax: 4.0, CoreBase: 3.6,
		UncoreMin: 1.2, UncoreMax: 2.8,
		CapStep: 0.1, CapLatency: 35e-6,
		HasUncoreRAPL: false,
		Cache: cachesim.Config{Levels: []cachesim.LevelConfig{
			{Name: "L1", SizeBytes: 32 << 10, LineSize: 64, Assoc: 8},
			{Name: "L2", SizeBytes: 256 << 10, LineSize: 64, Assoc: 8},
			{Name: "LLC", SizeBytes: 15 << 20, LineSize: 64, Assoc: 20},
		}},
		truth: Truth{
			FlopsPerCycle:    16,
			HitLatencyNs:     []float64{1.1, 3.3, 13.0},
			DRAMLatCoefNsGHz: 42, DRAMLatBaseNs: 52,
			BWPeakGBs: 55, BWKneeGHz: 0.55,
			MLP: 10, MLPSystem: 48, ILP: 4, Overlap: 0.2,
			PConstW: 30, CoreIdleWPerGHz: 2.2, CoreJPerFlop: 1.6e-10,
			UncoreIdleWPerGHz: 4.2, UncoreActWPerGHz: 8.5, UncoreActBaseW: 2.0,
		},
	}
}

func legacyRPL() *Platform {
	return &Platform{
		Name: "RPL", CPU: "Intel i5-13600 (14C/20T)", Released: 2023,
		Cores: 14, Threads: 20,
		CoreMin: 0.8, CoreMax: 5.0, CoreBase: 3.9,
		UncoreMin: 0.8, UncoreMax: 4.6,
		CapStep: 0.1, CapLatency: 21e-6,
		HasUncoreRAPL: true,
		Cache: cachesim.Config{Levels: []cachesim.LevelConfig{
			{Name: "L1", SizeBytes: 48 << 10, LineSize: 64, Assoc: 12},
			{Name: "L2", SizeBytes: 2 << 20, LineSize: 64, Assoc: 16},
			{Name: "LLC", SizeBytes: 24 << 20, LineSize: 64, Assoc: 12},
		}},
		truth: Truth{
			FlopsPerCycle:    16,
			HitLatencyNs:     []float64{0.9, 2.8, 15.0},
			DRAMLatCoefNsGHz: 30, DRAMLatBaseNs: 46,
			BWPeakGBs: 75, BWKneeGHz: 1.3,
			MLP: 14, MLPSystem: 64, ILP: 4, Overlap: 0.2,
			PConstW: 18, CoreIdleWPerGHz: 2.6, CoreJPerFlop: 1.1e-10,
			UncoreIdleWPerGHz: 2.6, UncoreActWPerGHz: 5.5, UncoreActBaseW: 1.8,
		},
	}
}

func TestBackendEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		want *Platform
	}{
		{"BDW", legacyBDW()},
		{"RPL", legacyRPL()},
	} {
		got, err := PlatformByName(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Backend == nil {
			t.Fatalf("%s: registry platform should carry its backend description", tc.name)
		}
		// The description pointer is new by construction; equivalence is
		// about every value the simulator and drivers read.
		tc.want.Backend = got.Backend
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: registry platform differs from legacy constructor:\n got %+v\nwant %+v", tc.name, got, tc.want)
		}
	}
}

// grid builds a bare platform for frequency-grid edge cases.
func grid(min, max, step float64) *Platform {
	return &Platform{UncoreMin: min, UncoreMax: max, CapStep: step}
}

func TestUncoreStepsGrid(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *Platform
		want []float64
	}{
		{"bdw-0.1", grid(1.2, 2.8, 0.1),
			[]float64{1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7, 2.8}},
		{"half-step-0.05", grid(1.25, 1.5, 0.05),
			[]float64{1.25, 1.3, 1.35, 1.4, 1.45, 1.5}},
		{"uneven-range", grid(1.0, 1.25, 0.1),
			[]float64{1.0, 1.1, 1.2}},
		{"step-wider-than-range", grid(2.0, 2.05, 0.1),
			[]float64{2.0}},
		{"degenerate-range", grid(2.0, 2.0, 0.1),
			[]float64{2.0}},
	} {
		got := tc.p.UncoreSteps()
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: UncoreSteps = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClampCapGrid(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *Platform
		in   float64
		want float64
	}{
		{"round-down", grid(1.2, 2.8, 0.1), 2.04, 2.0},
		{"round-up", grid(1.2, 2.8, 0.1), 2.06, 2.1},
		{"below-min", grid(1.2, 2.8, 0.1), 0.5, 1.2},
		{"above-max", grid(1.2, 2.8, 0.1), 9.9, 2.8},
		// A 0.05 grid anchored off the 0.1 lattice: 1.25 is a valid point.
		{"half-step-min", grid(1.25, 1.5, 0.05), 0.0, 1.25},
		{"half-step-near-min", grid(1.25, 1.5, 0.05), 1.27, 1.25},
		{"half-step-round-up", grid(1.25, 1.5, 0.05), 1.28, 1.3},
		{"half-step-max", grid(1.25, 1.5, 0.05), 7.0, 1.5},
		// Step does not divide the range: the max itself is off-grid and
		// must clamp to the last grid point, not an out-of-grid value.
		{"uneven-clamp-at-max", grid(1.0, 1.25, 0.1), 1.25, 1.2},
		{"uneven-clamp-above", grid(1.0, 1.25, 0.1), 9.0, 1.2},
		{"single-point", grid(2.0, 2.05, 0.1), 9.0, 2.0},
	} {
		got := tc.p.ClampCap(tc.in)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: ClampCap(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestClampCapOnGrid is the invariant the old implementation violated:
// every clamped value must be an element of UncoreSteps, including for
// grids whose step does not divide the range.
func TestClampCapOnGrid(t *testing.T) {
	for _, p := range []*Platform{
		grid(1.2, 2.8, 0.1), grid(0.8, 4.6, 0.1),
		grid(1.25, 1.5, 0.05), grid(1.0, 1.25, 0.1), grid(0.7, 3.14, 0.15),
	} {
		steps := p.UncoreSteps()
		on := map[float64]bool{}
		for _, f := range steps {
			on[f] = true
		}
		for f := 0.0; f < p.UncoreMax+1; f += 0.01 {
			if got := p.ClampCap(f); !on[got] {
				t.Fatalf("grid [%g,%g]@%g: ClampCap(%v) = %v is not in UncoreSteps %v",
					p.UncoreMin, p.UncoreMax, p.CapStep, f, got, steps)
			}
		}
	}
}

// TestHalfStepBackendViaRegistry registers a 0.05 GHz-step backend as a
// description (no code changes) and checks the machine path honours its
// grid.
func TestHalfStepBackendViaRegistry(t *testing.T) {
	b, err := platform.Parse([]byte(`{
		"schema": 1, "name": "HALFSTEP-TEST", "cpu": "synthetic", "released": 2026,
		"cores": 4, "threads": 8,
		"core_min_ghz": 1.0, "core_max_ghz": 3.0, "core_base_ghz": 2.5,
		"uncore_min_ghz": 1.25, "uncore_max_ghz": 2.8, "cap_step_ghz": 0.05,
		"cap_latency_sec": 20e-6, "has_uncore_rapl": true,
		"cache": [
			{"name": "L1", "size_bytes": 32768, "line_size": 64, "assoc": 8},
			{"name": "LLC", "size_bytes": 4194304, "line_size": 64, "assoc": 16}
		],
		"truth": {
			"flops_per_cycle": 8, "hit_latency_ns": [1.0, 10.0],
			"dram_lat_coef_ns_ghz": 40, "dram_lat_base_ns": 50,
			"bw_peak_gbs": 40, "bw_knee_ghz": 0.8,
			"mlp": 8, "mlp_system": 32, "ilp": 4, "overlap": 0.2,
			"p_const_w": 20, "core_idle_w_per_ghz": 2.0, "core_j_per_flop": 2e-10,
			"uncore_idle_w_per_ghz": 3.0, "uncore_act_w_per_ghz": 6.0, "uncore_act_base_w": 1.5
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromBackend(b)
	if err != nil {
		t.Fatal(err)
	}
	steps := p.UncoreSteps()
	if len(steps) != 32 { // 1.25..2.80 in 0.05 steps
		t.Fatalf("steps = %d, want 32", len(steps))
	}
	if steps[0] != 1.25 || steps[len(steps)-1] != 2.8 {
		t.Fatalf("grid bounds = [%v, %v]", steps[0], steps[len(steps)-1])
	}
	m := NewMachine(p)
	if got := m.SetUncoreCap(1.26); got != 1.25 {
		t.Fatalf("SetUncoreCap(1.26) = %v, want 1.25", got)
	}
	if got := m.SetUncoreCap(0.2); got != 1.25 {
		t.Fatalf("SetUncoreCap(0.2) = %v, want 1.25", got)
	}
}

func TestFromBackendRejectsInvalid(t *testing.T) {
	good := *BDW().Backend
	bad := good
	bad.CapStepGHz = 0
	if _, err := FromBackend(&bad); err == nil {
		t.Fatal("zero cap step should be rejected")
	}
	bad = good
	bad.Truth.HitLatencyNs = []float64{1.0}
	if _, err := FromBackend(&bad); err == nil {
		t.Fatal("hit-latency/cache-level mismatch should be rejected")
	}
}
