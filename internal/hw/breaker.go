package hw

import (
	"errors"
	"sync"
	"time"

	"polyufc/internal/ir"
)

// ErrBreakerOpen is returned by CapBreaker operations while the wrapped
// driver is quarantined: callers should degrade to model-only answers
// instead of queueing behind a sick driver.
var ErrBreakerOpen = errors.New("hw: cap breaker open: driver quarantined")

// BreakerState is the circuit breaker's position.
type BreakerState int

// The classic three breaker states.
const (
	// BreakerClosed passes every operation through to the driver.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails every operation with ErrBreakerOpen.
	BreakerOpen
	// BreakerHalfOpen lets one probe operation through after the
	// cooldown; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "state?"
}

// BreakerOptions tunes the circuit breaker.
type BreakerOptions struct {
	// Threshold is the number of consecutive verified-write failures
	// (Apply calls that exhaust their retry budget) that trips the
	// breaker open.
	Threshold int
	// Cooldown is how long the breaker stays open before letting one
	// half-open probe reach the driver again.
	Cooldown time.Duration
	// Clock overrides time.Now, for deterministic tests.
	Clock func() time.Time
}

// DefaultBreakerOptions mirrors a production driver quarantine: trip
// after 3 consecutive exhausted Applies, probe again after a second.
func DefaultBreakerOptions() BreakerOptions {
	return BreakerOptions{Threshold: 3, Cooldown: time.Second}
}

// BreakerStats are the breaker's reliability counters.
type BreakerStats struct {
	// Trips counts closed/half-open -> open transitions, Probes the
	// half-open attempts, Rejected the operations fast-failed while
	// open, Recovered the open -> closed transitions.
	Trips, Probes, Rejected, Recovered int64
	// HalfOpens counts open -> half-open transitions (cooldown expiries
	// that let a probe through); ProbeSuccesses and ProbeFailures split
	// the probe outcomes, so operators — and the smoke gate — can assert
	// the breaker actually recovered through a probe rather than merely
	// cooled down.
	HalfOpens, ProbeSuccesses, ProbeFailures int64
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	// State is the breaker position at snapshot time.
	State BreakerState
}

// CapBreaker wraps a CapController in a circuit breaker and a mutex: it
// is the concurrency-safe front door the serving daemon drives the UFS
// driver through. Consecutive verified-write failures trip it open;
// while open every operation fast-fails with ErrBreakerOpen (so request
// workers degrade to model-only answers instead of hanging in retry
// loops); after the cooldown a single probe decides recovery. Restore
// bypasses the breaker — the machine must never stay capped because the
// driver was quarantined mid-shutdown.
type CapBreaker struct {
	mu       sync.Mutex
	ctl      *CapController
	opts     BreakerOptions
	state    BreakerState
	consec   int
	openedAt time.Time
	stats    BreakerStats
}

// NewCapBreaker wraps a controller. Zero options fall back to defaults.
func NewCapBreaker(ctl *CapController, opts BreakerOptions) *CapBreaker {
	def := DefaultBreakerOptions()
	if opts.Threshold <= 0 {
		opts.Threshold = def.Threshold
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = def.Cooldown
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &CapBreaker{ctl: ctl, opts: opts}
}

// allowLocked decides whether an operation may reach the driver,
// advancing open -> half-open when the cooldown has elapsed.
func (b *CapBreaker) allowLocked() error {
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.opts.Clock().Sub(b.openedAt) < b.opts.Cooldown {
			b.stats.Rejected++
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.stats.HalfOpens++
		fallthrough
	default: // BreakerHalfOpen: this caller is the probe.
		b.stats.Probes++
		return nil
	}
}

// recordLocked feeds one driver outcome into the trip logic.
func (b *CapBreaker) recordLocked(failed bool) {
	if b.state == BreakerHalfOpen {
		// This outcome is the probe's verdict.
		if failed {
			b.stats.ProbeFailures++
		} else {
			b.stats.ProbeSuccesses++
		}
	}
	if !failed {
		b.consec = 0
		if b.state != BreakerClosed {
			b.state = BreakerClosed
			b.stats.Recovered++
		}
		return
	}
	b.consec++
	if b.state == BreakerHalfOpen || b.consec >= b.opts.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.opts.Clock()
		b.stats.Trips++
		b.consec = 0
	}
}

// SetCap requests a cap through the hardened Apply path, gated by the
// breaker. It returns ErrBreakerOpen without touching the driver while
// the breaker is open.
func (b *CapBreaker) SetCap(ghz float64) (float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.allowLocked(); err != nil {
		return b.ctl.Machine().UncoreCap(), err
	}
	got, err := b.ctl.Apply(ghz)
	b.recordLocked(err != nil)
	return got, err
}

// Reassert runs the watchdog through the breaker: quarantined drivers
// are not hammered with reasserts either.
func (b *CapBreaker) Reassert() (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.allowLocked(); err != nil {
		return false, err
	}
	fixed, err := b.ctl.Reassert()
	b.recordLocked(err != nil)
	return fixed, err
}

// RunFunc executes a compiled function through the hardened controller,
// gated by the breaker. Verified-write failures during the run — even
// ones BestEffort degraded around — feed the trip logic.
func (b *CapBreaker) RunFunc(f *ir.Func) (RunResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.allowLocked(); err != nil {
		return RunResult{}, err
	}
	before := b.ctl.Stats().Failures
	r, err := b.ctl.RunFunc(f)
	b.recordLocked(err != nil || b.ctl.Stats().Failures > before)
	return r, err
}

// Restore puts the driver-default cap back, bypassing the breaker state:
// shutdown must never leave the machine capped, and the controller's own
// fallback to the infallible driver reset guarantees it. A successful
// restore is evidence of recovery and closes the breaker.
func (b *CapBreaker) Restore() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	err := b.ctl.Restore()
	if err == nil {
		b.recordLocked(false)
	} else if m := b.ctl.Machine(); m.UncoreCap() == m.P.UncoreMax {
		// The verified-write path failed but the infallible driver reset
		// landed: the machine is uncapped, which is all Restore promises.
		// The driver itself is still sick, so this is not recovery
		// evidence — the breaker state is left alone.
		err = nil
	}
	return err
}

// WithMachine runs f with exclusive access to the wrapped machine,
// serialized against the breaker's own driver operations. The serving
// daemon uses it for baseline (uncapped) measurements on the shared
// machine.
func (b *CapBreaker) WithMachine(f func(*Machine) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return f(b.ctl.Machine())
}

// State returns the breaker position, reporting half-open once an open
// breaker's cooldown has elapsed (the next operation will probe).
func (b *CapBreaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.opts.Clock().Sub(b.openedAt) >= b.opts.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Stats returns the breaker's counters.
func (b *CapBreaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.ConsecutiveFailures = b.consec
	st.State = b.state
	return st
}

// ControllerStats returns the wrapped controller's reliability counters.
func (b *CapBreaker) ControllerStats() CapStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ctl.Stats()
}
