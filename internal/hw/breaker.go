package hw

import (
	"errors"
	"sync"

	"polyufc/internal/breaker"
	"polyufc/internal/ir"
)

// ErrBreakerOpen is returned by CapBreaker operations while the wrapped
// driver is quarantined: callers should degrade to model-only answers
// instead of queueing behind a sick driver.
var ErrBreakerOpen = errors.New("hw: cap breaker open: driver quarantined")

// The breaker state machine lives in internal/breaker (the fleet tier
// quarantines peers with the same one); these aliases keep hw's
// historical vocabulary working.
type (
	// BreakerState is the circuit breaker's position.
	BreakerState = breaker.State
	// BreakerOptions tunes the circuit breaker.
	BreakerOptions = breaker.Options
	// BreakerStats are the breaker's reliability counters.
	BreakerStats = breaker.Stats
)

// The classic three breaker states.
const (
	// BreakerClosed passes every operation through to the driver.
	BreakerClosed = breaker.Closed
	// BreakerOpen fast-fails every operation with ErrBreakerOpen.
	BreakerOpen = breaker.Open
	// BreakerHalfOpen lets one probe operation through after the
	// cooldown; its outcome closes or re-opens the breaker.
	BreakerHalfOpen = breaker.HalfOpen
)

// DefaultBreakerOptions mirrors a production driver quarantine: trip
// after 3 consecutive exhausted Applies, probe again after a second.
func DefaultBreakerOptions() BreakerOptions { return breaker.DefaultOptions() }

// CapBreaker wraps a CapController in a circuit breaker and a mutex: it
// is the concurrency-safe front door the serving daemon drives the UFS
// driver through. Consecutive verified-write failures trip it open;
// while open every operation fast-fails with ErrBreakerOpen (so request
// workers degrade to model-only answers instead of hanging in retry
// loops); after the cooldown a single probe decides recovery. Restore
// bypasses the breaker — the machine must never stay capped because the
// driver was quarantined mid-shutdown.
type CapBreaker struct {
	mu  sync.Mutex
	ctl *CapController
	brk *breaker.Breaker
}

// NewCapBreaker wraps a controller. Zero options fall back to defaults.
func NewCapBreaker(ctl *CapController, opts BreakerOptions) *CapBreaker {
	return &CapBreaker{ctl: ctl, brk: breaker.New(opts)}
}

// SetCap requests a cap through the hardened Apply path, gated by the
// breaker. It returns ErrBreakerOpen without touching the driver while
// the breaker is open.
func (b *CapBreaker) SetCap(ghz float64) (float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.brk.Allow(); err != nil {
		return b.ctl.Machine().UncoreCap(), ErrBreakerOpen
	}
	got, err := b.ctl.Apply(ghz)
	b.brk.Record(err != nil)
	return got, err
}

// Reassert runs the watchdog through the breaker: quarantined drivers
// are not hammered with reasserts either.
func (b *CapBreaker) Reassert() (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.brk.Allow(); err != nil {
		return false, ErrBreakerOpen
	}
	fixed, err := b.ctl.Reassert()
	b.brk.Record(err != nil)
	return fixed, err
}

// RunFunc executes a compiled function through the hardened controller,
// gated by the breaker. Verified-write failures during the run — even
// ones BestEffort degraded around — feed the trip logic.
func (b *CapBreaker) RunFunc(f *ir.Func) (RunResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.brk.Allow(); err != nil {
		return RunResult{}, ErrBreakerOpen
	}
	before := b.ctl.Stats().Failures
	r, err := b.ctl.RunFunc(f)
	b.brk.Record(err != nil || b.ctl.Stats().Failures > before)
	return r, err
}

// Restore puts the driver-default cap back, bypassing the breaker state:
// shutdown must never leave the machine capped, and the controller's own
// fallback to the infallible driver reset guarantees it. A successful
// restore is evidence of recovery and closes the breaker.
func (b *CapBreaker) Restore() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	err := b.ctl.Restore()
	if err == nil {
		b.brk.Record(false)
	} else if m := b.ctl.Machine(); m.UncoreCap() == m.P.UncoreMax {
		// The verified-write path failed but the infallible driver reset
		// landed: the machine is uncapped, which is all Restore promises.
		// The driver itself is still sick, so this is not recovery
		// evidence — the breaker state is left alone.
		err = nil
	}
	return err
}

// WithMachine runs f with exclusive access to the wrapped machine,
// serialized against the breaker's own driver operations. The serving
// daemon uses it for baseline (uncapped) measurements on the shared
// machine.
func (b *CapBreaker) WithMachine(f func(*Machine) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return f(b.ctl.Machine())
}

// State returns the breaker position, reporting half-open once an open
// breaker's cooldown has elapsed (the next operation will probe).
func (b *CapBreaker) State() BreakerState { return b.brk.State() }

// Stats returns the breaker's counters.
func (b *CapBreaker) Stats() BreakerStats { return b.brk.Stats() }

// ControllerStats returns the wrapped controller's reliability counters.
func (b *CapBreaker) ControllerStats() CapStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ctl.Stats()
}
