package hw

import (
	"fmt"
	"math"
	"math/rand"

	"polyufc/internal/ir"
)

// CapControllerOptions tunes the hardened cap-application path.
type CapControllerOptions struct {
	// MaxRetries bounds the write attempts per Apply beyond the first.
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// attempts (modelled seconds, charged to the machine at constant
	// power). Each wait is the current backoff scaled by a jitter factor
	// in [0.5, 1.5) from the seeded stream.
	BaseBackoff float64
	MaxBackoff  float64
	// JitterSeed seeds the backoff jitter for reproducible schedules.
	JitterSeed int64
	// BestEffort makes RunFunc continue at the current cap when an Apply
	// exhausts its retries, instead of aborting the program.
	BestEffort bool
}

// DefaultCapControllerOptions mirrors what a production ufs_cdev wrapper
// would ship: 8 retries, backoff from ~2 cap latencies up to 5 ms.
func DefaultCapControllerOptions(p *Platform) CapControllerOptions {
	return CapControllerOptions{
		MaxRetries:  8,
		BaseBackoff: 2 * p.CapLatency,
		MaxBackoff:  5e-3,
	}
}

// CapStats are the controller's reliability counters.
type CapStats struct {
	// Applies counts Apply calls; Writes counts driver write attempts.
	Applies, Writes int64
	// Retries counts backed-off re-attempts, Failures the Applies that
	// exhausted their retry budget.
	Retries, Failures int64
	// Overrides counts thermal overrides the watchdog corrected and
	// Restores the driver-default restorations performed.
	Overrides, Restores int64
}

// CapController is the hardened cap-application path: every requested cap
// is written through the fallible driver interface, verified by read-back,
// and retried under exponential backoff with jitter on transient failures
// or firmware clamping. The controller remembers the driver-default cap
// and restores it on Restore/Guard — including on panic — the way a real
// ufs_cdev wrapper must leave the machine unclamped on shutdown. Like
// Machine it is not safe for concurrent use.
type CapController struct {
	m          *Machine
	opts       CapControllerOptions
	rng        *rand.Rand
	defaultCap float64
	// target is the last successfully applied cap (NaN before the first
	// Apply); the watchdog reasserts it.
	target   float64
	stats    CapStats
	restored bool
}

// NewCapController wraps a machine. The driver default restored on
// shutdown is the platform's maximum uncore frequency (the UFS driver's
// reset state).
func NewCapController(m *Machine, opts CapControllerOptions) *CapController {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = DefaultCapControllerOptions(m.P).MaxRetries
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = DefaultCapControllerOptions(m.P).BaseBackoff
	}
	if opts.MaxBackoff < opts.BaseBackoff {
		opts.MaxBackoff = DefaultCapControllerOptions(m.P).MaxBackoff
	}
	return &CapController{
		m: m, opts: opts,
		rng:        rand.New(rand.NewSource(opts.JitterSeed)),
		defaultCap: m.P.UncoreMax,
		target:     math.NaN(),
	}
}

// Machine returns the wrapped machine.
func (c *CapController) Machine() *Machine { return c.m }

// Stats returns the reliability counters so far.
func (c *CapController) Stats() CapStats { return c.stats }

// Apply requests a cap and guarantees it took effect: write, verify by
// read-back (re-reading once to flush a stale value), and retry with
// exponential backoff + jitter on EBUSY or firmware clamping. It returns
// the applied cap, or the active cap and an error after MaxRetries
// unsuccessful attempts — bounded, never an unbounded spin.
func (c *CapController) Apply(ghz float64) (float64, error) {
	c.stats.Applies++
	c.restored = false
	want := c.m.P.ClampCap(ghz)
	backoff := c.opts.BaseBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			c.m.sleep(backoff * (0.5 + c.rng.Float64()))
			backoff = math.Min(backoff*2, c.opts.MaxBackoff)
		}
		c.stats.Writes++
		got, err := c.m.WriteUncoreCap(want)
		if err != nil {
			lastErr = err
			continue
		}
		rb := c.m.ReadUncoreCap()
		if rb != got {
			rb = c.m.ReadUncoreCap()
		}
		if got == want && rb == want {
			c.target = want
			return want, nil
		}
		lastErr = fmt.Errorf("hw: cap verify: requested %.1f GHz, driver applied %.1f, read back %.1f",
			want, got, rb)
	}
	c.stats.Failures++
	return c.m.UncoreCap(), fmt.Errorf("hw: cap %.1f GHz not applied after %d retries: %w",
		want, c.opts.MaxRetries, lastErr)
}

// Reassert is the watchdog: it re-reads the active cap and re-applies the
// last requested one when a thermal override silently raised it. It
// reports whether a drift was corrected.
func (c *CapController) Reassert() (bool, error) {
	if math.IsNaN(c.target) || c.m.UncoreCap() == c.target {
		return false, nil
	}
	c.stats.Overrides++
	_, err := c.Apply(c.target)
	return true, err
}

// Restore puts the driver-default cap back. When even the retried path
// fails it falls through to the infallible driver reset (closing the
// ufs_cdev handle resets the clamp), so the machine is never left capped.
// Restore is idempotent until the next Apply.
func (c *CapController) Restore() error {
	if c.restored {
		return nil
	}
	c.stats.Restores++
	_, err := c.Apply(c.defaultCap)
	if err != nil {
		c.m.SetUncoreCap(c.defaultCap)
	}
	c.restored = true
	c.target = math.NaN()
	return err
}

// Guard runs f with deferred restore: whatever f does — return, fail, or
// panic — the driver-default cap is back when Guard exits.
func (c *CapController) Guard(f func() error) (err error) {
	defer c.Restore()
	return f()
}

// RunFunc executes a function's op sequence like Machine.RunFunc, but
// applies caps through the hardened path: verified, retried writes; a
// watchdog reassert after every nest (catching silent thermal overrides);
// and driver-default restore on return, even on panic. With
// opts.BestEffort an exhausted cap write degrades to running at the
// current cap instead of aborting.
func (c *CapController) RunFunc(f *ir.Func) (agg RunResult, err error) {
	defer c.Restore()
	m := c.m
	agg.UncoreGHz = m.UncoreCap()
	charge := func(run func() error) error {
		before, beforeE := m.busyTime, m.pkgEnergy
		err := run()
		agg.Seconds += m.busyTime - before
		agg.PkgJoules += m.pkgEnergy - beforeE
		return err
	}
	for _, op := range f.Ops {
		switch x := op.(type) {
		case *ir.SetUncoreCap:
			if err := charge(func() error { _, err := c.Apply(x.GHz); return err }); err != nil {
				if !c.opts.BestEffort {
					return agg, err
				}
			}
		case *ir.Nest:
			r, err := m.RunNest(x)
			if err != nil {
				return agg, err
			}
			agg.Seconds += r.Seconds
			agg.PkgJoules += r.PkgJoules
			agg.UncoreJoules += r.UncoreJoules
			if err := charge(func() error { _, err := c.Reassert(); return err }); err != nil {
				if !c.opts.BestEffort {
					return agg, err
				}
			}
		default:
			return agg, fmt.Errorf("hw: cannot execute %s", op.OpName())
		}
	}
	if agg.Seconds > 0 {
		agg.AvgWatts = agg.PkgJoules / agg.Seconds
	}
	agg.EDP = agg.PkgJoules * agg.Seconds
	return agg, nil
}
