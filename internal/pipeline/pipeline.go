// Package pipeline is the staged-execution engine behind the PolyUFC
// compile flow: a generic, declared list of typed stages over a shared
// state, with uniform context checking, stage-level panic recovery,
// per-stage timing/cache events, and optional per-stage memoization keyed
// by a content hash chained across the stage sequence.
//
// It generalizes ir.PassManager (module-rewrite passes) to arbitrary
// state: core declares its compile flow (preprocess, tile, cachemodel,
// characterize, model-fit, search, cap-insert, cap-merge,
// rewrite-cleanup) as a Pipeline[*compileState], the serving daemon runs
// pipeline prefixes (a characterize request stops after the
// characterize stage), and memoized stage snapshots let a later full
// compile of the same module resume from the deepest cached stage
// instead of redoing pluto and the cache model.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"
)

// Stage is one step of a pipeline over a shared state S. Run mutates the
// state in place; the runner supplies context checking, panic recovery,
// timing, and memoization around it.
type Stage[S any] struct {
	// Name identifies the stage in events, Timings, statsz counters and
	// degrade reports. Stable stage names are part of the contract: core
	// exports them as constants so every surface agrees.
	Name string
	// Run executes the stage, mutating the state.
	Run func(ctx context.Context, s S) error
	// Salt contributes stage-specific configuration (tile sizes, search
	// objective, ...) to the memo key chain. Optional; the empty salt
	// means the stage is fully determined by its name and upstream key.
	Salt func(s S) string
	// Save snapshots the stage's outputs for memoization. Optional: a
	// stage without Save always runs. The snapshot must be safe to share
	// across pipelines — clone anything downstream stages mutate.
	Save func(s S) any
	// Load installs a memoized snapshot into the state in place of
	// running the stage. Required when Save is set.
	Load func(s S, snap any)
}

// Memoizable reports whether the stage declared snapshot support.
func (st Stage[S]) Memoizable() bool { return st.Save != nil && st.Load != nil }

// Event records one stage execution for observers: Timings breakdowns,
// statsz counters and journals all derive from the same event stream.
type Event struct {
	Stage    string
	Duration time.Duration
	// CacheHit marks a stage satisfied from a memoized snapshot instead
	// of running.
	CacheHit bool
	// Err is the stage error, if any ("" on success). A string, not an
	// error: events are data shared with JSON surfaces.
	Err string
}

// RunOptions parameterizes one pipeline execution.
type RunOptions struct {
	// Cache enables per-stage memoization when non-nil and BaseKey is
	// set. Stages without Save/Load still execute and contribute to the
	// key chain.
	Cache *Cache
	// BaseKey is the content hash of the pipeline's input (module text,
	// platform, calibration). An empty BaseKey disables memoization even
	// with a Cache — callers use that for fault-injection runs, where
	// replaying a snapshot would skip the armed injection points.
	BaseKey string
	// Until stops the pipeline after the named stage completes — the
	// serving daemon's characterize endpoint runs the prefix ending at
	// the characterize stage. Empty runs the full pipeline.
	Until string
	// Observe, when non-nil, receives each stage event as it is
	// recorded (success and failure alike).
	Observe func(Event)
}

// UnitError is a failure of one per-unit work item inside a stage (one
// loop nest, one pass). The pipeline error wrapper recognizes it and
// avoids double-prefixing, so a strict-mode nest failure surfaces as
// "core: tile on S1_gemm: ..." exactly once. Unwrap exposes the cause
// for errors.Is (fault sentinel, context errors).
type UnitError struct {
	Stage string
	Label string
	Err   error
}

func (e *UnitError) Error() string { return fmt.Sprintf("%s on %s: %v", e.Stage, e.Label, e.Err) }

// Unwrap returns the underlying cause.
func (e *UnitError) Unwrap() error { return e.Err }

// Unit invokes one per-unit work item with panic isolation: a panicking
// unit surfaces as a *UnitError carrying the stage name and unit label
// instead of unwinding the whole pipeline. It is the single shared
// replacement for the per-package runStage helpers.
func Unit(stage, label string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &UnitError{Stage: stage, Label: label, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if err := f(); err != nil {
		return &UnitError{Stage: stage, Label: label, Err: err}
	}
	return nil
}

// ChainKey derives the memo key of a stage from its predecessor's key
// and the stage's own identity + salt. Chaining makes every stage key a
// content hash of the whole upstream configuration: two pipelines share
// a stage snapshot iff they agree on the input module and every stage
// up to and including this one.
func ChainKey(prev, component string) string {
	h := sha256.New()
	h.Write([]byte(prev))
	h.Write([]byte{0})
	h.Write([]byte(component))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Pipeline is a named, declared sequence of stages.
type Pipeline[S any] struct {
	name   string
	stages []Stage[S]
}

// New builds a pipeline. The name prefixes stage errors ("core: ...").
func New[S any](name string, stages ...Stage[S]) *Pipeline[S] {
	return &Pipeline[S]{name: name, stages: stages}
}

// Name returns the pipeline name.
func (p *Pipeline[S]) Name() string { return p.name }

// Stages returns the declared stage names in order.
func (p *Pipeline[S]) Stages() []string {
	out := make([]string, len(p.stages))
	for i, st := range p.stages {
		out[i] = st.Name
	}
	return out
}

// Run executes the stages in order on s. Before each stage the context
// is checked; a cancelled context aborts with ctx.Err() unwrapped
// (cancellation is a caller decision, not a stage fault). Each stage
// runs under panic recovery; its event is recorded (and observed) even
// on failure, then the error is returned wrapped with the pipeline and
// stage name. With a cache and base key, memoizable stages are satisfied
// from snapshots when the chained content key hits.
func (p *Pipeline[S]) Run(ctx context.Context, s S, opts RunOptions) ([]Event, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	events := make([]Event, 0, len(p.stages))
	key := opts.BaseKey
	for _, st := range p.stages {
		if err := ctx.Err(); err != nil {
			return events, err
		}
		if opts.BaseKey != "" {
			salt := ""
			if st.Salt != nil {
				salt = st.Salt(s)
			}
			key = ChainKey(key, st.Name+"\x00"+salt)
		}
		start := time.Now()
		var hit bool
		var err error
		if opts.Cache != nil && opts.BaseKey != "" && st.Memoizable() {
			var snap any
			var shared bool
			snap, shared, err = opts.Cache.memo.DoShared(ctx, key, func() (any, error) {
				if rerr := runStage(ctx, st, s); rerr != nil {
					return nil, rerr
				}
				return st.Save(s), nil
			})
			if err == nil && shared {
				st.Load(s, snap)
				hit = true
			}
		} else {
			err = runStage(ctx, st, s)
		}
		ev := Event{Stage: st.Name, Duration: time.Since(start), CacheHit: hit}
		if err != nil {
			ev.Err = err.Error()
		}
		events = append(events, ev)
		if opts.Observe != nil {
			opts.Observe(ev)
		}
		if err != nil {
			return events, p.wrapErr(st.Name, err)
		}
		if opts.Until != "" && st.Name == opts.Until {
			break
		}
	}
	return events, nil
}

// runStage executes one stage with panic recovery.
func runStage[S any](ctx context.Context, st Stage[S], s S) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("stage %s: panic: %v", st.Name, r)
		}
	}()
	return st.Run(ctx, s)
}

// wrapErr prefixes a stage failure with the pipeline name. Context
// errors pass through unwrapped — callers test errors.Is(err,
// context.Canceled) on the return value and cancellation is not a stage
// fault. A *UnitError already names the stage, so it gets the pipeline
// prefix only.
func (p *Pipeline[S]) wrapErr(stage string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var ue *UnitError
	if errors.As(err, &ue) {
		return fmt.Errorf("%s: %w", p.name, err)
	}
	return fmt.Errorf("%s: stage %s: %w", p.name, stage, err)
}
