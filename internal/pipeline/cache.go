package pipeline

import (
	"context"

	"polyufc/internal/parallel"
)

// Cache memoizes stage snapshots across pipeline runs. Keys are the
// chained content hashes computed by Run, values the opaque snapshots
// returned by Stage.Save. It is singleflight: two pipelines reaching the
// same stage key concurrently compute once and share the snapshot — the
// daemon relies on this when a characterize request and a search request
// for the same kernel race through the shared prefix.
//
// The zero value is ready to use. Long-running processes must SetLimit —
// an unbounded snapshot cache is a memory leak under open-ended traffic.
type Cache struct {
	memo parallel.Memo[string, any]
}

// SetLimit bounds the cache to n snapshots with LRU eviction (n <= 0
// restores the unbounded default).
func (c *Cache) SetLimit(n int) { c.memo.SetLimit(n) }

// Stats returns snapshot hits and misses so far.
func (c *Cache) Stats() (hits, misses int64) { return c.memo.Stats() }

// Evictions returns how many snapshots the LRU bound has dropped.
func (c *Cache) Evictions() int64 { return c.memo.Evictions() }

// Len returns the number of cached snapshots.
func (c *Cache) Len() int { return c.memo.Len() }

// Reset drops every snapshot and zeroes the statistics.
func (c *Cache) Reset() { c.memo.Reset() }

// Do memoizes an arbitrary computation under the same singleflight store
// the stage snapshots use: concurrent callers with the same key compute
// once and share the value. Callers outside the stage runner (backend
// calibration, for one) key their entries by content hash so they
// coexist with chained stage keys.
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, error)) (any, error) {
	return c.memo.Do(ctx, key, func() (any, error) { return compute() })
}
