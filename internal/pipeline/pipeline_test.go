package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// testState is a minimal pipeline state: an append-only trace plus a
// value the snapshot stages save and load.
type testState struct {
	trace []string
	value int
}

func traceStage(name string) Stage[*testState] {
	return Stage[*testState]{
		Name: name,
		Run: func(_ context.Context, s *testState) error {
			s.trace = append(s.trace, name)
			return nil
		},
	}
}

func TestRunExecutesStagesInOrder(t *testing.T) {
	p := New("t", traceStage("a"), traceStage("b"), traceStage("c"))
	s := &testState{}
	events, err := p.Run(context.Background(), s, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := strings.Join(s.trace, ","); got != "a,b,c" {
		t.Fatalf("trace = %s, want a,b,c", got)
	}
	if len(events) != 3 || events[0].Stage != "a" || events[2].Stage != "c" {
		t.Fatalf("events = %+v", events)
	}
	for _, e := range events {
		if e.CacheHit || e.Err != "" {
			t.Fatalf("unexpected event flags: %+v", e)
		}
	}
}

func TestRunUntilStopsAfterNamedStage(t *testing.T) {
	p := New("t", traceStage("a"), traceStage("b"), traceStage("c"))
	s := &testState{}
	events, err := p.Run(context.Background(), s, RunOptions{Until: "b"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := strings.Join(s.trace, ","); got != "a,b" {
		t.Fatalf("trace = %s, want a,b", got)
	}
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
}

func TestRunStageErrorWrapsAndRecordsEvent(t *testing.T) {
	boom := errors.New("boom")
	p := New("t",
		traceStage("a"),
		Stage[*testState]{Name: "bad", Run: func(context.Context, *testState) error { return boom }},
		traceStage("c"),
	)
	s := &testState{}
	events, err := p.Run(context.Background(), s, RunOptions{})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "t: stage bad") {
		t.Fatalf("err = %v, want pipeline+stage prefix", err)
	}
	if len(events) != 2 || events[1].Stage != "bad" || events[1].Err == "" {
		t.Fatalf("events = %+v, want failing event recorded", events)
	}
	if got := strings.Join(s.trace, ","); got != "a" {
		t.Fatalf("trace = %s: stage after failure must not run", got)
	}
}

func TestRunStagePanicIsRecovered(t *testing.T) {
	p := New("t", Stage[*testState]{
		Name: "volatile",
		Run:  func(context.Context, *testState) error { panic("kaboom") },
	})
	_, err := p.Run(context.Background(), &testState{}, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "panic: kaboom") ||
		!strings.Contains(err.Error(), "volatile") {
		t.Fatalf("err = %v, want recovered panic naming the stage", err)
	}
}

func TestRunChecksContextBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New("t",
		Stage[*testState]{Name: "a", Run: func(_ context.Context, s *testState) error {
			s.trace = append(s.trace, "a")
			cancel()
			return nil
		}},
		traceStage("b"),
	)
	s := &testState{}
	events, err := p.Run(ctx, s, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(s.trace) != 1 || len(events) != 1 {
		t.Fatalf("trace=%v events=%v: stage b must not run after cancel", s.trace, events)
	}
}

func TestUnitErrorKeepsSingleStagePrefix(t *testing.T) {
	sentinel := errors.New("injected")
	p := New("core", Stage[*testState]{
		Name: "tile",
		Run: func(context.Context, *testState) error {
			return Unit("tile", "S1_gemm", func() error { return sentinel })
		},
	})
	_, err := p.Run(context.Background(), &testState{}, RunOptions{})
	if err == nil {
		t.Fatal("want error")
	}
	if got := err.Error(); got != "core: tile on S1_gemm: injected" {
		t.Fatalf("err = %q, want single stage prefix", got)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through UnitError failed: %v", err)
	}
}

func TestUnitRecoversPanics(t *testing.T) {
	err := Unit("search", "S9", func() error { panic("model blew up") })
	var ue *UnitError
	if !errors.As(err, &ue) || ue.Stage != "search" || ue.Label != "S9" {
		t.Fatalf("err = %v, want UnitError{search, S9}", err)
	}
	if !strings.Contains(err.Error(), "panic: model blew up") {
		t.Fatalf("err = %v, want panic text", err)
	}
}

// snapStage saves/loads value so memoized runs can be distinguished from
// cold runs via the ran counter.
func snapStage(name string, ran *int) Stage[*testState] {
	return Stage[*testState]{
		Name: name,
		Run: func(_ context.Context, s *testState) error {
			*ran++
			s.value += 10
			return nil
		},
		Save: func(s *testState) any { return s.value },
		Load: func(s *testState, snap any) { s.value = snap.(int) },
	}
}

func TestMemoizedStageHitsOnSecondRun(t *testing.T) {
	ran := 0
	cache := &Cache{}
	mk := func() *Pipeline[*testState] { return New("t", snapStage("s", &ran)) }

	s1 := &testState{}
	ev1, err := mk().Run(context.Background(), s1, RunOptions{Cache: cache, BaseKey: "k"})
	if err != nil {
		t.Fatalf("run1: %v", err)
	}
	s2 := &testState{}
	ev2, err := mk().Run(context.Background(), s2, RunOptions{Cache: cache, BaseKey: "k"})
	if err != nil {
		t.Fatalf("run2: %v", err)
	}
	if ran != 1 {
		t.Fatalf("stage ran %d times, want 1", ran)
	}
	if s1.value != 10 || s2.value != 10 {
		t.Fatalf("values = %d, %d, want 10, 10", s1.value, s2.value)
	}
	if ev1[0].CacheHit || !ev2[0].CacheHit {
		t.Fatalf("cache-hit flags = %v, %v, want false, true", ev1[0].CacheHit, ev2[0].CacheHit)
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1 hit / 1 miss", hits, misses)
	}
}

func TestMemoKeyChainsThroughUpstreamSalts(t *testing.T) {
	ran := 0
	cache := &Cache{}
	salt := "v1"
	mk := func() *Pipeline[*testState] {
		return New("t",
			Stage[*testState]{
				Name: "cfg",
				Run:  func(context.Context, *testState) error { return nil },
				Salt: func(*testState) string { return salt },
			},
			snapStage("s", &ran),
		)
	}
	opts := RunOptions{Cache: cache, BaseKey: "k"}
	if _, err := mk().Run(context.Background(), &testState{}, opts); err != nil {
		t.Fatal(err)
	}
	salt = "v2" // upstream config change must invalidate the downstream key
	if _, err := mk().Run(context.Background(), &testState{}, opts); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("stage ran %d times, want 2 (salt change must miss)", ran)
	}
	salt = "v1"
	if _, err := mk().Run(context.Background(), &testState{}, opts); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("stage ran %d times, want 2 (original salt must hit)", ran)
	}
}

func TestEmptyBaseKeyDisablesMemo(t *testing.T) {
	ran := 0
	cache := &Cache{}
	p := New("t", snapStage("s", &ran))
	for i := 0; i < 2; i++ {
		if _, err := p.Run(context.Background(), &testState{}, RunOptions{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if ran != 2 {
		t.Fatalf("stage ran %d times, want 2 (no base key => no memo)", ran)
	}
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d entries, want 0", cache.Len())
	}
}

func TestFailedStageIsNotMemoized(t *testing.T) {
	calls := 0
	cache := &Cache{}
	p := New("t", Stage[*testState]{
		Name: "flaky",
		Run: func(context.Context, *testState) error {
			calls++
			if calls == 1 {
				return fmt.Errorf("transient")
			}
			return nil
		},
		Save: func(s *testState) any { return s.value },
		Load: func(s *testState, snap any) { s.value = snap.(int) },
	})
	opts := RunOptions{Cache: cache, BaseKey: "k"}
	if _, err := p.Run(context.Background(), &testState{}, opts); err == nil {
		t.Fatal("want first run to fail")
	}
	ev, err := p.Run(context.Background(), &testState{}, opts)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if ev[0].CacheHit {
		t.Fatal("failed computation must not be served as a hit")
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestConcurrentRunsSingleflightSnapshot(t *testing.T) {
	ran := 0
	cache := &Cache{}
	var mu sync.Mutex
	p := New("t", Stage[*testState]{
		Name: "slow",
		Run: func(_ context.Context, s *testState) error {
			mu.Lock()
			ran++
			mu.Unlock()
			s.value = 7
			return nil
		},
		Save: func(s *testState) any { return s.value },
		Load: func(s *testState, snap any) { s.value = snap.(int) },
	})
	var wg sync.WaitGroup
	states := make([]*testState, 8)
	for i := range states {
		states[i] = &testState{}
		wg.Add(1)
		go func(s *testState) {
			defer wg.Done()
			if _, err := p.Run(context.Background(), s, RunOptions{Cache: cache, BaseKey: "k"}); err != nil {
				t.Errorf("run: %v", err)
			}
		}(states[i])
	}
	wg.Wait()
	if ran != 1 {
		t.Fatalf("stage ran %d times across 8 concurrent runs, want 1", ran)
	}
	for _, s := range states {
		if s.value != 7 {
			t.Fatalf("value = %d, want 7", s.value)
		}
	}
}

func TestMetricsAggregateEvents(t *testing.T) {
	var mx Metrics
	mx.Observe(Event{Stage: "tile", Duration: 5})
	mx.Observe(Event{Stage: "tile", Duration: 3, CacheHit: true})
	mx.Observe(Event{Stage: "tile", Duration: 2, Err: "boom"})
	mx.Observe(Event{Stage: "search", Duration: 1})
	snap := mx.Snapshot()
	tile := snap["tile"]
	if tile.Runs != 3 || tile.CacheHits != 1 || tile.Errors != 1 || tile.Total != 10 {
		t.Fatalf("tile stats = %+v", tile)
	}
	if got := mx.StageNames(); len(got) != 2 || got[0] != "search" || got[1] != "tile" {
		t.Fatalf("StageNames = %v", got)
	}
	mx.Reset()
	if len(mx.Snapshot()) != 0 {
		t.Fatal("Reset did not clear aggregates")
	}
}

func TestChainKeyDeterministicAndSensitive(t *testing.T) {
	a := ChainKey("base", "tile\x00opts1")
	b := ChainKey("base", "tile\x00opts1")
	if a != b {
		t.Fatal("ChainKey not deterministic")
	}
	if a == ChainKey("base", "tile\x00opts2") || a == ChainKey("other", "tile\x00opts1") {
		t.Fatal("ChainKey insensitive to inputs")
	}
}
