package pipeline

import (
	"sort"
	"sync"
	"time"
)

// StageStats aggregates the events observed for one stage name.
type StageStats struct {
	// Runs counts executions, cache hits included.
	Runs int64
	// CacheHits counts executions satisfied from a memoized snapshot.
	CacheHits int64
	// Errors counts failed executions.
	Errors int64
	// Total is the wall-clock time spent in (or loading) the stage.
	Total time.Duration
}

// Metrics aggregates stage events across pipeline runs, keyed by stage
// name. It is safe for concurrent use: pass Observe as RunOptions.Observe
// from any number of goroutines. The zero value is ready to use.
type Metrics struct {
	mu sync.Mutex
	m  map[string]StageStats
}

// Observe folds one event into the aggregate.
func (mx *Metrics) Observe(e Event) {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	if mx.m == nil {
		mx.m = map[string]StageStats{}
	}
	s := mx.m[e.Stage]
	s.Runs++
	if e.CacheHit {
		s.CacheHits++
	}
	if e.Err != "" {
		s.Errors++
	}
	s.Total += e.Duration
	mx.m[e.Stage] = s
}

// Snapshot returns a copy of the per-stage aggregates.
func (mx *Metrics) Snapshot() map[string]StageStats {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	out := make(map[string]StageStats, len(mx.m))
	for k, v := range mx.m {
		out[k] = v
	}
	return out
}

// StageNames returns the observed stage names sorted, for deterministic
// rendering.
func (mx *Metrics) StageNames() []string {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	out := make([]string, 0, len(mx.m))
	for k := range mx.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset drops all aggregates.
func (mx *Metrics) Reset() {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	mx.m = nil
}
