package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polyufc/internal/breaker"
	"polyufc/internal/cas"
	"polyufc/internal/faults"
	"polyufc/internal/leakcheck"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }

// fakePeer is an in-memory CAS speaking the peer protocol.
type fakePeer struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    atomic.Int64
	puts    atomic.Int64
	srv     *httptest.Server
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{entries: map[string][]byte{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cas/{key}", func(w http.ResponseWriter, r *http.Request) {
		p.gets.Add(1)
		p.mu.Lock()
		payload, ok := p.entries[r.PathValue("key")]
		p.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(HeaderSum, cas.Sum(payload))
		w.Write(payload)
	})
	mux.HandleFunc("PUT /v1/cas/{key}", func(w http.ResponseWriter, r *http.Request) {
		p.puts.Add(1)
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.entries[r.PathValue("key")] = buf.Bytes()
		p.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePeer) set(key string, payload []byte) {
	p.mu.Lock()
	p.entries[key] = payload
	p.mu.Unlock()
}

func testOpts(peers ...*fakePeer) Options {
	urls := make([]string, len(peers))
	for i, p := range peers {
		urls[i] = p.srv.URL
	}
	return Options{
		Peers:   urls,
		Timeout: 2 * time.Second,
		Hedge:   20 * time.Millisecond,
		Backoff: time.Millisecond,
		Seed:    1,
	}
}

func TestLookupHitAndMiss(t *testing.T) {
	p := newFakePeer(t)
	key := cas.Sum([]byte("k"))
	payload := []byte("the cached artifact")
	p.set(key, payload)
	c := New(testOpts(p))
	defer c.Close()

	got, ok := c.Lookup(context.Background(), key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Lookup = %q, %v", got, ok)
	}
	if _, ok := c.Lookup(context.Background(), cas.Sum([]byte("absent"))); ok {
		t.Fatal("Lookup of absent key reported a hit")
	}
	st := c.Stats()
	if st.PeerHits != 1 || st.PeerMisses != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLookupInvalidKeyAndNilClient(t *testing.T) {
	var nilc *Client
	if _, ok := nilc.Lookup(context.Background(), cas.Sum(nil)); ok {
		t.Fatal("nil client hit")
	}
	nilc.Fill(cas.Sum(nil), nil)
	nilc.Close()
	if New(Options{}) != nil {
		t.Fatal("New with no peers should return the nil (disabled) client")
	}
	p := newFakePeer(t)
	c := New(testOpts(p))
	defer c.Close()
	if _, ok := c.Lookup(context.Background(), "../../etc/passwd"); ok {
		t.Fatal("invalid key hit")
	}
	if p.gets.Load() != 0 {
		t.Fatal("invalid key reached the wire")
	}
}

func TestFillPropagatesToAllPeers(t *testing.T) {
	a, b := newFakePeer(t), newFakePeer(t)
	key := cas.Sum([]byte("fill"))
	payload := []byte("filled entry")
	c := New(testOpts(a, b))
	c.Fill(key, payload)
	c.Close() // waits for the background PUTs

	for i, p := range []*fakePeer{a, b} {
		p.mu.Lock()
		got, ok := p.entries[key]
		p.mu.Unlock()
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("peer %d entry = %q, %v", i, got, ok)
		}
	}
	if st := c.Stats(); st.Fills != 2 || st.FillErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFillAfterCloseIsNoop(t *testing.T) {
	p := newFakePeer(t)
	c := New(testOpts(p))
	c.Close()
	c.Fill(cas.Sum([]byte("late")), []byte("late"))
	time.Sleep(10 * time.Millisecond)
	if n := p.puts.Load(); n != 0 {
		t.Fatalf("%d PUTs after Close", n)
	}
}

func TestLookupFallsThroughDeadPeer(t *testing.T) {
	dead := newFakePeer(t)
	live := newFakePeer(t)
	key := cas.Sum([]byte("k"))
	payload := []byte("survives the partition")
	live.set(key, payload)
	opts := testOpts(dead, live)
	dead.srv.Close() // connection refused from now on
	c := New(opts)
	defer c.Close()

	// Every lookup must succeed regardless of which peer the rotation
	// tries first.
	for i := 0; i < 6; i++ {
		got, ok := c.Lookup(context.Background(), key)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("lookup %d = %q, %v", i, got, ok)
		}
	}
	if st := c.Stats(); st.PeerHits != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerQuarantinesDeadPeer(t *testing.T) {
	dead := newFakePeer(t)
	opts := testOpts(dead)
	opts.Breaker = breaker.Options{Threshold: 3, Cooldown: time.Hour}
	opts.Retries = 0
	dead.srv.Close()
	c := New(opts)
	defer c.Close()

	key := cas.Sum([]byte("k"))
	for i := 0; i < 5; i++ {
		if _, ok := c.Lookup(context.Background(), key); ok {
			t.Fatal("dead peer hit")
		}
	}
	st := c.Stats()
	if st.BreakerState[dead.srv.URL] != "open" {
		t.Fatalf("breaker = %v, want open", st.BreakerState)
	}
	// Once open, lookups fast-fail without touching the wire.
	if st.PeerErrors != 3 {
		t.Fatalf("PeerErrors = %d, want exactly the trip threshold", st.PeerErrors)
	}
	if st.Rejected == 0 {
		t.Fatalf("stats = %+v, want breaker rejections", st)
	}
}

func TestHedgedLookupWinsOverSlowPeer(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hold the request until the client gives up
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		http.NotFound(w, r)
	}))
	defer slow.Close()
	fast := newFakePeer(t)
	key := cas.Sum([]byte("k"))
	payload := []byte("served by the hedge")
	fast.set(key, payload)

	opts := Options{
		Peers:   []string{slow.URL, fast.srv.URL},
		Timeout: 3 * time.Second,
		Hedge:   10 * time.Millisecond,
		Backoff: time.Millisecond,
		Seed:    1,
	}
	c := New(opts)
	defer c.Close()

	// Run enough lookups that the rotation starts on the slow peer at
	// least once; each must still answer quickly via the hedge.
	start := time.Now()
	for i := 0; i < 6; i++ {
		got, ok := c.Lookup(context.Background(), key)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("lookup %d = %q, %v", i, got, ok)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("hedged lookups took %v — hedge did not fire", d)
	}
	if st := c.Stats(); st.Hedges == 0 {
		t.Fatalf("stats = %+v, want hedged attempts", st)
	}
}

func TestInjectedTimeoutFault(t *testing.T) {
	p := newFakePeer(t)
	key := cas.Sum([]byte("k"))
	p.set(key, []byte("payload"))
	reg := faults.New(1)
	reg.Enable(FaultPeerTimeout, faults.Spec{P: 1})
	opts := testOpts(p)
	opts.Faults = reg
	opts.Retries = 1
	c := New(opts)
	defer c.Close()

	if _, ok := c.Lookup(context.Background(), key); ok {
		t.Fatal("lookup hit through a 100% timeout fault")
	}
	st := c.Stats()
	if st.PeerErrors == 0 || st.Retries == 0 {
		t.Fatalf("stats = %+v, want errors and retry rounds", st)
	}
	if p.gets.Load() != 0 {
		t.Fatal("injected timeout still reached the wire")
	}

	// Disarming the fault restores service once the breaker reprobes.
	reg.Disable(FaultPeerTimeout)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := c.Lookup(context.Background(), key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after fault disarmed")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestInjectedCorruptFault(t *testing.T) {
	p := newFakePeer(t)
	key := cas.Sum([]byte("k"))
	payload := []byte("payload")
	p.set(key, payload)
	reg := faults.New(1)
	reg.Enable(FaultPeerCorrupt, faults.Spec{On: []int64{1}})
	opts := testOpts(p)
	opts.Retries = 1
	opts.Faults = reg
	c := New(opts)
	defer c.Close()

	// First attempt's payload is corrupted in flight: checksum
	// verification must reject it, and the retry round serves clean.
	got, ok := c.Lookup(context.Background(), key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("lookup = %q, %v", got, ok)
	}
	if st := c.Stats(); st.PeerErrors != 1 {
		t.Fatalf("stats = %+v, want exactly one corrupt-payload error", st)
	}
}

func TestChecksumMismatchRejected(t *testing.T) {
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderSum, cas.Sum([]byte("what I promised")))
		fmt.Fprint(w, "what I actually sent")
	}))
	defer lying.Close()
	opts := Options{Peers: []string{lying.URL}, Timeout: time.Second, Backoff: time.Millisecond, Seed: 1, Retries: 0}
	c := New(opts)
	defer c.Close()
	if _, ok := c.Lookup(context.Background(), cas.Sum([]byte("k"))); ok {
		t.Fatal("mismatched checksum accepted")
	}
	if st := c.Stats(); st.PeerErrors == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLookupRespectsContext(t *testing.T) {
	p := newFakePeer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(testOpts(p))
	defer c.Close()
	if _, ok := c.Lookup(ctx, cas.Sum([]byte("k"))); ok {
		t.Fatal("cancelled lookup hit")
	}
}
