// Package fleet is the failure-hardened peer protocol of the cache
// tier: a daemon configured with static peers asks them for
// content-addressed entries before recomputing, and offers its own
// freshly computed entries back. The protocol is two HTTP verbs —
// GET /v1/cas/{key} (200 with the payload and its checksum, 404 for a
// clean miss) and PUT /v1/cas/{key} — and every exchange is verified
// end to end with the entry's SHA-256.
//
// The failure envelope is strict graceful degradation: a peer that
// times out, partitions away, returns garbage, or dies mid-transfer
// costs at most one local recompute, never a failed request and never
// a wrong answer. Concretely:
//
//   - every peer sits behind its own circuit breaker (internal/breaker,
//     the same machine that quarantines the UFS driver), so a dead peer
//     is probed occasionally instead of timing out every request;
//   - lookups are deadline-bounded per attempt and hedged — when the
//     first peer has not answered within the hedge delay a second
//     attempt starts in parallel and the first answer wins;
//   - rounds retry with exponential backoff plus seeded jitter, bounded
//     by the caller's context; an authoritative 404 ends the lookup
//     early (the fleet does not have the entry — compute it);
//   - every payload is checksum-verified before use; a corrupt body is
//     a peer error, not a cache hit.
//
// Fills are asynchronous and best-effort: the computing daemon answers
// its client first and offers the entry to peers in the background.
// The injectable fault points "fleet.peer.timeout" and
// "fleet.peer.corrupt" simulate a hung peer and a corrupted transfer.
package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"polyufc/internal/breaker"
	"polyufc/internal/cas"
	"polyufc/internal/faults"
)

// The injectable fault points: a peer attempt that hangs past its
// deadline, and a transfer whose payload is corrupted on the wire.
const (
	FaultPeerTimeout = "fleet.peer.timeout"
	FaultPeerCorrupt = "fleet.peer.corrupt"
)

// HeaderSum is the HTTP header carrying an entry payload's hex SHA-256
// on both GET responses and PUT requests.
const HeaderSum = "X-Polyufc-Sum"

// MaxEntryBytes bounds a single cache entry on the wire (both accepted
// PUTs and fetched GET bodies).
const MaxEntryBytes = 64 << 20

// Options tunes the peer client.
type Options struct {
	// Peers are the base URLs of the static peer set, e.g.
	// "http://10.0.0.2:8080". An empty list disables the client.
	Peers []string
	// Timeout bounds one attempt against one peer (default 500ms).
	Timeout time.Duration
	// Hedge is how long the first attempt of a round runs alone before a
	// second peer is tried in parallel (default Timeout/4).
	Hedge time.Duration
	// Retries is how many extra rounds over the peer set a lookup makes
	// after the first all-error round (default 1). Rounds are separated
	// by exponential backoff with jitter, starting at Backoff (default
	// 25ms), all bounded by the caller's context.
	Retries int
	Backoff time.Duration
	// Breaker tunes the per-peer circuit breakers. Zero means
	// breaker.DefaultOptions.
	Breaker breaker.Options
	// Seed seeds the backoff jitter and the per-lookup peer rotation.
	Seed int64
	// Faults, when non-nil, arms the fleet fault points.
	Faults *faults.Registry
	// Client overrides the HTTP client (tests); nil builds one.
	Client *http.Client
}

// Stats are the client's counters, shaped for /statsz.
type Stats struct {
	Peers      int   `json:"peers"`
	Lookups    int64 `json:"lookups"`
	PeerHits   int64 `json:"peer_hits"`
	PeerMisses int64 `json:"peer_misses"`
	// PeerErrors counts failed attempts (timeouts, bad status, corrupt
	// payloads); Rejected attempts the breakers fast-failed; Hedges the
	// parallel second attempts; Retries the backoff rounds taken.
	PeerErrors int64 `json:"peer_errors"`
	Rejected   int64 `json:"breaker_rejected"`
	Hedges     int64 `json:"hedges"`
	Retries    int64 `json:"retry_rounds"`
	// Fills counts successful background entry offers to peers.
	Fills      int64 `json:"fills"`
	FillErrors int64 `json:"fill_errors"`
	// BreakerState maps each peer URL to its breaker position.
	BreakerState map[string]string `json:"breaker_state,omitempty"`
}

type peer struct {
	base string
	brk  *breaker.Breaker
}

// Client is the peer-facing side of the cache tier. The zero of *Client
// (nil) is a disabled client: every method is a safe no-op.
type Client struct {
	opts  Options
	hc    *http.Client
	peers []*peer

	rngMu sync.Mutex
	rng   *rand.Rand

	lookups, hits, misses, errors atomic.Int64
	rejected, hedges, retries     atomic.Int64
	fills, fillErrors             atomic.Int64

	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

// New builds a client over a static peer set. An empty peer list
// returns nil — the disabled client.
func New(opts Options) *Client {
	if len(opts.Peers) == 0 {
		return nil
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	if opts.Hedge <= 0 {
		opts.Hedge = opts.Timeout / 4
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 1
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 25 * time.Millisecond
	}
	bopts := opts.Breaker
	if bopts.Threshold == 0 && bopts.Cooldown == 0 {
		bopts = breaker.DefaultOptions()
	}
	c := &Client{
		opts:   opts,
		hc:     opts.Client,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		closed: make(chan struct{}),
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	for _, base := range opts.Peers {
		c.peers = append(c.peers, &peer{base: base, brk: breaker.New(bopts)})
	}
	return c
}

// attemptResult is one peer's terminal answer inside a round.
type attemptResult struct {
	payload []byte
	found   bool
	miss    bool
}

// Lookup asks the fleet for an entry. It returns (payload, true) on a
// verified hit and (nil, false) on any other outcome — miss, timeout,
// partition, corruption, all breakers open — because the caller's
// contract is "recompute on false". It never returns an error.
func (c *Client) Lookup(ctx context.Context, key string) ([]byte, bool) {
	if c == nil || !cas.ValidKey(key) {
		return nil, false
	}
	c.lookups.Add(1)
	backoff := c.opts.Backoff
	for round := 0; round <= c.opts.Retries; round++ {
		if round > 0 {
			c.retries.Add(1)
			// Exponential backoff with jitter, bounded by the caller.
			c.rngMu.Lock()
			d := backoff + time.Duration(c.rng.Int63n(int64(backoff)+1))
			c.rngMu.Unlock()
			backoff *= 2
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				c.misses.Add(1)
				return nil, false
			case <-t.C:
			}
		}
		payload, found, sawMiss := c.round(ctx, key)
		if found {
			c.hits.Add(1)
			return payload, true
		}
		// A healthy peer answered 404: the fleet does not have the entry.
		// Retrying buys nothing — go compute it.
		if sawMiss || ctx.Err() != nil {
			break
		}
	}
	c.misses.Add(1)
	return nil, false
}

// round tries the breaker-allowed peers once, hedged: the first attempt
// runs alone for the hedge delay, then a second starts in parallel; any
// terminal answer (error or miss) from a launched attempt also advances
// to the next peer immediately. The first verified hit wins.
func (c *Client) round(ctx context.Context, key string) (payload []byte, found, sawMiss bool) {
	var allowed []*peer
	for _, p := range c.rotation() {
		if p.brk.Allow() == nil {
			allowed = append(allowed, p)
		} else {
			c.rejected.Add(1)
		}
	}
	if len(allowed) == 0 {
		return nil, false, false
	}
	resc := make(chan attemptResult, len(allowed))
	next := 0
	launch := func() {
		p := allowed[next]
		next++
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			body, ok, err := c.attempt(ctx, p, key)
			p.brk.Record(err != nil)
			if err != nil {
				c.errors.Add(1)
				resc <- attemptResult{}
				return
			}
			resc <- attemptResult{payload: body, found: ok, miss: !ok}
		}()
	}
	launch()
	pending := 1
	hedge := time.NewTimer(c.opts.Hedge)
	defer hedge.Stop()
	for {
		select {
		case r := <-resc:
			pending--
			if r.found {
				return r.payload, true, sawMiss
			}
			if r.miss {
				sawMiss = true
			}
			if next < len(allowed) {
				launch()
				pending++
			} else if pending == 0 {
				return nil, false, sawMiss
			}
		case <-hedge.C:
			if next < len(allowed) && pending > 0 {
				c.hedges.Add(1)
				launch()
				pending++
			}
		case <-ctx.Done():
			return nil, false, sawMiss
		}
	}
}

// rotation returns the peers starting at a seeded-random offset, so
// lookups spread first-attempt load across the fleet.
func (c *Client) rotation() []*peer {
	if len(c.peers) == 1 {
		return c.peers
	}
	c.rngMu.Lock()
	off := c.rng.Intn(len(c.peers))
	c.rngMu.Unlock()
	out := make([]*peer, 0, len(c.peers))
	out = append(out, c.peers[off:]...)
	return append(out, c.peers[:off]...)
}

// attempt is one deadline-bounded GET against one peer. A 404 is a
// clean miss (nil error); anything else short of a verified payload is
// an error that feeds the peer's breaker.
func (c *Client) attempt(ctx context.Context, p *peer, key string) ([]byte, bool, error) {
	if ferr := c.opts.Faults.Hit(FaultPeerTimeout); ferr != nil {
		return nil, false, fmt.Errorf("fleet: %s: injected hang: %w", p.base, context.DeadlineExceeded)
	}
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, p.base+"/v1/cas/"+key, nil)
	if err != nil {
		return nil, false, fmt.Errorf("fleet: %s: %w", p.base, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("fleet: %s: %w", p.base, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNotFound:
		return nil, false, nil
	case http.StatusOK:
	default:
		return nil, false, fmt.Errorf("fleet: %s: status %d", p.base, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxEntryBytes+1))
	if err != nil {
		return nil, false, fmt.Errorf("fleet: %s: read: %w", p.base, err)
	}
	if len(body) > MaxEntryBytes {
		return nil, false, fmt.Errorf("fleet: %s: entry exceeds %d bytes", p.base, MaxEntryBytes)
	}
	if ferr := c.opts.Faults.Hit(FaultPeerCorrupt); ferr != nil && len(body) > 0 {
		body = bytes.Clone(body)
		body[0] ^= 0xff // corrupted transfer: verification below must catch it
	}
	sum := resp.Header.Get(HeaderSum)
	if sum == "" {
		return nil, false, fmt.Errorf("fleet: %s: response missing %s", p.base, HeaderSum)
	}
	if cas.Sum(body) != sum {
		return nil, false, fmt.Errorf("fleet: %s: payload checksum mismatch", p.base)
	}
	return body, true, nil
}

// Fill offers an entry to every peer, asynchronously and best-effort:
// it returns immediately, the PUTs run in background goroutines (one
// per peer, each deadline-bounded), and failures only feed the peers'
// breakers — the local answer was already served. Fills started before
// Close are waited for by Close.
func (c *Client) Fill(key string, payload []byte) {
	if c == nil || !cas.ValidKey(key) {
		return
	}
	select {
	case <-c.closed:
		return
	default:
	}
	for _, p := range c.peers {
		if p.brk.Allow() != nil {
			c.rejected.Add(1)
			continue
		}
		c.wg.Add(1)
		go func(p *peer) {
			defer c.wg.Done()
			err := c.put(p, key, payload)
			p.brk.Record(err != nil)
			if err != nil {
				c.fillErrors.Add(1)
			} else {
				c.fills.Add(1)
			}
		}(p)
	}
}

// put is one deadline-bounded PUT of an entry to one peer.
func (c *Client) put(p *peer, key string, payload []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.base+"/v1/cas/"+key, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderSum, cas.Sum(payload))
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated &&
		resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("fleet: %s: fill status %d", p.base, resp.StatusCode)
	}
	return nil
}

// Peers returns the configured peer URLs.
func (c *Client) Peers() []string {
	if c == nil {
		return nil
	}
	out := make([]string, len(c.peers))
	for i, p := range c.peers {
		out[i] = p.base
	}
	return out
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Peers:      len(c.peers),
		Lookups:    c.lookups.Load(),
		PeerHits:   c.hits.Load(),
		PeerMisses: c.misses.Load(),
		PeerErrors: c.errors.Load(),
		Rejected:   c.rejected.Load(),
		Hedges:     c.hedges.Load(),
		Retries:    c.retries.Load(),
		Fills:      c.fills.Load(),
		FillErrors: c.fillErrors.Load(),
	}
	st.BreakerState = map[string]string{}
	for _, p := range c.peers {
		st.BreakerState[p.base] = p.brk.State().String()
	}
	return st
}

// BreakerStates returns peer URL → breaker position, sorted by URL
// (diagnostics and tests).
func (c *Client) BreakerStates() []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p.base+"="+p.brk.State().String())
	}
	sort.Strings(out)
	return out
}

// Close stops accepting new fills and waits for every in-flight
// background goroutine (bounded by their per-attempt deadlines), so a
// draining daemon leaks nothing. Idempotent.
func (c *Client) Close() {
	if c == nil {
		return
	}
	c.closeOnce.Do(func() { close(c.closed) })
	c.wg.Wait()
}
