// Package model implements the Sec. V parametric performance/power/energy
// model of PolyUFC: execution time decomposed into compute and memory
// components (Eqns. 2-4), performance and bandwidth (Eqns. 5-6), peak and
// average power (Eqns. 8 and 10), energy (Eqn. 11) and EDP, all parametric
// in the uncore frequency cap f_c and the statically computed operational
// intensity.
package model

import (
	"math"

	"polyufc/internal/cachemodel"
	"polyufc/internal/roofline"
)

// KernelStats are the per-kernel inputs of the model, produced by
// PolyUFC-CM (Sec. IV): flop count, traffic, and the per-level hit/miss
// ratio chain.
type KernelStats struct {
	Flops  int64
	QBytes int64 // requested bytes (loads+stores x element size)
	QDRAM  int64 // LLC<->DRAM bytes (thread-shared figure, used for OI)
	// QDRAMTime is the total physical DRAM traffic driving the time and
	// bandwidth terms: the thread-sharing heuristic divides QDRAM for
	// characterization, but wall time is governed by the undivided volume
	// over the shared memory system.
	QDRAMTime int64
	OI        float64
	// HitRatio[i], MissRatio[i] per cache level, L1 first.
	HitRatio  []float64
	MissRatio []float64
	// Threads the kernel will run with (OpenMP).
	Threads int
	// RemoteRatio is the fraction of DRAM traffic served from a remote
	// socket across the interconnect (the NUMA intensive coordinate);
	// 0 on single-socket placements. It only takes effect when the model
	// carries a RemoteCost.
	RemoteRatio float64
}

// FromCacheModel converts a PolyUFC-CM result into model inputs.
func FromCacheModel(r *cachemodel.Result, threads int) KernelStats {
	div := int64(r.ThreadsDiv)
	if div < 1 {
		div = 1
	}
	ks := KernelStats{
		Flops: r.Flops, QBytes: r.QBytes, QDRAM: r.QDRAM,
		QDRAMTime: r.QDRAM * div, OI: r.OI,
		Threads: threads,
	}
	for _, lv := range r.Levels {
		ks.HitRatio = append(ks.HitRatio, lv.HitRatio)
		ks.MissRatio = append(ks.MissRatio, lv.MissRatio)
	}
	return ks
}

// Estimate is the model's prediction at one uncore frequency.
type Estimate struct {
	FGHz      float64
	Seconds   float64 // T_{f,I} (Eqn. 2)
	TCompute  float64 // T^Omega (Eqn. 3)
	TMemory   float64 // T^Q (Eqn. 4)
	GFlops    float64 // Perf (Eqn. 5), in Gflop/s
	GBs       float64 // BW (Eqn. 6), in GB/s
	Watts     float64 // P_{f,I} (Eqn. 10)
	PeakWatts float64 // P̂ ceiling (Eqn. 8)
	Joules    float64 // E_{f,I} (Eqn. 11)
	EDP       float64 // E x T
	Class     roofline.Class
}

// RemoteCost is the analytic inter-socket traffic term of a topology
// target: the per-byte service time and energy a remote DRAM access pays
// on top of a local one. It is derived from the backend's declared
// interconnect (known topology data), not calibrated — the hidden truth
// model charges its own version, so the analytic term is genuinely
// tested against measurement like every other part of the model.
type RemoteCost struct {
	SecPerByte    float64
	JoulesPerByte float64
}

// Model evaluates the Sec. V equations for one kernel on one calibrated
// platform.
type Model struct {
	C  *roofline.Constants
	KS KernelStats
	// Remote, when non-nil, arms the inter-socket traffic term for
	// kernels with a non-zero RemoteRatio. Nil (every single-socket
	// model) evaluates the original equations bit for bit.
	Remote *RemoteCost
}

// New builds a model instance.
func New(c *roofline.Constants, ks KernelStats) *Model {
	return &Model{C: c, KS: ks}
}

// NewNUMA builds a model with the inter-socket traffic term armed.
func NewNUMA(c *roofline.Constants, ks KernelStats, rc *RemoteCost) *Model {
	return &Model{C: c, KS: ks, Remote: rc}
}

// Class returns the kernel's CB/BB characterization (Sec. IV-D).
func (m *Model) Class() roofline.Class { return m.C.Classify(m.KS.OI) }

// At evaluates the model at uncore frequency f (GHz).
func (m *Model) At(f float64) Estimate {
	c, ks := m.C, m.KS
	th := float64(maxInt(ks.Threads, 1))

	// Eqn. 3: compute time at full machine throughput; a serial kernel
	// only uses one core's share of the peak.
	perThreadTFpu := c.TFpu * float64(maxInt(threadsOfPeak(c), 1))
	tComp := float64(ks.Flops) * perThreadTFpu / th

	// Eqn. 4: memory time. The requested volume Q is served at level i
	// with probability (prod_{j<i} miss_j) * hit_i, at hit latency H_i;
	// what misses everywhere goes to DRAM at the f-dependent per-byte
	// service time M^t(f).
	q := float64(ks.QBytes)
	tMem := 0.0
	chain := 1.0
	for i := range ks.HitRatio {
		perAccess := c.HitLatency[i]
		// Convert the per-access service time into per-byte by the
		// element granularity implied by QBytes/accesses; the calibrated
		// HitLatency is per access, so scale by accesses = Q/elem. To stay
		// element-size agnostic we fold H_i per byte using 8-byte elements
		// (the calibration bench granularity).
		tMem += chain * ks.HitRatio[i] * (q / 8.0) * perAccess
		chain *= ks.MissRatio[i]
	}
	tMem /= th // hits served concurrently across threads
	qTime := ks.QDRAMTime
	if qTime == 0 {
		qTime = ks.QDRAM
	}
	tDRAM := float64(qTime) * c.MissLat(f)
	tMem += tDRAM

	// Inter-socket traffic term: the remote fraction of DRAM bytes pays
	// the link's per-byte service time serially — the link is a shared
	// resource the uncore cap does not clock, so the term is frequency-
	// independent (it deepens the memory-bound plateau, pushing optimal
	// caps down). Skipped entirely at rho = 0 so single-socket estimates
	// are bit-identical to the pre-topology model.
	var remoteBytes float64
	if m.Remote != nil && ks.RemoteRatio > 0 {
		rho := math.Min(ks.RemoteRatio, 1)
		remoteBytes = rho * float64(qTime)
		tMem += remoteBytes * m.Remote.SecPerByte
	}

	t := tComp + tMem
	if t <= 0 {
		t = 1e-12
	}

	perf := float64(ks.Flops) / t
	bw := float64(qTime) / t

	// Eqn. 10: average power, CB/BB specialization. kappa(f) = alpha*f +
	// gamma converts achieved DRAM bandwidth into uncore dynamic power.
	pUncore := c.UncorePower(f, bw)
	pCore := c.EFpu * perf
	watts := c.PCon + pCore + pUncore

	// Eqn. 8: peak power ceiling.
	var peak float64
	cls := m.Class()
	if cls == roofline.ComputeBound {
		peak = c.PCon + c.PeakDRAMPower(f)*(c.BtDRAM/math.Max(ks.OI, 1e-9)) + c.PFpuHat
	} else {
		peak = c.PCon + c.PeakDRAMPower(f) + c.PFpuHat*(ks.OI/c.BtDRAM)
	}

	// Eqn. 11: E = Omega*e_FPU + T^Q * P (compute energy plus
	// time-weighted platform power for the memory phase; the constant and
	// uncore power also burn during compute).
	joules := float64(ks.Flops)*c.EFpu + t*(c.PCon+pUncore)
	if remoteBytes > 0 {
		// Link transfer energy; the time-weighted platform power of the
		// extra seconds is already inside t*(PCon+pUncore).
		joules += remoteBytes * m.Remote.JoulesPerByte
	}

	return Estimate{
		FGHz: f, Seconds: t, TCompute: tComp, TMemory: tMem,
		GFlops: perf / 1e9, GBs: bw / 1e9,
		Watts: watts, PeakWatts: peak,
		Joules: joules, EDP: joules * t,
		Class: cls,
	}
}

// threadsOfPeak reports how many threads the calibrated peak assumed: the
// calibration benches run fully parallel, so TFpu is whole-machine. The
// count is recorded by the calibration from the backend description —
// hand-built Constants without it are treated as single-thread peaks.
func threadsOfPeak(c *roofline.Constants) int {
	if c.CalibThreads > 0 {
		return c.CalibThreads
	}
	return 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Sweep evaluates the model over a frequency grid.
func (m *Model) Sweep(freqs []float64) []Estimate {
	out := make([]Estimate, len(freqs))
	for i, f := range freqs {
		out[i] = m.At(f)
	}
	return out
}

// Deltas are the relative changes PolyUFC-SEARCH steers by (Sec. VI-C).
type Deltas struct {
	Perf, BW, EDP float64
}

// DeltasBetween computes new/old ratios.
func DeltasBetween(old, new Estimate) Deltas {
	return Deltas{
		Perf: safeRatio(new.GFlops, old.GFlops),
		BW:   safeRatio(new.GBs, old.GBs),
		EDP:  safeRatio(new.EDP, old.EDP),
	}
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}
