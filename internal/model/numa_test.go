package model

import (
	"testing"

	"polyufc/internal/hw"
)

func TestRemoteTermZeroRatioBitIdentical(t *testing.T) {
	c := calibrated(t, hw.BDW())
	rc := &RemoteCost{SecPerByte: 1e-9, JoulesPerByte: 1e-11}
	for _, ks := range []KernelStats{cbStats(), bbStats()} {
		plain := New(c, ks).At(2.0)
		numa := NewNUMA(c, ks, rc).At(2.0)
		if plain != numa {
			t.Fatalf("rho=0 NUMA estimate differs from the plain model:\n%+v\nvs\n%+v", plain, numa)
		}
		// A rho without a RemoteCost is likewise inert.
		ks.RemoteRatio = 0.5
		if got := New(c, ks).At(2.0); got != plain {
			t.Fatal("RemoteRatio without RemoteCost changed the estimate")
		}
	}
}

func TestRemoteTermCostsTimeAndEnergy(t *testing.T) {
	c := calibrated(t, hw.BDW())
	ic := hw.BDW().Backend.Interconnect // nil: BDW is single-socket
	if ic != nil {
		t.Fatal("BDW grew an interconnect?")
	}
	rc := &RemoteCost{SecPerByte: 2e-9, JoulesPerByte: 2e-11}
	ks := bbStats()
	base := NewNUMA(c, ks, rc).At(2.0)
	prev := base
	for _, rho := range []float64{0.25, 0.5, 1.0} {
		ks.RemoteRatio = rho
		got := NewNUMA(c, ks, rc).At(2.0)
		if !(got.Seconds > prev.Seconds) || !(got.Joules > prev.Joules) {
			t.Fatalf("rho=%g: remote traffic free (%.4g s vs %.4g s)", rho, got.Seconds, prev.Seconds)
		}
		prev = got
	}
	ks.RemoteRatio = 3.0 // clamps to 1
	if got := NewNUMA(c, ks, rc).At(2.0); got != prev {
		t.Fatal("remote ratio did not clamp at 1")
	}
}

// TestRemoteTermLowersBBCap is the modeling claim behind per-socket cap
// vectors: the link term deepens the memory plateau, so a bandwidth-bound
// kernel's EDP-optimal uncore cap can only move down (or stay) as its
// remote share grows — extra frequency cannot speed up link-bound bytes.
func TestRemoteTermLowersBBCap(t *testing.T) {
	c := calibrated(t, hw.BDW())
	rc := &RemoteCost{SecPerByte: 4e-9, JoulesPerByte: 1.5e-11}
	freqs := hw.BDW().UncoreSteps()
	ks := bbStats()
	argminEDP := func(m *Model) float64 {
		best, bestEDP := freqs[0], m.At(freqs[0]).EDP
		for _, f := range freqs[1:] {
			if e := m.At(f).EDP; e < bestEDP {
				best, bestEDP = f, e
			}
		}
		return best
	}
	prevCap := 99.0
	for _, rho := range []float64{0, 0.5, 1.0} {
		ks.RemoteRatio = rho
		cap := argminEDP(NewNUMA(c, ks, rc))
		if cap > prevCap {
			t.Fatalf("rho=%g raised the selected cap: %.2f > %.2f", rho, cap, prevCap)
		}
		prevCap = cap
	}
}
