package model

import (
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/roofline"
)

func calibrated(t *testing.T, p *hw.Platform) *roofline.Constants {
	t.Helper()
	c, err := roofline.Calibrate(hw.NewMachine(p))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// cbStats is a compute-heavy kernel (high OI).
func cbStats() KernelStats {
	return KernelStats{
		Flops: 2e9, QBytes: 8e9, QDRAM: 64e6, OI: 2e9 / 64e6,
		HitRatio:  []float64{0.95, 0.6, 0.5},
		MissRatio: []float64{0.05, 0.4, 0.5},
		Threads:   12,
	}
}

// bbStats is a streaming kernel (low OI).
func bbStats() KernelStats {
	return KernelStats{
		Flops: 4e7, QBytes: 4e8, QDRAM: 64e7, OI: 4e7 / 64e7,
		HitRatio:  []float64{0.6, 0.2, 0.1},
		MissRatio: []float64{0.4, 0.8, 0.9},
		Threads:   12,
	}
}

func TestClassification(t *testing.T) {
	c := calibrated(t, hw.BDW())
	if New(c, cbStats()).Class() != roofline.ComputeBound {
		t.Fatal("high-OI kernel must be CB")
	}
	if New(c, bbStats()).Class() != roofline.BandwidthBound {
		t.Fatal("low-OI kernel must be BB")
	}
}

func TestCBTimeFlatBBTimeFalls(t *testing.T) {
	c := calibrated(t, hw.BDW())
	cb := New(c, cbStats())
	lo, hi := cb.At(1.2), cb.At(2.8)
	if lo.Seconds > hi.Seconds*1.10 {
		t.Fatalf("CB time varies too much: %.4f vs %.4f", lo.Seconds, hi.Seconds)
	}
	bb := New(c, bbStats())
	blo, bhi := bb.At(1.2), bb.At(2.8)
	if blo.Seconds < bhi.Seconds*1.2 {
		t.Fatalf("BB time does not improve with f: %.4f vs %.4f", blo.Seconds, bhi.Seconds)
	}
}

func TestEnergyGrowsWithFrequencyForCB(t *testing.T) {
	c := calibrated(t, hw.RPL())
	cb := New(c, cbStats())
	if cb.At(1.0).Joules >= cb.At(4.5).Joules {
		t.Fatal("CB energy must grow with uncore frequency")
	}
}

func TestEstimateInternalConsistency(t *testing.T) {
	c := calibrated(t, hw.BDW())
	m := New(c, bbStats())
	for _, f := range []float64{1.2, 2.0, 2.8} {
		e := m.At(f)
		if e.Seconds <= 0 || e.Joules <= 0 || e.EDP <= 0 {
			t.Fatalf("non-positive estimate at %.1f: %+v", f, e)
		}
		if e.TCompute+e.TMemory != e.Seconds {
			t.Fatalf("time decomposition broken at %.1f", f)
		}
		wantPerf := float64(m.KS.Flops) / e.Seconds / 1e9
		if diff := (e.GFlops - wantPerf) / wantPerf; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Eqn. 5 broken")
		}
		wantBW := float64(m.KS.QDRAM) / e.Seconds / 1e9
		if diff := (e.GBs - wantBW) / wantBW; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Eqn. 6 broken")
		}
	}
}

func TestPeakPowerCeilingShape(t *testing.T) {
	// Eqn. 8: as OI grows beyond the balance, the CB ceiling approaches
	// PCon + PFpuHat.
	c := calibrated(t, hw.RPL())
	ksHigh := cbStats()
	ksHigh.OI = 1e6
	eHigh := New(c, ksHigh).At(platMax(c))
	limit := c.PCon + c.PFpuHat
	if eHigh.PeakWatts < limit*0.99 || eHigh.PeakWatts > limit*1.5 {
		t.Fatalf("CB ceiling at huge OI = %.1f, want near %.1f", eHigh.PeakWatts, limit)
	}
	// BB ceiling grows with OI.
	b1, b2 := bbStats(), bbStats()
	b2.OI = b1.OI * 4
	p1 := New(c, b1).At(2.0).PeakWatts
	p2 := New(c, b2).At(2.0).PeakWatts
	if p2 <= p1 {
		t.Fatal("BB ceiling must grow with OI")
	}
}

func TestModelTracksMachineForStreaming(t *testing.T) {
	// The calibrated model must reproduce the machine's timing for a
	// stream-like profile within a modest factor across the f range.
	plat := hw.BDW()
	mach := hw.NewMachine(plat)
	c := calibrated(t, plat)
	prof := &hw.CacheProfile{
		Flops: 4e7, Instances: 4e7, Loads: 4e7, Stores: 0,
		LevelHits:   []int64{3e7, 0, 0},
		LevelMisses: []int64{1e7, 1e7, 1e7},
		LLCMisses:   1e7, DRAMReadB: 64e7, HasParallel: true,
	}
	ks := KernelStats{
		Flops: prof.Flops, QBytes: prof.Loads * 8, QDRAM: prof.DRAMReadB,
		OI:        float64(prof.Flops) / float64(prof.DRAMReadB),
		HitRatio:  []float64{0.75, 0, 0},
		MissRatio: []float64{0.25, 1, 1},
		Threads:   plat.Threads,
	}
	m := New(c, ks)
	for i, r := range mach.SweepUncore(prof) {
		_ = i
		e := m.At(r.UncoreGHz)
		ratio := e.Seconds / r.Seconds
		if ratio > 2.0 || ratio < 0.5 {
			t.Fatalf("at %.1f GHz model %.5fs vs machine %.5fs (x%.2f)",
				r.UncoreGHz, e.Seconds, r.Seconds, ratio)
		}
	}
}

func TestDeltas(t *testing.T) {
	a := Estimate{GFlops: 100, GBs: 10, EDP: 4}
	b := Estimate{GFlops: 110, GBs: 12, EDP: 3}
	d := DeltasBetween(a, b)
	if d.Perf != 1.1 || d.BW != 1.2 || d.EDP != 0.75 {
		t.Fatalf("deltas = %+v", d)
	}
}

// platMax returns the platform's maximum uncore frequency (public Table
// III data).
func platMax(c *roofline.Constants) float64 {
	if c.Platform == "BDW" {
		return 2.8
	}
	return 4.6
}
