package model

import (
	"math"

	"polyufc/internal/roofline"
)

// This file implements the coordinated core+uncore extension the paper's
// discussion points to (Sec. VII-F "Core Frequency Selection" and the
// joint-scaling related work [89]): the Sec. V model re-parameterized in
// both frequency domains. The roofline constants are calibrated at the
// base core clock; core-clocked quantities scale by the standard DVFS
// laws — throughput and hit latency linearly with f_core, dynamic energy
// per flop as a voltage-floor quadratic.

// CoreScaling captures the assumed DVFS laws for the core domain.
type CoreScaling struct {
	// BaseGHz is the clock the constants were calibrated at.
	BaseGHz float64
	// EnergyFloor is the fraction of per-flop energy that does not scale
	// with frequency (leakage / minimum-voltage share).
	EnergyFloor float64
}

// DefaultCoreScaling returns the scaling law used by the joint model.
func DefaultCoreScaling(base float64) CoreScaling {
	return CoreScaling{BaseGHz: base, EnergyFloor: 0.35}
}

// AtJoint evaluates the model at a core frequency fc and uncore frequency
// fu. With fc equal to the calibration base, AtJoint(base, fu) == At(fu).
func (m *Model) AtJoint(cs CoreScaling, fc, fu float64) Estimate {
	c, ks := m.C, m.KS
	th := float64(maxInt(ks.Threads, 1))
	rel := fc / cs.BaseGHz

	// Compute time scales inversely with the core clock.
	perThreadTFpu := c.TFpu * float64(maxInt(threadsOfPeak(c), 1)) / rel
	tComp := float64(ks.Flops) * perThreadTFpu / th

	// Cache hits are core-clocked.
	q := float64(ks.QBytes)
	tMem := 0.0
	chain := 1.0
	for i := range ks.HitRatio {
		perAccess := c.HitLatency[i] / rel
		tMem += chain * ks.HitRatio[i] * (q / 8.0) * perAccess
		chain *= ks.MissRatio[i]
	}
	tMem /= th
	qTime := ks.QDRAMTime
	if qTime == 0 {
		qTime = ks.QDRAM
	}
	tMem += float64(qTime) * c.MissLat(fu)

	t := tComp + tMem
	if t <= 0 {
		t = 1e-12
	}
	perf := float64(ks.Flops) / t
	bw := float64(qTime) / t

	eFlop := c.EFpu * (cs.EnergyFloor + (1-cs.EnergyFloor)*rel*rel)
	pUncore := c.UncorePower(fu, bw)
	pCore := eFlop * perf
	// PCon was calibrated at the base core clock and includes
	// CoreIdle*base; re-express it at fc.
	pConAt := c.PCon + c.CoreIdleWPerGHz*(fc-c.CoreBaseGHz)
	watts := pConAt + pCore + pUncore

	// Peak ceiling: the flop-engine roof scales with the core clock times
	// the per-flop energy law (flop rate x energy/flop).
	pFpuAt := c.PFpuHat * rel * (cs.EnergyFloor + (1-cs.EnergyFloor)*rel*rel)
	var peak float64
	cls := m.Class()
	if cls == roofline.ComputeBound {
		peak = c.PCon + c.PeakDRAMPower(fu)*(c.BtDRAM/math.Max(ks.OI, 1e-9)) + pFpuAt
	} else {
		peak = c.PCon + c.PeakDRAMPower(fu) + pFpuAt*(ks.OI/c.BtDRAM)
	}

	joules := float64(ks.Flops)*eFlop + t*(pConAt+pUncore)
	return Estimate{
		FGHz: fu, Seconds: t, TCompute: tComp, TMemory: tMem,
		GFlops: perf / 1e9, GBs: bw / 1e9,
		Watts: watts, PeakWatts: peak,
		Joules: joules, EDP: joules * t,
		Class: cls,
	}
}

// JointResult is the outcome of a coordinated core+uncore search.
type JointResult struct {
	CoreGHz, UncoreGHz float64
	Est                Estimate
	Evaluated          int
	Rounds             int
}

// SearchJoint finds (f_core, f_uncore) minimizing the objective by
// coordinate descent over the two frequency grids: each round bisects one
// domain with the other held fixed, until a fixpoint (at most maxRounds
// rounds). Objective values come from AtJoint.
func (m *Model) SearchJoint(cs CoreScaling, coreFreqs, uncoreFreqs []float64,
	objective func(Estimate) float64, maxRounds int) JointResult {
	res := JointResult{}
	if len(coreFreqs) == 0 || len(uncoreFreqs) == 0 {
		return res
	}
	fc := coreFreqs[len(coreFreqs)-1] // the governor default: max
	fu := uncoreFreqs[len(uncoreFreqs)-1]
	eval := func(c, u float64) Estimate {
		res.Evaluated++
		return m.AtJoint(cs, c, u)
	}
	bisect := func(grid []float64, score func(float64) float64) float64 {
		lo, hi := 0, len(grid)-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if score(grid[mid]) <= score(grid[mid+1]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if score(grid[lo]) <= score(grid[hi]) {
			return grid[lo]
		}
		return grid[hi]
	}
	for round := 0; round < maxRounds; round++ {
		res.Rounds = round + 1
		prevC, prevU := fc, fu
		fu = bisect(uncoreFreqs, func(u float64) float64 {
			return objective(eval(fc, u))
		})
		fc = bisect(coreFreqs, func(c float64) float64 {
			return objective(eval(c, fu))
		})
		if fc == prevC && fu == prevU {
			break
		}
	}
	res.CoreGHz, res.UncoreGHz = fc, fu
	res.Est = m.AtJoint(cs, fc, fu)
	return res
}
