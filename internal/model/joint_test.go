package model

import (
	"math"
	"testing"

	"polyufc/internal/hw"
)

func coreGrid(p *hw.Platform) []float64 {
	var out []float64
	for f := p.CoreMin; f <= p.CoreMax+1e-9; f += 0.1 {
		out = append(out, math.Round(f*10)/10)
	}
	return out
}

func TestAtJointReducesToAtAtBase(t *testing.T) {
	p := hw.BDW()
	c := calibrated(t, p)
	m := New(c, bbStats())
	cs := DefaultCoreScaling(p.CoreBase)
	for _, fu := range []float64{1.2, 2.0, 2.8} {
		a := m.At(fu)
		b := m.AtJoint(cs, p.CoreBase, fu)
		if math.Abs(a.Seconds-b.Seconds) > 1e-12*a.Seconds {
			t.Fatalf("time mismatch at base core: %g vs %g", a.Seconds, b.Seconds)
		}
		if math.Abs(a.Joules-b.Joules) > 1e-9*a.Joules {
			t.Fatalf("energy mismatch at base core: %g vs %g", a.Joules, b.Joules)
		}
	}
}

func TestJointCoreScalingLaws(t *testing.T) {
	p := hw.RPL()
	c := calibrated(t, p)
	m := New(c, cbStats())
	cs := DefaultCoreScaling(p.CoreBase)
	fast := m.AtJoint(cs, p.CoreBase, 2.0)
	slow := m.AtJoint(cs, p.CoreBase/2, 2.0)
	// Compute-bound: halving the core clock roughly doubles compute time.
	if slow.TCompute < 1.9*fast.TCompute {
		t.Fatalf("compute time did not scale with core clock: %g vs %g", slow.TCompute, fast.TCompute)
	}
	// Per-flop energy falls at lower frequency (voltage scaling).
	eFast := fast.Joules / fast.Seconds
	eSlow := slow.Joules / slow.Seconds
	if eSlow >= eFast {
		t.Fatalf("average power did not fall at lower core clock: %g vs %g", eSlow, eFast)
	}
}

func TestSearchJointBBKernelDropsCore(t *testing.T) {
	// A bandwidth-bound kernel wastes core frequency: the joint search
	// must pick a core clock below max while keeping the uncore high.
	p := hw.RPL()
	c := calibrated(t, p)
	m := New(c, bbStats())
	cs := DefaultCoreScaling(p.CoreBase)
	res := m.SearchJoint(cs, coreGrid(p), p.UncoreSteps(),
		func(e Estimate) float64 { return e.EDP }, 4)
	if res.CoreGHz >= p.CoreMax {
		t.Fatalf("BB kernel kept core at max (%.1f)", res.CoreGHz)
	}
	mid := (p.UncoreMin + p.UncoreMax) / 2
	if res.UncoreGHz <= mid {
		t.Fatalf("BB kernel dropped uncore to %.1f", res.UncoreGHz)
	}
	// Joint must beat uncore-only (core pinned at base).
	uncoreOnly := m.AtJoint(cs, p.CoreBase, res.UncoreGHz)
	if res.Est.EDP > uncoreOnly.EDP*1.001 {
		t.Fatalf("joint EDP %.4g worse than uncore-only %.4g", res.Est.EDP, uncoreOnly.EDP)
	}
}

func TestSearchJointCBKernelKeepsCoreHighish(t *testing.T) {
	// Compute-bound: time scales with core clock, so EDP = P*T^2 punishes
	// deep core throttling; the chosen core frequency must stay in the
	// upper half while the uncore drops low.
	p := hw.BDW()
	c := calibrated(t, p)
	m := New(c, cbStats())
	cs := DefaultCoreScaling(p.CoreBase)
	res := m.SearchJoint(cs, coreGrid(p), p.UncoreSteps(),
		func(e Estimate) float64 { return e.EDP }, 4)
	if res.CoreGHz < (p.CoreMin+p.CoreMax)/2 {
		t.Fatalf("CB kernel throttled core to %.1f GHz", res.CoreGHz)
	}
	if res.UncoreGHz > (p.UncoreMin+p.UncoreMax)/2 {
		t.Fatalf("CB kernel kept uncore at %.1f GHz", res.UncoreGHz)
	}
	if res.Evaluated == 0 || res.Rounds == 0 {
		t.Fatal("no search happened")
	}
}

func TestSearchJointEmptyGrids(t *testing.T) {
	p := hw.BDW()
	c := calibrated(t, p)
	m := New(c, cbStats())
	res := m.SearchJoint(DefaultCoreScaling(p.CoreBase), nil, nil,
		func(e Estimate) float64 { return e.EDP }, 3)
	if res.Evaluated != 0 {
		t.Fatal("empty grids must not evaluate")
	}
}
