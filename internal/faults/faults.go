// Package faults is a deterministic, seeded fault-injection registry for
// robustness testing of the capping runtime (Sec. VII-F models the Intel
// UFS driver as flaky: transient EBUSY, firmware clamping, thermal
// overrides). Packages declare named fault points and probe them with
// Hit; a Registry enables points with probability- or sequence-based
// triggers. A nil *Registry is the disabled state: every method is a
// nil-receiver no-op, so instrumented code pays one pointer test per
// probe and nothing else.
//
// All triggering is deterministic for a fixed seed and call sequence, so
// injection tests are reproducible and shrinkable.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrInjected is the default error returned by a firing fault point.
var ErrInjected = errors.New("injected fault")

// Error wraps ErrInjected (or a custom error) with the fault point name.
type Error struct {
	Point string
	Err   error
}

func (e *Error) Error() string { return "faults: " + e.Point + ": " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Spec configures one fault point. Exactly one trigger is consulted: On
// (1-based call indices) when non-empty, otherwise the probability P.
type Spec struct {
	// P is the per-call firing probability in (0, 1], drawn from the
	// registry's seeded stream.
	P float64
	// On fires on exactly these 1-based call indices of the point.
	On []int64
	// Times bounds the total number of firings; 0 means unlimited.
	Times int64
	// Err overrides ErrInjected as the underlying error.
	Err error
	// Panic makes Hit panic with the fault error instead of returning it
	// (exercises the per-stage panic recovery paths).
	Panic bool
}

type point struct {
	spec  Spec
	calls int64
	fired int64
}

// Registry holds the enabled fault points. It is safe for concurrent use;
// the zero value is not valid — use New.
type Registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
}

// New returns an empty registry with a seeded probability stream.
func New(seed int64) *Registry {
	return &Registry{rng: rand.New(rand.NewSource(seed)), points: map[string]*point{}}
}

// Enable arms a fault point (replacing any previous spec and resetting
// its counters).
func (r *Registry) Enable(name string, s Spec) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.points[name] = &point{spec: s}
	r.mu.Unlock()
}

// Disable disarms a fault point.
func (r *Registry) Disable(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.points, name)
	r.mu.Unlock()
}

// Hit probes a fault point: it returns nil when the registry is nil, the
// point is not enabled, or the trigger does not fire on this call;
// otherwise it returns (or panics with, per Spec.Panic) an *Error for the
// point.
func (r *Registry) Hit(name string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	p, ok := r.points[name]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	p.calls++
	fire := false
	if len(p.spec.On) > 0 {
		for _, i := range p.spec.On {
			if i == p.calls {
				fire = true
				break
			}
		}
	} else if p.spec.P > 0 {
		fire = r.rng.Float64() < p.spec.P
	}
	if fire && p.spec.Times > 0 && p.fired >= p.spec.Times {
		fire = false
	}
	if !fire {
		r.mu.Unlock()
		return nil
	}
	p.fired++
	under := p.spec.Err
	if under == nil {
		under = ErrInjected
	}
	doPanic := p.spec.Panic
	r.mu.Unlock()
	err := &Error{Point: name, Err: under}
	if doPanic {
		panic(err)
	}
	return err
}

// Calls returns how often a point has been probed.
func (r *Registry) Calls(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		return p.calls
	}
	return 0
}

// Fired returns how often a point has fired.
func (r *Registry) Fired(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		return p.fired
	}
	return 0
}

// Points lists the enabled point names, sorted.
func (r *Registry) Points() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name := range r.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

type ctxKey struct{}

// With attaches a registry to a context; nil detaches.
func With(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the registry scoped to a context, or nil (the disabled
// registry) when none is attached.
func From(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}

// Parse builds a registry from a CLI spec: semicolon-separated
// name=trigger entries, where trigger is a probability ("ufs.write.ebusy=0.3"),
// one or more 1-based call indices ("core.cachemodel=@2" or "=@1+4"), or a
// probability with a firing bound ("ufs.thermal.override=0.5x2"). An empty
// spec yields a nil (disabled) registry.
func Parse(spec string, seed int64) (*Registry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	r := New(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, trig, ok := strings.Cut(entry, "=")
		if !ok || name == "" || trig == "" {
			return nil, fmt.Errorf("faults: bad entry %q (want name=trigger)", entry)
		}
		var s Spec
		if after, isSeq := strings.CutPrefix(trig, "@"); isSeq {
			for _, part := range strings.Split(after, "+") {
				i, err := strconv.ParseInt(part, 10, 64)
				if err != nil || i < 1 {
					return nil, fmt.Errorf("faults: bad call index %q in %q", part, entry)
				}
				s.On = append(s.On, i)
			}
		} else {
			prob := trig
			if p, times, hasTimes := strings.Cut(trig, "x"); hasTimes {
				n, err := strconv.ParseInt(times, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faults: bad firing bound %q in %q", times, entry)
				}
				s.Times = n
				prob = p
			}
			p, err := strconv.ParseFloat(prob, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("faults: bad probability %q in %q (want 0 < p <= 1)", prob, entry)
			}
			s.P = p
		}
		r.Enable(name, s)
	}
	return r, nil
}
