package faults

import (
	"context"
	"errors"
	"testing"
)

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	if err := r.Hit("any.point"); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	r.Enable("any.point", Spec{P: 1})
	r.Disable("any.point")
	if r.Calls("any.point") != 0 || r.Fired("any.point") != 0 {
		t.Fatal("nil registry kept counters")
	}
	if pts := r.Points(); pts != nil {
		t.Fatalf("nil registry has points %v", pts)
	}
}

func TestProbabilityTriggerIsDeterministic(t *testing.T) {
	fire := func(seed int64) []bool {
		r := New(seed)
		r.Enable("p", Spec{P: 0.3})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, r.Hit("p") != nil)
		}
		return out
	}
	a, b := fire(42), fire(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	// 200 draws at p=0.3: the count must be in a generous band.
	if fired < 30 || fired > 90 {
		t.Fatalf("fired %d/200 at p=0.3", fired)
	}
}

func TestSequenceTrigger(t *testing.T) {
	r := New(1)
	r.Enable("seq", Spec{On: []int64{2, 5}})
	var fired []int
	for i := 1; i <= 6; i++ {
		if r.Hit("seq") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired on calls %v, want [2 5]", fired)
	}
	if r.Calls("seq") != 6 || r.Fired("seq") != 2 {
		t.Fatalf("calls=%d fired=%d", r.Calls("seq"), r.Fired("seq"))
	}
}

func TestTimesBound(t *testing.T) {
	r := New(7)
	r.Enable("bounded", Spec{P: 1, Times: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if r.Hit("bounded") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

func TestErrorWrapping(t *testing.T) {
	r := New(1)
	custom := errors.New("device busy")
	r.Enable("wrap", Spec{On: []int64{1}, Err: custom})
	err := r.Hit("wrap")
	if !errors.Is(err, custom) {
		t.Fatalf("err %v does not wrap the custom error", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "wrap" {
		t.Fatalf("err %v does not carry the point name", err)
	}

	r.Enable("def", Spec{On: []int64{1}})
	if err := r.Hit("def"); !errors.Is(err, ErrInjected) {
		t.Fatalf("default err %v does not wrap ErrInjected", err)
	}
}

func TestPanicMode(t *testing.T) {
	r := New(1)
	r.Enable("boom", Spec{On: []int64{1}, Panic: true})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("no panic")
		}
		if fe, ok := rec.(*Error); !ok || fe.Point != "boom" {
			t.Fatalf("panic value %v", rec)
		}
	}()
	r.Hit("boom")
}

func TestContextScoping(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("background context has a registry")
	}
	r := New(3)
	ctx := With(context.Background(), r)
	if From(ctx) != r {
		t.Fatal("registry not scoped to context")
	}
}

func TestParse(t *testing.T) {
	r, err := Parse("ufs.write.ebusy=0.3; core.cachemodel=@2+4; ufs.thermal.override=0.5x1", 42)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"core.cachemodel", "ufs.thermal.override", "ufs.write.ebusy"}
	got := r.Points()
	if len(got) != len(want) {
		t.Fatalf("points %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points %v, want %v", got, want)
		}
	}
	// The sequence entry fires on calls 2 and 4 only.
	var fired []int
	for i := 1; i <= 5; i++ {
		if r.Hit("core.cachemodel") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("@2+4 fired on %v", fired)
	}
	// The bounded entry fires at most once.
	n := 0
	for i := 0; i < 50; i++ {
		if r.Hit("ufs.thermal.override") != nil {
			n++
		}
	}
	if n > 1 {
		t.Fatalf("x1 bound fired %d times", n)
	}

	if r, err := Parse("", 1); r != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", r, err)
	}
	for _, bad := range []string{"noeq", "=0.3", "p=", "p=1.5", "p=@0", "p=0.3x0"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}
