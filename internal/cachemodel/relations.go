package cachemodel

import (
	"fmt"

	"polyufc/internal/ir"
	"polyufc/internal/isl"
)

// This file contains the paper-faithful polyhedral-relation formulation of
// PolyUFC-CM (Sec. IV-A/IV-B): access maps extended with cache line and set
// dimensions, cold-miss sets, and reuse pairs. These exact constructions
// are used to validate the scalable analytic engine in model.go and to
// reproduce the footnote-17 duplicate-elimination study; they operate on
// instantiated (fixed-size) domains and are exercised at small problem
// sizes.

// AccessLineSetMap builds the relation {iters -> (line, set)} for one
// access: line = floor(byteaddr / lineSize) and set = line mod numSets,
// both expressed with existential-free affine constraints over the added
// output dimensions plus one existential for the modulo quotient.
func AccessLineSetMap(si ir.StatementInfo, acc ir.Access, base, lineSize, numSets int64) (isl.Map, error) {
	ivs := si.IVNames()
	sp := isl.NewMapSpace(nil, ivs, []string{"line", "set"})
	b := isl.Universe(sp)
	nIn := len(ivs)

	// Linearized byte address as a LinExpr over the input dims.
	strides := acc.Array.Strides()
	if len(acc.Index) != len(strides) {
		return isl.Map{}, fmt.Errorf("cachemodel: access arity mismatch on %s", acc.Array.Name)
	}
	addr := sp.ConstExpr(base)
	for d, e := range acc.Index {
		scale := strides[d] * acc.Array.ElemSize
		for iv, c := range e.Coef {
			idx := sp.VarIndex(iv)
			if idx < 0 || idx >= nIn {
				return isl.Map{}, fmt.Errorf("cachemodel: unknown IV %q", iv)
			}
			addr.VarCoef[idx] += c * scale
		}
		addr.Const += e.Const * scale
	}

	lineVar := sp.VarExpr(nIn)
	setVar := sp.VarExpr(nIn + 1)
	// lineSize*line <= addr <= lineSize*line + lineSize - 1.
	b.AddGE(addr.Sub(lineVar.Scale(lineSize)))
	b.AddGE(lineVar.Scale(lineSize).AddConst(lineSize - 1).Sub(addr))
	// set = line - numSets*q with 0 <= set < numSets.
	q := b.AddExists(1)
	row := make([]int64, nIn+2+1)
	// line - numSets*q - set == 0.
	row[nIn] = 1
	row[nIn+1] = -1
	row[q] = -numSets
	b.AddRawEQ(row, 0)
	b.AddGE(setVar)
	b.AddGE(setVar.Neg().AddConst(numSets - 1))

	m := isl.FromBasic(b)
	// Restrict to the iteration domain.
	return m.IntersectDomain(si.Domain), nil
}

// DistinctLineSet returns the set of distinct (line, set) pairs the access
// touches — the paper's COLDMISS construction counts exactly these first
// touches (lexmin over the schedule picks one witness per line; the
// cardinality equals the number of distinct lines).
func DistinctLineSet(si ir.StatementInfo, acc ir.Access, base, lineSize, numSets int64) (isl.Set, error) {
	m, err := AccessLineSetMap(si, acc, base, lineSize, numSets)
	if err != nil {
		return isl.Set{}, err
	}
	return m.Range(), nil
}

// ExactColdMisses counts distinct cache lines touched by the statements of
// a nest via the relation formulation, with arrays laid out at the given
// bases. The enumeration budget bounds the cost.
func ExactColdMisses(nest *ir.Nest, bases map[*ir.Array]int64, lineSize, numSets int64, budget int) (int64, error) {
	// Distinct lines across *all* accesses must be deduplicated globally,
	// so we accumulate (line) points across ranges.
	seen := map[int64]bool{}
	for _, si := range nest.Statements() {
		for _, acc := range si.Stmt.Accesses {
			rng, err := DistinctLineSet(si, acc, bases[acc.Array], lineSize, numSets)
			if err != nil {
				return 0, err
			}
			err = rng.Enumerate(budget, func(pt []int64) bool {
				seen[pt[0]] = true
				return true
			})
			if err != nil {
				return 0, err
			}
		}
	}
	return int64(len(seen)), nil
}

// ReusePairRelation builds, for one access, the relation of same-line
// reuse pairs {(i) -> (i') : i lexlt i', line(i) = line(i'), set(i) =
// set(i')} — the F ∩ B construction of Sec. IV-A specialized to a single
// statement whose schedule is the identity over its IVs.
func ReusePairRelation(si ir.StatementInfo, acc ir.Access, base, lineSize, numSets int64) (isl.Map, error) {
	a, err := AccessLineSetMap(si, acc, base, lineSize, numSets)
	if err != nil {
		return isl.Map{}, err
	}
	// Same (line,set): A ∘ A^{-1} maps i -> all i' touching the same line.
	same := a.Chain(a.Inverse())
	return same.Intersect(lexLTSameNames(si.IVNames())), nil
}

// lexLTSameNames builds {x -> y : x lexlt y} with the output dimensions
// carrying the same names as the inputs, matching the space produced by
// Chain(a, a^{-1}).
func lexLTSameNames(ivs []string) isl.Map {
	sp := isl.NewMapSpace(nil, ivs, ivs)
	n := len(ivs)
	r := isl.EmptySet(sp)
	for k := 0; k < n; k++ {
		b := isl.Universe(sp)
		for i := 0; i < k; i++ {
			b.AddEquals(sp.VarExpr(i), sp.VarExpr(n+i))
		}
		b.AddGE(sp.VarExpr(n + k).Sub(sp.VarExpr(k)).AddConst(-1))
		r.Basics = append(r.Basics, b)
	}
	return r
}

// ReusePairUnion builds the union of reuse-pair relations across the
// statement's accesses; with dedup set, duplicate access functions are
// eliminated first and the union coalesced (footnote 17). It returns the
// relation and the number of basic relations counted.
func ReusePairUnion(si ir.StatementInfo, bases map[*ir.Array]int64, lineSize, numSets int64, dedup bool) (isl.Map, int, error) {
	accs := si.Stmt.Accesses
	if dedup {
		accs = dedupAccesses(accs)
	}
	var u isl.Map
	first := true
	for _, acc := range accs {
		r, err := ReusePairRelation(si, acc, bases[acc.Array], lineSize, numSets)
		if err != nil {
			return isl.Map{}, 0, err
		}
		if first {
			u = r
			first = false
		} else {
			u = u.Union(r)
		}
	}
	if first {
		return isl.Map{}, 0, fmt.Errorf("cachemodel: no accesses")
	}
	if dedup {
		u = u.Coalesce()
	}
	return u, u.NumBasics(), nil
}

// CountReusePairs counts the integer points of the reuse-pair union by
// enumeration (small problem sizes only).
func CountReusePairs(u isl.Map, budget int) (int64, error) {
	return u.CountEnumerate(budget)
}
