package cachemodel

import (
	"testing"

	"polyufc/internal/cachesim"
	"polyufc/internal/interp"
	"polyufc/internal/ir"
	"polyufc/internal/pluto"
)

func matmulNest(m, n, k int64) *ir.Nest {
	A := ir.NewArray("A", 8, m, k)
	B := ir.NewArray("B", 8, k, n)
	C := ir.NewArray("C", 8, m, n)
	stmt := &ir.Statement{Name: "S0", Flops: 2}
	i, j, kk := ir.AffVar("i"), ir.AffVar("j"), ir.AffVar("k")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i, kk}},
		{Array: B, Index: []ir.AffExpr{kk, j}},
		{Array: C, Index: []ir.AffExpr{i, j}},
		{Array: C, Write: true, Index: []ir.AffExpr{i, j}},
	}
	kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(k-1), stmt)
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(n-1), kl)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(m-1), jl)
	return &ir.Nest{Label: "matmul", Root: il}
}

func copyNest(n int64) *ir.Nest {
	A := ir.NewArray("A", 8, n)
	B := ir.NewArray("B", 8, n)
	stmt := &ir.Statement{Name: "S0", Flops: 1}
	i := ir.AffVar("i")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i}},
		{Array: B, Write: true, Index: []ir.AffExpr{i}},
	}
	return &ir.Nest{Label: "copy", Root: ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(n-1), stmt)}
}

var testCfg = cachesim.Config{Levels: []cachesim.LevelConfig{
	{Name: "L1", SizeBytes: 32 << 10, LineSize: 64, Assoc: 8},
	{Name: "LLC", SizeBytes: 512 << 10, LineSize: 64, Assoc: 16},
}}

// simulate runs the nest through the exact simulator.
func simulate(t *testing.T, nest *ir.Nest, cfg cachesim.Config) *cachesim.Simulator {
	t.Helper()
	s, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = interp.RunNest(nest, interp.TracerFunc(func(a, sz int64, w bool) { s.Access(a, sz, w) }))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func within(t *testing.T, name string, got, want int64, factor float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s: got %d, want 0", name, got)
		}
		return
	}
	r := float64(got) / float64(want)
	if r > factor || r < 1/factor {
		t.Fatalf("%s: model %d vs simulator %d (ratio %.2f, allowed factor %.2f)", name, got, want, r, factor)
	}
}

func TestCopyNestModelMatchesSim(t *testing.T) {
	nest := copyNest(8192) // two 64 KiB arrays: stream through both levels
	res, err := Analyze(nest, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, nest, testCfg)
	// Streaming: every line misses exactly once at both levels.
	within(t, "L1 misses", res.Levels[0].Misses, sim.LevelStats(0).Misses, 1.1)
	within(t, "LLC misses", res.Levels[1].Misses, sim.LLCStats().Misses, 1.1)
	if res.Flops != 8192 {
		t.Fatalf("flops = %d", res.Flops)
	}
	// OI of a stream copy is low: 1 flop per 16 bytes moved.
	if res.OI > 0.2 {
		t.Fatalf("copy OI = %.3f, expected bandwidth-bound value", res.OI)
	}
}

func TestMatmulUntiledModelVsSim(t *testing.T) {
	nest := matmulNest(96, 96, 96)
	res, err := Analyze(nest, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, nest, testCfg)
	within(t, "L1 misses", res.Levels[0].Misses, sim.LevelStats(0).Misses, 1.05)
	// LLC: the 96x96 working set fits; misses should be near cold in both.
	within(t, "LLC misses", res.Levels[1].Misses, sim.LLCStats().Misses, 1.05)
}

func TestMatmulTiledModelVsSim(t *testing.T) {
	// Non-power-of-two size: the set-conflict pathology of 2^k strides is
	// exercised separately (Fig. 8 study).
	nest := matmulNest(120, 120, 120)
	tiled, err := pluto.TileNest(nest, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(tiled, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, tiled, testCfg)
	within(t, "L1 misses (tiled)", res.Levels[0].Misses, sim.LevelStats(0).Misses, 1.2)
	within(t, "LLC misses (tiled)", res.Levels[1].Misses, sim.LLCStats().Misses, 1.2)
}

func TestTilingReducesModeledMisses(t *testing.T) {
	nest := matmulNest(120, 120, 120)
	tiled, err := pluto.TileNest(nest, 32)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := Analyze(nest, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Analyze(tiled, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Levels[0].Misses >= ru.Levels[0].Misses {
		t.Fatalf("model misses: tiled %d >= untiled %d", rt.Levels[0].Misses, ru.Levels[0].Misses)
	}
	if rt.QDRAM > ru.QDRAM {
		t.Fatalf("tiled QDRAM %d > untiled %d", rt.QDRAM, ru.QDRAM)
	}
}

func TestPowerOfTwoConflictFlagged(t *testing.T) {
	// At 128^3 (power-of-two strides) tiled matmul conflicts heavily in an
	// 8-way L1: both the model and the simulator must report far more L1
	// misses than the conflict-free 120^3 case.
	t120, err := pluto.TileNest(matmulNest(120, 120, 120), 32)
	if err != nil {
		t.Fatal(err)
	}
	t128, err := pluto.TileNest(matmulNest(128, 128, 128), 32)
	if err != nil {
		t.Fatal(err)
	}
	r120, err := Analyze(t120, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r128, err := Analyze(t128, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r128.Levels[0].Misses < 10*r120.Levels[0].Misses {
		t.Fatalf("model did not flag 2^k conflicts: 128 %d vs 120 %d",
			r128.Levels[0].Misses, r120.Levels[0].Misses)
	}
	s120 := simulate(t, t120, testCfg)
	s128 := simulate(t, t128, testCfg)
	if s128.LevelStats(0).Misses < 10*s120.LevelStats(0).Misses {
		t.Fatalf("simulator disagrees on conflict pathology: %d vs %d",
			s128.LevelStats(0).Misses, s120.LevelStats(0).Misses)
	}
}

func TestColdMissesMatchRelationFormulation(t *testing.T) {
	nest := matmulNest(12, 12, 12)
	layout := interp.NewLayout(nest.Operands())
	cold, err := ExactColdMisses(nest, layout.Base, 64, testCfg.Levels[0].NumSets(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, nest, testCfg)
	// Every level sees the same distinct lines with an inclusive
	// hierarchy; compare against L1 cold misses.
	if cold != sim.LevelStats(0).ColdMisses {
		t.Fatalf("relation cold misses %d != simulator %d", cold, sim.LevelStats(0).ColdMisses)
	}
	// The analytic model's cold misses should agree too.
	res, err := Analyze(nest, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	within(t, "analytic cold", res.Levels[0].ColdMisses, cold, 1.15)
}

func TestThreadSharingHeuristic(t *testing.T) {
	nest := matmulNest(64, 64, 64)
	serial, err := Analyze(nest, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Threads = 4
	par, err := Analyze(nest, testCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	lo := serial.LLC().Misses / 4
	if par.LLC().Misses < lo || par.LLC().Misses > lo+8 {
		t.Fatalf("threaded misses %d, want about %d", par.LLC().Misses, lo)
	}
	if par.OI <= serial.OI {
		t.Fatal("thread sharing must raise modeled OI")
	}
}

func TestSetAssocVsFullyAssocPathology(t *testing.T) {
	// Column walk of a power-of-two-row matrix: every line lands in few
	// sets. Set-associative model must predict more misses than fully
	// associative; the simulator must agree.
	rows, cols := int64(512), int64(512) // row = 4 KiB = 64 lines
	A := ir.NewArray("A", 8, rows, cols)
	stmt := &ir.Statement{Name: "S0", Flops: 1}
	i, j := ir.AffVar("i"), ir.AffVar("j")
	// for j: for i: read A[i][j] (column-major walk of row-major array)
	stmt.Accesses = []ir.Access{{Array: A, Index: []ir.AffExpr{i, j}}}
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(rows-1), stmt)
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(cols-1), il)
	nest := &ir.Nest{Label: "colwalk", Root: jl}

	cfg := cachesim.Config{Levels: []cachesim.LevelConfig{
		{Name: "L1", SizeBytes: 32 << 10, LineSize: 64, Assoc: 4},
	}}
	sa, err := Analyze(nest, cfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	faOpts := DefaultOptions()
	faOpts.FullyAssoc = true
	fa, err := Analyze(nest, cfg, faOpts)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Levels[0].Misses <= fa.Levels[0].Misses {
		t.Fatalf("set-assoc model %d <= fully-assoc %d for conflict-heavy walk",
			sa.Levels[0].Misses, fa.Levels[0].Misses)
	}
	simSA := simulate(t, nest, cfg)
	simFA := simulate(t, nest, cfg.FullyAssociative())
	if simSA.LevelStats(0).Misses <= simFA.LevelStats(0).Misses {
		t.Fatalf("simulator disagrees: SA %d <= FA %d",
			simSA.LevelStats(0).Misses, simFA.LevelStats(0).Misses)
	}
}

func TestDedupReducesBasicsKeepsPoints(t *testing.T) {
	nest := matmulNest(6, 6, 6)
	layout := interp.NewLayout(nest.Operands())
	si := nest.Statements()[0]
	withDedup, nb1, err := ReusePairUnion(si, layout.Base, 64, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	without, nb2, err := ReusePairUnion(si, layout.Base, 64, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if nb1 >= nb2 {
		t.Fatalf("dedup basics %d >= non-dedup %d", nb1, nb2)
	}
	c1, err := CountReusePairs(withDedup, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CountReusePairs(without, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("dedup changed reuse pair count: %d vs %d", c1, c2)
	}
	if c1 == 0 {
		t.Fatal("matmul must have reuse pairs")
	}
}

func TestMissRatiosSane(t *testing.T) {
	nest := matmulNest(64, 64, 64)
	res, err := Analyze(nest, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range res.Levels {
		if lv.MissRatio < 0 || lv.MissRatio > 1 {
			t.Fatalf("%s miss ratio %f", lv.Name, lv.MissRatio)
		}
		if lv.HitRatio+lv.MissRatio > 1.0001 || lv.HitRatio+lv.MissRatio < 0.9999 {
			t.Fatalf("%s ratios do not sum to 1", lv.Name)
		}
		if lv.Misses != lv.ColdMisses+lv.CapConfMisses {
			t.Fatalf("%s miss breakdown inconsistent", lv.Name)
		}
	}
	if res.QDRAM != res.LLC().Misses*64 {
		t.Fatal("QDRAM != Miss_LLC * lineSize")
	}
	if res.OI <= 0 {
		t.Fatal("OI must be positive")
	}
}

func TestHighOIKernelIsComputeHeavy(t *testing.T) {
	// Large tiled matmul has much higher OI than stream copy.
	mm := matmulNest(128, 128, 128)
	tiled, err := pluto.TileNest(mm, 32)
	if err != nil {
		t.Fatal(err)
	}
	rmm, err := Analyze(tiled, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rcp, err := Analyze(copyNest(1<<16), testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rmm.OI < 10*rcp.OI {
		t.Fatalf("matmul OI %.2f not clearly above copy OI %.2f", rmm.OI, rcp.OI)
	}
}

func TestAnalyzeStatements(t *testing.T) {
	// Two statements with very different intensity in one nest: a flop-
	// heavy body and a pure copy.
	A := ir.NewArray("A", 8, 64, 64)
	B := ir.NewArray("B", 8, 64, 64)
	hot := &ir.Statement{Name: "S_hot", Flops: 50}
	i, j := ir.AffVar("i"), ir.AffVar("j")
	hot.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i, j}},
		{Array: A, Write: true, Index: []ir.AffExpr{i, j}},
	}
	cold := &ir.Statement{Name: "S_copy", Flops: 0}
	cold.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i, j}},
		{Array: B, Write: true, Index: []ir.AffExpr{i, j}},
	}
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(63), hot, cold)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(63), jl)
	nest := &ir.Nest{Label: "two", Root: il}
	rows, err := AnalyzeStatements(nest, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "S_hot" || rows[1].Name != "S_copy" {
		t.Fatalf("names = %v %v", rows[0].Name, rows[1].Name)
	}
	if rows[0].OI <= 10*rows[1].OI {
		t.Fatalf("per-statement OI not separated: %.2f vs %.2f", rows[0].OI, rows[1].OI)
	}
	if rows[1].Flops != 0 {
		t.Fatalf("copy flops = %d", rows[1].Flops)
	}
}

func TestHybridExactMode(t *testing.T) {
	// With ExactBelow above the instance count, the result must equal the
	// simulator exactly.
	nest := matmulNest(24, 24, 24)
	opts := DefaultOptions()
	opts.ExactBelow = 1 << 20
	res, err := Analyze(nest, testCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulate(t, nest, testCfg)
	if res.Levels[0].Misses != sim.LevelStats(0).Misses {
		t.Fatalf("exact mode L1 misses %d != simulator %d",
			res.Levels[0].Misses, sim.LevelStats(0).Misses)
	}
	if res.LLC().Misses != sim.LLCStats().Misses {
		t.Fatalf("exact mode LLC misses %d != simulator %d",
			res.LLC().Misses, sim.LLCStats().Misses)
	}
	if res.Flops != 2*24*24*24 {
		t.Fatalf("flops = %d", res.Flops)
	}
	// Below the threshold nothing changes for big nests: the analytic
	// path is used (different object identity is unobservable; verify by
	// comparing against a plain analytic run).
	opts.ExactBelow = 10
	resBig, err := Analyze(nest, testCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Analyze(nest, testCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resBig.Levels[0].Misses != plain.Levels[0].Misses {
		t.Fatal("threshold did not route to the analytic path")
	}
}

func TestHybridExactThreadDivision(t *testing.T) {
	nest := matmulNest(16, 16, 16)
	opts := DefaultOptions()
	opts.ExactBelow = 1 << 20
	opts.Threads = 4
	res, err := Analyze(nest, testCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	serial := DefaultOptions()
	serial.ExactBelow = 1 << 20
	res1, err := Analyze(nest, testCfg, serial)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThreadsDiv != 4 || res1.ThreadsDiv != 1 {
		t.Fatalf("ThreadsDiv = %d / %d", res.ThreadsDiv, res1.ThreadsDiv)
	}
	lo := res1.LLC().Misses / 4
	if res.LLC().Misses < lo || res.LLC().Misses > lo+4 {
		t.Fatalf("divided misses %d, want about %d", res.LLC().Misses, lo)
	}
}
