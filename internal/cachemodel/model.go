package cachemodel

import (
	"fmt"

	"polyufc/internal/cachesim"
	"polyufc/internal/ir"
)

// Options configures a PolyUFC-CM analysis.
type Options struct {
	// Threads applies the paper's OpenMP sharing heuristic: sequential
	// miss counts are divided by the thread count. 0 or 1 means serial.
	Threads int
	// FullyAssoc switches every level to the fully-associative model (the
	// Fig. 8 ablation): capacity is tested against total lines instead of
	// per-set occupancy.
	FullyAssoc bool
	// Dedup eliminates duplicate access functions (same array, same index
	// expressions) before footprint and reuse computation, the paper's
	// footnote-17 optimization. Defaults to on via DefaultOptions.
	Dedup bool
	// CountBudget bounds enumeration fallbacks in the polyhedral counts.
	CountBudget int
	// ExactBelow switches to exact trace-driven simulation for nests with
	// at most this many statement instances (0 disables): the hybrid
	// accuracy mode — exact where cheap, analytic where large.
	ExactBelow int64
}

// DefaultOptions returns the standard configuration: serial, set-
// associative, duplicate elimination on.
func DefaultOptions() Options {
	return Options{Threads: 1, Dedup: true, CountBudget: 1 << 22}
}

// LevelResult is the per-cache-level outcome of the analysis.
type LevelResult struct {
	Name          string
	Accesses      int64
	ColdMisses    int64
	CapConfMisses int64
	Misses        int64
	MissRatio     float64
	HitRatio      float64
	// FitWindow is the number of innermost loops whose combined working
	// set fits in this level (diagnostic; -1 when nothing was analyzed).
	FitWindow int
}

// Result is the outcome of PolyUFC-CM on one nest.
type Result struct {
	Levels []LevelResult
	// Flops is the paper's Omega: total arithmetic operations.
	Flops int64
	// Instances is the number of statement instances.
	Instances int64
	// Loads and Stores are dynamic access counts.
	Loads, Stores int64
	// QBytes is the total requested data volume (accesses x element size).
	QBytes int64
	// QDRAM is the LLC<->DRAM traffic in bytes: Miss_LLC x line size
	// (Sec. IV-C). When the thread-sharing heuristic is active this is the
	// per-thread-shared (divided) figure the paper uses for OI.
	QDRAM int64
	// ThreadsDiv records the divisor the thread-sharing heuristic applied
	// to the miss counts (1 when serial): total physical DRAM traffic is
	// QDRAM * ThreadsDiv.
	ThreadsDiv int
	// OI is the operational intensity Flops/QDRAM in flop/byte (Eqn. 1).
	OI float64
}

// LLC returns the last-level result.
func (r *Result) LLC() LevelResult { return r.Levels[len(r.Levels)-1] }

// Analyze runs PolyUFC-CM over one affine nest for the given cache
// hierarchy.
func Analyze(nest *ir.Nest, cfg cachesim.Config, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.CountBudget == 0 {
		opts.CountBudget = 1 << 22
	}
	res := &Result{}
	nLevels := len(cfg.Levels)
	res.Levels = make([]LevelResult, nLevels)
	for i, lc := range cfg.Levels {
		res.Levels[i].Name = lc.Name
		res.Levels[i].FitWindow = -1
	}

	if opts.ExactBelow > 0 {
		if tc, err := nest.TripCount(); err == nil && tc <= opts.ExactBelow {
			return analyzeExact(nest, cfg, opts, res)
		}
	}

	for _, si := range nest.Statements() {
		if err := analyzeStatement(si, cfg, opts, res); err != nil {
			return nil, fmt.Errorf("cachemodel: statement %s: %w", si.Stmt.Name, err)
		}
	}

	// Thread-sharing heuristic (Sec. IV-B): divide sequential miss counts
	// by the OpenMP thread count.
	res.ThreadsDiv = 1
	if opts.Threads > 1 {
		res.ThreadsDiv = opts.Threads
	}
	if opts.Threads > 1 {
		t := int64(opts.Threads)
		for i := range res.Levels {
			res.Levels[i].ColdMisses = ceilI64(res.Levels[i].ColdMisses, t)
			res.Levels[i].CapConfMisses = ceilI64(res.Levels[i].CapConfMisses, t)
		}
	}

	// Access streams: level 0 sees every load and store; level i+1 sees
	// level i's misses plus forwarded writes (write-through).
	lineSize := cfg.Levels[0].LineSize
	res.Levels[0].Accesses = res.Loads + res.Stores
	for i := range res.Levels {
		lv := &res.Levels[i]
		lv.Misses = lv.ColdMisses + lv.CapConfMisses
		if lv.Misses > lv.Accesses && lv.Accesses > 0 {
			lv.Misses = lv.Accesses
			lv.CapConfMisses = lv.Misses - lv.ColdMisses
		}
		if lv.Accesses > 0 {
			lv.MissRatio = float64(lv.Misses) / float64(lv.Accesses)
			lv.HitRatio = 1 - lv.MissRatio
		}
		if i+1 < nLevels {
			res.Levels[i+1].Accesses = lv.Misses + res.Stores
		}
	}
	res.QDRAM = res.LLC().Misses * lineSize
	if res.QDRAM > 0 {
		res.OI = float64(res.Flops) / float64(res.QDRAM)
	}
	return res, nil
}

// analyzeStatement applies the recursive reuse model to one statement and
// accumulates its contribution into res. For each cache level and access,
// the misses over the subtree rooted at loop l are
//
//	M(l) = footprint(loops l..n-1)        if the body of l fits the level
//	     = trips(l) * M(l+1)              otherwise,
//
// where "the body of l fits" tests the combined footprint of all accesses
// over the loops strictly deeper than l against the level's capacity
// (fully-associative mode) or per-set occupancy against its associativity
// (the paper's per-set model). This realizes the reuse-distance criterion
// RD > k of Sec. IV-B: a reuse carried by loop l has distance equal to one
// body execution's footprint, and survives iff that footprint fits.
func analyzeStatement(si ir.StatementInfo, cfg cachesim.Config, opts Options, res *Result) error {
	n := len(si.Loops)
	ivs := si.IVNames()

	// Prefix cardinalities: cnt[k] = |projection of D onto the k outermost
	// IVs|; cnt[n] = |D|.
	cnt := make([]int64, n+1)
	cnt[0] = 1
	proj := si.Domain
	full, err := proj.CountInt(opts.CountBudget)
	if err != nil {
		return err
	}
	cnt[n] = full
	for k := n - 1; k >= 1; k-- {
		proj, _ = proj.ProjectOutVar(k) // drop innermost remaining dim
		c, err := proj.CountInt(opts.CountBudget)
		if err != nil {
			return err
		}
		cnt[k] = c
	}
	if full == 0 {
		return nil
	}
	// Average trip count of loop k across the executions of its prefix.
	tripAt := make([]int64, n)
	for k := 0; k < n; k++ {
		tripAt[k] = roundTrip(float64(cnt[k+1]) / float64(maxI64(cnt[k], 1)))
	}

	// Bound-dependence closure: deps[d] is the set of outer loop indices
	// whose IVs (transitively) appear in loop d's bounds. A tile IV never
	// appears in an access function, but it moves the ranges of the intra
	// IVs it bounds; footprints over a window containing both must expand
	// the intra IV's trips accordingly.
	deps := boundClosure(si.Loops, ivs)

	// Global value range per IV: caps the closure expansion for
	// non-rectangular couplings (j <= i sweeps [0, N), not trips_j *
	// trips_i values).
	globalRange := make([]int64, n)
	for d := 0; d < n; d++ {
		if lo, hi, ok := si.Domain.DimRange(d); ok {
			globalRange[d] = hi - lo + 1
		}
	}

	res.Instances += full
	res.Flops += full * si.Stmt.Flops

	accs := si.Stmt.Accesses
	if opts.Dedup {
		accs = dedupAccesses(accs)
	}
	for _, a := range si.Stmt.Accesses {
		if a.Write {
			res.Stores += full
		} else {
			res.Loads += full
		}
	}
	res.QBytes += sumAccessBytes(si.Stmt.Accesses, full)

	lineSize := cfg.Levels[0].LineSize
	// Precompute per-access footprints over every suffix window
	// ivs[l:] for l = 0..n (l = n is the empty window: one instance).
	// Within a window, an IV whose bounds depend on other IVs *inside* the
	// window covers its full swept range: its trips multiply by the trips
	// of those bounding IVs.
	fps := make([][]Footprint, len(accs)) // fps[ai][l]
	for ai, a := range accs {
		fps[ai] = make([]Footprint, n+1)
		for l := 0; l <= n; l++ {
			wTrips := map[string]int64{}
			for d := l; d < n; d++ {
				eff := tripAt[d]
				for o := range deps[d] {
					if o >= l && o < d {
						eff *= tripAt[o]
					}
				}
				if globalRange[d] > 0 && eff > globalRange[d] {
					eff = globalRange[d]
				}
				wTrips[ivs[d]] = eff
			}
			fps[ai][l] = accessFootprint(a, ivs[l:], wTrips, lineSize)
		}
	}

	for li, lc := range cfg.Levels {
		numSets := lc.NumSets()
		ways := lc.Ways()
		capacityLines := lc.SizeBytes / lc.LineSize

		// bodyFits[l]: does the combined working set of loops deeper than
		// l (window ivs[l+1:]) fit this level?
		bodyFits := make([]bool, n)
		fitWindow := 0
		for l := n - 1; l >= 0; l-- {
			var totalLines, totalOcc int64
			for ai := range accs {
				fp := fps[ai][l+1]
				totalLines += fp.Lines()
				totalOcc += fp.PerSetOccupancy(lineSize, numSets)
			}
			if opts.FullyAssoc {
				bodyFits[l] = totalLines <= capacityLines
			} else {
				bodyFits[l] = totalOcc <= ways && totalLines <= capacityLines
			}
			if bodyFits[l] {
				fitWindow = n - l
			} else {
				break // monotone: outer windows are at least as large
			}
		}
		// Fill remaining (outer) levels as non-fitting.
		if res.Levels[li].FitWindow < fitWindow {
			res.Levels[li].FitWindow = fitWindow
		}

		var cold, total int64
		for ai := range accs {
			m := fps[ai][n].Lines() // one instance
			for l := n - 1; l >= 0; l-- {
				if bodyFits[l] {
					m = fps[ai][l].Lines()
				} else {
					m = tripAt[l] * m
				}
			}
			all := fps[ai][0].Lines()
			m = maxI64(m, all)  // at least one miss per distinct line
			m = minI64(m, full) // at most one miss per instance
			cold += all
			total += m
		}
		res.Levels[li].ColdMisses += cold
		res.Levels[li].CapConfMisses += maxI64(total-cold, 0)
	}
	return nil
}

// StatementResult is a per-statement analysis outcome (the granularity
// the affine-dialect phase study of Sec. VI-A inspects).
type StatementResult struct {
	Name  string
	Flops int64
	QDRAM int64
	OI    float64
}

// AnalyzeStatements runs PolyUFC-CM independently per statement of a nest,
// returning each statement's flop count, DRAM traffic and operational
// intensity.
func AnalyzeStatements(nest *ir.Nest, cfg cachesim.Config, opts Options) ([]StatementResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.CountBudget == 0 {
		opts.CountBudget = 1 << 22
	}
	lineSize := cfg.Levels[0].LineSize
	var out []StatementResult
	for _, si := range nest.Statements() {
		res := &Result{Levels: make([]LevelResult, len(cfg.Levels))}
		for i, lc := range cfg.Levels {
			res.Levels[i].Name = lc.Name
			res.Levels[i].FitWindow = -1
		}
		if err := analyzeStatement(si, cfg, opts, res); err != nil {
			return nil, fmt.Errorf("cachemodel: statement %s: %w", si.Stmt.Name, err)
		}
		if opts.Threads > 1 {
			t := int64(opts.Threads)
			for i := range res.Levels {
				res.Levels[i].ColdMisses = ceilI64(res.Levels[i].ColdMisses, t)
				res.Levels[i].CapConfMisses = ceilI64(res.Levels[i].CapConfMisses, t)
			}
		}
		last := res.Levels[len(res.Levels)-1]
		q := (last.ColdMisses + last.CapConfMisses) * lineSize
		sr := StatementResult{Name: si.Stmt.Name, Flops: res.Flops, QDRAM: q}
		if q > 0 {
			sr.OI = float64(res.Flops) / float64(q)
		}
		out = append(out, sr)
	}
	return out, nil
}

// boundClosure computes, for each loop d, the set of loop indices whose
// IVs transitively appear in d's bounds.
func boundClosure(loops []*ir.Loop, ivs []string) []map[int]bool {
	idx := map[string]int{}
	for i, iv := range ivs {
		idx[iv] = i
	}
	direct := make([]map[int]bool, len(loops))
	for d, l := range loops {
		direct[d] = map[int]bool{}
		for _, b := range append(append([]ir.Bound(nil), l.Lo...), l.Hi...) {
			for iv := range b.Expr.Coef {
				if o, ok := idx[iv]; ok && o != d {
					direct[d][o] = true
				}
			}
		}
	}
	// Transitive closure (bounds reference outer loops only, so one pass
	// outer-to-inner suffices).
	out := make([]map[int]bool, len(loops))
	for d := range loops {
		out[d] = map[int]bool{}
		for o := range direct[d] {
			out[d][o] = true
			for oo := range out[o] {
				out[d][oo] = true
			}
		}
	}
	return out
}

// dedupAccesses merges accesses with identical array and index functions
// (footnote 17: duplicate elimination before symbolic counting).
func dedupAccesses(accs []ir.Access) []ir.Access {
	seen := map[string]bool{}
	var out []ir.Access
	for _, a := range accs {
		key := a.Array.Name
		for _, e := range a.Index {
			key += "|" + e.String()
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, a)
	}
	return out
}

func sumAccessBytes(accs []ir.Access, instances int64) int64 {
	var b int64
	for _, a := range accs {
		b += instances * a.Array.ElemSize
	}
	return b
}

func ceilI64(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
