// Package cachemodel implements PolyUFC-CM, the approximate polyhedral
// set-associative cache-miss model of the paper (Sec. IV). Cold misses are
// the distinct cache lines an access relation touches; capacity and
// conflict misses come from per-set reuse distances: a reuse whose window
// footprint exceeds the per-set associativity misses. The model follows the
// paper's approximations: each cache set is treated fully-associative
// within itself, per-set pressure is estimated from the footprint's set
// spread, and OpenMP sharing divides sequential miss counts by the thread
// count (Sec. IV-B).
package cachemodel

import (
	"math"
	"sort"

	"polyufc/internal/ir"
)

// ivExtent is the (average) trip count and per-iteration address stride of
// one induction variable for one access.
type ivExtent struct {
	trips  int64 // iterations
	stride int64 // |bytes| the address moves per iteration
}

// accessStrides computes the byte stride of each window IV for an access
// (the absolute linearized address coefficient).
func accessStrides(acc ir.Access) map[string]int64 {
	lin := ir.AffConst(0)
	strides := acc.Array.Strides()
	for d, e := range acc.Index {
		lin = lin.Add(e.Scale(strides[d]))
	}
	lin = lin.Scale(acc.Array.ElemSize)
	out := map[string]int64{}
	for iv, c := range lin.Coef {
		if c < 0 {
			c = -c
		}
		out[iv] = c
	}
	return out
}

// Footprint is the structured distinct-lines estimate of one access over a
// loop window: Blocks disjoint dense regions, each of DenseLines cache
// lines, with consecutive blocks BlockStride bytes apart.
type Footprint struct {
	Blocks      int64
	DenseLines  int64
	BlockStride int64 // bytes between blocks; 0 when Blocks == 1
}

// Lines returns the estimated number of distinct cache lines touched.
func (f Footprint) Lines() int64 { return f.Blocks * f.DenseLines }

// SetSpread estimates how many distinct cache sets the footprint covers.
// A dense region spreads over consecutive sets; strided blocks whose
// line-stride shares a factor with the set count collapse onto
// numSets/gcd sets (the power-of-two conflict pathology of Fig. 8).
func (f Footprint) SetSpread(lineSize, numSets int64) int64 {
	if numSets <= 1 {
		return 1
	}
	denseSpread := minI64(f.DenseLines, numSets)
	if f.Blocks <= 1 {
		return denseSpread
	}
	reachable := numSets
	if f.BlockStride > 0 && f.BlockStride%lineSize == 0 {
		ls := f.BlockStride / lineSize
		g := gcd(numSets, ls)
		reachable = numSets / g
	}
	spread := minI64(f.Blocks, reachable) * denseSpread
	return minI64(spread, numSets)
}

// PerSetOccupancy returns the estimated peak number of lines competing for
// one cache set.
func (f Footprint) PerSetOccupancy(lineSize, numSets int64) int64 {
	spread := f.SetSpread(lineSize, numSets)
	if spread <= 0 {
		return f.Lines()
	}
	return (f.Lines() + spread - 1) / spread
}

// computeFootprint estimates the footprint of an access over a window of
// IVs with the given extents, via the classic dimension-coalescing
// argument: IVs are visited in increasing stride order while a dense byte
// extent E is grown; an IV whose stride exceeds the current extent
// multiplies the number of disjoint dense blocks instead.
func computeFootprint(elemSize, lineSize int64, exts []ivExtent) Footprint {
	sort.Slice(exts, func(a, b int) bool { return exts[a].stride < exts[b].stride })
	extent := elemSize // dense bytes covered by the innermost region
	blocks := int64(1)
	blockStride := int64(0)
	for _, x := range exts {
		if x.trips <= 1 || x.stride == 0 {
			continue
		}
		switch {
		case x.stride <= extent:
			// Iterations overlap or abut: the region grows densely.
			extent += x.stride * (x.trips - 1)
		case x.stride < lineSize:
			// Sub-line gaps still land on contiguous lines.
			extent += x.stride * (x.trips - 1)
		default:
			// Disjoint blocks.
			if blocks == 1 {
				blockStride = x.stride
			} else {
				blockStride = gcd(blockStride, x.stride)
			}
			blocks *= x.trips
		}
	}
	dense := (extent + lineSize - 1) / lineSize
	return Footprint{Blocks: blocks, DenseLines: dense, BlockStride: blockStride}
}

// accessFootprint estimates the footprint of one access over the window
// IVs with the given average trip counts.
func accessFootprint(acc ir.Access, windowIVs []string, trips map[string]int64, lineSize int64) Footprint {
	strides := accessStrides(acc)
	exts := make([]ivExtent, 0, len(windowIVs))
	for _, iv := range windowIVs {
		exts = append(exts, ivExtent{trips: trips[iv], stride: strides[iv]})
	}
	return computeFootprint(acc.Array.ElemSize, lineSize, exts)
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// roundTrip converts a positive float to the nearest int64, at least 1.
func roundTrip(f float64) int64 {
	if f < 1 {
		return 1
	}
	return int64(math.Round(f))
}
