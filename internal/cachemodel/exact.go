package cachemodel

import (
	"polyufc/internal/cachesim"
	"polyufc/internal/interp"
	"polyufc/internal/ir"
)

// analyzeExact fills a Result from the trace-driven simulator: the hybrid
// mode's exact path for small nests (Options.ExactBelow). The thread-
// sharing heuristic is applied to the simulated counts the same way the
// analytic path applies it to modeled counts.
func analyzeExact(nest *ir.Nest, cfg cachesim.Config, opts Options, res *Result) (*Result, error) {
	sim, err := cachesim.New(cfg)
	if err != nil {
		return nil, err
	}
	st, err := interp.RunNest(nest, interp.TracerFunc(func(a, sz int64, w bool) {
		sim.Access(a, sz, w)
	}))
	if err != nil {
		return nil, err
	}
	res.Instances = st.Instances
	res.Flops = st.Flops
	res.Loads = st.Loads
	res.Stores = st.Stores
	// Requested bytes: element size is uniform per access in our kernels;
	// derive it from the first access.
	var elem int64 = 8
	if sts := nest.Statements(); len(sts) > 0 && len(sts[0].Stmt.Accesses) > 0 {
		elem = sts[0].Stmt.Accesses[0].Array.ElemSize
	}
	res.QBytes = (st.Loads + st.Stores) * elem

	div := int64(1)
	res.ThreadsDiv = 1
	if opts.Threads > 1 {
		div = int64(opts.Threads)
		res.ThreadsDiv = opts.Threads
	}
	lineSize := cfg.Levels[0].LineSize
	for i := 0; i < sim.NumLevels(); i++ {
		ls := sim.LevelStats(i)
		res.Levels[i].Accesses = ls.Accesses
		res.Levels[i].ColdMisses = ceilI64(ls.ColdMisses, div)
		res.Levels[i].CapConfMisses = ceilI64(ls.Misses-ls.ColdMisses, div)
		res.Levels[i].Misses = res.Levels[i].ColdMisses + res.Levels[i].CapConfMisses
		if ls.Accesses > 0 {
			res.Levels[i].MissRatio = float64(res.Levels[i].Misses) / float64(ls.Accesses)
			res.Levels[i].HitRatio = 1 - res.Levels[i].MissRatio
		}
		res.Levels[i].FitWindow = -1
	}
	res.QDRAM = res.LLC().Misses * lineSize
	if res.QDRAM > 0 {
		res.OI = float64(res.Flops) / float64(res.QDRAM)
	}
	return res, nil
}
