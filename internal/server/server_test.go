package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Concurrency = 2
	cfg.RequestTimeout = 30 * time.Second
	return cfg
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func post(t *testing.T, ts *httptest.Server, path string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestServerEndpoints(t *testing.T) {
	s := newServer(t, testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, data)
	}
	var comp CompileResponse
	if err := json.Unmarshal(data, &comp); err != nil {
		t.Fatal(err)
	}
	if comp.Kernel != "gemm" || comp.Arch != "RPL" || len(comp.Nests) == 0 {
		t.Fatalf("compile response %+v", comp)
	}
	for _, n := range comp.Nests {
		if n.CapGHz <= 0 || n.Class == "" {
			t.Fatalf("bad nest %+v", n)
		}
	}

	resp, data = post(t, ts, "/v1/characterize", Request{Kernel: "atax", Arch: "bdw", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("characterize: %d %s", resp.StatusCode, data)
	}
	var char CharacterizeResponse
	if err := json.Unmarshal(data, &char); err != nil {
		t.Fatal(err)
	}
	if char.Arch != "BDW" || char.PeakGFlops <= 0 || char.BtDRAM <= 0 {
		t.Fatalf("characterize response %+v", char)
	}

	resp, data = post(t, ts, "/v1/search", Request{Kernel: "gemm", Size: "test", Objective: "energy", Measure: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Objective != "energy" || len(sr.Nests) == 0 {
		t.Fatalf("search response %+v", sr)
	}
	if sr.DegradedTo != "" || sr.Measured == nil || sr.Measured.BaselineSeconds <= 0 {
		t.Fatalf("healthy measured search degraded: %+v", sr)
	}

	// Observability endpoints.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz HealthzResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hz.Status != "ok" || hz.Breakers["RPL"] != "closed" {
		t.Fatalf("healthz %+v", hz)
	}
	st := s.statsz()
	if st.Served != 3 || st.Rejected != 0 || st.Panics != 0 {
		t.Fatalf("statsz %+v", st)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	s := newServer(t, testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		req  Request
		want string
	}{
		{Request{}, "kernel is required"},
		{Request{Kernel: "nope", Size: "test"}, "unknown kernel"},
		{Request{Kernel: "gemm", Arch: "arm"}, "unknown platform"},
		{Request{Kernel: "gemm", Platform: "sparc"}, "unknown platform"},
		{Request{Kernel: "gemm", Size: "huge"}, "unknown size"},
		{Request{Kernel: "gemm", Objective: "joules"}, "unknown objective"},
		{Request{Kernel: "gemm", CapLevel: "llvm"}, "unknown cap level"},
	} {
		resp, data := post(t, ts, "/v1/compile", tc.req)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), tc.want) {
			t.Fatalf("%+v -> %d %s, want 400 %q", tc.req, resp.StatusCode, data, tc.want)
		}
	}
	// Wrong method and malformed body.
	resp, err := ts.Client().Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET -> %d", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body -> %d", resp.StatusCode)
	}
}

// Admission control: with one slot and a bounded queue, excess load is
// shed with 429 + Retry-After instead of queueing unboundedly.
func TestServerAdmissionShedsLoad(t *testing.T) {
	cfg := testConfig()
	cfg.Concurrency = 1
	cfg.Queue = 1
	s := newServer(t, cfg)
	hold := make(chan struct{})
	holding := make(chan struct{}, 4)
	s.testHook = func() {
		holding <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	codes := make(chan int, 2)
	// First request occupies the slot, second waits in the queue.
	go func() {
		defer wg.Done()
		resp, _ := post(t, ts, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
		codes <- resp.StatusCode
	}()
	<-holding // slot holder is inside the handler
	go func() {
		defer wg.Done()
		resp, _ := post(t, ts, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
		codes <- resp.StatusCode
	}()
	for s.gate.Stats().Waiting == 0 {
		runtime.Gosched()
	}
	// Third: slot busy, queue full -> 429 with Retry-After.
	resp, data := post(t, ts, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated -> %d %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(hold)
	wg.Wait()
	if a, b := <-codes, <-codes; a != http.StatusOK || b != http.StatusOK {
		t.Fatalf("held requests finished %d, %d", a, b)
	}
	st := s.statsz()
	if st.Rejected != 1 || st.Served != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// A panicking handler answers 500 and leaves the daemon serving.
func TestServerPanicIsolation(t *testing.T) {
	s := newServer(t, testConfig())
	first := true
	s.testHook = func() {
		if first {
			first = false
			panic("request blew up")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(data), "request blew up") {
		t.Fatalf("panic -> %d %s", resp.StatusCode, data)
	}
	resp, _ = post(t, ts, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic -> %d", resp.StatusCode)
	}
	st := s.statsz()
	if st.Panics != 1 || st.Served != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Gate.Active != 0 {
		t.Fatalf("panic leaked an admission slot: %+v", st.Gate)
	}
}

// An open breaker degrades measured requests to model-only answers with
// DegradedTo set — a sick driver never makes the endpoint error.
func TestServerBreakerDegradesToModelOnly(t *testing.T) {
	reg := faults.New(21)
	reg.Enable(hw.FaultCapWriteBusy, faults.Spec{P: 1})
	cfg := testConfig()
	cfg.Faults = reg
	cfg.Breaker.Threshold = 2
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Trip the RPL breaker within the configured failure budget.
	b := s.breaker("RPL")
	for i := 0; i < 2; i++ {
		if _, err := b.SetCap(1.5); !errors.Is(err, hw.ErrCapBusy) {
			t.Fatalf("SetCap: %v", err)
		}
	}
	if b.State() != hw.BreakerOpen {
		t.Fatalf("breaker state %v after failure budget", b.State())
	}

	resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Size: "test", Measure: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measured search under open breaker -> %d %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.DegradedTo == "" || !strings.Contains(sr.DegradedTo, "model-only") {
		t.Fatalf("no degradation marker: %+v", sr)
	}
	if sr.Measured != nil {
		t.Fatal("degraded response carries measurements")
	}
	if len(sr.Nests) == 0 || sr.Nests[0].CapGHz <= 0 {
		t.Fatalf("model half missing from degraded response: %+v", sr)
	}

	// Health reflects the quarantine; stats count the degradation.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz HealthzResponse
	json.NewDecoder(hresp.Body).Decode(&hz)
	hresp.Body.Close()
	if hz.Status != "degraded" {
		t.Fatalf("healthz %+v", hz)
	}
	st := s.statsz()
	if st.Degraded != 1 || st.Breakers["RPL"].Trips == 0 {
		t.Fatalf("stats %+v", st)
	}

	// Close still restores the default cap through the open breaker.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b.WithMachine(func(m *hw.Machine) error {
		if m.UncoreCap() != m.P.UncoreMax {
			t.Fatalf("close left cap at %.1f", m.UncoreCap())
		}
		return nil
	})
}

// Responses journal across a daemon restart: the second server replays
// byte-identical bodies without compiling anything.
func TestServerJournalReplayAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.jsonl")
	reqs := []Request{
		{Kernel: "gemm", Size: "test"},
		{Kernel: "atax", Arch: "bdw", Size: "test", Objective: "performance"},
	}

	cfg := testConfig()
	cfg.JournalPath = path
	s1 := newServer(t, cfg)
	ts1 := httptest.NewServer(s1.Handler())
	var want [][]byte
	for _, r := range reqs {
		resp, data := post(t, ts1, "/v1/search", r)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first run: %d %s", resp.StatusCode, data)
		}
		want = append(want, data)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := testConfig()
	cfg2.JournalPath = path
	cfg2.Resume = true
	s2 := newServer(t, cfg2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if s2.JournalStats().Entries != len(reqs) {
		t.Fatalf("journal stats %+v", s2.JournalStats())
	}
	for i, r := range reqs {
		resp, data := post(t, ts2, "/v1/search", r)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay: %d %s", resp.StatusCode, data)
		}
		if !bytes.Equal(want[i], data) {
			t.Fatalf("replayed body differs:\n%s\nvs\n%s", want[i], data)
		}
	}
	st := s2.statsz()
	if st.Journal.Replayed != int64(len(reqs)) || st.Journal.Appended != 0 {
		t.Fatalf("replay stats %+v", st.Journal)
	}
	if st.CompileCache.Misses != 0 {
		t.Fatalf("replay compiled %d kernels", st.CompileCache.Misses)
	}

	// Without Resume the journal is truncated.
	cfg3 := testConfig()
	cfg3.JournalPath = path
	s3 := newServer(t, cfg3)
	if s3.JournalStats().Entries != 0 {
		t.Fatalf("truncating open kept %d entries", s3.JournalStats().Entries)
	}
}

// The /v1/platforms endpoint lists every served backend with calibration
// provenance, a backend loaded purely from a JSON description file is
// served like the built-ins, and statsz carries per-backend counters.
func TestServerPlatformsEndpointAndFileBackend(t *testing.T) {
	cfg := testConfig()
	cfg.PlatformFiles = []string{filepath.Join("..", "..", "platforms", "wide-uncore.json")}
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/platforms")
	if err != nil {
		t.Fatal(err)
	}
	var pr PlatformsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	byName := map[string]PlatformResponse{}
	for _, p := range pr.Platforms {
		byName[p.Name] = p
	}
	for _, name := range []string{"BDW", "RPL", "WIDE"} {
		p, ok := byName[name]
		if !ok {
			t.Fatalf("%s missing from /v1/platforms: %+v", name, pr)
		}
		if p.BackendHash == "" || p.PeakGFlops <= 0 || p.FitDate == "" || p.FitTool == "" {
			t.Fatalf("%s: incomplete calibration provenance: %+v", name, p)
		}
		if len(p.FitResiduals) == 0 {
			t.Fatalf("%s: no fit residuals: %+v", name, p)
		}
	}
	if !byName["BDW"].Paper || !byName["RPL"].Paper || byName["WIDE"].Paper {
		t.Fatalf("paper flags wrong: %+v", pr.Platforms)
	}

	// The file-loaded backend answers compile requests by alias.
	cresp, data := post(t, ts, "/v1/compile", Request{Kernel: "gemm", Size: "test", Platform: "wide-uncore"})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("compile on WIDE: %d %s", cresp.StatusCode, data)
	}
	var comp CompileResponse
	if err := json.Unmarshal(data, &comp); err != nil {
		t.Fatal(err)
	}
	if comp.Arch != "WIDE" || len(comp.Nests) == 0 {
		t.Fatalf("compile response %+v", comp)
	}

	st := s.statsz()
	ws, ok := st.Platforms["WIDE"]
	if !ok || ws.BackendHash == "" || ws.FitDate == "" || len(ws.Residuals) == 0 {
		t.Fatalf("statsz WIDE provenance %+v", st.Platforms)
	}
	if ws.Served != 1 || st.Platforms["BDW"].Served != 0 {
		t.Fatalf("per-platform served counts %+v", st.Platforms)
	}
}

// Graceful drain: cancelling Run's context stops the listener, lets the
// in-flight request finish with 200, and restores the default caps.
func TestServerGracefulDrain(t *testing.T) {
	cfg := testConfig()
	s := newServer(t, cfg)
	hold := make(chan struct{})
	holding := make(chan struct{}, 1)
	s.testHook = func() {
		holding <- struct{}{}
		<-hold
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln) }()

	url := fmt.Sprintf("http://%s/v1/compile", ln.Addr())
	respErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(`{"kernel":"gemm","size":"test"}`))
		if err == nil {
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight request: %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		respErr <- err
	}()
	<-holding // request is inside the handler
	cancel()  // SIGTERM
	// Shutdown waits for the in-flight request; release it.
	time.Sleep(50 * time.Millisecond)
	close(hold)
	if err := <-respErr; err != nil {
		t.Fatalf("in-flight request failed across drain: %v", err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not drain")
	}
	for _, plat := range []string{"BDW", "RPL"} {
		s.breaker(plat).WithMachine(func(m *hw.Machine) error {
			if m.UncoreCap() != m.P.UncoreMax {
				t.Fatalf("%s cap left at %.1f after drain", plat, m.UncoreCap())
			}
			return nil
		})
	}
}
