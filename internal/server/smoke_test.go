package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
)

// The CI smoke scenario end to end: a fault-injected daemon serves a
// concurrent burst of mixed requests, takes a SIGTERM-style cancellation,
// drains cleanly with the default caps restored, and a restarted daemon
// replays the journaled responses byte-identically.
func TestServerConcurrentSmokeWithFaultsAndDrain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "smoke.jsonl")

	reg := faults.New(31)
	reg.Enable(hw.FaultCapWriteBusy, faults.Spec{P: 0.3})
	reg.Enable(hw.FaultThermalOverride, faults.Spec{P: 0.1})
	cfg := DefaultConfig()
	cfg.Concurrency = 4
	cfg.Queue = 64
	cfg.Faults = reg
	cfg.FaultSeed = 31
	cfg.JournalPath = path
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln) }()
	base := fmt.Sprintf("http://%s", ln.Addr())

	kernels := []string{"gemm", "atax", "mvt", "bicg"}
	archs := []string{"rpl", "bdw"}
	const n = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	codeCount := map[int]int{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{
				Kernel:  kernels[i%len(kernels)],
				Arch:    archs[i%len(archs)],
				Size:    "test",
				Measure: i%3 == 0, // a third of the burst hits the faulty driver
			}
			body, _ := json.Marshal(req)
			resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			mu.Lock()
			codeCount[resp.StatusCode]++
			mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				var sr SearchResponse
				if err := json.Unmarshal(data, &sr); err != nil || len(sr.Nests) == 0 {
					t.Errorf("request %d: bad body %s", i, data)
				}
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("request %d: 429 without Retry-After", i)
				}
			default:
				t.Errorf("request %d: unexpected status %d: %s", i, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()
	if codeCount[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded: %v", codeCount)
	}

	// SIGTERM: drain and assert the machines are left uncapped even though
	// driver writes were failing 30% of the time.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	for _, plat := range []string{"BDW", "RPL"} {
		s.breaker(plat).WithMachine(func(m *hw.Machine) error {
			if m.UncoreCap() != m.P.UncoreMax {
				t.Fatalf("%s cap left at %.1f after drain", plat, m.UncoreCap())
			}
			return nil
		})
	}

	// Fault-armed daemons bypass the journal (injected outcomes are not
	// deterministic), so a healthy restart starts it fresh and replays.
	cfg2 := DefaultConfig()
	cfg2.Concurrency = 2
	cfg2.JournalPath = path
	cfg2.Resume = true
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	req := Request{Kernel: "gemm", Size: "test"}
	first := postBody(t, s2, req)
	if s2.JournalStats().Appended != 1 {
		t.Fatalf("journal stats %+v", s2.JournalStats())
	}

	cfg3 := cfg2
	s3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := postBody(t, s3, req); !bytes.Equal(first, got) {
		t.Fatalf("journal replay differs across restart:\n%s\nvs\n%s", first, got)
	}
	if st := s3.statsz(); st.Journal.Replayed != 1 || st.CompileCache.Misses != 0 {
		t.Fatalf("restart did not replay: %+v", st.Journal)
	}
}

// postBody serves one request through the handler directly and returns
// the 200 body.
func postBody(t *testing.T, s *Server, req Request) []byte {
	t.Helper()
	body, _ := json.Marshal(req)
	r, err := http.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.Bytes())
	}
	return w.Body.Bytes()
}
