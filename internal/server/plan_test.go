package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"polyufc/internal/plantable"
	"polyufc/internal/roofline"
)

// buildPlanTable sweeps and persists a default-options table for a
// registry backend, returning the file path and the table.
func buildPlanTable(t *testing.T, name, dir string) (string, *plantable.Table) {
	t.Helper()
	tg, err := roofline.ResolveName(name)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := plantable.Build(nil, tg, plantable.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".plan.json")
	if err := tb.Save(path); err != nil {
		t.Fatal(err)
	}
	return path, tb
}

// TestServerServesFromPlanTable boots the daemon with a precomputed
// table and proves the serve path uses it: requests for the table's
// backend count as hits in /statsz, and the answers stay on the cap
// grid.
func TestServerServesFromPlanTable(t *testing.T) {
	path, _ := buildPlanTable(t, "bdw", t.TempDir())
	cfg := testConfig()
	cfg.PlanTables = []string{path}
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "bdw", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d: %s", resp.StatusCode, data)
	}

	st := s.statsz()
	if st.PlanTables.Loaded != 1 {
		t.Fatalf("statsz reports %d tables loaded, want 1", st.PlanTables.Loaded)
	}
	if st.PlanTables.Hits == 0 {
		t.Fatalf("no plan-table hits after a search for the table's backend: %+v", st.PlanTables)
	}
	if st.PlanTables.Stale != 0 {
		t.Fatalf("staleness counted against a fresh table: %+v", st.PlanTables)
	}

	// The /statsz HTTP payload carries the same counters.
	r, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out Statsz
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.PlanTables.Loaded != 1 || out.PlanTables.Hits == 0 {
		t.Fatalf("/statsz payload lost the plan counters: %+v", out.PlanTables)
	}
}

// TestServerCountsFallbacks: a table for one backend does not answer
// another backend's requests — those fall back to live search and the
// counter says so.
func TestServerCountsFallbacks(t *testing.T) {
	path, _ := buildPlanTable(t, "bdw", t.TempDir())
	cfg := testConfig()
	cfg.PlanTables = []string{path}
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "rpl", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d: %s", resp.StatusCode, data)
	}
	if st := s.statsz(); st.PlanTables.Fallbacks == 0 {
		t.Fatalf("rpl request against a bdw-only table counted no fallbacks: %+v", st.PlanTables)
	}
}

// TestServerRejectsStaleTableAtBoot is the staleness acceptance test:
// a table whose calibration hash no longer matches the daemon's own
// boot-time calibration must fail boot loudly — never silent reuse.
func TestServerRejectsStaleTableAtBoot(t *testing.T) {
	dir := t.TempDir()
	path, tb := buildPlanTable(t, "bdw", dir)

	stale, err := plantable.Parse(mustMarshalTable(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	stale.CalHash = "feedfacefeedface" // a recalibration happened since the sweep
	stalePath := filepath.Join(dir, "stale.plan.json")
	if err := stale.Save(stalePath); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.PlanTables = []string{stalePath}
	if _, err := New(cfg); err == nil {
		t.Fatal("server booted with a stale plan table")
	} else if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("boot error does not name staleness: %v", err)
	}

	// The untouched table still boots.
	cfg.PlanTables = []string{path}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

// TestServerRejectsUnservedBackendTable: a table for a backend the
// daemon does not serve is a config error at boot.
func TestServerRejectsUnservedBackendTable(t *testing.T) {
	path, tb := buildPlanTable(t, "bdw", t.TempDir())
	foreign, err := plantable.Parse(mustMarshalTable(t, tb))
	if err != nil {
		t.Fatal(err)
	}
	foreign.Backend = "EPYC"
	if err := foreign.Save(path); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.PlanTables = []string{path}
	if _, err := New(cfg); err == nil {
		t.Fatal("server booted with a table for an unserved backend")
	} else if !strings.Contains(err.Error(), "does not serve") {
		t.Fatalf("boot error does not name the unserved backend: %v", err)
	}
}

func mustMarshalTable(t *testing.T, tb *plantable.Table) []byte {
	t.Helper()
	data, err := tb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
