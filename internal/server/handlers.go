package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"polyufc/internal/core"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/parallel"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/tiling"
	"polyufc/internal/workloads"
)

// Request is the body of the three POST endpoints. Zero fields fall back
// to the paper's defaults (rpl, bench size, EDP objective, linalg caps).
type Request struct {
	Kernel string `json:"kernel"`
	// Platform selects the backend by registry name or alias; Arch is
	// the legacy spelling of the same field and is honoured when
	// Platform is empty.
	Platform  string  `json:"platform"`
	Arch      string  `json:"arch"`
	Size      string  `json:"size"`
	Objective string  `json:"objective"`
	CapLevel  string  `json:"cap_level"`
	Epsilon   float64 `json:"epsilon"`
	// Tiling selects the tile-stage strategy ("pluto", "cacheoblivious",
	// "latency:probe=3", "auto"; see internal/tiling). Empty falls back
	// to the daemon's configured default. The tiling= query parameter
	// overrides the body field.
	Tiling string `json:"tiling"`
	// Measure asks /v1/search to also run the baseline and capped program
	// on the platform's shared machine, through the circuit breaker. When
	// the breaker is open the response degrades to model-only instead of
	// erroring — see DegradedTo.
	Measure bool `json:"measure"`
}

// NestResponse is one nest's analysis in a response.
type NestResponse struct {
	Label          string  `json:"label"`
	OI             float64 `json:"oi"`
	Class          string  `json:"class"`
	Tiled          bool    `json:"tiled"`
	Tiling         string  `json:"tiling,omitempty"`
	TileSize       int64   `json:"tile_size,omitempty"`
	CapGHz         float64 `json:"cap_ghz"`
	Threads        int     `json:"threads"`
	PredSeconds    float64 `json:"pred_seconds"`
	PredJoules     float64 `json:"pred_joules"`
	PredEDP        float64 `json:"pred_edp"`
	DefaultSeconds float64 `json:"default_seconds"`
	DefaultJoules  float64 `json:"default_joules"`
	DefaultEDP     float64 `json:"default_edp"`
	Degraded       bool    `json:"degraded,omitempty"`
	Error          string  `json:"error,omitempty"`
	// Topology placement (multi-socket backends only; all omitted on
	// single-socket answers, keeping the v1 wire format byte-identical).
	// Socket is the home socket, -1 for nests spanning every socket;
	// RemoteRatio the modeled remote share of DRAM traffic; SocketCaps
	// the per-socket uncore cap vector in force while this nest runs.
	Socket      int       `json:"socket,omitempty"`
	RemoteRatio float64   `json:"remote_ratio,omitempty"`
	SocketCaps  []float64 `json:"socket_caps,omitempty"`
}

// TopologyResponse is the cluster-level rollup of a compilation on a
// multi-socket or multi-node backend (omitted entirely on v1
// single-socket answers). Mirrors core.TopologyResult.
type TopologyResponse struct {
	Sockets           int       `json:"sockets"`
	Nodes             int       `json:"nodes"`
	SocketSeconds     []float64 `json:"socket_seconds"`
	SocketJoules      []float64 `json:"socket_joules"`
	NodeSeconds       float64   `json:"node_seconds"`
	NodeJoules        float64   `json:"node_joules"`
	ClusterSeconds    float64   `json:"cluster_seconds"`
	ClusterJoules     float64   `json:"cluster_joules"`
	ClusterEDP        float64   `json:"cluster_edp"`
	ClusterEDPDefault float64   `json:"cluster_edp_default"`
}

func topologyResponse(res *core.Result) *TopologyResponse {
	tp := res.Topology
	if tp == nil {
		return nil
	}
	return &TopologyResponse{
		Sockets: tp.Sockets, Nodes: tp.Nodes,
		SocketSeconds: tp.SocketSeconds, SocketJoules: tp.SocketJoules,
		NodeSeconds: tp.NodeSeconds, NodeJoules: tp.NodeJoules,
		ClusterSeconds: tp.ClusterSeconds, ClusterJoules: tp.ClusterJoules,
		ClusterEDP: tp.ClusterEDP, ClusterEDPDefault: tp.ClusterEDPDefault,
	}
}

// CompileResponse is the /v1/compile payload. CalibrationDegraded marks
// answers computed while the backend's drift watchdog is in a
// degradation episode (best-effort daemons only; strict ones refuse
// with 503 instead) — the model constants are known to disagree with
// the live hardware until the re-fit lands.
type CompileResponse struct {
	Kernel              string            `json:"kernel"`
	Arch                string            `json:"arch"`
	Objective           string            `json:"objective"`
	CapLevel            string            `json:"cap_level"`
	CapsInserted        int               `json:"caps_inserted"`
	CapsRemoved         int               `json:"caps_removed"`
	Nests               []NestResponse    `json:"nests"`
	Topology            *TopologyResponse `json:"topology,omitempty"`
	CalibrationDegraded bool              `json:"calibration_degraded,omitempty"`
}

// CharacterizeResponse is the /v1/characterize payload: the calibrated
// roofline plus each nest's operational-intensity classification.
type CharacterizeResponse struct {
	Kernel              string         `json:"kernel"`
	Arch                string         `json:"arch"`
	PeakGFlops          float64        `json:"peak_gflops"`
	PeakGBs             float64        `json:"peak_gbs"`
	BtDRAM              float64        `json:"bt_dram"`
	Nests               []NestResponse `json:"nests"`
	CalibrationDegraded bool           `json:"calibration_degraded,omitempty"`
}

// MeasuredResponse is the hardware half of a measured /v1/search answer.
type MeasuredResponse struct {
	BaselineSeconds float64 `json:"baseline_seconds"`
	BaselineJoules  float64 `json:"baseline_joules"`
	BaselineEDP     float64 `json:"baseline_edp"`
	CappedSeconds   float64 `json:"capped_seconds"`
	CappedJoules    float64 `json:"capped_joules"`
	CappedEDP       float64 `json:"capped_edp"`
	EDPGainPct      float64 `json:"edp_gain_pct"`
	// SocketCaps is the per-socket cap vector asserted on the topology's
	// uncore domains after the capped run; SocketDegraded lists the
	// domains whose breaker refused the assertion (one sick socket
	// degrades only itself, never the measured answer). Both omitted on
	// single-socket backends.
	SocketCaps     []float64 `json:"socket_caps,omitempty"`
	SocketDegraded []string  `json:"socket_degraded,omitempty"`
}

// SearchResponse is the /v1/search payload. DegradedTo is set when a
// measured request fell back to the model answer (breaker open or driver
// error); the model half is always present.
type SearchResponse struct {
	Kernel              string            `json:"kernel"`
	Arch                string            `json:"arch"`
	Objective           string            `json:"objective"`
	Nests               []NestResponse    `json:"nests"`
	Topology            *TopologyResponse `json:"topology,omitempty"`
	Measured            *MeasuredResponse `json:"measured,omitempty"`
	DegradedTo          string            `json:"degraded_to,omitempty"`
	CalibrationDegraded bool              `json:"calibration_degraded,omitempty"`
}

// httpError carries a status code out of a handler. retryAfter, when
// positive, becomes a Retry-After header — every 503 the daemon sends
// for a transient condition (drift degradation, an open breaker) tells
// the client when to come back, consistent with the 429 shedding path.
type httpError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// retryAfterSeconds renders a duration as a Retry-After value, never
// below one second (zero would tell clients to hammer).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if d%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errBody struct {
	Error string `json:"error"`
}

// Handler builds the daemon's routing table. The three compute endpoints
// run behind the full middleware chain (panic isolation, admission gate,
// per-request deadline); the observability endpoints bypass the gate so
// health checks still answer while the daemon sheds load.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/v1/platforms", s.handlePlatforms)
	mux.HandleFunc("/v1/compile", s.wrap(s.handleCompile))
	mux.HandleFunc("/v1/characterize", s.wrap(s.handleCharacterize))
	mux.HandleFunc("/v1/search", s.wrap(s.handleSearch))
	// The async job tier. Submission and status are cheap bookkeeping —
	// the actual work runs on the job worker pool — so like the
	// observability endpoints they bypass the admission gate: inspecting
	// a running sweep must work while the daemon sheds compute load.
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	// The fleet cache tier: peers fetch and fill content-addressed
	// entries. Cheap verified I/O, so like the observability endpoints
	// it bypasses the admission gate — cache exchange must keep working
	// while the daemon sheds compute load.
	mux.HandleFunc("GET /v1/cas/{key}", s.handleCASGet)
	mux.HandleFunc("PUT /v1/cas/{key}", s.handleCASPut)
	return mux
}

// wrap is the middleware chain of one compute endpoint: recover panics to
// a 500 without killing the daemon, acquire an admission slot (429 +
// Retry-After on saturation), bound the request with RequestTimeout, and
// translate handler errors to statuses.
func (s *Server) wrap(h func(ctx context.Context, req Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				writeJSON(w, http.StatusInternalServerError, errBody{fmt.Sprintf("internal panic: %v", rec)})
			}
		}()
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errBody{"POST required"})
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errBody{"bad request body: " + err.Error()})
			return
		}
		// tiling= in the URL overrides the body: curl-side strategy
		// comparison without editing the request payload.
		if v := r.URL.Query().Get("tiling"); v != "" {
			req.Tiling = v
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if err := s.gate.Acquire(ctx); err != nil {
			s.rejected.Add(1)
			if errors.Is(err, parallel.ErrSaturated) {
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, errBody{"server saturated, retry later"})
				return
			}
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errBody{"cancelled while queued: " + err.Error()})
			return
		}
		defer s.gate.Release()
		if s.testHook != nil {
			s.testHook()
		}
		out, err := h(ctx, req)
		if err != nil {
			var he *httpError
			switch {
			case errors.As(err, &he):
				if he.retryAfter > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
				}
				writeJSON(w, he.status, errBody{he.msg})
			case errors.Is(err, hw.ErrBreakerOpen):
				// A strict compute path ran into a quarantined driver:
				// transient by construction — the breaker reprobes after
				// its cooldown — so tell the client when.
				w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.Breaker.Cooldown))
				writeJSON(w, http.StatusServiceUnavailable, errBody{err.Error()})
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				writeJSON(w, http.StatusGatewayTimeout, errBody{"deadline exceeded: " + err.Error()})
			default:
				writeJSON(w, http.StatusInternalServerError, errBody{err.Error()})
			}
			return
		}
		s.served.Add(1)
		writeJSON(w, http.StatusOK, out)
	}
}

// resolved is a validated Request.
type resolved struct {
	target *roofline.Target
	p      *hw.Platform
	sz     workloads.SizeClass
	obj    search.Objective
	lvl    ir.Dialect
	eps    float64
	tiling tiling.Spec
}

// servedNames lists the backends this daemon calibrated, in boot order.
func (s *Server) servedNames() []string {
	var names []string
	for _, p := range s.plats {
		names = append(names, p.Name)
	}
	return names
}

func (s *Server) resolve(req Request) (resolved, error) {
	var r resolved
	if req.Kernel == "" {
		return r, badRequest("kernel is required")
	}
	name := req.Platform
	if name == "" {
		name = req.Arch
	}
	if name == "" {
		name = "rpl"
	}
	b, err := platform.Lookup(name)
	if err != nil {
		return r, badRequest("unknown platform %q (serving: %s)", name, strings.Join(s.servedNames(), ", "))
	}
	t, ok := s.target(b.Name)
	if !ok {
		return r, badRequest("platform %q is registered but not served by this daemon (serving: %s)",
			b.Name, strings.Join(s.servedNames(), ", "))
	}
	r.target = t
	r.p = t.Platform
	switch req.Size {
	case "test":
		r.sz = workloads.Test
	case "bench", "":
		r.sz = workloads.Bench
	case "full":
		r.sz = workloads.Full
	default:
		return r, badRequest("unknown size class %q", req.Size)
	}
	obj, ok := search.ParseObjective(req.Objective)
	if !ok {
		return r, badRequest("unknown objective %q", req.Objective)
	}
	r.obj = obj
	switch req.CapLevel {
	case "torch":
		r.lvl = ir.DialectTorch
	case "linalg", "":
		r.lvl = ir.DialectLinalg
	case "affine":
		r.lvl = ir.DialectAffine
	default:
		return r, badRequest("unknown cap level %q", req.CapLevel)
	}
	r.eps = req.Epsilon
	if r.eps <= 0 {
		r.eps = 1e-3
	}
	if req.Tiling == "" {
		r.tiling = s.cfg.Tiling.Normalize()
	} else {
		spec, err := tiling.ParseSpec(req.Tiling)
		if err != nil {
			return r, badRequest("%v", err)
		}
		r.tiling = spec
	}
	return r, nil
}

// requestConfig maps a resolved request onto a compile Config.
func (s *Server) requestConfig(r resolved) core.Config {
	cfg := core.DefaultConfig(r.target)
	cfg.Search.Objective = r.obj
	cfg.Search.Epsilon = r.eps
	cfg.CapLevel = r.lvl
	cfg.Tiling = r.tiling
	cfg.Degrade = s.cfg.Degrade
	cfg.Plans = s.planSet() // nil when no tables are loaded or built
	return cfg
}

// pipelineOpts wires a compilation to the daemon's shared stage cache
// and stage-event aggregation. until, when set, bounds the run to the
// pipeline prefix ending at that stage.
func (s *Server) pipelineOpts(until string) core.PipelineOptions {
	return core.PipelineOptions{Stages: &s.stages, Until: until, Observe: s.stageStats.Observe}
}

// compile runs one request through the shared bounded cache (or directly
// while faults are armed — injection state is call-ordered, memoizing a
// faulted Result would replay one injection outcome across requests).
// Whole-result misses still reuse memoized stage snapshots, so a compile
// after a characterize of the same kernel skips the analysis prefix.
func (s *Server) compile(ctx context.Context, req Request, r resolved) (*core.Result, error) {
	cfg := s.requestConfig(r)
	k, err := workloads.ByName(req.Kernel)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if s.cfg.Faults != nil {
		cfg.Faults = s.cfg.Faults
		mod, err := k.Build(r.sz)
		if err != nil {
			return nil, err
		}
		// Stage memoization disarms itself under faults; events still flow.
		return core.CompilePipeline(ctx, mod, cfg, s.pipelineOpts(""))
	}
	key := core.CacheKey{
		Kernel:    req.Kernel,
		Platform:  r.p.Name,
		CalHash:   r.target.Constants.Hash(),
		Size:      int(r.sz),
		CapLevel:  cfg.CapLevel,
		Tiling:    r.tiling.Fingerprint(),
		Objective: r.obj,
		Epsilon:   r.eps,
		Degrade:   s.cfg.Degrade,
	}
	return s.cache.CompileStaged(ctx, key, cfg, s.pipelineOpts(""), func() (*ir.Module, error) {
		return k.Build(r.sz)
	})
}

// characterize runs the analysis prefix of the pipeline — preprocess,
// tile, cachemodel, characterize — and stops before model fitting and
// search. It bypasses the whole-result cache (a prefix Result is a
// different artifact than a full compile under the same key) and leans
// on the stage cache instead: the heavy stages memoize per snapshot, and
// a later full compile of the same kernel/config resumes from them.
func (s *Server) characterize(ctx context.Context, req Request, r resolved) (*core.Result, error) {
	cfg := s.requestConfig(r)
	if s.cfg.Faults != nil {
		cfg.Faults = s.cfg.Faults
	}
	k, err := workloads.ByName(req.Kernel)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	mod, err := k.Build(r.sz)
	if err != nil {
		return nil, err
	}
	return core.CompilePipeline(ctx, mod, cfg, s.pipelineOpts(core.StageCharacterize))
}

func nestResponses(res *core.Result) []NestResponse {
	out := make([]NestResponse, 0, len(res.Reports))
	for _, r := range res.Reports {
		n := NestResponse{
			Label:    r.Label,
			OI:       r.OI,
			Class:    r.Class.String(),
			Tiled:    r.Tiled,
			Tiling:   r.Tiling,
			TileSize: r.TileSize,
			CapGHz:   r.CapGHz,
			Threads:  r.Threads,
			// Zero on single-socket backends, so the omitempty tags keep
			// the pre-topology wire format (and journal keys) intact.
			Socket:      r.Socket,
			RemoteRatio: r.RemoteRatio,
			SocketCaps:  r.SocketCaps,
		}
		if r.Degraded {
			n.Degraded = true
			if r.Err != nil {
				n.Error = r.Err.Error()
			}
		}
		if r.CM != nil || !r.Degraded {
			n.PredSeconds = r.Est.Seconds
			n.PredJoules = r.Est.Joules
			n.PredEDP = r.Est.EDP
			n.DefaultSeconds = r.EstDefault.Seconds
			n.DefaultJoules = r.EstDefault.Joules
			n.DefaultEDP = r.EstDefault.EDP
		}
		out = append(out, n)
	}
	return out
}

// journalKey canonicalizes the deterministic parameters of a request.
// The calibration hash is part of them: a re-fitted daemon must not
// replay answers computed against the stale constants. Loaded plan
// tables are too: a table-served cap can differ from live bisection
// within the interpolation tolerance, so a daemon rebooted with
// different tables must recompute, not replay.
func (s *Server) journalKey(endpoint string, req Request, r resolved) string {
	key := strings.Join([]string{
		endpoint, r.p.Name, "cal" + r.target.Constants.Hash(), req.Kernel,
		fmt.Sprintf("sz%d", int(r.sz)), r.obj.String(),
		fmt.Sprintf("lvl%d", int(r.lvl)), fmt.Sprintf("eps%g", r.eps),
		"tiling=" + r.tiling.Fingerprint(),
	}, "/")
	if plans := s.planSet(); plans != nil {
		sum := sha256.Sum256([]byte(plans.Fingerprint()))
		key += "/plans" + hex.EncodeToString(sum[:8])
	}
	return key
}

// driftGate applies the degrade semantics while a backend's calibration
// is in a degradation episode (watchdog degraded, or re-fit running): a
// Strict daemon refuses the request with 503 — the constants are known
// wrong, an answer would be too — while a BestEffort daemon serves the
// model-only answer flagged CalibrationDegraded. The flag is applied
// OUTSIDE the response journal: degradation is live state, not part of
// the deterministic answer.
func (s *Server) driftGate(r resolved) (bool, error) {
	if !s.drift.Degraded(r.p.Name) {
		return false, nil
	}
	if s.cfg.Degrade == core.Strict {
		return false, &httpError{status: http.StatusServiceUnavailable, retryAfter: 5, msg: fmt.Sprintf(
			"calibration for %q is degraded (drift watchdog %s); re-fit in progress — retry later or serve with -degrade best-effort",
			r.p.Name, s.drift.State(r.p.Name))}
	}
	return true, nil
}

func (s *Server) handleCompile(ctx context.Context, req Request) (any, error) {
	r, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	degraded, err := s.driftGate(r)
	if err != nil {
		return nil, err
	}
	var resp CompileResponse
	err = s.cached(ctx, s.journalKey("v1/compile", req, r), &resp, func() error {
		res, err := s.compile(ctx, req, r)
		if err != nil {
			return err
		}
		resp = CompileResponse{
			Kernel:       req.Kernel,
			Arch:         r.p.Name,
			Objective:    r.obj.String(),
			CapLevel:     r.lvl.String(),
			CapsInserted: res.CapsInserted,
			CapsRemoved:  res.CapsRemoved,
			Nests:        nestResponses(res),
			Topology:     topologyResponse(res),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	resp.CalibrationDegraded = degraded
	s.markServed(r.p.Name)
	s.markTiling(r.tiling)
	return resp, nil
}

func (s *Server) handleCharacterize(ctx context.Context, req Request) (any, error) {
	r, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	degraded, err := s.driftGate(r)
	if err != nil {
		return nil, err
	}
	var resp CharacterizeResponse
	err = s.cached(ctx, s.journalKey("v1/characterize", req, r), &resp, func() error {
		res, err := s.characterize(ctx, req, r)
		if err != nil {
			return err
		}
		c := r.target.Constants
		resp = CharacterizeResponse{
			Kernel:     req.Kernel,
			Arch:       r.p.Name,
			PeakGFlops: c.PeakGFlops,
			PeakGBs:    c.PeakGBs,
			BtDRAM:     c.BtDRAM,
			Nests:      nestResponses(res),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	resp.CalibrationDegraded = degraded
	s.markServed(r.p.Name)
	s.markTiling(r.tiling)
	return resp, nil
}

func (s *Server) handleSearch(ctx context.Context, req Request) (any, error) {
	r, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	degraded, err := s.driftGate(r)
	if err != nil {
		return nil, err
	}
	// The model half is deterministic and journaled; the measured half
	// never is — it exercises the live driver every time.
	var resp SearchResponse
	var res *core.Result
	err = s.cached(ctx, s.journalKey("v1/search", req, r), &resp, func() error {
		var cerr error
		res, cerr = s.compile(ctx, req, r)
		if cerr != nil {
			return cerr
		}
		resp = SearchResponse{
			Kernel:    req.Kernel,
			Arch:      r.p.Name,
			Objective: r.obj.String(),
			Nests:     nestResponses(res),
			Topology:  topologyResponse(res),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	resp.CalibrationDegraded = degraded
	s.markServed(r.p.Name)
	s.markTiling(r.tiling)
	if !req.Measure {
		return resp, nil
	}
	// A journal replay skipped the compile; the measured path needs the
	// compiled module regardless.
	if res == nil {
		if res, err = s.compile(ctx, req, r); err != nil {
			return nil, err
		}
	}
	s.measure(res, r, &resp)
	return resp, nil
}

// measure runs the baseline and the capped program on the platform's
// shared machine through its circuit breaker. Any driver-path failure —
// breaker open, verified-write exhaustion, run error — degrades the
// response to the model-only answer with DegradedTo set, never an error:
// a sick driver must not make the endpoint unavailable.
func (s *Server) measure(res *core.Result, r resolved, resp *SearchResponse) {
	b := s.breakers[r.p.Name]
	var base hw.RunResult
	err := b.WithMachine(func(m *hw.Machine) error {
		m.SetUncoreCap(r.p.UncoreMax)
		for _, f := range res.Module.Funcs {
			for _, op := range f.Ops {
				nest, ok := op.(*ir.Nest)
				if !ok {
					continue
				}
				rr, err := m.RunNest(nest)
				if err != nil {
					return err
				}
				base.Seconds += rr.Seconds
				base.PkgJoules += rr.PkgJoules
			}
		}
		base.EDP = base.PkgJoules * base.Seconds
		return nil
	})
	if err != nil {
		s.degraded.Add(1)
		resp.DegradedTo = "model-only: baseline measurement failed: " + err.Error()
		return
	}
	// Every successful baseline measurement feeds the drift watchdog:
	// the model's default-cap prediction vs what the hardware just did.
	// Sustained disagreement past the threshold flips the backend to
	// degraded and auto-enqueues a re-fit job (see onDrift).
	var predicted float64
	for _, rep := range res.Reports {
		if rep.Degraded {
			predicted = 0
			break
		}
		predicted += rep.EstDefault.Seconds
	}
	if predicted > 0 {
		s.drift.Record(r.p.Name, predicted, base.Seconds)
	}
	capped, err := b.RunFunc(res.Module.Funcs[0])
	if err != nil {
		s.degraded.Add(1)
		if errors.Is(err, hw.ErrBreakerOpen) {
			resp.DegradedTo = "model-only: " + err.Error()
		} else {
			resp.DegradedTo = "model-only: capped run failed: " + err.Error()
		}
		return
	}
	m := &MeasuredResponse{
		BaselineSeconds: base.Seconds,
		BaselineJoules:  base.PkgJoules,
		BaselineEDP:     base.EDP,
		CappedSeconds:   capped.Seconds,
		CappedJoules:    capped.PkgJoules,
		CappedEDP:       capped.EDP,
	}
	if base.EDP > 0 {
		m.EDPGainPct = 100 * (1 - capped.EDP/base.EDP)
	}
	s.applySocketCaps(res, r, m)
	resp.Measured = m
}

// applySocketCaps asserts the compiled per-socket cap vector on every
// extra uncore domain of a topology backend through that socket's own
// breaker (the capped run above already drove socket 0's). One socket's
// driver failure degrades only that socket — it is recorded, counted,
// and the measured answer stands.
func (s *Server) applySocketCaps(res *core.Result, r resolved, m *MeasuredResponse) {
	if r.target == nil || r.target.NumSockets() <= 1 {
		return
	}
	caps := finalSocketCaps(res)
	if caps == nil {
		return
	}
	m.SocketCaps = caps
	for k := 1; k < len(caps); k++ {
		b := s.socketBreaker(r.p.Name, k)
		if b == nil {
			continue
		}
		if _, err := b.SetCap(caps[k]); err != nil {
			s.degraded.Add(1)
			m.SocketDegraded = append(m.SocketDegraded, fmt.Sprintf("s%d: %v", k, err))
		}
	}
}

// finalSocketCaps is the last report's per-socket cap vector — the caps
// in force when the module finishes.
func finalSocketCaps(res *core.Result) []float64 {
	for i := len(res.Reports) - 1; i >= 0; i-- {
		if caps := res.Reports[i].SocketCaps; caps != nil {
			return caps
		}
	}
	return nil
}

// PlatformResponse is one entry of the /v1/platforms payload: the
// backend's identity plus the provenance of the calibration serving it.
type PlatformResponse struct {
	Name         string             `json:"name"`
	Aliases      []string           `json:"aliases,omitempty"`
	CPU          string             `json:"cpu"`
	Cores        int                `json:"cores"`
	Threads      int                `json:"threads"`
	UncoreMinGHz float64            `json:"uncore_min_ghz"`
	UncoreMaxGHz float64            `json:"uncore_max_ghz"`
	CapStepGHz   float64            `json:"cap_step_ghz"`
	Paper        bool               `json:"paper,omitempty"`
	BackendHash  string             `json:"backend_hash"`
	PeakGFlops   float64            `json:"peak_gflops"`
	PeakGBs      float64            `json:"peak_gbs"`
	BtDRAM       float64            `json:"bt_dram"`
	FitDate      string             `json:"fit_date,omitempty"`
	FitSeed      int64              `json:"fit_seed"`
	FitTool      string             `json:"fit_tool,omitempty"`
	FitResiduals map[string]float64 `json:"fit_residuals,omitempty"`
	// Topology shape (multi-socket/multi-node backends only; all omitted
	// for v1 single-socket descriptions so their payloads are unchanged).
	Sockets         int     `json:"sockets,omitempty"`
	Nodes           int     `json:"nodes,omitempty"`
	TotalThreads    int     `json:"total_threads,omitempty"`
	InterconnectGBs float64 `json:"interconnect_gbs,omitempty"`
}

// PlatformsResponse is the /v1/platforms payload.
type PlatformsResponse struct {
	Platforms []PlatformResponse `json:"platforms"`
}

// handlePlatforms lists the served backends with calibration provenance.
// Like the other observability endpoints it bypasses the admission gate:
// discovering which machines a shedding daemon serves must still work.
func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errBody{"GET required"})
		return
	}
	resp := PlatformsResponse{Platforms: []PlatformResponse{}}
	for _, p := range s.plats {
		resp.Platforms = append(resp.Platforms, platformResponse(s.targets[p.Name]))
	}
	writeJSON(w, http.StatusOK, resp)
}

func platformResponse(t *roofline.Target) PlatformResponse {
	p := t.Platform
	out := PlatformResponse{
		Name: p.Name, CPU: p.CPU, Cores: p.Cores, Threads: p.Threads,
		UncoreMinGHz: p.UncoreMin, UncoreMaxGHz: p.UncoreMax, CapStepGHz: p.CapStep,
	}
	if c := t.Constants; c != nil {
		out.PeakGFlops = c.PeakGFlops
		out.PeakGBs = c.PeakGBs
		out.BtDRAM = c.BtDRAM
	}
	if b := t.Backend; b != nil {
		out.Aliases = b.Aliases
		out.Paper = b.Paper
		out.BackendHash = b.Hash()
		if b.NumSockets() > 1 || b.NumNodes() > 1 {
			out.Sockets = b.NumSockets()
			out.Nodes = b.NumNodes()
			out.TotalThreads = b.TotalThreads()
			if b.Interconnect != nil {
				out.InterconnectGBs = b.Interconnect.BWGBs
			}
		}
	}
	if cal := t.Calibration; cal != nil {
		out.FitDate = cal.Provenance.FitDate
		out.FitSeed = cal.Provenance.Seed
		out.FitTool = cal.Provenance.Tool
		out.FitResiduals = cal.Provenance.Residuals
	}
	return out
}

// HealthzResponse is the /healthz payload.
type HealthzResponse struct {
	Status   string            `json:"status"`
	Breakers map[string]string `json:"breakers"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{Status: "ok", Breakers: map[string]string{}}
	for name, b := range s.breakers {
		st := b.State()
		resp.Breakers[name] = st.String()
		if st != hw.BreakerClosed {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsz())
}
