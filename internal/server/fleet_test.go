package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polyufc/internal/cas"
	"polyufc/internal/faults"
	"polyufc/internal/fleet"
)

// The persistence half of the tentpole: deterministic responses survive
// a restart through the content-addressed store and are served as warm
// hits without recompute.
func TestServerCASWarmRestartServesPersistedResponses(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CASDir = dir
	s1 := newServer(t, cfg)
	ts1 := httptest.NewServer(s1.Handler())
	resp, want := post(t, ts1, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, want)
	}
	if st := s1.CASStats(); st.Puts == 0 {
		t.Fatalf("no CAS fills after compile: %+v", st)
	}
	ts1.Close()
	s1.Close()

	// Fresh process, same store: the response must come back from the
	// warm-started entries byte-identically, and the calibration artifacts
	// persisted at first boot must warm-start the backends.
	cfg2 := testConfig()
	cfg2.CASDir = dir
	s2 := newServer(t, cfg2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if st := s2.CASStats(); st.WarmEntries == 0 {
		t.Fatalf("no warm entries after restart: %+v", st)
	}
	resp, got := post(t, ts2, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile after restart: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restart response differs:\n  got:  %s\n  want: %s", got, want)
	}
	if n := s2.CASWarmHits(); n == 0 {
		t.Fatal("restart served zero warm hits")
	}
}

// A corrupt entry on disk is quarantined — at boot or on read — and the
// request is recomputed, never failed.
func TestServerCASCorruptionFallsBackToCompute(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CASDir = dir
	s1 := newServer(t, cfg)
	ts1 := httptest.NewServer(s1.Handler())
	resp, want := post(t, ts1, "/v1/compile", Request{Kernel: "atax", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, want)
	}
	ts1.Close()
	s1.Close()

	// Flip one byte in every persisted entry.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".cas") {
			continue
		}
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged == 0 {
		t.Fatal("no .cas entries persisted")
	}

	cfg2 := testConfig()
	cfg2.CASDir = dir
	s2 := newServer(t, cfg2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, got := post(t, ts2, "/v1/compile", Request{Kernel: "atax", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile over corrupt store: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recomputed response differs:\n  got:  %s\n  want: %s", got, want)
	}
	if st := s2.CASStats(); st.Quarantined != int64(damaged) {
		t.Fatalf("quarantined %d of %d damaged entries: %+v", st.Quarantined, damaged, st)
	}
}

// The peer half of the tentpole: a cold daemon finds the entry on a warm
// peer, serves it byte-identically, and back-fills its own store.
func TestServerFleetPeerLookupAndBackfill(t *testing.T) {
	cfgA := testConfig()
	cfgA.CASDir = t.TempDir()
	a := newServer(t, cfgA)
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	resp, want := post(t, tsA, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm peer compile: %d %s", resp.StatusCode, want)
	}

	cfgB := testConfig()
	cfgB.CASDir = t.TempDir()
	cfgB.Peers = []string{tsA.URL}
	b := newServer(t, cfgB)
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	resp, got := post(t, tsB, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold peer compile: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer-served response differs:\n  got:  %s\n  want: %s", got, want)
	}
	if st := b.FleetStats(); st.PeerHits == 0 {
		t.Fatalf("cold daemon did not hit the peer: %+v", st)
	}
	// Back-filled: the same request again is answered without the peer.
	before := b.FleetStats().Lookups
	resp, got2 := post(t, tsB, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got2, want) {
		t.Fatalf("second request: %d %s", resp.StatusCode, got2)
	}
	if after := b.FleetStats().Lookups; after != before {
		t.Fatalf("second request went back to the peer (%d -> %d lookups)", before, after)
	}
}

// Dead peers, and injected peer faults, degrade to local compute — every
// request still succeeds with the same bytes a peerless daemon produces.
func TestServerFleetPeerFailureDegradesToLocalCompute(t *testing.T) {
	ctl := newServer(t, testConfig())
	tsCtl := httptest.NewServer(ctl.Handler())
	defer tsCtl.Close()
	resp, want := post(t, tsCtl, "/v1/search", Request{Kernel: "gemm", Size: "test", Objective: "energy"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control search: %d %s", resp.StatusCode, want)
	}

	cases := []struct {
		name  string
		fault string
		peers []string
	}{
		{"dead-peer", "", []string{"http://127.0.0.1:9"}},
		{"injected-timeout", fleet.FaultPeerTimeout + "=1", []string{tsCtl.URL}},
		{"injected-corrupt", fleet.FaultPeerCorrupt + "=1", []string{tsCtl.URL}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.CASDir = t.TempDir()
			cfg.Peers = tc.peers
			cfg.PeerTimeout = 150 * time.Millisecond
			if tc.fault != "" {
				reg, err := faults.Parse(tc.fault, 1)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults = reg
			}
			s := newServer(t, cfg)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			resp, got := post(t, ts, "/v1/search", Request{Kernel: "gemm", Size: "test", Objective: "energy"})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("search under %s: %d %s", tc.name, resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("degraded response differs under %s:\n  got:  %s\n  want: %s", tc.name, got, want)
			}
			// Fleet/cas faults leave caching live: the computed answer was
			// still persisted locally.
			if st := s.CASStats(); st.Puts == 0 {
				t.Fatalf("caching disarmed under %s: %+v", tc.name, st)
			}
		})
	}
}

// Armed fault points outside the fleet/cas namespaces disarm response
// caching entirely — injected compute outcomes must not be replayed.
func TestServerComputeFaultsDisarmCaching(t *testing.T) {
	reg, err := faults.Parse("ufs.write.ebusy=@999999", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.CASDir = t.TempDir()
	cfg.Faults = reg
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Boot-time calibration artifacts are stored regardless; what must
	// not happen is a *response* fill while a compute fault is armed.
	before := s.CASStats().Puts
	resp, data := post(t, ts, "/v1/compile", Request{Kernel: "gemm", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, data)
	}
	if after := s.CASStats().Puts; after != before {
		t.Fatalf("caching stayed live with a compute fault armed (%d -> %d puts)", before, after)
	}
}

// The peer protocol surface: GET serves verified entries with the
// checksum header, PUT verifies and stores, and both validate keys.
func TestServerCASEndpoints(t *testing.T) {
	cfg := testConfig()
	cfg.CASDir = t.TempDir()
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	payload := []byte(`{"artifact":"fleet-roundtrip"}`)
	key := cas.Sum(payload)

	// PUT with a matching checksum header.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/cas/"+key, bytes.NewReader(payload))
	req.Header.Set(fleet.HeaderSum, cas.Sum(payload))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put: %d", resp.StatusCode)
	}

	// GET returns the bytes and the checksum header.
	resp, err = client.Get(ts.URL + "/v1/cas/" + key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload)+1)
	n, _ := resp.Body.Read(got)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got[:n], payload) {
		t.Fatalf("get: %d %q", resp.StatusCode, got[:n])
	}
	if sum := resp.Header.Get(fleet.HeaderSum); sum != cas.Sum(payload) {
		t.Fatalf("get checksum header %q", sum)
	}

	// Unknown key is a clean 404; an invalid key is a 400 on both verbs.
	if resp, err = client.Get(ts.URL + "/v1/cas/" + cas.Sum([]byte("absent"))); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get missing: %d", resp.StatusCode)
	}
	if resp, err = client.Get(ts.URL + "/v1/cas/NOT-HEX"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("get invalid key: %d", resp.StatusCode)
	}

	// A lying checksum header is refused.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/cas/"+key, bytes.NewReader(payload))
	req.Header.Set(fleet.HeaderSum, cas.Sum([]byte("other")))
	if resp, err = client.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("put bad checksum: %d", resp.StatusCode)
	}
}

// A daemon without a store 404s GETs (the protocol's "compute it
// yourself") and refuses PUTs with 503 + Retry-After so peer breakers
// back off instead of hammering.
func TestServerCASEndpointsWithoutStore(t *testing.T) {
	s := newServer(t, testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	key := cas.Sum([]byte("anything"))

	resp, err := ts.Client().Get(ts.URL + "/v1/cas/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get without store: %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/cas/"+key, strings.NewReader("x"))
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("put without store: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// Every 503 path advertises Retry-After, consistent with the 429
// shedding path: here the job tier being disabled.
func TestServerJobSubmit503CarriesRetryAfter(t *testing.T) {
	s := newServer(t, testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"sweep"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job submit without jobs dir: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// Plan tables built by the async job tier persist into the CAS and are
// reinstalled at the next boot without a rebuild job.
func TestServerPlanTableWarmStartAcrossRestart(t *testing.T) {
	casDir := t.TempDir()
	cfg := testConfig()
	cfg.CASDir = casDir
	cfg.JobsDir = t.TempDir()
	s1 := newServer(t, cfg)
	ts1 := httptest.NewServer(s1.Handler())
	resp, data := postJSONBody(t, ts1, "/v1/jobs",
		`{"kind":"plantable","platform":"rpl","oi_points":4,"mem_points":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit plantable job: %d %s", resp.StatusCode, data)
	}
	var st struct {
		ID string `json:"id"`
	}
	mustUnmarshal(t, data, &st)
	waitJobDone(t, ts1, st.ID)
	if set := s1.planSet(); set == nil || set.Stats().Loaded == 0 {
		t.Fatal("plan table not installed after job")
	}
	ts1.Close()
	s1.Close()

	cfg2 := testConfig()
	cfg2.CASDir = casDir
	s2 := newServer(t, cfg2)
	defer s2.Close()
	if set := s2.planSet(); set == nil || set.Stats().Loaded == 0 {
		t.Fatal("plan table not warm-started from the CAS after restart")
	}
}

func postJSONBody(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func mustUnmarshal(t *testing.T, data []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
}

func waitJobDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		mustUnmarshal(t, buf.Bytes(), &st)
		switch st.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}
