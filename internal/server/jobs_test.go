package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polyufc/internal/core"
	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/jobs"
	"polyufc/internal/roofline"
)

// postJSON posts an arbitrary JSON body (the Request-shaped post helper
// in server_test.go does not fit the jobs API).
func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitJob polls GET /v1/jobs/{id} until the job reaches a terminal
// state, returning the final status.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, data := get(t, ts, "/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get job %s: %d: %s", id, resp.StatusCode, data)
		}
		var st JobStatusResponse
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("bad job status %s: %v", data, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerJobsSweepRoundTrip drives the async tier end to end over
// HTTP: submit a sweep, poll to completion, fetch the durable result,
// and replay the full event history over SSE.
func TestServerJobsSweepRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.JobsDir = t.TempDir()
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts, "/v1/jobs", JobSubmitRequest{
		Kind:      string(JobSweep),
		JobParams: JobParams{Kernels: []string{"gemm", "atax"}, Platform: "rpl", Size: "test"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var st jobs.Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Kind != JobSweep {
		t.Fatalf("bad submit status: %s", data)
	}

	final := waitJob(t, ts, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}
	if final.UnitsDone != 2 || final.UnitsTotal != 2 {
		t.Fatalf("units %d/%d, want 2/2", final.UnitsDone, final.UnitsTotal)
	}

	resp, data = get(t, ts, "/v1/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d: %s", resp.StatusCode, data)
	}
	var sweep SweepJobResult
	if err := json.Unmarshal(data, &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.Kernels) != 2 || sweep.Platform != "RPL" {
		t.Fatalf("bad sweep result: %s", data)
	}
	for _, kr := range sweep.Kernels {
		if len(kr.Nests) == 0 {
			t.Fatalf("kernel %s has no nests", kr.Kernel)
		}
	}

	// The job shows up in the listing.
	resp, data = get(t, ts, "/v1/jobs")
	var list JobListResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &list) != nil || len(list.Jobs) != 1 {
		t.Fatalf("list: %d: %s", resp.StatusCode, data)
	}

	// SSE replay of a finished job: the retained backlog streams out and
	// the connection closes at the terminal event.
	resp, data = get(t, ts, "/v1/jobs/"+st.ID+"/events")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("events: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	stream := string(data)
	for _, want := range []string{
		"event: " + jobs.EventSubmitted,
		"event: " + jobs.EventStarted,
		"event: " + jobs.EventUnit,
		"event: " + jobs.EventDone,
	} {
		if !strings.Contains(stream, want+"\n") {
			t.Fatalf("SSE stream missing %q:\n%s", want, stream)
		}
	}

	// Malformed submissions fail synchronously.
	for _, bad := range []JobSubmitRequest{
		{Kind: "mine-bitcoin"},
		{Kind: string(JobSweep), JobParams: JobParams{Kernels: []string{"no-such-kernel"}}},
		{Kind: string(JobSweep), JobParams: JobParams{Suite: "no-such-suite"}},
		{Kind: string(JobRefit)}, // refit requires a platform
		{Kind: string(JobSweep), JobParams: JobParams{Objective: "no-such-objective"}},
	} {
		if resp, data := postJSON(t, ts, "/v1/jobs", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %+v: %d %s, want 400", bad, resp.StatusCode, data)
		}
	}
	if resp, _ := get(t, ts, "/v1/jobs/j9999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestServerJobsDisabledWithoutDir: a daemon started without -jobs-dir
// refuses the job endpoints loudly instead of 404ing.
func TestServerJobsDisabledWithoutDir(t *testing.T) {
	s := newServer(t, testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, data := postJSON(t, ts, "/v1/jobs", JobSubmitRequest{Kind: string(JobSweep)})
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data), "-jobs-dir") {
		t.Fatalf("submit on disabled tier: %d: %s", resp.StatusCode, data)
	}
}

// TestServerJobResultDurableAcrossRestart proves the result a client
// fetches from a restarted daemon is byte-identical to the one the
// original daemon recorded.
func TestServerJobResultDurableAcrossRestart(t *testing.T) {
	jobsDir := t.TempDir()
	cfg := testConfig()
	cfg.JobsDir = jobsDir

	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(a.Handler())
	resp, data := postJSON(t, tsA, "/v1/jobs", JobSubmitRequest{
		Kind:      string(JobSweep),
		JobParams: JobParams{Kernels: []string{"gemm"}, Platform: "bdw", Size: "test"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var st jobs.Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	waitJob(t, tsA, st.ID)
	_, want := get(t, tsA, "/v1/jobs/"+st.ID+"/result")
	tsA.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b := newServer(t, cfg)
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	resp, got := get(t, tsB, "/v1/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result after restart: %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("result changed across restart:\n before: %s\n after:  %s", want, got)
	}
}

// driftServer builds a server whose machines run with the measurement
// drift fault always on: every measured run takes hw.DriftTimeFactor
// longer than the calibrated model predicts.
func driftServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	reg := faults.New(11)
	reg.Enable(hw.FaultMeasureDrift, faults.Spec{P: 1})
	cfg := testConfig()
	cfg.Faults = reg
	cfg.FaultSeed = 11
	if mutate != nil {
		mutate(&cfg)
	}
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// measureN sends n measured searches for the backend, asserting each
// one succeeds; every successful baseline feeds the drift watchdog.
func measureN(t *testing.T, ts *httptest.Server, arch string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: arch, Size: "test", Measure: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("measured search %d: %d: %s", i, resp.StatusCode, data)
		}
		var sr SearchResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.DegradedTo != "" {
			t.Fatalf("measured search %d degraded to model-only: %s", i, sr.DegradedTo)
		}
	}
}

// TestServerDriftStrictRefuses: without a job tier the watchdog can only
// refuse — under the default Strict policy a degraded backend 503s until
// an operator intervenes, and /statsz says why.
func TestServerDriftStrictRefuses(t *testing.T) {
	s, ts := driftServer(t, nil)
	measureN(t, ts, "bdw", 3)

	if !s.drift.Degraded("BDW") {
		t.Fatalf("watchdog did not trip after 3 drifted samples: %+v", s.drift.Snapshot())
	}
	resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "bdw", Size: "test"})
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data), "degraded") {
		t.Fatalf("degraded backend served under Strict: %d: %s", resp.StatusCode, data)
	}
	// The sibling backend is untouched.
	if resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "rpl", Size: "test"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy backend refused: %d: %s", resp.StatusCode, data)
	}
	st := s.statsz()
	ds, ok := st.Drift["BDW"]
	if !ok || ds.State != roofline.DriftDegraded.String() || ds.MeanAbsRelErr < 0.25 {
		t.Fatalf("statsz drift for BDW: %+v", st.Drift)
	}
}

// TestServerDriftBestEffortFlags: same episode under -degrade
// best-effort — the daemon keeps answering from the stale model but
// marks every response calibration_degraded.
func TestServerDriftBestEffortFlags(t *testing.T) {
	s, ts := driftServer(t, func(cfg *Config) { cfg.Degrade = core.BestEffort })
	measureN(t, ts, "bdw", 3)
	if !s.drift.Degraded("BDW") {
		t.Fatalf("watchdog did not trip: %+v", s.drift.Snapshot())
	}
	resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "bdw", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("best-effort refused: %d: %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.CalibrationDegraded {
		t.Fatalf("best-effort response not flagged: %s", data)
	}
}

// TestServerDriftAutoRefitRecovers is the whole robustness story in one
// test: drifted measurements trip the watchdog, the watchdog enqueues a
// re-fit job, the job re-calibrates against the drifted machine, swaps
// the live target, rebuilds the plan table the swap made stale, and the
// backend serves healthy again — no restart, no operator.
func TestServerDriftAutoRefitRecovers(t *testing.T) {
	dir := t.TempDir()
	tablePath, tb := buildPlanTable(t, "bdw", dir)
	var s *Server
	s, ts := driftServer(t, func(cfg *Config) {
		cfg.JobsDir = filepath.Join(dir, "jobs")
		cfg.PlanTables = []string{tablePath}
	})
	oldT, ok := s.target("BDW")
	if !ok {
		t.Fatal("BDW not served")
	}
	oldHash := oldT.Constants.Hash()
	if tb.CalHash != oldHash {
		t.Fatalf("precomputed table does not match boot calibration: %s vs %s", tb.CalHash, oldHash)
	}

	measureN(t, ts, "bdw", 3) // trips the watchdog; onDrift enqueues the re-fit

	// Wait for the episode to resolve: refit done, new constants live.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap := s.drift.Snapshot()
		if ds, ok := snap["BDW"]; ok && ds.State == roofline.DriftOK.String() && ds.Refits == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refit never completed: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	newT, _ := s.target("BDW")
	newHash := newT.Constants.Hash()
	if newHash == oldHash {
		t.Fatalf("refit did not change the calibration (hash %s)", newHash)
	}

	// The refit job recorded the swap and enqueued the table rebuild.
	var refit RefitJobResult
	found := false
	for _, st := range s.jobsMgr.List() {
		if st.Kind != JobRefit {
			continue
		}
		final := waitJob(t, ts, st.ID)
		if final.State != jobs.StateDone {
			t.Fatalf("refit job %s: %s (%s)", st.ID, final.State, final.Error)
		}
		if err := json.Unmarshal(final.Result, &refit); err != nil {
			t.Fatal(err)
		}
		found = true
	}
	if !found {
		t.Fatal("no refit job was enqueued")
	}
	if refit.OldCalHash != oldHash || refit.NewCalHash != newHash || len(refit.RebuildJobs) != 1 {
		t.Fatalf("bad refit result: %+v", refit)
	}

	// The rebuild job replaces the stale table with one pinned to the
	// new calibration.
	rebuild := waitJob(t, ts, refit.RebuildJobs[0])
	if rebuild.State != jobs.StateDone {
		t.Fatalf("rebuild job: %s (%s)", rebuild.State, rebuild.Error)
	}
	var ptr PlanTableJobResult
	if err := json.Unmarshal(rebuild.Result, &ptr); err != nil {
		t.Fatal(err)
	}
	if ptr.Backend != "BDW" || ptr.CalHash != newHash {
		t.Fatalf("rebuilt table pinned to %s/%s, want BDW/%s", ptr.Backend, ptr.CalHash, newHash)
	}
	fresh := false
	for _, tb := range s.planSet().Tables() {
		if tb.Backend == "BDW" && tb.CalHash == newHash {
			fresh = true
		}
	}
	if !fresh {
		t.Fatalf("rebuilt table not installed: %+v", s.planSet().Stats())
	}

	// The backend serves healthy again: 200, unflagged, and the plan
	// table hits with the NEW calibration (no staleness counted).
	resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "bdw", Size: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refit search: %d: %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.CalibrationDegraded {
		t.Fatalf("post-refit response still flagged: %s", data)
	}
	stz := s.statsz()
	if stz.Jobs == nil || stz.Jobs.Jobs < 2 {
		t.Fatalf("statsz jobs: %+v", stz.Jobs)
	}

	// Post-refit measured runs agree with the new fit: residuals stay
	// well under the threshold and the watchdog stays OK.
	measureN(t, ts, "bdw", 3)
	if ds := s.drift.Snapshot()["BDW"]; ds.State != roofline.DriftOK.String() || ds.MeanAbsRelErr > 0.10 {
		t.Fatalf("post-refit residuals still high: %+v", ds)
	}
}
