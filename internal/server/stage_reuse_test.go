package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"polyufc/internal/core"
)

// The staged-pipeline acceptance scenario: a characterize request
// followed by a search request on the same kernel/config must not redo
// the analysis prefix — statsz shows stage-cache hits for preprocess,
// tile and cachemodel, and the search answer still carries full cap
// selections.
func TestCharacterizeThenSearchReusesPrefixStages(t *testing.T) {
	s := newServer(t, testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := Request{Kernel: "2mm", Size: "test"}
	resp, data := post(t, ts, "/v1/characterize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("characterize: %d %s", resp.StatusCode, data)
	}
	var ch CharacterizeResponse
	if err := json.Unmarshal(data, &ch); err != nil {
		t.Fatal(err)
	}
	if len(ch.Nests) == 0 {
		t.Fatalf("characterize returned no nests: %s", data)
	}
	withOI := 0
	for _, n := range ch.Nests {
		if n.Class == "" {
			t.Fatalf("characterize nest not classified: %+v", n)
		}
		if n.OI > 0 {
			withOI++ // fill-style nests legitimately have OI 0
		}
		if n.CapGHz != 0 {
			t.Fatalf("characterize nest carries a cap — the prefix must stop before search: %+v", n)
		}
	}
	if withOI == 0 {
		t.Fatal("no characterize nest carries an operational intensity")
	}

	resp, data = post(t, ts, "/v1/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Nests) != len(ch.Nests) {
		t.Fatalf("search nests = %d, characterize nests = %d", len(sr.Nests), len(ch.Nests))
	}
	for _, n := range sr.Nests {
		if n.CapGHz <= 0 {
			t.Fatalf("search nest not capped: %+v", n)
		}
	}

	st := s.statsz()
	for _, stage := range []string{core.StagePreprocess, core.StageTile, core.StageCacheModel, core.StageCharacterize} {
		agg, ok := st.Stages[stage]
		if !ok {
			t.Fatalf("statsz has no aggregate for stage %q: %+v", stage, st.Stages)
		}
		if agg.CacheHits < 1 {
			t.Fatalf("stage %q recorded %d cache hits, want >= 1 (search must reuse the characterize prefix)", stage, agg.CacheHits)
		}
		if agg.Runs < 2 {
			t.Fatalf("stage %q recorded %d runs, want >= 2", stage, agg.Runs)
		}
	}
	// The search/model-fit tail ran cold — it was never characterized.
	if agg := st.Stages[core.StageSearch]; agg.Runs != 1 || agg.CacheHits != 0 {
		t.Fatalf("search stage aggregate = %+v, want one cold run", agg)
	}
	if st.StageCache.Hits < 4 {
		t.Fatalf("stage cache hits = %d, want >= 4", st.StageCache.Hits)
	}
	if st.StageCache.Len == 0 {
		t.Fatal("stage cache is empty")
	}

	// A repeated search is a whole-result hit and adds no stage runs.
	before := s.statsz().Stages[core.StageSearch].Runs
	if resp, data := post(t, ts, "/v1/search", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("second search: %d %s", resp.StatusCode, data)
	}
	if after := s.statsz().Stages[core.StageSearch].Runs; after != before {
		t.Fatalf("whole-result hit still ran the pipeline: runs %d -> %d", before, after)
	}
}
