package server

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
)

// topologyConfig serves the 2-socket BDW topology from its JSON
// description alongside the built-ins.
func topologyConfig() Config {
	cfg := testConfig()
	cfg.PlatformFiles = []string{filepath.Join("..", "..", "platforms", "2-socket-bdw.json")}
	return cfg
}

// A 2-socket backend boots one breaker-guarded cap controller per
// socket: the bare platform key for socket 0 and "#s1" for socket 1,
// both visible in healthz and statsz, both restored on Close.
func TestServerTopologyPerSocketBreakers(t *testing.T) {
	s := newServer(t, topologyConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if s.breaker("2S-BDW") == nil || s.socketBreaker("2S-BDW", 1) == nil {
		t.Fatal("2-socket backend did not boot per-socket breakers")
	}
	if s.socketBreaker("2S-BDW", 0) != s.breaker("2S-BDW") {
		t.Fatal("socket 0 must keep the bare platform breaker key")
	}
	if s.socketBreaker("2S-BDW", 2) != nil {
		t.Fatal("phantom breaker for a socket the backend does not have")
	}
	// Single-socket backends keep exactly one key — no #sK suffixes.
	if s.socketBreaker("RPL", 1) != nil {
		t.Fatal("single-socket backend grew a socket-1 breaker")
	}

	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz HealthzResponse
	json.NewDecoder(hresp.Body).Decode(&hz)
	hresp.Body.Close()
	if hz.Breakers["2S-BDW"] == "" || hz.Breakers["2S-BDW#s1"] == "" {
		t.Fatalf("healthz misses the socket domains: %+v", hz.Breakers)
	}

	st := s.statsz()
	if _, ok := st.Breakers["2S-BDW#s1"]; !ok {
		t.Fatalf("statsz misses the socket-1 breaker: %v", st.Breakers)
	}
	ps := st.Platforms["2S-BDW"]
	if ps.Sockets != 2 || ps.Nodes != 1 || ps.InterconnectGBs != 19.2 {
		t.Fatalf("statsz topology shape wrong: %+v", ps)
	}
	if rpl := st.Platforms["RPL"]; rpl.Sockets != 1 || rpl.Nodes != 1 || rpl.InterconnectGBs != 0 {
		t.Fatalf("single-socket statsz shape wrong: %+v", rpl)
	}
}

// A UFS fault scoped to socket 1 (FaultSocket) trips only that socket's
// breaker: socket 0 keeps serving and asserting caps, healthz reports
// the quarantine under the "#s1" key, and a measured search still
// answers — with the sick domain recorded in SocketDegraded instead of
// failing the request.
func TestServerTopologySingleSocketFaultDegradesOnlyThatSocket(t *testing.T) {
	reg := faults.New(17)
	reg.Enable(hw.FaultCapWriteBusy, faults.Spec{P: 1})
	cfg := topologyConfig()
	cfg.Faults = reg
	cfg.FaultSocket = 1
	cfg.Breaker.Threshold = 2
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	b1 := s.socketBreaker("2S-BDW", 1)
	for i := 0; i < 2; i++ {
		if _, err := b1.SetCap(1.5); !errors.Is(err, hw.ErrCapBusy) {
			t.Fatalf("socket-1 SetCap: %v", err)
		}
	}
	if b1.State() != hw.BreakerOpen {
		t.Fatalf("socket-1 breaker %v after failure budget", b1.State())
	}
	// Socket 0's domain is healthy: the fault never armed its machine.
	if _, err := s.breaker("2S-BDW").SetCap(1.5); err != nil {
		t.Fatalf("socket-0 SetCap under socket-1 fault: %v", err)
	}

	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz HealthzResponse
	json.NewDecoder(hresp.Body).Decode(&hz)
	hresp.Body.Close()
	if hz.Status != "degraded" {
		t.Fatalf("healthz status %q with an open socket breaker", hz.Status)
	}
	if hz.Breakers["2S-BDW#s1"] != hw.BreakerOpen.String() {
		t.Fatalf("socket-1 not quarantined: %+v", hz.Breakers)
	}
	if hz.Breakers["2S-BDW"] != hw.BreakerClosed.String() {
		t.Fatalf("socket-0 wrongly quarantined: %+v", hz.Breakers)
	}

	resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "2s-bdw", Size: "test", Measure: true})
	if resp.StatusCode != 200 {
		t.Fatalf("measured search on 2-socket backend -> %d %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.DegradedTo != "" {
		t.Fatalf("socket-1 fault degraded the whole answer: %q", sr.DegradedTo)
	}
	if sr.Measured == nil {
		t.Fatal("measured half missing")
	}
	if len(sr.Measured.SocketCaps) != 2 {
		t.Fatalf("per-socket cap vector missing: %+v", sr.Measured)
	}
	if len(sr.Measured.SocketDegraded) != 1 || !strings.HasPrefix(sr.Measured.SocketDegraded[0], "s1:") {
		t.Fatalf("socket-1 degradation not recorded: %+v", sr.Measured.SocketDegraded)
	}
}

// The topology surfaces end to end on the model path: nests carry home
// sockets, remote ratios and cap vectors, the response rolls up to a
// cluster EDP, and /v1/platforms reports the topology shape — all from
// the JSON description alone.
func TestServerTopologyModelSurface(t *testing.T) {
	s := newServer(t, topologyConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "2s-bdw", Size: "test"})
	if resp.StatusCode != 200 {
		t.Fatalf("search -> %d %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Topology == nil {
		t.Fatalf("2-socket answer has no topology rollup: %s", data)
	}
	if sr.Topology.Sockets != 2 || sr.Topology.Nodes != 1 {
		t.Fatalf("rollup shape %+v", sr.Topology)
	}
	if sr.Topology.ClusterEDP <= 0 || len(sr.Topology.SocketSeconds) != 2 {
		t.Fatalf("rollup incomplete: %+v", sr.Topology)
	}
	sawCaps := false
	for _, n := range sr.Nests {
		if n.Degraded {
			continue
		}
		if len(n.SocketCaps) == 2 {
			sawCaps = true
			if n.Socket == -1 && n.RemoteRatio != 0.5 {
				t.Fatalf("spanning nest remote ratio %g, want 0.5: %+v", n.RemoteRatio, n)
			}
		}
	}
	if !sawCaps {
		t.Fatalf("no nest carries a per-socket cap vector: %s", data)
	}

	// Single-socket answers keep the pre-topology wire format.
	resp, data = post(t, ts, "/v1/search", Request{Kernel: "gemm", Platform: "rpl", Size: "test"})
	if resp.StatusCode != 200 {
		t.Fatalf("rpl search -> %d %s", resp.StatusCode, data)
	}
	for _, key := range []string{"topology", "socket_caps", "remote_ratio", `"socket"`} {
		if strings.Contains(string(data), key) {
			t.Fatalf("single-socket answer leaks topology key %q: %s", key, data)
		}
	}

	// /v1/platforms: topology shape on the v2 entry, absent on v1 ones.
	presp, err := ts.Client().Get(ts.URL + "/v1/platforms")
	if err != nil {
		t.Fatal(err)
	}
	var pr PlatformsResponse
	if err := json.NewDecoder(presp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	byName := map[string]PlatformResponse{}
	for _, p := range pr.Platforms {
		byName[p.Name] = p
	}
	p2 := byName["2S-BDW"]
	if p2.Sockets != 2 || p2.TotalThreads != 24 || p2.InterconnectGBs != 19.2 {
		t.Fatalf("2S-BDW platform entry: %+v", p2)
	}
	if p1 := byName["BDW"]; p1.Sockets != 0 || p1.Nodes != 0 || p1.TotalThreads != 0 {
		t.Fatalf("v1 platform entry grew topology fields: %+v", p1)
	}
}
