package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"polyufc/internal/cas"
	"polyufc/internal/fleet"
	"polyufc/internal/plantable"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
)

// This file is the daemon's side of the fleet cache tier: the
// degradation ladder serving deterministic responses (in-memory journal
// -> local CAS -> peer lookup -> compute), the warm-start paths reusing
// persisted calibration and plan-table artifacts at boot, and the HTTP
// surface peers fetch and fill entries through.

// casKey derives the content address of an artifact from its identity
// parts: the full hex SHA-256 of the NUL-joined parts, which is also a
// valid cas key and URL segment.
func casKey(parts ...string) string {
	sum := sha256.Sum256([]byte(strings.Join(parts, "\x00")))
	return hex.EncodeToString(sum[:])
}

// cacheable reports whether deterministic-response caching is live.
// Armed fault points outside the fleet/cas namespaces disarm it —
// injected compute outcomes are call-ordered, not deterministic, so
// caching one would replay a single injection across requests. Fleet
// and cas faults are exactly what the cache tier exists to absorb, so
// they leave caching on.
func (s *Server) cacheable() bool {
	if s.cfg.Faults == nil {
		return true
	}
	for _, p := range s.cfg.Faults.Points() {
		if !strings.HasPrefix(p, "fleet.") && !strings.HasPrefix(p, "cas.") {
			return false
		}
	}
	return true
}

// cached serves one deterministic response through the degradation
// ladder: the in-memory response journal first, then the local
// persistent CAS, then the peer fleet, and only then compute. Every
// tier above the one that answered is back-filled, so the next request
// (or the next boot, or the next peer) is served higher up. Each tier
// degrades strictly: a corrupt CAS entry or a dead peer falls through
// to the next rung with byte-identical results — never a failed
// request.
func (s *Server) cached(ctx context.Context, key string, out any, compute func() error) error {
	if !s.cacheable() {
		return compute()
	}
	if ok, err := s.jrnl.Get(key, out); err != nil {
		return err
	} else if ok {
		return nil
	}
	ck := casKey("response", key)
	if payload, ok := s.casStore.Get(ck); ok {
		if err := json.Unmarshal(payload, out); err == nil {
			_ = s.jrnl.Record(key, out)
			return nil
		}
		// A verified entry that does not decode as this response shape:
		// fall through and recompute (the overwrite below repairs it).
	}
	if payload, ok := s.fleetCli.Lookup(ctx, ck); ok {
		if err := json.Unmarshal(payload, out); err == nil {
			_ = s.casStore.Put(ck, payload)
			_ = s.jrnl.Record(key, out)
			return nil
		}
	}
	if err := compute(); err != nil {
		return err
	}
	if s.jrnl != nil {
		if err := s.jrnl.Record(key, out); err != nil {
			return err
		}
	}
	if s.casStore != nil || s.fleetCli != nil {
		if payload, err := json.Marshal(out); err == nil {
			_ = s.casStore.Put(ck, payload)
			s.fleetCli.Fill(ck, payload)
		}
	}
	return nil
}

// warmCalibration tries to boot a backend from a persisted calibration
// artifact instead of re-running the micro-benchmarks. Any failure —
// no entry, undecodable payload, artifact/backend mismatch — returns
// nil and the caller calibrates from scratch.
func (s *Server) warmCalibration(b *platform.Backend) *roofline.Target {
	payload, ok := s.casStore.Get(casKey("calibration", b.Hash()))
	if !ok {
		return nil
	}
	var cal platform.Calibration
	if err := json.Unmarshal(payload, &cal); err != nil {
		return nil
	}
	t, err := roofline.FromCalibration(b, &cal)
	if err != nil {
		return nil
	}
	return t
}

// storeCalibration persists a resolved target's calibration artifact so
// the next boot (local or a peer's) warm-starts from it.
func (s *Server) storeCalibration(t *roofline.Target) {
	if s.casStore == nil || t == nil || t.Backend == nil || t.Calibration == nil {
		return
	}
	payload, err := json.Marshal(t.Calibration)
	if err != nil {
		return
	}
	key := casKey("calibration", t.Backend.Hash())
	_ = s.casStore.Put(key, payload)
	s.fleetCli.Fill(key, payload)
}

// planTableKey addresses a backend's latest built plan table: one slot
// per backend and calibration, so a re-fit naturally orphans the stale
// table instead of serving it.
func planTableKey(backendHash, calHash string) string {
	return casKey("plantable", backendHash, calHash)
}

// storePlanTable persists a freshly built table into the cache tier.
func (s *Server) storePlanTable(tb *plantable.Table) {
	if s.casStore == nil || tb == nil {
		return
	}
	payload, err := tb.Marshal()
	if err != nil {
		return
	}
	key := planTableKey(tb.BackendHash, tb.CalHash)
	_ = s.casStore.Put(key, payload)
	s.fleetCli.Fill(key, payload)
}

// warmPlanTables probes the CAS for a plan table matching each served
// backend's live calibration and installs the hits — a rebooted daemon
// serves table answers immediately instead of waiting for a rebuild
// job. Stale or damaged entries are skipped silently; the plan-table
// job rebuilds them.
func (s *Server) warmPlanTables() {
	if s.casStore == nil {
		return
	}
	s.targetsMu.RLock()
	targets := make([]*roofline.Target, 0, len(s.targets))
	for _, t := range s.targets {
		targets = append(targets, t)
	}
	s.targetsMu.RUnlock()
	for _, t := range targets {
		if t.Backend == nil {
			continue
		}
		payload, ok := s.casStore.Get(planTableKey(t.Backend.Hash(), t.Constants.Hash()))
		if !ok {
			continue
		}
		tb, err := plantable.Parse(payload)
		if err != nil || tb.Matches(t) != nil {
			continue
		}
		_ = s.installPlanTable(tb)
	}
}

// CASWarmHits reports how many reads the persistent store served from
// entries that survived a previous process — the restart-reuse gate the
// fleet smoke asserts on.
func (s *Server) CASWarmHits() int64 { return s.casStore.Stats().WarmHits }

// handleCASGet serves one verified entry to a peer. Like the
// observability endpoints it bypasses the admission gate: cache fills
// must not compete with compute for slots. A miss — or a daemon with no
// store — is a 404, the protocol's clean "compute it yourself".
func (s *Server) handleCASGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cas.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, errBody{"invalid cas key"})
		return
	}
	payload, ok := s.casStore.Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{"no such entry"})
		return
	}
	w.Header().Set(fleet.HeaderSum, cas.Sum(payload))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// handleCASPut accepts a peer's cache fill: size-bounded, checksum-
// verified against the X-Polyufc-Sum header, stored crash-safely. A
// daemon running without a store refuses with 503 + Retry-After (the
// peer's breaker backs off).
func (s *Server) handleCASPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !cas.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, errBody{"invalid cas key"})
		return
	}
	if s.casStore == nil {
		w.Header().Set("Retry-After", "30")
		writeJSON(w, http.StatusServiceUnavailable, errBody{"cache tier disabled: start the daemon with -cas-dir"})
		return
	}
	body := http.MaxBytesReader(w, r.Body, fleet.MaxEntryBytes)
	payload, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errBody{err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errBody{"read body: " + err.Error()})
		return
	}
	if sum := r.Header.Get(fleet.HeaderSum); sum != "" && cas.Sum(payload) != sum {
		writeJSON(w, http.StatusBadRequest, errBody{"payload checksum mismatch"})
		return
	}
	if err := s.casStore.Put(key, payload); err != nil {
		writeJSON(w, http.StatusInternalServerError, errBody{err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
