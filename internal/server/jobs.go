package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"polyufc/internal/jobs"
	"polyufc/internal/plantable"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/search"
	"polyufc/internal/tiling"
	"polyufc/internal/workloads"
)

// The job kinds the daemon executes. Sweep and characterize fan one
// request shape across many kernels, checkpointing each kernel as one
// journal unit; plantable builds (or rebuilds) a capping-plan table;
// refit re-runs the roofline calibration against the live hardware and
// atomically swaps the backend's target — the drift watchdog enqueues
// these automatically.
const (
	JobSweep        jobs.Kind = "sweep"
	JobCharacterize jobs.Kind = "characterize"
	JobPlanTable    jobs.Kind = "plantable"
	JobRefit        jobs.Kind = "refit"
)

// JobParams is the kind-specific parameter block of POST /v1/jobs.
// Sweep/characterize use Kernels (or Suite) plus the usual request
// knobs; plantable uses Platform/Objective/Epsilon and the axis
// resolutions; refit uses Platform only.
type JobParams struct {
	Kernels   []string `json:"kernels,omitempty"`
	Suite     string   `json:"suite,omitempty"` // "", "all", "polybench", "ml"
	Platform  string   `json:"platform,omitempty"`
	Size      string   `json:"size,omitempty"`
	Objective string   `json:"objective,omitempty"`
	CapLevel  string   `json:"cap_level,omitempty"`
	Epsilon   float64  `json:"epsilon,omitempty"`
	// Measure also runs each swept kernel on the platform's machine
	// through the breaker — the path that feeds the drift watchdog.
	Measure   bool `json:"measure,omitempty"`
	OIPoints  int  `json:"oi_points,omitempty"`
	MemPoints int  `json:"mem_points,omitempty"`
	// Tiling is the tile-stage strategy spec ("pluto", "auto", ...; see
	// internal/tiling). Plan-table jobs stamp it on the built table.
	Tiling string `json:"tiling,omitempty"`
}

// JobSubmitRequest is the POST /v1/jobs body.
type JobSubmitRequest struct {
	Kind string `json:"kind"`
	JobParams
}

// JobStatusResponse is the GET /v1/jobs/{id} payload. Result is
// included inline once the job is done; GET /v1/jobs/{id}/result serves
// the same bytes verbatim (no re-encoding) for byte-identity checks.
type JobStatusResponse struct {
	jobs.Status
	Result json.RawMessage `json:"result,omitempty"`
}

// JobListResponse is the GET /v1/jobs payload.
type JobListResponse struct {
	Jobs []jobs.Status `json:"jobs"`
}

// jobsEnabled guards the job endpoints on daemons started without
// -jobs-dir.
func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.jobsMgr == nil {
		w.Header().Set("Retry-After", "30")
		writeJSON(w, http.StatusServiceUnavailable, errBody{"job tier disabled: start the daemon with -jobs-dir"})
		return false
	}
	return true
}

// expandKernels resolves the explicit kernel list or the named suite.
func expandKernels(p JobParams) ([]string, error) {
	if len(p.Kernels) > 0 {
		for _, k := range p.Kernels {
			if _, err := workloads.ByName(k); err != nil {
				return nil, err
			}
		}
		return p.Kernels, nil
	}
	var ks []workloads.Kernel
	switch p.Suite {
	case "", "all":
		ks = workloads.All()
	case "polybench":
		ks = workloads.PolyBench()
	case "ml":
		ks = workloads.ML()
	default:
		return nil, fmt.Errorf("unknown suite %q (want all, polybench or ml)", p.Suite)
	}
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name
	}
	return names, nil
}

// validateJob rejects malformed submissions synchronously (a 400 at
// submit time beats a failed job five minutes later).
func (s *Server) validateJob(kind jobs.Kind, p JobParams) error {
	if p.Platform != "" {
		b, err := platform.Lookup(p.Platform)
		if err != nil {
			return err
		}
		if _, ok := s.target(b.Name); !ok {
			return fmt.Errorf("platform %q is not served by this daemon", b.Name)
		}
	}
	switch kind {
	case JobSweep, JobCharacterize:
		if _, err := expandKernels(p); err != nil {
			return err
		}
	case JobPlanTable, JobRefit:
		if kind == JobRefit && p.Platform == "" {
			return errors.New("refit requires a platform")
		}
	default:
		return fmt.Errorf("unknown job kind %q (want sweep, characterize, plantable or refit)", kind)
	}
	if p.Objective != "" {
		if _, ok := search.ParseObjective(p.Objective); !ok {
			return fmt.Errorf("unknown objective %q", p.Objective)
		}
	}
	if _, err := tiling.ParseSpec(p.Tiling); err != nil {
		return err
	}
	return nil
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	var req JobSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{"bad request body: " + err.Error()})
		return
	}
	kind := jobs.Kind(req.Kind)
	if err := s.validateJob(kind, req.JobParams); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{err.Error()})
		return
	}
	st, err := s.jobsMgr.Submit(kind, req.JobParams)
	if err != nil {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobsMgr.List()})
}

// getJob resolves {id}, writing the 404 itself on a miss.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) *jobs.Job {
	jb, err := s.jobsMgr.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errBody{err.Error()})
		return nil
	}
	return jb
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	jb := s.getJob(w, r)
	if jb == nil {
		return
	}
	resp := JobStatusResponse{Status: jb.Status()}
	if raw, ok := jb.Result(); ok {
		resp.Result = raw
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobResult serves the recorded result bytes VERBATIM — this is
// the byte-identity surface: a job resumed after kill -9 must produce
// exactly these bytes again.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	jb := s.getJob(w, r)
	if jb == nil {
		return
	}
	raw, ok := jb.Result()
	if !ok {
		writeJSON(w, http.StatusConflict, JobStatusResponse{Status: jb.Status()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	jb := s.getJob(w, r)
	if jb == nil {
		return
	}
	if err := s.jobsMgr.Cancel(jb.ID()); err != nil {
		writeJSON(w, http.StatusInternalServerError, errBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, jb.Status())
}

// handleJobEvents streams a job's progress as Server-Sent Events: the
// retained backlog first (resumable via ?after= or Last-Event-ID), then
// live events until the job finishes, the client disconnects, or the
// daemon begins draining.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	jb := s.getJob(w, r)
	if jb == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errBody{"streaming unsupported by this connection"})
		return
	}
	var after int64
	if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	}
	backlog, live, cancel := jb.Subscribe(after)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func(ev jobs.Event) {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	}
	for _, ev := range backlog {
		emit(ev)
	}
	fl.Flush()
	for {
		select {
		case ev, open := <-live:
			if !open {
				fmt.Fprint(w, ": stream closed\n\n")
				fl.Flush()
				return
			}
			emit(ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			fmt.Fprint(w, ": server draining\n\n")
			fl.Flush()
			return
		}
	}
}

// --- Executors ---

// onDrift is the watchdog's degrade hook: claim the episode and enqueue
// a background re-fit job. Without a job tier the backend simply stays
// degraded (Strict refuses, BestEffort flags) until a restart
// re-calibrates.
func (s *Server) onDrift(backend string) {
	if s.jobsMgr == nil {
		return
	}
	if !s.drift.BeginRefit(backend) {
		return // a re-fit is already in flight
	}
	if _, err := s.jobsMgr.Submit(JobRefit, JobParams{Platform: backend}); err != nil {
		s.drift.CompleteRefit(backend, false)
	}
}

// executeJob dispatches one job to its kind's executor. It runs on a
// jobs worker goroutine.
func (s *Server) executeJob(jb *jobs.Job) (any, error) {
	var p JobParams
	if err := jb.Params(&p); err != nil {
		return nil, err
	}
	switch jb.Spec().Kind {
	case JobSweep:
		return s.runSweepJob(jb, p, false)
	case JobCharacterize:
		return s.runSweepJob(jb, p, true)
	case JobPlanTable:
		return s.runPlanTableJob(jb, p)
	case JobRefit:
		return s.runRefitJob(jb, p)
	}
	return nil, fmt.Errorf("server: unknown job kind %q", jb.Spec().Kind)
}

// SweepJobResult is a sweep job's recorded result.
type SweepJobResult struct {
	Kind      string           `json:"kind"`
	Platform  string           `json:"platform"`
	Objective string           `json:"objective"`
	Kernels   []SearchResponse `json:"kernels"`
}

// CharacterizeJobResult is a characterize job's recorded result.
type CharacterizeJobResult struct {
	Kind     string                 `json:"kind"`
	Platform string                 `json:"platform"`
	Kernels  []CharacterizeResponse `json:"kernels"`
}

// runSweepJob fans the request shape across the kernel list, one
// journal unit per kernel: a resumed job replays finished kernels
// byte-identically and computes only the rest.
func (s *Server) runSweepJob(jb *jobs.Job, p JobParams, characterizeOnly bool) (any, error) {
	kernels, err := expandKernels(p)
	if err != nil {
		return nil, err
	}
	jb.Total(len(kernels))
	jb.Log("sweep", fmt.Sprintf("%d kernels", len(kernels)))
	var sweep SweepJobResult
	var chars CharacterizeJobResult
	for _, kernel := range kernels {
		req := Request{
			Kernel: kernel, Platform: p.Platform, Size: p.Size,
			Objective: p.Objective, CapLevel: p.CapLevel,
			Epsilon: p.Epsilon, Measure: p.Measure,
			Tiling: p.Tiling,
		}
		r, err := s.resolve(req)
		if err != nil {
			return nil, err
		}
		if characterizeOnly {
			var kr CharacterizeResponse
			if _, err := jb.Step("kernel/"+kernel, &kr, func() (any, error) {
				res, err := s.characterize(jb.Context(), req, r)
				if err != nil {
					return nil, err
				}
				c := r.target.Constants
				return CharacterizeResponse{
					Kernel: kernel, Arch: r.p.Name,
					PeakGFlops: c.PeakGFlops, PeakGBs: c.PeakGBs, BtDRAM: c.BtDRAM,
					Nests: nestResponses(res),
				}, nil
			}); err != nil {
				return nil, err
			}
			chars.Kernels = append(chars.Kernels, kr)
			continue
		}
		var kr SearchResponse
		if _, err := jb.Step("kernel/"+kernel, &kr, func() (any, error) {
			res, err := s.compile(jb.Context(), req, r)
			if err != nil {
				return nil, err
			}
			out := SearchResponse{
				Kernel: kernel, Arch: r.p.Name,
				Objective: r.obj.String(), Nests: nestResponses(res),
			}
			// The measured half runs the kernel on the live machine
			// through the breaker — and feeds the drift watchdog, so a
			// measured sweep is also a calibration health check.
			if p.Measure {
				s.measure(res, r, &out)
			}
			return out, nil
		}); err != nil {
			return nil, err
		}
		sweep.Kernels = append(sweep.Kernels, kr)
		s.markServed(r.p.Name)
	}
	if characterizeOnly {
		chars.Kind = string(JobCharacterize)
		if len(chars.Kernels) > 0 {
			chars.Platform = chars.Kernels[0].Arch
		}
		return chars, nil
	}
	sweep.Kind = string(JobSweep)
	sweep.Objective = p.Objective
	if len(sweep.Kernels) > 0 {
		sweep.Platform = sweep.Kernels[0].Arch
		sweep.Objective = sweep.Kernels[0].Objective
	}
	return sweep, nil
}

// PlanTableJobResult is a plantable job's recorded result.
type PlanTableJobResult struct {
	Kind      string  `json:"kind"`
	Backend   string  `json:"backend"`
	Path      string  `json:"path"`
	CalHash   string  `json:"cal_hash"`
	Objective string  `json:"objective"`
	Epsilon   float64 `json:"epsilon"`
	Tiling    string  `json:"tiling,omitempty"`
	OIPoints  int     `json:"oi_points"`
	MemPoints int     `json:"mem_points"`
}

// sanitizeTiling makes a tiling fingerprint filename-friendly
// ("latency:probe=3" -> "latency-probe-3").
func sanitizeTiling(fp string) string {
	return strings.NewReplacer(":", "-", "=", "-", ",", "-").Replace(fp)
}

// runPlanTableJob sweeps the backend's capping-plan table against the
// LIVE calibration and installs it, replacing any stale table. Solved
// cells checkpoint to the shared plancells journal (content-addressed
// by backend and calibration hash), so an interrupted build resumes and
// a post-re-fit rebuild reuses nothing stale.
func (s *Server) runPlanTableJob(jb *jobs.Job, p JobParams) (any, error) {
	name := p.Platform
	if name == "" {
		name = "rpl"
	}
	b, err := platform.Lookup(name)
	if err != nil {
		return nil, err
	}
	t, ok := s.target(b.Name)
	if !ok {
		return nil, fmt.Errorf("platform %q is not served", b.Name)
	}
	tspec, err := tiling.ParseSpec(p.Tiling)
	if err != nil {
		return nil, err
	}
	opts := plantable.BuildOptions{
		OIPoints:  p.OIPoints,
		MemPoints: p.MemPoints,
		Journal:   s.planJournal,
		Tiling:    tspec,
	}
	if p.Objective != "" || p.Epsilon > 0 {
		obj, _ := search.ParseObjective(p.Objective)
		eps := p.Epsilon
		if eps <= 0 {
			eps = search.DefaultOptions().Epsilon
		}
		opts.Search = search.Options{Objective: obj, Epsilon: eps}
	}
	jb.Log("plantable", fmt.Sprintf("sweeping %s (cal %s)", b.Name, t.Constants.Hash()))
	var result PlanTableJobResult
	if _, err := jb.Step("table", &result, func() (any, error) {
		tb, err := plantable.Build(jb.Context(), t, opts)
		if err != nil {
			return nil, err
		}
		dir := filepath.Join(s.cfg.JobsDir, "tables")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		// The tiling strategy is a table axis: per-strategy builds must not
		// overwrite each other's files.
		path := filepath.Join(dir, fmt.Sprintf("%s-%s-eps%g-%s.json",
			tb.Backend, tb.Objective, tb.Epsilon, sanitizeTiling(tb.TilingName())))
		if err := tb.Save(path); err != nil {
			return nil, err
		}
		return PlanTableJobResult{
			Kind: string(JobPlanTable), Backend: tb.Backend, Path: path,
			CalHash: tb.CalHash, Objective: tb.Objective, Epsilon: tb.Epsilon,
			Tiling:   tb.TilingName(),
			OIPoints: len(tb.OIAxis), MemPoints: len(tb.MemAxis),
		}, nil
	}); err != nil {
		return nil, err
	}
	// Install from disk (fresh run or journal replay both take this
	// path). If the calibration moved again since the build, the set's
	// Matches check will refuse the table at lookup time — installing a
	// stale table is safe, serving it is impossible.
	tb, err := plantable.Load(result.Path)
	if err != nil {
		return nil, err
	}
	if err := s.installPlanTable(tb); err != nil {
		return nil, err
	}
	// Persist into the cache tier: the next boot (here or on a peer)
	// warm-starts the table instead of re-sweeping it.
	s.storePlanTable(tb)
	jb.Log("plantable", "table installed: "+result.Path)
	return result, nil
}

// RefitJobResult is a refit job's recorded result.
type RefitJobResult struct {
	Kind        string             `json:"kind"`
	Backend     string             `json:"backend"`
	OldCalHash  string             `json:"old_cal_hash"`
	NewCalHash  string             `json:"new_cal_hash"`
	Residuals   map[string]float64 `json:"residuals,omitempty"`
	RebuildJobs []string           `json:"rebuild_jobs,omitempty"`
}

// runRefitJob re-runs the roofline calibration micro-benchmarks against
// the live (possibly drifted) hardware, atomically swaps the backend's
// target to the new fit, and enqueues rebuild jobs for every plan table
// the swap made stale. Until the swap lands, requests for the backend
// serve under the degrade policy (Strict refuses, BestEffort flags).
func (s *Server) runRefitJob(jb *jobs.Job, p JobParams) (any, error) {
	b, err := platform.Lookup(p.Platform)
	if err != nil {
		return nil, err
	}
	t, ok := s.target(b.Name)
	if !ok {
		return nil, fmt.Errorf("platform %q is not served", b.Name)
	}
	// Claim (or, on a resumed job, re-claim) the refit episode so the
	// degrade gate reports "refitting" and no duplicate enqueues.
	s.drift.BeginRefit(b.Name)
	fail := func(err error) (any, error) {
		// Shutdown interruption is not a failed fit: leave the episode
		// for the resumed job (the in-memory tracker dies with us).
		if jb.Context().Err() == nil {
			s.drift.CompleteRefit(b.Name, false)
		}
		return nil, err
	}
	oldHash := t.Constants.Hash()
	jb.Log("refit", fmt.Sprintf("re-calibrating %s (stale cal %s)", b.Name, oldHash))
	var cal platform.Calibration
	if _, err := jb.Step("calibrate", &cal, func() (any, error) {
		nt, err := roofline.Refit(t, s.cfg.Faults)
		if err != nil {
			return nil, err
		}
		return nt.Calibration, nil
	}); err != nil {
		return fail(err)
	}
	nt, err := roofline.FromCalibration(t.Backend, &cal)
	if err != nil {
		return fail(err)
	}
	s.swapTarget(b.Name, nt)
	s.storeCalibration(nt)
	s.drift.CompleteRefit(b.Name, true)
	newHash := nt.Constants.Hash()
	jb.Log("refit", fmt.Sprintf("constants swapped: %s -> %s", oldHash, newHash))

	// Rebuild the plan tables the swap just invalidated. Journaled as a
	// unit so a resumed refit does not enqueue duplicates.
	var rebuilt []string
	if _, err := jb.Step("rebuild", &rebuilt, func() (any, error) {
		var ids []string
		if set := s.planSet(); set != nil {
			for _, tb := range set.Tables() {
				if tb.Backend != b.Name || tb.CalHash == newHash {
					continue
				}
				st, err := s.jobsMgr.Submit(JobPlanTable, JobParams{
					Platform: b.Name, Objective: tb.Objective, Epsilon: tb.Epsilon,
				})
				if err != nil {
					jb.Log("refit", "plan-table rebuild not enqueued: "+err.Error())
					continue
				}
				ids = append(ids, st.ID)
			}
		}
		return ids, nil
	}); err != nil {
		return nil, err
	}
	return RefitJobResult{
		Kind: string(JobRefit), Backend: b.Name,
		OldCalHash: oldHash, NewCalHash: newHash,
		Residuals: cal.Provenance.Residuals, RebuildJobs: rebuilt,
	}, nil
}
