// Package server is the PolyUFC serving daemon: an HTTP front end over
// the compilation pipeline (compile / characterize / search endpoints)
// hardened for long-running operation. Requests pass an admission gate (a
// bounded queue that sheds load with 429 + Retry-After when full), carry
// per-request deadlines propagated through core and search via context,
// and measure hardware through a circuit breaker wrapping hw.CapController
// — a sick UFS driver degrades answers to model-only instead of hanging
// the pool. Deterministic responses checkpoint to a crash-safe journal so
// a restarted daemon replays them, caches are LRU-bounded, panics are
// isolated per request, and shutdown drains in-flight work before
// guaranteeing the driver-default cap is restored.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"polyufc/internal/cas"
	"polyufc/internal/core"
	"polyufc/internal/faults"
	"polyufc/internal/fleet"
	"polyufc/internal/hw"
	"polyufc/internal/jobs"
	"polyufc/internal/journal"
	"polyufc/internal/parallel"
	"polyufc/internal/pipeline"
	"polyufc/internal/plantable"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/tiling"
)

// Config tunes the daemon.
type Config struct {
	// Concurrency is the number of requests served at once (0 means
	// GOMAXPROCS); Queue bounds how many more may wait for a slot before
	// the gate sheds load with 429.
	Concurrency int
	Queue       int
	// RequestTimeout is the per-request deadline propagated through the
	// compilation pipeline; DrainTimeout bounds how long shutdown waits
	// for in-flight requests.
	RequestTimeout time.Duration
	DrainTimeout   time.Duration
	// Breaker tunes the per-platform circuit breaker quarantining the
	// UFS driver after consecutive verified-write failures.
	Breaker hw.BreakerOptions
	// CacheLimit is the LRU bound on the compile and profile caches —
	// mandatory hygiene for a process meant to run forever.
	CacheLimit int
	// Degrade is the compilation failure policy for served requests.
	Degrade core.DegradePolicy
	// Tiling is the default tile-stage strategy for requests that do not
	// choose one ("tiling" request field or tiling= query parameter). The
	// zero value is the pluto strategy — the pre-strategy pipeline.
	Tiling tiling.Spec
	// Faults, when non-nil, arms the injectable failure modes on every
	// machine and compilation the daemon runs (smoke tests, chaos runs).
	Faults *faults.Registry
	// FaultSeed seeds the cap controllers' backoff jitter.
	FaultSeed int64
	// FaultSocket scopes Faults on multi-socket backends: negative arms
	// every socket's machine, k >= 0 arms only socket k's. Single-socket
	// backends are unaffected (socket 0 is the only machine either way).
	// Smoke tests use this to prove one socket's UFS fault degrades only
	// that socket's uncore domain.
	FaultSocket int
	// JournalPath, when set, checkpoints deterministic responses to a
	// crash-safe JSONL journal; with Resume the journal is replayed on
	// startup (otherwise it is truncated).
	JournalPath string
	Resume      bool
	// PlatformFiles are extra backend descriptions (platforms/*.json) to
	// register before calibration: the daemon serves every registered
	// backend, so a machine added purely as JSON is served with zero code
	// changes.
	PlatformFiles []string
	// PlanTables are precomputed capping-plan tables (internal/plantable)
	// to load at boot. Each table must match a served backend's exact
	// description and calibration hash — a stale table fails boot (so it
	// gets rebuilt) rather than silently serving wrong caps. Loaded
	// tables answer the search stage on the serve path; /statsz reports
	// hit/fallback/staleness counters.
	PlanTables []string
	// JobsDir, when set, enables the crash-safe asynchronous job tier
	// (/v1/jobs): sweeps, characterizations, plan-table builds and
	// calibration re-fits run on a worker pool, journaled so a killed
	// daemon resumes them on restart. JobWorkers sizes the pool.
	JobsDir    string
	JobWorkers int
	// Drift tunes the calibration-drift watchdog: live model-vs-measured
	// residuals per backend, with a re-fit job auto-enqueued (when the
	// job tier is enabled) once a backend's residual EWMA crosses the
	// threshold. Zero fields select roofline.DefaultDriftOptions.
	Drift roofline.DriftOptions
	// CASDir, when set, enables the persistent content-addressed
	// snapshot store: deterministic responses, calibration artifacts and
	// plan tables persist across restarts (warm start) and are served to
	// fleet peers over GET/PUT /v1/cas/{key}. CASMaxBytes bounds the
	// store's payload volume with LRU eviction (0 = unbounded).
	CASDir      string
	CASMaxBytes int64
	// Peers are the base URLs of the static fleet peer set. With at
	// least one peer, cache misses consult the fleet (deadline-bounded,
	// hedged, per-peer circuit breakers) before computing, and computed
	// entries are offered back asynchronously. PeerTimeout bounds one
	// attempt, PeerHedge staggers the parallel second attempt,
	// PeerRetries adds backoff rounds; zeros select fleet defaults.
	Peers       []string
	PeerTimeout time.Duration
	PeerHedge   time.Duration
	PeerRetries int
	// JobCompactThreshold triggers the jobs-journal compaction once that
	// many prunable records (per-unit history of terminal jobs)
	// accumulate; 0 selects the jobs default, negative disables.
	JobCompactThreshold int
}

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		Queue:          64,
		RequestTimeout: 30 * time.Second,
		DrainTimeout:   10 * time.Second,
		Breaker:        hw.DefaultBreakerOptions(),
		CacheLimit:     1024,
		FaultSocket:    -1,
	}
}

// Server is the daemon state: calibrated platforms, shared bounded
// caches, per-platform breaker-guarded machines, the admission gate and
// the response journal.
type Server struct {
	cfg   Config
	gate  *parallel.Gate
	plats []*hw.Platform
	// targets maps backend name to its resolved target. The map is
	// written by boot and by the re-fit job's atomic swap; requests read
	// their target once at resolve time and keep that snapshot for the
	// whole compilation.
	targetsMu sync.RWMutex
	targets   map[string]*roofline.Target
	cache     core.Cache
	profiles  hw.ProfileCache
	breakers  map[string]*hw.CapBreaker
	jrnl      *journal.Journal
	// casStore is the persistent content-addressed snapshot store and
	// fleetCli the peer cache protocol client; both nil-safe no-ops when
	// the daemon runs without -cas-dir / -peer.
	casStore *cas.Store
	fleetCli *fleet.Client
	// plans holds the loaded plan tables; nil when none are configured
	// and no job has built one, which keeps the compile pipeline's stage
	// list (and memo keys) exactly as without plan tables. It is an
	// atomic pointer because the plan-table job installs the first set
	// at runtime.
	plans atomic.Pointer[plantable.Set]
	start time.Time

	// drift is the calibration-drift watchdog; jobsMgr the async job
	// tier (nil unless cfg.JobsDir is set). planJournal checkpoints
	// plan-table sweep cells across job restarts — keys are
	// content-addressed by backend/calibration hash, so rebuilt tables
	// reuse every cell the re-fit did not invalidate.
	drift       *roofline.DriftTracker
	jobsMgr     *jobs.Manager
	planJournal *journal.Journal

	// shutdown closes when the daemon begins draining; long-lived
	// streams (job event SSE) terminate on it instead of holding the
	// drain open.
	shutdown     chan struct{}
	shutdownOnce sync.Once

	// platServed counts requests served per backend and tilingServed per
	// tiling strategy (both prefilled at boot, so handlers update without
	// locking).
	platServed   map[string]*atomic.Int64
	tilingServed map[string]*atomic.Int64

	// stages memoizes per-stage compile snapshots across endpoints: a
	// characterize followed by a search on the same kernel/config reuses
	// preprocess, tile and cachemodel instead of redoing them.
	// stageStats aggregates every pipeline stage event for statsz.
	stages     pipeline.Cache
	stageStats pipeline.Metrics

	served   atomic.Int64
	rejected atomic.Int64
	panics   atomic.Int64
	degraded atomic.Int64

	closeOnce sync.Once
	closeErr  error

	// testHook, when non-nil, runs inside every request after admission —
	// the deterministic way tests hold a slot or inject a handler panic.
	testHook func()
}

// New builds a daemon: platforms calibrate concurrently, caches are
// bounded, one breaker-guarded cap controller boots per platform, and the
// journal (if configured) is opened or truncated per cfg.Resume.
func New(cfg Config) (*Server, error) {
	def := DefaultConfig()
	if cfg.Queue <= 0 {
		cfg.Queue = def.Queue
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = def.RequestTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = def.DrainTimeout
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = def.CacheLimit
	}
	s := &Server{
		cfg:          cfg,
		gate:         parallel.NewGate(parallel.Workers(cfg.Concurrency), cfg.Queue),
		targets:      map[string]*roofline.Target{},
		breakers:     map[string]*hw.CapBreaker{},
		platServed:   map[string]*atomic.Int64{},
		tilingServed: map[string]*atomic.Int64{},
		start:        time.Now(),
		shutdown:     make(chan struct{}),
	}
	for _, name := range tiling.Names() {
		s.tilingServed[name] = &atomic.Int64{}
	}
	s.cache.SetLimit(cfg.CacheLimit)
	s.profiles.SetLimit(cfg.CacheLimit)
	s.stages.SetLimit(cfg.CacheLimit)

	// The cache tier boots first: the warm-start scan below lets the
	// calibration loop reuse persisted artifacts instead of re-running
	// the micro-benchmarks.
	if cfg.CASDir != "" {
		st, err := cas.OpenOptions(cfg.CASDir, cfg.Faults, cas.Options{MaxBytes: cfg.CASMaxBytes})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.casStore = st
	}
	s.fleetCli = fleet.New(fleet.Options{
		Peers: cfg.Peers, Timeout: cfg.PeerTimeout, Hedge: cfg.PeerHedge,
		Retries: cfg.PeerRetries, Seed: cfg.FaultSeed, Faults: cfg.Faults,
	})

	for _, path := range cfg.PlatformFiles {
		if _, err := platform.LoadFile(path); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	backends := platform.All()
	targets, err := parallel.Map(context.Background(), len(backends), 0,
		func(ctx context.Context, i int) (*roofline.Target, error) {
			if t := s.warmCalibration(backends[i]); t != nil {
				return t, nil
			}
			t, err := roofline.ResolveCached(ctx, &s.stages, backends[i])
			if err != nil {
				return nil, fmt.Errorf("server: calibrate %s: %w", backends[i].Name, err)
			}
			s.storeCalibration(t)
			return t, nil
		})
	if err != nil {
		return nil, err
	}
	for _, t := range targets {
		p := t.Platform
		s.plats = append(s.plats, p)
		s.targets[p.Name] = t
		s.platServed[p.Name] = &atomic.Int64{}
		m := hw.NewMachine(p)
		m.SetProfileCache(&s.profiles)
		if cfg.FaultSocket <= 0 {
			m.SetFaults(cfg.Faults)
		}
		opts := hw.DefaultCapControllerOptions(p)
		opts.JitterSeed = cfg.FaultSeed
		s.breakers[p.Name] = hw.NewCapBreaker(hw.NewCapController(m, opts), cfg.Breaker)
		// Each extra socket of a topology backend is its own uncore
		// domain: its own machine, cap controller and breaker, keyed
		// "name#sK" so one socket's UFS fault quarantines only that
		// socket. Socket 0 keeps the bare platform key — single-socket
		// daemons are byte-identical to the pre-topology ones.
		for i := 1; i < t.NumSockets(); i++ {
			sp, err := hw.SocketPlatform(t.Backend, i)
			if err != nil {
				return nil, fmt.Errorf("server: %s socket %d: %w", p.Name, i, err)
			}
			sm := hw.NewMachine(sp)
			sm.SetProfileCache(&s.profiles)
			if cfg.FaultSocket < 0 || cfg.FaultSocket == i {
				sm.SetFaults(cfg.Faults)
			}
			sopts := hw.DefaultCapControllerOptions(sp)
			sopts.JitterSeed = cfg.FaultSeed + int64(i)
			s.breakers[socketBreakerName(p.Name, i)] = hw.NewCapBreaker(hw.NewCapController(sm, sopts), cfg.Breaker)
		}
	}

	if len(cfg.PlanTables) > 0 {
		set := plantable.NewSet()
		for _, path := range cfg.PlanTables {
			tb, err := plantable.Load(path)
			if err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
			t, ok := s.targets[tb.Backend]
			if !ok {
				return nil, fmt.Errorf("server: plan table %s is for backend %q, which this daemon does not serve", path, tb.Backend)
			}
			if err := tb.Matches(t); err != nil {
				return nil, fmt.Errorf("server: plan table %s: %w", path, err)
			}
			if err := set.Add(tb); err != nil {
				return nil, fmt.Errorf("server: plan table %s: %w", path, err)
			}
		}
		s.plans.Store(set)
	}
	// Explicit -plan-table files win; the CAS probe fills the gaps with
	// persisted tables still matching the live calibration.
	s.warmPlanTables()

	if cfg.JournalPath != "" {
		if !cfg.Resume {
			if err := os.Remove(cfg.JournalPath); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
		j, err := journal.Open(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.jrnl = j
	}

	s.drift = roofline.NewDriftTracker(cfg.Drift)
	s.drift.OnDegrade(s.onDrift)
	if cfg.JobsDir != "" {
		if err := os.MkdirAll(cfg.JobsDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		pj, err := journal.Open(filepath.Join(cfg.JobsDir, "plancells.journal"))
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.planJournal = pj
		mgr, err := jobs.Open(jobs.Options{
			Dir:              cfg.JobsDir,
			Workers:          cfg.JobWorkers,
			CompactThreshold: cfg.JobCompactThreshold,
		}, s.executeJob)
		if err != nil {
			pj.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.jobsMgr = mgr
		// Start last: resumed jobs begin executing immediately, against
		// the fully constructed server.
		mgr.Start()
	}
	return s, nil
}

// planSet returns the live plan-table set (nil when none loaded or
// built).
func (s *Server) planSet() *plantable.Set { return s.plans.Load() }

// installPlanTable registers a freshly built table, creating the set on
// first use.
func (s *Server) installPlanTable(tb *plantable.Table) error {
	for {
		if set := s.plans.Load(); set != nil {
			return set.Add(tb)
		}
		set := plantable.NewSet()
		if err := set.Add(tb); err != nil {
			return err
		}
		if s.plans.CompareAndSwap(nil, set) {
			return nil
		}
	}
}

// target returns the live resolved target for a backend name.
func (s *Server) target(name string) (*roofline.Target, bool) {
	s.targetsMu.RLock()
	defer s.targetsMu.RUnlock()
	t, ok := s.targets[name]
	return t, ok
}

// swapTarget atomically replaces a backend's target with a re-fitted
// one. In-flight requests keep the snapshot they resolved; new requests
// see the new fit. Plan tables pinned to the old calibration hash go
// stale automatically — Set.For refuses them via Matches/ErrStale.
func (s *Server) swapTarget(name string, t *roofline.Target) {
	s.targetsMu.Lock()
	s.targets[name] = t
	s.targetsMu.Unlock()
}

// Run serves on ln until ctx is cancelled (SIGTERM in main), then drains:
// the listener stops accepting, long-lived event streams are released,
// in-flight requests finish (bounded by DrainTimeout), and Close
// checkpoints running jobs and guarantees the driver-default caps are
// back.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	// Shutdown would otherwise wait out the whole drain budget on an
	// open SSE connection: release the streams the moment drain begins.
	hs.RegisterOnShutdown(s.beginShutdown)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	var err error
	select {
	case <-ctx.Done():
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err = hs.Shutdown(dctx)
	case err = <-errc:
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}

// beginShutdown releases long-lived streams; idempotent.
func (s *Server) beginShutdown() { s.shutdownOnce.Do(func() { close(s.shutdown) }) }

// Close drains the job tier (running jobs get DrainTimeout to finish,
// then are interrupted and checkpointed so the next boot resumes them),
// restores the driver-default cap on every platform (bypassing open
// breakers — the machine must never stay capped) and closes the
// journals. It is idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.beginShutdown()
		// Stop offering cache fills and wait out in-flight ones before
		// anything they might reference is torn down.
		s.fleetCli.Close()
		if s.jobsMgr != nil {
			dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
			if err := s.jobsMgr.Close(dctx); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
			cancel()
			if err := s.planJournal.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		// Every breaker — socket 0 and the #sK socket domains alike —
		// must leave the machine at the driver default.
		for _, b := range s.breakers {
			if err := b.Restore(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if err := s.jrnl.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// breaker returns the platform's breaker (tests reach through this).
func (s *Server) breaker(plat string) *hw.CapBreaker { return s.breakers[plat] }

// socketBreakerName keys one socket's uncore-domain breaker. Socket 0
// keeps the bare platform name (the pre-topology key); socket k >= 1 is
// "name#sk".
func socketBreakerName(plat string, socket int) string {
	if socket <= 0 {
		return plat
	}
	return fmt.Sprintf("%s#s%d", plat, socket)
}

// socketBreaker returns the breaker of one socket's uncore domain (nil
// for sockets the platform does not have).
func (s *Server) socketBreaker(plat string, socket int) *hw.CapBreaker {
	return s.breakers[socketBreakerName(plat, socket)]
}

// markServed bumps the per-backend served counter.
func (s *Server) markServed(name string) {
	if c, ok := s.platServed[name]; ok {
		c.Add(1)
	}
}

// markTiling bumps the per-strategy served counter (keyed by the spec's
// strategy name, so "latency:probe=3" counts under "latency").
func (s *Server) markTiling(spec tiling.Spec) {
	if c, ok := s.tilingServed[spec.Normalize().Name]; ok {
		c.Add(1)
	}
}

// JobStats reports the job tier's journal and state counters (zeros
// when the daemon runs without a jobs directory).
func (s *Server) JobStats() jobs.Stats {
	if s.jobsMgr == nil {
		return jobs.Stats{}
	}
	return s.jobsMgr.Stats()
}

// JournalStats reports the response journal's counters (zeros when no
// journal is configured).
func (s *Server) JournalStats() journal.Stats { return s.jrnl.Stats() }

// CASStats reports the persistent content-addressed store's counters
// (zeros when the daemon runs without -cas-dir).
func (s *Server) CASStats() cas.Stats { return s.casStore.Stats() }

// FleetStats reports the peer cache client's counters (zeros without
// peers).
func (s *Server) FleetStats() fleet.Stats { return s.fleetCli.Stats() }

// CacheStatsz is one bounded cache's counters.
type CacheStatsz struct {
	Hits, Misses, Evictions int64
	Len                     int
}

// BreakerStatsz is one platform breaker's observable state, including
// the half-open probe counters recovery assertions (smoke gates) read.
type BreakerStatsz struct {
	State                                    string
	Trips, Probes, Rejected, Recovered       int64
	ConsecutiveFailures                      int
	HalfOpens, ProbeSuccesses, ProbeFailures int64
	Applies, Writes, Retries, Failures       int64
	Restores                                 int64
}

// StageStatsz is one pipeline stage's aggregated events: how often it
// ran, how often a memoized snapshot satisfied it, failures, and total
// wall-clock time.
type StageStatsz struct {
	Runs      int64
	CacheHits int64
	Errors    int64
	TotalMS   float64
}

// PlatformStatsz is one served backend's identity and calibration
// provenance: which machine model answered, fitted when, from which
// description, how well the curves fit.
type PlatformStatsz struct {
	CPU         string
	Paper       bool
	Served      int64
	BackendHash string
	FitDate     string
	FitSeed     int64
	FitTool     string
	Residuals   map[string]float64
	// Sockets and Nodes are the backend's topology shape (1/1 for v1
	// single-socket descriptions); InterconnectGBs the inter-socket link
	// bandwidth, 0 when the backend declares none.
	Sockets         int
	Nodes           int
	InterconnectGBs float64
}

// Statsz is the /statsz payload.
type Statsz struct {
	UptimeSeconds float64
	Served        int64
	Rejected      int64
	Panics        int64
	Degraded      int64
	Gate          parallel.GateStats
	Breakers      map[string]BreakerStatsz
	CompileCache  CacheStatsz
	ProfileCache  CacheStatsz
	// StageCache counts per-stage snapshot reuse; Stages breaks the
	// pipeline down by stage name (core.Stage* constants).
	StageCache CacheStatsz
	Stages     map[string]StageStatsz
	// PlanTables reports the loaded capping-plan tables and their
	// serve-path hit/fallback/staleness counters (all zero when no
	// tables are configured).
	PlanTables plantable.Stats
	Journal    journal.Stats
	// CAS is the persistent content-addressed store (warm_hits > 0
	// proves a restart reused the previous run's artifacts); Fleet the
	// peer cache protocol client. Both all-zero when the tier is off.
	CAS   cas.Stats
	Fleet fleet.Stats
	// Platforms maps each served backend to its calibration provenance
	// and per-backend served count.
	Platforms map[string]PlatformStatsz
	// TilingServed counts requests served per tiling strategy (pluto,
	// cacheoblivious, latency, auto).
	TilingServed map[string]int64
	// Drift is the calibration-drift watchdog's per-backend residuals
	// (empty until measured requests feed it); Jobs the async job tier's
	// counters (nil when the tier is disabled).
	Drift map[string]roofline.DriftStats
	Jobs  *jobs.Stats
}

// statsz snapshots the daemon counters.
func (s *Server) statsz() Statsz {
	out := Statsz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Served:        s.served.Load(),
		Rejected:      s.rejected.Load(),
		Panics:        s.panics.Load(),
		Degraded:      s.degraded.Load(),
		Gate:          s.gate.Stats(),
		Breakers:      map[string]BreakerStatsz{},
		Journal:       s.jrnl.Stats(),
		CAS:           s.casStore.Stats(),
		Fleet:         s.fleetCli.Stats(),
	}
	ch, cm := s.cache.Stats()
	out.CompileCache = CacheStatsz{Hits: ch, Misses: cm, Evictions: s.cache.Evictions(), Len: s.cache.Len()}
	ph, pm := s.profiles.Stats()
	out.ProfileCache = CacheStatsz{Hits: ph, Misses: pm, Evictions: s.profiles.Evictions(), Len: s.profiles.Len()}
	sh, sm := s.stages.Stats()
	out.StageCache = CacheStatsz{Hits: sh, Misses: sm, Evictions: s.stages.Evictions(), Len: s.stages.Len()}
	if plans := s.planSet(); plans != nil {
		out.PlanTables = plans.Stats()
	}
	out.Drift = s.drift.Snapshot()
	if s.jobsMgr != nil {
		js := s.jobsMgr.Stats()
		out.Jobs = &js
	}
	out.Stages = map[string]StageStatsz{}
	for name, st := range s.stageStats.Snapshot() {
		out.Stages[name] = StageStatsz{
			Runs: st.Runs, CacheHits: st.CacheHits, Errors: st.Errors,
			TotalMS: float64(st.Total) / float64(time.Millisecond),
		}
	}
	for name, b := range s.breakers {
		bs := b.Stats()
		cs := b.ControllerStats()
		out.Breakers[name] = BreakerStatsz{
			State: b.State().String(),
			Trips: bs.Trips, Probes: bs.Probes, Rejected: bs.Rejected, Recovered: bs.Recovered,
			ConsecutiveFailures: bs.ConsecutiveFailures,
			HalfOpens:           bs.HalfOpens, ProbeSuccesses: bs.ProbeSuccesses, ProbeFailures: bs.ProbeFailures,
			Applies: cs.Applies, Writes: cs.Writes, Retries: cs.Retries,
			Failures: cs.Failures, Restores: cs.Restores,
		}
	}
	out.TilingServed = map[string]int64{}
	for name, c := range s.tilingServed {
		out.TilingServed[name] = c.Load()
	}
	out.Platforms = map[string]PlatformStatsz{}
	s.targetsMu.RLock()
	targets := make(map[string]*roofline.Target, len(s.targets))
	for name, t := range s.targets {
		targets[name] = t
	}
	s.targetsMu.RUnlock()
	for name, t := range targets {
		ps := PlatformStatsz{Served: s.platServed[name].Load()}
		if b := t.Backend; b != nil {
			ps.CPU = b.CPU
			ps.Paper = b.Paper
			ps.BackendHash = b.Hash()
			ps.Sockets = b.NumSockets()
			ps.Nodes = b.NumNodes()
			if b.Interconnect != nil {
				ps.InterconnectGBs = b.Interconnect.BWGBs
			}
		}
		if cal := t.Calibration; cal != nil {
			ps.FitDate = cal.Provenance.FitDate
			ps.FitSeed = cal.Provenance.Seed
			ps.FitTool = cal.Provenance.Tool
			ps.Residuals = cal.Provenance.Residuals
		}
		out.Platforms[name] = ps
	}
	return out
}
