package server

import (
	"testing"

	"polyufc/internal/leakcheck"
)

// The daemon spawns goroutines per request (admission workers), per
// backend (breaker probes) and per job (executors, SSE fan-out); any of
// them outliving Close is a production memory leak. Every test run of
// this package doubles as a leak assertion.
func TestMain(m *testing.M) { leakcheck.Main(m) }
