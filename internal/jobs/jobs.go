// Package jobs is the crash-safe asynchronous job tier behind
// polyufc-serve: submitting a sweep, characterization or plan-table
// build returns a durable job ID immediately; the work runs on a worker
// pool, streaming per-stage progress events to subscribers; the result
// is fetched after completion.
//
// Durability rides on internal/journal. The spec is fsynced before
// Submit returns, every completed unit of work checkpoints through
// Job.Step, and the final result is recorded before the job is declared
// done — so a process killed at any point, including kill -9, loses at
// most the unit in flight. Reopening the same directory replays the
// journal: finished jobs come back with their recorded results
// (byte-identical — the stored bytes ARE the result), and unfinished
// jobs re-enqueue, skipping the units already checkpointed.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"polyufc/internal/journal"
)

// Kind names what a job computes. The executor switches on it; the jobs
// tier itself is kind-agnostic.
type Kind string

// State is a job's lifecycle position. The machine is
// queued -> running -> {done, failed, canceled}; a crash mid-running
// returns the job to queued on the next Open.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ErrShutdown is the cancellation cause Close installs on running jobs:
// an executor that returns it (or the context error it caused) leaves
// the job un-finalized in the journal, so the next Open resumes it.
var ErrShutdown = errors.New("jobs: shutting down")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: no such job")

// Spec is the durable submission record.
type Spec struct {
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// Params are the kind-specific arguments, stored verbatim.
	Params json.RawMessage `json:"params,omitempty"`
	// Submitted is the wall-clock submission time (RFC3339). It is
	// provenance, not an input: results must not depend on it.
	Submitted string `json:"submitted,omitempty"`
}

// outcome is the journaled terminal record of a job.
type outcome struct {
	State  State           `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// checkpointRecord is the graceful-shutdown marker for a running job.
type checkpointRecord struct {
	UnitsDone int    `json:"units_done"`
	At        string `json:"at,omitempty"`
}

// Status is one job's externally visible state.
type Status struct {
	ID    string `json:"id"`
	Kind  Kind   `json:"kind"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// UnitsDone counts checkpointed units; UnitsTotal is the executor's
	// declared total (0 until it calls Total).
	UnitsDone  int `json:"units_done"`
	UnitsTotal int `json:"units_total,omitempty"`
	// Resumed counts how many times the job was re-enqueued by a
	// restart after an interrupted run.
	Resumed   int    `json:"resumed,omitempty"`
	Submitted string `json:"submitted,omitempty"`
}

// Executor runs one job. It is called from a worker goroutine with the
// Job handle for checkpointing (Step), progress (Emit, Total) and
// cancellation (Context). The returned value is marshalled and recorded
// as the job's result; an error fails the job — except ErrShutdown (or
// a context cancellation it caused), which leaves the job resumable.
type Executor func(jb *Job) (any, error)

// Options configures a Manager.
type Options struct {
	// Dir is the durable state directory; the journal lives at
	// Dir/jobs.journal.
	Dir string
	// Workers is the pool size (default 2).
	Workers int
	// QueueDepth bounds pending submissions (default 256); Submit fails
	// when the queue is full rather than blocking an HTTP handler.
	QueueDepth int
	// Clock stamps submissions and checkpoints (default time.Now); tests
	// inject a fixed clock.
	Clock func() time.Time
	// CompactThreshold bounds the journal's dead weight: once that many
	// prunable records — the per-unit history and shutdown checkpoints of
	// jobs already in a terminal state — accumulate, the journal is
	// rewritten in place via the same atomic temp+rename the corruption
	// path uses. Specs, terminal outcomes and cancel markers are kept
	// forever, and every record of a live job is retained verbatim, so
	// resume stays byte-identical. 0 selects the default (512); negative
	// disables compaction.
	CompactThreshold int
}

// defaultCompactThreshold is the prunable-record count that triggers a
// jobs-journal compaction when Options.CompactThreshold is zero.
const defaultCompactThreshold = 512

// Manager owns the journal, the job table and the worker pool.
type Manager struct {
	opts Options
	exec Executor
	jnl  *journal.Journal

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	seq     int
	started bool
	closed  bool

	queue chan *Job
	wg    sync.WaitGroup
}

// Job is one unit of managed work: the durable spec plus the live
// runtime handle the executor checkpoints through.
type Job struct {
	m    *Manager
	spec Spec

	ctx    context.Context
	cancel context.CancelCauseFunc

	mu         sync.Mutex
	state      State
	err        string
	result     json.RawMessage
	unitsDone  int
	unitsTotal int
	resumed    int

	events *ring
}

// JournalPath returns the journal file inside a jobs directory.
func JournalPath(dir string) string { return filepath.Join(dir, "jobs.journal") }

func specKey(id string) string    { return "job/" + id + "/spec" }
func doneKey(id string) string    { return "job/" + id + "/done" }
func cancelKey(id string) string  { return "job/" + id + "/cancel" }
func ckptKey(id string) string    { return "job/" + id + "/ckpt" }
func unitPrefix(id string) string { return "job/" + id + "/unit/" }
func unitKey(id, k string) string { return unitPrefix(id) + k }

// Open loads (or creates) the job tier rooted at opts.Dir, replaying the
// journal: terminal jobs come back with their recorded outcomes, and
// jobs that were queued or running when the last process died are
// re-enqueued to resume once Start is called.
func Open(opts Options, exec Executor) (*Manager, error) {
	if exec == nil {
		return nil, errors.New("jobs: nil executor")
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = defaultCompactThreshold
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	jnl, err := journal.Open(JournalPath(opts.Dir))
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	m := &Manager{
		opts:  opts,
		exec:  exec,
		jnl:   jnl,
		jobs:  map[string]*Job{},
		queue: make(chan *Job, opts.QueueDepth),
	}
	if err := m.replay(); err != nil {
		jnl.Close()
		return nil, err
	}
	// A long-lived directory may carry the unit history of many finished
	// jobs; prune it before appending resumes so the journal does not
	// grow without bound across restarts.
	if err := m.maybeCompact(); err != nil {
		jnl.Close()
		return nil, err
	}
	return m, nil
}

// replay rebuilds the job table from the journal's key order.
func (m *Manager) replay() error {
	units := map[string]int{}
	var canceled, finished []string
	for _, key := range m.jnl.Keys() {
		id, rest, ok := splitJobKey(key)
		if !ok {
			continue
		}
		switch {
		case rest == "spec":
			var spec Spec
			if _, err := m.jnl.Get(key, &spec); err != nil {
				return err
			}
			jb := m.newJob(spec)
			m.jobs[spec.ID] = jb
			m.order = append(m.order, spec.ID)
			if n := seqOf(spec.ID); n > m.seq {
				m.seq = n
			}
		case rest == "done":
			finished = append(finished, id)
		case rest == "cancel":
			canceled = append(canceled, id)
		case strings.HasPrefix(rest, "unit/"):
			units[id]++
		}
	}
	for _, id := range finished {
		jb := m.jobs[id]
		if jb == nil {
			continue
		}
		var out outcome
		if _, err := m.jnl.Get(doneKey(id), &out); err != nil {
			return err
		}
		jb.state, jb.err, jb.result = out.State, out.Error, out.Result
	}
	for _, id := range canceled {
		if jb := m.jobs[id]; jb != nil && !jb.state.Terminal() {
			jb.state = StateCanceled
		}
	}
	for _, id := range m.order {
		jb := m.jobs[id]
		jb.unitsDone = units[id]
		if !jb.state.Terminal() {
			// Interrupted by the crash (or shutdown): resume.
			jb.state = StateQueued
			jb.resumed++
		}
	}
	return nil
}

// prunableKey reports whether a job-key suffix is replay-irrelevant once
// the job is terminal: the per-unit checkpoints and the shutdown marker.
// The spec, the terminal outcome and the cancel marker ARE the job and
// are never pruned.
func prunableKey(rest string) bool {
	return rest == "ckpt" || strings.HasPrefix(rest, "unit/")
}

// maybeCompact prunes the unit history of terminal jobs once it exceeds
// the configured threshold, rewriting the journal through the atomic
// temp+rename path. Every record of a non-terminal job is retained with
// its journaled bytes verbatim, so a live job interrupted before, during
// or after the compaction still resumes byte-identically. Terminal jobs
// keep their spec and outcome (ID, state, error and result all survive);
// only their per-unit progress counts are forgotten by later replays.
func (m *Manager) maybeCompact() error {
	m.mu.Lock()
	threshold := m.opts.CompactThreshold
	terminal := map[string]bool{}
	for id, jb := range m.jobs {
		jb.mu.Lock()
		if jb.state.Terminal() {
			terminal[id] = true
		}
		jb.mu.Unlock()
	}
	m.mu.Unlock()
	if threshold < 0 {
		return nil
	}
	prunable := 0
	for _, key := range m.jnl.Keys() {
		if id, rest, ok := splitJobKey(key); ok && terminal[id] && prunableKey(rest) {
			prunable++
		}
	}
	if prunable < threshold {
		return nil
	}
	// A job finalizing between the snapshot and the rewrite is simply not
	// in the terminal set: its records are kept and pruned by a later
	// pass. The journal's own lock orders this rewrite against concurrent
	// Step records.
	_, err := m.jnl.CompactRetain(func(key string) bool {
		id, rest, ok := splitJobKey(key)
		return !ok || !terminal[id] || !prunableKey(rest)
	})
	return err
}

// splitJobKey parses "job/<id>/<rest>".
func splitJobKey(key string) (id, rest string, ok bool) {
	s, ok := strings.CutPrefix(key, "job/")
	if !ok {
		return "", "", false
	}
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// seqOf extracts the numeric suffix of a "j<NNNN>" id (0 if foreign).
func seqOf(id string) int {
	s, ok := strings.CutPrefix(id, "j")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}

func (m *Manager) newJob(spec Spec) *Job {
	jb := &Job{m: m, spec: spec, state: StateQueued, events: newRing(eventRingCap)}
	jb.ctx, jb.cancel = context.WithCancelCause(context.Background())
	return jb
}

// Start launches the worker pool and re-enqueues every resumable job in
// submission order. It is called once, after the caller has finished
// wiring (executors often need the caller fully constructed).
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started || m.closed {
		m.mu.Unlock()
		return
	}
	m.started = true
	var pending []*Job
	for _, id := range m.order {
		if jb := m.jobs[id]; jb.state == StateQueued {
			pending = append(pending, jb)
		}
	}
	m.mu.Unlock()
	for i := 0; i < m.opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	for _, jb := range pending {
		select {
		case m.queue <- jb:
			jb.emit(Event{Type: EventResumed})
		default:
			// Queue smaller than the backlog: the job stays queued in the
			// table and a later Submit's slot will not pick it up — refuse
			// loudly rather than lose it silently.
			jb.finalize(StateFailed, nil, errors.New("jobs: resume queue overflow"))
		}
	}
}

// Submit records a new job durably and enqueues it. The returned status
// is the moment-of-submission snapshot; the ID is stable across
// restarts.
func (m *Manager) Submit(kind Kind, params any) (Status, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return Status{}, fmt.Errorf("jobs: marshal params: %w", err)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrShutdown
	}
	m.seq++
	spec := Spec{
		ID:        fmt.Sprintf("j%04d", m.seq),
		Kind:      kind,
		Params:    raw,
		Submitted: m.opts.Clock().UTC().Format(time.RFC3339),
	}
	jb := m.newJob(spec)
	m.jobs[spec.ID] = jb
	m.order = append(m.order, spec.ID)
	m.mu.Unlock()

	// Durable before visible: the spec is fsynced before the caller
	// learns the ID, so an ID returned is an ID that survives kill -9.
	if err := m.jnl.Record(specKey(spec.ID), spec); err != nil {
		m.mu.Lock()
		delete(m.jobs, spec.ID)
		m.order = m.order[:len(m.order)-1]
		m.mu.Unlock()
		return Status{}, err
	}
	select {
	case m.queue <- jb:
	default:
		jb.finalize(StateFailed, nil, errors.New("jobs: queue full"))
		return jb.Status(), errors.New("jobs: queue full")
	}
	jb.emit(Event{Type: EventSubmitted})
	return jb.Status(), nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jb := m.jobs[id]
	if jb == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return jb, nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if jb, err := m.Get(id); err == nil {
			out = append(out, jb.Status())
		}
	}
	return out
}

// Cancel requests cancellation: durable first (so a crash between the
// request and the worker noticing still cancels on resume), then the
// running executor's context is canceled.
func (m *Manager) Cancel(id string) error {
	jb, err := m.Get(id)
	if err != nil {
		return err
	}
	jb.mu.Lock()
	terminal := jb.state.Terminal()
	jb.mu.Unlock()
	if terminal {
		return nil
	}
	if err := m.jnl.Record(cancelKey(id), struct{}{}); err != nil {
		return err
	}
	jb.cancel(context.Canceled)
	// A queued job has no worker to observe the context; finalize it
	// here. (A running one is finalized by its worker.)
	jb.mu.Lock()
	queued := jb.state == StateQueued
	jb.mu.Unlock()
	if queued {
		jb.finalize(StateCanceled, nil, nil)
		_ = m.maybeCompact()
	}
	return nil
}

// Stats is the tier-level counter snapshot for /statsz.
type Stats struct {
	Jobs    int           `json:"jobs"`
	ByState map[State]int `json:"by_state"`
	Journal journal.Stats `json:"journal"`
}

// Stats snapshots the job table and journal counters.
func (m *Manager) Stats() Stats {
	st := Stats{ByState: map[State]int{}, Journal: m.jnl.Stats()}
	for _, s := range m.List() {
		st.Jobs++
		st.ByState[s.State]++
	}
	return st
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for jb := range m.queue {
		m.run(jb)
	}
}

func (m *Manager) run(jb *Job) {
	jb.mu.Lock()
	if jb.state.Terminal() {
		jb.mu.Unlock()
		return
	}
	jb.state = StateRunning
	jb.mu.Unlock()
	jb.emit(Event{Type: EventStarted})

	// A cancel journaled while we were queued (possibly by a previous
	// process) wins before any work runs.
	if m.jnl.Has(cancelKey(jb.spec.ID)) {
		jb.cancel(context.Canceled)
		jb.finalize(StateCanceled, nil, nil)
		return
	}

	result, err := m.exec(jb)
	switch {
	case err == nil:
		raw, merr := json.Marshal(result)
		if merr != nil {
			jb.finalize(StateFailed, nil, fmt.Errorf("jobs: marshal result: %w", merr))
			return
		}
		jb.finalize(StateDone, raw, nil)
	case errors.Is(err, ErrShutdown) || errors.Is(context.Cause(jb.ctx), ErrShutdown):
		// Interrupted, not failed: no terminal record, so the next Open
		// re-enqueues the job with its checkpointed units intact.
		jb.checkpoint()
		jb.emit(Event{Type: EventCheckpoint, Done: jb.Status().UnitsDone})
	case errors.Is(err, context.Canceled) || errors.Is(context.Cause(jb.ctx), context.Canceled):
		jb.finalize(StateCanceled, nil, nil)
	default:
		jb.finalize(StateFailed, nil, err)
	}
	// Terminal jobs retire their unit history once enough accumulates;
	// failure here is non-fatal (the records are merely kept longer).
	if jb.Status().State.Terminal() {
		_ = m.maybeCompact()
	}
}

// Close drains the tier: no new submissions, running executors are
// interrupted with ErrShutdown once ctx expires (immediately if ctx is
// already done), finished workers checkpoint their jobs, and the
// journal is closed. In-flight jobs that did not finish within the
// grace period resume on the next Open.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	started := m.started
	var running []*Job
	for _, jb := range m.jobs {
		jb.mu.Lock()
		if jb.state == StateRunning {
			running = append(running, jb)
		}
		jb.mu.Unlock()
	}
	m.mu.Unlock()

	close(m.queue)
	if started {
		done := make(chan struct{})
		go func() { m.wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
			// Grace period over: interrupt the executors and wait for
			// them to unwind through their current Step.
			for _, jb := range running {
				jb.cancel(ErrShutdown)
			}
			<-done
		}
	}
	// Queued-but-never-run jobs stay queued in the journal (no terminal
	// record) and will resume next Open.
	return m.jnl.Close()
}

// --- Job runtime surface (what executors use) ---

// ID returns the durable job ID.
func (jb *Job) ID() string { return jb.spec.ID }

// Spec returns the durable submission record.
func (jb *Job) Spec() Spec { return jb.spec }

// Context carries the job's cancellation: user Cancel or shutdown.
func (jb *Job) Context() context.Context { return jb.ctx }

// Params unmarshals the spec's parameters into out.
func (jb *Job) Params(out any) error {
	if len(jb.spec.Params) == 0 {
		return nil
	}
	return json.Unmarshal(jb.spec.Params, out)
}

// Step checkpoints one unit of work. A unit already in the journal —
// recorded by this run or a previous incarnation of the process — is
// replayed into out without calling compute; otherwise compute runs,
// its value is fsynced, and out is filled FROM THE JOURNALED BYTES, so
// fresh and replayed runs observe the exact same value. Returns whether
// the unit was replayed.
func (jb *Job) Step(key string, out any, compute func() (any, error)) (bool, error) {
	jkey := unitKey(jb.spec.ID, key)
	if ok, err := jb.m.jnl.Get(jkey, out); err != nil {
		return false, err
	} else if ok {
		jb.bumpUnits()
		jb.emit(Event{Type: EventUnit, Unit: key, Replayed: true})
		return true, nil
	}
	if err := jb.ctx.Err(); err != nil {
		if cause := context.Cause(jb.ctx); cause != nil {
			return false, cause
		}
		return false, err
	}
	v, err := compute()
	if err != nil {
		return false, err
	}
	if err := jb.m.jnl.Record(jkey, v); err != nil {
		return false, err
	}
	if _, err := jb.m.jnl.Get(jkey, out); err != nil {
		return false, err
	}
	jb.bumpUnits()
	jb.emit(Event{Type: EventUnit, Unit: key})
	return false, nil
}

// Total declares how many units the job will Step through, for progress
// reporting.
func (jb *Job) Total(n int) {
	jb.mu.Lock()
	jb.unitsTotal = n
	jb.mu.Unlock()
	jb.emit(Event{Type: EventProgress, Done: jb.Status().UnitsDone, Total: n})
}

// Log emits a free-form progress event (stage transitions, notes).
func (jb *Job) Log(stage, msg string) {
	jb.emit(Event{Type: EventStage, Stage: stage, Msg: msg})
}

func (jb *Job) bumpUnits() {
	jb.mu.Lock()
	jb.unitsDone++
	jb.mu.Unlock()
}

// Status snapshots the job.
func (jb *Job) Status() Status {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return Status{
		ID: jb.spec.ID, Kind: jb.spec.Kind, State: jb.state,
		Error: jb.err, UnitsDone: jb.unitsDone, UnitsTotal: jb.unitsTotal,
		Resumed: jb.resumed, Submitted: jb.spec.Submitted,
	}
}

// Result returns the recorded result bytes; ok reports a finished
// (done) job.
func (jb *Job) Result() (json.RawMessage, bool) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.result, jb.state == StateDone
}

// finalize records the terminal outcome durably, updates the table and
// closes the event stream. A journal write failure on a successful job
// downgrades it to failed: claiming "done" without a durable result
// would break the resume contract.
func (jb *Job) finalize(state State, result json.RawMessage, cause error) {
	out := outcome{State: state, Result: result}
	if cause != nil {
		out.Error = cause.Error()
	}
	if err := jb.m.jnl.Record(doneKey(jb.spec.ID), out); err != nil && state == StateDone {
		out = outcome{State: StateFailed, Error: err.Error()}
		// Best effort: the process may be dying with the disk.
		jb.m.jnl.Record(doneKey(jb.spec.ID), out)
	}
	jb.mu.Lock()
	jb.state, jb.err, jb.result = out.State, out.Error, out.Result
	jb.mu.Unlock()
	typ := EventDone
	switch out.State {
	case StateFailed:
		typ = EventFailed
	case StateCanceled:
		typ = EventCanceled
	}
	jb.emit(Event{Type: typ, Msg: out.Error})
	jb.events.close()
}

// checkpoint records the shutdown marker for a still-running job. The
// units themselves are already journaled; this marker is observability
// (how far the interrupted run got, and when).
func (jb *Job) checkpoint() {
	st := jb.Status()
	jb.m.jnl.Record(ckptKey(jb.spec.ID), checkpointRecord{
		UnitsDone: st.UnitsDone,
		At:        jb.m.opts.Clock().UTC().Format(time.RFC3339),
	})
}

func (jb *Job) emit(ev Event) {
	ev.Job = jb.spec.ID
	jb.events.emit(ev)
}

// Subscribe returns the backlog of events after seq plus a live channel
// (closed when the job reaches a terminal state). Cancel releases the
// subscription.
func (jb *Job) Subscribe(afterSeq int64) (backlog []Event, live <-chan Event, cancel func()) {
	return jb.events.subscribe(afterSeq)
}

// UnitKeys returns the journal keys of the job's checkpointed units,
// sorted (diagnostics and tests).
func (jb *Job) UnitKeys() []string {
	prefix := unitPrefix(jb.spec.ID)
	var out []string
	for _, k := range jb.m.jnl.Keys() {
		if s, ok := strings.CutPrefix(k, prefix); ok {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
