package jobs

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// sumExec is the test workload: N units, unit i worth i*i+0.5, summed.
// blockAt >= 0 makes that unit's compute hang until the job context is
// canceled — the stand-in for "the process died mid-unit".
func sumExec(blockAt int, computed *atomic.Int64) Executor {
	return func(jb *Job) (any, error) {
		var p struct{ N int }
		if err := jb.Params(&p); err != nil {
			return nil, err
		}
		jb.Total(p.N)
		jb.Log("sweep", "starting")
		sum := 0.0
		for i := 0; i < p.N; i++ {
			i := i
			var v float64
			if _, err := jb.Step(fmt.Sprintf("u%02d", i), &v, func() (any, error) {
				computed.Add(1)
				if i == blockAt {
					<-jb.Context().Done()
					return nil, context.Cause(jb.Context())
				}
				return float64(i*i) + 0.5, nil
			}); err != nil {
				return nil, err
			}
			sum += v
		}
		return map[string]any{"kind": string(jb.Spec().Kind), "n": p.N, "sum": sum}, nil
	}
}

func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		jb, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st := jb.Status(); st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	jb, _ := m.Get(id)
	t.Fatalf("job %s never reached %s: %+v", id, want, jb.Status())
	return Status{}
}

func TestJobLifecycleResultAndEvents(t *testing.T) {
	var computed atomic.Int64
	m, err := Open(Options{Dir: t.TempDir(), Workers: 1}, sumExec(-1, &computed))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	st, err := m.Submit("sweep", map[string]int{"N": 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j0001" || st.State != StateQueued {
		t.Fatalf("submit status: %+v", st)
	}
	jb, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	backlog, live, cancel := jb.Subscribe(0)
	defer cancel()

	final := waitState(t, m, st.ID, StateDone)
	if final.UnitsDone != 4 || final.UnitsTotal != 4 || final.Error != "" {
		t.Fatalf("final status: %+v", final)
	}
	raw, ok := jb.Result()
	if !ok || !bytes.Contains(raw, []byte(`"sum":16`)) {
		t.Fatalf("result = %s (ok=%v)", raw, ok)
	}
	if computed.Load() != 4 {
		t.Fatalf("computed %d units, want 4", computed.Load())
	}

	// Collect the full stream: backlog plus live until close.
	events := backlog
	for ev := range live {
		events = append(events, ev)
	}
	var types []string
	lastSeq := int64(0)
	units := 0
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not monotonic: %+v after %d", ev, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Job != st.ID {
			t.Fatalf("foreign event: %+v", ev)
		}
		types = append(types, ev.Type)
		if ev.Type == EventUnit {
			units++
			if ev.Replayed {
				t.Fatalf("fresh run emitted replayed unit: %+v", ev)
			}
		}
	}
	if units != 4 || types[len(types)-1] != EventDone {
		t.Fatalf("event stream: %v", types)
	}

	// A late subscriber to the finished job gets the backlog and an
	// already-closed channel.
	lateBacklog, lateLive, lateCancel := jb.Subscribe(0)
	defer lateCancel()
	if len(lateBacklog) == 0 {
		t.Fatal("late subscriber got no backlog")
	}
	if _, open := <-lateLive; open {
		t.Fatal("late live channel not closed")
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// The tentpole scenario: a job interrupted mid-unit resumes in a new
// manager, replays its checkpointed units without recomputing them, and
// finishes with result bytes identical to a never-interrupted run.
func TestJobResumeAfterInterruptIsByteIdentical(t *testing.T) {
	dir := t.TempDir()

	// Control: the same job, never interrupted, in a separate dir.
	var ctlComputed atomic.Int64
	ctl, err := Open(Options{Dir: t.TempDir(), Workers: 1}, sumExec(-1, &ctlComputed))
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	cst, err := ctl.Submit("sweep", map[string]int{"N": 6})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, ctl, cst.ID, StateDone)
	cjb, _ := ctl.Get(cst.ID)
	want, _ := cjb.Result()
	ctl.Close(context.Background())

	// Run A: blocks inside unit 3 (units 0-2 checkpointed), then is torn
	// down with an already-expired context — the ErrShutdown interrupt
	// path, the in-process stand-in for kill -9.
	var aComputed atomic.Int64
	a, err := Open(Options{Dir: dir, Workers: 1}, sumExec(3, &aComputed))
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	ast, err := a.Submit("sweep", map[string]int{"N": 6})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		jb, _ := a.Get(ast.ID)
		if jb.Status().UnitsDone >= 3 && aComputed.Load() >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached unit 3: %+v", jb.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.Close(expired); err != nil {
		t.Fatal(err)
	}

	// Run B: reopen the same dir. The job must come back queued with its
	// three units, resume, replay them (no recompute), and finish.
	var bComputed atomic.Int64
	b, err := Open(Options{Dir: dir, Workers: 1}, sumExec(-1, &bComputed))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Get(ast.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st := jb.Status(); st.State != StateQueued || st.Resumed != 1 || st.UnitsDone != 3 {
		t.Fatalf("replayed status before Start: %+v", st)
	}
	b.Start()
	waitState(t, b, ast.ID, StateDone)
	got, ok := jb.Result()
	if !ok {
		t.Fatal("no result after resume")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs:\n  resumed: %s\n  control: %s", got, want)
	}
	// Units 0-2 replayed from the journal; only 3-5 recomputed.
	if bComputed.Load() != 3 {
		t.Fatalf("resume recomputed %d units, want 3", bComputed.Load())
	}
	if keys := jb.UnitKeys(); len(keys) != 6 {
		t.Fatalf("unit keys after resume: %v", keys)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobCancelRunningAndQueued(t *testing.T) {
	dir := t.TempDir()
	var computed atomic.Int64
	// One worker: the second job stays queued while the first blocks.
	m, err := Open(Options{Dir: dir, Workers: 1}, sumExec(0, &computed))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	running, err := m.Submit("sweep", map[string]int{"N": 2})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit("sweep", map[string]int{"N": 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	if err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateCanceled)
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, queued.ID, StateCanceled)
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Cancellation is durable: both stay canceled across a reopen, and
	// neither re-runs.
	computed.Store(0)
	m2, err := Open(Options{Dir: dir, Workers: 1}, sumExec(-1, &computed))
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	for _, id := range []string{running.ID, queued.ID} {
		jb, err := m2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st := jb.Status(); st.State != StateCanceled {
			t.Fatalf("%s after reopen: %+v", id, st)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if computed.Load() != 0 {
		t.Fatalf("canceled job recomputed %d units", computed.Load())
	}
	// IDs keep counting past the replayed jobs.
	st, err := m2.Submit("sweep", map[string]int{"N": 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j0003" {
		t.Fatalf("post-restart ID = %s, want j0003", st.ID)
	}
	waitState(t, m2, st.ID, StateDone)
	if err := m2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobFailureIsDurable(t *testing.T) {
	dir := t.TempDir()
	failing := func(jb *Job) (any, error) {
		return nil, fmt.Errorf("no such kernel %q", "nope")
	}
	m, err := Open(Options{Dir: dir, Workers: 1}, failing)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	st, err := m.Submit("characterize", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, st.ID, StateFailed)
	if got.Error == "" {
		t.Fatalf("failed without error: %+v", got)
	}
	m.Close(context.Background())

	m2, err := Open(Options{Dir: dir, Workers: 1}, failing)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st := jb.Status(); st.State != StateFailed || st.Error != got.Error {
		t.Fatalf("failure not durable: %+v", st)
	}
	stats := m2.Stats()
	if stats.Jobs != 1 || stats.ByState[StateFailed] != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	m2.Close(context.Background())
}

// Compaction: once enough terminal jobs accumulate, their unit history
// is pruned from the journal — while a live (interrupted) job in the
// same journal still resumes byte-identically afterwards.
func TestJobCompactionPrunesTerminalHistoryKeepsLiveResume(t *testing.T) {
	dir := t.TempDir()

	// Control result for the job that will be interrupted and resumed.
	var ctlComputed atomic.Int64
	ctl, err := Open(Options{Dir: t.TempDir(), Workers: 1}, sumExec(-1, &ctlComputed))
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	cst, err := ctl.Submit("sweep", map[string]int{"N": 6})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, ctl, cst.ID, StateDone)
	cjb, _ := ctl.Get(cst.ID)
	want, _ := cjb.Result()
	ctl.Close(context.Background())

	// Threshold 1: every terminal job's history is pruned as soon as it
	// finishes. Finish one job (4 units), then interrupt a second inside
	// unit 3.
	var computed atomic.Int64
	m, err := Open(Options{Dir: dir, Workers: 1, CompactThreshold: 1}, sumExec(-1, &computed))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	done, err := m.Submit("sweep", map[string]int{"N": 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, done.ID, StateDone)
	djb, _ := m.Get(done.ID)
	doneResult, ok := djb.Result()
	if !ok {
		t.Fatal("no result for finished job")
	}
	// The finished job's unit records are gone from the journal...
	if keys := djb.UnitKeys(); len(keys) != 0 {
		t.Fatalf("terminal job unit keys survived compaction: %v", keys)
	}
	// ...but its spec and outcome are not.
	if st := djb.Status(); st.State != StateDone {
		t.Fatalf("finished job after compaction: %+v", st)
	}
	if m.Stats().Journal.Compactions == 0 {
		t.Fatal("no compaction recorded")
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second incarnation: interrupt a job mid-run so live records coexist
	// with the already-pruned terminal job.
	var liveComputed atomic.Int64
	m2, err := Open(Options{Dir: dir, Workers: 1, CompactThreshold: 1}, sumExec(3, &liveComputed))
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	live, err := m2.Submit("sweep", map[string]int{"N": 6})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		jb, _ := m2.Get(live.ID)
		if jb.Status().UnitsDone >= 3 && liveComputed.Load() >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached unit 3: %+v", jb.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m2.Close(expired); err != nil {
		t.Fatal(err)
	}

	// Third incarnation: the open-time compaction sees the terminal job
	// and runs again (its ckpt/unit records were already gone; the live
	// job's records must survive). The live job replays its three units
	// without recomputing and finishes byte-identical to the control.
	var resumeComputed atomic.Int64
	m3, err := Open(Options{Dir: dir, Workers: 1, CompactThreshold: 1}, sumExec(-1, &resumeComputed))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := m3.Get(live.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st := jb.Status(); st.State != StateQueued || st.UnitsDone != 3 {
		t.Fatalf("live job before resume: %+v", st)
	}
	m3.Start()
	waitState(t, m3, live.ID, StateDone)
	got, ok := jb.Result()
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs after compaction:\n  resumed: %s\n  control: %s", got, want)
	}
	if resumeComputed.Load() != 3 {
		t.Fatalf("resume recomputed %d units, want 3", resumeComputed.Load())
	}
	// The first job's terminal outcome is still replayable.
	djb3, err := m3.Get(done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if raw, ok := djb3.Result(); !ok || !bytes.Equal(raw, doneResult) {
		t.Fatalf("terminal result lost across compactions: %s", raw)
	}
	if err := m3.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// A negative threshold disables compaction entirely; the default (0)
// keeps small histories untouched.
func TestJobCompactionDisabledAndBelowThreshold(t *testing.T) {
	for _, tc := range []struct {
		name      string
		threshold int
	}{
		{"disabled", -1},
		{"default-far-above", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var computed atomic.Int64
			m, err := Open(Options{Dir: t.TempDir(), Workers: 1, CompactThreshold: tc.threshold}, sumExec(-1, &computed))
			if err != nil {
				t.Fatal(err)
			}
			m.Start()
			st, err := m.Submit("sweep", map[string]int{"N": 3})
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, m, st.ID, StateDone)
			jb, _ := m.Get(st.ID)
			if keys := jb.UnitKeys(); len(keys) != 3 {
				t.Fatalf("unit keys pruned unexpectedly: %v", keys)
			}
			if n := m.Stats().Journal.Compactions; n != 0 {
				t.Fatalf("unexpected compactions: %d", n)
			}
			if err := m.Close(context.Background()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
