package jobs

import (
	"testing"

	"polyufc/internal/leakcheck"
)

// The job tier owns worker goroutines and per-subscriber event fans;
// Close must reap them all — including after simulated crashes, which
// is exactly where a missed waitgroup would hide.
func TestMain(m *testing.M) { leakcheck.Main(m) }
