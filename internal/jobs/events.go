package jobs

import "sync"

// Event types emitted over a job's stream. Events are derived state —
// they are never journaled; a client that reconnects after a daemon
// restart sees the resumed run's events (with Replayed set on units the
// journal replayed) rather than a replica of the dead run's stream.
const (
	EventSubmitted  = "submitted"
	EventResumed    = "resumed"
	EventStarted    = "started"
	EventStage      = "stage"
	EventUnit       = "unit"
	EventProgress   = "progress"
	EventCheckpoint = "checkpoint"
	EventDone       = "done"
	EventFailed     = "failed"
	EventCanceled   = "canceled"
)

// Event is one progress notification. Seq is per-job, monotonically
// increasing from 1; subscribers use it to resume a dropped stream
// without duplicates (SSE Last-Event-ID).
type Event struct {
	Seq  int64  `json:"seq"`
	Job  string `json:"job"`
	Type string `json:"type"`
	// Stage/Msg carry pipeline stage transitions and free-form notes;
	// Unit names a checkpointed unit, Replayed marking journal replays.
	Stage    string `json:"stage,omitempty"`
	Msg      string `json:"msg,omitempty"`
	Unit     string `json:"unit,omitempty"`
	Replayed bool   `json:"replayed,omitempty"`
	// Done/Total are progress counters on progress/checkpoint events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// eventRingCap bounds the per-job backlog. Jobs emit one event per unit
// plus a handful of lifecycle events; a subscriber further behind than
// the ring simply starts from the oldest retained event.
const eventRingCap = 1024

// subChanCap bounds each live subscriber channel. A subscriber slower
// than this loses events (dropped, not blocked): one stuck SSE client
// must never stall the worker pool.
const subChanCap = 256

// ring is a bounded per-job event buffer with live fan-out.
type ring struct {
	mu     sync.Mutex
	buf    []Event
	seq    int64
	subs   map[int]chan Event
	nextID int
	closed bool
}

func newRing(cap int) *ring {
	return &ring{buf: make([]Event, 0, cap), subs: map[int]chan Event{}}
}

func (r *ring) emit(ev Event) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.seq++
	ev.Seq = r.seq
	if len(r.buf) == cap(r.buf) {
		copy(r.buf, r.buf[1:])
		r.buf = r.buf[:len(r.buf)-1]
	}
	r.buf = append(r.buf, ev)
	for _, ch := range r.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than block the worker
		}
	}
	r.mu.Unlock()
}

// subscribe returns the retained events after seq and a live channel.
// The channel is closed when the job finishes; cancel releases the
// subscription early.
func (r *ring) subscribe(afterSeq int64) ([]Event, <-chan Event, func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var backlog []Event
	for _, ev := range r.buf {
		if ev.Seq > afterSeq {
			backlog = append(backlog, ev)
		}
	}
	ch := make(chan Event, subChanCap)
	if r.closed {
		close(ch)
		return backlog, ch, func() {}
	}
	id := r.nextID
	r.nextID++
	r.subs[id] = ch
	cancel := func() {
		r.mu.Lock()
		if c, ok := r.subs[id]; ok {
			delete(r.subs, id)
			close(c)
		}
		r.mu.Unlock()
	}
	return backlog, ch, cancel
}

// close ends the stream: live channels close after the final event.
func (r *ring) close() {
	r.mu.Lock()
	r.closed = true
	for id, ch := range r.subs {
		delete(r.subs, id)
		close(ch)
	}
	r.mu.Unlock()
}
