package isl_test

import (
	"fmt"

	"polyufc/internal/isl"
)

// ExampleSet_CountInt counts a tiled iteration domain exactly.
func ExampleSet_CountInt() {
	// {[t, i] : 0 <= i < 100, 32t <= i <= 32t+31, t >= 0}: the tiled form
	// of a 100-iteration loop.
	sp := isl.NewSetSpace(nil, []string{"t", "i"})
	b := isl.Universe(sp)
	b.AddGE(sp.VarExpr(0))
	b.AddGE(sp.VarExpr(1))
	b.AddGE(sp.ConstExpr(99).Sub(sp.VarExpr(1)))
	b.AddGE(sp.VarExpr(1).Sub(sp.VarExpr(0).Scale(32)))
	b.AddGE(sp.VarExpr(0).Scale(32).AddConst(31).Sub(sp.VarExpr(1)))
	n, err := isl.FromBasic(b).CountInt(1 << 20)
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output: 100
}

// ExampleBasicSet_CountSymbolic derives a parametric cardinality formula.
func ExampleBasicSet_CountSymbolic() {
	// The triangular domain {[i,j] : 0 <= i < N, 0 <= j <= i}.
	sp := isl.NewSetSpace([]string{"N"}, []string{"i", "j"})
	b := isl.Universe(sp)
	b.AddGE(sp.VarExpr(0))
	b.AddGE(sp.ParamExpr(0).Sub(sp.VarExpr(0)).AddConst(-1))
	b.AddGE(sp.VarExpr(1))
	b.AddGE(sp.VarExpr(0).Sub(sp.VarExpr(1)))
	pieces, err := b.CountSymbolic()
	if err != nil {
		panic(err)
	}
	fmt.Println(pieces[0].Count.Format([]string{"N"}))
	// Output: 1/2*N^2 + 1/2*N
}
