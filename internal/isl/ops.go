package isl

// Higher-level set operations: gist (constraint simplification under a
// context) and containment/equality checks, mirroring the isl entry points
// the PolyUFC passes rely on for cleaning up intermediate relations.

// Gist removes from b the constraints already implied by the context (and
// b's remaining constraints): the result describes the same set within the
// context but with fewer constraints. Implication is tested over the
// rationals, so Gist is conservative: it only drops a constraint when the
// rational test proves redundancy.
func (b BasicSet) Gist(context BasicSet) BasicSet {
	if !b.Sp.Equal(context.Sp) {
		panic("isl: Gist on different spaces")
	}
	out := b.Clone()
	for i := 0; i < len(out.cons); i++ {
		c := out.cons[i]
		if c.kind == EQ {
			// Equalities are kept (they define the set's dimension).
			continue
		}
		// Build: context ∧ (out without c) ∧ ¬c. Empty => c redundant.
		trial := BasicSet{Sp: out.Sp, NExist: out.NExist}
		for j, oc := range out.cons {
			if j == i {
				continue
			}
			trial.addRaw(oc.kind, append([]int64(nil), oc.coef...), oc.c)
		}
		base := trial.totalCols()
		trial.AddExists(context.NExist)
		np := out.Sp.NumCols()
		for _, cc := range context.cons {
			row := make([]int64, trial.totalCols())
			copy(row, cc.coef[:np])
			copy(row[base:], cc.coef[np:])
			trial.addRaw(cc.kind, row, cc.c)
		}
		neg := make([]int64, trial.totalCols())
		copy(neg, negRow(c.coef))
		trial.addRaw(GE, neg, -c.c-1)
		if trial.IsEmptyRational() {
			out.cons = append(out.cons[:i], out.cons[i+1:]...)
			i--
		}
	}
	return out
}

// IsSubset reports whether a ⊆ b over the integers, deciding via a \ b
// emptiness with the given enumeration budget. The boolean is meaningful
// only when err is nil; an inexact subtraction falls back to enumeration.
func IsSubset(a, b Set, limit int) (bool, error) {
	diff, exact := a.Subtract(b)
	if exact {
		return diff.IsEmpty(limit)
	}
	// Inexact subtraction over-approximates b: a \ approx(b) empty does
	// not prove containment. Decide by enumerating a and testing points.
	contained := true
	err := a.Enumerate(limit, func(pt []int64) bool {
		if !b.EvalPoint(nil, pt) {
			contained = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return contained, nil
}

// IsEqual reports whether a and b contain exactly the same integer points.
func IsEqual(a, b Set, limit int) (bool, error) {
	ab, err := IsSubset(a, b, limit)
	if err != nil || !ab {
		return false, err
	}
	return IsSubset(b, a, limit)
}

// RemoveRedundancies simplifies a basic set by gisting it against the
// universe: constraints implied by the others are dropped.
func (b BasicSet) RemoveRedundancies() BasicSet {
	return b.Gist(Universe(b.Sp))
}
