package isl

// This file implements relation (map) operations on top of the Set
// representation: a map is a set whose space carries In dimensions.

// IdentityMap returns {x -> y : y == x} over dims.
func IdentityMap(params, dims []string) Map {
	sp := NewMapSpace(params, dims, primed(dims))
	b := Universe(sp)
	n := len(dims)
	for i := 0; i < n; i++ {
		b.AddEquals(sp.VarExpr(i), sp.VarExpr(n+i))
	}
	return FromBasic(b)
}

func primed(dims []string) []string {
	out := make([]string, len(dims))
	for i, d := range dims {
		out[i] = d + "'"
	}
	return out
}

// LexLTMap returns {x -> y : x lexicographically-less-than y} over dims, as
// a union of one basic relation per leading-equal prefix length.
func LexLTMap(params, dims []string) Map {
	sp := NewMapSpace(params, dims, primed(dims))
	n := len(dims)
	r := EmptySet(sp)
	for k := 0; k < n; k++ {
		b := Universe(sp)
		for i := 0; i < k; i++ {
			b.AddEquals(sp.VarExpr(i), sp.VarExpr(n+i))
		}
		// x_k < y_k  <=>  y_k - x_k - 1 >= 0
		b.AddGE(sp.VarExpr(n + k).Sub(sp.VarExpr(k)).AddConst(-1))
		r.Basics = append(r.Basics, b)
	}
	return r
}

// LexLEMap returns {x -> y : x lexicographically-<= y}.
func LexLEMap(params, dims []string) Map {
	return LexLTMap(params, dims).Union(IdentityMap(params, dims))
}

// MapFromExprs builds the graph {x -> f(x)} of an affine function: outs[j]
// is an affine expression over a *set space* with dimensions `in` (and the
// given params). The resulting map has one equality per output dimension.
func MapFromExprs(params, in, out []string, outs []LinExpr) Map {
	if len(outs) != len(out) {
		panic("isl: MapFromExprs arity mismatch")
	}
	sp := NewMapSpace(params, in, out)
	b := Universe(sp)
	n := len(in)
	for j, f := range outs {
		// f was built over a set space with only the in dims; widen it.
		e := sp.NewLinExpr()
		copy(e.ParamCoef, f.ParamCoef)
		copy(e.VarCoef, f.VarCoef) // in dims occupy the leading var columns
		e.Const = f.Const
		b.AddEquals(sp.VarExpr(n+j), e)
	}
	return FromBasic(b)
}

// Inverse returns the relation with inputs and outputs swapped.
func (s Set) Inverse() Map {
	nsp := Space{Params: s.Sp.Params, In: s.Sp.Out, Out: s.Sp.In}
	np, ni, no := s.Sp.NumParams(), s.Sp.NumIn(), s.Sp.NumOut()
	r := Set{Sp: nsp}
	for _, b := range s.Basics {
		nb := BasicSet{Sp: nsp, NExist: b.NExist, markedEmpty: b.markedEmpty}
		for _, c := range b.cons {
			row := make([]int64, len(c.coef))
			copy(row, c.coef[:np])
			copy(row[np:], c.coef[np+ni:np+ni+no])  // old out -> new in
			copy(row[np+no:], c.coef[np:np+ni])     // old in -> new out
			copy(row[np+no+ni:], c.coef[np+ni+no:]) // existentials
			nb.cons = append(nb.cons, con{kind: c.kind, coef: row, c: c.c})
		}
		r.Basics = append(r.Basics, nb)
	}
	return r
}

// Domain returns {x : exists y, x -> y in s} by converting the output
// dimensions into existentials (an exact operation).
func (s Set) Domain() Set {
	nsp := Space{Params: s.Sp.Params, Out: s.Sp.In}
	r := Set{Sp: nsp}
	no := s.Sp.NumOut()
	for _, b := range s.Basics {
		nb := BasicSet{Sp: nsp, NExist: b.NExist + no, markedEmpty: b.markedEmpty}
		for _, c := range b.cons {
			// Column layout is unchanged: [params | in | out | ex] becomes
			// [params | dims | ex' ] with ex' = out ++ ex.
			nb.cons = append(nb.cons, con{kind: c.kind, coef: append([]int64(nil), c.coef...), c: c.c})
		}
		r.Basics = append(r.Basics, nb)
	}
	return r
}

// Range returns {y : exists x, x -> y in s}.
func (s Set) Range() Set { return s.Inverse().Domain() }

// Chain returns the relation {a -> c : exists b, a -> b in s and b -> c in
// t} (isl's apply_range: first s, then t).
func (s Set) Chain(t Map) Map {
	if s.Sp.NumOut() != t.Sp.NumIn() {
		panic("isl: Chain arity mismatch")
	}
	if !eqStrings(s.Sp.Params, t.Sp.Params) {
		panic("isl: Chain parameter mismatch")
	}
	nsp := Space{Params: s.Sp.Params, In: s.Sp.In, Out: t.Sp.Out}
	np := len(nsp.Params)
	na, nb, nc := s.Sp.NumIn(), s.Sp.NumOut(), t.Sp.NumOut()
	r := Set{Sp: nsp}
	for _, bs := range s.Basics {
		for _, bt := range t.Basics {
			width := np + na + nc + nb + bs.NExist + bt.NExist
			nbs := BasicSet{Sp: nsp, NExist: nb + bs.NExist + bt.NExist,
				markedEmpty: bs.markedEmpty || bt.markedEmpty}
			bCol := np + na + nc       // shared middle tuple columns
			e1Col := bCol + nb         // bs existentials
			e2Col := e1Col + bs.NExist // bt existentials
			for _, c := range bs.cons {
				row := make([]int64, width)
				copy(row, c.coef[:np+na])                // params + a
				copy(row[bCol:], c.coef[np+na:np+na+nb]) // b
				copy(row[e1Col:], c.coef[np+na+nb:])     // ex1
				nbs.addRaw(c.kind, row, c.c)
			}
			for _, c := range bt.cons {
				row := make([]int64, width)
				copy(row, c.coef[:np])                    // params
				copy(row[bCol:], c.coef[np:np+nb])        // b (= t's in)
				copy(row[np+na:], c.coef[np+nb:np+nb+nc]) // c
				copy(row[e2Col:], c.coef[np+nb+nc:])      // ex2
				nbs.addRaw(c.kind, row, c.c)
			}
			if !nbs.markedEmpty {
				r.Basics = append(r.Basics, nbs)
			}
		}
	}
	return r
}

// IntersectDomain restricts a relation's domain to the given set.
func (s Set) IntersectDomain(d Set) Map {
	if !eqStrings(s.Sp.In, d.Sp.Out) {
		panic("isl: IntersectDomain space mismatch")
	}
	r := Set{Sp: s.Sp}
	np, ni := s.Sp.NumParams(), s.Sp.NumIn()
	for _, bm := range s.Basics {
		for _, bd := range d.Basics {
			nb := bm.Clone()
			base := nb.totalCols()
			nb.AddExists(bd.NExist)
			for _, c := range bd.cons {
				row := make([]int64, nb.totalCols())
				copy(row, c.coef[:np])           // params
				copy(row[np:], c.coef[np:np+ni]) // set dims -> in dims
				copy(row[base:], c.coef[np+ni:]) // existentials
				nb.addRaw(c.kind, row, c.c)
			}
			if !nb.markedEmpty {
				r.Basics = append(r.Basics, nb)
			}
		}
	}
	return r
}

// IntersectRange restricts a relation's range to the given set.
func (s Set) IntersectRange(rg Set) Map {
	return s.Inverse().IntersectDomain(rg).Inverse()
}

// Apply returns the image of set d through relation s.
func (s Set) Apply(d Set) Set { return s.IntersectDomain(d).Range() }
