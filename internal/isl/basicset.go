package isl

import (
	"fmt"
	"strings"
)

// ConKind distinguishes inequality (>= 0) from equality (= 0) constraints.
type ConKind int

// Constraint kinds.
const (
	GE ConKind = iota // expression >= 0
	EQ                // expression == 0
)

// con is an internal constraint with coefficient columns laid out as
// [params | in dims | out dims | existentials] plus a constant.
type con struct {
	kind ConKind
	coef []int64
	c    int64
}

func (k ConKind) String() string {
	if k == EQ {
		return "="
	}
	return ">="
}

// BasicSet is a conjunction of affine constraints over a space, possibly
// with existentially quantified dimensions (used to express integer
// division and modulo). When the space has In dimensions the BasicSet is
// interpreted as a basic relation (map).
type BasicSet struct {
	Sp     Space
	NExist int
	cons   []con
	// markedEmpty is set when simplification detects an unsatisfiable
	// constant constraint.
	markedEmpty bool
}

// Universe returns the unconstrained basic set over the given space.
func Universe(sp Space) BasicSet { return BasicSet{Sp: sp} }

// totalCols returns the number of coefficient columns including existentials.
func (b *BasicSet) totalCols() int { return b.Sp.NumCols() + b.NExist }

// Clone returns a deep copy of b.
func (b BasicSet) Clone() BasicSet {
	nb := b
	nb.cons = make([]con, len(b.cons))
	for i, c := range b.cons {
		nb.cons[i] = con{kind: c.kind, coef: append([]int64(nil), c.coef...), c: c.c}
	}
	return nb
}

// NumConstraints returns the number of constraints in b.
func (b BasicSet) NumConstraints() int { return len(b.cons) }

// rawCoef converts a LinExpr into a full coefficient row for b.
func (b *BasicSet) rawCoef(e LinExpr) []int64 {
	np, nv := b.Sp.NumParams(), b.Sp.NumVars()
	if len(e.ParamCoef) != np || len(e.VarCoef) != nv {
		panic(fmt.Sprintf("isl: expression shape (%d,%d) does not match space (%d,%d)",
			len(e.ParamCoef), len(e.VarCoef), np, nv))
	}
	row := make([]int64, b.totalCols())
	copy(row, e.ParamCoef)
	copy(row[np:], e.VarCoef)
	return row
}

// AddGE adds the constraint e >= 0.
func (b *BasicSet) AddGE(e LinExpr) { b.addRaw(GE, b.rawCoef(e), e.Const) }

// AddEQ adds the constraint e == 0.
func (b *BasicSet) AddEQ(e LinExpr) { b.addRaw(EQ, b.rawCoef(e), e.Const) }

// AddLE adds the constraint e <= f, i.e. f - e >= 0.
func (b *BasicSet) AddLE(e, f LinExpr) { b.AddGE(f.Sub(e)) }

// AddEquals adds the constraint e == f.
func (b *BasicSet) AddEquals(e, f LinExpr) { b.AddEQ(e.Sub(f)) }

// AddRange adds lo <= var_i <= hi for constant bounds.
func (b *BasicSet) AddRange(i int, lo, hi int64) {
	v := b.Sp.VarExpr(i)
	b.AddGE(v.AddConst(-lo))      // v - lo >= 0
	b.AddGE(v.Neg().AddConst(hi)) // hi - v >= 0
}

// FixVar adds the equality var_i == v.
func (b *BasicSet) FixVar(i int, v int64) {
	b.AddEQ(b.Sp.VarExpr(i).AddConst(-v))
}

func (b *BasicSet) addRaw(kind ConKind, coef []int64, c int64) {
	cc := con{kind: kind, coef: coef, c: c}
	normalizeCon(&cc)
	switch trivial(cc) {
	case trivTrue:
		return
	case trivFalse:
		b.markedEmpty = true
	}
	b.cons = append(b.cons, cc)
}

type trivKind int

const (
	trivNo trivKind = iota
	trivTrue
	trivFalse
)

func trivial(c con) trivKind {
	for _, v := range c.coef {
		if v != 0 {
			return trivNo
		}
	}
	if c.kind == EQ {
		if c.c == 0 {
			return trivTrue
		}
		return trivFalse
	}
	if c.c >= 0 {
		return trivTrue
	}
	return trivFalse
}

// normalizeCon divides a constraint by the gcd of its coefficients,
// tightening inequalities by floor division of the constant.
func normalizeCon(c *con) {
	var g int64
	for _, v := range c.coef {
		g = gcd64(g, v)
	}
	if g <= 1 {
		return
	}
	for i := range c.coef {
		c.coef[i] /= g
	}
	if c.kind == GE {
		c.c = floorDiv(c.c, g)
	} else {
		if c.c%g != 0 {
			// Equality with non-divisible constant is unsatisfiable; encode
			// as 0 == 1 which trivial() will flag.
			for i := range c.coef {
				c.coef[i] = 0
			}
			c.c = 1
			return
		}
		c.c /= g
	}
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// floorDiv returns floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv returns ceil(a/b) for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// AddExists appends n existentially quantified columns to b and returns the
// column index of the first new existential (relative to the full column
// layout: params, vars, existentials).
func (b *BasicSet) AddExists(n int) int {
	base := b.totalCols()
	for i := range b.cons {
		b.cons[i].coef = append(b.cons[i].coef, make([]int64, n)...)
	}
	b.NExist += n
	return base
}

// AddRawGE adds a constraint given full-width columns (params, vars,
// existentials) and a constant. The row is copied.
func (b *BasicSet) AddRawGE(coef []int64, c int64) {
	b.mustWidth(coef)
	b.addRaw(GE, append([]int64(nil), coef...), c)
}

// AddRawEQ adds an equality constraint given full-width columns.
func (b *BasicSet) AddRawEQ(coef []int64, c int64) {
	b.mustWidth(coef)
	b.addRaw(EQ, append([]int64(nil), coef...), c)
}

func (b *BasicSet) mustWidth(coef []int64) {
	if len(coef) != b.totalCols() {
		panic(fmt.Sprintf("isl: constraint width %d does not match %d columns", len(coef), b.totalCols()))
	}
}

// Intersect returns the conjunction of b and o, which must share a space.
// Existentials of both operands are preserved (renumbered apart).
func (b BasicSet) Intersect(o BasicSet) BasicSet {
	if !b.Sp.Equal(o.Sp) {
		panic("isl: Intersect on different spaces")
	}
	r := b.Clone()
	r.AddExists(o.NExist)
	base := b.Sp.NumCols()
	for _, c := range o.cons {
		row := make([]int64, r.totalCols())
		copy(row, c.coef[:base])
		copy(row[base+b.NExist:], c.coef[base:])
		r.addRaw(c.kind, row, c.c)
	}
	r.markedEmpty = r.markedEmpty || o.markedEmpty
	return r
}

// InstantiateParams folds concrete parameter values into the constraint
// constants, returning a basic set over a parameter-free space.
func (b BasicSet) InstantiateParams(vals []int64) BasicSet {
	np := b.Sp.NumParams()
	if len(vals) != np {
		panic("isl: wrong number of parameter values")
	}
	nsp := Space{In: b.Sp.In, Out: b.Sp.Out}
	r := BasicSet{Sp: nsp, NExist: b.NExist, markedEmpty: b.markedEmpty}
	for _, c := range b.cons {
		row := append([]int64(nil), c.coef[np:]...)
		k := c.c
		for i := 0; i < np; i++ {
			k += c.coef[i] * vals[i]
		}
		r.addRaw(c.kind, row, k)
	}
	return r
}

// fmEliminate performs Fourier-Motzkin elimination of column col, returning
// the projected basic set and whether the projection is integrally exact.
// Equalities involving col with a unit coefficient are substituted exactly.
func (b BasicSet) fmEliminate(col int) (BasicSet, bool) {
	// Prefer an equality substitution with unit coefficient: exact.
	for idx, c := range b.cons {
		if c.kind == EQ && (c.coef[col] == 1 || c.coef[col] == -1) {
			return b.substituteOut(idx, col), true
		}
	}
	exact := true
	var lowers, uppers, rest []con
	for _, c := range b.cons {
		switch {
		case c.coef[col] > 0:
			lowers = append(lowers, c)
			if c.kind == EQ {
				// Non-unit equality: treat as pair of inequalities.
				neg := con{kind: GE, coef: negRow(c.coef), c: -c.c}
				uppers = append(uppers, neg)
				lowers[len(lowers)-1].kind = GE
			}
		case c.coef[col] < 0:
			uppers = append(uppers, c)
			if c.kind == EQ {
				neg := con{kind: GE, coef: negRow(c.coef), c: -c.c}
				lowers = append(lowers, neg)
				uppers[len(uppers)-1].kind = GE
			}
		default:
			rest = append(rest, c)
		}
	}
	r := BasicSet{Sp: b.Sp, NExist: b.NExist, markedEmpty: b.markedEmpty}
	for _, c := range rest {
		r.addRaw(c.kind, zeroCol(c.coef, col), c.c)
	}
	for _, lo := range lowers {
		a := lo.coef[col] // > 0: a*x >= -(rest_lo)
		for _, up := range uppers {
			bb := -up.coef[col] // > 0: b*x <= rest_up
			if a != 1 && bb != 1 {
				exact = false
			}
			// Combine: b*(lo) + a*(up) eliminates x.
			row := make([]int64, len(lo.coef))
			for i := range row {
				row[i] = bb*lo.coef[i] + a*up.coef[i]
			}
			row[col] = 0
			r.addRaw(GE, row, bb*lo.c+a*up.c)
		}
	}
	return r, exact
}

func negRow(row []int64) []int64 {
	out := make([]int64, len(row))
	for i, v := range row {
		out[i] = -v
	}
	return out
}

func zeroCol(row []int64, col int) []int64 {
	out := append([]int64(nil), row...)
	out[col] = 0
	return out
}

// substituteOut uses equality constraint eqIdx (with unit coefficient on
// col) to substitute col away in all other constraints.
func (b BasicSet) substituteOut(eqIdx, col int) BasicSet {
	eq := b.cons[eqIdx]
	s := eq.coef[col] // +-1
	// col = -s * (rest + c)  where rest excludes col.
	r := BasicSet{Sp: b.Sp, NExist: b.NExist, markedEmpty: b.markedEmpty}
	for i, c := range b.cons {
		if i == eqIdx {
			continue
		}
		f := c.coef[col]
		if f == 0 {
			r.addRaw(c.kind, append([]int64(nil), c.coef...), c.c)
			continue
		}
		// Since s is +-1, col = -s*(rest + const); substituting gives
		// new = c - (f*s)*eq, which zeroes the col column exactly.
		row := make([]int64, len(c.coef))
		for j := range row {
			row[j] = c.coef[j] - f*s*eq.coef[j]
		}
		row[col] = 0
		r.addRaw(c.kind, row, c.c-f*s*eq.c)
	}
	return r
}

// EliminateExists projects away all existential dimensions with
// Fourier-Motzkin, reporting whether the result is integrally exact.
func (b BasicSet) EliminateExists() (BasicSet, bool) {
	exact := true
	r := b
	for r.NExist > 0 {
		col := r.totalCols() - 1
		var ex bool
		r, ex = r.fmEliminate(col)
		exact = exact && ex
		// Drop the now-unused trailing column.
		for i := range r.cons {
			r.cons[i].coef = r.cons[i].coef[:col]
		}
		r.NExist--
	}
	return r, exact
}

// ProjectOutVar projects away variable i (0-based across in+out dims),
// returning a basic set over the reduced space and whether the projection
// is integrally exact.
func (b BasicSet) ProjectOutVar(i int) (BasicSet, bool) {
	np := b.Sp.NumParams()
	col := np + i
	r, exact := b.fmEliminate(col)
	// Remove the column and the dimension from the space.
	nsp := Space{Params: b.Sp.Params}
	nin := append([]string(nil), b.Sp.In...)
	nout := append([]string(nil), b.Sp.Out...)
	if i < len(nin) {
		nin = append(nin[:i], nin[i+1:]...)
	} else {
		j := i - len(b.Sp.In)
		nout = append(nout[:j], nout[j+1:]...)
	}
	nsp.In, nsp.Out = nin, nout
	out := BasicSet{Sp: nsp, NExist: r.NExist, markedEmpty: r.markedEmpty}
	for _, c := range r.cons {
		row := make([]int64, 0, len(c.coef)-1)
		row = append(row, c.coef[:col]...)
		row = append(row, c.coef[col+1:]...)
		out.addRaw(c.kind, row, c.c)
	}
	return out, exact
}

// IsEmptyRational reports whether b is empty over the rationals. A true
// result implies integer emptiness; a false result is inconclusive for the
// integers (the caller may fall back to enumeration).
func (b BasicSet) IsEmptyRational() bool {
	if b.markedEmpty {
		return true
	}
	r := b
	for col := r.totalCols() - 1; col >= r.Sp.NumParams(); col-- {
		r, _ = r.fmEliminate(col)
		if r.markedEmpty {
			return true
		}
	}
	// Remaining constraints involve parameters only; with no parameters they
	// are constants and trivial() already flagged contradictions. With
	// parameters we cannot decide; report not-known-empty.
	return r.markedEmpty
}

// EvalPoint reports whether the given parameter/variable assignment
// satisfies b, searching existential values if necessary.
func (b BasicSet) EvalPoint(params, vars []int64) bool {
	if b.markedEmpty {
		return false
	}
	np, nv := b.Sp.NumParams(), b.Sp.NumVars()
	if len(params) != np || len(vars) != nv {
		panic("isl: EvalPoint arity mismatch")
	}
	full := make([]int64, b.totalCols())
	copy(full, params)
	copy(full[np:], vars)
	return b.searchExists(b.buildBoundSystems(), full, np+nv)
}

// searchExists checks satisfiability with columns [0,from) fixed, searching
// assignments for the remaining (existential) columns via bound propagation.
func (b BasicSet) searchExists(sys *boundSystems, full []int64, from int) bool {
	if from == len(full) {
		for _, c := range b.cons {
			v := c.c
			for i, co := range c.coef {
				v += co * full[i]
			}
			if c.kind == EQ && v != 0 {
				return false
			}
			if c.kind == GE && v < 0 {
				return false
			}
		}
		return true
	}
	lo, hi, ok := sys.colBounds(full, from)
	if !ok {
		return false
	}
	const existSearchCap = 1 << 16
	if hi-lo+1 > existSearchCap || hi-lo < 0 {
		// Unbounded or huge existential range: in the PolyUFC class
		// existentials are tightly bounded (division/modulo witnesses), so
		// treat as unsatisfiable rather than search astronomically.
		return false
	}
	for v := lo; v <= hi; v++ {
		full[from] = v
		if b.searchExists(sys, full, from+1) {
			full[from] = 0
			return true
		}
	}
	full[from] = 0
	return false
}

// Constraints returns a copy of b's constraints as (kind, coefficients,
// constant) triples with full column layout.
func (b BasicSet) Constraints() []ConstraintView {
	out := make([]ConstraintView, len(b.cons))
	for i, c := range b.cons {
		out[i] = ConstraintView{Kind: c.kind, Coef: append([]int64(nil), c.coef...), Const: c.c}
	}
	return out
}

// ConstraintView is an exported read-only view of one constraint.
type ConstraintView struct {
	Kind  ConKind
	Coef  []int64
	Const int64
}

func (b BasicSet) String() string {
	var sb strings.Builder
	sb.WriteString(b.Sp.String())
	sb.WriteString(" : ")
	if b.markedEmpty {
		sb.WriteString("false")
		return sb.String()
	}
	if len(b.cons) == 0 {
		sb.WriteString("true")
		return sb.String()
	}
	names := make([]string, 0, b.totalCols())
	names = append(names, b.Sp.Params...)
	names = append(names, b.Sp.In...)
	names = append(names, b.Sp.Out...)
	for i := 0; i < b.NExist; i++ {
		names = append(names, fmt.Sprintf("e%d", i))
	}
	var parts []string
	for _, c := range b.cons {
		var terms []string
		for i, co := range c.coef {
			switch co {
			case 0:
			case 1:
				terms = append(terms, names[i])
			case -1:
				terms = append(terms, "-"+names[i])
			default:
				terms = append(terms, fmt.Sprintf("%d*%s", co, names[i]))
			}
		}
		if c.c != 0 || len(terms) == 0 {
			terms = append(terms, fmt.Sprintf("%d", c.c))
		}
		parts = append(parts, strings.Join(terms, " + ")+" "+c.kind.String()+" 0")
	}
	sb.WriteString(strings.Join(parts, " and "))
	return sb.String()
}
