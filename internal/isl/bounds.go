package isl

// boundSystems holds, for each column k, a constraint system involving only
// columns <= k, obtained by rationally eliminating all later columns with
// Fourier-Motzkin. The systems give (possibly loose) integer bounds for
// column k given fixed values of columns < k; loose bounds are harmless for
// enumeration because every candidate point is verified against the full
// constraint system.
type boundSystems struct {
	rows [][]con
}

// buildBoundSystems computes the per-column projected systems for b.
func (b BasicSet) buildBoundSystems() *boundSystems {
	n := b.totalCols()
	bs := &boundSystems{rows: make([][]con, n)}
	cur := make([]con, len(b.cons))
	for i, c := range b.cons {
		cur[i] = con{kind: c.kind, coef: append([]int64(nil), c.coef...), c: c.c}
	}
	for col := n - 1; col >= 0; col-- {
		bs.rows[col] = cur
		cur = fmRows(cur, col)
	}
	return bs
}

// fmRows eliminates column col from rows via Fourier-Motzkin (rational).
func fmRows(rows []con, col int) []con {
	var lowers, uppers, rest []con
	for _, c := range rows {
		a := c.coef[col]
		switch {
		case a == 0:
			rest = append(rest, c)
		case c.kind == EQ:
			lo := con{kind: GE, coef: append([]int64(nil), c.coef...), c: c.c}
			up := con{kind: GE, coef: negRow(c.coef), c: -c.c}
			if a > 0 {
				lowers = append(lowers, lo)
				uppers = append(uppers, up)
			} else {
				lowers = append(lowers, up)
				uppers = append(uppers, lo)
			}
		case a > 0:
			lowers = append(lowers, c)
		default:
			uppers = append(uppers, c)
		}
	}
	out := rest
	for _, lo := range lowers {
		a := lo.coef[col]
		for _, up := range uppers {
			bb := -up.coef[col]
			row := make([]int64, len(lo.coef))
			for i := range row {
				row[i] = bb*lo.coef[i] + a*up.coef[i]
			}
			row[col] = 0
			cc := con{kind: GE, coef: row, c: bb*lo.c + a*up.c}
			normalizeCon(&cc)
			if trivial(cc) == trivTrue {
				continue
			}
			out = append(out, cc)
		}
	}
	return out
}

// DimRange returns rational lower/upper bounds for set dimension d over
// the whole (instantiated) set, by Fourier-Motzkin elimination of every
// other column. ok is false when the dimension is unbounded or the set is
// empty on the rational relaxation.
func (s Set) DimRange(d int) (lo, hi int64, ok bool) {
	const inf = int64(1) << 62
	lo, hi = inf, -inf
	found := false
	np := s.Sp.NumParams()
	for _, b := range s.Basics {
		if b.markedEmpty {
			continue
		}
		rows := make([]con, len(b.cons))
		for i, c := range b.cons {
			rows[i] = con{kind: c.kind, coef: append([]int64(nil), c.coef...), c: c.c}
		}
		target := np + d
		for col := b.totalCols() - 1; col >= 0; col-- {
			if col == target {
				continue
			}
			rows = fmRows(rows, col)
		}
		blo, bhi := -inf, inf
		infeasible := false
		for _, c := range rows {
			a := c.coef[target]
			if a == 0 {
				if trivial(c) == trivFalse {
					infeasible = true
				}
				continue
			}
			if c.kind == EQ {
				v := -c.c / a
				if v > blo {
					blo = v
				}
				if v < bhi {
					bhi = v
				}
				continue
			}
			if a > 0 {
				if v := ceilDiv(-c.c, a); v > blo {
					blo = v
				}
			} else {
				if v := floorDiv(c.c, -a); v < bhi {
					bhi = v
				}
			}
		}
		if infeasible || blo > bhi {
			continue
		}
		found = true
		if blo < lo {
			lo = blo
		}
		if bhi > hi {
			hi = bhi
		}
	}
	if !found || lo <= -inf/2 || hi >= inf/2 {
		return 0, 0, false
	}
	return lo, hi, true
}

// colBoundsIn derives [lo, hi] bounds for column col from the projected
// system, given fixed values for columns [0, col).
func (bs *boundSystems) colBounds(full []int64, col int) (lo, hi int64, ok bool) {
	const inf = int64(1) << 62
	lo, hi = -inf, inf
	for _, c := range bs.rows[col] {
		a := c.coef[col]
		if a == 0 {
			// A constraint over earlier columns only: check it now to prune.
			v := c.c
			for j := 0; j < col; j++ {
				v += c.coef[j] * full[j]
			}
			if (c.kind == EQ && v != 0) || (c.kind == GE && v < 0) {
				return 0, 0, false
			}
			continue
		}
		rest := c.c
		for j := 0; j < col; j++ {
			rest += c.coef[j] * full[j]
		}
		if c.kind == EQ {
			if rest%a != 0 {
				return 0, 0, false
			}
			v := -rest / a
			if v > lo {
				lo = v
			}
			if v < hi {
				hi = v
			}
			continue
		}
		if a > 0 {
			if v := ceilDiv(-rest, a); v > lo {
				lo = v
			}
		} else {
			if v := floorDiv(rest, -a); v < hi {
				hi = v
			}
		}
	}
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}
