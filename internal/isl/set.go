package isl

import (
	"fmt"
	"strings"
)

// Set is a union of basic sets over a common space. When the space has In
// dimensions the Set is interpreted as a relation (see Map).
type Set struct {
	Sp     Space
	Basics []BasicSet
}

// Map is a relation: a union of basic relations. Structurally identical to
// Set; the space's In dimensions carry the domain.
type Map = Set

// EmptySet returns the empty set over the given space.
func EmptySet(sp Space) Set { return Set{Sp: sp} }

// UniverseSet returns the unconstrained set over the given space.
func UniverseSet(sp Space) Set { return Set{Sp: sp, Basics: []BasicSet{Universe(sp)}} }

// FromBasic wraps a single basic set as a union.
func FromBasic(b BasicSet) Set { return Set{Sp: b.Sp, Basics: []BasicSet{b}} }

// NumBasics returns the number of basic sets in the union.
func (s Set) NumBasics() int { return len(s.Basics) }

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	if !s.Sp.Equal(o.Sp) {
		panic("isl: Union on different spaces")
	}
	r := Set{Sp: s.Sp}
	r.Basics = append(append([]BasicSet(nil), s.Basics...), o.Basics...)
	return r
}

// Intersect returns s ∩ o (pairwise basic-set intersections).
func (s Set) Intersect(o Set) Set {
	if !s.Sp.Equal(o.Sp) {
		panic("isl: Intersect on different spaces")
	}
	r := Set{Sp: s.Sp}
	for _, a := range s.Basics {
		for _, b := range o.Basics {
			x := a.Intersect(b)
			if !x.markedEmpty {
				r.Basics = append(r.Basics, x)
			}
		}
	}
	return r
}

// Subtract returns s \ o. Existential-free constraints of o are negated;
// basic sets of o containing existentials are first projected (the
// projection is an over-approximation of o, so the difference remains an
// under-approximation only if projection was inexact — exactness is
// reported by the second return value).
func (s Set) Subtract(o Set) (Set, bool) {
	if !s.Sp.Equal(o.Sp) {
		panic("isl: Subtract on different spaces")
	}
	exact := true
	cur := s
	for _, b := range o.Basics {
		nb := b
		if nb.NExist > 0 {
			var ex bool
			nb, ex = nb.EliminateExists()
			exact = exact && ex
		}
		next := Set{Sp: s.Sp}
		for _, a := range cur.Basics {
			next.Basics = append(next.Basics, subtractBasic(a, nb)...)
		}
		cur = next
	}
	return cur, exact
}

// subtractBasic computes a \ b where b has no existentials, as a union of
// basic sets: for each constraint of b, a piece of a where that constraint
// is violated (with earlier constraints holding, to keep pieces disjoint).
func subtractBasic(a, b BasicSet) []BasicSet {
	var out []BasicSet
	var holds []con // constraints of b asserted so far
	for _, c := range b.cons {
		negs := negateCon(c)
		for _, nc := range negs {
			piece := a.Clone()
			base := a.Sp.NumCols()
			for _, hc := range holds {
				piece.addRaw(hc.kind, widenRow(hc.coef, base, piece.totalCols()), hc.c)
			}
			piece.addRaw(nc.kind, widenRow(nc.coef, base, piece.totalCols()), nc.c)
			if !piece.markedEmpty && !piece.IsEmptyRational() {
				out = append(out, piece)
			}
		}
		holds = append(holds, c)
	}
	return out
}

// widenRow adapts a constraint row with `base` leading columns (and no
// existentials) to a row with `width` columns.
func widenRow(row []int64, base, width int) []int64 {
	out := make([]int64, width)
	copy(out, row[:base])
	return out
}

// negateCon returns constraints expressing the negation of c:
// not(e >= 0) is -e-1 >= 0; not(e == 0) is e-1 >= 0 or -e-1 >= 0.
func negateCon(c con) []con {
	neg := con{kind: GE, coef: negRow(c.coef), c: -c.c - 1}
	if c.kind == GE {
		return []con{neg}
	}
	pos := con{kind: GE, coef: append([]int64(nil), c.coef...), c: c.c - 1}
	return []con{pos, neg}
}

// InstantiateParams folds concrete parameter values into every basic set.
func (s Set) InstantiateParams(vals []int64) Set {
	r := Set{Sp: Space{In: s.Sp.In, Out: s.Sp.Out}}
	for _, b := range s.Basics {
		nb := b.InstantiateParams(vals)
		if !nb.markedEmpty {
			r.Basics = append(r.Basics, nb)
		}
	}
	return r
}

// IsEmptyRational reports whether every basic set is rationally empty.
func (s Set) IsEmptyRational() bool {
	for _, b := range s.Basics {
		if !b.IsEmptyRational() {
			return false
		}
	}
	return true
}

// EvalPoint reports whether the point lies in any basic set of s.
func (s Set) EvalPoint(params, vars []int64) bool {
	for _, b := range s.Basics {
		if b.EvalPoint(params, vars) {
			return true
		}
	}
	return false
}

// ProjectOutVar projects away variable i from every basic set.
func (s Set) ProjectOutVar(i int) (Set, bool) {
	exact := true
	var r Set
	for idx, b := range s.Basics {
		nb, ex := b.ProjectOutVar(i)
		exact = exact && ex
		if idx == 0 {
			r = Set{Sp: nb.Sp}
		}
		if !nb.markedEmpty {
			r.Basics = append(r.Basics, nb)
		}
	}
	if len(s.Basics) == 0 {
		// Build the reduced space from scratch.
		b := Universe(s.Sp)
		nb, _ := b.ProjectOutVar(i)
		r = Set{Sp: nb.Sp}
	}
	return r, exact
}

func (s Set) String() string {
	if len(s.Basics) == 0 {
		return s.Sp.String() + " : false"
	}
	parts := make([]string, len(s.Basics))
	for i, b := range s.Basics {
		parts[i] = b.String()
	}
	return strings.Join(parts, " ;; ")
}

// Coalesce removes basic sets that are rationally empty and deduplicates
// structurally identical basic sets. This is the duplicate-elimination step
// PolyUFC applies before symbolic counting (paper footnote 17).
func (s Set) Coalesce() Set {
	seen := map[string]bool{}
	r := Set{Sp: s.Sp}
	for _, b := range s.Basics {
		if b.markedEmpty {
			continue
		}
		key := basicKey(b)
		if seen[key] {
			continue
		}
		seen[key] = true
		r.Basics = append(r.Basics, b)
	}
	return r
}

func basicKey(b BasicSet) string {
	rows := make([]string, len(b.cons))
	for i, c := range b.cons {
		rows[i] = fmt.Sprintf("%d|%v|%d", c.kind, c.coef, c.c)
	}
	// Order-insensitive: sort rows.
	sortStrings(rows)
	return fmt.Sprintf("%d;%s", b.NExist, strings.Join(rows, "&"))
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
