package isl

import "testing"

func TestGistDropsImpliedConstraints(t *testing.T) {
	sp := NewSetSpace(nil, []string{"i"})
	b := Universe(sp)
	b.AddRange(0, 0, 9) // 0 <= i <= 9
	ctx := Universe(sp)
	ctx.AddRange(0, 0, 100) // context already gives i >= 0 ... i <= 100
	g := b.Gist(ctx)
	// i >= 0 is implied by the context; i <= 9 is not.
	if g.NumConstraints() != 1 {
		t.Fatalf("gist kept %d constraints: %s", g.NumConstraints(), g)
	}
	// Within the context, the gisted set equals the original.
	inter1 := FromBasic(b).Intersect(FromBasic(ctx))
	inter2 := FromBasic(g).Intersect(FromBasic(ctx))
	eq, err := IsEqual(inter1, inter2, 1<<16)
	if err != nil || !eq {
		t.Fatalf("gist changed the set within context: %v %v", eq, err)
	}
}

func TestRemoveRedundancies(t *testing.T) {
	sp := NewSetSpace(nil, []string{"i"})
	b := Universe(sp)
	b.AddRange(0, 0, 9)
	b.AddGE(sp.VarExpr(0).AddConst(5))           // i >= -5, implied by i >= 0
	b.AddGE(sp.ConstExpr(20).Sub(sp.VarExpr(0))) // i <= 20, implied by i <= 9
	r := b.RemoveRedundancies()
	if r.NumConstraints() != 2 {
		t.Fatalf("kept %d constraints: %s", r.NumConstraints(), r)
	}
	n1, _ := FromBasic(b).CountInt(1 << 16)
	n2, _ := FromBasic(r).CountInt(1 << 16)
	if n1 != n2 {
		t.Fatalf("simplification changed cardinality %d -> %d", n1, n2)
	}
}

func TestIsSubsetAndEqual(t *testing.T) {
	small := box([]string{"i", "j"}, []int64{2, 2}, []int64{5, 5})
	big := box([]string{"i", "j"}, []int64{0, 0}, []int64{9, 9})
	if ok, err := IsSubset(small, big, 1<<16); err != nil || !ok {
		t.Fatalf("small ⊆ big: %v %v", ok, err)
	}
	if ok, err := IsSubset(big, small, 1<<16); err != nil || ok {
		t.Fatalf("big ⊆ small should be false: %v %v", ok, err)
	}
	if ok, err := IsEqual(small, small.Union(small), 1<<16); err != nil || !ok {
		t.Fatalf("A = A ∪ A: %v %v", ok, err)
	}
	if ok, err := IsEqual(small, big, 1<<16); err != nil || ok {
		t.Fatalf("small != big: %v %v", ok, err)
	}
}

func TestIsSubsetWithUnionCover(t *testing.T) {
	// [0,9] is covered by [0,4] ∪ [3,9].
	whole := box([]string{"i"}, []int64{0}, []int64{9})
	left := box([]string{"i"}, []int64{0}, []int64{4})
	right := box([]string{"i"}, []int64{3}, []int64{9})
	cover := left.Union(right)
	if ok, err := IsSubset(whole, cover, 1<<16); err != nil || !ok {
		t.Fatalf("cover test: %v %v", ok, err)
	}
	// Remove the overlap region's right part: gap appears.
	gap := box([]string{"i"}, []int64{5}, []int64{9})
	partial := left.Union(gap)
	if ok, err := IsEqual(whole, partial, 1<<16); err != nil || !ok {
		t.Fatalf("[0,4] ∪ [5,9] should equal [0,9]: %v %v", ok, err)
	}
}

func TestLexmaxPoint(t *testing.T) {
	sp := NewSetSpace(nil, []string{"i", "j"})
	b := Universe(sp)
	b.AddRange(0, 3, 10)
	b.AddRange(1, -2, 5)
	b.AddGE(sp.ConstExpr(12).Sub(sp.VarExpr(0)).Sub(sp.VarExpr(1))) // i + j <= 12
	pt, ok, err := FromBasic(b).LexmaxPoint(1 << 16)
	if err != nil || !ok {
		t.Fatalf("lexmax failed: %v %v", ok, err)
	}
	if pt[0] != 10 || pt[1] != 2 {
		t.Fatalf("lexmax = %v, want [10 2]", pt)
	}
	// Lexmin and lexmax of a singleton coincide.
	s := box([]string{"i"}, []int64{7}, []int64{7})
	lo, _, _ := s.LexminPoint(1 << 10)
	hi, _, _ := s.LexmaxPoint(1 << 10)
	if lo[0] != 7 || hi[0] != 7 {
		t.Fatalf("singleton extrema %v %v", lo, hi)
	}
	// Empty set.
	e := box([]string{"i"}, []int64{5}, []int64{4})
	if _, ok, _ := e.LexmaxPoint(1 << 10); ok {
		t.Fatal("lexmax of empty set")
	}
}
