package isl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// box builds {[dims] : lo_i <= dim_i <= hi_i}.
func box(dims []string, lo, hi []int64) Set {
	sp := NewSetSpace(nil, dims)
	b := Universe(sp)
	for i := range dims {
		b.AddRange(i, lo[i], hi[i])
	}
	return FromBasic(b)
}

func mustCount(t *testing.T, s Set) int64 {
	t.Helper()
	n, err := s.CountInt(1 << 22)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return n
}

func TestBoxCount(t *testing.T) {
	s := box([]string{"i", "j"}, []int64{0, 0}, []int64{9, 4})
	if got := mustCount(t, s); got != 50 {
		t.Fatalf("count = %d, want 50", got)
	}
}

func TestEmptyBox(t *testing.T) {
	s := box([]string{"i"}, []int64{5}, []int64{4})
	if got := mustCount(t, s); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	empty, err := s.IsEmpty(1000)
	if err != nil || !empty {
		t.Fatalf("IsEmpty = %v, %v", empty, err)
	}
}

func TestTriangleCount(t *testing.T) {
	// {[i,j] : 0 <= i <= 9, 0 <= j <= i} has 55 points.
	sp := NewSetSpace(nil, []string{"i", "j"})
	b := Universe(sp)
	b.AddRange(0, 0, 9)
	b.AddGE(sp.VarExpr(1))                    // j >= 0
	b.AddGE(sp.VarExpr(0).Sub(sp.VarExpr(1))) // i - j >= 0
	if got := mustCount(t, FromBasic(b)); got != 55 {
		t.Fatalf("count = %d, want 55", got)
	}
}

func TestTiledDomainCount(t *testing.T) {
	// Tiled loop: {[t,i] : 0 <= i <= N-1, 32t <= i <= 32t+31, t >= 0},
	// which must have exactly N points for any N.
	for _, n := range []int64{1, 31, 32, 33, 100, 1000, 1024} {
		sp := NewSetSpace(nil, []string{"t", "i"})
		b := Universe(sp)
		ti, ii := 0, 1
		b.AddGE(sp.VarExpr(ti))                                            // t >= 0
		b.AddGE(sp.VarExpr(ii))                                            // i >= 0
		b.AddGE(sp.ConstExpr(n - 1).Sub(sp.VarExpr(ii)))                   // i <= N-1
		b.AddGE(sp.VarExpr(ii).Sub(sp.VarExpr(ti).Scale(32)))              // i >= 32t
		b.AddGE(sp.VarExpr(ti).Scale(32).AddConst(31).Sub(sp.VarExpr(ii))) // i <= 32t+31
		if got := mustCount(t, FromBasic(b)); got != n {
			t.Fatalf("N=%d: count = %d, want %d", n, got, n)
		}
	}
}

func TestTiled2DMatchesEnumeration(t *testing.T) {
	// 2-D tiled domain, symbolic count vs exhaustive enumeration.
	n := int64(50)
	sp := NewSetSpace(nil, []string{"ti", "tj", "i", "j"})
	b := Universe(sp)
	for _, d := range []struct{ t, v int }{{0, 2}, {1, 3}} {
		b.AddGE(sp.VarExpr(d.t))
		b.AddGE(sp.VarExpr(d.v))
		b.AddGE(sp.ConstExpr(n - 1).Sub(sp.VarExpr(d.v)))
		b.AddGE(sp.VarExpr(d.v).Sub(sp.VarExpr(d.t).Scale(8)))
		b.AddGE(sp.VarExpr(d.t).Scale(8).AddConst(7).Sub(sp.VarExpr(d.v)))
	}
	s := FromBasic(b)
	sym := mustCount(t, s)
	enum, err := s.CountEnumerate(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if sym != enum || sym != n*n {
		t.Fatalf("symbolic = %d, enum = %d, want %d", sym, enum, n*n)
	}
}

func TestParamInstantiation(t *testing.T) {
	// {[i] : 0 <= i < N} with N = 17.
	sp := NewSetSpace([]string{"N"}, []string{"i"})
	b := Universe(sp)
	b.AddGE(sp.VarExpr(0))
	b.AddGE(sp.ParamExpr(0).Sub(sp.VarExpr(0)).AddConst(-1))
	s := FromBasic(b).InstantiateParams([]int64{17})
	if got := mustCount(t, s); got != 17 {
		t.Fatalf("count = %d, want 17", got)
	}
}

func TestUnionCountDisjointified(t *testing.T) {
	a := box([]string{"i"}, []int64{0}, []int64{9})
	c := box([]string{"i"}, []int64{5}, []int64{14})
	u := a.Union(c)
	if got := mustCount(t, u); got != 15 {
		t.Fatalf("union count = %d, want 15 (overlap must not double count)", got)
	}
}

func TestSubtract(t *testing.T) {
	a := box([]string{"i"}, []int64{0}, []int64{9})
	c := box([]string{"i"}, []int64{3}, []int64{5})
	d, exact := a.Subtract(c)
	if !exact {
		t.Fatal("subtract should be exact")
	}
	if got := mustCount(t, d); got != 7 {
		t.Fatalf("difference count = %d, want 7", got)
	}
	for i := int64(0); i <= 9; i++ {
		want := i < 3 || i > 5
		if got := d.EvalPoint(nil, []int64{i}); got != want {
			t.Fatalf("point %d: got %v, want %v", i, got, want)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := box([]string{"i", "j"}, []int64{0, 0}, []int64{9, 9})
	c := box([]string{"i", "j"}, []int64{5, -3}, []int64{14, 4})
	x := a.Intersect(c)
	if got := mustCount(t, x); got != 5*5 {
		t.Fatalf("intersection count = %d, want 25", got)
	}
}

func TestExistentialFloorMod(t *testing.T) {
	// {[i, line] : 0 <= i < 64, line = floor(i/16)} via an equality with the
	// existential-free encoding 16*line <= i <= 16*line + 15.
	sp := NewSetSpace(nil, []string{"i", "line"})
	b := Universe(sp)
	b.AddRange(0, 0, 63)
	b.AddGE(sp.VarExpr(0).Sub(sp.VarExpr(1).Scale(16)))              // i - 16*line >= 0
	b.AddGE(sp.VarExpr(1).Scale(16).AddConst(15).Sub(sp.VarExpr(0))) // 16*line + 15 - i >= 0
	s := FromBasic(b)
	if got := mustCount(t, s); got != 64 {
		t.Fatalf("count = %d, want 64 (line is a function of i)", got)
	}
	// Projecting onto line should give 4 distinct values.
	proj, _ := s.ProjectOutVar(0)
	n, err := proj.CountEnumerate(1000)
	if err != nil || n != 4 {
		t.Fatalf("distinct lines = %d (%v), want 4", n, err)
	}
}

func TestExistsViaAddExists(t *testing.T) {
	// {[i] : 0 <= i < 32, exists q: i = 4q}  -> multiples of 4 -> 8 points.
	sp := NewSetSpace(nil, []string{"i"})
	b := Universe(sp)
	b.AddRange(0, 0, 31)
	q := b.AddExists(1)
	row := make([]int64, b.totalCols())
	row[0] = 1
	row[q] = -4
	b.AddRawEQ(row, 0) // i - 4q == 0
	s := FromBasic(b)
	n, err := s.CountEnumerate(1000)
	if err != nil || n != 8 {
		t.Fatalf("count = %d (%v), want 8", n, err)
	}
	if !s.EvalPoint(nil, []int64{8}) || s.EvalPoint(nil, []int64{9}) {
		t.Fatal("EvalPoint existential search wrong")
	}
}

func TestLexminPoint(t *testing.T) {
	sp := NewSetSpace(nil, []string{"i", "j"})
	b := Universe(sp)
	b.AddRange(0, 3, 10)
	b.AddRange(1, -2, 5)
	b.AddGE(sp.VarExpr(0).Add(sp.VarExpr(1)).AddConst(-4)) // i + j >= 4
	pt, ok, err := FromBasic(b).LexminPoint(1 << 16)
	if err != nil || !ok {
		t.Fatalf("lexmin failed: %v %v", ok, err)
	}
	if pt[0] != 3 || pt[1] != 1 {
		t.Fatalf("lexmin = %v, want [3 1]", pt)
	}
}

func TestIdentityAndLexMaps(t *testing.T) {
	id := IdentityMap(nil, []string{"i"})
	if !id.EvalPoint(nil, []int64{4, 4}) || id.EvalPoint(nil, []int64{4, 5}) {
		t.Fatal("identity map wrong")
	}
	lt := LexLTMap(nil, []string{"i", "j"})
	cases := []struct {
		a, b [2]int64
		want bool
	}{
		{[2]int64{1, 5}, [2]int64{2, 0}, true},
		{[2]int64{1, 5}, [2]int64{1, 6}, true},
		{[2]int64{1, 5}, [2]int64{1, 5}, false},
		{[2]int64{2, 0}, [2]int64{1, 9}, false},
	}
	for _, c := range cases {
		got := lt.EvalPoint(nil, []int64{c.a[0], c.a[1], c.b[0], c.b[1]})
		if got != c.want {
			t.Fatalf("lexlt %v -> %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	le := LexLEMap(nil, []string{"i", "j"})
	if !le.EvalPoint(nil, []int64{1, 5, 1, 5}) {
		t.Fatal("lexle must include equality")
	}
}

func TestMapFromExprsAndApply(t *testing.T) {
	// f(i, j) = (i + j, 2i) over a 3x3 box.
	in := []string{"i", "j"}
	inSp := NewSetSpace(nil, in)
	f0 := inSp.VarExpr(0).Add(inSp.VarExpr(1))
	f1 := inSp.VarExpr(0).Scale(2)
	m := MapFromExprs(nil, in, []string{"a", "b"}, []LinExpr{f0, f1})
	if !m.EvalPoint(nil, []int64{1, 2, 3, 2}) {
		t.Fatal("map graph point missing")
	}
	if m.EvalPoint(nil, []int64{1, 2, 3, 3}) {
		t.Fatal("map graph has wrong point")
	}
	dom := box(in, []int64{0, 0}, []int64{2, 2})
	img := m.Apply(dom)
	// Image points (i+j, 2i) for i,j in 0..2: 2i in {0,2,4}, i+j in i..i+2.
	n, err := img.CountEnumerate(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("image size = %d, want 9", n)
	}
	if !img.EvalPoint(nil, []int64{4, 4}) { // i=2, j=2
		t.Fatal("image missing (4,4)")
	}
}

func TestInverseDomainRange(t *testing.T) {
	in := []string{"i"}
	inSp := NewSetSpace(nil, in)
	m := MapFromExprs(nil, in, []string{"o"}, []LinExpr{inSp.VarExpr(0).Scale(3).AddConst(1)})
	dom := box(in, []int64{0}, []int64{4})
	m = m.IntersectDomain(dom)
	rng := m.Range()
	n, _ := rng.CountEnumerate(1000)
	if n != 5 {
		t.Fatalf("range size = %d, want 5", n)
	}
	if !rng.EvalPoint(nil, []int64{13}) || rng.EvalPoint(nil, []int64{12}) {
		t.Fatal("range membership wrong")
	}
	inv := m.Inverse()
	if !inv.EvalPoint(nil, []int64{13, 4}) {
		t.Fatal("inverse membership wrong")
	}
	d := inv.Domain()
	nd, _ := d.CountEnumerate(1000)
	if nd != 5 {
		t.Fatalf("inverse domain size = %d, want 5", nd)
	}
}

func TestChain(t *testing.T) {
	// f(i) = i+1 over 0..9, g(x) = 2x; chain = 2(i+1).
	sp1 := NewSetSpace(nil, []string{"i"})
	f := MapFromExprs(nil, []string{"i"}, []string{"x"}, []LinExpr{sp1.VarExpr(0).AddConst(1)})
	sp2 := NewSetSpace(nil, []string{"x"})
	g := MapFromExprs(nil, []string{"x"}, []string{"y"}, []LinExpr{sp2.VarExpr(0).Scale(2)})
	h := f.Chain(g)
	if !h.EvalPoint(nil, []int64{3, 8}) || h.EvalPoint(nil, []int64{3, 7}) {
		t.Fatal("chain composition wrong")
	}
}

func TestProjectOutVarExactness(t *testing.T) {
	// Projecting j out of {[i,j] : j = 2i, 0 <= j <= 10} gives 0 <= i <= 5.
	sp := NewSetSpace(nil, []string{"i", "j"})
	b := Universe(sp)
	b.AddEquals(sp.VarExpr(1), sp.VarExpr(0).Scale(2))
	b.AddRange(1, 0, 10)
	p, exact := FromBasic(b).ProjectOutVar(1)
	if !exact {
		t.Fatal("unit-coefficient equality projection should be exact")
	}
	n, _ := p.CountEnumerate(1000)
	if n != 6 {
		t.Fatalf("projected count = %d, want 6", n)
	}
}

func TestIsEmptyRationalSoundness(t *testing.T) {
	sp := NewSetSpace(nil, []string{"i"})
	b := Universe(sp)
	b.AddGE(sp.VarExpr(0).AddConst(-10))     // i >= 10
	b.AddGE(sp.VarExpr(0).Neg().AddConst(5)) // i <= 5
	if !b.IsEmptyRational() {
		t.Fatal("clearly empty set not detected")
	}
}

func TestCoalesceDedup(t *testing.T) {
	a := box([]string{"i"}, []int64{0}, []int64{9})
	u := a.Union(a).Union(a)
	if u.NumBasics() != 3 {
		t.Fatalf("pre-coalesce basics = %d", u.NumBasics())
	}
	c := u.Coalesce()
	if c.NumBasics() != 1 {
		t.Fatalf("post-coalesce basics = %d, want 1", c.NumBasics())
	}
	if got := mustCount(t, c); got != 10 {
		t.Fatalf("count = %d", got)
	}
}

func TestPropertyCountMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dims := []string{"i", "j"}
		sp := NewSetSpace(nil, dims)
		b := Universe(sp)
		// Random small box plus up to 2 random halfplanes.
		for d := 0; d < 2; d++ {
			lo := int64(rr.Intn(7) - 3)
			b.AddRange(d, lo, lo+int64(rr.Intn(8)))
		}
		for k := 0; k < rr.Intn(3); k++ {
			e := sp.NewLinExpr()
			e.VarCoef[0] = int64(rr.Intn(3) - 1)
			e.VarCoef[1] = int64(rr.Intn(3) - 1)
			e.Const = int64(rr.Intn(9) - 4)
			b.AddGE(e)
		}
		s := FromBasic(b)
		sym, err := s.Count(1 << 16)
		if err != nil {
			return true // outside symbolic class is acceptable; skip
		}
		enum, err := s.CountEnumerate(1 << 16)
		if err != nil {
			return false
		}
		return sym.IsInt() && sym.Num().Int64() == enum
	}
	cfg := &quick.Config{MaxCount: 120, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubtractPartition(t *testing.T) {
	// |A| = |A ∩ B| + |A \ B| for random boxes.
	r := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		mk := func() Set {
			lo := []int64{int64(rr.Intn(5)), int64(rr.Intn(5))}
			hi := []int64{lo[0] + int64(rr.Intn(6)), lo[1] + int64(rr.Intn(6))}
			return box([]string{"i", "j"}, lo, hi)
		}
		a, b := mk(), mk()
		inter := a.Intersect(b)
		diff, exact := a.Subtract(b)
		if !exact {
			return false
		}
		ca, _ := a.CountEnumerate(1 << 16)
		ci, _ := inter.CountEnumerate(1 << 16)
		cd, _ := diff.CountEnumerate(1 << 16)
		return ca == ci+cd
	}
	cfg := &quick.Config{MaxCount: 80, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLinExprFormat(t *testing.T) {
	sp := NewSetSpace([]string{"N"}, []string{"i", "j"})
	e := sp.VarExpr(0).Scale(2).Sub(sp.VarExpr(1)).Add(sp.ParamExpr(0)).AddConst(-3)
	if got := e.Format(sp); got != "N + 2*i - j - 3" {
		t.Fatalf("Format = %q", got)
	}
}

func TestBasicSetString(t *testing.T) {
	sp := NewSetSpace(nil, []string{"i"})
	b := Universe(sp)
	b.AddRange(0, 0, 5)
	s := b.String()
	if s == "" {
		t.Fatal("empty String")
	}
}
