package isl

import (
	"errors"
	"fmt"
	"math/big"

	"polyufc/internal/poly"
)

// ErrNotCountable is returned when symbolic counting does not support the
// set's constraint structure (the caller may fall back to enumeration).
var ErrNotCountable = errors.New("isl: set outside the symbolically countable class")

// Count returns the exact number of integer points in the instantiated
// (parameter-free) set. Basic sets are made disjoint before counting so the
// union cardinality is exact. Symbolic Faulhaber summation is used for the
// loop-nest-form class (including constant-size tiled domains); basic sets
// outside that class fall back to bounded enumeration with the given point
// budget.
func (s Set) Count(enumLimit int) (*big.Rat, error) {
	if s.Sp.NumParams() != 0 {
		return nil, errors.New("isl: Count requires instantiated parameters")
	}
	total := new(big.Rat)
	// Disjointify: piece_i = basic_i minus basics already counted.
	remaining := s.Coalesce()
	var counted []BasicSet
	for _, b := range remaining.Basics {
		piece := FromBasic(b)
		if len(counted) > 0 {
			prior := Set{Sp: s.Sp, Basics: counted}
			var exact bool
			piece, exact = piece.Subtract(prior)
			if !exact {
				// Projection during subtraction lost precision; count the
				// whole union by enumeration instead.
				n, err := s.CountEnumerate(enumLimit)
				if err != nil {
					return nil, err
				}
				return big.NewRat(n, 1), nil
			}
		}
		for _, pb := range piece.Basics {
			c, err := pb.Count(enumLimit)
			if err != nil {
				return nil, err
			}
			total.Add(total, c)
		}
		counted = append(counted, b)
	}
	return total, nil
}

// CountInt is Count returning an int64; it errors if the result is not an
// integer that fits (which would indicate an internal bug).
func (s Set) CountInt(enumLimit int) (int64, error) {
	r, err := s.Count(enumLimit)
	if err != nil {
		return 0, err
	}
	if !r.IsInt() || !r.Num().IsInt64() {
		return 0, fmt.Errorf("isl: non-integer count %s", r.RatString())
	}
	return r.Num().Int64(), nil
}

// Count returns the number of integer points in the instantiated basic set,
// using symbolic summation where possible and bounded enumeration
// otherwise.
func (b BasicSet) Count(enumLimit int) (*big.Rat, error) {
	if b.markedEmpty {
		return new(big.Rat), nil
	}
	if b.Sp.NumParams() != 0 {
		return nil, errors.New("isl: Count requires instantiated parameters")
	}
	work := b
	if work.NExist > 0 {
		elim, exact := work.EliminateExists()
		if exact {
			work = elim
		} else {
			return b.countByEnumeration(enumLimit)
		}
	}
	n, err := countSymbolic(work)
	if err == nil {
		return n, nil
	}
	if errors.Is(err, ErrNotCountable) {
		return b.countByEnumeration(enumLimit)
	}
	return nil, err
}

func (b BasicSet) countByEnumeration(limit int) (*big.Rat, error) {
	n, err := FromBasic(b).CountEnumerate(limit)
	if err != nil {
		return nil, err
	}
	return big.NewRat(n, 1), nil
}

// crow is a counting-time constraint over nv variable columns.
type crow struct {
	kind ConKind
	coef []int64
	c    int64
}

// countSymbolic counts a parameter-free, existential-free basic set by
// recursive symbolic summation: variables are eliminated innermost-first;
// multiple lower (upper) bounds induce a chamber split on which bound is
// maximal (minimal); the per-variable sum uses Faulhaber's closed form.
func countSymbolic(b BasicSet) (*big.Rat, error) {
	nv := b.Sp.NumVars()
	rows := make([]crow, 0, len(b.cons))
	for _, c := range b.cons {
		rows = append(rows, crow{kind: c.kind, coef: append([]int64(nil), c.coef...), c: c.c})
	}
	body := poly.ConstInt(nv, 1)
	budget := maxCountNodes
	return countRec(rows, nv, nv, body, 0, &budget)
}

const (
	maxChamberDepth = 64
	// maxCountNodes bounds the total chamber-tree size; beyond it the
	// caller falls back to enumeration.
	maxCountNodes = 200000
)

func countRec(rows []crow, nv, remaining int, body poly.Poly, depth int, budget *int) (*big.Rat, error) {
	if depth > maxChamberDepth {
		return nil, ErrNotCountable
	}
	*budget--
	if *budget <= 0 {
		return nil, ErrNotCountable
	}
	if remaining == 0 {
		// All variables eliminated: residual rows are constants.
		for _, r := range rows {
			for _, co := range r.coef {
				if co != 0 {
					return nil, ErrNotCountable
				}
			}
			if (r.kind == EQ && r.c != 0) || (r.kind == GE && r.c < 0) {
				return new(big.Rat), nil
			}
		}
		c, ok := body.IsConst()
		if !ok {
			return nil, fmt.Errorf("isl: internal: non-constant body after elimination")
		}
		return c, nil
	}
	d := remaining - 1 // eliminate the innermost remaining variable

	// Equality substitution when possible.
	for i, r := range rows {
		if r.coef[d] == 0 {
			continue
		}
		if r.kind != EQ {
			continue
		}
		a := r.coef[d]
		if a == 1 || a == -1 {
			expr := rowToPoly(r, nv, d, -a) // x_d = -a*(rest + c)
			nrows := substituteRows(rows, i, d, a)
			nbody := body.SubstPoly(d, expr)
			return countRec(nrows, nv, remaining-1, nbody, depth, budget)
		}
		// Non-unit equality a*x = -(rest+c): countable only when rest is
		// constant and divisible.
		if rowRestConst(r, d) {
			if (-r.c)%a != 0 {
				return new(big.Rat), nil // no integer solution
			}
			v := -r.c / a
			nrows := fixRows(rows, d, v)
			nbody := body.SubstPoly(d, poly.ConstInt(nv, v))
			return countRec(nrows, nv, remaining-1, nbody, depth, budget)
		}
		return nil, ErrNotCountable
	}

	var lowers, uppers []boundExpr
	var rest []crow
	for _, r := range rows {
		a := r.coef[d]
		switch {
		case a == 0:
			rest = append(rest, r)
		case a > 0: // a*x + rest + c >= 0  ->  x >= ceil(-(rest+c)/a)
			be, ok := makeBound(r, d, nv, true)
			if !ok {
				return nil, ErrNotCountable
			}
			lowers = append(lowers, be)
		default: // a < 0: x <= floor((rest+c)/(-a))
			be, ok := makeBound(r, d, nv, false)
			if !ok {
				return nil, ErrNotCountable
			}
			uppers = append(uppers, be)
		}
	}
	if len(lowers) == 0 || len(uppers) == 0 {
		return nil, ErrUnbounded
	}
	// Prune dominated bounds to avoid chamber blow-up on tiled domains
	// (e.g. the lower bound 0 is redundant against 32*t once t >= 0).
	lowers = pruneDominated(lowers, rest, nv, true)
	uppers = pruneDominated(uppers, rest, nv, false)

	total := new(big.Rat)
	for li, L := range lowers {
		for ui, U := range uppers {
			// Chamber where L is the max lower bound and U the min upper.
			chamber := append([]crow(nil), rest...)
			okCh := true
			for j, L2 := range lowers {
				if j == li {
					continue
				}
				// L >= L2 (strict for j < li to break ties).
				strict := int64(0)
				if j < li {
					strict = 1
				}
				row, ok := diffRow(L, L2, strict, nv)
				if !ok {
					okCh = false
					break
				}
				chamber = append(chamber, row)
			}
			if okCh {
				for j, U2 := range uppers {
					if j == ui {
						continue
					}
					strict := int64(0)
					if j < ui {
						strict = 1
					}
					// U <= U2 (strict for j < ui): U2 - U - strict >= 0.
					row, ok := diffRow(U2, U, strict, nv)
					if !ok {
						okCh = false
						break
					}
					chamber = append(chamber, row)
				}
			}
			if !okCh {
				return nil, ErrNotCountable
			}
			// Guard: U >= L.
			guard, ok := diffRow(U, L, 0, nv)
			if !ok {
				return nil, ErrNotCountable
			}
			chamber = append(chamber, guard)
			nbody := poly.SumVar(body, d, L.poly, U.poly)
			c, err := countRec(chamber, nv, remaining-1, nbody, depth+1, budget)
			if err != nil {
				return nil, err
			}
			total.Add(total, c)
		}
	}
	return total, nil
}

// pruneDominated removes bounds that can never be the binding one under
// the outer constraints: lower bound L_i is redundant when L_i <= L_j
// everywhere (some other bound is always at least as tight), established
// by the rational infeasibility of rest ∧ L_i >= L_j + 1. Upper bounds are
// symmetric.
func pruneDominated(bounds []boundExpr, rest []crow, nv int, lower bool) []boundExpr {
	if len(bounds) <= 1 {
		return bounds
	}
	dropped := make([]bool, len(bounds))
	for i := range bounds {
		if dropped[i] {
			continue
		}
		for j := range bounds {
			if i == j || dropped[j] || dropped[i] {
				continue
			}
			// Does bound j always dominate bound i?
			var witness crow
			if lower {
				// i redundant if L_i <= L_j always: infeasible(L_i >= L_j+1).
				witness, _ = diffRow(bounds[i], bounds[j], 1, nv)
			} else {
				// i redundant if U_i >= U_j always: infeasible(U_i <= U_j-1).
				witness, _ = diffRow(bounds[j], bounds[i], 1, nv)
			}
			sys := append(append([]crow(nil), rest...), witness)
			if rowsInfeasibleRational(sys, nv) {
				dropped[i] = true
			}
		}
	}
	out := bounds[:0]
	for i, b := range bounds {
		if !dropped[i] {
			out = append(out, b)
		}
	}
	return out
}

// rowsInfeasibleRational reports whether the constraint rows are rationally
// infeasible, via Fourier-Motzkin elimination of every column.
func rowsInfeasibleRational(rows []crow, nv int) bool {
	cons := make([]con, len(rows))
	for i, r := range rows {
		cons[i] = con{kind: r.kind, coef: append([]int64(nil), r.coef...), c: r.c}
	}
	for col := nv - 1; col >= 0; col-- {
		cons = fmRows(cons, col)
		for _, c := range cons {
			if trivial(c) == trivFalse {
				return true
			}
		}
	}
	for _, c := range cons {
		if trivial(c) == trivFalse {
			return true
		}
	}
	return false
}

// boundExpr is a lower or upper bound on the eliminated variable, as both a
// polynomial (for summation) and an integer row (for chamber constraints).
type boundExpr struct {
	poly poly.Poly
	coef []int64 // over nv columns, col d zeroed
	c    int64
}

// makeBound extracts the bound from a GE row. For unit coefficients the
// bound is affine in the outer variables; for non-unit coefficients only
// constant bounds are supported (floor/ceil evaluated numerically).
func makeBound(r crow, d, nv int, lower bool) (boundExpr, bool) {
	a := r.coef[d]
	if a == 1 || a == -1 {
		// lower: x >= -(rest+c); upper: x <= rest+c (with a = -1).
		sign := int64(-1)
		if !lower {
			sign = 1
		}
		coef := make([]int64, nv)
		p := poly.New(nv)
		for i := 0; i < nv; i++ {
			if i == d {
				continue
			}
			coef[i] = sign * r.coef[i]
			if coef[i] != 0 {
				p = p.Add(poly.Var(nv, i).ScaleInt(coef[i]))
			}
		}
		c := sign * r.c
		p = p.Add(poly.ConstInt(nv, c))
		return boundExpr{poly: p, coef: coef, c: c}, true
	}
	mag := a
	if mag < 0 {
		mag = -mag
	}
	if rowRestConst(r, d) {
		var v int64
		if lower {
			v = ceilDiv(-r.c, a) // a > 0
		} else {
			v = floorDiv(r.c, -a) // a < 0
		}
		return boundExpr{poly: poly.ConstInt(nv, v), coef: make([]int64, nv), c: v}, true
	}
	// Non-unit coefficient with variable rest: exact when every variable
	// coefficient is divisible by |a| (the constant-tile-size pattern:
	// floor((a*w + c)/a) = w + floor(c/a), and symmetrically with ceil).
	coef := make([]int64, nv)
	for i := 0; i < nv; i++ {
		if i == d {
			continue
		}
		ci := r.coef[i]
		if ci%mag != 0 {
			return boundExpr{}, false
		}
		if lower {
			coef[i] = -ci / a // a > 0
		} else {
			coef[i] = ci / -a // a < 0, flip sign
		}
	}
	var c int64
	if lower {
		c = ceilDiv(-r.c, a)
	} else {
		c = floorDiv(r.c, -a)
	}
	p := poly.ConstInt(nv, c)
	for i := 0; i < nv; i++ {
		if coef[i] != 0 {
			p = p.Add(poly.Var(nv, i).ScaleInt(coef[i]))
		}
	}
	return boundExpr{poly: p, coef: coef, c: c}, true
}

// rowRestConst reports whether row r involves no variable other than d.
func rowRestConst(r crow, d int) bool {
	for i, co := range r.coef {
		if i != d && co != 0 {
			return false
		}
	}
	return true
}

// diffRow builds the constraint a - b - strict >= 0 as a crow.
func diffRow(a, b boundExpr, strict int64, nv int) (crow, bool) {
	coef := make([]int64, nv)
	for i := 0; i < nv; i++ {
		coef[i] = a.coef[i] - b.coef[i]
	}
	return crow{kind: GE, coef: coef, c: a.c - b.c - strict}, true
}

// rowToPoly converts +-(rest + c) of an equality row into a polynomial
// (excluding column d); sign is the multiplier applied to (rest + c).
func rowToPoly(r crow, nv, d int, sign int64) poly.Poly {
	p := poly.ConstInt(nv, sign*r.c)
	for i := 0; i < nv; i++ {
		if i == d || r.coef[i] == 0 {
			continue
		}
		p = p.Add(poly.Var(nv, i).ScaleInt(sign * r.coef[i]))
	}
	return p
}

// substituteRows eliminates column d from all rows using equality row eqIdx
// (unit coefficient a on d).
func substituteRows(rows []crow, eqIdx, d int, a int64) []crow {
	eq := rows[eqIdx]
	out := make([]crow, 0, len(rows)-1)
	for i, r := range rows {
		if i == eqIdx {
			continue
		}
		f := r.coef[d]
		if f == 0 {
			out = append(out, r)
			continue
		}
		coef := make([]int64, len(r.coef))
		for j := range coef {
			coef[j] = r.coef[j] - f*a*eq.coef[j]
		}
		coef[d] = 0
		out = append(out, crow{kind: r.kind, coef: coef, c: r.c - f*a*eq.c})
	}
	return out
}

// fixRows substitutes the constant v for column d in all rows.
func fixRows(rows []crow, d int, v int64) []crow {
	out := make([]crow, 0, len(rows))
	for _, r := range rows {
		f := r.coef[d]
		if f == 0 {
			out = append(out, r)
			continue
		}
		coef := append([]int64(nil), r.coef...)
		coef[d] = 0
		out = append(out, crow{kind: r.kind, coef: coef, c: r.c + f*v})
	}
	return out
}
