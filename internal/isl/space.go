// Package isl is a small integer set library for the polyhedral model,
// standing in for isl (Verdoolaege, ICMS 2010) in the PolyUFC flow. It
// provides integer sets and relations bounded by affine constraints, the
// operations the PolyUFC analyses need (intersection, union, difference,
// projection, composition, inversion, lexicographic order, lexmin), and
// exact point counting for the quasi-linear class the paper restricts
// itself to (rectangular domains, constant-size tiling, affine accesses).
//
// Existentially quantified dimensions model integer division and modulo:
// line = floor(a/l) is expressed as l*line <= a <= l*line + l - 1.
package isl

import (
	"fmt"
	"strings"
)

// Space describes the named dimensions of a set or relation. A set has only
// Out dimensions; a relation (map) additionally has In dimensions. Params
// are symbolic constants shared by all dimensions.
type Space struct {
	Params []string
	In     []string
	Out    []string
}

// NewSetSpace returns a set space with the given parameters and dimensions.
func NewSetSpace(params, dims []string) Space {
	return Space{Params: cloneStrings(params), Out: cloneStrings(dims)}
}

// NewMapSpace returns a relation space with the given parameters, input
// (domain) dimensions and output (range) dimensions.
func NewMapSpace(params, in, out []string) Space {
	return Space{Params: cloneStrings(params), In: cloneStrings(in), Out: cloneStrings(out)}
}

func cloneStrings(s []string) []string {
	if len(s) == 0 {
		return nil
	}
	return append([]string(nil), s...)
}

// NumParams returns the number of parameters.
func (s Space) NumParams() int { return len(s.Params) }

// NumIn returns the number of input dimensions.
func (s Space) NumIn() int { return len(s.In) }

// NumOut returns the number of output dimensions.
func (s Space) NumOut() int { return len(s.Out) }

// NumVars returns the total number of set/relation dimensions (in + out).
func (s Space) NumVars() int { return len(s.In) + len(s.Out) }

// NumCols returns the number of coefficient columns (params + vars),
// excluding existentials and the constant.
func (s Space) NumCols() int { return s.NumParams() + s.NumVars() }

// IsMap reports whether the space has input dimensions.
func (s Space) IsMap() bool { return len(s.In) > 0 }

// ParamIndex returns the column index of the named parameter, or -1.
func (s Space) ParamIndex(name string) int {
	for i, p := range s.Params {
		if p == name {
			return i
		}
	}
	return -1
}

// VarIndex returns the column index (relative to the first variable column)
// of the named dimension, searching inputs then outputs, or -1.
func (s Space) VarIndex(name string) int {
	for i, v := range s.In {
		if v == name {
			return i
		}
	}
	for i, v := range s.Out {
		if v == name {
			return len(s.In) + i
		}
	}
	return -1
}

// VarName returns the name of variable i (inputs first, then outputs).
func (s Space) VarName(i int) string {
	if i < len(s.In) {
		return s.In[i]
	}
	return s.Out[i-len(s.In)]
}

// Equal reports whether two spaces have identical dimension lists.
func (s Space) Equal(t Space) bool {
	return eqStrings(s.Params, t.Params) && eqStrings(s.In, t.In) && eqStrings(s.Out, t.Out)
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s Space) String() string {
	var sb strings.Builder
	if len(s.Params) > 0 {
		sb.WriteString("[" + strings.Join(s.Params, ",") + "] -> ")
	}
	if s.IsMap() {
		fmt.Fprintf(&sb, "{[%s] -> [%s]}", strings.Join(s.In, ","), strings.Join(s.Out, ","))
	} else {
		fmt.Fprintf(&sb, "{[%s]}", strings.Join(s.Out, ","))
	}
	return sb.String()
}

// LinExpr is an affine expression over a space's parameters and variables:
// sum(ParamCoef[i] * param_i) + sum(VarCoef[j] * var_j) + Const.
// LinExpr does not reference existential dimensions; constraints gain
// existential columns only when added to a BasicSet.
type LinExpr struct {
	ParamCoef []int64
	VarCoef   []int64
	Const     int64
}

// NewLinExpr returns the zero expression for a space.
func (s Space) NewLinExpr() LinExpr {
	return LinExpr{
		ParamCoef: make([]int64, s.NumParams()),
		VarCoef:   make([]int64, s.NumVars()),
	}
}

// ConstExpr returns the constant expression c for a space.
func (s Space) ConstExpr(c int64) LinExpr {
	e := s.NewLinExpr()
	e.Const = c
	return e
}

// VarExpr returns the expression consisting of variable i.
func (s Space) VarExpr(i int) LinExpr {
	e := s.NewLinExpr()
	e.VarCoef[i] = 1
	return e
}

// ParamExpr returns the expression consisting of parameter i.
func (s Space) ParamExpr(i int) LinExpr {
	e := s.NewLinExpr()
	e.ParamCoef[i] = 1
	return e
}

// Clone returns a deep copy of e.
func (e LinExpr) Clone() LinExpr {
	return LinExpr{
		ParamCoef: append([]int64(nil), e.ParamCoef...),
		VarCoef:   append([]int64(nil), e.VarCoef...),
		Const:     e.Const,
	}
}

// Add returns e + f.
func (e LinExpr) Add(f LinExpr) LinExpr {
	g := e.Clone()
	for i := range f.ParamCoef {
		g.ParamCoef[i] += f.ParamCoef[i]
	}
	for i := range f.VarCoef {
		g.VarCoef[i] += f.VarCoef[i]
	}
	g.Const += f.Const
	return g
}

// Sub returns e - f.
func (e LinExpr) Sub(f LinExpr) LinExpr { return e.Add(f.Neg()) }

// Neg returns -e.
func (e LinExpr) Neg() LinExpr { return e.Scale(-1) }

// Scale returns c * e.
func (e LinExpr) Scale(c int64) LinExpr {
	g := e.Clone()
	for i := range g.ParamCoef {
		g.ParamCoef[i] *= c
	}
	for i := range g.VarCoef {
		g.VarCoef[i] *= c
	}
	g.Const *= c
	return g
}

// AddConst returns e + c.
func (e LinExpr) AddConst(c int64) LinExpr {
	g := e.Clone()
	g.Const += c
	return g
}

// IsConst reports whether e has no parameter or variable terms.
func (e LinExpr) IsConst() bool {
	for _, c := range e.ParamCoef {
		if c != 0 {
			return false
		}
	}
	for _, c := range e.VarCoef {
		if c != 0 {
			return false
		}
	}
	return true
}

// Eval evaluates e at the given parameter and variable values.
func (e LinExpr) Eval(params, vars []int64) int64 {
	v := e.Const
	for i, c := range e.ParamCoef {
		v += c * params[i]
	}
	for i, c := range e.VarCoef {
		v += c * vars[i]
	}
	return v
}

// Format renders e using the space's dimension names.
func (e LinExpr) Format(s Space) string {
	var parts []string
	add := func(c int64, name string) {
		switch c {
		case 0:
		case 1:
			parts = append(parts, name)
		case -1:
			parts = append(parts, "-"+name)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, name))
		}
	}
	for i, c := range e.ParamCoef {
		add(c, s.Params[i])
	}
	for i, c := range e.VarCoef {
		add(c, s.VarName(i))
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			out += " - " + p[1:]
		} else {
			out += " + " + p
		}
	}
	return out
}
