package isl

import (
	"errors"
	"fmt"
)

// ErrEnumLimit is returned when enumeration would exceed the caller's point
// budget.
var ErrEnumLimit = errors.New("isl: enumeration limit exceeded")

// ErrUnbounded is returned when a set has no finite bounds on some
// dimension.
var ErrUnbounded = errors.New("isl: set is unbounded")

// Enumerate yields each distinct integer point of the (parameter-free) set,
// in no particular order, until yield returns false or limit points have
// been produced. Points are deduplicated across the union's basic sets.
func (s Set) Enumerate(limit int, yield func(pt []int64) bool) error {
	if s.Sp.NumParams() != 0 {
		return errors.New("isl: Enumerate requires instantiated parameters")
	}
	seen := map[string]bool{}
	count := 0
	for _, b := range s.Basics {
		if b.markedEmpty {
			continue
		}
		stop, err := b.enumerate(limit, func(pt []int64) bool {
			key := fmt.Sprint(pt)
			if seen[key] {
				return true
			}
			seen[key] = true
			count++
			if count > limit {
				return false
			}
			return yield(pt)
		})
		if err != nil {
			return err
		}
		if stop {
			if count > limit {
				return ErrEnumLimit
			}
			return nil
		}
	}
	return nil
}

// enumerate walks the integer points of one basic set via recursive bound
// propagation. It reports (stopped, error); stopped means yield returned
// false.
func (b BasicSet) enumerate(limit int, yield func(pt []int64) bool) (bool, error) {
	nv := b.Sp.NumVars()
	full := make([]int64, b.totalCols())
	sys := b.buildBoundSystems()
	var rec func(col int) (bool, error)
	rec = func(col int) (bool, error) {
		if col == nv {
			// All dims fixed; verify with existential search.
			if b.searchExists(sys, full, nv) {
				pt := append([]int64(nil), full[:nv]...)
				if !yield(pt) {
					return true, nil
				}
			}
			return false, nil
		}
		lo, hi, ok := sys.colBounds(full, col)
		if !ok {
			return false, nil
		}
		const inf = int64(1) << 61
		if lo < -inf || hi > inf {
			return false, ErrUnbounded
		}
		for v := lo; v <= hi; v++ {
			full[col] = v
			stop, err := rec(col + 1)
			if stop || err != nil {
				return stop, err
			}
		}
		full[col] = 0
		return false, nil
	}
	return rec(0)
}

// CountEnumerate counts the distinct integer points of the set by
// exhaustive enumeration, up to the given budget.
func (s Set) CountEnumerate(limit int) (int64, error) {
	var n int64
	err := s.Enumerate(limit, func([]int64) bool { n++; return true })
	return n, err
}

// IsEmpty reports whether the instantiated set contains no integer point,
// deciding exactly via bounded enumeration (budgeted) with a rational
// pre-check.
func (s Set) IsEmpty(limit int) (bool, error) {
	if s.IsEmptyRational() {
		return true, nil
	}
	found := false
	err := s.Enumerate(limit, func([]int64) bool { found = true; return false })
	if err != nil {
		return false, err
	}
	return !found, nil
}

// LexminPoint returns the lexicographically minimal point of the
// instantiated set, or ok=false if the set is empty. The search descends
// dimension by dimension, testing feasibility of each candidate prefix.
func (s Set) LexminPoint(limit int) (pt []int64, ok bool, err error) {
	if s.Sp.NumParams() != 0 {
		return nil, false, errors.New("isl: LexminPoint requires instantiated parameters")
	}
	var best []int64
	for _, b := range s.Basics {
		cand, found, berr := b.lexmin(limit)
		if berr != nil {
			return nil, false, berr
		}
		if found && (best == nil || lexLess(cand, best)) {
			best = cand
		}
	}
	return best, best != nil, nil
}

func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// LexmaxPoint returns the lexicographically maximal point of the
// instantiated set, or ok=false if the set is empty.
func (s Set) LexmaxPoint(limit int) (pt []int64, ok bool, err error) {
	if s.Sp.NumParams() != 0 {
		return nil, false, errors.New("isl: LexmaxPoint requires instantiated parameters")
	}
	var best []int64
	for _, b := range s.Basics {
		cand, found, berr := b.lexExtreme(limit, false)
		if berr != nil {
			return nil, false, berr
		}
		if found && (best == nil || lexLess(best, cand)) {
			best = cand
		}
	}
	return best, best != nil, nil
}

func (b BasicSet) lexmin(limit int) ([]int64, bool, error) {
	return b.lexExtreme(limit, true)
}

// lexExtreme finds the lexicographic minimum (min=true) or maximum of one
// basic set by per-dimension directed search with feasibility probing.
func (b BasicSet) lexExtreme(limit int, min bool) ([]int64, bool, error) {
	if b.markedEmpty {
		return nil, false, nil
	}
	nv := b.Sp.NumVars()
	full := make([]int64, b.totalCols())
	sys := b.buildBoundSystems()
	budget := limit
	var feasible func(col int) bool
	feasible = func(col int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if col == nv {
			return b.searchExists(sys, full, nv)
		}
		lo, hi, ok := sys.colBounds(full, col)
		if !ok {
			return false
		}
		for v := lo; v <= hi; v++ {
			full[col] = v
			if feasible(col + 1) {
				full[col] = 0
				return true
			}
		}
		full[col] = 0
		return false
	}
	pt := make([]int64, nv)
	for col := 0; col < nv; col++ {
		lo, hi, ok := sys.colBounds(full, col)
		if !ok {
			return nil, false, nil
		}
		found := false
		probe := func(v int64) bool {
			full[col] = v
			if feasible(col + 1) {
				pt[col] = v
				found = true
				return true
			}
			return false
		}
		if min {
			for v := lo; v <= hi && !probe(v); v++ {
			}
		} else {
			for v := hi; v >= lo && !probe(v); v-- {
			}
		}
		if !found {
			return nil, false, nil
		}
		full[col] = pt[col]
		if budget <= 0 {
			return nil, false, ErrEnumLimit
		}
	}
	return pt, true, nil
}
