package isl

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"polyufc/internal/poly"
)

// Piece is one chamber of a parametric count: Count gives the number of
// points as a polynomial in the set's parameters, valid where every Guard
// (a constraint over the parameters) holds. Outside all pieces' guards the
// count is zero. This is the piecewise (quasi-)polynomial form barvinok
// produces, restricted to the polynomial class PolyUFC's kernels need.
type Piece struct {
	Count  poly.Poly
	Guards []ConstraintView
}

// Eval evaluates the piece at concrete parameter values; ok reports
// whether the guards hold there.
func (p Piece) Eval(params []int64) (*big.Rat, bool) {
	for _, g := range p.Guards {
		v := g.Const
		for i, c := range g.Coef {
			v += c * params[i]
		}
		if (g.Kind == EQ && v != 0) || (g.Kind == GE && v < 0) {
			return nil, false
		}
	}
	return p.Count.EvalInt(params), true
}

// Format renders the piece with the given parameter names.
func (p Piece) Format(params []string) string {
	var sb strings.Builder
	sb.WriteString(p.Count.Format(params))
	if len(p.Guards) > 0 {
		sb.WriteString("  if ")
		var parts []string
		for _, g := range p.Guards {
			var terms []string
			for i, c := range g.Coef {
				switch c {
				case 0:
				case 1:
					terms = append(terms, params[i])
				case -1:
					terms = append(terms, "-"+params[i])
				default:
					terms = append(terms, fmt.Sprintf("%d*%s", c, params[i]))
				}
			}
			if g.Const != 0 || len(terms) == 0 {
				terms = append(terms, fmt.Sprint(g.Const))
			}
			parts = append(parts, strings.Join(terms, " + ")+" "+g.Kind.String()+" 0")
		}
		sb.WriteString(strings.Join(parts, " and "))
	}
	return sb.String()
}

// CountSymbolic counts the basic set symbolically in its parameters,
// returning chamber pieces (polynomial + parameter guards). It requires an
// existential-free basic set in the quasi-linear class (unit or divisible
// coefficients on each eliminated dimension). The pieces partition the
// parameter space region where the set is non-empty.
func (b BasicSet) CountSymbolic() ([]Piece, error) {
	if b.markedEmpty {
		return nil, nil
	}
	if b.NExist > 0 {
		elim, exact := b.EliminateExists()
		if !exact {
			return nil, ErrNotCountable
		}
		b = elim
	}
	np := b.Sp.NumParams()
	nd := b.Sp.NumVars()
	nv := np + nd
	rows := make([]crow, 0, len(b.cons))
	for _, c := range b.cons {
		rows = append(rows, crow{kind: c.kind, coef: append([]int64(nil), c.coef...), c: c.c})
	}
	body := poly.ConstInt(nv, 1)
	budget := maxCountNodes
	pieces, err := countSymRec(rows, nv, np, nd, body, 0, &budget)
	if err != nil {
		return nil, err
	}
	// Compress polynomials and guards to the parameter columns.
	out := make([]Piece, 0, len(pieces))
	for _, pc := range pieces {
		cp, err := compressToParams(pc.body, np, nv)
		if err != nil {
			return nil, err
		}
		var guards []ConstraintView
		contradictory := false
		for _, g := range pc.guards {
			for i := np; i < nv; i++ {
				if g.coef[i] != 0 {
					return nil, fmt.Errorf("isl: internal: guard references a dimension")
				}
			}
			gv := ConstraintView{Kind: g.kind, Coef: append([]int64(nil), g.coef[:np]...), Const: g.c}
			if isConstRow(gv.Coef) {
				if (gv.Kind == EQ && gv.Const != 0) || (gv.Kind == GE && gv.Const < 0) {
					contradictory = true
					break
				}
				continue // trivially true
			}
			guards = append(guards, gv)
		}
		if contradictory || cp.IsZero() {
			continue
		}
		out = append(out, Piece{Count: cp, Guards: guards})
	}
	return out, nil
}

func isConstRow(coef []int64) bool {
	for _, c := range coef {
		if c != 0 {
			return false
		}
	}
	return true
}

// compressToParams re-expresses a polynomial over [params|dims] columns in
// the parameter space, verifying no dimension variable survived.
func compressToParams(p poly.Poly, np, nv int) (poly.Poly, error) {
	for i := np; i < nv; i++ {
		if p.DegreeOf(i) > 0 {
			return poly.Poly{}, fmt.Errorf("isl: internal: dimension survived symbolic count")
		}
	}
	out := poly.New(np)
	// Rebuild by evaluating the dim columns at 0: substitute each with 0.
	q := p
	for i := np; i < nv; i++ {
		q = q.SubstPoly(i, poly.ConstInt(nv, 0))
	}
	// Now transfer coefficients.
	out = transferPoly(q, np, nv)
	return out, nil
}

// transferPoly maps a polynomial using only the first np columns of an
// nv-column space into an np-column space.
func transferPoly(p poly.Poly, np, nv int) poly.Poly {
	out := poly.New(np)
	// Enumerate monomials by evaluating coefficients: use Coeff via
	// exponent enumeration up to the polynomial's degree in each var.
	degs := make([]int, np)
	for i := 0; i < np; i++ {
		degs[i] = p.DegreeOf(i)
	}
	var rec func(i int, exps []int)
	rec = func(i int, exps []int) {
		if i == np {
			full := make([]int, nv)
			copy(full, exps)
			c := p.Coeff(full)
			if c.Sign() != 0 {
				mono := poly.Const(np, c)
				for v, e := range exps {
					if e > 0 {
						mono = mono.Mul(poly.Var(np, v).Pow(e))
					}
				}
				out = out.Add(mono)
			}
			return
		}
		for e := 0; e <= degs[i]; e++ {
			exps[i] = e
			rec(i+1, exps)
		}
		exps[i] = 0
	}
	rec(0, make([]int, np))
	return out
}

// symPiece is an internal chamber during recursion.
type symPiece struct {
	body   poly.Poly
	guards []crow
}

// countSymRec mirrors countRec but keeps parameter columns symbolic and
// returns chamber pieces instead of a number.
func countSymRec(rows []crow, nv, np, remaining int, body poly.Poly, depth int, budget *int) ([]symPiece, error) {
	if depth > maxChamberDepth {
		return nil, ErrNotCountable
	}
	*budget--
	if *budget <= 0 {
		return nil, ErrNotCountable
	}
	if remaining == 0 {
		return []symPiece{{body: body, guards: rows}}, nil
	}
	d := np + remaining - 1

	// Equality substitution when possible.
	for i, r := range rows {
		if r.coef[d] == 0 || r.kind != EQ {
			continue
		}
		a := r.coef[d]
		if a == 1 || a == -1 {
			expr := rowToPoly(r, nv, d, -a)
			nrows := substituteRows(rows, i, d, a)
			nbody := body.SubstPoly(d, expr)
			return countSymRec(nrows, nv, np, remaining-1, nbody, depth, budget)
		}
		return nil, ErrNotCountable
	}

	var lowers, uppers []boundExpr
	var rest []crow
	for _, r := range rows {
		a := r.coef[d]
		switch {
		case a == 0:
			rest = append(rest, r)
		case a > 0:
			be, ok := makeBound(r, d, nv, true)
			if !ok {
				return nil, ErrNotCountable
			}
			lowers = append(lowers, be)
		default:
			be, ok := makeBound(r, d, nv, false)
			if !ok {
				return nil, ErrNotCountable
			}
			uppers = append(uppers, be)
		}
	}
	if len(lowers) == 0 || len(uppers) == 0 {
		return nil, ErrUnbounded
	}
	lowers = pruneDominated(lowers, rest, nv, true)
	uppers = pruneDominated(uppers, rest, nv, false)

	var out []symPiece
	for li, L := range lowers {
		for ui, U := range uppers {
			chamber := append([]crow(nil), rest...)
			for j, L2 := range lowers {
				if j == li {
					continue
				}
				strict := int64(0)
				if j < li {
					strict = 1
				}
				row, _ := diffRow(L, L2, strict, nv)
				chamber = append(chamber, row)
			}
			for j, U2 := range uppers {
				if j == ui {
					continue
				}
				strict := int64(0)
				if j < ui {
					strict = 1
				}
				row, _ := diffRow(U2, U, strict, nv)
				chamber = append(chamber, row)
			}
			guard, _ := diffRow(U, L, 0, nv)
			chamber = append(chamber, guard)
			nbody := poly.SumVar(body, d, L.poly, U.poly)
			pieces, err := countSymRec(chamber, nv, np, remaining-1, nbody, depth+1, budget)
			if err != nil {
				return nil, err
			}
			out = append(out, pieces...)
		}
	}
	return out, nil
}

// EvalPieces sums the applicable pieces at concrete parameter values —
// chambers are disjoint, so at most one applies per basic set, but callers
// may hold pieces from several basic sets.
func EvalPieces(pieces []Piece, params []int64) *big.Rat {
	total := new(big.Rat)
	for _, p := range pieces {
		if v, ok := p.Eval(params); ok {
			total.Add(total, v)
		}
	}
	return total
}

// ErrNoParams is returned by CountSymbolic helpers that need parameters.
var ErrNoParams = errors.New("isl: set has no parameters")
