package isl

import (
	"math/big"
	"testing"
)

func TestSymbolicBoxCount(t *testing.T) {
	// {[i,j] : 0 <= i < N, 0 <= j < M}: count = N*M for N,M >= 1.
	sp := NewSetSpace([]string{"N", "M"}, []string{"i", "j"})
	b := Universe(sp)
	b.AddGE(sp.VarExpr(0))
	b.AddGE(sp.ParamExpr(0).Sub(sp.VarExpr(0)).AddConst(-1))
	b.AddGE(sp.VarExpr(1))
	b.AddGE(sp.ParamExpr(1).Sub(sp.VarExpr(1)).AddConst(-1))
	pieces, err := b.CountSymbolic()
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	for _, nm := range [][2]int64{{1, 1}, {5, 7}, {100, 3}} {
		got := EvalPieces(pieces, nm[:])
		want := big.NewRat(nm[0]*nm[1], 1)
		if got.Cmp(want) != 0 {
			t.Fatalf("count(%v) = %s, want %s", nm, got.RatString(), want.RatString())
		}
	}
	// Formula must literally be N*M.
	if s := pieces[0].Count.Format([]string{"N", "M"}); s != "N*M" {
		t.Fatalf("formula = %q", s)
	}
}

func TestSymbolicTriangleCount(t *testing.T) {
	// {[i,j] : 0 <= i < N, 0 <= j <= i}: N(N+1)/2.
	sp := NewSetSpace([]string{"N"}, []string{"i", "j"})
	b := Universe(sp)
	b.AddGE(sp.VarExpr(0))
	b.AddGE(sp.ParamExpr(0).Sub(sp.VarExpr(0)).AddConst(-1))
	b.AddGE(sp.VarExpr(1))
	b.AddGE(sp.VarExpr(0).Sub(sp.VarExpr(1)))
	pieces, err := b.CountSymbolic()
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(1); n <= 30; n++ {
		got := EvalPieces(pieces, []int64{n})
		want := big.NewRat(n*(n+1)/2, 1)
		if got.Cmp(want) != 0 {
			t.Fatalf("count(%d) = %s, want %s", n, got.RatString(), want.RatString())
		}
	}
}

func TestSymbolicMatchesInstantiated(t *testing.T) {
	// Cross-validate the parametric count against instantiate-then-count
	// for a clipped band: {[i,j]: 0<=i<N, i-2 <= j <= i+2, 0<=j<N}.
	sp := NewSetSpace([]string{"N"}, []string{"i", "j"})
	b := Universe(sp)
	b.AddGE(sp.VarExpr(0))
	b.AddGE(sp.ParamExpr(0).Sub(sp.VarExpr(0)).AddConst(-1))
	b.AddGE(sp.VarExpr(1).Sub(sp.VarExpr(0)).AddConst(2)) // j >= i-2
	b.AddGE(sp.VarExpr(0).Sub(sp.VarExpr(1)).AddConst(2)) // j <= i+2
	b.AddGE(sp.VarExpr(1))
	b.AddGE(sp.ParamExpr(0).Sub(sp.VarExpr(1)).AddConst(-1))
	pieces, err := b.CountSymbolic()
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) < 2 {
		t.Fatalf("expected chamber split for the clipped band, got %d pieces", len(pieces))
	}
	for n := int64(1); n <= 25; n++ {
		inst := FromBasic(b).InstantiateParams([]int64{n})
		want, err := inst.CountInt(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		got := EvalPieces(pieces, []int64{n})
		if !got.IsInt() || got.Num().Int64() != want {
			t.Fatalf("count(%d) = %s, want %d", n, got.RatString(), want)
		}
	}
}

func TestSymbolicEmptyGuard(t *testing.T) {
	// {[i] : 5 <= i < N}: count = N-5 valid only when N >= 6; at N = 3 the
	// guards must exclude the piece.
	sp := NewSetSpace([]string{"N"}, []string{"i"})
	b := Universe(sp)
	b.AddGE(sp.VarExpr(0).AddConst(-5))
	b.AddGE(sp.ParamExpr(0).Sub(sp.VarExpr(0)).AddConst(-1))
	pieces, err := b.CountSymbolic()
	if err != nil {
		t.Fatal(err)
	}
	if got := EvalPieces(pieces, []int64{3}); got.Sign() != 0 {
		t.Fatalf("count(3) = %s, want 0", got.RatString())
	}
	if got := EvalPieces(pieces, []int64{12}); got.Cmp(big.NewRat(7, 1)) != 0 {
		t.Fatalf("count(12) = %s, want 7", got.RatString())
	}
}

func TestSymbolicGemmFlopsFormula(t *testing.T) {
	// The flop count of gemm's update statement is 2*N^3 — 2x the domain
	// cardinality of the cube {0<=i,j,k<N}.
	sp := NewSetSpace([]string{"N"}, []string{"i", "j", "k"})
	b := Universe(sp)
	for d := 0; d < 3; d++ {
		b.AddGE(sp.VarExpr(d))
		b.AddGE(sp.ParamExpr(0).Sub(sp.VarExpr(d)).AddConst(-1))
	}
	pieces, err := b.CountSymbolic()
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	if s := pieces[0].Count.Format([]string{"N"}); s != "N^3" {
		t.Fatalf("formula = %q", s)
	}
}

func TestSymbolicRejectsExistentialApprox(t *testing.T) {
	// A set whose existential cannot be eliminated exactly must error
	// rather than return a wrong formula.
	sp := NewSetSpace([]string{"N"}, []string{"i"})
	b := Universe(sp)
	b.AddRange(0, 0, 31)
	q := b.AddExists(1)
	row := make([]int64, b.Sp.NumCols()+1)
	row[sp.NumParams()] = 1 // i
	row[q] = -3             // i = 3q -> multiples of 3
	b.AddRawEQ(row, 0)
	if _, err := b.CountSymbolic(); err == nil {
		t.Fatal("expected ErrNotCountable for modulo set")
	}
}
