package experiments

import (
	"fmt"
	"strconv"
	"time"

	"polyufc/internal/cachemodel"
	"polyufc/internal/core"
	"polyufc/internal/hw"
	"polyufc/internal/interp"
	"polyufc/internal/ir"
	"polyufc/internal/lower"
	"polyufc/internal/workloads"
)

// RenderTab1 prints the calibrated roofline constants of Table I.
func (s *Suite) RenderTab1() error {
	s.printf("== Tab. I: performance/power roofline constants (one-time microbenchmarks) ==\n")
	for _, p := range s.plats {
		c := s.Constants(p.Name)
		s.printf("-- %s\n", p.Name)
		s.printf("   t_FPU       %.4g s/flop  (peak %.1f GF/s)\n", c.TFpu, c.PeakGFlops)
		s.printf("   t_byte      %.4g s/B     (peak %.1f GB/s at f_max)\n", c.TByteMax, c.PeakGBs)
		s.printf("   B^t_DRAM    %.2f FpB (time balance; CB/BB boundary)\n", c.BtDRAM)
		s.printf("   B^e_DRAM    %.2f (energy balance)\n", c.BeDRAM)
		s.printf("   e_FPU       %.4g J/flop   p^_FPU %.1f W\n", c.EFpu, c.PFpuHat)
		s.printf("   e_byte      %.4g J/B      p^_byte(f_max) %.1f W\n", c.EByte, c.PByteHat)
		s.printf("   p_con       %.1f W\n", c.PCon)
		s.printf("   M^t(f)      %.4g/f + %.4g s/B (R^2 %.4f)\n", c.MissLatA, c.MissLatB, c.MissLatR2)
		s.printf("   kappa(f)    (%.4g*f + %.4g) W per B/s (R^2 %.4f), idle %.2f W/GHz\n",
			c.AlphaP, c.GammaP, c.PowerR2, c.IdleWPerGHz)
		s.printf("   P^_DRAM(f)  %.2f*f + %.2f W\n", c.PhatAlpha, c.PhatGamma)
		s.printf("   H_ci        %v s/access\n", c.HitLatency)
	}
	return nil
}

// RenderTab2 prints the benchmark inventory of Table II.
func (s *Suite) RenderTab2() error {
	s.printf("== Tab. II: benchmarks ==\n")
	s.printf("   %-18s %-10s %-12s %s\n", "kernel", "suite", "category", "paper problem size")
	for _, k := range workloads.All() {
		s.printf("   %-18s %-10s %-12s %s\n", k.Name, k.Suite, k.Category, k.PaperSize)
	}
	return nil
}

// RenderTab3 prints the platform table of Table III.
func (s *Suite) RenderTab3() error {
	s.printf("== Tab. III: microarchitectures ==\n")
	s.printf("   %-5s %-26s %9s %11s %13s %10s\n",
		"arch", "CPU", "released", "core (GHz)", "uncore (GHz)", "cap step")
	for _, p := range s.plats {
		// Shortest representation so sub-0.1 grids (0.05) don't round to 0.1.
		step := strconv.FormatFloat(p.CapStep, 'f', -1, 64)
		s.printf("   %-5s %-26s %9d %5.1f-%-5.1f %6.1f-%-6.1f %7s GHz\n",
			p.Name, p.CPU, p.Released, p.CoreMin, p.CoreMax, p.UncoreMin, p.UncoreMax, step)
	}
	for _, p := range s.plats {
		s.printf("   %s caches:", p.Name)
		for _, l := range p.Cache.Levels {
			s.printf(" %s %dKiB/%d-way", l.Name, l.SizeBytes>>10, l.Ways())
		}
		s.printf("\n")
	}
	return nil
}

// Tab4Row is one kernel's compile-time breakdown.
type Tab4Row struct {
	Kernel  string
	Timings core.Timings
}

// Tab4 measures the PolyUFC compile-time breakdown per kernel (Table IV)
// on the BDW cache configuration, as in the paper.
func (s *Suite) Tab4(kernels []string) ([]Tab4Row, error) {
	p := s.plats[0] // BDW per the table caption
	var out []Tab4Row
	for _, name := range kernels {
		k, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		mod, err := k.Build(s.Size)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(s.targets[p.Name])
		res, err := core.Compile(mod, cfg)
		if err != nil {
			return nil, fmt.Errorf("tab4 %s: %w", name, err)
		}
		out = append(out, Tab4Row{Kernel: name, Timings: res.Timings})
	}
	return out, nil
}

// RenderTab4 prints the compile-time breakdown over the full suite.
func (s *Suite) RenderTab4() error {
	var names []string
	for _, k := range workloads.All() {
		names = append(names, k.Name)
	}
	rows, err := s.Tab4(names)
	if err != nil {
		return err
	}
	s.printf("== Tab. IV: compile-time breakdown (BDW cache config, ms) ==\n")
	s.printf("   %-18s %10s %10s %12s %10s %10s\n",
		"kernel", "preprocess", "pluto", "polyufc-cm", "steps4-6", "total")
	for _, r := range rows {
		s.printf("   %-18s %10.2f %10.2f %12.2f %10.2f %10.2f\n",
			r.Kernel,
			ms(r.Timings.Preprocess), ms(r.Timings.Pluto),
			ms(r.Timings.CM), ms(r.Timings.Steps46), ms(r.Timings.Total()))
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// OverheadResult is the Sec. VII-F cap-switch overhead study.
type OverheadResult struct {
	Platform    string
	PerSwitch   time.Duration
	Kernels     int
	CapSwitches int64
	Cumulative  time.Duration
	RunTime     time.Duration
}

// Overhead runs the multi-kernel sdpa (GEMMA2) benchmark and reports the
// inter-kernel cap overhead. The profitability gate is disabled so every
// kernel carries its own cap, as in the paper's Sec. VII-F measurement.
func (s *Suite) Overhead(p *hw.Platform) (*OverheadResult, error) {
	cfg := core.DefaultConfig(s.targets[p.Name])
	cfg.AmortizeFactor = 0
	res, err := s.compileCfg("sdpa-gemma2", p, cfg)
	if err != nil {
		return nil, err
	}
	m := s.machine(p)
	run, err := m.RunFunc(res.Module.Funcs[0])
	if err != nil {
		return nil, err
	}
	return &OverheadResult{
		Platform:    p.Name,
		PerSwitch:   time.Duration(p.CapLatency * 1e9),
		Kernels:     len(res.Reports),
		CapSwitches: m.CapSwitches(),
		Cumulative:  time.Duration(float64(m.CapSwitches()) * p.CapLatency * 1e9),
		RunTime:     time.Duration(run.Seconds * 1e9),
	}, nil
}

// RenderOverhead prints the overhead study for both platforms.
func (s *Suite) RenderOverhead() error {
	s.printf("== Sec. VII-F: inter-kernel cap overhead (sdpa GEMMA2) ==\n")
	for _, p := range s.plats {
		r, err := s.Overhead(p)
		if err != nil {
			return err
		}
		s.printf("   %s: %d kernels, %d cap switches x %v = %v cumulative (run %v)\n",
			r.Platform, r.Kernels, r.CapSwitches, r.PerSwitch, r.Cumulative, r.RunTime)
	}
	return nil
}

// DedupResult is the footnote-17 duplicate-elimination study.
type DedupResult struct {
	Kernel          string
	BasicsWith      int
	BasicsWithout   int
	TimeWith        time.Duration
	TimeWithout     time.Duration
	Speedup         float64
	PairCountsEqual bool
}

// Dedup measures reuse-pair construction and counting with and without
// duplicate elimination for one kernel's first statement.
func (s *Suite) Dedup(kernelName string) (*DedupResult, error) {
	k, err := workloads.ByName(kernelName)
	if err != nil {
		return nil, err
	}
	mod, err := k.Build(workloads.Test)
	if err != nil {
		return nil, err
	}
	if err := lower.TorchToLinalg(mod); err != nil {
		return nil, err
	}
	if err := lower.LinalgToAffine(mod); err != nil {
		return nil, err
	}
	var nest *ir.Nest
	var maxAcc int
	for _, op := range mod.Funcs[0].Ops {
		if n, ok := op.(*ir.Nest); ok {
			for _, si := range n.Statements() {
				if len(si.Stmt.Accesses) > maxAcc {
					maxAcc = len(si.Stmt.Accesses)
					nest = n
				}
			}
		}
	}
	if nest == nil {
		return nil, fmt.Errorf("dedup: no nest in %s", kernelName)
	}
	// Reuse-pair relations are quadratic in the iteration count; shrink
	// the domain so exhaustive pair counting stays tractable (the study
	// measures the structural effect of duplicate elimination, which is
	// size-independent).
	shrinkNest(nest, 9)
	si := nest.Statements()[0]
	layout := interp.NewLayout(nest.Operands())
	const budget = 1 << 22

	run := func(dedup bool) (int, int64, time.Duration, error) {
		start := time.Now()
		u, nb, err := cachemodel.ReusePairUnion(si, layout.Base, 64, 64, dedup)
		if err != nil {
			return 0, 0, 0, err
		}
		n, err := cachemodel.CountReusePairs(u, budget)
		if err != nil {
			return 0, 0, 0, err
		}
		return nb, n, time.Since(start), nil
	}
	nbW, cntW, tW, err := run(true)
	if err != nil {
		return nil, err
	}
	nbWo, cntWo, tWo, err := run(false)
	if err != nil {
		return nil, err
	}
	sp := 1.0
	if tW > 0 {
		sp = float64(tWo) / float64(tW)
	}
	return &DedupResult{
		Kernel:          kernelName,
		BasicsWith:      nbW,
		BasicsWithout:   nbWo,
		TimeWith:        tW,
		TimeWithout:     tWo,
		Speedup:         sp,
		PairCountsEqual: cntW == cntWo,
	}, nil
}

// shrinkNest clamps every constant upper loop bound so each loop runs at
// most max iterations.
func shrinkNest(nest *ir.Nest, max int64) {
	nest.WalkLoops(func(l *ir.Loop, _ int) {
		for i, b := range l.Hi {
			if len(b.Expr.Coef) == 0 && b.Div == 1 && b.Expr.Const > max-1 {
				l.Hi[i] = ir.BExpr(ir.AffConst(max - 1))
			}
		}
	})
}

// RenderDedup prints the study over a few reuse-heavy kernels.
func (s *Suite) RenderDedup() error {
	s.printf("== fn. 17: reuse-pair duplicate elimination ==\n")
	s.printf("   %-10s basics(dedup/raw)  time(dedup/raw)  speedup  counts-equal\n", "kernel")
	total, n := 0.0, 0
	for _, name := range []string{"gemm", "2mm", "syrk", "mvt"} {
		r, err := s.Dedup(name)
		if err != nil {
			return err
		}
		s.printf("   %-10s %7d / %-7d  %8v / %-8v  %5.2fx  %v\n",
			r.Kernel, r.BasicsWith, r.BasicsWithout, r.TimeWith.Round(time.Microsecond),
			r.TimeWithout.Round(time.Microsecond), r.Speedup, r.PairCountsEqual)
		total += r.Speedup
		n++
	}
	s.printf("   mean speedup: %.2fx\n", total/float64(n))
	return nil
}
