package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"polyufc/internal/journal"
	"polyufc/internal/workloads"
)

// openJournal opens a journal for a suite, failing the test on error.
func openJournal(t *testing.T, path string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// The acceptance scenario: a journaled sweep killed mid-run and restarted
// with -resume replays the completed (kernel, frequency) entries instead
// of re-evaluating them, and the rendered figures are byte-identical to an
// uninterrupted run.
func TestJournaledSweepResumesByteIdentical(t *testing.T) {
	ids := []string{"fig1", "fig7"}
	baseline, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, baseline, ids...)

	// Uninterrupted journaled run: same bytes, journal fully populated.
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.jsonl")
	full, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	full.Journal = openJournal(t, fullPath)
	if got := renderAll(t, full, ids...); !bytes.Equal(want, got) {
		t.Fatal("journaled run differs from unjournaled run")
	}
	st := full.Journal.Stats()
	if st.Entries == 0 || st.Appended != int64(st.Entries) {
		t.Fatalf("full run journal stats %+v", st)
	}

	// Simulate the crash: keep roughly half the journal lines (plus a torn
	// tail the reopened journal must drop) and restart from it.
	data, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	half := lines[: len(lines)/2 : len(lines)/2]
	truncated := append(bytes.Join(half, nil), []byte(`{"key":"fig1/torn`)...)
	crashPath := filepath.Join(dir, "crash.jsonl")
	if err := os.WriteFile(crashPath, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Journal = openJournal(t, crashPath)
	preloaded := resumed.Journal.Len()
	if preloaded == 0 || preloaded >= st.Entries {
		t.Fatalf("truncation produced %d of %d entries", preloaded, st.Entries)
	}
	if resumed.Journal.Stats().Dropped != 1 {
		t.Fatalf("torn tail not dropped: %+v", resumed.Journal.Stats())
	}
	if got := renderAll(t, resumed, ids...); !bytes.Equal(want, got) {
		t.Fatal("resumed run differs from uninterrupted run")
	}
	rst := resumed.Journal.Stats()
	if rst.Replayed == 0 {
		t.Fatal("resume re-evaluated every unit: no replays")
	}
	if rst.Appended != int64(st.Entries-preloaded) {
		t.Fatalf("resume recomputed %d units, want exactly the missing %d",
			rst.Appended, st.Entries-preloaded)
	}
	if rst.Entries != st.Entries {
		t.Fatalf("resumed journal holds %d entries, full run had %d", rst.Entries, st.Entries)
	}
}

// A second run over a complete journal replays everything: zero appends,
// same bytes — the figure renders purely from checkpoints.
func TestJournaledSweepFullReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	first, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	first.Journal = openJournal(t, path)
	want := renderAll(t, first, "fig1")
	entries := first.Journal.Len()
	if entries == 0 {
		t.Fatal("no journal entries written")
	}

	second, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	second.Journal = openJournal(t, path)
	got := renderAll(t, second, "fig1")
	if !bytes.Equal(want, got) {
		t.Fatal("full replay differs from original run")
	}
	st := second.Journal.Stats()
	if st.Appended != 0 {
		t.Fatalf("full replay still recomputed %d units", st.Appended)
	}
	if st.Replayed == 0 {
		t.Fatal("no replays counted")
	}
	// Replay never touched the compiler: every point came from the journal.
	if _, misses := second.CacheStats(); misses != 0 {
		t.Fatalf("full replay compiled %d kernels", misses)
	}
}
