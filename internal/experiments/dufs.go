package experiments

import (
	"polyufc/internal/hw"
)

// DUFSRow compares PolyUFC's static inter-kernel capping against a
// reactive DUFS runtime and the pinned-max baseline for one kernel
// (Sec. VII-F: "inter-kernel uncore capping achieves equivalent or better
// performance than intra-kernel core/uncore DVFS/DUS").
type DUFSRow struct {
	Kernel   string
	Platform string
	// Seconds / Joules / EDP per strategy.
	Base, DUFS, PolyUFC hw.RunResult
	// Improvement of PolyUFC over DUFS in EDP (positive = PolyUFC wins).
	PolyUFCvsDUFS float64
}

// DUFSComparison runs the three strategies over the given kernels.
func (s *Suite) DUFSComparison(p *hw.Platform, kernels []string) ([]DUFSRow, error) {
	var out []DUFSRow
	for _, name := range kernels {
		res, err := s.compile(name, p)
		if err != nil {
			return nil, err
		}
		m := s.machine(p)
		var profs []*hw.CacheProfile
		for _, nest := range nestsOf(res.Module) {
			prof, err := m.Profile(nest)
			if err != nil {
				return nil, err
			}
			profs = append(profs, prof)
		}
		// Repeat to ~50 ms of steady-state work so the DUFS control loop
		// (10 ms interval) actually engages and cap overheads amortize.
		var oneShot float64
		m.SetUncoreCap(p.UncoreMax)
		for _, prof := range profs {
			oneShot += m.Measure(prof).Seconds
		}
		reps := 1
		if oneShot > 0 {
			reps = int(0.050/oneShot) + 1
		}
		if reps > 2000 {
			reps = 2000
		}
		repProfs := make([]*hw.CacheProfile, 0, reps*len(profs))
		for r := 0; r < reps; r++ {
			repProfs = append(repProfs, profs...)
		}

		// Baseline: pinned at max.
		var base hw.RunResult
		m.SetUncoreCap(p.UncoreMax)
		for _, prof := range repProfs {
			r := m.Measure(prof)
			base.Seconds += r.Seconds
			base.PkgJoules += r.PkgJoules
		}
		base.EDP = base.PkgJoules * base.Seconds

		// DUFS: reactive governor over the same stream.
		g := hw.DefaultDUFS()
		dufs := g.RunNests(s.machine(p), repProfs)

		// PolyUFC: the compiled program repeated.
		mPU := s.machine(p)
		var capped hw.RunResult
		for r := 0; r < reps; r++ {
			run, err := mPU.RunFunc(res.Module.Funcs[0])
			if err != nil {
				return nil, err
			}
			capped.Seconds += run.Seconds
			capped.PkgJoules += run.PkgJoules
		}
		capped.EDP = capped.PkgJoules * capped.Seconds

		row := DUFSRow{
			Kernel: name, Platform: p.Name,
			Base: base, DUFS: dufs, PolyUFC: capped,
		}
		if dufs.EDP > 0 {
			row.PolyUFCvsDUFS = 1 - capped.EDP/dufs.EDP
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderDUFS prints the comparison for both platforms.
func (s *Suite) RenderDUFS() error {
	s.printf("== Sec. VII-F: static capping vs reactive DUFS governor ==\n")
	kernels := []string{"gemm", "mvt", "jacobi-1d"}
	for _, p := range s.plats {
		rows, err := s.DUFSComparison(p, kernels)
		if err != nil {
			return err
		}
		s.printf("-- %s (EDP in mJ*s; lower is better)\n", p.Name)
		s.printf("   %-12s %12s %12s %12s | polyufc vs dufs\n", "kernel", "pinned-max", "dufs", "polyufc")
		for _, r := range rows {
			s.printf("   %-12s %12.4f %12.4f %12.4f | %+5.1f%%\n",
				r.Kernel, r.Base.EDP*1e3, r.DUFS.EDP*1e3, r.PolyUFC.EDP*1e3,
				100*r.PolyUFCvsDUFS)
		}
	}
	return nil
}
