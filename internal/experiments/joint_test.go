package experiments

import "testing"

func TestJointNeverLosesToUncoreOnly(t *testing.T) {
	s := suite(t)
	for _, p := range s.Platforms() {
		rows, err := s.Joint(p, []string{"gemm", "mvt"})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.BaseEDP <= 0 || r.UncoreOnlyEDP <= 0 || r.JointEDP <= 0 {
				t.Fatalf("%s/%s: bad EDPs %+v", p.Name, r.Kernel, r)
			}
			// The joint optimum includes the uncore-only point in its
			// search space; measured results may deviate slightly from
			// the model's ranking, so allow small noise.
			if r.JointExtraGain < -0.03 {
				t.Fatalf("%s/%s: joint loses %.1f%% to uncore-only",
					p.Name, r.Kernel, -100*r.JointExtraGain)
			}
			// Frequencies must be on the grids.
			if r.JointCoreGHz < p.CoreMin || r.JointCoreGHz > p.CoreMax {
				t.Fatalf("%s/%s: core %.1f out of range", p.Name, r.Kernel, r.JointCoreGHz)
			}
			if r.JointUncoreGHz < p.UncoreMin || r.JointUncoreGHz > p.UncoreMax {
				t.Fatalf("%s/%s: uncore %.1f out of range", p.Name, r.Kernel, r.JointUncoreGHz)
			}
		}
	}
}
