package experiments

import (
	"math"
	"path/filepath"
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/platform"
	"polyufc/internal/workloads"
)

// A backend added purely as a JSON description — no Go changes — runs the
// whole flow: registry load, roofline calibration (characterize), PolyUFC
// compilation with cap search, and execution on the simulated machine.
func TestFileBackendEndToEnd(t *testing.T) {
	b, err := platform.LoadFile(filepath.Join("..", "..", "platforms", "wide-uncore.json"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Paper {
		t.Fatal("synthetic backend must not join the paper set")
	}

	s, err := NewBackends(workloads.Bench, nil, []*platform.Backend{b})
	if err != nil {
		t.Fatal(err)
	}

	// Characterize: the roofline calibrated from the description alone.
	c := s.Constants(b.Name)
	if c == nil || c.PeakGFlops <= 0 || c.PeakGBs <= 0 || c.BtDRAM <= 0 {
		t.Fatalf("calibration incomplete: %+v", c)
	}
	tg := s.Target(b.Name)
	if tg.Calibration == nil || tg.Calibration.BackendHash != b.Hash() {
		t.Fatalf("target carries no pinned calibration: %+v", tg.Calibration)
	}
	if c.CalibThreads != b.Threads {
		t.Fatalf("CalibThreads = %d, want the description's %d", c.CalibThreads, b.Threads)
	}

	// Compile + search: caps must land on the backend's wide 0.05 GHz grid.
	p := s.Platforms()[0]
	if p.Name != b.Name {
		t.Fatalf("suite platform = %s", p.Name)
	}
	res, err := s.compile("mvt", p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapsInserted == 0 || len(res.Reports) == 0 {
		t.Fatalf("no caps selected: %+v", res)
	}
	for _, r := range res.Reports {
		if r.CapGHz < p.UncoreMin-1e-9 || r.CapGHz > p.UncoreMax+1e-9 {
			t.Fatalf("%s: cap %.3f outside [%.2f, %.2f]", r.Label, r.CapGHz, p.UncoreMin, p.UncoreMax)
		}
		steps := (r.CapGHz - p.UncoreMin) / p.CapStep
		if math.Abs(steps-math.Round(steps)) > 1e-6 {
			t.Fatalf("%s: cap %.3f is off the %.2f GHz grid", r.Label, r.CapGHz, p.CapStep)
		}
	}

	// Execute on the simulated machine: the capped program beats the
	// driver-default baseline on EDP, as on the paper machines.
	m := s.machine(p)
	var baseline hw.RunResult
	m.SetUncoreCap(p.UncoreMax)
	for _, op := range res.Module.Funcs[0].Ops {
		if nest, ok := op.(*ir.Nest); ok {
			r, err := m.RunNest(nest)
			if err != nil {
				t.Fatal(err)
			}
			baseline.Seconds += r.Seconds
			baseline.PkgJoules += r.PkgJoules
		}
	}
	baseline.EDP = baseline.PkgJoules * baseline.Seconds
	capped, err := m.RunFunc(res.Module.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if capped.EDP >= baseline.EDP {
		t.Fatalf("no EDP gain on the synthetic backend: capped %.6g vs baseline %.6g",
			capped.EDP, baseline.EDP)
	}
}
