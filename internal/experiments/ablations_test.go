package experiments

import "testing"

func TestTileSizeSweep(t *testing.T) {
	s := suite(t)
	rows, err := s.TileSizeSweep(s.Platforms()[0], "gemm", []int64{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.L1Misses <= 0 || r.EDP <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.CapGHz < s.Platforms()[0].UncoreMin || r.CapGHz > s.Platforms()[0].UncoreMax {
			t.Fatalf("cap out of range: %+v", r)
		}
	}
}

func TestValidationErrorsBounded(t *testing.T) {
	s := suite(t)
	rows, err := s.Validate(s.Platforms()[1], []string{"gemm", "mvt", "atax"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HWSec <= 0 || r.HWJ <= 0 {
			t.Fatalf("%s: bad measurement", r.Kernel)
		}
		// The Sec. V estimates must track the machine within 50% for the
		// regular (non-time-loop) kernels at any size.
		if r.TimeErr > 0.5 || r.EnergyErr > 0.5 {
			t.Fatalf("%s: model error time %.0f%% energy %.0f%%",
				r.Kernel, 100*r.TimeErr, 100*r.EnergyErr)
		}
	}
}
