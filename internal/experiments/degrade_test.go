package experiments

import (
	"bytes"
	"strings"
	"testing"

	"polyufc/internal/core"
	"polyufc/internal/faults"
	"polyufc/internal/workloads"
)

// A sweep containing one unresolvable kernel dies under Strict and yields
// a degradation summary line under BestEffort.
func TestFig7SweepToleratesFailingKernel(t *testing.T) {
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Platforms()[0]
	kernels := []string{"gemm", "no-such-kernel", "mvt"}

	if _, err := s.Fig7(p, kernels); err == nil {
		t.Fatal("strict sweep survived an unknown kernel")
	}

	var out bytes.Buffer
	s.Out = &out
	s.Degrade = core.BestEffort
	rows, err := s.Fig7(p, kernels)
	if err != nil {
		t.Fatalf("best-effort sweep died: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Degraded || rows[2].Degraded {
		t.Fatal("healthy kernels degraded")
	}
	if !rows[1].Degraded {
		t.Fatal("failing kernel not marked degraded")
	}
	if rows[0].BaselineEDP <= 0 || rows[2].BaselineEDP <= 0 {
		t.Fatal("healthy rows not measured")
	}
	// The geomean skips the degraded row instead of poisoning the figure.
	if g := GeomeanEDPGain(rows); g == 0 {
		t.Fatal("geomean dropped the healthy rows")
	}
	s.renderDegraded()
	if !strings.Contains(out.String(), "degraded (best-effort): no-such-kernel") {
		t.Fatalf("no degradation summary in output:\n%s", out.String())
	}
}

// A poisoned nest inside one kernel degrades that compilation per nest
// while the sweep and the other kernels stay intact end to end.
func TestSuiteBestEffortWithInjectedCompilerFault(t *testing.T) {
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Degrade = core.BestEffort
	s.Concurrency = 1 // deterministic injection ordering
	s.Faults = faults.New(11)
	s.Faults.Enable(core.FaultCacheModel, faults.Spec{On: []int64{1}})
	p := s.Platforms()[1]
	rows, err := s.Fig7(p, []string{"gemm", "mvt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Degraded {
			t.Fatalf("%s: whole kernel dropped; the poison hits one nest only", r.Kernel)
		}
		if r.BaselineEDP <= 0 {
			t.Fatalf("%s: not measured", r.Kernel)
		}
	}
	if s.Faults.Fired(core.FaultCacheModel) != 1 {
		t.Fatalf("fault fired %d times", s.Faults.Fired(core.FaultCacheModel))
	}
}

// With faults armed the compile cache is bypassed, so injection state
// never leaks into memoized results.
func TestFaultsBypassCompileCache(t *testing.T) {
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Faults = faults.New(1)
	p := s.Platforms()[0]
	if _, err := s.compile("gemm", p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.compile("gemm", p); err != nil {
		t.Fatal(err)
	}
	if hits, misses := s.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("cache touched while faults armed: %d hits, %d misses", hits, misses)
	}
	// Disarmed, the cache works as before.
	s.Faults = nil
	if _, err := s.compile("gemm", p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.compile("gemm", p); err != nil {
		t.Fatal(err)
	}
	if hits, misses := s.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats after disarm: %d hits, %d misses", hits, misses)
	}
}
