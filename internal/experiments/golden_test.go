package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"polyufc/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/*.golden from the current renderer output")

// goldenIDs are the deterministic renderers captured byte-for-byte from the
// serial seed implementation. Tab. IV is excluded: it prints wall-clock
// compile times.
var goldenIDs = []string{"fig1", "fig6", "fig7", "tab1", "tab2", "tab3"}

// renderGolden runs one experiment at Test size on a fresh suite and
// returns the rendered bytes.
func renderGolden(t *testing.T, s *Suite, id string) []byte {
	t.Helper()
	var buf bytes.Buffer
	prev := s.Out
	s.Out = &buf
	defer func() { s.Out = prev }()
	if err := s.Run(id); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.Bytes()
}

func goldenPath(id string) string {
	return filepath.Join("testdata", id+".golden")
}

// TestGoldenRenderers asserts every deterministic renderer reproduces the
// serial seed output exactly. Run with -update to re-capture.
func TestGoldenRenderers(t *testing.T) {
	s := suite(t)
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			got := renderGolden(t, s, id)
			path := goldenPath(id)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./internal/experiments -run TestGoldenRenderers -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s output diverged from golden (%d vs %d bytes); run with -update if the change is intended",
					id, len(got), len(want))
			}
		})
	}
}

// TestGoldenFreshSuite renders the goldens on a second, freshly calibrated
// suite: the capture must not depend on suite construction order or state
// accumulated by earlier tests.
func TestGoldenFreshSuite(t *testing.T) {
	if *updateGolden {
		t.Skip("capturing goldens")
	}
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range goldenIDs {
		got := renderGolden(t, s, id)
		want, err := os.ReadFile(goldenPath(id))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: fresh suite output differs from golden", id)
		}
	}
}
