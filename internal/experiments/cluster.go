package experiments

import (
	"fmt"

	"polyufc/internal/core"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
)

// ClusterRow is one kernel's topology answer on a multi-socket backend:
// the per-socket cap vector the compiler selected, the node-level
// makespan and energy it predicts, and the cluster EDP rollup swept over
// node counts. Cluster EDP is linear in the node count on both sides of
// the comparison (N replicas spend N times the energy over the same BSP
// step time), so the capped-vs-default gain is N-invariant — the sweep
// shows the absolute scale, the gain column the win.
type ClusterRow struct {
	Kernel  string
	Sockets int
	// SocketCaps is the per-socket uncore cap vector in force when the
	// module finishes (the last nest's vector).
	SocketCaps []float64
	// NodeSeconds / NodeJoules are one node's predicted makespan and
	// energy at the selected caps.
	NodeSeconds float64
	NodeJoules  float64
	// ClusterEDP[i] / ClusterEDPDefault[i] are the rollups at Nodes[i]
	// replicas, at the selected caps and at the driver default.
	Nodes             []int
	ClusterEDP        []float64
	ClusterEDPDefault []float64
	// GainPct is the N-invariant cluster EDP improvement of the selected
	// cap vector over the driver default.
	GainPct float64
}

// clusterNodeCounts is the node-count sweep of the cluster experiment.
var clusterNodeCounts = []int{1, 2, 4, 8, 16}

// clusterKernels are the kernels the cluster experiment compiles: the
// paper's dense/bandwidth/latency mix.
var clusterKernels = []string{"gemm", "mvt", "bicg", "jacobi-1d"}

// clusterBackends returns the topology backends the experiment sweeps:
// every registered multi-socket description (platforms/*.json loaded via
// -platform-file, e.g. platforms/2-socket-bdw.json or the 8-node
// platforms/cluster-2s-bdw.json), or — when none is registered — a
// synthetic 2-socket replica of the paper's BDW machine joined by a
// QPI-shaped link, so the experiment runs out of the box.
func clusterBackends() ([]*platform.Backend, error) {
	var out []*platform.Backend
	for _, b := range platform.All() {
		if b.NumSockets() > 1 || b.NumNodes() > 1 {
			out = append(out, b)
		}
	}
	if len(out) > 0 {
		return out, nil
	}
	bdw, err := platform.Lookup("BDW")
	if err != nil {
		return nil, err
	}
	sock := bdw.Topology()[0]
	b := &platform.Backend{
		Schema: platform.SchemaVersion, Name: "BDW-2S",
		CPU: "2x " + bdw.CPU, Released: bdw.Released,
		Sockets:      []platform.Socket{sock, sock},
		Interconnect: &platform.Interconnect{BWGBs: 19.2, LatencyNs: 120, EnergyPJPerByte: 15},
	}
	b.Normalize()
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return []*platform.Backend{b}, nil
}

// ClusterSweep compiles the kernels for one topology backend and rolls
// the answers up to cluster EDP over the node counts. The backend
// calibrates once (homogeneous sockets share socket 0's calibration);
// every node count reads the same compile — scaling a cluster never
// re-runs the micro-benchmarks.
func (s *Suite) ClusterSweep(t *roofline.Target, kernels []string, nodes []int) ([]ClusterRow, error) {
	var out []ClusterRow
	for _, name := range kernels {
		cfg := core.DefaultConfig(t)
		cfg.Degrade = s.Degrade
		res, err := s.compileCfg(name, t.Platform, cfg)
		if err != nil {
			if s.bestEffort() {
				s.noteDegraded(name, err)
				continue
			}
			return nil, err
		}
		tp := res.Topology
		if tp == nil {
			return nil, fmt.Errorf("experiments: %s on %s: no topology rollup from a %d-socket backend",
				name, t.Backend.Name, t.NumSockets())
		}
		row := ClusterRow{
			Kernel: name, Sockets: tp.Sockets,
			NodeSeconds: tp.NodeSeconds, NodeJoules: tp.NodeJoules,
			Nodes: nodes,
		}
		for i := len(res.Reports) - 1; i >= 0; i-- {
			if caps := res.Reports[i].SocketCaps; caps != nil {
				row.SocketCaps = caps
				break
			}
		}
		// The rollup is linear in N: rescale the backend's own node count
		// to each swept one.
		for _, n := range nodes {
			scale := float64(n) / float64(tp.Nodes)
			row.ClusterEDP = append(row.ClusterEDP, tp.ClusterEDP*scale)
			row.ClusterEDPDefault = append(row.ClusterEDPDefault, tp.ClusterEDPDefault*scale)
		}
		if tp.ClusterEDPDefault > 0 {
			row.GainPct = 100 * (1 - tp.ClusterEDP/tp.ClusterEDPDefault)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderCluster prints the cluster-scale energy sweep: per-socket cap
// vectors and the cluster EDP rollup per node count, one shared
// calibration per topology backend.
func (s *Suite) RenderCluster() error {
	s.printf("== Cluster sweep: per-socket caps and cluster EDP (N data-parallel replicas) ==\n")
	backends, err := clusterBackends()
	if err != nil {
		return err
	}
	for _, b := range backends {
		t, err := roofline.ResolveCached(s.ctx(), &s.stages, b)
		if err != nil {
			return err
		}
		link := "no interconnect"
		if ic := b.Interconnect; ic != nil {
			link = fmt.Sprintf("link %g GB/s, %g ns", ic.BWGBs, ic.LatencyNs)
		}
		s.printf("-- %s: %d sockets x %d threads, %s; calibrated once\n",
			b.Name, b.NumSockets(), b.Topology()[0].Threads, link)
		rows, err := s.ClusterSweep(t, clusterKernels, clusterNodeCounts)
		if err != nil {
			return err
		}
		s.printf("   %-10s %-14s %10s %10s | cluster EDP (mJ*s) at N in %v | gain\n",
			"kernel", "caps (GHz)", "node-s", "node-mJ", clusterNodeCounts)
		for _, r := range rows {
			caps := ""
			for i, c := range r.SocketCaps {
				if i > 0 {
					caps += " "
				}
				caps += fmt.Sprintf("%.1f", c)
			}
			edps := ""
			for i, e := range r.ClusterEDP {
				if i > 0 {
					edps += " "
				}
				edps += fmt.Sprintf("%.3f", e*1e3)
			}
			s.printf("   %-10s %-14s %10.6f %10.3f | %s | %+5.1f%%\n",
				r.Kernel, caps, r.NodeSeconds, r.NodeJoules*1e3, edps, r.GainPct)
		}
		s.renderDegraded()
	}
	return nil
}
