package experiments

import (
	"testing"
)

func TestDUFSComparison(t *testing.T) {
	s := suite(t)
	p := s.Platforms()[0]
	rows, err := s.DUFSComparison(p, []string{"gemm", "mvt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Base.EDP <= 0 || r.DUFS.EDP <= 0 || r.PolyUFC.EDP <= 0 {
			t.Fatalf("%s: non-positive EDP values %+v", r.Kernel, r)
		}
		// Static compile-time capping must not lose badly to the reactive
		// governor (the Sec. VII-F claim is "equivalent or better"; allow
		// small noise).
		if r.PolyUFCvsDUFS < -0.10 {
			t.Fatalf("%s: PolyUFC loses %.1f%% EDP to DUFS", r.Kernel, -100*r.PolyUFCvsDUFS)
		}
	}
}
