package experiments

import (
	"bytes"
	"strings"
	"testing"

	"polyufc/internal/workloads"
)

// testSuite builds a suite at Test size, calibrating once per test binary.
var cachedSuite *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if cachedSuite == nil {
		s, err := New(workloads.Test, nil)
		if err != nil {
			t.Fatal(err)
		}
		cachedSuite = s
	}
	return cachedSuite
}

func TestFig1SweepShapes(t *testing.T) {
	s := suite(t)
	p := s.Platforms()[0]
	series, err := s.Fig1(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig1Kernels) {
		t.Fatalf("series = %d", len(series))
	}
	for _, sr := range series {
		if len(sr.Points) != len(p.UncoreSteps()) {
			t.Fatalf("%s: points = %d", sr.Kernel, len(sr.Points))
		}
		for _, pt := range sr.Points {
			if pt.Seconds <= 0 || pt.Joules <= 0 || pt.EDP <= 0 {
				t.Fatalf("%s: non-positive point %+v", sr.Kernel, pt)
			}
		}
		if sr.BestEDP < p.UncoreMin || sr.BestEDP > p.UncoreMax {
			t.Fatalf("%s: best EDP frequency %f", sr.Kernel, sr.BestEDP)
		}
	}
}

func TestFig5PatternCBSandwich(t *testing.T) {
	s := suite(t)
	pat, err := s.Fig5Pattern()
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Fields(pat)
	if len(parts) != 9 {
		t.Fatalf("pattern = %q", pat)
	}
	if parts[0] != "CB" || parts[8] != "CB" {
		t.Fatalf("sdpa pattern must start and end CB: %q", pat)
	}
	bb := 0
	for _, p := range parts[1:8] {
		if p == "BB" {
			bb++
		}
	}
	if bb < 5 {
		t.Fatalf("middle region not bandwidth bound: %q", pat)
	}
}

func TestFig6MLCharacterization(t *testing.T) {
	// Classification agreement is checked at bench size (Table-II shapes);
	// test-size kernels sit too close to the CB/BB boundary.
	s, err := New(workloads.Bench, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Fig6(s.Platforms()[1], []string{"sdpa-bert", "lm-head-gpt2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OI <= 0 {
			t.Fatalf("%s: OI = %f", r.Kernel, r.OI)
		}
		if r.HWGFlops <= 0 || r.EstGFlops <= 0 {
			t.Fatalf("%s: non-positive performance", r.Kernel)
		}
		if !r.Correct {
			t.Fatalf("%s: model class %v != HW class %v (OI %.2f)",
				r.Kernel, r.Class, r.HWClass, r.OI)
		}
	}
	// sdpa (BERT) must be CB on RPL at its Table-II shape (Sec. VII-D).
	if rows[0].Class.String() != "CB" {
		t.Fatalf("sdpa-bert on RPL = %v (OI %.2f), paper reports CB", rows[0].Class, rows[0].OI)
	}
}

func TestFig7ImprovesAtBenchSize(t *testing.T) {
	// Test-size kernels run for microseconds, where the cap-switch latency
	// legitimately dominates; the Fig. 7 claim is checked at bench size on
	// streaming kernels (fast to simulate).
	s, err := New(workloads.Bench, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Platforms()[1]
	rows, err := s.Fig7(p, []string{"mvt", "gemver"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BaselineEDP <= 0 || r.PolyUFCEDP <= 0 {
			t.Fatalf("%s: bad EDP values", r.Kernel)
		}
		switch r.Kernel {
		case "mvt":
			if r.EDPGain <= 0 {
				t.Fatalf("mvt: no EDP improvement (%.2f%%)", 100*r.EDPGain)
			}
		default:
			// Per-nest EDP capping is not globally optimal for multi-nest
			// programs (the paper reports regressions on some kernels,
			// Sec. VII-E); bound the loss.
			if r.EDPGain < -0.05 {
				t.Fatalf("%s: EDP regression %.2f%%", r.Kernel, 100*r.EDPGain)
			}
		}
	}
}

func TestFig8SeriesComplete(t *testing.T) {
	s := suite(t)
	r, err := s.Fig8("gemm-pow2", s.Platforms()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(s.Platforms()[0].UncoreSteps()) {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.EDPSetAssoc <= 0 || pt.EDPFullAssoc <= 0 || pt.EDPHW <= 0 {
			t.Fatalf("non-positive EDP at %.1f", pt.FGHz)
		}
	}
}

func TestTab4Breakdown(t *testing.T) {
	s := suite(t)
	rows, err := s.Tab4([]string{"gemm", "mvt"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Timings.Total() <= 0 {
			t.Fatalf("%s: no time recorded", r.Kernel)
		}
		if r.Timings.CM <= 0 {
			t.Fatalf("%s: no cache-model time", r.Kernel)
		}
	}
}

func TestOverheadStudy(t *testing.T) {
	s := suite(t)
	for _, p := range s.Platforms() {
		r, err := s.Overhead(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.CapSwitches == 0 {
			t.Fatalf("%s: no cap switches", p.Name)
		}
		wantPer := p.CapLatency
		if r.PerSwitch.Seconds() != wantPer {
			t.Fatalf("%s: per-switch %v", p.Name, r.PerSwitch)
		}
		if r.Cumulative.Seconds() <= 0 {
			t.Fatalf("%s: no cumulative overhead", p.Name)
		}
	}
}

func TestDedupStudy(t *testing.T) {
	s := suite(t)
	r, err := s.Dedup("gemm")
	if err != nil {
		t.Fatal(err)
	}
	if r.BasicsWith >= r.BasicsWithout {
		t.Fatalf("dedup did not reduce basics: %d vs %d", r.BasicsWith, r.BasicsWithout)
	}
	if !r.PairCountsEqual {
		t.Fatal("dedup changed the reuse-pair count")
	}
}

func TestRenderTablesSmoke(t *testing.T) {
	var buf bytes.Buffer
	s := suite(t)
	s.Out = &buf
	for _, id := range []string{"tab1", "tab2", "tab3"} {
		if err := s.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"B^t_DRAM", "polybench", "i5-13600", "BDW", "RPL", "gemm"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q", want)
		}
	}
	s.Out = nil
}

func TestRenderFiguresSmoke(t *testing.T) {
	var buf bytes.Buffer
	s := suite(t)
	s.Out = &buf
	defer func() { s.Out = nil }()
	for _, id := range []string{"fig1", "fig5", "fig8", "overhead", "dedup", "dufs", "joint", "tilesize", "valid", "tab4"} {
		if err := s.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"Fig. 1", "Fig. 5", "Fig. 8", "cap overhead", "duplicate elimination",
		"DUFS governor", "core+uncore", "tile size", "Validation", "compile-time",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	s := suite(t)
	if err := s.Run("fig99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestExperimentIDsSorted(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 11 {
		t.Fatalf("ids = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
}

func TestRenderFig6AndFig7Smoke(t *testing.T) {
	var buf bytes.Buffer
	s := suite(t)
	s.Out = &buf
	defer func() { s.Out = nil }()
	if err := s.Run("fig6"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run("fig7"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"classification agreement", "geomean EDP improvement", "gemm", "nussinov"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	if s.Constants("BDW") == nil || s.Constants("RPL") == nil {
		t.Fatal("calibrated constants missing")
	}
}

func TestGeomeanEDPGain(t *testing.T) {
	rows := []Fig7Row{
		{BaselineEDP: 1, PolyUFCEDP: 0.5},
		{BaselineEDP: 1, PolyUFCEDP: 2},
	}
	g := GeomeanEDPGain(rows)
	if g > 1e-9 || g < -1e-9 { // geomean of 0.5 and 2 is 1 -> 0% gain
		t.Fatalf("geomean gain = %f, want 0", g)
	}
	if GeomeanEDPGain(nil) != 0 {
		t.Fatal("empty rows must give 0")
	}
}

func TestRenderTilingSmoke(t *testing.T) {
	var buf bytes.Buffer
	s := suite(t)
	s.Out = &buf
	defer func() { s.Out = nil }()
	if err := s.Run("tiling"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"per-strategy phase-change rerun", "pluto:", "cacheoblivious:", "latency:", "auto:", "caps per strategy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The sweep must surface at least one divergence witness at Test
	// size: on cholesky and ludcmp both cacheoblivious and latency pick
	// a bandwidth-bound cap one grid step above Pluto-32.
	if !strings.Contains(out, "differs from pluto") && !strings.Contains(out, "diverges from pluto") {
		t.Fatalf("no strategy diverged from pluto anywhere:\n%s", out)
	}
}

func TestTilingCapSweepDisagreesWithPluto(t *testing.T) {
	s := suite(t)
	p := s.Platforms()[0] // the witnesses fire on both platforms
	rows, err := s.TilingCapSweep(p, TilingWitnessKernels)
	if err != nil {
		t.Fatal(err)
	}
	byStrategy := map[string]bool{}
	for _, r := range rows {
		if r.Diverges {
			byStrategy[strings.SplitN(r.Strategy, ":", 2)[0]] = true
		}
	}
	// The ISSUE acceptance requires a witness kernel per alternative
	// strategy: cacheoblivious and latency must each flip a class or cap.
	for _, want := range []string{"cacheoblivious", "latency"} {
		if !byStrategy[want] {
			t.Fatalf("%s produced no diverging row: %+v", want, rows)
		}
	}
}
