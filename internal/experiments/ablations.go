package experiments

import (
	"math"

	"polyufc/internal/core"
	"polyufc/internal/hw"
	"polyufc/internal/workloads"
)

// TileSizeRow is one point of the tile-size ablation (the paper fixes
// Pluto's default 32; this quantifies the choice).
type TileSizeRow struct {
	Kernel   string
	Platform string
	TileSize int64
	// L1Misses from the exact simulator; EDP measured at the selected cap.
	L1Misses int64
	CapGHz   float64
	EDP      float64
}

// TileSizeSweep compiles a kernel at several tile sizes and measures the
// outcome.
func (s *Suite) TileSizeSweep(p *hw.Platform, kernelName string, sizes []int64) ([]TileSizeRow, error) {
	var out []TileSizeRow
	for _, ts := range sizes {
		k, err := workloads.ByName(kernelName)
		if err != nil {
			return nil, err
		}
		mod, err := k.Build(s.Size)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(s.targets[p.Name])
		cfg.Pluto.TileSize = ts
		res, err := core.Compile(mod, cfg)
		if err != nil {
			return nil, err
		}
		m := s.machine(p)
		var l1 int64
		var agg hw.RunResult
		for _, nest := range nestsOf(res.Module) {
			prof, err := m.Profile(nest)
			if err != nil {
				return nil, err
			}
			l1 += prof.LevelMisses[0]
		}
		run, err := m.RunFunc(res.Module.Funcs[0])
		if err != nil {
			return nil, err
		}
		agg = run
		cap := p.UncoreMax
		if len(res.Reports) > 0 {
			best := res.Reports[0]
			for _, r := range res.Reports {
				if r.CM.Flops > best.CM.Flops {
					best = r
				}
			}
			cap = best.CapGHz
		}
		out = append(out, TileSizeRow{
			Kernel: kernelName, Platform: p.Name, TileSize: ts,
			L1Misses: l1, CapGHz: cap, EDP: agg.EDP,
		})
	}
	return out, nil
}

// RenderTileSize prints the ablation for gemm on both platforms.
func (s *Suite) RenderTileSize() error {
	s.printf("== Ablation: Pluto tile size (paper default 32) ==\n")
	sizes := []int64{8, 16, 32, 64}
	for _, p := range s.plats {
		rows, err := s.TileSizeSweep(p, "gemm", sizes)
		if err != nil {
			return err
		}
		s.printf("-- gemm on %s\n", p.Name)
		s.printf("   tile   L1 misses      cap(GHz)   EDP(mJ*s)\n")
		for _, r := range rows {
			s.printf("   %4d   %10d   %8.1f   %9.5f\n", r.TileSize, r.L1Misses, r.CapGHz, r.EDP*1e3)
		}
	}
	return nil
}

// ValidRow is one kernel of the model-validation study: the Sec. V
// estimates against machine measurement at the driver default (the
// PAPI-counter validation of Sec. VII-D).
type ValidRow struct {
	Kernel             string
	Platform           string
	EstSec, HWSec      float64
	EstJ, HWJ          float64
	TimeErr, EnergyErr float64 // |est-hw|/hw
}

// Validate runs the study over the given kernels.
func (s *Suite) Validate(p *hw.Platform, kernels []string) ([]ValidRow, error) {
	var out []ValidRow
	for _, name := range kernels {
		res, err := s.compile(name, p)
		if err != nil {
			return nil, err
		}
		m := s.machine(p)
		m.SetUncoreCap(p.UncoreMax)
		var estT, estE, hwT, hwE float64
		for i, nest := range nestsOf(res.Module) {
			rep := res.Reports[i]
			estT += rep.EstDefault.Seconds
			estE += rep.EstDefault.Joules
			r, err := m.RunNest(nest)
			if err != nil {
				return nil, err
			}
			hwT += r.Seconds
			hwE += r.PkgJoules
		}
		out = append(out, ValidRow{
			Kernel: name, Platform: p.Name,
			EstSec: estT, HWSec: hwT, EstJ: estE, HWJ: hwE,
			TimeErr:   math.Abs(estT-hwT) / hwT,
			EnergyErr: math.Abs(estE-hwE) / hwE,
		})
	}
	return out, nil
}

// RenderValidate prints the validation over a representative kernel mix
// and its mean errors.
func (s *Suite) RenderValidate() error {
	s.printf("== Validation: Sec. V estimates vs machine measurement (driver default) ==\n")
	kernels := []string{"gemm", "2mm", "mvt", "gemver", "atax", "jacobi-2d", "doitgen", "syrk"}
	for _, p := range s.plats {
		rows, err := s.Validate(p, kernels)
		if err != nil {
			return err
		}
		s.printf("-- %s\n", p.Name)
		s.printf("   %-12s est/HW time (ms)      est/HW energy (J)   | errors\n", "kernel")
		var te, ee float64
		for _, r := range rows {
			s.printf("   %-12s %8.3f /%8.3f   %8.4f /%8.4f | t %4.0f%%  e %4.0f%%\n",
				r.Kernel, r.EstSec*1e3, r.HWSec*1e3, r.EstJ, r.HWJ,
				100*r.TimeErr, 100*r.EnergyErr)
			te += r.TimeErr
			ee += r.EnergyErr
		}
		s.printf("   mean: time %.0f%%, energy %.0f%%\n",
			100*te/float64(len(rows)), 100*ee/float64(len(rows)))
	}
	return nil
}
