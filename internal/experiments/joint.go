package experiments

import (
	"math"

	"polyufc/internal/core"
	"polyufc/internal/hw"
	"polyufc/internal/model"
)

// JointRow compares uncore-only capping against coordinated core+uncore
// selection (the extension the paper's Sec. VII-F discussion and the
// joint-scaling related work point to) for one kernel, measured on the
// machine.
type JointRow struct {
	Kernel   string
	Platform string
	Class    string
	// Selected frequencies.
	UncoreOnlyGHz                float64
	JointCoreGHz, JointUncoreGHz float64
	// Measured EDPs (baseline = base core, max uncore).
	BaseEDP, UncoreOnlyEDP, JointEDP float64
	// JointExtraGain is the additional EDP improvement of joint over
	// uncore-only (positive = joint wins).
	JointExtraGain float64
}

// coreGrid returns the platform's core P-state grid at 0.1 GHz steps.
func coreGrid(p *hw.Platform) []float64 {
	var out []float64
	for f := p.CoreMin; f <= p.CoreMax+1e-9; f += 0.1 {
		out = append(out, math.Round(f*10)/10)
	}
	return out
}

// Joint runs the comparison for the given kernels on one platform.
func (s *Suite) Joint(p *hw.Platform, kernels []string) ([]JointRow, error) {
	consts := s.Constants(p.Name)
	cs := model.DefaultCoreScaling(p.CoreBase)
	var out []JointRow
	for _, name := range kernels {
		res, err := s.compile(name, p)
		if err != nil {
			return nil, err
		}
		// Dominant nest decides the frequencies (as the per-kernel caps
		// would); measurement covers all nests.
		var rep core.KernelReport
		bestFlops := int64(-1)
		for _, r := range res.Reports {
			if r.CM.Flops > bestFlops {
				bestFlops = r.CM.Flops
				rep = r
			}
		}
		m := model.New(consts, model.FromCacheModel(rep.CM, rep.Threads))
		joint := m.SearchJoint(cs, coreGrid(p), p.UncoreSteps(),
			func(e model.Estimate) float64 { return e.EDP }, 4)

		mach := s.machine(p)
		var base, uo, jt hw.RunResult
		measure := func(fc, fu float64) hw.RunResult {
			var agg hw.RunResult
			for _, nest := range nestsOf(res.Module) {
				prof, err := mach.Profile(nest)
				if err != nil {
					continue
				}
				r := mach.MeasureAt(prof, fc, fu)
				agg.Seconds += r.Seconds
				agg.PkgJoules += r.PkgJoules
			}
			agg.EDP = agg.PkgJoules * agg.Seconds
			return agg
		}
		base = measure(p.CoreBase, p.UncoreMax)
		uo = measure(p.CoreBase, rep.CapGHz)
		jt = measure(joint.CoreGHz, joint.UncoreGHz)

		row := JointRow{
			Kernel: name, Platform: p.Name, Class: rep.Class.String(),
			UncoreOnlyGHz: rep.CapGHz,
			JointCoreGHz:  joint.CoreGHz, JointUncoreGHz: joint.UncoreGHz,
			BaseEDP: base.EDP, UncoreOnlyEDP: uo.EDP, JointEDP: jt.EDP,
		}
		if uo.EDP > 0 {
			row.JointExtraGain = 1 - jt.EDP/uo.EDP
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderJoint prints the comparison for both platforms.
func (s *Suite) RenderJoint() error {
	s.printf("== Extension: coordinated core+uncore selection vs uncore-only ==\n")
	kernels := []string{"gemm", "mvt", "gemver", "jacobi-1d"}
	for _, p := range s.plats {
		rows, err := s.Joint(p, kernels)
		if err != nil {
			return err
		}
		s.printf("-- %s (EDP in mJ*s)\n", p.Name)
		s.printf("   %-12s %3s | uncore-only  |   joint (core,uncore) | base EDP    u-only EDP   joint EDP | extra\n", "kernel", "cls")
		for _, r := range rows {
			s.printf("   %-12s %3s |   %4.1f GHz   |     (%3.1f, %4.1f) GHz   | %10.4f %12.4f %11.4f | %+5.1f%%\n",
				r.Kernel, r.Class, r.UncoreOnlyGHz, r.JointCoreGHz, r.JointUncoreGHz,
				r.BaseEDP*1e3, r.UncoreOnlyEDP*1e3, r.JointEDP*1e3, 100*r.JointExtraGain)
		}
	}
	return nil
}
