package experiments

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"

	"polyufc/internal/platform"
	"polyufc/internal/roofline"
)

func TestClusterSweepShapes(t *testing.T) {
	s := suite(t)
	backends, err := clusterBackends()
	if err != nil {
		t.Fatal(err)
	}
	// No topology description is registered in tests: the synthetic
	// 2-socket BDW replica steps in.
	if len(backends) != 1 || backends[0].NumSockets() != 2 {
		t.Fatalf("cluster backends: %+v", backends)
	}
	tg, err := roofline.ResolveCached(s.ctx(), &s.stages, backends[0])
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.ClusterSweep(tg, clusterKernels, clusterNodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(clusterKernels) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sockets != 2 || len(r.SocketCaps) != 2 {
			t.Fatalf("%s: socket shape %+v", r.Kernel, r)
		}
		if r.NodeSeconds <= 0 || r.NodeJoules <= 0 {
			t.Fatalf("%s: node figures %+v", r.Kernel, r)
		}
		if len(r.ClusterEDP) != len(clusterNodeCounts) {
			t.Fatalf("%s: sweep length %d", r.Kernel, len(r.ClusterEDP))
		}
		// Cluster EDP is linear in N; the gain is N-invariant.
		for i, n := range clusterNodeCounts {
			want := float64(n) * r.ClusterEDP[0] / float64(clusterNodeCounts[0])
			if math.Abs(r.ClusterEDP[i]-want) > 1e-12*want {
				t.Fatalf("%s: EDP not linear in N: %v", r.Kernel, r.ClusterEDP)
			}
			if r.ClusterEDPDefault[i] < r.ClusterEDP[i] {
				continue
			}
		}
		if r.GainPct < 0 {
			t.Fatalf("%s: selected caps lose to the default: %+v", r.Kernel, r)
		}
	}
}

// The 8-node JSON description drives the same sweep end to end: its
// rollup at its own node count matches the per-node figures times eight.
func TestClusterSweepFromJSONDescription(t *testing.T) {
	s := suite(t)
	// Parse, don't LoadFile: registering the cluster backend would leak
	// it into every other test's platform.All().
	data, err := os.ReadFile("../../platforms/cluster-2s-bdw.json")
	if err != nil {
		t.Fatal(err)
	}
	b, err := platform.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumNodes() != 8 || b.NumSockets() != 2 {
		t.Fatalf("cluster description shape: %d nodes, %d sockets", b.NumNodes(), b.NumSockets())
	}
	tg, err := roofline.ResolveCached(s.ctx(), &s.stages, b)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.ClusterSweep(tg, []string{"gemm"}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	want := 8 * r.NodeJoules * r.NodeSeconds
	if math.Abs(r.ClusterEDP[0]-want) > 1e-9*want {
		t.Fatalf("8-node rollup %g, want %g", r.ClusterEDP[0], want)
	}
}

func TestRenderCluster(t *testing.T) {
	s := suite(t)
	var buf bytes.Buffer
	prev := s.Out
	s.Out = &buf
	defer func() { s.Out = prev }()
	if err := s.Run("cluster"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Cluster sweep", "BDW-2S", "2 sockets", "gemm", "gain"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render misses %q:\n%s", want, out)
		}
	}
}
