// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. VII): the uncore-frequency sweeps of Fig. 1, the
// phase-change study of Fig. 5, the roofline characterization of Fig. 6,
// the time/energy/EDP comparison against the UFS-driver baseline of
// Fig. 7, the associativity ablation of Fig. 8, the roofline constants of
// Tab. I, the benchmark and platform inventories of Tabs. II-III, the
// compile-time breakdown of Tab. IV, the cap-switch overhead study of
// Sec. VII-F and the duplicate-elimination study of footnote 17. Each
// experiment returns structured data and can render the paper-style rows.
//
// The sweeps fan out through the internal/parallel worker pool and share
// one compile cache and one nest-profile cache per Suite: workers compute,
// the renderers print from index-ordered results, so output is
// byte-identical at any concurrency.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"polyufc/internal/core"
	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/journal"
	"polyufc/internal/parallel"
	"polyufc/internal/pipeline"
	"polyufc/internal/platform"
	"polyufc/internal/roofline"
	"polyufc/internal/tiling"
	"polyufc/internal/workloads"
)

// Suite carries calibrated platforms and output configuration.
type Suite struct {
	Size workloads.SizeClass
	Out  io.Writer
	// Concurrency bounds the evaluation engine's worker pool: 0 (the
	// default) means GOMAXPROCS, 1 is the serial fallback.
	Concurrency int
	// Ctx, when set, cancels in-flight sweeps; nil means Background.
	Ctx context.Context
	// Degrade selects sweep-level fault tolerance: under core.BestEffort
	// a failing kernel is dropped from its figure with a degradation
	// summary line instead of killing the whole sweep, and compilations
	// degrade per nest.
	Degrade core.DegradePolicy
	// Faults, when non-nil, arms the injectable failure modes on every
	// machine and compilation the suite runs. Injection state is mutable
	// and call-ordered, so the compile cache is bypassed while armed.
	Faults *faults.Registry
	// Tiling selects the tile-stage strategy every sweep compiles with
	// (internal/tiling); the zero value is the paper's Pluto baseline, so
	// default sweeps stay byte-identical.
	Tiling tiling.Spec
	// Journal, when non-nil, checkpoints sweep progress per unit of work
	// (one kernel at one frequency for Fig. 1, one comparison row for
	// Fig. 7) so a killed sweep resumes instead of restarting: completed
	// entries replay from the journal and are not re-evaluated. Replayed
	// values render byte-identically to recomputed ones — the journal
	// stores the exact float64s the renderers print.
	Journal *journal.Journal
	plats   []*hw.Platform
	targets map[string]*roofline.Target
	cache   core.Cache
	// stages memoizes per-stage compile snapshots across the sweep's
	// configurations: ablation runs that only vary downstream knobs
	// (objective, amortize factor) reuse the analysis prefix of the
	// default configuration. stageStats aggregates the stage events.
	stages     pipeline.Cache
	stageStats pipeline.Metrics
	profiles   hw.ProfileCache
	mu         sync.Mutex
	notes      []string
}

// New builds a suite over both Table-III platforms, calibrating their
// rooflines once — concurrently, one worker per platform.
func New(size workloads.SizeClass, out io.Writer) (*Suite, error) {
	return NewBackends(size, out, platform.Paper())
}

// NewBackends builds a suite over an explicit backend set — any mix of
// embedded descriptions and registry entries loaded from platforms/*.json
// files — calibrating each one concurrently through the suite's stage
// cache.
func NewBackends(size workloads.SizeClass, out io.Writer, backends []*platform.Backend) (*Suite, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("experiments: no backends to evaluate")
	}
	s := &Suite{Size: size, Out: out, targets: map[string]*roofline.Target{}}
	targets, err := parallel.Map(context.Background(), len(backends), 0,
		func(ctx context.Context, i int) (*roofline.Target, error) {
			t, err := roofline.ResolveCached(ctx, &s.stages, backends[i])
			if err != nil {
				return nil, fmt.Errorf("experiments: calibrate %s: %w", backends[i].Name, err)
			}
			return t, nil
		})
	if err != nil {
		return nil, err
	}
	for _, t := range targets {
		s.plats = append(s.plats, t.Platform)
		s.targets[t.Platform.Name] = t
	}
	return s, nil
}

// Platforms returns the suite's platforms.
func (s *Suite) Platforms() []*hw.Platform { return s.plats }

// Target returns the resolved backend handle for a platform.
func (s *Suite) Target(name string) *roofline.Target { return s.targets[name] }

// Constants returns the calibrated rooflines for a platform.
func (s *Suite) Constants(name string) *roofline.Constants {
	if t := s.targets[name]; t != nil {
		return t.Constants
	}
	return nil
}

// CacheStats reports compile-cache hits and misses so far.
func (s *Suite) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// ProfileStats reports profile-cache hits and misses so far.
func (s *Suite) ProfileStats() (hits, misses int64) { return s.profiles.Stats() }

// StageCacheStats reports per-stage snapshot hits and misses so far.
func (s *Suite) StageCacheStats() (hits, misses int64) { return s.stages.Stats() }

// StageStats returns the aggregated pipeline stage events of the sweep:
// runs, snapshot hits, errors and total time per stage name.
func (s *Suite) StageStats() map[string]pipeline.StageStats { return s.stageStats.Snapshot() }

// StageNames returns the observed stage names sorted.
func (s *Suite) StageNames() []string { return s.stageStats.StageNames() }

// ResetCache drops all memoized compilations, stage snapshots and nest
// profiles (used by benchmarks to measure cold-sweep behaviour). The
// caches reset together: profiles are keyed by the nest pointers the
// compile cache owns, and stage snapshots feed the compilations.
func (s *Suite) ResetCache() {
	s.cache.Reset()
	s.stages.Reset()
	s.profiles.Reset()
}

// machine boots a Machine wired to the suite's shared profile cache, so
// every sweep worker reuses the exact-simulator profiles of the compiled
// nests instead of re-simulating them.
func (s *Suite) machine(p *hw.Platform) *hw.Machine {
	m := hw.NewMachine(p)
	m.SetProfileCache(&s.profiles)
	m.SetFaults(s.Faults)
	return m
}

// bestEffort reports whether sweeps tolerate per-kernel failures.
func (s *Suite) bestEffort() bool { return s.Degrade == core.BestEffort }

// step runs one journaled unit of sweep work: when the suite's journal
// already holds key, the recorded value replays into out (a pointer) and
// compute is skipped; otherwise compute fills out and the result is
// checkpointed before step returns. Without a journal it is just compute.
// Failed units are never checkpointed — a resume retries them.
func (s *Suite) step(key string, out any, compute func() error) error {
	if s.Journal != nil {
		if ok, err := s.Journal.Get(key, out); err != nil {
			return err
		} else if ok {
			return nil
		}
	}
	if err := compute(); err != nil {
		return err
	}
	if s.Journal != nil {
		return s.Journal.Record(key, out)
	}
	return nil
}

// noteDegraded records one tolerated per-kernel failure for the
// experiment's degradation summary.
func (s *Suite) noteDegraded(kernel string, err error) {
	s.mu.Lock()
	s.notes = append(s.notes, fmt.Sprintf("%s: %v", kernel, err))
	s.mu.Unlock()
}

// drainNotes returns the recorded degradations sorted (workers race) and
// clears them for the next experiment.
func (s *Suite) drainNotes() []string {
	s.mu.Lock()
	out := s.notes
	s.notes = nil
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// renderDegraded prints the degradation summary lines of one experiment.
func (s *Suite) renderDegraded() {
	for _, line := range s.drainNotes() {
		s.printf("   degraded (best-effort): %s\n", line)
	}
}

// ctx resolves the suite context.
func (s *Suite) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

func (s *Suite) printf(format string, args ...interface{}) {
	if s.Out != nil {
		fmt.Fprintf(s.Out, format, args...)
	}
}

// compile builds, lowers and PolyUFC-compiles one kernel for a platform
// through the suite's memo cache with the paper's default configuration.
func (s *Suite) compile(kernelName string, p *hw.Platform) (*core.Result, error) {
	cfg := core.DefaultConfig(s.targets[p.Name])
	return s.compileCfg(kernelName, p, cfg)
}

// compileCfg is the cache-wired compile for any of the evaluation's
// configurations; the cache key captures every config bit the sweeps vary.
func (s *Suite) compileCfg(kernelName string, p *hw.Platform, cfg core.Config) (*core.Result, error) {
	k, err := workloads.ByName(kernelName)
	if err != nil {
		return nil, err
	}
	cfg.Degrade = s.Degrade
	if cfg.Tiling == (tiling.Spec{}) {
		cfg.Tiling = s.Tiling
	}
	opts := core.PipelineOptions{Stages: &s.stages, Observe: s.stageStats.Observe}
	if s.Faults != nil {
		// Injection state advances per call: memoizing a faulted Result
		// would replay one injection outcome across the sweep. Compile
		// directly while armed (stage memoization disarms itself too).
		cfg.Faults = s.Faults
		mod, err := k.Build(s.Size)
		if err != nil {
			return nil, err
		}
		return core.CompilePipeline(s.ctx(), mod, cfg, opts)
	}
	key := core.CacheKey{
		Kernel:     kernelName,
		Platform:   p.Name,
		Size:       int(s.Size),
		CapLevel:   cfg.CapLevel,
		Tiling:     cfg.Tiling.Fingerprint(),
		FullyAssoc: cfg.CM.FullyAssoc,
		NoAmortize: cfg.AmortizeFactor == 0,
		Objective:  cfg.Search.Objective,
		Epsilon:    cfg.Search.Epsilon,
		Degrade:    s.Degrade,
	}
	return s.cache.CompileStaged(s.ctx(), key, cfg, opts, func() (*ir.Module, error) {
		return k.Build(s.Size)
	})
}

// nestsOf collects the affine nests of a compiled module in order.
func nestsOf(mod *ir.Module) []*ir.Nest {
	var out []*ir.Nest
	for _, f := range mod.Funcs {
		for _, op := range f.Ops {
			if n, ok := op.(*ir.Nest); ok {
				out = append(out, n)
			}
		}
	}
	return out
}

// runBaseline measures the Pluto baseline: every nest at the driver
// default (maximum uncore frequency).
func runBaseline(m *hw.Machine, mod *ir.Module) (hw.RunResult, error) {
	m.SetUncoreCap(m.P.UncoreMax)
	var agg hw.RunResult
	for _, nest := range nestsOf(mod) {
		r, err := m.RunNest(nest)
		if err != nil {
			return agg, err
		}
		agg.Seconds += r.Seconds
		agg.PkgJoules += r.PkgJoules
		agg.UncoreJoules += r.UncoreJoules
	}
	agg.EDP = agg.PkgJoules * agg.Seconds
	if agg.Seconds > 0 {
		agg.AvgWatts = agg.PkgJoules / agg.Seconds
	}
	return agg, nil
}

// Run executes one experiment by id and renders it.
func (s *Suite) Run(id string) error {
	switch id {
	case "fig1":
		return s.RenderFig1()
	case "fig5":
		return s.RenderFig5()
	case "fig6":
		return s.RenderFig6()
	case "fig7":
		return s.RenderFig7()
	case "fig8":
		return s.RenderFig8()
	case "tab1":
		return s.RenderTab1()
	case "tab2":
		return s.RenderTab2()
	case "tab3":
		return s.RenderTab3()
	case "tab4":
		return s.RenderTab4()
	case "overhead":
		return s.RenderOverhead()
	case "dedup":
		return s.RenderDedup()
	case "dufs":
		return s.RenderDUFS()
	case "joint":
		return s.RenderJoint()
	case "cluster":
		return s.RenderCluster()
	case "tilesize":
		return s.RenderTileSize()
	case "tiling":
		return s.RenderTiling()
	case "valid":
		return s.RenderValidate()
	case "all":
		for _, e := range ExperimentIDs() {
			if e == "all" {
				continue
			}
			if err := s.Run(e); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	}
	return fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, ExperimentIDs())
}

// ExperimentIDs lists the available experiments.
func ExperimentIDs() []string {
	ids := []string{"fig1", "fig5", "fig6", "fig7", "fig8",
		"tab1", "tab2", "tab3", "tab4", "overhead", "dedup", "dufs", "joint",
		"cluster", "tilesize", "tiling", "valid", "all"}
	sort.Strings(ids)
	return ids
}
