package experiments

import (
	"context"
	"fmt"
	"math"

	"polyufc/internal/core"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/model"
	"polyufc/internal/parallel"
	"polyufc/internal/roofline"
	"polyufc/internal/workloads"
)

// --- Fig. 1: time/energy/EDP vs uncore frequency --------------------------

// Fig1Point is one frequency sample of one kernel.
type Fig1Point struct {
	FGHz    float64
	Seconds float64
	Joules  float64
	EDP     float64
}

// Fig1Series is the sweep of one kernel on one platform.
type Fig1Series struct {
	Kernel     string
	Platform   string
	Points     []Fig1Point
	BestTime   float64 // argmin frequencies
	BestEnergy float64
	BestEDP    float64
	// Degraded marks a kernel dropped under best-effort tolerance; only
	// Kernel and Platform are meaningful then.
	Degraded bool
}

// Fig1Kernels are the representative kernels of Fig. 1.
var Fig1Kernels = []string{"conv2d-alexnet", "2mm", "gemver", "mvt"}

// Fig1 sweeps each representative kernel over the platform's uncore range
// on Pluto-optimized code, as in the paper's motivation figure. Kernels
// sweep concurrently on the worker pool; the series come back in
// Fig1Kernels order. With a Journal attached, every (kernel, frequency)
// point checkpoints as it completes and a resumed sweep replays the
// completed points — compilation and profiling are skipped entirely for
// kernels whose points are all journaled.
func (s *Suite) Fig1(p *hw.Platform) ([]Fig1Series, error) {
	return parallel.Map(s.ctx(), len(Fig1Kernels), s.Concurrency,
		func(_ context.Context, i int) (Fig1Series, error) {
			name := Fig1Kernels[i]
			series := Fig1Series{Kernel: name, Platform: p.Name}
			// Compile and profile lazily: a fully journaled kernel never
			// touches the compiler or the simulator on resume.
			var m *hw.Machine
			var profs []*hw.CacheProfile
			ensure := func() error {
				if m != nil {
					return nil
				}
				res, err := s.compile(name, p)
				if err != nil {
					return err
				}
				mm := s.machine(p)
				for _, nest := range nestsOf(res.Module) {
					prof, err := mm.Profile(nest)
					if err != nil {
						return err
					}
					profs = append(profs, prof)
				}
				m = mm
				return nil
			}
			for _, f := range p.UncoreSteps() {
				var pt Fig1Point
				err := s.step(fmt.Sprintf("fig1/%s/%s/f%.1f", p.Name, name, f), &pt,
					func() error {
						if err := ensure(); err != nil {
							return err
						}
						pt.FGHz = f
						m.SetUncoreCap(f)
						for _, prof := range profs {
							r := m.Measure(prof)
							pt.Seconds += r.Seconds
							pt.Joules += r.PkgJoules
						}
						pt.EDP = pt.Seconds * pt.Joules
						return nil
					})
				if err != nil {
					if s.bestEffort() {
						s.noteDegraded(name, err)
						return Fig1Series{Kernel: name, Platform: p.Name, Degraded: true}, nil
					}
					return Fig1Series{}, fmt.Errorf("fig1 %s: %w", name, err)
				}
				series.Points = append(series.Points, pt)
			}
			series.BestTime = argminF(series.Points, func(p Fig1Point) float64 { return p.Seconds })
			series.BestEnergy = argminF(series.Points, func(p Fig1Point) float64 { return p.Joules })
			series.BestEDP = argminF(series.Points, func(p Fig1Point) float64 { return p.EDP })
			return series, nil
		})
}

func argminF(pts []Fig1Point, val func(Fig1Point) float64) float64 {
	best := pts[0]
	for _, p := range pts {
		if val(p) < val(best) {
			best = p
		}
	}
	return best.FGHz
}

// RenderFig1 prints the sweeps for both platforms.
func (s *Suite) RenderFig1() error {
	s.printf("== Fig. 1: exec time, energy, EDP across uncore frequency caps (Pluto-tiled) ==\n")
	for _, p := range s.plats {
		series, err := s.Fig1(p)
		if err != nil {
			return err
		}
		for _, sr := range series {
			if sr.Degraded {
				continue
			}
			s.printf("-- %s on %s (best: time@%.1f energy@%.1f EDP@%.1f GHz)\n",
				sr.Kernel, sr.Platform, sr.BestTime, sr.BestEnergy, sr.BestEDP)
			s.printf("   f(GHz)   time(ms)   energy(J)    EDP(mJ*s)\n")
			for _, pt := range sr.Points {
				s.printf("   %5.1f   %8.3f   %9.4f   %10.5f\n",
					pt.FGHz, pt.Seconds*1e3, pt.Joules, pt.EDP*1e3)
			}
		}
	}
	s.renderDegraded()
	return nil
}

// --- Fig. 5: phase changes across dialects ---------------------------------

// RenderFig5 prints the sdpa phase-change study.
func (s *Suite) RenderFig5() error {
	p := s.plats[1] // RPL
	k, err := workloads.ByName("sdpa-bert")
	if err != nil {
		return err
	}
	mod, err := k.Build(s.Size)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(s.targets[p.Name])
	phases, err := core.PhaseStudy(mod, cfg)
	if err != nil {
		return err
	}
	s.printf("== Fig. 5: CB/BB phase changes of sdpa (BERT) across dialects on %s ==\n", p.Name)
	for _, lvl := range []ir.Dialect{ir.DialectTorch, ir.DialectLinalg, ir.DialectAffine} {
		s.printf("-- %s:\n", lvl)
		for _, ph := range phases[lvl] {
			s.printf("   %-44s %s (OI %.2f FpB)\n", ph.Op, ph.Class, ph.OI)
		}
	}
	return nil
}

// Fig5Pattern returns the linalg-level class sequence as a string like
// "CB BB BB BB BB BB BB BB CB".
func (s *Suite) Fig5Pattern() (string, error) {
	p := s.plats[1]
	k, err := workloads.ByName("sdpa-bert")
	if err != nil {
		return "", err
	}
	mod, err := k.Build(s.Size)
	if err != nil {
		return "", err
	}
	cfg := core.DefaultConfig(s.targets[p.Name])
	phases, err := core.PhaseStudy(mod, cfg)
	if err != nil {
		return "", err
	}
	out := ""
	for i, ph := range phases[ir.DialectLinalg] {
		if i > 0 {
			out += " "
		}
		out += ph.Class.String()
	}
	return out, nil
}

// --- Fig. 6: roofline characterization --------------------------------------

// Fig6Row is one kernel's characterization vs hardware.
type Fig6Row struct {
	Kernel   string
	Platform string
	Category string
	OI       float64
	Class    roofline.Class
	// Est and HW performance (GFlop/s) and average power (W) at max
	// uncore frequency.
	EstGFlops, HWGFlops float64
	EstWatts, HWWatts   float64
	// HWClass derives from measured traffic; Correct reports agreement.
	HWClass roofline.Class
	Correct bool
	// Degraded marks a kernel dropped under best-effort tolerance.
	Degraded bool
}

// Fig6 characterizes the given kernels on a platform and validates against
// hardware measurements. One worker per kernel; rows return in input order.
func (s *Suite) Fig6(p *hw.Platform, kernels []string) ([]Fig6Row, error) {
	c := s.Constants(p.Name)
	return parallel.Map(s.ctx(), len(kernels), s.Concurrency,
		func(_ context.Context, idx int) (Fig6Row, error) {
			name := kernels[idx]
			k, err := workloads.ByName(name)
			if err != nil {
				return Fig6Row{}, err
			}
			res, err := s.compile(name, p)
			if err != nil {
				if s.bestEffort() {
					s.noteDegraded(name, err)
					return Fig6Row{Kernel: name, Platform: p.Name, Degraded: true}, nil
				}
				return Fig6Row{}, fmt.Errorf("fig6 %s: %w", name, err)
			}
			// Aggregate model estimates and hardware runs at max frequency.
			m := s.machine(p)
			m.SetUncoreCap(p.UncoreMax)
			var estT, hwT, estE, hwE float64
			var flops, qdram, qdramHW int64
			for i, nest := range nestsOf(res.Module) {
				rep := res.Reports[i]
				est := rep.EstDefault
				estT += est.Seconds
				estE += est.Joules
				flops += rep.CM.Flops
				qdram += rep.CM.QDRAM
				r, err := m.RunNest(nest)
				if err != nil {
					return Fig6Row{}, err
				}
				hwT += r.Seconds
				hwE += r.PkgJoules
				prof, _ := m.Profile(nest)
				qdramHW += prof.DRAMReadB / int64(max(rep.CM.ThreadsDiv, 1))
			}
			oi := 0.0
			if qdram > 0 {
				oi = float64(flops) / float64(qdram)
			}
			hwOI := math.Inf(1)
			if qdramHW > 0 {
				hwOI = float64(flops) / float64(qdramHW)
			}
			row := Fig6Row{
				Kernel: name, Platform: p.Name, Category: k.Category,
				OI: oi, Class: c.Classify(oi),
				EstGFlops: float64(flops) / estT / 1e9, HWGFlops: float64(flops) / hwT / 1e9,
				EstWatts: estE / estT, HWWatts: hwE / hwT,
				HWClass: c.Classify(hwOI),
			}
			row.Correct = row.Class == row.HWClass
			return row, nil
		})
}

// RenderFig6 prints the ML kernels on both platforms and PolyBench on RPL.
func (s *Suite) RenderFig6() error {
	s.printf("== Fig. 6: performance & power characterization (estimated vs hardware) ==\n")
	mlNames := []string{"conv2d-convnext", "sdpa-bert", "lm-head-llama2"}
	for _, p := range s.plats {
		rows, err := s.Fig6(p, mlNames)
		if err != nil {
			return err
		}
		s.printf("-- ML kernels on %s\n", p.Name)
		s.renderFig6Rows(rows)
	}
	var pbNames []string
	for _, k := range workloads.PolyBench() {
		pbNames = append(pbNames, k.Name)
	}
	rows, err := s.Fig6(s.plats[1], pbNames)
	if err != nil {
		return err
	}
	s.printf("-- PolyBench on RPL\n")
	s.renderFig6Rows(rows)
	correct, total := 0, 0
	for _, r := range rows {
		if r.Degraded {
			continue
		}
		total++
		if r.Correct {
			correct++
		}
	}
	s.printf("   classification agreement: %d/%d\n", correct, total)
	s.renderDegraded()
	return nil
}

func (s *Suite) renderFig6Rows(rows []Fig6Row) {
	s.printf("   %-18s %-12s %8s %4s | est %8s HW %8s | est %6s HW %6s | %s\n",
		"kernel", "category", "OI(FpB)", "cls", "GF/s", "GF/s", "W", "W", "agree")
	for _, r := range rows {
		if r.Degraded {
			continue
		}
		s.printf("   %-18s %-12s %8.2f %4s | %12.1f %11.1f | %10.1f %9.1f | %v\n",
			r.Kernel, r.Category, r.OI, r.Class, r.EstGFlops, r.HWGFlops,
			r.EstWatts, r.HWWatts, r.Correct)
	}
}

// --- Fig. 7: time/energy/EDP vs the UFS-driver baseline --------------------

// Fig7Row is one kernel's improvement over the baseline.
type Fig7Row struct {
	Kernel   string
	Suite    string
	Platform string
	Class    roofline.Class
	CapGHz   float64 // cap of the dominant (largest) nest
	// Relative improvements (positive = better than baseline).
	TimeGain, EnergyGain, EDPGain float64
	BaselineEDP, PolyUFCEDP       float64
	// Degraded marks a kernel dropped under best-effort tolerance.
	Degraded bool
}

// Fig7 compares PolyUFC-capped execution against the Pluto + default-UFS
// baseline for the given kernels on one platform. Kernels run concurrently
// on the worker pool; rows return in input order. With a Journal attached,
// each completed row checkpoints and a resumed sweep replays it without
// recompiling or re-measuring the kernel.
func (s *Suite) Fig7(p *hw.Platform, kernels []string) ([]Fig7Row, error) {
	return parallel.Map(s.ctx(), len(kernels), s.Concurrency, func(_ context.Context, idx int) (Fig7Row, error) {
		name := kernels[idx]
		var row Fig7Row
		err := s.step(fmt.Sprintf("fig7/%s/%s", p.Name, name), &row, func() error {
			var err error
			row, err = s.fig7Row(p, name)
			return err
		})
		if err != nil {
			if s.bestEffort() {
				s.noteDegraded(name, err)
				return Fig7Row{Kernel: name, Platform: p.Name, Degraded: true}, nil
			}
			return Fig7Row{}, fmt.Errorf("fig7 %s: %w", name, err)
		}
		return row, nil
	})
}

// fig7Row computes one kernel's baseline-vs-capped comparison.
func (s *Suite) fig7Row(p *hw.Platform, name string) (Fig7Row, error) {
	drop := func(err error) (Fig7Row, error) { return Fig7Row{}, err }
	k, err := workloads.ByName(name)
	if err != nil {
		return drop(err)
	}
	res, err := s.compile(name, p)
	if err != nil {
		return drop(err)
	}
	m := s.machine(p)
	base, err := runBaseline(m, res.Module)
	if err != nil {
		return drop(err)
	}
	// Repeat the program so each measurement covers at least ~20 ms of
	// steady-state execution: small simulated problem sizes would
	// otherwise be dominated by the one-time cap-switch latency, which
	// real workloads (PolyBench LARGE, model inference loops) amortize.
	// Re-switching between per-nest caps on every repetition is still
	// charged, as in real serving.
	reps := 1
	if base.Seconds > 0 {
		reps = int(0.020/base.Seconds) + 1
	}
	if reps > 1000 {
		reps = 1000
	}
	base.Seconds *= float64(reps)
	base.PkgJoules *= float64(reps)
	base.EDP = base.PkgJoules * base.Seconds

	repeated := &ir.Func{Name: res.Module.Funcs[0].Name}
	for r := 0; r < reps; r++ {
		repeated.Ops = append(repeated.Ops, res.Module.Funcs[0].Ops...)
	}
	m.ResetCounters()
	capped, err := m.RunFunc(repeated)
	if err != nil {
		return drop(err)
	}
	// Dominant nest's characterization and cap.
	var rep core.KernelReport
	bestFlops := int64(-1)
	for _, r := range res.Reports {
		// Per-nest degraded reports carry no cache model.
		if r.CM == nil {
			continue
		}
		if r.CM.Flops > bestFlops {
			bestFlops = r.CM.Flops
			rep = r
		}
	}
	return Fig7Row{
		Kernel: name, Suite: k.Suite, Platform: p.Name,
		Class: rep.Class, CapGHz: rep.CapGHz,
		TimeGain:    1 - capped.Seconds/base.Seconds,
		EnergyGain:  1 - capped.PkgJoules/base.PkgJoules,
		EDPGain:     1 - capped.EDP/base.EDP,
		BaselineEDP: base.EDP, PolyUFCEDP: capped.EDP,
	}, nil
}

// GeomeanEDPGain returns the geometric-mean EDP improvement of the rows.
func GeomeanEDPGain(rows []Fig7Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	logSum, n := 0.0, 0
	for _, r := range rows {
		if r.Degraded || r.BaselineEDP <= 0 {
			continue
		}
		n++
		ratio := r.PolyUFCEDP / r.BaselineEDP
		if ratio <= 0 {
			ratio = 1
		}
		logSum += math.Log(ratio)
	}
	if n == 0 {
		return 0
	}
	return 1 - math.Exp(logSum/float64(n))
}

// RenderFig7 prints the comparison for both platforms over the full suite.
func (s *Suite) RenderFig7() error {
	s.printf("== Fig. 7: time, energy, EDP vs Pluto + default UFS driver ==\n")
	var names []string
	for _, k := range workloads.All() {
		names = append(names, k.Name)
	}
	for _, p := range s.plats {
		rows, err := s.Fig7(p, names)
		if err != nil {
			return err
		}
		s.printf("-- %s\n", p.Name)
		s.printf("   %-18s %4s cap(GHz) | time%% energy%% EDP%%\n", "kernel", "cls")
		var pbRows []Fig7Row
		for _, r := range rows {
			if r.Degraded {
				continue
			}
			s.printf("   %-18s %4s   %5.1f  | %+5.1f  %+5.1f  %+5.1f\n",
				r.Kernel, r.Class, r.CapGHz,
				100*r.TimeGain, 100*r.EnergyGain, 100*r.EDPGain)
			if r.Suite == "polybench" {
				pbRows = append(pbRows, r)
			}
		}
		s.printf("   PolyBench geomean EDP improvement: %.1f%%\n", 100*GeomeanEDPGain(pbRows))
		s.renderDegraded()
	}
	return nil
}

// --- Fig. 8: set- vs fully-associative EDP estimation ----------------------

// Fig8Point is one frequency sample of the three series.
type Fig8Point struct {
	FGHz                      float64
	EDPSetAssoc, EDPFullAssoc float64 // model estimates
	EDPHW                     float64 // measured
}

// Fig8Result is one kernel/platform study.
type Fig8Result struct {
	Kernel, Platform                    string
	Points                              []Fig8Point
	BestSetAssoc, BestFullAssoc, BestHW float64 // argmin frequencies
	// ErrSetAssoc/ErrFullAssoc are the mean absolute relative EDP errors
	// of each model against hardware across the sweep: the quantitative
	// version of the paper's "set associativity yields the better EDP
	// estimate" claim.
	ErrSetAssoc, ErrFullAssoc float64
}

// Fig8 compares EDP estimates under the set-associative and fully-
// associative PolyUFC-CM configurations against hardware over the uncore
// range.
func (s *Suite) Fig8(kernelName string, p *hw.Platform) (*Fig8Result, error) {
	build := func(fullyAssoc bool) ([]*model.Model, error) {
		cfg := core.DefaultConfig(s.targets[p.Name])
		cfg.CM.FullyAssoc = fullyAssoc
		res, err := s.compileCfg(kernelName, p, cfg)
		if err != nil {
			return nil, err
		}
		var ms []*model.Model
		for _, rep := range res.Reports {
			ms = append(ms, model.New(s.Constants(p.Name), model.FromCacheModel(rep.CM, rep.Threads)))
		}
		return ms, nil
	}
	saModels, err := build(false)
	if err != nil {
		return nil, err
	}
	faModels, err := build(true)
	if err != nil {
		return nil, err
	}
	// Hardware series from the default compilation's nests (a cache hit:
	// it shares the set-associative configuration above).
	res, err := s.compile(kernelName, p)
	if err != nil {
		return nil, err
	}
	m := s.machine(p)
	var profs []*hw.CacheProfile
	for _, nest := range nestsOf(res.Module) {
		prof, err := m.Profile(nest)
		if err != nil {
			return nil, err
		}
		profs = append(profs, prof)
	}
	out := &Fig8Result{Kernel: kernelName, Platform: p.Name}
	for _, f := range p.UncoreSteps() {
		var pt Fig8Point
		pt.FGHz = f
		var saT, saE, faT, faE float64
		for _, mm := range saModels {
			e := mm.At(f)
			saT += e.Seconds
			saE += e.Joules
		}
		for _, mm := range faModels {
			e := mm.At(f)
			faT += e.Seconds
			faE += e.Joules
		}
		pt.EDPSetAssoc = saT * saE
		pt.EDPFullAssoc = faT * faE
		m.SetUncoreCap(f)
		var hwT, hwE float64
		for _, prof := range profs {
			r := m.Measure(prof)
			hwT += r.Seconds
			hwE += r.PkgJoules
		}
		pt.EDPHW = hwT * hwE
		out.Points = append(out.Points, pt)
	}
	out.BestSetAssoc = argminFig8(out.Points, func(p Fig8Point) float64 { return p.EDPSetAssoc })
	out.BestFullAssoc = argminFig8(out.Points, func(p Fig8Point) float64 { return p.EDPFullAssoc })
	out.BestHW = argminFig8(out.Points, func(p Fig8Point) float64 { return p.EDPHW })
	for _, pt := range out.Points {
		out.ErrSetAssoc += math.Abs(pt.EDPSetAssoc-pt.EDPHW) / pt.EDPHW
		out.ErrFullAssoc += math.Abs(pt.EDPFullAssoc-pt.EDPHW) / pt.EDPHW
	}
	out.ErrSetAssoc /= float64(len(out.Points))
	out.ErrFullAssoc /= float64(len(out.Points))
	return out, nil
}

func argminFig8(pts []Fig8Point, val func(Fig8Point) float64) float64 {
	best := pts[0]
	for _, p := range pts {
		if val(p) < val(best) {
			best = p
		}
	}
	return best.FGHz
}

// RenderFig8 prints the gemm-on-BDW and 2mm-on-RPL studies of the paper.
// The two case studies run concurrently; rendering follows in case order.
func (s *Suite) RenderFig8() error {
	s.printf("== Fig. 8: EDP estimates, set- vs fully-associative PolyUFC-CM vs HW ==\n")
	cases := []struct {
		kernel string
		plat   *hw.Platform
	}{{"gemm-pow2", s.plats[0]}, {"2mm-pow2", s.plats[1]}}
	results, err := parallel.Map(s.ctx(), len(cases), s.Concurrency,
		func(_ context.Context, i int) (*Fig8Result, error) {
			return s.Fig8(cases[i].kernel, cases[i].plat)
		})
	if err != nil {
		return err
	}
	for _, r := range results {
		s.printf("-- %s on %s (argmin EDP: set-assoc %.1f, fully-assoc %.1f, HW %.1f GHz)\n",
			r.Kernel, r.Platform, r.BestSetAssoc, r.BestFullAssoc, r.BestHW)
		s.printf("   mean |EDP err| vs HW: set-assoc %.1f%%, fully-assoc %.1f%%\n",
			100*r.ErrSetAssoc, 100*r.ErrFullAssoc)
		s.printf("   f(GHz)  EDP set-assoc  EDP fully-assoc  EDP HW (mJ*s)\n")
		for _, pt := range r.Points {
			s.printf("   %5.1f  %13.5f  %15.5f  %10.5f\n",
				pt.FGHz, pt.EDPSetAssoc*1e3, pt.EDPFullAssoc*1e3, pt.EDPHW*1e3)
		}
	}
	return nil
}
