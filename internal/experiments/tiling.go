package experiments

import (
	"fmt"
	"strings"

	"polyufc/internal/core"
	"polyufc/internal/hw"
	"polyufc/internal/ir"
	"polyufc/internal/tiling"
	"polyufc/internal/workloads"
)

// tilingStudySpecs are the strategies the per-strategy reruns compare,
// pluto first (the baseline every other row diverges from).
func tilingStudySpecs() []tiling.Spec {
	var out []tiling.Spec
	for _, name := range tiling.Names() {
		out = append(out, tiling.Spec{Name: name})
	}
	return out
}

// phasePattern renders one dialect's class sequence ("CB BB BB ... CB").
func phasePattern(phases []core.Phase) string {
	parts := make([]string, len(phases))
	for i, ph := range phases {
		parts[i] = ph.Class.String()
	}
	return strings.Join(parts, " ")
}

// TilingPhaseStudy reruns the Fig. 5 phase-change study of sdpa (BERT)
// once per tiling strategy and returns the affine-level phase sequences
// keyed by strategy name. The affine view is the one the tile transform
// reshapes, so it is where strategies can flip a nest between CB and BB.
func (s *Suite) TilingPhaseStudy(p *hw.Platform) (map[string][]core.Phase, error) {
	k, err := workloads.ByName("sdpa-bert")
	if err != nil {
		return nil, err
	}
	out := map[string][]core.Phase{}
	for _, spec := range tilingStudySpecs() {
		mod, err := k.Build(s.Size)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(s.targets[p.Name])
		cfg.Tiling = spec
		phases, err := core.PhaseStudy(mod, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		out[spec.Name] = phases[ir.DialectAffine]
	}
	return out, nil
}

// TilingCapRow is one (kernel, nest, strategy) outcome of the strategy
// comparison sweep: that nest's classification, applied tile size and
// selected cap.
type TilingCapRow struct {
	Kernel   string
	Nest     int
	Strategy string // what the report names, e.g. "auto:latency"
	Class    string
	Tiled    bool
	TileSize int64
	CapGHz   float64
	// Diverges marks a row whose class or cap differs from the pluto
	// baseline row of the same kernel and nest.
	Diverges bool
}

// TilingWitnessKernels are the kernels of the strategy comparison sweep:
// gemm as the agreement baseline (every strategy lands on the Pluto
// cap), and the triangular solvers cholesky and ludcmp, whose skewed
// working sets make both cacheoblivious (tile 8) and latency (tile
// 8/16) select a bandwidth-bound cap a grid step above Pluto-32 — on
// both platforms, at test and bench sizes alike.
var TilingWitnessKernels = []string{"gemm", "cholesky", "ludcmp"}

// TilingCapSweep compiles each kernel under every strategy through the
// suite's memo cache and flags the rows that diverge from pluto,
// comparing nest by nest. The first nest always appears in the output;
// deeper nests appear only where some strategy diverges.
func (s *Suite) TilingCapSweep(p *hw.Platform, kernels []string) ([]TilingCapRow, error) {
	specs := tilingStudySpecs()
	var out []TilingCapRow
	for _, kernel := range kernels {
		perStrategy := make([][]core.KernelReport, len(specs))
		for i, spec := range specs {
			cfg := core.DefaultConfig(s.targets[p.Name])
			cfg.Tiling = spec
			res, err := s.compileCfg(kernel, p, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", kernel, spec.Name, err)
			}
			perStrategy[i] = res.Reports
		}
		for nest := range perStrategy[0] {
			rows := make([]TilingCapRow, 0, len(specs))
			base := TilingCapRow{}
			diverged := false
			for i := range specs {
				if nest >= len(perStrategy[i]) {
					continue
				}
				r := perStrategy[i][nest]
				row := TilingCapRow{
					Kernel: kernel, Nest: nest, Strategy: r.Tiling, Class: r.Class.String(),
					Tiled: r.Tiled, TileSize: r.TileSize, CapGHz: r.CapGHz,
				}
				if i == 0 {
					base = row
				} else {
					row.Diverges = row.Class != base.Class || row.CapGHz != base.CapGHz
					diverged = diverged || row.Diverges
				}
				rows = append(rows, row)
			}
			if nest == 0 || diverged {
				out = append(out, rows...)
			}
		}
	}
	return out, nil
}

// RenderTiling prints the per-strategy phase-change rerun and the
// strategy comparison sweep: which tiling strategy changes which
// kernel's CB/BB classification or selected cap relative to the
// paper's Pluto-32 baseline.
func (s *Suite) RenderTiling() error {
	p := s.plats[0]
	if len(s.plats) > 1 {
		p = s.plats[1] // RPL on the paper platform pair, like Fig. 5
	}
	study, err := s.TilingPhaseStudy(p)
	if err != nil {
		return err
	}
	s.printf("== Tiling strategies: per-strategy phase-change rerun (sdpa BERT, affine level, %s) ==\n", p.Name)
	basePat := phasePattern(study[tiling.NamePluto])
	for _, spec := range tilingStudySpecs() {
		pat := phasePattern(study[spec.Name])
		mark := ""
		if spec.Name != tiling.NamePluto && pat != basePat {
			mark = "   <- diverges from pluto"
		}
		s.printf("-- %-14s %s%s\n", spec.Name+":", pat, mark)
	}
	rows, err := s.TilingCapSweep(p, TilingWitnessKernels)
	if err != nil {
		return err
	}
	s.printf("-- caps per strategy on %s (nest 0 plus every diverging nest):\n", p.Name)
	s.printf("   %-15s %-20s %-3s %5s %8s\n", "kernel/nest", "strategy", "cls", "tile", "cap(GHz)")
	for _, r := range rows {
		mark := ""
		if r.Diverges {
			mark = "   <- differs from pluto"
		}
		tile := "-"
		if r.Tiled {
			tile = fmt.Sprintf("%d", r.TileSize)
		}
		s.printf("   %-15s %-20s %-3s %5s %8.1f%s\n",
			fmt.Sprintf("%s#%d", r.Kernel, r.Nest), r.Strategy, r.Class, tile, r.CapGHz, mark)
	}
	return nil
}
