package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"polyufc/internal/hw"
	"polyufc/internal/roofline"
	"polyufc/internal/workloads"
)

// renderAll renders the given experiments into one buffer.
func renderAll(t *testing.T, s *Suite, ids ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	prev := s.Out
	s.Out = &buf
	defer func() { s.Out = prev }()
	for _, id := range ids {
		if err := s.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	return buf.Bytes()
}

// TestRenderersByteIdenticalAcrossConcurrency is the engine's determinism
// contract: RenderFig1/Fig6/Fig7/Fig8 at concurrency N match the serial
// run byte-for-byte.
func TestRenderersByteIdenticalAcrossConcurrency(t *testing.T) {
	ids := []string{"fig1", "fig6", "fig7", "fig8"}
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Concurrency = 1
	serial := renderAll(t, s, ids...)
	for _, conc := range []int{2, 8, 0} {
		s2, err := New(workloads.Test, nil)
		if err != nil {
			t.Fatal(err)
		}
		s2.Concurrency = conc
		got := renderAll(t, s2, ids...)
		if !bytes.Equal(serial, got) {
			t.Fatalf("concurrency %d output differs from serial (%d vs %d bytes)",
				conc, len(got), len(serial))
		}
	}
	// Warm-cache re-render on the same suite must also be identical.
	s.Concurrency = 4
	warm := renderAll(t, s, ids...)
	if !bytes.Equal(serial, warm) {
		t.Fatal("warm-cache parallel output differs from serial")
	}
}

// TestCalibrationMatchesSerial asserts the concurrently calibrated
// constants in Suite.New are identical to direct serial calibration.
func TestCalibrationMatchesSerial(t *testing.T) {
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range hw.Platforms() {
		want, err := roofline.Calibrate(hw.NewMachine(p))
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Constants(p.Name); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: concurrent calibration differs from serial", p.Name)
		}
	}
	// Platform order is the hw.Platforms order, not completion order.
	plats := hw.Platforms()
	for i, p := range s.Platforms() {
		if p.Name != plats[i].Name {
			t.Fatalf("platform %d = %s, want %s", i, p.Name, plats[i].Name)
		}
	}
}

// TestSweepErrorPropagatesLowestIndex: a failing kernel surfaces its own
// error deterministically, at any concurrency.
func TestSweepErrorPropagatesLowestIndex(t *testing.T) {
	s := suite(t)
	kernels := []string{"gemm", "no-such-kernel-a", "mvt", "no-such-kernel-b"}
	for _, conc := range []int{1, 4} {
		s.Concurrency = conc
		_, err := s.Fig7(s.Platforms()[0], kernels)
		if err == nil {
			t.Fatalf("conc %d: expected error", conc)
		}
		if !strings.Contains(err.Error(), "no-such-kernel-a") {
			t.Fatalf("conc %d: want the lowest-index failure, got %v", conc, err)
		}
	}
	s.Concurrency = 0
}

// TestSweepCancellation: a cancelled suite context aborts the sweep with
// ctx.Err instead of running it.
func TestSweepCancellation(t *testing.T) {
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Ctx = ctx
	if _, err := s.Fig1(s.Platforms()[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig1 err = %v", err)
	}
	if err := s.Run("fig7"); !errors.Is(err, context.Canceled) {
		t.Fatalf("fig7 err = %v", err)
	}
	// Clearing the context re-enables the suite.
	s.Ctx = nil
	if _, err := s.Fig1(s.Platforms()[0]); err != nil {
		t.Fatalf("after clearing ctx: %v", err)
	}
}

// TestCompileCacheReusedAcrossFigures: Fig. 1/6/7 share kernels, so a full
// render pass must hit the memo cache instead of recompiling.
func TestCompileCacheReusedAcrossFigures(t *testing.T) {
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	renderAll(t, s, "fig1", "fig6", "fig7")
	hits, misses := s.CacheStats()
	if misses == 0 {
		t.Fatal("no compilations recorded")
	}
	if hits == 0 {
		t.Fatalf("no cache reuse across figures (misses=%d)", misses)
	}
	// A second pass over the same figures is all hits.
	_, missesBefore := s.CacheStats()
	renderAll(t, s, "fig1", "fig6", "fig7")
	_, missesAfter := s.CacheStats()
	if missesAfter != missesBefore {
		t.Fatalf("second pass recompiled: misses %d -> %d", missesBefore, missesAfter)
	}
	s.ResetCache()
	if h, m := s.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("reset stats = %d/%d", h, m)
	}
}

// TestProfileCacheSharedAcrossFigures: the figures re-measure the same
// compiled nests, so one render pass reuses exact-simulator profiles
// across its per-worker machines, and a warm second pass simulates
// nothing new.
func TestProfileCacheSharedAcrossFigures(t *testing.T) {
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	renderAll(t, s, "fig1", "fig6", "fig7")
	hits, misses := s.ProfileStats()
	if misses == 0 {
		t.Fatal("no profile simulations recorded")
	}
	if hits == 0 {
		t.Fatalf("no profile reuse across figures (misses=%d)", misses)
	}
	// A warm second pass hits both caches: same Results, same nests.
	_, missesBefore := s.ProfileStats()
	renderAll(t, s, "fig1", "fig6", "fig7")
	_, missesAfter := s.ProfileStats()
	if missesAfter != missesBefore {
		t.Fatalf("second pass re-simulated: misses %d -> %d", missesBefore, missesAfter)
	}
	s.ResetCache()
	if h, m := s.ProfileStats(); h != 0 || m != 0 {
		t.Fatalf("reset profile stats = %d/%d", h, m)
	}
}

// TestFig8CacheSharing: the hardware series compile shares the
// set-associative compilation, so one Fig8 case costs two compiles.
func TestFig8CacheSharing(t *testing.T) {
	s, err := New(workloads.Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig8("gemm-pow2", s.Platforms()[0]); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.CacheStats()
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (set-assoc + fully-assoc)", misses)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (hardware series reuses set-assoc)", hits)
	}
}
