package cachesim

import "fmt"

// MultiSim is a multi-core cache simulator: per-core private levels (all
// but the last) and one shared last-level cache. It provides the ground
// truth for the paper's Sec. IV-B thread-sharing approximation ("divide
// sequential miss counts by the thread count"), which ignores inter-thread
// conflict and coherence misses — exactly the error this simulator can
// quantify.
type MultiSim struct {
	cfg      Config
	cores    int
	private  [][]*level // [core][level]
	shared   *level
	lineSize int64
	lineBits uint

	DRAMReadBytes  int64
	DRAMWriteBytes int64
}

// NewMulti builds a simulator with `cores` private hierarchies sharing the
// final level of cfg.
func NewMulti(cfg Config, cores int) (*MultiSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		return nil, fmt.Errorf("cachesim: need at least one core")
	}
	if len(cfg.Levels) < 2 {
		return nil, fmt.Errorf("cachesim: multi-core simulation needs private levels plus a shared LLC")
	}
	m := &MultiSim{cfg: cfg, cores: cores, lineSize: cfg.Levels[0].LineSize}
	for b := m.lineSize; b > 1; b >>= 1 {
		m.lineBits++
	}
	nPriv := len(cfg.Levels) - 1
	for c := 0; c < cores; c++ {
		var levels []*level
		for _, lc := range cfg.Levels[:nPriv] {
			levels = append(levels, newLevel(lc))
		}
		m.private = append(m.private, levels)
	}
	m.shared = newLevel(cfg.Levels[nPriv])
	return m, nil
}

// Access simulates one access by the given core.
func (m *MultiSim) Access(core int, addr, size int64, write bool) {
	first := addr >> m.lineBits
	last := (addr + size - 1) >> m.lineBits
	for line := first; line <= last; line++ {
		m.accessLine(core, line, write)
	}
}

func (m *MultiSim) accessLine(core int, line int64, write bool) {
	if write {
		filled := false
		for _, l := range m.private[core] {
			if l.access(line) {
				filled = true
				break
			}
		}
		if !filled && !m.shared.access(line) {
			m.DRAMReadBytes += m.lineSize
		}
		m.DRAMWriteBytes += m.lineSize
		return
	}
	for _, l := range m.private[core] {
		if l.access(line) {
			return
		}
	}
	if !m.shared.access(line) {
		m.DRAMReadBytes += m.lineSize
	}
}

// SharedStats returns the shared LLC statistics.
func (m *MultiSim) SharedStats() Stats { return m.shared.st }

// PrivateStats returns the statistics of one core's private level.
func (m *MultiSim) PrivateStats(core, lvl int) Stats { return m.private[core][lvl].st }

// TotalPrivateStats sums one private level's statistics across cores.
func (m *MultiSim) TotalPrivateStats(lvl int) Stats {
	var s Stats
	for c := 0; c < m.cores; c++ {
		st := m.private[c][lvl].st
		s.Accesses += st.Accesses
		s.Hits += st.Hits
		s.Misses += st.Misses
		s.ColdMisses += st.ColdMisses
	}
	return s
}

// DRAMBytes returns total memory traffic.
func (m *MultiSim) DRAMBytes() int64 { return m.DRAMReadBytes + m.DRAMWriteBytes }

// Cores returns the number of cores.
func (m *MultiSim) Cores() int { return m.cores }
