// Package cachesim implements an exact trace-driven, multi-level,
// set-associative LRU cache simulator with the policies PolyUFC-CM models:
// inclusive caches, write-allocate, write-through (Sec. IV-A of the paper).
// It plays two roles in this reproduction: ground truth for validating the
// analytic cache model, and the memory subsystem of the simulated hardware
// platforms (standing in for the real BDW/RPL machines).
package cachesim

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int64
	LineSize  int64
	Assoc     int64 // ways per set; 0 means fully associative
}

// NumSets returns the number of sets in the level.
func (c LevelConfig) NumSets() int64 {
	assoc := c.Assoc
	lines := c.SizeBytes / c.LineSize
	if assoc <= 0 || assoc > lines {
		assoc = lines
	}
	return lines / assoc
}

// Ways returns the effective associativity.
func (c LevelConfig) Ways() int64 {
	lines := c.SizeBytes / c.LineSize
	if c.Assoc <= 0 || c.Assoc > lines {
		return lines
	}
	return c.Assoc
}

// Config is a cache hierarchy, outermost level last (L1 first, LLC last).
type Config struct {
	Levels []LevelConfig
}

// Validate checks structural invariants of the hierarchy.
func (c Config) Validate() error {
	if len(c.Levels) == 0 {
		return fmt.Errorf("cachesim: no cache levels")
	}
	line := c.Levels[0].LineSize
	for _, l := range c.Levels {
		if l.LineSize != line {
			return fmt.Errorf("cachesim: heterogeneous line sizes unsupported (%d vs %d)", l.LineSize, line)
		}
		if l.SizeBytes%(l.LineSize*l.Ways()) != 0 {
			return fmt.Errorf("cachesim: level %s size %d not divisible by way size", l.Name, l.SizeBytes)
		}
		if l.LineSize&(l.LineSize-1) != 0 {
			return fmt.Errorf("cachesim: line size %d not a power of two", l.LineSize)
		}
	}
	return nil
}

// FullyAssociative returns a copy of the config with every level fully
// associative (the Fig. 8 ablation).
func (c Config) FullyAssociative() Config {
	out := Config{Levels: append([]LevelConfig(nil), c.Levels...)}
	for i := range out.Levels {
		out.Levels[i].Assoc = 0
	}
	return out
}

// Stats holds per-level access statistics.
type Stats struct {
	Accesses int64
	Hits     int64
	Misses   int64
	// ColdMisses counts first-touch misses (line never seen before by this
	// level).
	ColdMisses int64
}

// MissRatio returns misses/accesses, or 0 for an idle level.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRatio returns hits/accesses, or 0 for an idle level.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// level is one cache level's state.
type level struct {
	cfg     LevelConfig
	sets    int64
	ways    int64
	setMask int64
	// tags[set] is the LRU-ordered list of resident line tags (most
	// recently used first).
	tags [][]int64
	seen map[int64]bool // lines ever brought in (for cold-miss accounting)
	st   Stats
}

func newLevel(cfg LevelConfig) *level {
	sets := cfg.NumSets()
	l := &level{
		cfg:  cfg,
		sets: sets,
		ways: cfg.Ways(),
		tags: make([][]int64, sets),
		seen: make(map[int64]bool),
	}
	l.setMask = sets - 1
	return l
}

// access looks up a line (by line number) and updates LRU state; reports
// whether it hit.
func (l *level) access(line int64) bool {
	var set int64
	if l.sets&(l.sets-1) == 0 {
		set = line & l.setMask
	} else {
		set = line % l.sets
	}
	ways := l.tags[set]
	for i, t := range ways {
		if t == line {
			// Move to front.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			l.st.Accesses++
			l.st.Hits++
			return true
		}
	}
	// Miss: allocate (write-allocate applies to both reads and writes).
	l.st.Accesses++
	l.st.Misses++
	if !l.seen[line] {
		l.seen[line] = true
		l.st.ColdMisses++
	}
	if int64(len(ways)) < l.ways {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	l.tags[set] = ways
	return false
}

// Simulator is a multi-level cache simulator.
type Simulator struct {
	cfg      Config
	levels   []*level
	lineSize int64
	lineBits uint

	// DRAMReadBytes counts line fills from memory (LLC read misses).
	DRAMReadBytes int64
	// DRAMWriteBytes counts write-through traffic reaching memory.
	DRAMWriteBytes int64
}

// New constructs a simulator; the config must be valid.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, lineSize: cfg.Levels[0].LineSize}
	for b := s.lineSize; b > 1; b >>= 1 {
		s.lineBits++
	}
	for _, lc := range cfg.Levels {
		s.levels = append(s.levels, newLevel(lc))
	}
	return s, nil
}

// LineSize returns the hierarchy's cache line size in bytes.
func (s *Simulator) LineSize() int64 { return s.lineSize }

// Access simulates one memory access of the given byte size. Accesses
// spanning multiple lines touch each line. Per the modeled write-through
// policy, a write is forwarded through every level to memory; reads walk
// down the hierarchy until they hit.
func (s *Simulator) Access(addr, size int64, write bool) {
	first := addr >> s.lineBits
	last := (addr + size - 1) >> s.lineBits
	for line := first; line <= last; line++ {
		s.accessLine(line, write)
	}
}

func (s *Simulator) accessLine(line int64, write bool) {
	if write {
		// Write-allocate: a write miss fetches the line like a read
		// (filling every level it missed in); write-through additionally
		// forwards the written bytes to memory.
		filled := false
		for _, l := range s.levels {
			if l.access(line) {
				filled = true
				break
			}
		}
		if !filled {
			s.DRAMReadBytes += s.lineSize
		}
		s.DRAMWriteBytes += s.lineSize
		return
	}
	for _, l := range s.levels {
		if l.access(line) {
			return
		}
	}
	s.DRAMReadBytes += s.lineSize
}

// LevelStats returns the statistics of level i (0 = L1).
func (s *Simulator) LevelStats(i int) Stats { return s.levels[i].st }

// NumLevels returns the number of cache levels.
func (s *Simulator) NumLevels() int { return len(s.levels) }

// LLCStats returns the last-level cache statistics.
func (s *Simulator) LLCStats() Stats { return s.levels[len(s.levels)-1].st }

// DRAMBytes returns total memory traffic: fills plus write-through bytes.
func (s *Simulator) DRAMBytes() int64 { return s.DRAMReadBytes + s.DRAMWriteBytes }

// Reset clears all cache state and statistics.
func (s *Simulator) Reset() {
	for i, l := range s.levels {
		s.levels[i] = newLevel(l.cfg)
	}
	s.DRAMReadBytes = 0
	s.DRAMWriteBytes = 0
}
