package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCfg(assoc int64) Config {
	return Config{Levels: []LevelConfig{
		{Name: "L1", SizeBytes: 1024, LineSize: 64, Assoc: assoc},
	}}
}

func TestColdMisses(t *testing.T) {
	s := mustNew(t, smallCfg(2))
	for i := int64(0); i < 8; i++ {
		s.Access(i*64, 8, false)
	}
	st := s.LevelStats(0)
	if st.Misses != 8 || st.ColdMisses != 8 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-access: all hits (8 lines fit in 1 KiB / 64 B = 16 lines).
	for i := int64(0); i < 8; i++ {
		s.Access(i*64, 8, false)
	}
	st = s.LevelStats(0)
	if st.Hits != 8 || st.Misses != 8 {
		t.Fatalf("stats after reuse = %+v", st)
	}
}

func TestSameLineHits(t *testing.T) {
	s := mustNew(t, smallCfg(2))
	s.Access(0, 8, false)
	s.Access(8, 8, false)
	s.Access(56, 8, false)
	st := s.LevelStats(0)
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 8 sets. Lines 0, 8, 16 all map to set 0.
	s := mustNew(t, smallCfg(2))
	s.Access(0*64, 8, false)  // set 0: [0]
	s.Access(8*64, 8, false)  // set 0: [8 0]
	s.Access(0*64, 8, false)  // hit; set 0: [0 8]
	s.Access(16*64, 8, false) // evicts 8; set 0: [16 0]
	s.Access(0*64, 8, false)  // hit
	s.Access(8*64, 8, false)  // miss (evicted)
	st := s.LevelStats(0)
	if st.Hits != 2 || st.Misses != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConflictVsFullyAssociative(t *testing.T) {
	// Two lines that conflict in a set-associative cache but not in a
	// fully associative one of the same size: stride = sets*line.
	setAssoc := mustNew(t, Config{Levels: []LevelConfig{{Name: "L1", SizeBytes: 1024, LineSize: 64, Assoc: 1}}})
	fullAssoc := mustNew(t, Config{Levels: []LevelConfig{{Name: "L1", SizeBytes: 1024, LineSize: 64, Assoc: 0}}})
	// 16 direct-mapped sets; lines 0 and 16 collide.
	for rep := 0; rep < 4; rep++ {
		for _, line := range []int64{0, 16} {
			setAssoc.Access(line*64, 8, false)
			fullAssoc.Access(line*64, 8, false)
		}
	}
	sa, fa := setAssoc.LevelStats(0), fullAssoc.LevelStats(0)
	if sa.Misses != 8 {
		t.Fatalf("set-assoc misses = %d, want 8 (ping-pong)", sa.Misses)
	}
	if fa.Misses != 2 {
		t.Fatalf("fully-assoc misses = %d, want 2 (compulsory only)", fa.Misses)
	}
}

func TestWriteThroughDRAMTraffic(t *testing.T) {
	s := mustNew(t, smallCfg(2))
	s.Access(0, 8, true)
	s.Access(0, 8, true)
	if s.DRAMWriteBytes != 128 {
		t.Fatalf("DRAMWriteBytes = %d, want 128 (every write reaches memory)", s.DRAMWriteBytes)
	}
	// Write-allocate fetches the line once on the first write miss.
	if s.DRAMReadBytes != 64 {
		t.Fatalf("DRAMReadBytes = %d, want 64 (one allocate fill)", s.DRAMReadBytes)
	}
	// The written line is resident, so a read hits and causes no new fill.
	s.Access(0, 8, false)
	if s.DRAMReadBytes != 64 {
		t.Fatalf("DRAMReadBytes = %d after read hit, want 64", s.DRAMReadBytes)
	}
}

func TestMultiLevelMissPropagation(t *testing.T) {
	cfg := Config{Levels: []LevelConfig{
		{Name: "L1", SizeBytes: 512, LineSize: 64, Assoc: 2},
		{Name: "L2", SizeBytes: 4096, LineSize: 64, Assoc: 4},
	}}
	s := mustNew(t, cfg)
	// Touch 32 lines: L1 holds 8, L2 holds 64.
	for i := int64(0); i < 32; i++ {
		s.Access(i*64, 8, false)
	}
	l1, l2 := s.LevelStats(0), s.LevelStats(1)
	if l1.Misses != 32 {
		t.Fatalf("L1 misses = %d", l1.Misses)
	}
	if l2.Accesses != 32 || l2.Misses != 32 {
		t.Fatalf("L2 stats = %+v", l2)
	}
	if s.DRAMReadBytes != 32*64 {
		t.Fatalf("DRAM read bytes = %d", s.DRAMReadBytes)
	}
	// Second sweep: L1 misses (working set 32 lines > 8), L2 all hits.
	s.Access(0, 8, false)
	// line 0 was evicted from L1 but resides in L2.
	l2b := s.LevelStats(1)
	if l2b.Hits != 1 {
		t.Fatalf("L2 hits = %d, want 1", l2b.Hits)
	}
	if s.DRAMReadBytes != 32*64 {
		t.Fatalf("unexpected extra DRAM fill: %d", s.DRAMReadBytes)
	}
}

func TestLineSpanningAccess(t *testing.T) {
	s := mustNew(t, smallCfg(2))
	s.Access(60, 8, false) // spans lines 0 and 1
	st := s.LevelStats(0)
	if st.Accesses != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// 3 sets x 2 ways x 64 B = 384 B: modulo placement path.
	cfg := Config{Levels: []LevelConfig{{Name: "L1", SizeBytes: 384, LineSize: 64, Assoc: 2}}}
	s := mustNew(t, cfg)
	for i := int64(0); i < 12; i++ {
		s.Access(i*64, 8, false)
	}
	st := s.LevelStats(0)
	if st.Accesses != 12 || st.Misses != 12 {
		t.Fatalf("stats = %+v", st)
	}
	// Lines 0, 3, 6 map to set 0 (2 ways): 0 evicted after 3, 6.
	s.Access(0, 8, false)
	if s.LevelStats(0).Hits != 0 {
		t.Fatal("expected conflict miss in mod-3 set")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Levels: []LevelConfig{{Name: "L1", SizeBytes: 1000, LineSize: 60, Assoc: 2}}},
		{Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 1024, LineSize: 64, Assoc: 2},
			{Name: "L2", SizeBytes: 4096, LineSize: 128, Assoc: 2},
		}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestReset(t *testing.T) {
	s := mustNew(t, smallCfg(2))
	s.Access(0, 8, false)
	s.Reset()
	if s.LevelStats(0).Accesses != 0 || s.DRAMBytes() != 0 {
		t.Fatal("Reset did not clear state")
	}
	s.Access(0, 8, false)
	if s.LevelStats(0).ColdMisses != 1 {
		t.Fatal("cold-miss tracking not reset")
	}
}

func TestPropertyHitsPlusMissesEqualsAccesses(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := mustNew(t, Config{Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 2048, LineSize: 64, Assoc: 4},
			{Name: "LLC", SizeBytes: 16384, LineSize: 64, Assoc: 8},
		}})
		n := 200 + r.Intn(800)
		for i := 0; i < n; i++ {
			s.Access(int64(r.Intn(1<<14)), 8, r.Intn(4) == 0)
		}
		for l := 0; l < s.NumLevels(); l++ {
			st := s.LevelStats(l)
			if st.Hits+st.Misses != st.Accesses {
				return false
			}
			if st.ColdMisses > st.Misses {
				return false
			}
		}
		// LLC misses never exceed L1 misses for reads+writes combined,
		// since each LLC access stems from an L1 event.
		return s.LevelStats(1).Accesses <= s.LevelStats(0).Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLRUInclusion(t *testing.T) {
	// LRU is a stack algorithm: for fully associative caches, a larger
	// capacity never incurs more misses on the same trace.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		small := mustNew(t, Config{Levels: []LevelConfig{{Name: "L1", SizeBytes: 512, LineSize: 64, Assoc: 0}}})
		big := mustNew(t, Config{Levels: []LevelConfig{{Name: "L1", SizeBytes: 2048, LineSize: 64, Assoc: 0}}})
		for i := 0; i < 500; i++ {
			addr := int64(r.Intn(64)) * 64
			small.Access(addr, 8, false)
			big.Access(addr, 8, false)
		}
		return big.LevelStats(0).Misses <= small.LevelStats(0).Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorHelpers(t *testing.T) {
	s := mustNew(t, smallCfg(2))
	if s.LineSize() != 64 {
		t.Fatalf("LineSize = %d", s.LineSize())
	}
	s.Access(0, 8, false)
	s.Access(0, 8, false)
	st := s.LLCStats()
	if st.MissRatio() != 0.5 || st.HitRatio() != 0.5 {
		t.Fatalf("ratios = %f/%f", st.MissRatio(), st.HitRatio())
	}
	var idle Stats
	if idle.MissRatio() != 0 || idle.HitRatio() != 0 {
		t.Fatal("idle ratios must be zero")
	}
	fa := smallCfg(2).FullyAssociative()
	if fa.Levels[0].Assoc != 0 {
		t.Fatal("FullyAssociative did not clear associativity")
	}
}

func TestMultiCoreSharedLLCInPackage(t *testing.T) {
	cfg := Config{Levels: []LevelConfig{
		{Name: "L1", SizeBytes: 512, LineSize: 64, Assoc: 2},
		{Name: "LLC", SizeBytes: 8192, LineSize: 64, Assoc: 4},
	}}
	m, err := NewMulti(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 2 {
		t.Fatalf("cores = %d", m.Cores())
	}
	// Writes from core 0 fill the shared LLC; reads from core 1 then hit
	// there while missing privately.
	m.Access(0, 0, 8, true)
	m.Access(1, 0, 8, false)
	if m.SharedStats().Hits != 1 {
		t.Fatalf("shared stats = %+v", m.SharedStats())
	}
	if m.TotalPrivateStats(0).Misses != 2 {
		t.Fatalf("private misses = %+v", m.TotalPrivateStats(0))
	}
	if m.DRAMBytes() != 64+64 { // one fill + one write-through line
		t.Fatalf("DRAM bytes = %d", m.DRAMBytes())
	}
	if m.PrivateStats(0, 0).Accesses != 1 {
		t.Fatalf("core0 accesses = %+v", m.PrivateStats(0, 0))
	}
	// A line-spanning access touches two lines.
	m.Access(0, 60, 8, false)
	if m.PrivateStats(0, 0).Accesses != 3 {
		t.Fatalf("spanning access accounting = %+v", m.PrivateStats(0, 0))
	}
}

// mustNew builds a simulator from a config the test knows is valid.
func mustNew(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
