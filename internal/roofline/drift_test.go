package roofline

import (
	"testing"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
)

// The watchdog's full episode: small residuals stay OK, sustained large
// ones degrade exactly once, a re-fit claims the episode, and a
// successful completion resets the history so old residuals cannot
// re-trip the fresh fit.
func TestDriftTrackerStateMachine(t *testing.T) {
	d := NewDriftTracker(DriftOptions{Threshold: 0.10, MinSamples: 3, Alpha: 0.5})
	var fired []string
	d.OnDegrade(func(b string) { fired = append(fired, b) })

	// Healthy residuals (~1%) never degrade, no matter how many.
	for i := 0; i < 10; i++ {
		d.Record("RPL", 0.99, 1.0)
	}
	if s := d.State("RPL"); s != DriftOK {
		t.Fatalf("state after healthy samples = %v", s)
	}
	if len(fired) != 0 {
		t.Fatalf("OnDegrade fired on healthy residuals: %v", fired)
	}

	// One outlier under min-samples must not trip a fresh backend.
	d.Record("BDW", 1.0, 2.0)
	if s := d.State("BDW"); s != DriftOK {
		t.Fatalf("single outlier degraded BDW: %v", s)
	}

	// Sustained 30% drift flips RPL, firing the hook exactly once even as
	// bad samples keep arriving.
	for i := 0; i < 6; i++ {
		d.Record("RPL", 1.0, 1.3)
	}
	if s := d.State("RPL"); s != DriftDegraded {
		t.Fatalf("state after sustained drift = %v", s)
	}
	if len(fired) != 1 || fired[0] != "RPL" {
		t.Fatalf("OnDegrade calls = %v, want one for RPL", fired)
	}
	if !d.Degraded("RPL") || d.Degraded("BDW") {
		t.Fatal("Degraded() disagrees with states")
	}

	// Only one re-fit may claim the episode.
	if !d.BeginRefit("RPL") {
		t.Fatal("BeginRefit refused the first claim")
	}
	if d.BeginRefit("RPL") {
		t.Fatal("BeginRefit allowed a concurrent second re-fit")
	}
	if s := d.State("RPL"); s != DriftRefitting || !d.Degraded("RPL") {
		t.Fatalf("state during refit = %v", s)
	}

	// Failure falls back to degraded and re-arms the hook.
	d.CompleteRefit("RPL", false)
	if s := d.State("RPL"); s != DriftDegraded {
		t.Fatalf("state after failed refit = %v", s)
	}
	d.Record("RPL", 1.0, 1.3)
	if len(fired) != 2 {
		t.Fatalf("failed refit did not re-arm OnDegrade: %v", fired)
	}

	// Success resets the residual history: the stale EWMA must not trip
	// the brand-new fit.
	d.BeginRefit("RPL")
	d.CompleteRefit("RPL", true)
	if s := d.State("RPL"); s != DriftOK {
		t.Fatalf("state after successful refit = %v", s)
	}
	st := d.Snapshot()["RPL"]
	if st.Samples != 0 || st.MeanAbsRelErr != 0 {
		t.Fatalf("residual history survived the refit: %+v", st)
	}
	// The failed re-fit fell back into the SAME episode, so only one
	// degradation is counted.
	if st.Refits != 1 || st.Degradations != 1 {
		t.Fatalf("episode counters: %+v", st)
	}
	d.Record("RPL", 1.0, 1.02)
	if s := d.State("RPL"); s != DriftOK {
		t.Fatalf("healthy sample after refit degraded: %v", s)
	}
}

// Garbage measurements (zero, negative, NaN predictions) are discarded,
// and a nil tracker is a no-op — serving code paths need no guards.
func TestDriftTrackerRejectsGarbage(t *testing.T) {
	d := NewDriftTracker(DriftOptions{})
	d.Record("RPL", 1.0, 0)
	d.Record("RPL", 1.0, -2)
	if st, ok := d.Snapshot()["RPL"]; ok && st.Samples != 0 {
		t.Fatalf("garbage measurements recorded: %+v", st)
	}
	var nilT *DriftTracker
	nilT.Record("RPL", 1, 1)
	if nilT.State("RPL") != DriftOK || nilT.Degraded("RPL") {
		t.Fatal("nil tracker not inert")
	}
}

// Refit against drifted hardware produces a genuinely different fit: the
// memory-path constants slow down by the injected drift factor, the
// constants hash changes (so plan tables pinned to the old fit go
// stale), and the provenance names the re-fit tool.
func TestRefitSeesDriftedHardware(t *testing.T) {
	tgt, err := ResolveName("RPL")
	if err != nil {
		t.Fatal(err)
	}
	reg := faults.New(7)
	reg.Enable(hw.FaultMeasureDrift, faults.Spec{P: 1})

	refit, err := Refit(tgt, reg)
	if err != nil {
		t.Fatal(err)
	}
	if refit.Platform != tgt.Platform {
		t.Fatal("refit rebuilt the platform instead of sharing it")
	}
	if refit.Constants.Hash() == tgt.Constants.Hash() {
		t.Fatal("refit on drifted hardware reproduced the stale constants hash")
	}
	// Drift dilates measured time by DriftTimeFactor, so the re-fitted
	// per-byte cost grows by the same factor (memory benches are long
	// enough that overhead is in the noise).
	ratio := refit.Constants.TByteMax / tgt.Constants.TByteMax
	if ratio < hw.DriftTimeFactor*0.95 || ratio > hw.DriftTimeFactor*1.05 {
		t.Fatalf("TByteMax ratio = %.3f, want ~%.2f", ratio, hw.DriftTimeFactor)
	}
	if refit.Calibration.Provenance.Tool != "polyufc/roofline-refit" {
		t.Fatalf("provenance tool = %q", refit.Calibration.Provenance.Tool)
	}
	if refit.Calibration.BackendHash != tgt.Backend.Hash() {
		t.Fatal("refit lost the backend pin")
	}

	// A clean-hardware refit of a clean target reproduces the same
	// physics (hash may differ only through the provenance-free
	// constants; it must in fact be identical since the simulator is
	// noiseless).
	again, err := Refit(tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Constants.Hash() != tgt.Constants.Hash() {
		t.Fatal("noiseless refit did not reproduce the original fit")
	}
}
