package roofline

import (
	"context"
	"fmt"
	"time"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/pipeline"
	"polyufc/internal/platform"
)

// Target is one resolved backend: the registry description, the
// simulated platform built from it, and the calibrated roofline
// constants — everything a compilation needs to know about its machine,
// as a single handle. Constants points into Calibration so the fit and
// its provenance travel together.
type Target struct {
	// Backend is the source description; nil for hand-built targets
	// (tests that construct Constants directly).
	Backend   *platform.Backend
	Platform  *hw.Platform
	Constants *Constants
	// Calibration carries the fit provenance; nil when the constants
	// were not produced by Resolve or loaded from an artifact.
	Calibration *platform.Calibration
}

// NewTarget wraps an already-built platform and constants pair (the
// hand-calibrated path tests use).
func NewTarget(p *hw.Platform, c *Constants) *Target {
	t := &Target{Platform: p, Constants: c}
	if p != nil {
		t.Backend = p.Backend
	}
	return t
}

// Resolve builds the platform for a backend description and runs the
// one-time roofline calibration, stamping the artifact with provenance.
func Resolve(b *platform.Backend) (*Target, error) {
	p, err := hw.FromBackend(b)
	if err != nil {
		return nil, err
	}
	c, err := Calibrate(hw.NewMachine(p))
	if err != nil {
		return nil, fmt.Errorf("roofline: resolve %s: %w", b.Name, err)
	}
	cal := &platform.Calibration{
		Schema:      platform.CalibrationSchemaVersion,
		Backend:     b.Name,
		BackendHash: b.Hash(),
		Constants:   *c,
		Provenance: platform.Provenance{
			FitDate: time.Now().UTC().Format(time.RFC3339),
			Seed:    0, // the calibration machine runs noiseless
			Residuals: map[string]float64{
				"miss_latency": c.MissLatR2,
				"uncore_power": c.PowerR2,
			},
			Tool: "polyufc/roofline",
		},
	}
	return &Target{Backend: b, Platform: p, Constants: &cal.Constants, Calibration: cal}, nil
}

// ResolveName resolves a backend by registry name and calibrates it.
func ResolveName(name string) (*Target, error) {
	b, err := platform.Lookup(name)
	if err != nil {
		return nil, err
	}
	return Resolve(b)
}

// ResolveCached memoizes Resolve through a pipeline stage cache, keyed
// by the description's content hash: sweeps over many configurations of
// one backend calibrate once, and an edited description re-calibrates
// instead of reusing a stale fit.
func ResolveCached(ctx context.Context, cache *pipeline.Cache, b *platform.Backend) (*Target, error) {
	if cache == nil {
		return Resolve(b)
	}
	v, err := cache.Do(ctx, "calibrate/"+b.Name+"/"+b.Hash(), func() (any, error) {
		return Resolve(b)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Target), nil
}

// Refit re-runs the calibration micro-benchmarks for an already-resolved
// target and returns a fresh Target sharing the same platform. The fault
// registry — normally the serving daemon's — is armed on the calibration
// machine so the fit measures the same (possibly drifted) hardware the
// live measurement path sees; that is what makes online recalibration
// actually recover residuals instead of reproducing the stale fit.
func Refit(t *Target, reg *faults.Registry) (*Target, error) {
	if t == nil || t.Platform == nil {
		return nil, fmt.Errorf("roofline: refit: target has no platform")
	}
	m := hw.NewMachine(t.Platform)
	m.SetFaults(reg)
	c, err := Calibrate(m)
	if err != nil {
		return nil, fmt.Errorf("roofline: refit %s: %w", t.Platform.Name, err)
	}
	cal := &platform.Calibration{
		Schema:    platform.CalibrationSchemaVersion,
		Constants: *c,
		Provenance: platform.Provenance{
			FitDate: time.Now().UTC().Format(time.RFC3339),
			Residuals: map[string]float64{
				"miss_latency": c.MissLatR2,
				"uncore_power": c.PowerR2,
			},
			Tool: "polyufc/roofline-refit",
		},
	}
	if t.Backend != nil {
		cal.Backend = t.Backend.Name
		cal.BackendHash = t.Backend.Hash()
	}
	return &Target{Backend: t.Backend, Platform: t.Platform, Constants: &cal.Constants, Calibration: cal}, nil
}

// FromCalibration builds a target from a persisted calibration artifact
// instead of re-running the micro-benchmarks. The artifact must match
// the description (name and, when recorded, content hash).
func FromCalibration(b *platform.Backend, cal *platform.Calibration) (*Target, error) {
	if err := cal.Matches(b); err != nil {
		return nil, err
	}
	p, err := hw.FromBackend(b)
	if err != nil {
		return nil, err
	}
	return &Target{Backend: b, Platform: p, Constants: &cal.Constants, Calibration: cal}, nil
}
