package roofline

import (
	"context"
	"fmt"
	"time"

	"polyufc/internal/faults"
	"polyufc/internal/hw"
	"polyufc/internal/pipeline"
	"polyufc/internal/platform"
)

// Target is one resolved backend: the registry description, the
// simulated platform built from it, and the calibrated roofline
// constants — everything a compilation needs to know about its machine,
// as a single handle. Constants points into Calibration so the fit and
// its provenance travel together.
type Target struct {
	// Backend is the source description; nil for hand-built targets
	// (tests that construct Constants directly).
	Backend   *platform.Backend
	Platform  *hw.Platform
	Constants *Constants
	// Calibration carries the fit provenance; nil when the constants
	// were not produced by Resolve or loaded from an artifact.
	Calibration *platform.Calibration
	// Sockets holds per-socket constants for topology (schema v2)
	// backends: Sockets[i] is socket i's calibration. Homogeneous
	// topologies share the socket-0 fit — one calibration serves the
	// whole node, the cluster-sweep premise — while heterogeneous
	// sockets get their own micro-benchmark pass. Nil for single-socket
	// targets, where Constants is the whole story.
	Sockets []*Constants
}

// NumSockets returns the socket count of the target's topology (1 for
// single-socket and hand-built targets).
func (t *Target) NumSockets() int {
	if t == nil || t.Backend == nil {
		return 1
	}
	return t.Backend.NumSockets()
}

// SocketConstants returns socket i's calibrated constants; out-of-range
// and single-socket lookups fall back to the primary Constants.
func (t *Target) SocketConstants(i int) *Constants {
	if t == nil {
		return nil
	}
	if i >= 0 && i < len(t.Sockets) && t.Sockets[i] != nil {
		return t.Sockets[i]
	}
	return t.Constants
}

// RemotePenalty returns the per-byte time and energy cost of the
// topology's inter-socket link (zero for single-socket targets) — the
// inputs of the model's inter-socket traffic term.
func (t *Target) RemotePenalty() (secPerByte, joulesPerByte float64) {
	if t == nil || t.Backend == nil {
		return 0, 0
	}
	return hw.RemotePenalty(t.Backend.Interconnect)
}

// resolveSockets builds the per-socket constants of a topology backend
// around the already-fitted socket-0 constants: homogeneous sockets
// share that fit, heterogeneous sockets calibrate their own platform
// views. Single-socket backends need no socket table at all.
func resolveSockets(b *platform.Backend, c0 *Constants) ([]*Constants, error) {
	n := b.NumSockets()
	if n <= 1 {
		return nil, nil
	}
	out := make([]*Constants, n)
	out[0] = c0
	homogeneous := b.Homogeneous()
	for i := 1; i < n; i++ {
		if homogeneous {
			out[i] = c0
			continue
		}
		p, err := hw.SocketPlatform(b, i)
		if err != nil {
			return nil, err
		}
		ci, err := Calibrate(hw.NewMachine(p))
		if err != nil {
			return nil, fmt.Errorf("roofline: calibrate %s socket %d: %w", b.Name, i, err)
		}
		out[i] = ci
	}
	return out, nil
}

// NewTarget wraps an already-built platform and constants pair (the
// hand-calibrated path tests use).
func NewTarget(p *hw.Platform, c *Constants) *Target {
	t := &Target{Platform: p, Constants: c}
	if p != nil {
		t.Backend = p.Backend
	}
	return t
}

// Resolve builds the platform for a backend description and runs the
// one-time roofline calibration, stamping the artifact with provenance.
func Resolve(b *platform.Backend) (*Target, error) {
	p, err := hw.FromBackend(b)
	if err != nil {
		return nil, err
	}
	c, err := Calibrate(hw.NewMachine(p))
	if err != nil {
		return nil, fmt.Errorf("roofline: resolve %s: %w", b.Name, err)
	}
	cal := &platform.Calibration{
		Schema:      platform.CalibrationSchemaVersion,
		Backend:     b.Name,
		BackendHash: b.Hash(),
		Constants:   *c,
		Provenance: platform.Provenance{
			FitDate: time.Now().UTC().Format(time.RFC3339),
			Seed:    0, // the calibration machine runs noiseless
			Residuals: map[string]float64{
				"miss_latency": c.MissLatR2,
				"uncore_power": c.PowerR2,
			},
			Tool: "polyufc/roofline",
		},
	}
	sockets, err := resolveSockets(b, &cal.Constants)
	if err != nil {
		return nil, err
	}
	return &Target{Backend: b, Platform: p, Constants: &cal.Constants, Calibration: cal, Sockets: sockets}, nil
}

// ResolveName resolves a backend by registry name and calibrates it.
func ResolveName(name string) (*Target, error) {
	b, err := platform.Lookup(name)
	if err != nil {
		return nil, err
	}
	return Resolve(b)
}

// ResolveCached memoizes Resolve through a pipeline stage cache, keyed
// by the description's content hash: sweeps over many configurations of
// one backend calibrate once, and an edited description re-calibrates
// instead of reusing a stale fit.
func ResolveCached(ctx context.Context, cache *pipeline.Cache, b *platform.Backend) (*Target, error) {
	if cache == nil {
		return Resolve(b)
	}
	v, err := cache.Do(ctx, "calibrate/"+b.Name+"/"+b.Hash(), func() (any, error) {
		return Resolve(b)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Target), nil
}

// Refit re-runs the calibration micro-benchmarks for an already-resolved
// target and returns a fresh Target sharing the same platform. The fault
// registry — normally the serving daemon's — is armed on the calibration
// machine so the fit measures the same (possibly drifted) hardware the
// live measurement path sees; that is what makes online recalibration
// actually recover residuals instead of reproducing the stale fit.
func Refit(t *Target, reg *faults.Registry) (*Target, error) {
	if t == nil || t.Platform == nil {
		return nil, fmt.Errorf("roofline: refit: target has no platform")
	}
	m := hw.NewMachine(t.Platform)
	m.SetFaults(reg)
	c, err := Calibrate(m)
	if err != nil {
		return nil, fmt.Errorf("roofline: refit %s: %w", t.Platform.Name, err)
	}
	cal := &platform.Calibration{
		Schema:    platform.CalibrationSchemaVersion,
		Constants: *c,
		Provenance: platform.Provenance{
			FitDate: time.Now().UTC().Format(time.RFC3339),
			Residuals: map[string]float64{
				"miss_latency": c.MissLatR2,
				"uncore_power": c.PowerR2,
			},
			Tool: "polyufc/roofline-refit",
		},
	}
	nt := &Target{Backend: t.Backend, Platform: t.Platform, Constants: &cal.Constants, Calibration: cal}
	if t.Backend != nil {
		cal.Backend = t.Backend.Name
		cal.BackendHash = t.Backend.Hash()
		sockets, err := resolveSockets(t.Backend, &cal.Constants)
		if err != nil {
			return nil, err
		}
		nt.Sockets = sockets
	}
	return nt, nil
}

// FromCalibration builds a target from a persisted calibration artifact
// instead of re-running the micro-benchmarks. The artifact must match
// the description (name and, when recorded, content hash).
func FromCalibration(b *platform.Backend, cal *platform.Calibration) (*Target, error) {
	if err := cal.Matches(b); err != nil {
		return nil, err
	}
	p, err := hw.FromBackend(b)
	if err != nil {
		return nil, err
	}
	sockets, err := resolveSockets(b, &cal.Constants)
	if err != nil {
		return nil, err
	}
	return &Target{Backend: b, Platform: p, Constants: &cal.Constants, Calibration: cal, Sockets: sockets}, nil
}
