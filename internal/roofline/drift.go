package roofline

import (
	"math"
	"sync"
)

// DriftState is the calibration-health position of one backend.
type DriftState int

// The drift watchdog's three states. A backend starts OK; sustained
// model-vs-measured residuals past the threshold degrade it (firing the
// OnDegrade hook once per episode — the serving daemon enqueues a re-fit
// job there); BeginRefit marks the re-fit in flight; CompleteRefit
// returns to OK on success with the residual history reset, or back to
// Degraded on failure so the next bad sample can re-trigger.
const (
	DriftOK DriftState = iota
	DriftDegraded
	DriftRefitting
)

func (s DriftState) String() string {
	switch s {
	case DriftOK:
		return "ok"
	case DriftDegraded:
		return "degraded"
	case DriftRefitting:
		return "refitting"
	}
	return "state?"
}

// DriftOptions tunes the watchdog.
type DriftOptions struct {
	// Threshold is the EWMA of |measured - predicted| / measured that
	// flips a backend to Degraded. The roofline model's healthy
	// per-kernel residual against the hidden machine peaks around 18%
	// (memory-bound nests where the two-level bandwidth model is
	// coarsest), while genuine drift (hw.DriftTimeFactor) pushes every
	// kernel past 30% — the default 25% sits between the populations.
	Threshold float64
	// MinSamples is how many residual samples must accumulate before the
	// threshold applies (one outlier must not trigger a re-fit).
	MinSamples int64
	// Alpha is the EWMA weight of the newest sample.
	Alpha float64
}

// DefaultDriftOptions returns production-shaped watchdog defaults.
func DefaultDriftOptions() DriftOptions {
	return DriftOptions{Threshold: 0.25, MinSamples: 3, Alpha: 0.3}
}

// DriftStats is one backend's residual snapshot for /statsz.
type DriftStats struct {
	State string `json:"state"`
	// Samples counts residuals recorded since the last successful re-fit.
	Samples int64 `json:"samples"`
	// LastAbsRelErr is the most recent |measured-predicted|/measured;
	// MeanAbsRelErr its EWMA — the value the threshold is compared to.
	LastAbsRelErr float64 `json:"last_abs_rel_err"`
	MeanAbsRelErr float64 `json:"mean_abs_rel_err"`
	Threshold     float64 `json:"threshold"`
	// Degradations counts OK -> Degraded episodes, Refits the completed
	// successful re-fits.
	Degradations int64 `json:"degradations"`
	Refits       int64 `json:"refits"`
}

type driftEntry struct {
	state        DriftState
	samples      int64
	last         float64
	ewma         float64
	degradations int64
	refits       int64
	// notified suppresses duplicate OnDegrade firings within one episode.
	notified bool
}

// DriftTracker watches live model-vs-measured residuals per backend and
// drives the degrade -> re-fit -> recover state machine. It is safe for
// concurrent use; the OnDegrade hook is called outside the lock.
type DriftTracker struct {
	mu        sync.Mutex
	opts      DriftOptions
	backends  map[string]*driftEntry
	onDegrade func(backend string)
}

// NewDriftTracker builds a tracker. Zero option fields fall back to the
// defaults.
func NewDriftTracker(opts DriftOptions) *DriftTracker {
	def := DefaultDriftOptions()
	if opts.Threshold <= 0 {
		opts.Threshold = def.Threshold
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = def.MinSamples
	}
	if opts.Alpha <= 0 || opts.Alpha > 1 {
		opts.Alpha = def.Alpha
	}
	return &DriftTracker{opts: opts, backends: map[string]*driftEntry{}}
}

// OnDegrade installs the hook fired (once per degradation episode, after
// the lock is released) when a backend's residuals cross the threshold.
func (d *DriftTracker) OnDegrade(fn func(backend string)) {
	d.mu.Lock()
	d.onDegrade = fn
	d.mu.Unlock()
}

func (d *DriftTracker) entry(backend string) *driftEntry {
	e, ok := d.backends[backend]
	if !ok {
		e = &driftEntry{}
		d.backends[backend] = e
	}
	return e
}

// Record feeds one model-vs-measured pair (both in the same unit —
// seconds of the same run) into the backend's residual EWMA, advancing
// the state machine. Non-positive or non-finite measurements are
// discarded.
func (d *DriftTracker) Record(backend string, predicted, measured float64) {
	if d == nil || !(measured > 0) || math.IsInf(predicted, 0) || math.IsNaN(predicted) {
		return
	}
	rel := math.Abs(measured-predicted) / measured
	var fire func(string)
	d.mu.Lock()
	e := d.entry(backend)
	e.samples++
	e.last = rel
	if e.samples == 1 {
		e.ewma = rel
	} else {
		e.ewma = d.opts.Alpha*rel + (1-d.opts.Alpha)*e.ewma
	}
	if e.state == DriftOK && e.samples >= d.opts.MinSamples && e.ewma > d.opts.Threshold {
		e.state = DriftDegraded
		e.degradations++
	}
	if e.state == DriftDegraded && !e.notified && d.onDegrade != nil {
		e.notified = true
		fire = d.onDegrade
	}
	d.mu.Unlock()
	if fire != nil {
		fire(backend)
	}
}

// State returns the backend's watchdog position (OK when never seen).
func (d *DriftTracker) State(backend string) DriftState {
	if d == nil {
		return DriftOK
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.backends[backend]; ok {
		return e.state
	}
	return DriftOK
}

// Degraded reports whether the backend is anywhere in a degradation
// episode (Degraded or Refitting) — the serving daemon's Strict policy
// refuses such backends, BestEffort flags their answers.
func (d *DriftTracker) Degraded(backend string) bool {
	s := d.State(backend)
	return s == DriftDegraded || s == DriftRefitting
}

// BeginRefit marks the backend's re-fit as in flight, reporting false
// when one already is (the caller must not enqueue a second).
func (d *DriftTracker) BeginRefit(backend string) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.entry(backend)
	if e.state == DriftRefitting {
		return false
	}
	e.state = DriftRefitting
	return true
}

// CompleteRefit records the re-fit outcome: success returns the backend
// to OK with its residual history reset (the new fit starts clean);
// failure falls back to Degraded and re-arms the OnDegrade hook so a
// later sample can retry.
func (d *DriftTracker) CompleteRefit(backend string, ok bool) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.entry(backend)
	if ok {
		e.state = DriftOK
		e.samples, e.last, e.ewma = 0, 0, 0
		e.notified = false
		e.refits++
		return
	}
	e.state = DriftDegraded
	e.notified = false
}

// Snapshot returns every tracked backend's residual statistics.
func (d *DriftTracker) Snapshot() map[string]DriftStats {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]DriftStats, len(d.backends))
	for name, e := range d.backends {
		out[name] = DriftStats{
			State:         e.state.String(),
			Samples:       e.samples,
			LastAbsRelErr: e.last,
			MeanAbsRelErr: e.ewma,
			Threshold:     d.opts.Threshold,
			Degradations:  e.degradations,
			Refits:        e.refits,
		}
	}
	return out
}
