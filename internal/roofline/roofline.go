// Package roofline implements the performance roofline (Williams et al.)
// and energy roofline (Choi et al.) models PolyUFC characterizes kernels
// against, together with the one-time micro-benchmark calibration that
// derives the Table-I constants from a machine (footnote 3: both
// performance and power rooflines are measured, not vendor-supplied).
//
// The constant types live in internal/platform so calibrations persist
// as artifacts next to the backend descriptions; this package re-exports
// them and owns the fitting itself, plus the Target handle that bundles
// one resolved backend (description, simulated platform, constants).
package roofline

import (
	"fmt"
	"math"

	"polyufc/internal/fit"
	"polyufc/internal/hw"
	"polyufc/internal/platform"
)

// Constants are the calibrated roofline constants of Table I, plus the
// frequency-parametric fits of Sec. V (alias of the serializable
// platform.Constants).
type Constants = platform.Constants

// Class is the bound-and-bottleneck characterization.
type Class = platform.Class

// Characterization outcomes.
const (
	ComputeBound   = platform.ComputeBound
	BandwidthBound = platform.BandwidthBound
)

// Calibrate runs the one-time micro-benchmark suite on a machine and fits
// the Table-I constants. The machine is exercised only through its public
// measurement interface — the hidden truth constants are recovered, not
// read.
func Calibrate(m *hw.Machine) (*Constants, error) {
	p := m.P
	c := &Constants{Platform: p.Name, CalibThreads: p.Threads}

	// --- compute roof: a flop-only kernel (OI -> infinity). ---
	flopProf := &hw.CacheProfile{
		Flops: 4e10, Instances: 1e10, Loads: 1,
		LevelHits:   []int64{1, 0, 0},
		LevelMisses: []int64{0, 0, 0},
		HasParallel: true, Label: "ubench-flops",
	}
	rs := m.SweepUncore(flopProf)
	rTop := rs[len(rs)-1]
	c.PeakGFlops = rTop.GFlops
	c.TFpu = 1 / (rTop.GFlops * 1e9)

	// Constant power: extrapolate the flop bench's power at f -> 0 minus
	// the core's dynamic share. We estimate EFpu from two flop benches of
	// different intensity at the lowest uncore frequency (uncore
	// contribution minimal).
	half := *flopProf
	half.Flops /= 2
	half.Instances /= 2
	r1 := m.SweepUncore(flopProf)[0]
	r2 := m.SweepUncore(&half)[0]
	// P = PCon' + EFpu * flopRate; two points give both.
	rate1 := r1.GFlops * 1e9
	rate2 := r2.GFlops * 1e9
	if math.Abs(rate1-rate2) < 1 {
		// Same rate (throughput-bound): fall back to assuming dynamic
		// share from the frequency slope.
		return nil, fmt.Errorf("roofline: flop benches not separable")
	}
	c.EFpu = (r1.AvgWatts - r2.AvgWatts) / (rate1 - rate2)
	c.PFpuHat = c.EFpu * c.PeakGFlops * 1e9

	// --- memory roof: a streaming kernel (OI -> 0), swept over f. ---
	streamProf := &hw.CacheProfile{
		Flops: 1e6, Instances: 1e8, Loads: 4e8, Stores: 0,
		LevelHits:   []int64{3e8, 0, 0},
		LevelMisses: []int64{1e8, 1e8, 1e8},
		LLCMisses:   1e8, DRAMReadB: 64e8,
		HasParallel: true, Label: "ubench-stream",
	}
	sweep := m.SweepUncore(streamProf)
	var fs, tPerByte, watts, bws []float64
	for _, r := range sweep {
		fs = append(fs, r.UncoreGHz)
		tPerByte = append(tPerByte, r.Seconds/float64(streamProf.DRAMReadB))
		watts = append(watts, r.AvgWatts)
		bws = append(bws, r.DRAMGBs*1e9)
	}
	top := sweep[len(sweep)-1]
	c.PeakGBs = top.DRAMGBs
	c.TByteMax = 1 / (c.PeakGBs * 1e9)
	c.BtDRAM = c.PeakGFlops / c.PeakGBs

	// M^t(f) = a/f + b.
	a, b, r2f, err := fit.Hyperbolic(fs, tPerByte)
	if err != nil {
		return nil, fmt.Errorf("roofline: miss latency fit: %w", err)
	}
	c.MissLatA, c.MissLatB, c.MissLatR2 = a, b, r2f

	// Uncore power fits. The stream bench at each f gives
	// P(f) = PCon + idle*f + (alpha*f + gamma)*bw(f) + core share.
	// First, idle slope from the flop bench's frequency sweep (bw ~ 0):
	var fFs, fWs []float64
	for _, r := range rs {
		fFs = append(fFs, r.UncoreGHz)
		fWs = append(fWs, r.AvgWatts)
	}
	idleSlope, idleIntercept, _, err := fit.Linear(fFs, fWs)
	if err != nil {
		return nil, fmt.Errorf("roofline: idle fit: %w", err)
	}
	c.IdleWPerGHz = idleSlope
	c.PCon = idleIntercept - c.EFpu*rate1 // constant power net of core dynamic share

	// Per-bandwidth uncore power kappa(f) = (P_stream - PCon - idle*f -
	// core share) / bw, then a linear fit over f.
	var kys []float64
	for i := range fs {
		coreW := c.EFpu * float64(streamProf.Flops) / sweep[i].Seconds
		pu := watts[i] - c.PCon - c.IdleWPerGHz*fs[i] - coreW
		kys = append(kys, pu/bws[i])
	}
	alpha, gamma, r2p, err := fit.Linear(fs, kys)
	if err != nil {
		return nil, fmt.Errorf("roofline: power fit: %w", err)
	}
	c.AlphaP, c.GammaP, c.PowerR2 = alpha, gamma, r2p

	// Peak DRAM power roof: uncore power at full-stream utilization.
	var phat []float64
	for i := range fs {
		phat = append(phat, c.UncorePower(fs[i], bws[i]))
	}
	pa, pg, _, err := fit.Linear(fs, phat)
	if err != nil {
		return nil, fmt.Errorf("roofline: peak power fit: %w", err)
	}
	c.PhatAlpha, c.PhatGamma = pa, pg

	// Energy per byte, peak memory-path power, and the energy balance at
	// the maximum uncore frequency.
	c.PByteHat = c.UncorePower(p.UncoreMax, c.PeakGBs*1e9)
	c.EByte = c.PByteHat / (c.PeakGBs * 1e9)
	if c.EFpu > 0 {
		c.BeDRAM = c.EByte / c.EFpu
	}

	// --- core-domain fit: the flop bench swept over core frequencies at
	// the minimum uncore clock. Subtracting the known per-flop dynamic
	// share (the standard voltage-floor DVFS law) leaves
	// PCon' + coreIdle*f_core; its slope is the core clock-tree power. ---
	c.CoreBaseGHz = p.CoreBase
	var cFs, cResidual []float64
	for f := p.CoreMin; f <= p.CoreMax+1e-9; f += 0.4 {
		r := m.MeasureAt(flopProf, f, p.UncoreMin)
		relE := 0.35 + 0.65*(f/p.CoreBase)*(f/p.CoreBase)
		dynW := c.EFpu * relE * r.GFlops * 1e9
		cFs = append(cFs, f)
		cResidual = append(cResidual, r.AvgWatts-dynW)
	}
	coreSlope, _, _, err := fit.Linear(cFs, cResidual)
	if err != nil {
		return nil, fmt.Errorf("roofline: core idle fit: %w", err)
	}
	c.CoreIdleWPerGHz = coreSlope

	// --- per-level hit latencies: benches whose hits concentrate at one
	// level. ---
	nLevels := len(p.Cache.Levels)
	c.HitLatency = make([]float64, nLevels)
	for li := 0; li < nLevels; li++ {
		hits := make([]int64, nLevels)
		misses := make([]int64, nLevels)
		for j := 0; j < li; j++ {
			misses[j] = 4e8
		}
		hits[li] = 4e8
		prof := &hw.CacheProfile{
			Flops: 1e6, Instances: 1e8, Loads: 4e8,
			LevelHits: hits, LevelMisses: misses,
			Label: fmt.Sprintf("ubench-L%d", li+1),
		}
		r := m.SweepUncore(prof)[len(m.P.UncoreSteps())-1]
		c.HitLatency[li] = r.Seconds / 4e8
	}
	return c, nil
}
