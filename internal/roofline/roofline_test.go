package roofline

import (
	"math"
	"testing"

	"polyufc/internal/hw"
)

func TestCalibrateBDW(t *testing.T) {
	m := hw.NewMachine(hw.BDW())
	c, err := Calibrate(m)
	if err != nil {
		t.Fatal(err)
	}
	// Compute roof: 12 threads x 16 flops/cycle x 3.6 GHz = 691 GF/s; the
	// measured peak includes the overlap term, so allow slack.
	if c.PeakGFlops < 400 || c.PeakGFlops > 800 {
		t.Fatalf("peak = %.1f GF/s", c.PeakGFlops)
	}
	// Memory roof: capped at the DIMM ceiling (50 GB/s).
	if c.PeakGBs < 30 || c.PeakGBs > 55 {
		t.Fatalf("peak BW = %.1f GB/s", c.PeakGBs)
	}
	if c.BtDRAM < 5 || c.BtDRAM > 25 {
		t.Fatalf("time balance = %.1f FpB", c.BtDRAM)
	}
	if c.MissLatR2 < 0.95 {
		t.Fatalf("miss latency fit R2 = %f", c.MissLatR2)
	}
	// M^t must decrease with frequency.
	if c.MissLat(1.2) <= c.MissLat(2.8) {
		t.Fatal("per-byte DRAM time must fall with uncore frequency")
	}
	if c.PCon <= 0 || c.PCon > 100 {
		t.Fatalf("PCon = %.1f W", c.PCon)
	}
	if c.EFpu <= 0 || c.EFpu > 1e-8 {
		t.Fatalf("EFpu = %g J/flop", c.EFpu)
	}
	if len(c.HitLatency) != 3 {
		t.Fatalf("hit latencies = %v", c.HitLatency)
	}
	for i := 1; i < len(c.HitLatency); i++ {
		if c.HitLatency[i] <= c.HitLatency[i-1] {
			t.Fatalf("hit latencies not increasing: %v", c.HitLatency)
		}
	}
}

func TestCalibrateRPLBalanceHigher(t *testing.T) {
	// RPL has more cores and a similar memory roof: a higher (or at least
	// comparable) time balance than BDW, shifting kernels toward BB (the
	// Fig. 6 vertical shift narrative works through cache sizes instead).
	cb, err := Calibrate(hw.NewMachine(hw.BDW()))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Calibrate(hw.NewMachine(hw.RPL()))
	if err != nil {
		t.Fatal(err)
	}
	if cr.PeakGFlops <= cb.PeakGFlops {
		t.Fatal("RPL must out-compute BDW")
	}
	if cr.PeakGBs <= cb.PeakGBs {
		t.Fatal("RPL must out-stream BDW")
	}
}

func TestClassify(t *testing.T) {
	c := &Constants{BtDRAM: 10}
	if c.Classify(50) != ComputeBound || c.Classify(2) != BandwidthBound {
		t.Fatal("classification wrong")
	}
	if c.Classify(10) != ComputeBound {
		t.Fatal("boundary OI must be CB (I >= B)")
	}
	if ComputeBound.String() != "CB" || BandwidthBound.String() != "BB" {
		t.Fatal("class names")
	}
}

func TestAttainableRoofline(t *testing.T) {
	c := &Constants{PeakGFlops: 600, PeakGBs: 50, BtDRAM: 12}
	if got := c.AttainableGFlops(2); math.Abs(got-100) > 1e-9 {
		t.Fatalf("attainable(2) = %f", got)
	}
	if got := c.AttainableGFlops(100); got != 600 {
		t.Fatalf("attainable(100) = %f", got)
	}
}

func TestUncorePowerMonotone(t *testing.T) {
	m := hw.NewMachine(hw.RPL())
	c, err := Calibrate(m)
	if err != nil {
		t.Fatal(err)
	}
	bw := 30e9
	if c.UncorePower(4.0, bw) <= c.UncorePower(1.0, bw) {
		t.Fatal("uncore power must grow with frequency")
	}
	if c.UncorePower(2.0, 40e9) <= c.UncorePower(2.0, 5e9) {
		t.Fatal("uncore power must grow with bandwidth")
	}
	if c.PeakDRAMPower(4.0) <= c.PeakDRAMPower(1.0) {
		t.Fatal("peak DRAM power roof must grow with frequency")
	}
}
