// Package journal is the crash-safe progress log behind resumable sweeps:
// an append-only JSONL file of keyed checkpoint entries. Every completed
// unit of work (one kernel at one frequency, one rendered row, one served
// request) is recorded as soon as it finishes and synced to disk, so a
// process killed mid-sweep — including kill -9 — loses at most the entry
// it was writing. Reopening the file replays the completed entries; the
// caller skips them and continues where the dead run stopped.
//
// Torn tails are expected: a line cut short by the crash fails to parse
// and is dropped. Corruption in the middle of the file — bad JSON that is
// not a torn tail, e.g. a bit flip or a partial overwrite — must not cost
// the entries recorded after it: such lines are quarantined verbatim into
// a ".quarantine" sidecar and replay continues. Whenever damage of either
// kind is found the file is compacted — the valid entries are rewritten
// to a temporary file which atomically renames over the original — so the
// journal on disk is always clean valid JSONL.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// AtomicWrite writes a file crash-safely: the content goes to path.tmp
// through a buffered writer, is flushed and fsynced, and the temporary
// file atomically renames over path — so the file on disk is always
// either the old complete content or the new complete content, never a
// torn mix. It is the journal's own compaction machinery, exported for
// the other durable artifacts (the content-addressed store, calibration
// and plan-table files) so every "write this artifact safely" path in
// the system is the same code.
func AtomicWrite(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Entry is one checkpoint line: a key identifying the unit of work and
// the recorded result.
type Entry struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Stats are the journal's replay and append counters.
type Stats struct {
	// Entries is the number of distinct completed keys known.
	Entries int
	// Replayed counts Get hits served from the reopened file, Appended
	// the entries recorded by this process, Dropped the torn or invalid
	// tail lines discarded at Open, Quarantined the corrupt mid-file
	// lines diverted to the ".quarantine" sidecar.
	Replayed, Appended, Dropped, Quarantined int64
	// Compactions counts CompactRetain rewrites that actually dropped
	// entries (history pruning, not corruption repair).
	Compactions int64
}

// Journal is a keyed, append-only JSONL checkpoint log. It is safe for
// concurrent use — sweep workers record from pool goroutines.
type Journal struct {
	mu          sync.Mutex
	path        string
	f           *os.File
	done        map[string]json.RawMessage
	order       []string // first-seen key order, for compaction and Keys
	replayed    int64
	appended    int64
	dropped     int64
	quarantined int64
	compactions int64
}

// QuarantinePath returns the sidecar file corrupt mid-file lines of the
// journal at path are diverted to.
func QuarantinePath(path string) string { return path + ".quarantine" }

// Open loads the journal at path (creating it when absent), replaying
// every valid entry. A torn tail — a contiguous run of invalid lines at
// the end of the file, the signature of a crash mid-Record — is dropped.
// Invalid lines followed by valid ones are not a torn tail: they are
// appended verbatim to the ".quarantine" sidecar and replay continues,
// so one corrupt record does not cost the entries after it. When damage
// of either kind is found the file is compacted in place via atomic
// rename before appending resumes.
func Open(path string) (*Journal, error) {
	j := &Journal{path: path, done: map[string]json.RawMessage{}}
	if data, err := os.ReadFile(path); err == nil {
		var bad [][]byte // invalid lines seen so far, pending tail/quarantine triage
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			line, err := r.ReadBytes('\n')
			if len(line) > 0 {
				var e Entry
				if uerr := json.Unmarshal(line, &e); uerr != nil || e.Key == "" {
					// Invalid. Whether this is a torn tail or mid-file
					// corruption depends on whether any valid line follows,
					// so hold it until we know.
					bad = append(bad, append([]byte(nil), line...))
				} else {
					// A valid line after invalid ones: those were not a
					// torn tail — quarantine them and keep replaying.
					if len(bad) > 0 {
						if qerr := quarantine(path, bad); qerr != nil {
							return nil, qerr
						}
						j.quarantined += int64(len(bad))
						bad = nil
					}
					if _, seen := j.done[e.Key]; !seen {
						j.order = append(j.order, e.Key)
					}
					j.done[e.Key] = e.Data
				}
			}
			if err != nil {
				break
			}
		}
		// Invalid lines with nothing valid after them are the torn tail.
		j.dropped = int64(len(bad))
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if j.dropped > 0 || j.quarantined > 0 {
		if err := j.compact(); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	return j, nil
}

// quarantine appends the corrupt lines verbatim to the sidecar, synced —
// the evidence must survive the next crash too.
func quarantine(path string, lines [][]byte) error {
	f, err := os.OpenFile(QuarantinePath(path), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: quarantine: %w", err)
	}
	for _, line := range lines {
		if _, err := f.Write(line); err != nil {
			f.Close()
			return fmt.Errorf("journal: quarantine: %w", err)
		}
		if len(line) == 0 || line[len(line)-1] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return fmt.Errorf("journal: quarantine: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: quarantine: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: quarantine: %w", err)
	}
	return nil
}

// compact rewrites the valid entries to path.tmp and atomically renames
// it over the journal, dropping the damaged lines from disk.
func (j *Journal) compact() error {
	return AtomicWrite(j.path, func(w io.Writer) error {
		for _, k := range j.order {
			line, err := json.Marshal(Entry{Key: k, Data: j.done[k]})
			if err != nil {
				return err
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return err
			}
		}
		return nil
	})
}

// CompactRetain rewrites the journal keeping only the entries keep
// returns true for, via the same atomic temp+rename the corruption path
// uses. Retained entries keep their recorded bytes verbatim, so replay
// of the survivors is byte-identical — the jobs tier uses this to prune
// the per-unit history of terminal jobs while live jobs resume exactly
// as before. Dropped keys stop answering Get/Has immediately. It
// returns the number of entries dropped; zero drops leave the file
// untouched.
func (j *Journal) CompactRetain(keep func(key string) bool) (int, error) {
	if j == nil {
		return 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("journal: closed")
	}
	var order []string
	dropped := 0
	for _, k := range j.order {
		if keep(k) {
			order = append(order, k)
		} else {
			delete(j.done, k)
			dropped++
		}
	}
	if dropped == 0 {
		return 0, nil
	}
	j.order = order
	// The append handle points at the current inode; compaction renames
	// a fresh file over the path, so the handle must be reopened or
	// future Records would land in the unlinked old file.
	if err := j.f.Close(); err != nil {
		j.f = nil
		return dropped, err
	}
	j.f = nil
	if err := j.compact(); err != nil {
		return dropped, err
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return dropped, err
	}
	j.f = f
	j.compactions++
	return dropped, nil
}

// Record checkpoints one completed unit of work: v is marshalled,
// appended as one JSONL line and synced to disk before Record returns,
// so a crash after Record never loses the entry.
func (j *Journal) Record(key string, v any) error {
	if j == nil {
		return nil
	}
	if key == "" {
		return fmt.Errorf("journal: empty key")
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshal %q: %w", key, err)
	}
	line, err := json.Marshal(Entry{Key: key, Data: data})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: append %q: %w", key, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %q: %w", key, err)
	}
	if _, seen := j.done[key]; !seen {
		j.order = append(j.order, key)
	}
	j.done[key] = data
	j.appended++
	return nil
}

// Get replays a completed entry into out (a pointer), reporting whether
// the key was found. A nil journal never has entries.
func (j *Journal) Get(key string, out any) (bool, error) {
	if j == nil {
		return false, nil
	}
	j.mu.Lock()
	data, ok := j.done[key]
	if ok {
		j.replayed++
	}
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return false, fmt.Errorf("journal: replay %q: %w", key, err)
		}
	}
	return true, nil
}

// Has reports whether a key is already checkpointed, without counting a
// replay.
func (j *Journal) Has(key string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[key]
	return ok
}

// Keys returns every checkpointed key in first-recorded order — the
// replay order a resuming job tier rebuilds its state in.
func (j *Journal) Keys() []string {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.order...)
}

// Len returns the number of distinct completed keys known.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Stats returns the journal's counters.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Entries: len(j.done), Replayed: j.replayed,
		Appended: j.appended, Dropped: j.dropped,
		Quarantined: j.quarantined, Compactions: j.compactions,
	}
}

// Close syncs and closes the underlying file. Further Records fail;
// Get/Has keep serving the in-memory entries. Close is idempotent.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
