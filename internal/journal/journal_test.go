package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type point struct {
	F float64 `json:"f"`
	E float64 `json:"e"`
}

// Record then reopen: every entry replays with the exact values written.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]point{}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		p := point{F: 1.0 + float64(i)*0.137, E: 1e-7 * float64(i)}
		want[k] = p
		if err := j.Record(k, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 10 {
		t.Fatalf("len = %d, want 10", r.Len())
	}
	for k, w := range want {
		var got point
		ok, err := r.Get(k, &got)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = %v, %v", k, ok, err)
		}
		// Byte-identical replay: encoding/json round-trips float64 exactly.
		if got != w {
			t.Fatalf("Get(%s) = %+v, want %+v", k, got, w)
		}
	}
	if st := r.Stats(); st.Replayed != 10 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if r.Has("missing") {
		t.Fatal("Has on unknown key")
	}
}

// A crash-torn tail is dropped, the valid prefix survives, and Open
// compacts the file on disk so the damage does not persist.
func TestJournalTornTailDroppedAndCompacted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Record(fmt.Sprintf("k%d", i), point{F: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate kill -9 mid-write: append half a line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"k5","data":{"f":5`)
	f.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 || r.Stats().Dropped != 1 {
		t.Fatalf("after torn tail: len %d, stats %+v", r.Len(), r.Stats())
	}
	if r.Has("k5") {
		t.Fatal("torn entry replayed")
	}
	// The damaged unit re-records cleanly on the same handle.
	if err := r.Record("k5", point{F: 5}); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Compaction rewrote the file: a third open sees a clean journal.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data[:len(data)-1]), `{"f":5`+"\n") {
		t.Fatal("compacted file still contains the torn line")
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 6 || r2.Stats().Dropped != 0 {
		t.Fatalf("after compaction: len %d, stats %+v", r2.Len(), r2.Stats())
	}
}

// Garbage in the middle is not a torn tail: the corrupt line is diverted
// to the .quarantine sidecar and every valid entry — before and after it
// — still replays.
func TestJournalQuarantinesMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	lines := []string{
		`{"key":"a","data":{"f":1}}`,
		`not json at all`,
		`{"data":{"f":9}}`, // valid JSON but keyless: also corrupt
		`{"key":"b","data":{"f":2}}`,
		`{"key":"c","data":{"f":3}}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !j.Has("a") || !j.Has("b") || !j.Has("c") || j.Len() != 3 {
		t.Fatalf("len %d, has(a)=%v has(b)=%v has(c)=%v", j.Len(), j.Has("a"), j.Has("b"), j.Has("c"))
	}
	if st := j.Stats(); st.Quarantined != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 2 quarantined, 0 dropped", st)
	}
	if got := j.Keys(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Keys = %v", got)
	}
	// The sidecar holds the corrupt lines verbatim.
	q, err := os.ReadFile(QuarantinePath(path))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(q), "not json at all") || !strings.Contains(string(q), `{"data":{"f":9}}`) {
		t.Fatalf("quarantine sidecar missing corrupt lines:\n%s", q)
	}
	// Compaction scrubbed the main file: a reopen is clean.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); r.Len() != 3 || st.Quarantined != 0 || st.Dropped != 0 {
		t.Fatalf("after compaction: len %d, stats %+v", r.Len(), st)
	}
}

// Mid-file corruption and a torn tail together: the mid-file line is
// quarantined, the tail dropped, and the valid entries all replay.
func TestJournalQuarantineAndTornTailTogether(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"key":"a","data":{"f":1}}` + "\n" +
		`garbage` + "\n" +
		`{"key":"b","data":{"f":2}}` + "\n" +
		`{"key":"c","data":{"f":` // torn mid-write, no newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !j.Has("a") || !j.Has("b") || j.Has("c") || j.Len() != 2 {
		t.Fatalf("len %d, has(a)=%v has(b)=%v has(c)=%v", j.Len(), j.Has("a"), j.Has("b"), j.Has("c"))
	}
	if st := j.Stats(); st.Quarantined != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined, 1 dropped", st)
	}
}

// Duplicate keys: last record wins, and Len counts distinct keys.
func TestJournalLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("k", point{F: 1})
	j.Record("k", point{F: 2})
	j.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got point
	if ok, _ := r.Get("k", &got); !ok || got.F != 2 {
		t.Fatalf("Get = %v %+v, want f=2", ok, got)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

// Concurrent Records from pool workers interleave without corrupting the
// file: a reopen sees every entry.
func TestJournalConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := fmt.Sprintf("w%d/%d", w, i)
				if err := j.Record(k, point{F: float64(w), E: float64(i)}); err != nil {
					t.Errorf("Record(%s): %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 200 || r.Stats().Dropped != 0 {
		t.Fatalf("len %d, stats %+v", r.Len(), r.Stats())
	}
}

// Nil journals and closed journals degrade cleanly.
func TestJournalNilAndClosed(t *testing.T) {
	var j *Journal
	if err := j.Record("k", 1); err != nil {
		t.Fatal(err)
	}
	if ok, err := j.Get("k", nil); ok || err != nil {
		t.Fatal("nil journal has entries")
	}
	if j.Len() != 0 || j.Has("k") || j.Close() != nil {
		t.Fatal("nil journal misbehaves")
	}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	real, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	real.Record("k", point{F: 1})
	real.Close()
	if real.Close() != nil {
		t.Fatal("Close not idempotent")
	}
	if err := real.Record("x", 1); err == nil {
		t.Fatal("Record after Close succeeded")
	}
	// In-memory reads keep working after Close.
	if !real.Has("k") {
		t.Fatal("closed journal lost entries")
	}
}

// CompactRetain drops the filtered keys, keeps the survivors with their
// recorded bytes verbatim, and — crucially — keeps appending to the NEW
// file after the atomic rename, so records made after a compaction
// survive a reopen.
func TestJournalCompactRetain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := j.Record(fmt.Sprintf("k%d", i), point{F: float64(i), E: 1e-9 * float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	keepEven := func(key string) bool {
		return strings.HasSuffix(key, "0") || strings.HasSuffix(key, "2") || strings.HasSuffix(key, "4")
	}
	dropped, err := j.CompactRetain(keepEven)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	if st := j.Stats(); st.Compactions != 1 || st.Entries != 3 {
		t.Fatalf("stats after compaction: %+v", st)
	}
	// Dropped keys stop answering immediately; survivors still answer.
	if j.Has("k1") || j.Has("k3") || j.Has("k5") {
		t.Fatal("dropped key still present")
	}
	var got point
	if ok, err := j.Get("k2", &got); err != nil || !ok || got.F != 2 {
		t.Fatalf("survivor k2: %+v ok=%v err=%v", got, ok, err)
	}
	// Appending after the rename must land in the new file.
	if err := j.Record("k9", point{F: 9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 4 {
		t.Fatalf("reopened len = %d, want 4 (k0,k2,k4,k9): %v", r.Len(), r.Keys())
	}
	for _, k := range []string{"k0", "k2", "k4", "k9"} {
		if !r.Has(k) {
			t.Fatalf("key %s missing after reopen: %v", k, r.Keys())
		}
	}
	if st := r.Stats(); st.Dropped != 0 || st.Quarantined != 0 {
		t.Fatalf("compacted file replayed with damage: %+v", st)
	}
}

// Retained entries survive compaction with their journaled bytes
// verbatim — the byte-identity guarantee the jobs tier's resume rides on.
func TestJournalCompactRetainBytesVerbatim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Raw messages with deliberate formatting quirks JSON re-marshalling
	// would normalize away if the bytes were not kept verbatim.
	if err := j.Record("keep", map[string]any{"v": 0.30000000000000004}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("drop", point{F: 1}); err != nil {
		t.Fatal(err)
	}
	var before map[string]any
	if _, err := j.Get("keep", &before); err != nil {
		t.Fatal(err)
	}
	if _, err := j.CompactRetain(func(key string) bool { return key == "keep" }); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "0.30000000000000004") {
		t.Fatalf("retained bytes not verbatim: %s", data)
	}
	if strings.Contains(string(data), `"drop"`) {
		t.Fatalf("dropped entry still on disk: %s", data)
	}
}

// Zero drops leave the file untouched and count no compaction; a closed
// journal refuses; a nil journal no-ops.
func TestJournalCompactRetainNoopAndClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", point{F: 1}); err != nil {
		t.Fatal(err)
	}
	dropped, err := j.CompactRetain(func(string) bool { return true })
	if err != nil || dropped != 0 {
		t.Fatalf("no-op compaction: dropped=%d err=%v", dropped, err)
	}
	if st := j.Stats(); st.Compactions != 0 {
		t.Fatalf("no-op counted a compaction: %+v", st)
	}
	// Still appendable after the no-op (the fd was never cycled).
	if err := j.Record("b", point{F: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := j.CompactRetain(func(string) bool { return false }); err == nil {
		t.Fatal("CompactRetain on closed journal succeeded")
	}
	var nilJ *Journal
	if dropped, err := nilJ.CompactRetain(func(string) bool { return false }); err != nil || dropped != 0 {
		t.Fatalf("nil journal: dropped=%d err=%v", dropped, err)
	}
}
