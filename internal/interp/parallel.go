package interp

import (
	"fmt"

	"polyufc/internal/ir"
)

// PartitionOuter block-partitions a nest's outermost loop into n per-thread
// nests (the static OpenMP schedule the Pluto baseline uses). The outer
// loop must be marked parallel and carry constant bounds. Statements are
// shared; only the loop structure is cloned.
func PartitionOuter(nest *ir.Nest, n int) ([]*ir.Nest, error) {
	if nest.Root == nil {
		return nil, fmt.Errorf("interp: empty nest")
	}
	root := nest.Root
	if !root.Parallel {
		return nil, fmt.Errorf("interp: outermost loop %s is not parallel", root.IV)
	}
	lo, hi, err := constantBounds(root)
	if err != nil {
		return nil, err
	}
	total := hi - lo + 1
	if total <= 0 {
		return nil, fmt.Errorf("interp: empty outer range")
	}
	if int64(n) > total {
		n = int(total)
	}
	chunk := (total + int64(n) - 1) / int64(n)
	var out []*ir.Nest
	for t := int64(0); t < int64(n); t++ {
		clo := lo + t*chunk
		chi := clo + chunk - 1
		if chi > hi {
			chi = hi
		}
		if clo > hi {
			break
		}
		sub := &ir.Loop{
			IV:       root.IV,
			Lo:       []ir.Bound{ir.BExpr(ir.AffConst(clo))},
			Hi:       []ir.Bound{ir.BExpr(ir.AffConst(chi))},
			Parallel: false,
			Body:     root.Body,
		}
		out = append(out, &ir.Nest{
			Label: fmt.Sprintf("%s_t%d", nest.Label, t),
			Root:  sub,
		})
	}
	return out, nil
}

// constantBounds extracts single constant bounds from a loop.
func constantBounds(l *ir.Loop) (lo, hi int64, err error) {
	if len(l.Lo) != 1 || len(l.Hi) != 1 {
		return 0, 0, fmt.Errorf("interp: loop %s has composite bounds", l.IV)
	}
	if len(l.Lo[0].Expr.Coef) != 0 || len(l.Hi[0].Expr.Coef) != 0 {
		return 0, 0, fmt.Errorf("interp: loop %s bounds are not constant", l.IV)
	}
	lo = ceilDiv(l.Lo[0].Expr.Const, l.Lo[0].Div)
	hi = floorDiv(l.Hi[0].Expr.Const, l.Hi[0].Div)
	return lo, hi, nil
}

// RunPartitioned executes the per-thread partitions of a nest against a
// per-core access consumer (e.g. a multi-core cache simulator), using one
// shared layout so threads address the same arrays. Threads are executed
// chunk-interleaved in round-robin order to approximate concurrent
// progress through the shared cache levels.
func RunPartitioned(nest *ir.Nest, threads int, access func(core int, addr, size int64, write bool)) (Stats, error) {
	parts, err := PartitionOuter(nest, threads)
	if err != nil {
		return Stats{}, err
	}
	layout := NewLayout(nest.Operands())
	var total Stats
	type job struct {
		prog *Program
		core int
	}
	var jobs []job
	for core, part := range parts {
		prog, err := Compile(part, layout)
		if err != nil {
			return Stats{}, err
		}
		jobs = append(jobs, job{prog: prog, core: core})
	}
	// Interleave at outer-iteration granularity: each job advances one
	// outer iteration per turn. We emulate this by splitting each thread's
	// outer range into single iterations and rotating.
	iters := make([][]*Program, len(jobs))
	for ji, j := range jobs {
		subs, err := splitOuterIterations(parts[ji], layout)
		if err != nil {
			// Fall back to whole-thread execution.
			st := j.prog.Run(TracerFunc(func(a, sz int64, w bool) {
				access(j.core, a, sz, w)
			}))
			total = addStats(total, st)
			continue
		}
		iters[ji] = subs
	}
	progress := make([]int, len(jobs))
	for {
		advanced := false
		for ji, j := range jobs {
			if iters[ji] == nil || progress[ji] >= len(iters[ji]) {
				continue
			}
			core := j.core
			st := iters[ji][progress[ji]].Run(TracerFunc(func(a, sz int64, w bool) {
				access(core, a, sz, w)
			}))
			total = addStats(total, st)
			progress[ji]++
			advanced = true
		}
		if !advanced {
			break
		}
	}
	return total, nil
}

// splitOuterIterations compiles one program per outer iteration of a
// partition (used for round-robin interleaving).
func splitOuterIterations(part *ir.Nest, layout *Layout) ([]*Program, error) {
	lo, hi, err := constantBounds(part.Root)
	if err != nil {
		return nil, err
	}
	const maxSlices = 4096
	if hi-lo+1 > maxSlices {
		return nil, fmt.Errorf("interp: too many outer iterations to slice")
	}
	var out []*Program
	for i := lo; i <= hi; i++ {
		one := &ir.Nest{Label: part.Label, Root: &ir.Loop{
			IV:   part.Root.IV,
			Lo:   []ir.Bound{ir.BExpr(ir.AffConst(i))},
			Hi:   []ir.Bound{ir.BExpr(ir.AffConst(i))},
			Body: part.Root.Body,
		}}
		prog, err := Compile(one, layout)
		if err != nil {
			return nil, err
		}
		out = append(out, prog)
	}
	return out, nil
}

func addStats(a, b Stats) Stats {
	a.Instances += b.Instances
	a.Flops += b.Flops
	a.Loads += b.Loads
	a.Stores += b.Stores
	return a
}
