// Package interp executes affine loop nests, streaming their memory access
// trace to a consumer (typically the cache simulator) and counting
// arithmetic operations. Nests are first compiled to a flat form with
// slot-indexed induction variables and pre-linearized access address
// polynomials, so large iteration spaces run at tens of millions of
// statement instances per second.
package interp

import (
	"fmt"

	"polyufc/internal/ir"
)

// Tracer consumes the memory access stream of an execution.
type Tracer interface {
	// Access reports one memory reference.
	Access(addr, size int64, write bool)
}

// TracerFunc adapts a function to Tracer.
type TracerFunc func(addr, size int64, write bool)

// Access implements Tracer.
func (f TracerFunc) Access(addr, size int64, write bool) { f(addr, size, write) }

// NullTracer discards the trace (flop counting only).
type NullTracer struct{}

// Access implements Tracer.
func (NullTracer) Access(int64, int64, bool) {}

// Layout assigns page-aligned, non-overlapping base addresses to arrays.
type Layout struct {
	Base map[*ir.Array]int64
	End  int64
}

// NewLayout lays out the arrays contiguously starting at 4 KiB, each
// aligned to 4 KiB (matching a malloc'd buffer per tensor).
func NewLayout(arrays []*ir.Array) *Layout {
	const page = 4096
	l := &Layout{Base: map[*ir.Array]int64{}, End: page}
	for _, a := range arrays {
		l.Base[a] = l.End
		sz := a.SizeBytes()
		l.End += (sz + page - 1) / page * page
	}
	return l
}

// Stats summarizes one execution.
type Stats struct {
	Instances int64 // statement instances executed
	Flops     int64
	Loads     int64
	Stores    int64
}

// BytesAccessed returns total bytes touched by loads and stores, given the
// element size is uniform per access (already folded into counts by the
// tracer); this is loads+stores only and is provided for reporting.
func (s Stats) BytesAccessed(elemSize int64) int64 {
	return (s.Loads + s.Stores) * elemSize
}

// compiled form ------------------------------------------------------------

// cBound is a compiled bound: (coef . env + const) div Div.
type cBound struct {
	coef []int64 // per IV slot
	k    int64
	div  int64
}

func (b cBound) eval(env []int64) int64 {
	v := b.k
	for i, c := range b.coef {
		if c != 0 {
			v += c * env[i]
		}
	}
	return v
}

// cAccess is a compiled access: addr = base + elem * (coef . env + const).
type cAccess struct {
	coef  []int64
	k     int64
	size  int64
	write bool
}

// cStmt is a compiled statement.
type cStmt struct {
	accs  []cAccess
	flops int64
}

// cLoop is a compiled loop level.
type cLoop struct {
	slot     int
	lo, hi   []cBound
	parallel bool
	body     []cNode
}

type cNode struct {
	loop *cLoop
	stmt *cStmt
}

// Program is a compiled nest ready for repeated execution.
type Program struct {
	root   *cLoop
	nIVs   int
	layout *Layout
}

// Compile lowers a nest to its executable form using the given layout
// (which must cover every array the nest accesses).
func Compile(nest *ir.Nest, layout *Layout) (*Program, error) {
	// Assign IV slots in loop order.
	slots := map[string]int{}
	nest.WalkLoops(func(l *ir.Loop, _ int) {
		if _, ok := slots[l.IV]; !ok {
			slots[l.IV] = len(slots)
		}
	})
	n := len(slots)
	compileExpr := func(e ir.AffExpr) ([]int64, int64, error) {
		coef := make([]int64, n)
		for iv, c := range e.Coef {
			s, ok := slots[iv]
			if !ok {
				return nil, 0, fmt.Errorf("interp: unknown IV %q", iv)
			}
			coef[s] = c
		}
		return coef, e.Const, nil
	}
	var compileLoop func(l *ir.Loop) (*cLoop, error)
	compileLoop = func(l *ir.Loop) (*cLoop, error) {
		cl := &cLoop{slot: slots[l.IV], parallel: l.Parallel}
		for _, b := range l.Lo {
			coef, k, err := compileExpr(b.Expr)
			if err != nil {
				return nil, err
			}
			cl.lo = append(cl.lo, cBound{coef: coef, k: k, div: b.Div})
		}
		for _, b := range l.Hi {
			coef, k, err := compileExpr(b.Expr)
			if err != nil {
				return nil, err
			}
			cl.hi = append(cl.hi, cBound{coef: coef, k: k, div: b.Div})
		}
		for _, node := range l.Body {
			switch x := node.(type) {
			case *ir.Loop:
				sub, err := compileLoop(x)
				if err != nil {
					return nil, err
				}
				cl.body = append(cl.body, cNode{loop: sub})
			case *ir.Statement:
				cs, err := compileStmt(x, layout, compileExpr)
				if err != nil {
					return nil, err
				}
				cl.body = append(cl.body, cNode{stmt: cs})
			}
		}
		return cl, nil
	}
	root, err := compileLoop(nest.Root)
	if err != nil {
		return nil, err
	}
	return &Program{root: root, nIVs: n, layout: layout}, nil
}

func compileStmt(s *ir.Statement, layout *Layout, compileExpr func(ir.AffExpr) ([]int64, int64, error)) (*cStmt, error) {
	cs := &cStmt{flops: s.Flops}
	for _, acc := range s.Accesses {
		base, ok := layout.Base[acc.Array]
		if !ok {
			return nil, fmt.Errorf("interp: array %s not in layout", acc.Array.Name)
		}
		strides := acc.Array.Strides()
		if len(acc.Index) != len(strides) {
			return nil, fmt.Errorf("interp: access to %s has %d indices for %d dims",
				acc.Array.Name, len(acc.Index), len(strides))
		}
		// Linearize: addr = base + elem*(sum_d stride_d * idx_d).
		lin := ir.AffConst(0)
		for d, e := range acc.Index {
			lin = lin.Add(e.Scale(strides[d]))
		}
		lin = lin.Scale(acc.Array.ElemSize)
		coef, k, err := compileExpr(lin)
		if err != nil {
			return nil, err
		}
		cs.accs = append(cs.accs, cAccess{
			coef: coef, k: base + k, size: acc.Array.ElemSize, write: acc.Write,
		})
	}
	return cs, nil
}

// Run executes the program sequentially, streaming accesses to the tracer.
func (p *Program) Run(tracer Tracer) Stats {
	env := make([]int64, p.nIVs)
	var st Stats
	p.runLoop(p.root, env, tracer, &st)
	return st
}

func (p *Program) runLoop(l *cLoop, env []int64, tracer Tracer, st *Stats) {
	lo := int64(-1 << 62)
	for _, b := range l.lo {
		v := ceilDiv(b.eval(env), b.div)
		if v > lo {
			lo = v
		}
	}
	hi := int64(1 << 62)
	for _, b := range l.hi {
		v := floorDiv(b.eval(env), b.div)
		if v < hi {
			hi = v
		}
	}
	for iv := lo; iv <= hi; iv++ {
		env[l.slot] = iv
		for _, node := range l.body {
			if node.loop != nil {
				p.runLoop(node.loop, env, tracer, st)
				continue
			}
			s := node.stmt
			st.Instances++
			st.Flops += s.flops
			for i := range s.accs {
				a := &s.accs[i]
				addr := a.k
				for j, c := range a.coef {
					if c != 0 {
						addr += c * env[j]
					}
				}
				if a.write {
					st.Stores++
				} else {
					st.Loads++
				}
				tracer.Access(addr, a.size, a.write)
			}
		}
	}
}

// RunNest is a convenience: lay out, compile and run a nest in one call.
func RunNest(nest *ir.Nest, tracer Tracer) (Stats, error) {
	layout := NewLayout(nest.Operands())
	prog, err := Compile(nest, layout)
	if err != nil {
		return Stats{}, err
	}
	return prog.Run(tracer), nil
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}
