package interp

import (
	"testing"

	"polyufc/internal/cachesim"
	"polyufc/internal/ir"
)

// parallelMatmul builds a matmul nest with the outer loop marked parallel.
func parallelMatmul(m, n, k int64) *ir.Nest {
	nest := matmulNest(m, n, k)
	nest.Root.Parallel = true
	return nest
}

func TestPartitionOuterCoversDomain(t *testing.T) {
	nest := parallelMatmul(37, 16, 16) // odd count: uneven chunks
	parts, err := PartitionOuter(nest, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	var total int64
	for _, p := range parts {
		tc, err := p.TripCount()
		if err != nil {
			t.Fatal(err)
		}
		total += tc
	}
	want, _ := nest.TripCount()
	if total != want {
		t.Fatalf("partitioned trips %d != %d", total, want)
	}
}

func TestPartitionMoreThreadsThanIterations(t *testing.T) {
	nest := parallelMatmul(3, 4, 4)
	parts, err := PartitionOuter(nest, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3 (one per iteration)", len(parts))
	}
}

func TestPartitionRequiresParallel(t *testing.T) {
	nest := matmulNest(8, 8, 8) // not marked parallel
	if _, err := PartitionOuter(nest, 2); err == nil {
		t.Fatal("expected error for non-parallel outer loop")
	}
}

func TestRunPartitionedSameWork(t *testing.T) {
	nest := parallelMatmul(24, 24, 24)
	seq, err := RunNest(nest, NullTracer{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPartitioned(nest, 4, func(core int, a, sz int64, w bool) {})
	if err != nil {
		t.Fatal(err)
	}
	if par.Instances != seq.Instances || par.Flops != seq.Flops ||
		par.Loads != seq.Loads || par.Stores != seq.Stores {
		t.Fatalf("parallel stats %+v != sequential %+v", par, seq)
	}
}

// TestSharingHeuristicAgainstMultiCoreSim quantifies the paper's Sec. IV-B
// approximation: per-thread LLC misses of a shared-LLC multi-core run
// versus the sequential miss count divided by the thread count.
func TestSharingHeuristicAgainstMultiCoreSim(t *testing.T) {
	nest := parallelMatmul(64, 64, 64)
	cfg := cachesim.Config{Levels: []cachesim.LevelConfig{
		{Name: "L1", SizeBytes: 32 << 10, LineSize: 64, Assoc: 8},
		{Name: "LLC", SizeBytes: 1 << 20, LineSize: 64, Assoc: 16},
	}}
	threads := 4

	seqSim := mustSim(t, cfg)
	if _, err := RunNest(nest, TracerFunc(func(a, sz int64, w bool) {
		seqSim.Access(a, sz, w)
	})); err != nil {
		t.Fatal(err)
	}
	seqLLC := seqSim.LLCStats().Misses

	multi, err := cachesim.NewMulti(cfg, threads)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPartitioned(nest, threads, func(core int, a, sz int64, w bool) {
		multi.Access(core, a, sz, w)
	}); err != nil {
		t.Fatal(err)
	}
	parLLC := multi.SharedStats().Misses

	// The working set (three 32 KiB arrays) fits the shared LLC: the
	// parallel run's total LLC misses stay near the sequential count (the
	// B matrix is shared across threads), so the per-thread figure is
	// close to seq/threads — the heuristic's regime.
	heuristic := seqLLC / int64(threads)
	perThread := parLLC / int64(threads)
	lo, hi := heuristic/2, heuristic*3
	if perThread < lo || perThread > hi {
		t.Fatalf("per-thread LLC misses %d outside [%d, %d] around the heuristic %d (seq %d, parallel-total %d)",
			perThread, lo, hi, heuristic, seqLLC, parLLC)
	}
	// Private L1 totals exceed the sequential L1 misses (each core runs a
	// cold private cache): the cost the heuristic ignores.
	seqL1 := seqSim.LevelStats(0).Misses
	parL1 := multi.TotalPrivateStats(0).Misses
	if parL1 < seqL1 {
		t.Fatalf("expected private-cache replication cost: parallel L1 %d < sequential %d", parL1, seqL1)
	}
}

func TestMultiSimValidation(t *testing.T) {
	cfg := cachesim.Config{Levels: []cachesim.LevelConfig{
		{Name: "L1", SizeBytes: 1 << 10, LineSize: 64, Assoc: 2},
		{Name: "LLC", SizeBytes: 16 << 10, LineSize: 64, Assoc: 8},
	}}
	if _, err := cachesim.NewMulti(cfg, 0); err == nil {
		t.Fatal("0 cores accepted")
	}
	one := cachesim.Config{Levels: cfg.Levels[:1]}
	if _, err := cachesim.NewMulti(one, 2); err == nil {
		t.Fatal("single-level config accepted")
	}
	m, err := cachesim.NewMulti(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 loads a line; core 1 reading it misses privately but hits in
	// the shared LLC.
	m.Access(0, 0, 8, false)
	m.Access(1, 0, 8, false)
	if m.SharedStats().Hits != 1 || m.SharedStats().Misses != 1 {
		t.Fatalf("shared stats = %+v", m.SharedStats())
	}
	if m.PrivateStats(1, 0).Misses != 1 {
		t.Fatalf("core 1 private stats = %+v", m.PrivateStats(1, 0))
	}
	if m.DRAMReadBytes != 64 {
		t.Fatalf("DRAM reads = %d", m.DRAMReadBytes)
	}
}
