package interp

import (
	"testing"

	"polyufc/internal/cachesim"
	"polyufc/internal/ir"
	"polyufc/internal/pluto"
)

func matmulNest(m, n, k int64) *ir.Nest {
	A := ir.NewArray("A", 8, m, k)
	B := ir.NewArray("B", 8, k, n)
	C := ir.NewArray("C", 8, m, n)
	stmt := &ir.Statement{Name: "S0", Flops: 2}
	i, j, kk := ir.AffVar("i"), ir.AffVar("j"), ir.AffVar("k")
	stmt.Accesses = []ir.Access{
		{Array: A, Index: []ir.AffExpr{i, kk}},
		{Array: B, Index: []ir.AffExpr{kk, j}},
		{Array: C, Index: []ir.AffExpr{i, j}},
		{Array: C, Write: true, Index: []ir.AffExpr{i, j}},
	}
	kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(k-1), stmt)
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(n-1), kl)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(m-1), jl)
	return &ir.Nest{Label: "matmul", Root: il}
}

func TestRunCountsMatchPolyhedralModel(t *testing.T) {
	nest := matmulNest(12, 10, 8)
	st, err := RunNest(nest, NullTracer{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(12 * 10 * 8)
	if st.Instances != want {
		t.Fatalf("instances = %d, want %d", st.Instances, want)
	}
	if st.Flops != 2*want {
		t.Fatalf("flops = %d", st.Flops)
	}
	if st.Loads != 3*want || st.Stores != want {
		t.Fatalf("loads/stores = %d/%d", st.Loads, st.Stores)
	}
	fl, err := nest.Flops()
	if err != nil || fl != st.Flops {
		t.Fatalf("polyhedral flop count %d != executed %d", fl, st.Flops)
	}
}

func TestLayoutNonOverlapping(t *testing.T) {
	a := ir.NewArray("a", 8, 100)
	b := ir.NewArray("b", 8, 100)
	l := NewLayout([]*ir.Array{a, b})
	if l.Base[a] == l.Base[b] {
		t.Fatal("overlapping bases")
	}
	if l.Base[b]-l.Base[a] < a.SizeBytes() {
		t.Fatal("arrays overlap")
	}
	if l.Base[a]%4096 != 0 || l.Base[b]%4096 != 0 {
		t.Fatal("bases not page aligned")
	}
}

func TestTraceAddresses(t *testing.T) {
	// A[i][j] over 2x3, row-major, 8-byte elems.
	A := ir.NewArray("A", 8, 2, 3)
	stmt := &ir.Statement{Name: "S", Flops: 0}
	i, j := ir.AffVar("i"), ir.AffVar("j")
	stmt.Accesses = []ir.Access{{Array: A, Write: true, Index: []ir.AffExpr{i, j}}}
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(2), stmt)
	il := ir.SimpleLoop("i", ir.AffConst(0), ir.AffConst(1), jl)
	nest := &ir.Nest{Root: il}
	var addrs []int64
	_, err := RunNest(nest, TracerFunc(func(addr, size int64, write bool) {
		if !write || size != 8 {
			t.Fatalf("access kind wrong: write=%v size=%d", write, size)
		}
		addrs = append(addrs, addr)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 6 {
		t.Fatalf("accesses = %d", len(addrs))
	}
	base := addrs[0]
	for idx, a := range addrs {
		if a != base+int64(idx)*8 {
			t.Fatalf("addrs = %v, not sequential row-major", addrs)
		}
	}
}

func TestTiledExecutionSameFootprint(t *testing.T) {
	// The tiled nest must perform exactly the same accesses (different
	// order), so cold misses in a big cache are identical, and total
	// instance counts match.
	nest := matmulNest(40, 40, 40)
	tiled, err := pluto.TileNest(nest, 16)
	if err != nil {
		t.Fatal(err)
	}
	bigCache := cachesim.Config{Levels: []cachesim.LevelConfig{
		{Name: "L1", SizeBytes: 1 << 22, LineSize: 64, Assoc: 8},
	}}
	s1 := mustSim(t, bigCache)
	st1, err := RunNest(nest, TracerFunc(func(a, sz int64, w bool) { s1.Access(a, sz, w) }))
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustSim(t, bigCache)
	st2, err := RunNest(tiled, TracerFunc(func(a, sz int64, w bool) { s2.Access(a, sz, w) }))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Instances != st2.Instances {
		t.Fatalf("instances %d vs %d", st1.Instances, st2.Instances)
	}
	c1, c2 := s1.LevelStats(0).ColdMisses, s2.LevelStats(0).ColdMisses
	if c1 != c2 {
		t.Fatalf("cold misses differ: %d vs %d", c1, c2)
	}
}

func TestTilingImprovesLocality(t *testing.T) {
	// In a small cache, tiled matmul must miss less than untiled.
	nest := matmulNest(64, 64, 64)
	tiled, err := pluto.TileNest(nest, 16)
	if err != nil {
		t.Fatal(err)
	}
	small := cachesim.Config{Levels: []cachesim.LevelConfig{
		{Name: "L1", SizeBytes: 16 << 10, LineSize: 64, Assoc: 8},
	}}
	s1 := mustSim(t, small)
	if _, err := RunNest(nest, TracerFunc(func(a, sz int64, w bool) { s1.Access(a, sz, w) })); err != nil {
		t.Fatal(err)
	}
	s2 := mustSim(t, small)
	if _, err := RunNest(tiled, TracerFunc(func(a, sz int64, w bool) { s2.Access(a, sz, w) })); err != nil {
		t.Fatal(err)
	}
	m1, m2 := s1.LevelStats(0).Misses, s2.LevelStats(0).Misses
	if m2 >= m1 {
		t.Fatalf("tiling did not reduce misses: untiled %d, tiled %d", m1, m2)
	}
}

func TestCompileRejectsUnknownArray(t *testing.T) {
	nest := matmulNest(4, 4, 4)
	empty := &Layout{Base: map[*ir.Array]int64{}}
	if _, err := Compile(nest, empty); err == nil {
		t.Fatal("expected error for missing layout entry")
	}
}

func TestStrideAccessPattern(t *testing.T) {
	// B[k][j] accessed with k innermost: stride = row length.
	B := ir.NewArray("B", 8, 4, 5)
	stmt := &ir.Statement{Name: "S", Flops: 0}
	k, j := ir.AffVar("k"), ir.AffVar("j")
	stmt.Accesses = []ir.Access{{Array: B, Index: []ir.AffExpr{k, j}}}
	kl := ir.SimpleLoop("k", ir.AffConst(0), ir.AffConst(3), stmt)
	jl := ir.SimpleLoop("j", ir.AffConst(0), ir.AffConst(4), kl)
	nest := &ir.Nest{Root: jl}
	var addrs []int64
	if _, err := RunNest(nest, TracerFunc(func(a, _ int64, _ bool) { addrs = append(addrs, a) })); err != nil {
		t.Fatal(err)
	}
	// For fixed j, consecutive k differ by 5*8 bytes.
	if addrs[1]-addrs[0] != 40 {
		t.Fatalf("stride = %d, want 40", addrs[1]-addrs[0])
	}
}

func BenchmarkInterpMatmul(b *testing.B) {
	nest := matmulNest(64, 64, 64)
	layout := NewLayout(nest.Operands())
	prog, err := Compile(nest, layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Run(NullTracer{})
	}
	b.SetBytes(64 * 64 * 64 * 4 * 8)
}

// mustSim builds a cache simulator from a known-good config.
func mustSim(t *testing.T, cfg cachesim.Config) *cachesim.Simulator {
	t.Helper()
	s, err := cachesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
