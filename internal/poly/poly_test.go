package poly

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestZeroAndConst(t *testing.T) {
	z := New(3)
	if !z.IsZero() {
		t.Fatal("New should be zero")
	}
	c := ConstInt(3, 7)
	if got, ok := c.IsConst(); !ok || got.Cmp(rat(7, 1)) != 0 {
		t.Fatalf("ConstInt(7) = %v, %v", got, ok)
	}
	if c.Degree() != 0 {
		t.Fatalf("const degree = %d", c.Degree())
	}
	if z.Degree() != -1 {
		t.Fatalf("zero degree = %d", z.Degree())
	}
}

func TestAddSubCancel(t *testing.T) {
	p := Var(2, 0).Add(Var(2, 1).ScaleInt(3)).Add(ConstInt(2, 5))
	q := p.Sub(p)
	if !q.IsZero() {
		t.Fatalf("p - p = %s, want 0", q)
	}
}

func TestMulDistributes(t *testing.T) {
	x, y := Var(2, 0), Var(2, 1)
	lhs := x.Add(y).Mul(x.Sub(y))
	rhs := x.Mul(x).Sub(y.Mul(y))
	if !lhs.Equal(rhs) {
		t.Fatalf("(x+y)(x-y) = %s, want %s", lhs, rhs)
	}
}

func TestPow(t *testing.T) {
	x := Var(1, 0)
	p := x.Add(ConstInt(1, 1)).Pow(3) // (x+1)^3
	want := x.Pow(3).Add(x.Pow(2).ScaleInt(3)).Add(x.ScaleInt(3)).Add(ConstInt(1, 1))
	if !p.Equal(want) {
		t.Fatalf("(x+1)^3 = %s, want %s", p, want)
	}
	if !x.Pow(0).Equal(ConstInt(1, 1)) {
		t.Fatal("x^0 != 1")
	}
}

func TestEval(t *testing.T) {
	// p = 2*x^2*y - 3*y + 1 at (x,y) = (3, 2): 2*9*2 - 6 + 1 = 31.
	x, y := Var(2, 0), Var(2, 1)
	p := x.Pow(2).Mul(y).ScaleInt(2).Sub(y.ScaleInt(3)).Add(ConstInt(2, 1))
	got := p.EvalInt([]int64{3, 2})
	if got.Cmp(rat(31, 1)) != 0 {
		t.Fatalf("eval = %s, want 31", got.RatString())
	}
	v, ok := p.EvalInt64([]int64{3, 2})
	if !ok || v != 31 {
		t.Fatalf("EvalInt64 = %d, %v", v, ok)
	}
}

func TestSubstPoly(t *testing.T) {
	// p = x^2 + y, substitute x := y+1 -> (y+1)^2 + y = y^2 + 3y + 1.
	x, y := Var(2, 0), Var(2, 1)
	p := x.Pow(2).Add(y)
	got := p.SubstPoly(0, y.Add(ConstInt(2, 1)))
	want := y.Pow(2).Add(y.ScaleInt(3)).Add(ConstInt(2, 1))
	if !got.Equal(want) {
		t.Fatalf("subst = %s, want %s", got, want)
	}
}

func TestExtendVars(t *testing.T) {
	p := Var(1, 0).Pow(2).Add(ConstInt(1, 4))
	q := p.ExtendVars(3)
	if q.NumVars() != 3 {
		t.Fatalf("NumVars = %d", q.NumVars())
	}
	if got := q.EvalInt([]int64{5, 9, 9}); got.Cmp(rat(29, 1)) != 0 {
		t.Fatalf("extended eval = %s", got.RatString())
	}
}

func TestBernoulliKnownValues(t *testing.T) {
	want := []*big.Rat{
		rat(1, 1), rat(1, 2), rat(1, 6), rat(0, 1), rat(-1, 30),
		rat(0, 1), rat(1, 42), rat(0, 1), rat(-1, 30), rat(0, 1), rat(5, 66),
	}
	for n, w := range want {
		if got := Bernoulli(n); got.Cmp(w) != 0 {
			t.Errorf("B+_%d = %s, want %s", n, got.RatString(), w.RatString())
		}
	}
}

func TestSumPowMatchesDirectSum(t *testing.T) {
	for k := 0; k <= 6; k++ {
		sk := SumPow(k)
		for n := int64(0); n <= 20; n++ {
			direct := new(big.Rat)
			for x := int64(1); x <= n; x++ {
				pw := big.NewRat(1, 1)
				for e := 0; e < k; e++ {
					pw.Mul(pw, rat(x, 1))
				}
				direct.Add(direct, pw)
			}
			if got := sk.EvalInt([]int64{n}); got.Cmp(direct) != 0 {
				t.Fatalf("S_%d(%d) = %s, want %s", k, n, got.RatString(), direct.RatString())
			}
		}
	}
}

func TestSumPowTelescopes(t *testing.T) {
	// S_k(n) - S_k(n-1) = n^k must hold for negative n too.
	for k := 0; k <= 5; k++ {
		sk := SumPow(k)
		for n := int64(-10); n <= 10; n++ {
			lhs := new(big.Rat).Sub(sk.EvalInt([]int64{n}), sk.EvalInt([]int64{n - 1}))
			pw := big.NewRat(1, 1)
			for e := 0; e < k; e++ {
				pw.Mul(pw, rat(n, 1))
			}
			if lhs.Cmp(pw) != 0 {
				t.Fatalf("S_%d(%d)-S_%d(%d) = %s, want %s", k, n, k, n-1, lhs.RatString(), pw.RatString())
			}
		}
	}
}

func TestSumVarConstantBody(t *testing.T) {
	// sum_{x=L}^{U} 1 = U - L + 1.
	p := ConstInt(2, 1)
	L := ConstInt(2, 3)
	U := Var(2, 1) // upper bound is the other variable
	s := SumVar(p, 0, L, U)
	for u := int64(3); u <= 10; u++ {
		got, ok := s.EvalInt64([]int64{0, u})
		if !ok || got != u-3+1 {
			t.Fatalf("count(3..%d) = %d, want %d", u, got, u-2)
		}
	}
}

func TestSumVarTriangular(t *testing.T) {
	// sum_{j=0}^{i} sum_{k=0}^{j} 1 = (i+1)(i+2)/2.
	one := ConstInt(3, 1)
	zero := ConstInt(3, 0)
	inner := SumVar(one, 2, zero, Var(3, 1))   // over k in [0, j]
	outer := SumVar(inner, 1, zero, Var(3, 0)) // over j in [0, i]
	for i := int64(0); i <= 12; i++ {
		got, ok := outer.EvalInt64([]int64{i, 0, 0})
		want := (i + 1) * (i + 2) / 2
		if !ok || got != want {
			t.Fatalf("triangular(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestSumVarNegativeBounds(t *testing.T) {
	// sum_{x=-5}^{5} x^2 = 2*55 = 110.
	p := Var(1, 0).Pow(2)
	s := SumVar(p, 0, ConstInt(1, -5), ConstInt(1, 5))
	got, ok := s.EvalInt64([]int64{0})
	if !ok || got != 110 {
		t.Fatalf("sum = %d, want 110", got)
	}
}

func TestSumVarEmptyRangeIsZeroAtLMinus1(t *testing.T) {
	// At U = L-1 the telescoped sum must evaluate to exactly 0.
	p := Var(1, 0).Pow(3).Add(Var(1, 0))
	s := SumVar(p, 0, ConstInt(1, 7), ConstInt(1, 6))
	if got, ok := s.EvalInt64([]int64{0}); !ok || got != 0 {
		t.Fatalf("sum over empty range = %d", got)
	}
}

// randPoly builds a small random polynomial for property tests.
func randPoly(r *rand.Rand, n int) Poly {
	p := New(n)
	terms := 1 + r.Intn(4)
	for t := 0; t < terms; t++ {
		m := ConstInt(n, int64(r.Intn(11)-5))
		for i := 0; i < n; i++ {
			e := r.Intn(3)
			if e > 0 {
				m = m.Mul(Var(n, i).Pow(e))
			}
		}
		p = p.Add(m)
	}
	return p
}

func TestPropertyRingAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randPoly(rr, 2), randPoly(rr, 2), randPoly(rr, 2)
		// Commutativity, associativity, distributivity.
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		if !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		// Evaluation is a homomorphism.
		pt := []int64{int64(rr.Intn(7) - 3), int64(rr.Intn(7) - 3)}
		lhs := a.Mul(b).EvalInt(pt)
		rhs := new(big.Rat).Mul(a.EvalInt(pt), b.EvalInt(pt))
		return lhs.Cmp(rhs) == 0
	}
	cfg := &quick.Config{MaxCount: 60, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySumVarMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		p := randPoly(rr, 2) // vars: x (summed), y (free)
		lo := int64(rr.Intn(9) - 4)
		hi := lo + int64(rr.Intn(8))
		s := SumVar(p, 0, ConstInt(2, lo), ConstInt(2, hi))
		y := int64(rr.Intn(7) - 3)
		direct := new(big.Rat)
		for x := lo; x <= hi; x++ {
			direct.Add(direct, p.EvalInt([]int64{x, y}))
		}
		return s.EvalInt([]int64{0, y}).Cmp(direct) == 0
	}
	cfg := &quick.Config{MaxCount: 80, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStringDeterministic(t *testing.T) {
	p := Var(2, 0).Pow(2).Add(Var(2, 1).ScaleInt(-3)).Add(ConstInt(2, 1))
	s1, s2 := p.String(), p.String()
	if s1 != s2 {
		t.Fatalf("nondeterministic String: %q vs %q", s1, s2)
	}
	if got := p.Format([]string{"i", "j"}); got != "i^2 - 3*j + 1" {
		t.Fatalf("Format = %q", got)
	}
}

func TestCoeffAndDegreeOf(t *testing.T) {
	p := Var(2, 0).Pow(3).Mul(Var(2, 1)).ScaleInt(5)
	if got := p.Coeff([]int{3, 1}); got.Cmp(rat(5, 1)) != 0 {
		t.Fatalf("Coeff = %s", got.RatString())
	}
	if p.DegreeOf(0) != 3 || p.DegreeOf(1) != 1 {
		t.Fatalf("DegreeOf = %d, %d", p.DegreeOf(0), p.DegreeOf(1))
	}
	if p.Degree() != 4 {
		t.Fatalf("Degree = %d", p.Degree())
	}
}
