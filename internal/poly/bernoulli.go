package poly

import (
	"math/big"
	"sync"
)

// bernoulliCache memoizes Bernoulli numbers (B+ convention, B1 = +1/2).
var bernoulliCache struct {
	sync.Mutex
	vals []*big.Rat
}

// Bernoulli returns the n-th Bernoulli number using the convention
// B1 = +1/2 (the "B+" numbers), which is the convention under which
// Faulhaber's formula takes the form used by SumPow.
func Bernoulli(n int) *big.Rat {
	if n < 0 {
		panic("poly: negative Bernoulli index")
	}
	bernoulliCache.Lock()
	defer bernoulliCache.Unlock()
	for len(bernoulliCache.vals) <= n {
		m := len(bernoulliCache.vals)
		if m == 0 {
			bernoulliCache.vals = append(bernoulliCache.vals, big.NewRat(1, 1))
			continue
		}
		// B+_m = 1 - sum_{k=0}^{m-1} C(m,k) B+_k / (m-k+1)
		// derived from sum_{k=0}^{m} C(m+1,k) B-_k = 0 adjusted for B+;
		// equivalently use the recurrence for B- and flip the sign of B1.
		// We compute B- via: sum_{j=0}^{m} C(m+1, j) B-_j = 0, m >= 1.
		sum := new(big.Rat)
		c := big.NewInt(1) // C(m+1, j), starting at j=0
		mp1 := big.NewInt(int64(m + 1))
		for j := 0; j < m; j++ {
			bj := new(big.Rat).Set(bernoulliCache.vals[j])
			if j == 1 {
				bj.Neg(bj) // stored as B+, recurrence needs B-
			}
			term := new(big.Rat).Mul(bj, new(big.Rat).SetInt(c))
			sum.Add(sum, term)
			// C(m+1, j+1) = C(m+1, j) * (m+1-j) / (j+1)
			c.Mul(c, new(big.Int).Sub(mp1, big.NewInt(int64(j))))
			c.Quo(c, big.NewInt(int64(j+1)))
		}
		bm := new(big.Rat).Quo(sum.Neg(sum), new(big.Rat).SetInt(c))
		if m == 1 {
			bm.Neg(bm) // convert B-_1 = -1/2 to B+_1 = +1/2
		}
		bernoulliCache.vals = append(bernoulliCache.vals, bm)
	}
	return new(big.Rat).Set(bernoulliCache.vals[n])
}

// SumPow returns the Faulhaber polynomial S_k in one variable n such that
// S_k(n) = sum_{x=1}^{n} x^k for all integers n >= 0, and, as a polynomial
// identity, S_k(n) - S_k(n-1) = n^k for every integer n. The latter makes
// the telescoping identity sum_{x=L}^{U} x^k = S_k(U) - S_k(L-1) valid for
// arbitrary integer bounds with U >= L-1.
func SumPow(k int) Poly {
	if k < 0 {
		panic("poly: negative power in SumPow")
	}
	// S_k(n) = 1/(k+1) * sum_{j=0}^{k} C(k+1, j) B+_j n^{k+1-j}
	res := New(1)
	c := big.NewInt(1) // C(k+1, j)
	kp1 := big.NewInt(int64(k + 1))
	for j := 0; j <= k; j++ {
		bj := Bernoulli(j)
		if bj.Sign() != 0 {
			coef := new(big.Rat).Mul(new(big.Rat).SetInt(c), bj)
			coef.Quo(coef, new(big.Rat).SetInt64(int64(k+1)))
			term := Var(1, 0).Pow(k + 1 - j).Scale(coef)
			res = res.Add(term)
		}
		c.Mul(c, new(big.Int).Sub(kp1, big.NewInt(int64(j))))
		c.Quo(c, big.NewInt(int64(j+1)))
	}
	return res
}

// SumVar computes the symbolic sum of p over variable i ranging from L to U
// inclusive: sum_{x_i = L}^{U} p. L and U are polynomials in the same
// variable space that must not involve variable i. The result no longer
// involves variable i (its coefficient space is unchanged). The identity is
// exact for all integer values with U >= L - 1; callers are responsible for
// restricting evaluation to regions where U >= L (the value at U = L-1 is 0).
func SumVar(p Poly, i int, L, U Poly) Poly {
	if L.DegreeOf(i) > 0 || U.DegreeOf(i) > 0 {
		panic("poly: summation bounds must not involve the summed variable")
	}
	n := p.n
	if L.n != n || U.n != n {
		panic("poly: bound variable space mismatch")
	}
	Lm1 := L.Sub(ConstInt(n, 1))
	// Decompose p by powers of x_i.
	byDeg := map[int]Poly{}
	for k, c := range p.terms {
		d := int(k[i])
		rest := []byte(k)
		rest[i] = 0
		cp, ok := byDeg[d]
		if !ok {
			cp = New(n)
			byDeg[d] = cp
		}
		cp.addTerm(string(rest), c)
	}
	result := New(n)
	for d, coef := range byDeg {
		sk := SumPow(d) // in one variable
		// Lift S_k into the n-variable space with its variable at index i,
		// then substitute the bounds.
		skN := liftUni(sk, n, i)
		atU := skN.SubstPoly(i, U)
		atL := skN.SubstPoly(i, Lm1)
		result = result.Add(coef.Mul(atU.Sub(atL)))
	}
	return result
}

// liftUni re-expresses a univariate polynomial in an n-variable space with
// its variable placed at index i.
func liftUni(p Poly, n, i int) Poly {
	r := New(n)
	for k, c := range p.terms {
		key := make([]byte, n)
		key[i] = k[0]
		r.terms[string(key)] = new(big.Rat).Set(c)
	}
	return r
}
