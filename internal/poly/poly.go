// Package poly implements exact multivariate polynomial arithmetic over the
// rationals, Bernoulli numbers, and Faulhaber (closed-form power-sum)
// summation. It is the counting back end of the polyhedral library: the
// cardinality of a loop-nest-form integer polytope is computed by summing
// polynomials symbolically, dimension by dimension, which is the role the
// barvinok library plays in the original PolyUFC implementation.
package poly

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Poly is a polynomial in a fixed number of variables with rational
// coefficients. The zero value is not usable; construct values with New,
// Const, Var, or the arithmetic methods. Variables are identified by index
// in [0, N). Polynomials are immutable: all operations return new values.
type Poly struct {
	// n is the number of variables in the polynomial's space.
	n int
	// terms maps an exponent key (one byte per variable) to a nonzero
	// coefficient. The zero polynomial has an empty map.
	terms map[string]*big.Rat
}

// New returns the zero polynomial in n variables.
func New(n int) Poly {
	if n < 0 {
		panic("poly: negative variable count")
	}
	return Poly{n: n, terms: map[string]*big.Rat{}}
}

// Const returns the constant polynomial c in n variables.
func Const(n int, c *big.Rat) Poly {
	p := New(n)
	if c.Sign() != 0 {
		p.terms[string(make([]byte, n))] = new(big.Rat).Set(c)
	}
	return p
}

// ConstInt returns the constant polynomial c in n variables.
func ConstInt(n int, c int64) Poly {
	return Const(n, big.NewRat(c, 1))
}

// Var returns the polynomial consisting of the single variable i.
func Var(n, i int) Poly {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("poly: variable %d out of range [0,%d)", i, n))
	}
	p := New(n)
	key := make([]byte, n)
	key[i] = 1
	p.terms[string(key)] = big.NewRat(1, 1)
	return p
}

// NumVars reports the number of variables in p's space.
func (p Poly) NumVars() int { return p.n }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// IsConst reports whether p has no variable terms, and returns the constant.
func (p Poly) IsConst() (*big.Rat, bool) {
	switch len(p.terms) {
	case 0:
		return new(big.Rat), true
	case 1:
		zero := string(make([]byte, p.n))
		if c, ok := p.terms[zero]; ok {
			return new(big.Rat).Set(c), true
		}
	}
	return nil, false
}

// Degree returns the total degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	deg := -1
	for k := range p.terms {
		d := 0
		for i := 0; i < p.n; i++ {
			d += int(k[i])
		}
		if d > deg {
			deg = d
		}
	}
	return deg
}

// DegreeOf returns the maximum exponent of variable i in p.
func (p Poly) DegreeOf(i int) int {
	deg := 0
	for k := range p.terms {
		if int(k[i]) > deg {
			deg = int(k[i])
		}
	}
	return deg
}

// Coeff returns the coefficient of the monomial with the given exponents.
func (p Poly) Coeff(exps []int) *big.Rat {
	if len(exps) != p.n {
		panic("poly: exponent vector length mismatch")
	}
	key := make([]byte, p.n)
	for i, e := range exps {
		if e < 0 || e > 255 {
			panic("poly: exponent out of byte range")
		}
		key[i] = byte(e)
	}
	if c, ok := p.terms[string(key)]; ok {
		return new(big.Rat).Set(c)
	}
	return new(big.Rat)
}

func (p Poly) clone() Poly {
	q := New(p.n)
	for k, c := range p.terms {
		q.terms[k] = new(big.Rat).Set(c)
	}
	return q
}

func (p Poly) addTerm(key string, c *big.Rat) {
	if c.Sign() == 0 {
		return
	}
	if old, ok := p.terms[key]; ok {
		old.Add(old, c)
		if old.Sign() == 0 {
			delete(p.terms, key)
		}
	} else {
		p.terms[key] = new(big.Rat).Set(c)
	}
}

// Add returns p + q. Both must share the same variable space.
func (p Poly) Add(q Poly) Poly {
	p.mustMatch(q)
	r := p.clone()
	for k, c := range q.terms {
		r.addTerm(k, c)
	}
	return r
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly {
	p.mustMatch(q)
	r := p.clone()
	neg := new(big.Rat)
	for k, c := range q.terms {
		neg.Neg(c)
		r.addTerm(k, neg)
	}
	return r
}

// Neg returns -p.
func (p Poly) Neg() Poly {
	r := New(p.n)
	for k, c := range p.terms {
		r.terms[k] = new(big.Rat).Neg(c)
	}
	return r
}

// Scale returns c * p.
func (p Poly) Scale(c *big.Rat) Poly {
	if c.Sign() == 0 {
		return New(p.n)
	}
	r := New(p.n)
	for k, co := range p.terms {
		r.terms[k] = new(big.Rat).Mul(co, c)
	}
	return r
}

// ScaleInt returns c * p.
func (p Poly) ScaleInt(c int64) Poly { return p.Scale(big.NewRat(c, 1)) }

// Mul returns p * q.
func (p Poly) Mul(q Poly) Poly {
	p.mustMatch(q)
	r := New(p.n)
	tmp := new(big.Rat)
	key := make([]byte, p.n)
	for k1, c1 := range p.terms {
		for k2, c2 := range q.terms {
			for i := 0; i < p.n; i++ {
				e := int(k1[i]) + int(k2[i])
				if e > 255 {
					panic("poly: exponent overflow in Mul")
				}
				key[i] = byte(e)
			}
			tmp.Mul(c1, c2)
			r.addTerm(string(key), tmp)
		}
	}
	return r
}

// Pow returns p raised to the non-negative integer power k.
func (p Poly) Pow(k int) Poly {
	if k < 0 {
		panic("poly: negative exponent")
	}
	r := ConstInt(p.n, 1)
	base := p
	for k > 0 {
		if k&1 == 1 {
			r = r.Mul(base)
		}
		k >>= 1
		if k > 0 {
			base = base.Mul(base)
		}
	}
	return r
}

// Eval evaluates p at the given rational point.
func (p Poly) Eval(point []*big.Rat) *big.Rat {
	if len(point) != p.n {
		panic("poly: evaluation point length mismatch")
	}
	sum := new(big.Rat)
	term := new(big.Rat)
	pw := new(big.Rat)
	for k, c := range p.terms {
		term.Set(c)
		for i := 0; i < p.n; i++ {
			for e := 0; e < int(k[i]); e++ {
				pw.Set(point[i])
				term.Mul(term, pw)
			}
		}
		sum.Add(sum, term)
	}
	return sum
}

// EvalInt evaluates p at an integer point.
func (p Poly) EvalInt(point []int64) *big.Rat {
	rats := make([]*big.Rat, len(point))
	for i, v := range point {
		rats[i] = big.NewRat(v, 1)
	}
	return p.Eval(rats)
}

// EvalInt64 evaluates p at an integer point and returns the result as an
// int64, reporting whether the value was an integer that fits.
func (p Poly) EvalInt64(point []int64) (int64, bool) {
	r := p.EvalInt(point)
	if !r.IsInt() {
		return 0, false
	}
	n := r.Num()
	if !n.IsInt64() {
		return 0, false
	}
	return n.Int64(), true
}

// SubstPoly returns the polynomial obtained by substituting variable i with
// the polynomial q (in the same variable space as p).
func (p Poly) SubstPoly(i int, q Poly) Poly {
	p.mustMatch(q)
	if i < 0 || i >= p.n {
		panic("poly: substitution variable out of range")
	}
	// Group terms of p by the exponent of variable i:
	// p = sum_k c_k(rest) * x_i^k, result = sum_k c_k * q^k.
	byDeg := map[int]Poly{}
	for k, c := range p.terms {
		d := int(k[i])
		rest := []byte(k)
		rest[i] = 0
		cp, ok := byDeg[d]
		if !ok {
			cp = New(p.n)
			byDeg[d] = cp
		}
		cp.addTerm(string(rest), c)
	}
	result := New(p.n)
	// Iterate degrees in increasing order, maintaining q^k incrementally.
	degs := make([]int, 0, len(byDeg))
	for d := range byDeg {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	qpow := ConstInt(p.n, 1)
	cur := 0
	for _, d := range degs {
		for cur < d {
			qpow = qpow.Mul(q)
			cur++
		}
		result = result.Add(byDeg[d].Mul(qpow))
	}
	return result
}

// ExtendVars returns p re-expressed in a space with m >= p.NumVars()
// variables; the original variables keep their indices.
func (p Poly) ExtendVars(m int) Poly {
	if m < p.n {
		panic("poly: ExtendVars cannot shrink the space")
	}
	if m == p.n {
		return p
	}
	r := New(m)
	for k, c := range p.terms {
		key := make([]byte, m)
		copy(key, k)
		r.terms[string(key)] = new(big.Rat).Set(c)
	}
	return r
}

// Equal reports whether p and q are identical polynomials.
func (p Poly) Equal(q Poly) bool {
	if p.n != q.n || len(p.terms) != len(q.terms) {
		return false
	}
	for k, c := range p.terms {
		c2, ok := q.terms[k]
		if !ok || c.Cmp(c2) != 0 {
			return false
		}
	}
	return true
}

func (p Poly) mustMatch(q Poly) {
	if p.n != q.n {
		panic(fmt.Sprintf("poly: variable space mismatch (%d vs %d)", p.n, q.n))
	}
}

// String renders the polynomial with variables named x0, x1, ...
func (p Poly) String() string { return p.Format(nil) }

// Format renders the polynomial using the supplied variable names; a nil or
// short slice falls back to xN naming.
func (p Poly) Format(names []string) string {
	if len(p.terms) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	// Sort by total degree descending, then lexicographically, so output is
	// deterministic.
	sort.Slice(keys, func(a, b int) bool {
		da, db := 0, 0
		for i := 0; i < p.n; i++ {
			da += int(keys[a][i])
			db += int(keys[b][i])
		}
		if da != db {
			return da > db
		}
		return keys[a] > keys[b]
	})
	var sb strings.Builder
	for idx, k := range keys {
		c := p.terms[k]
		if idx > 0 {
			if c.Sign() >= 0 {
				sb.WriteString(" + ")
			} else {
				sb.WriteString(" - ")
			}
		} else if c.Sign() < 0 {
			sb.WriteString("-")
		}
		abs := new(big.Rat).Abs(c)
		mono := monoString(k, p.n, names)
		if mono == "" {
			sb.WriteString(abs.RatString())
		} else {
			if abs.Cmp(big.NewRat(1, 1)) != 0 {
				sb.WriteString(abs.RatString())
				sb.WriteString("*")
			}
			sb.WriteString(mono)
		}
	}
	return sb.String()
}

func monoString(key string, n int, names []string) string {
	var parts []string
	for i := 0; i < n; i++ {
		e := int(key[i])
		if e == 0 {
			continue
		}
		name := fmt.Sprintf("x%d", i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		if e == 1 {
			parts = append(parts, name)
		} else {
			parts = append(parts, fmt.Sprintf("%s^%d", name, e))
		}
	}
	return strings.Join(parts, "*")
}
