package platform

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// Constants are the calibrated roofline constants of Table I, plus the
// frequency-parametric fits of Sec. V. They are produced by the roofline
// calibration of a Backend and persisted inside a Calibration artifact
// (JSON float64s round-trip bit-exactly: Go marshals the shortest
// representation and parses it back to the identical bits).
type Constants struct {
	Platform string `json:"platform"`

	// TFpu is seconds per flop at full machine throughput (all threads at
	// the base core clock): 1/peak.
	TFpu float64 `json:"t_fpu"`
	// PeakGFlops is the compute roof.
	PeakGFlops float64 `json:"peak_gflops"`
	// TByteMax is seconds per DRAM byte at the maximum uncore frequency.
	TByteMax float64 `json:"t_byte_max"`
	// PeakGBs is the memory roof at the maximum uncore frequency.
	PeakGBs float64 `json:"peak_gbs"`
	// BtDRAM is the time balance: PeakFlops/PeakBW (flop per byte); the
	// CB/BB boundary of Sec. IV-D.
	BtDRAM float64 `json:"bt_dram"`
	// BeDRAM is the energy balance: EByte/EFpu.
	BeDRAM float64 `json:"be_dram"`

	// EFpu is dynamic energy per flop (J); PFpuHat the peak flop-engine
	// power (W).
	EFpu    float64 `json:"e_fpu"`
	PFpuHat float64 `json:"p_fpu_hat"`
	// EByte is energy per DRAM byte at max uncore frequency (J); PByteHat
	// the peak memory-path power (W).
	EByte    float64 `json:"e_byte"`
	PByteHat float64 `json:"p_byte_hat"`
	// PCon is constant power (W).
	PCon float64 `json:"p_con"`

	// HitLatency[i] is the derived per-access service time of cache level
	// i (seconds), used as H_ci in Eqn. 4.
	HitLatency []float64 `json:"hit_latency"`

	// Per-byte DRAM service time M^t(f) = MissLatA/f + MissLatB
	// (seconds per byte, f in GHz) — the hyperbolic fit of Sec. V-A.
	MissLatA  float64 `json:"miss_lat_a"`
	MissLatB  float64 `json:"miss_lat_b"`
	MissLatR2 float64 `json:"miss_lat_r2"`

	// Uncore power model: P_uncore(f, bw) = IdleWPerGHz*f +
	// (AlphaP*f + GammaP) * bw, with bw in bytes/s — the linear fits of
	// Eqn. 10 (alpha_P, gamma_P) plus the idle clock-tree term.
	IdleWPerGHz float64 `json:"idle_w_per_ghz"`
	AlphaP      float64 `json:"alpha_p"` // W per (byte/s), linear in f
	GammaP      float64 `json:"gamma_p"`
	PowerR2     float64 `json:"power_r2"`

	// PhatAlpha/PhatGamma fit the peak DRAM power roof
	// P̂_{f,DRAM} = PhatAlpha*f + PhatGamma (W) of Eqn. 8.
	PhatAlpha float64 `json:"phat_alpha"`
	PhatGamma float64 `json:"phat_gamma"`

	// Core-domain constants for the coordinated core+uncore extension:
	// CoreIdleWPerGHz is the fitted core clock-tree power slope and
	// CoreBaseGHz the clock all other constants were calibrated at. PCon
	// includes CoreIdleWPerGHz*CoreBaseGHz (the share paid at base).
	CoreIdleWPerGHz float64 `json:"core_idle_w_per_ghz"`
	CoreBaseGHz     float64 `json:"core_base_ghz"`

	// CalibThreads is the thread count the compute roof was calibrated
	// at. The Sec. V model scales single-nest estimates by it; it comes
	// from the backend description, not a switch on the platform name.
	CalibThreads int `json:"calib_threads,omitempty"`
}

// Class is the bound-and-bottleneck characterization.
type Class int

// Characterization outcomes.
const (
	ComputeBound Class = iota
	BandwidthBound
)

func (c Class) String() string {
	if c == ComputeBound {
		return "CB"
	}
	return "BB"
}

// Hash is the content hash of the calibrated constants, pinning derived
// artifacts (plan tables, cached compilations, journaled responses) to
// the exact fit that produced them: a re-fit of the same backend yields
// a different hash even though the description is unchanged. Constants
// marshal deterministically (fixed field order, shortest float
// representation), so the hash is stable across processes.
func (c *Constants) Hash() string {
	data, err := json.Marshal(c)
	if err != nil {
		// Constants has no unmarshalable fields; keep the signature clean.
		panic(fmt.Sprintf("platform: hash constants for %q: %v", c.Platform, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Classify applies Sec. IV-D: CB iff OI >= B^t_DRAM.
func (c *Constants) Classify(oi float64) Class {
	if oi >= c.BtDRAM {
		return ComputeBound
	}
	return BandwidthBound
}

// MissLat returns M^t(f): seconds per DRAM byte at uncore frequency f.
func (c *Constants) MissLat(f float64) float64 {
	return c.MissLatA/f + c.MissLatB
}

// UncorePower returns the modeled uncore power at frequency f with the
// given achieved DRAM bandwidth (bytes/s).
func (c *Constants) UncorePower(f, bw float64) float64 {
	return c.IdleWPerGHz*f + (c.AlphaP*f+c.GammaP)*bw
}

// PeakDRAMPower returns P̂_{f,DRAM} of Eqn. 8.
func (c *Constants) PeakDRAMPower(f float64) float64 {
	return c.PhatAlpha*f + c.PhatGamma
}

// AttainableGFlops returns the classic roofline ceiling
// min(peak, OI * peakBW) at the maximum uncore frequency.
func (c *Constants) AttainableGFlops(oi float64) float64 {
	return math.Min(c.PeakGFlops, oi*c.PeakGBs)
}
