package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// CalibrationSchemaVersion is the persisted-calibration format version.
const CalibrationSchemaVersion = 1

// Provenance records where a calibration came from, so operators can tell
// which fit served a request (statsz, /v1/platforms).
type Provenance struct {
	// FitDate is the UTC RFC 3339 timestamp of the fit.
	FitDate string `json:"fit_date"`
	// Seed is the measurement-noise seed the fit ran under (0 = the
	// deterministic noiseless simulator).
	Seed int64 `json:"seed"`
	// Residuals holds the goodness-of-fit R^2 per fitted curve
	// (miss_latency, uncore_power).
	Residuals map[string]float64 `json:"residuals,omitempty"`
	// Tool identifies the producer ("polyufc/roofline").
	Tool string `json:"tool,omitempty"`
}

// Calibration is the persisted artifact of one roofline fit: the Table-I
// Constants and Sec. V curve fits for one backend, pinned by content hash
// to the exact description they were fitted against.
type Calibration struct {
	Schema int `json:"schema"`
	// Backend is the canonical name of the fitted backend; BackendHash
	// pins the exact description (Backend.Hash) so a stale artifact for
	// an edited description is rejected instead of silently used.
	Backend     string     `json:"backend"`
	BackendHash string     `json:"backend_hash,omitempty"`
	Constants   Constants  `json:"constants"`
	Provenance  Provenance `json:"provenance"`
}

// Marshal renders the artifact as indented JSON. Encoding is
// deterministic: struct fields emit in declaration order and map keys
// (Residuals) sort.
func (c *Calibration) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("platform: marshal calibration %q: %w", c.Backend, err)
	}
	return append(out, '\n'), nil
}

// ParseCalibration decodes a persisted calibration, rejecting unknown
// fields and wrong schema versions with errors naming the problem.
func ParseCalibration(data []byte) (*Calibration, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Calibration
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("platform: parse calibration: %w", err)
	}
	if c.Schema != CalibrationSchemaVersion {
		return nil, fmt.Errorf("platform: calibration for %q: schema: got version %d, this build reads version %d (re-run the calibration)",
			c.Backend, c.Schema, CalibrationSchemaVersion)
	}
	if c.Backend == "" {
		return nil, fmt.Errorf("platform: calibration: backend: must name the fitted backend")
	}
	return &c, nil
}

// Matches reports whether the artifact was fitted against b, checking the
// name and (when recorded) the description content hash.
func (c *Calibration) Matches(b *Backend) error {
	if c.Backend != b.Name {
		return fmt.Errorf("platform: calibration is for backend %q, not %q", c.Backend, b.Name)
	}
	if h := b.Hash(); c.BackendHash != "" && c.BackendHash != h {
		return fmt.Errorf("platform: calibration for %q was fitted against description %s, but the current description is %s (re-calibrate)",
			c.Backend, c.BackendHash, h)
	}
	return nil
}

// Save writes the artifact atomically (temp file + rename).
func (c *Calibration) Save(path string) error {
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".calibration-*.json")
	if err != nil {
		return fmt.Errorf("platform: save calibration: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("platform: save calibration: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("platform: save calibration: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("platform: save calibration: %w", err)
	}
	return nil
}

// LoadCalibration reads and validates a persisted calibration file.
func LoadCalibration(path string) (*Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("platform: load calibration: %w", err)
	}
	c, err := ParseCalibration(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return c, nil
}
