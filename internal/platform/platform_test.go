package platform

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// validBackend returns a well-formed description distinct from the
// embedded machines (tests mutate it freely).
func validBackend() *Backend {
	return &Backend{
		Schema:     SchemaVersionV1,
		Name:       "UNIT-TEST",
		Aliases:    []string{"ut"},
		CPU:        "Unit Test CPU",
		Released:   2026,
		Cores:      8,
		Threads:    16,
		CoreMinGHz: 1.0, CoreMaxGHz: 4.0, CoreBaseGHz: 3.0,
		UncoreMinGHz: 0.8, UncoreMaxGHz: 3.2,
		CapStepGHz:    0.1,
		CapLatencySec: 35e-6,
		HasUncoreRAPL: true,
		Cache: []CacheLevel{
			{Name: "L1", SizeBytes: 32768, LineSize: 64, Assoc: 8},
			{Name: "L2", SizeBytes: 262144, LineSize: 64, Assoc: 8},
			{Name: "LLC", SizeBytes: 8388608, LineSize: 64, Assoc: 16},
		},
		Truth: Truth{
			FlopsPerCycle: 16, HitLatencyNs: []float64{1.0, 3.0, 14.0},
			DRAMLatCoefNsGHz: 40, DRAMLatBaseNs: 50,
			BWPeakGBs: 60, BWKneeGHz: 0.9,
			MLP: 10, MLPSystem: 48, ILP: 4, Overlap: 0.2,
			PConstW: 25, CoreIdleWPerGHz: 2.0, CoreJPerFlop: 1.5e-10,
			UncoreIdleWPerGHz: 3.0, UncoreActWPerGHz: 7.0, UncoreActBaseW: 1.9,
		},
	}
}

func TestValidateFieldErrors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Backend)
		want   string
	}{
		{"wrong schema", func(b *Backend) { b.Schema = 99 }, "schema"},
		{"empty name", func(b *Backend) { b.Name = "" }, "name"},
		{"zero cores", func(b *Backend) { b.Cores = 0 }, "cores"},
		{"threads below cores", func(b *Backend) { b.Threads = 4 }, "threads"},
		{"inverted core range", func(b *Backend) { b.CoreMaxGHz = 0.5 }, "core_min_ghz/core_max_ghz"},
		{"base outside range", func(b *Backend) { b.CoreBaseGHz = 9 }, "core_base_ghz"},
		{"inverted uncore range", func(b *Backend) { b.UncoreMaxGHz = 0.1 }, "uncore_min_ghz/uncore_max_ghz"},
		{"zero cap step", func(b *Backend) { b.CapStepGHz = 0 }, "cap_step_ghz"},
		{"negative cap latency", func(b *Backend) { b.CapLatencySec = -1 }, "cap_latency_sec"},
		{"no cache", func(b *Backend) { b.Cache = nil }, "cache"},
		{"ragged set count", func(b *Backend) { b.Cache[1].SizeBytes = 262145 }, "whole number of sets"},
		{"shrinking hierarchy", func(b *Backend) { b.Cache[2].SizeBytes = 1024 }, "smaller than inner level"},
		{"latency per level", func(b *Backend) { b.Truth.HitLatencyNs = []float64{1} }, "hit_latency_ns"},
		{"mlp below one", func(b *Backend) { b.Truth.MLP = 0.5 }, "mlp"},
		{"overlap above one", func(b *Backend) { b.Truth.Overlap = 1.5 }, "overlap"},
	} {
		b := validBackend()
		tc.mutate(b)
		err := b.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted the bad description", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	if err := validBackend().Validate(); err != nil {
		t.Fatalf("valid description rejected: %v", err)
	}
}

func TestParseRejectsUnknownFieldsAndOldSchema(t *testing.T) {
	good, err := validBackend().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(good); err != nil {
		t.Fatalf("round-tripped description rejected: %v", err)
	}
	// A typo'd field must fail loudly, not decode to a silent zero.
	typo := bytes.Replace(good, []byte(`"cap_step_ghz"`), []byte(`"cap_step_gz"`), 1)
	if _, err := Parse(typo); err == nil || !strings.Contains(err.Error(), "cap_step_gz") {
		t.Fatalf("unknown field error = %v", err)
	}
	// An old schema version names both versions in the error.
	old := bytes.Replace(good, []byte(`"schema": 1`), []byte(`"schema": 0`), 1)
	if _, err := Parse(old); err == nil || !strings.Contains(err.Error(), "version 0") {
		t.Fatalf("old schema error = %v", err)
	}
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
}

func TestBackendMarshalRoundTrip(t *testing.T) {
	// Every embedded description survives marshal -> parse bit-for-bit:
	// same struct, same content hash, same re-marshalled bytes.
	for _, b := range All() {
		data, err := b.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !reflect.DeepEqual(b, got) {
			t.Fatalf("%s: round trip changed the description", b.Name)
		}
		if b.Hash() != got.Hash() {
			t.Fatalf("%s: hash changed across round trip", b.Name)
		}
		again, err := got.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("%s: marshal not deterministic", b.Name)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"BDW", "bdw", "Broadwell", "RPL", "raptorlake"} {
		b, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if b == nil {
			t.Fatalf("Lookup(%q) returned nil backend", name)
		}
	}
	b, err := Lookup("m1-max")
	if b != nil || err == nil {
		t.Fatalf("unknown name resolved: %v, %v", b, err)
	}
	for _, want := range []string{"m1-max", "BDW", "RPL"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("lookup error %q does not mention %q", err, want)
		}
	}
	paper := Paper()
	if len(paper) != 2 || paper[0].Name != "BDW" || paper[1].Name != "RPL" {
		t.Fatalf("Paper() = %v", paper)
	}
}

func TestRegisterCollisionAndLastWins(t *testing.T) {
	// An alias colliding with a different backend's name is rejected.
	clash := validBackend()
	clash.Name = "CLASH-TEST"
	clash.Aliases = []string{"rpl"}
	if err := Register(clash); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("collision error = %v", err)
	}
	if _, err := Lookup("CLASH-TEST"); err == nil {
		t.Fatal("rejected backend was registered anyway")
	}
	// Re-registering the same canonical name replaces the entry (a file
	// under platforms/ overrides an embedded description).
	v1 := validBackend()
	if err := Register(v1); err != nil {
		t.Fatal(err)
	}
	before := len(Names())
	v2 := validBackend()
	v2.CPU = "Unit Test CPU rev2"
	if err := Register(v2); err != nil {
		t.Fatal(err)
	}
	if got, _ := Lookup("unit-test"); got == nil || got.CPU != "Unit Test CPU rev2" {
		t.Fatalf("last-wins re-registration did not replace: %+v", got)
	}
	if len(Names()) != before {
		t.Fatalf("re-registration grew the registry: %v", Names())
	}
}

// testCalibration builds an artifact with awkward float values (subnormal
// ranges, repeating binary fractions) so the round trip is a real test of
// bit-exactness.
func testCalibration() *Calibration {
	c := Constants{
		Platform: "UNIT-TEST", PeakGFlops: 614.4, PeakGBs: 55.3217,
		BtDRAM: 11.1061, TByteMax: 35e-6 / 1937.0, CalibThreads: 16,
		HitLatency: []float64{1.1e-9, 3.3e-9, 13e-9},
		MissLatA:   42.0001, MissLatB: 51.9999, MissLatR2: 1 - 1e-12,
		PowerR2: 0.999999999,
	}
	return &Calibration{
		Schema: CalibrationSchemaVersion, Backend: "UNIT-TEST",
		BackendHash: validBackend().Hash(), Constants: c,
		Provenance: Provenance{
			FitDate: "2026-08-05T00:00:00Z", Seed: 0,
			Residuals: map[string]float64{"miss_latency": 1.0 / 3.0, "uncore_power": 0.1},
			Tool:      "polyufc/roofline",
		},
	}
}

func TestCalibrationRoundTripBitForBit(t *testing.T) {
	cal := testCalibration()
	data, err := cal.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseCalibration(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cal, got) {
		t.Fatalf("round trip changed the artifact:\n%+v\nvs\n%+v", cal, got)
	}
	again, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("calibration marshal not bit-stable:\n%s\nvs\n%s", data, again)
	}
}

func TestCalibrationSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unit-test.calibration.json")
	cal := testCalibration()
	if err := cal.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cal, got) {
		t.Fatal("loaded artifact differs from saved")
	}
	if err := got.Matches(validBackend()); err != nil {
		t.Fatalf("Matches rejected its own backend: %v", err)
	}
	if _, err := LoadCalibration(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCalibrationRejectsCorruptAndStale(t *testing.T) {
	good, err := testCalibration().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Old schema version: the error names both versions and the remedy.
	old := bytes.Replace(good, []byte(`"schema": 1`), []byte(`"schema": 0`), 1)
	if _, err := ParseCalibration(old); err == nil ||
		!strings.Contains(err.Error(), "version 0") || !strings.Contains(err.Error(), "re-run") {
		t.Fatalf("old calibration schema error = %v", err)
	}
	// Unknown field (typo or a future field) fails loudly.
	typo := bytes.Replace(good, []byte(`"backend_hash"`), []byte(`"backend_hsah"`), 1)
	if _, err := ParseCalibration(typo); err == nil {
		t.Fatal("unknown calibration field accepted")
	}
	if _, err := ParseCalibration([]byte("{torn")); err == nil {
		t.Fatal("corrupt calibration accepted")
	}
	// A truncated write (no backend name) is rejected.
	if _, err := ParseCalibration([]byte(`{"schema": 1}`)); err == nil {
		t.Fatal("empty calibration accepted")
	}
	// The corrupt-file error carries the file path for the operator.
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCalibration(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("load error lacks the file path: %v", err)
	}
	// A stale artifact (description edited since the fit) is rejected.
	cal := testCalibration()
	edited := validBackend()
	edited.UncoreMaxGHz = 3.6
	if err := cal.Matches(edited); err == nil || !strings.Contains(err.Error(), "re-calibrate") {
		t.Fatalf("stale artifact error = %v", err)
	}
	other := validBackend()
	other.Name = "OTHER"
	if err := cal.Matches(other); err == nil {
		t.Fatal("artifact matched the wrong backend")
	}
}

func TestPlatformsDirDescriptionsValid(t *testing.T) {
	// Every shipped platforms/*.json description must parse and validate
	// against the current schema (make platforms runs the same check).
	paths, err := filepath.Glob(filepath.Join("..", "..", "platforms", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no descriptions under platforms/")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if b.Paper {
			t.Fatalf("%s: file-shipped description %q claims to be a paper machine", p, b.Name)
		}
	}
}
