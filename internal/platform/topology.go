package platform

import (
	"fmt"
	"reflect"
	"strings"
)

// Socket describes one socket of a topology-aware (schema v2) backend:
// its cores, frequency ranges, uncore cap grid, cache hierarchy and
// hidden truth constants. Every field carries the same meaning as the
// identically-named top-level Backend field — a v1 description *is* one
// Socket flattened into the Backend.
type Socket struct {
	Cores   int `json:"cores"`
	Threads int `json:"threads"`
	// Core and uncore frequency ranges in GHz.
	CoreMinGHz   float64 `json:"core_min_ghz"`
	CoreMaxGHz   float64 `json:"core_max_ghz"`
	CoreBaseGHz  float64 `json:"core_base_ghz"`
	UncoreMinGHz float64 `json:"uncore_min_ghz"`
	UncoreMaxGHz float64 `json:"uncore_max_ghz"`
	// CapStepGHz is the uncore cap granularity of this socket's domain;
	// the grid is anchored at UncoreMinGHz.
	CapStepGHz float64 `json:"cap_step_ghz"`
	// CapLatencySec is the cost of one cap change on this domain.
	CapLatencySec float64 `json:"cap_latency_sec"`
	// HasUncoreRAPL reports whether this socket's uncore energy zone is
	// readable.
	HasUncoreRAPL bool         `json:"has_uncore_rapl"`
	Cache         []CacheLevel `json:"cache"`
	Truth         Truth        `json:"truth"`
}

// validate checks the per-socket constraints (the v1 field checks,
// applied to one socket). prefix scopes field names in errors
// ("sockets[1]." or "" for the flattened top-level view).
func (s *Socket) validate(backend, prefix string) error {
	bad := func(field, format string, args ...interface{}) error {
		return fmt.Errorf("platform: backend %q: %s%s: %s", backend, prefix, field, fmt.Sprintf(format, args...))
	}
	if s.Cores <= 0 {
		return bad("cores", "must be > 0, got %d", s.Cores)
	}
	if s.Threads < s.Cores {
		return bad("threads", "must be >= cores (%d), got %d", s.Cores, s.Threads)
	}
	if s.CoreMinGHz <= 0 || s.CoreMaxGHz < s.CoreMinGHz {
		return bad("core_min_ghz/core_max_ghz", "need 0 < min <= max, got [%g, %g]", s.CoreMinGHz, s.CoreMaxGHz)
	}
	if s.CoreBaseGHz < s.CoreMinGHz || s.CoreBaseGHz > s.CoreMaxGHz {
		return bad("core_base_ghz", "must lie in [%g, %g], got %g", s.CoreMinGHz, s.CoreMaxGHz, s.CoreBaseGHz)
	}
	if s.UncoreMinGHz <= 0 || s.UncoreMaxGHz < s.UncoreMinGHz {
		return bad("uncore_min_ghz/uncore_max_ghz", "need 0 < min <= max, got [%g, %g]", s.UncoreMinGHz, s.UncoreMaxGHz)
	}
	if s.CapStepGHz <= 0 {
		return bad("cap_step_ghz", "must be > 0, got %g", s.CapStepGHz)
	}
	if s.CapLatencySec < 0 {
		return bad("cap_latency_sec", "must be >= 0, got %g", s.CapLatencySec)
	}
	if len(s.Cache) == 0 {
		return bad("cache", "need at least one level")
	}
	for i, lv := range s.Cache {
		if lv.Name == "" {
			return bad("cache", "level %d: name must be non-empty", i)
		}
		if lv.SizeBytes <= 0 || lv.LineSize <= 0 || lv.Assoc <= 0 {
			return bad("cache", "level %s: size_bytes, line_size and assoc must be > 0", lv.Name)
		}
		if lv.SizeBytes%(lv.LineSize*lv.Assoc) != 0 {
			return bad("cache", "level %s: size %d is not a whole number of sets (line %d x assoc %d)",
				lv.Name, lv.SizeBytes, lv.LineSize, lv.Assoc)
		}
		if i > 0 && lv.SizeBytes < s.Cache[i-1].SizeBytes {
			return bad("cache", "level %s: smaller than inner level %s", lv.Name, s.Cache[i-1].Name)
		}
	}
	t := &s.Truth
	if t.FlopsPerCycle <= 0 {
		return bad("truth.flops_per_cycle", "must be > 0, got %g", t.FlopsPerCycle)
	}
	if len(t.HitLatencyNs) != len(s.Cache) {
		return bad("truth.hit_latency_ns", "need one latency per cache level (%d), got %d", len(s.Cache), len(t.HitLatencyNs))
	}
	for i, h := range t.HitLatencyNs {
		if h <= 0 {
			return bad("truth.hit_latency_ns", "level %d: must be > 0, got %g", i, h)
		}
	}
	if t.BWPeakGBs <= 0 || t.BWKneeGHz <= 0 {
		return bad("truth.bw_peak_gbs/bw_knee_ghz", "must be > 0, got %g / %g", t.BWPeakGBs, t.BWKneeGHz)
	}
	if t.MLP < 1 || t.MLPSystem < t.MLP {
		return bad("truth.mlp/mlp_system", "need 1 <= mlp <= mlp_system, got %g / %g", t.MLP, t.MLPSystem)
	}
	if t.ILP < 1 {
		return bad("truth.ilp", "must be >= 1, got %g", t.ILP)
	}
	if t.Overlap < 0 || t.Overlap > 1 {
		return bad("truth.overlap", "must be in [0, 1], got %g", t.Overlap)
	}
	return nil
}

// Interconnect models the inter-socket link of a multi-socket topology
// (QPI/UPI-shaped): every remote DRAM access crosses it, paying extra
// latency, sharing its bandwidth, and spending link energy per byte.
type Interconnect struct {
	// BWGBs is the sustained link bandwidth in GB/s (per direction).
	BWGBs float64 `json:"bw_gbs"`
	// LatencyNs is the extra per-cache-line latency of a remote access
	// over a local one.
	LatencyNs float64 `json:"latency_ns"`
	// EnergyPJPerByte is the link transfer energy in picojoules per byte.
	EnergyPJPerByte float64 `json:"energy_pj_per_byte,omitempty"`
}

func (ic *Interconnect) validate(backend string) error {
	bad := func(field, format string, args ...interface{}) error {
		return fmt.Errorf("platform: backend %q: interconnect.%s: %s", backend, field, fmt.Sprintf(format, args...))
	}
	if ic.BWGBs <= 0 {
		return bad("bw_gbs", "must be > 0, got %g", ic.BWGBs)
	}
	if ic.LatencyNs < 0 {
		return bad("latency_ns", "must be >= 0, got %g", ic.LatencyNs)
	}
	if ic.EnergyPJPerByte < 0 {
		return bad("energy_pj_per_byte", "must be >= 0, got %g", ic.EnergyPJPerByte)
	}
	return nil
}

// legacySocket is the flattened top-level single-socket view of the
// description: the whole machine for v1, the socket-0 mirror that
// Normalize maintains for v2.
func (b *Backend) legacySocket() Socket {
	return Socket{
		Cores: b.Cores, Threads: b.Threads,
		CoreMinGHz: b.CoreMinGHz, CoreMaxGHz: b.CoreMaxGHz, CoreBaseGHz: b.CoreBaseGHz,
		UncoreMinGHz: b.UncoreMinGHz, UncoreMaxGHz: b.UncoreMaxGHz,
		CapStepGHz: b.CapStepGHz, CapLatencySec: b.CapLatencySec,
		HasUncoreRAPL: b.HasUncoreRAPL,
		Cache:         b.Cache, Truth: b.Truth,
	}
}

// Normalize mirrors socket 0 of a topology (schema v2) description into
// the legacy top-level fields, so every consumer of the single-socket
// view (hw.FromBackend, calibration, plan tables) reads socket 0 without
// knowing about schema v2. v1 descriptions are untouched. Parse and
// Register normalize automatically; call it by hand only after editing a
// v2 Backend constructed in code, before Validate or Hash.
func (b *Backend) Normalize() {
	if b == nil || len(b.Sockets) == 0 {
		return
	}
	s := b.Sockets[0]
	b.Cores, b.Threads = s.Cores, s.Threads
	b.CoreMinGHz, b.CoreMaxGHz, b.CoreBaseGHz = s.CoreMinGHz, s.CoreMaxGHz, s.CoreBaseGHz
	b.UncoreMinGHz, b.UncoreMaxGHz = s.UncoreMinGHz, s.UncoreMaxGHz
	b.CapStepGHz, b.CapLatencySec = s.CapStepGHz, s.CapLatencySec
	b.HasUncoreRAPL = s.HasUncoreRAPL
	b.Cache, b.Truth = s.Cache, s.Truth
}

// Topology returns the socket list of the description: the sockets array
// for v2, or the top-level fields synthesized as a single socket for v1.
// Every backend therefore has a topology; single-socket code paths are
// the NumSockets() == 1 special case, not a different schema.
func (b *Backend) Topology() []Socket {
	if len(b.Sockets) > 0 {
		return b.Sockets
	}
	return []Socket{b.legacySocket()}
}

// NumSockets returns the socket count (1 for v1 descriptions).
func (b *Backend) NumSockets() int {
	if len(b.Sockets) > 0 {
		return len(b.Sockets)
	}
	return 1
}

// NumNodes returns the cluster node count the description models: the
// nodes field, or 1 when absent. Nodes are identical replicas of the
// socket topology sharing one calibration.
func (b *Backend) NumNodes() int {
	if b.Nodes > 1 {
		return b.Nodes
	}
	return 1
}

// Homogeneous reports whether every socket is identical to socket 0 —
// when true, one calibration (socket 0's) serves all sockets.
func (b *Backend) Homogeneous() bool {
	for i := 1; i < len(b.Sockets); i++ {
		if !reflect.DeepEqual(b.Sockets[i], b.Sockets[0]) {
			return false
		}
	}
	return true
}

// TotalCores and TotalThreads sum over the topology (a parallel nest
// spanning the whole node sees TotalThreads workers).
func (b *Backend) TotalCores() int {
	n := 0
	for _, s := range b.Topology() {
		n += s.Cores
	}
	return n
}

func (b *Backend) TotalThreads() int {
	n := 0
	for _, s := range b.Topology() {
		n += s.Threads
	}
	return n
}

// TopologySummary renders the description's topology for human eyes —
// the CLIs print it under their -topology flag. Single-socket v1
// descriptions render as a 1-socket topology, which is exactly what they
// are.
func (b *Backend) TopologySummary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%s): %d socket(s), %d node(s), %d cores / %d threads total\n",
		b.Name, b.CPU, b.NumSockets(), b.NumNodes(), b.TotalCores(), b.TotalThreads())
	for i, s := range b.Topology() {
		steps := int((s.UncoreMaxGHz-s.UncoreMinGHz)/s.CapStepGHz+1e-9) + 1
		fmt.Fprintf(&sb, "  socket %d: %dC/%dT, core %.2f-%.2f GHz, uncore %.2f-%.2f GHz (step %.2f, %d cap levels)\n",
			i, s.Cores, s.Threads, s.CoreMinGHz, s.CoreMaxGHz,
			s.UncoreMinGHz, s.UncoreMaxGHz, s.CapStepGHz, steps)
	}
	if ic := b.Interconnect; ic != nil {
		fmt.Fprintf(&sb, "  interconnect: %g GB/s per direction, +%g ns remote latency, %g pJ/B\n",
			ic.BWGBs, ic.LatencyNs, ic.EnergyPJPerByte)
	}
	if n := b.NumNodes(); n > 1 {
		fmt.Fprintf(&sb, "  cluster: %d identical data-parallel replica nodes\n", n)
	}
	return sb.String()
}
