package platform

import (
	"bytes"
	"testing"
)

// FuzzParseBackend drives the v2 schema decoder with arbitrary bytes:
// whatever comes out must either be a clean error or a description that
// passes Validate, has a well-formed topology view, and round-trips
// bit-stably (same content hash, deterministic marshal). Seeds cover the
// v1 and v2 happy paths plus the edge cases the validator must catch:
// unknown fields, an empty sockets array, grid and interconnect
// degeneracies, and topology fields smuggled into a v1 file.
func FuzzParseBackend(f *testing.F) {
	if good, err := validBackend().Marshal(); err == nil {
		f.Add(good)
	}
	if good, err := validTopologyBackend().Marshal(); err == nil {
		f.Add(good)
	}
	f.Add([]byte(`{"schema": 2, "name": "EMPTY", "sockets": []}`))
	f.Add([]byte(`{"schema": 2, "name": "NOIC", "sockets": [{}, {}]}`))
	f.Add([]byte(`{"schema": 1, "name": "SMUGGLE", "nodes": 3}`))
	f.Add([]byte(`{"schema": 2, "name": "X", "sockets": [{"cores": 1, "threads": 1, "cap_step_ghz": 0}]}`))
	f.Add([]byte(`{"schema": 2, "name": "X", "sockets": [{"cores": 1}], "interconnect": {"bw_gbs": -1}}`))
	f.Add([]byte(`{"schema": 2, "name": "X", "sockets": [{"cores": 1}], "nodes": -7}`))
	f.Add([]byte(`{"schema": 99, "name": "FUTURE"}`))
	f.Add([]byte(`{"schema": 2, "name": "TYPO", "sokets": []}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Parse(data)
		if err != nil {
			if b != nil {
				t.Fatal("Parse returned a backend alongside an error")
			}
			return
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("Parse accepted a description Validate rejects: %v", err)
		}
		if n := b.NumSockets(); n < 1 || len(b.Topology()) != n {
			t.Fatalf("topology view inconsistent: NumSockets=%d len(Topology)=%d", n, len(b.Topology()))
		}
		if b.NumNodes() < 1 {
			t.Fatalf("NumNodes = %d", b.NumNodes())
		}
		out, err := b.Marshal()
		if err != nil {
			t.Fatalf("accepted description does not marshal: %v", err)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("marshal of accepted description does not re-parse: %v", err)
		}
		if again.Hash() != b.Hash() {
			t.Fatal("content hash unstable across round trip")
		}
		out2, err := again.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("marshal not deterministic")
		}
	})
}
