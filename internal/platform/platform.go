// Package platform is the registry of machine descriptions PolyUFC can
// target. A Backend is a declarative, schema-versioned description of one
// machine — topology, cache hierarchy, uncore frequency range and cap
// step, and the hidden truth/simulator parameters — serializable to JSON
// (platforms/*.json) so new machines are added as data, not code
// (Kerncraft-style machine files). A Calibration is the persisted result
// of the one-time roofline micro-benchmark fit over a Backend: the
// Table-I Constants plus Sec. V curve fits, stamped with provenance (fit
// date, seed, fit residuals) so operators can tell which machine model
// served a request.
//
// The package is a leaf: hw constructs Platforms/Machines from a Backend,
// roofline calibrates one and resolves the (Backend, Platform, Constants)
// triple into a Target, and everything above consumes that handle.
package platform

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SchemaVersion is the current backend-description schema. Files carrying
// a different "schema" value are rejected at parse time.
const SchemaVersion = 1

// Truth holds the hidden machine constants the hardware simulator uses.
// They are not exported to the analytic model; PolyUFC must recover
// equivalent information through roofline micro-benchmarking. In a
// backend description they play the role of the simulator's silicon.
type Truth struct {
	// FlopsPerCycle is the per-core FPU throughput (AVX FMA lanes).
	FlopsPerCycle float64 `json:"flops_per_cycle"`
	// HitLatencyNs is the load-to-use latency per cache level.
	HitLatencyNs []float64 `json:"hit_latency_ns"`
	// DRAMLatCoefNsGHz and DRAMLatBaseNs give the per-miss DRAM service
	// latency a/f + b (ns, f in GHz): the uncore clock gates the path.
	DRAMLatCoefNsGHz float64 `json:"dram_lat_coef_ns_ghz"`
	DRAMLatBaseNs    float64 `json:"dram_lat_base_ns"`
	// Sustained DRAM bandwidth follows the saturating interconnect curve
	// bw(f) = BWPeakGBs * f / (f + BWKneeGHz): per-byte service time is
	// then exactly hyperbolic in f (a/f + b), the shape the paper observes
	// and fits on real uncore hardware; beyond the knee, extra uncore
	// frequency is over-provisioning (Sec. II-F).
	BWPeakGBs float64 `json:"bw_peak_gbs"`
	BWKneeGHz float64 `json:"bw_knee_ghz"`
	// MLP is the per-core memory-level parallelism (outstanding misses);
	// MLPSystem caps the whole-chip total.
	MLP       float64 `json:"mlp"`
	MLPSystem float64 `json:"mlp_system"`
	// ILP overlaps cache-hit latencies with computation.
	ILP float64 `json:"ilp"`
	// Overlap is the fraction of the smaller of compute/memory time not
	// hidden under the larger.
	Overlap float64 `json:"overlap"`
	// PConstW is constant (static + board) power.
	PConstW float64 `json:"p_const_w"`
	// CoreIdleWPerGHz is core clock-tree power per GHz (paid whenever the
	// cores are clocked, even when stalled on memory).
	CoreIdleWPerGHz float64 `json:"core_idle_w_per_ghz"`
	// CoreJPerFlop is dynamic core energy per arithmetic operation.
	CoreJPerFlop float64 `json:"core_j_per_flop"`
	// UncoreIdleWPerGHz is uncore clock-tree power per GHz, always paid.
	UncoreIdleWPerGHz float64 `json:"uncore_idle_w_per_ghz"`
	// UncoreActWPerGHz and UncoreActBaseW scale with memory utilization:
	// P_uncore_dyn = (act*f + base) * utilization.
	UncoreActWPerGHz float64 `json:"uncore_act_w_per_ghz"`
	UncoreActBaseW   float64 `json:"uncore_act_base_w"`
}

// CacheLevel describes one level of the cache hierarchy.
type CacheLevel struct {
	Name      string `json:"name"`
	SizeBytes int64  `json:"size_bytes"`
	LineSize  int64  `json:"line_size"`
	Assoc     int64  `json:"assoc"`
}

// Backend is the declarative description of one machine: everything the
// constructors in hw hardcoded, as data.
type Backend struct {
	// Schema is the description format version (SchemaVersion).
	Schema int `json:"schema"`
	// Name is the canonical registry name ("BDW"); Aliases resolve too
	// (lookups are case-insensitive either way).
	Name    string   `json:"name"`
	Aliases []string `json:"aliases,omitempty"`
	CPU     string   `json:"cpu"`
	// Released is the launch year (Table III).
	Released int `json:"released"`
	// Paper marks the two Table-III evaluation machines; golden outputs
	// sweep exactly the paper set.
	Paper   bool `json:"paper,omitempty"`
	Cores   int  `json:"cores"`
	Threads int  `json:"threads"`
	// Core and uncore frequency ranges in GHz.
	CoreMinGHz   float64 `json:"core_min_ghz"`
	CoreMaxGHz   float64 `json:"core_max_ghz"`
	CoreBaseGHz  float64 `json:"core_base_ghz"`
	UncoreMinGHz float64 `json:"uncore_min_ghz"`
	UncoreMaxGHz float64 `json:"uncore_max_ghz"`
	// CapStepGHz is the uncore cap granularity; the cap grid is anchored
	// at UncoreMinGHz and need not divide the range evenly.
	CapStepGHz float64 `json:"cap_step_ghz"`
	// CapLatencySec is the cost of one cap change (Sec. VII-F).
	CapLatencySec float64 `json:"cap_latency_sec"`
	// HasUncoreRAPL reports whether the uncore energy zone is readable
	// (false on BDW, footnote 15).
	HasUncoreRAPL bool         `json:"has_uncore_rapl"`
	Cache         []CacheLevel `json:"cache"`
	Truth         Truth        `json:"truth"`
}

// Validate checks a description for internal consistency and returns a
// field-level error naming the first violation.
func (b *Backend) Validate() error {
	if b == nil {
		return fmt.Errorf("platform: nil backend")
	}
	bad := func(field, format string, args ...interface{}) error {
		return fmt.Errorf("platform: backend %q: %s: %s", b.Name, field, fmt.Sprintf(format, args...))
	}
	if b.Schema != SchemaVersion {
		return fmt.Errorf("platform: backend %q: schema: got version %d, this build reads version %d (re-export the description or upgrade)",
			b.Name, b.Schema, SchemaVersion)
	}
	if b.Name == "" {
		return fmt.Errorf("platform: backend description: name: must be non-empty")
	}
	if b.Cores <= 0 {
		return bad("cores", "must be > 0, got %d", b.Cores)
	}
	if b.Threads < b.Cores {
		return bad("threads", "must be >= cores (%d), got %d", b.Cores, b.Threads)
	}
	if b.CoreMinGHz <= 0 || b.CoreMaxGHz < b.CoreMinGHz {
		return bad("core_min_ghz/core_max_ghz", "need 0 < min <= max, got [%g, %g]", b.CoreMinGHz, b.CoreMaxGHz)
	}
	if b.CoreBaseGHz < b.CoreMinGHz || b.CoreBaseGHz > b.CoreMaxGHz {
		return bad("core_base_ghz", "must lie in [%g, %g], got %g", b.CoreMinGHz, b.CoreMaxGHz, b.CoreBaseGHz)
	}
	if b.UncoreMinGHz <= 0 || b.UncoreMaxGHz < b.UncoreMinGHz {
		return bad("uncore_min_ghz/uncore_max_ghz", "need 0 < min <= max, got [%g, %g]", b.UncoreMinGHz, b.UncoreMaxGHz)
	}
	if b.CapStepGHz <= 0 {
		return bad("cap_step_ghz", "must be > 0, got %g", b.CapStepGHz)
	}
	if b.CapLatencySec < 0 {
		return bad("cap_latency_sec", "must be >= 0, got %g", b.CapLatencySec)
	}
	if len(b.Cache) == 0 {
		return bad("cache", "need at least one level")
	}
	for i, lv := range b.Cache {
		if lv.Name == "" {
			return bad("cache", "level %d: name must be non-empty", i)
		}
		if lv.SizeBytes <= 0 || lv.LineSize <= 0 || lv.Assoc <= 0 {
			return bad("cache", "level %s: size_bytes, line_size and assoc must be > 0", lv.Name)
		}
		if lv.SizeBytes%(lv.LineSize*lv.Assoc) != 0 {
			return bad("cache", "level %s: size %d is not a whole number of sets (line %d x assoc %d)",
				lv.Name, lv.SizeBytes, lv.LineSize, lv.Assoc)
		}
		if i > 0 && lv.SizeBytes < b.Cache[i-1].SizeBytes {
			return bad("cache", "level %s: smaller than inner level %s", lv.Name, b.Cache[i-1].Name)
		}
	}
	t := &b.Truth
	if t.FlopsPerCycle <= 0 {
		return bad("truth.flops_per_cycle", "must be > 0, got %g", t.FlopsPerCycle)
	}
	if len(t.HitLatencyNs) != len(b.Cache) {
		return bad("truth.hit_latency_ns", "need one latency per cache level (%d), got %d", len(b.Cache), len(t.HitLatencyNs))
	}
	for i, h := range t.HitLatencyNs {
		if h <= 0 {
			return bad("truth.hit_latency_ns", "level %d: must be > 0, got %g", i, h)
		}
	}
	if t.BWPeakGBs <= 0 || t.BWKneeGHz <= 0 {
		return bad("truth.bw_peak_gbs/bw_knee_ghz", "must be > 0, got %g / %g", t.BWPeakGBs, t.BWKneeGHz)
	}
	if t.MLP < 1 || t.MLPSystem < t.MLP {
		return bad("truth.mlp/mlp_system", "need 1 <= mlp <= mlp_system, got %g / %g", t.MLP, t.MLPSystem)
	}
	if t.ILP < 1 {
		return bad("truth.ilp", "must be >= 1, got %g", t.ILP)
	}
	if t.Overlap < 0 || t.Overlap > 1 {
		return bad("truth.overlap", "must be in [0, 1], got %g", t.Overlap)
	}
	return nil
}

// Parse decodes one backend description, rejecting unknown fields (typos
// in hand-written files surface as errors, not silent zeros) and
// validating the result.
func Parse(data []byte) (*Backend, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Backend
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("platform: parse backend description: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// Marshal renders the description as indented, field-stable JSON.
func (b *Backend) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("platform: marshal backend %q: %w", b.Name, err)
	}
	return append(out, '\n'), nil
}

// Hash is a content hash of the canonical (compact JSON) description,
// used to key memoized calibrations and to pin a Calibration artifact to
// the exact description it was fitted against.
func (b *Backend) Hash() string {
	data, err := json.Marshal(b)
	if err != nil {
		// Backend has no unmarshalable fields; keep the signature clean.
		panic(fmt.Sprintf("platform: hash backend %q: %v", b.Name, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}
